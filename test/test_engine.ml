(* Tests for the supervising measurement engine: determinism of
   parallel batches versus the sequential path, memoisation,
   worker-count independence, and — new with the fault-injection
   substrate — byte-identical recovery under injected crashes and
   stalls, quorum voting against corrupted timings, and the
   no-lost-jobs accounting identity. *)

let config = { Corpus.Suite.default_config with scale = 2000 }
let blocks = lazy (Corpus.Suite.generate ~config ())

(* a thinner slice for the (workers x fault seeds) matrix, which builds
   the same dataset ten times *)
let chaos_blocks =
  lazy (List.filteri (fun i _ -> i mod 3 = 0) (Lazy.force blocks))

let all_uarches =
  [ Uarch.All.ivy_bridge; Uarch.All.haswell; Uarch.All.skylake ]

(* Strip the engine out of the comparison: datasets are plain data. *)
let build ~jobs uarch =
  Bhive.Dataset.build ~engine:(Engine.create ~jobs ()) uarch (Lazy.force blocks)

let check_datasets_equal what (a : Bhive.Dataset.t) (b : Bhive.Dataset.t) =
  Alcotest.(check int) (what ^ ": n_input") a.n_input b.n_input;
  Alcotest.(check int) (what ^ ": n_avx2") a.n_avx2_excluded b.n_avx2_excluded;
  Alcotest.(check int)
    (what ^ ": entry count")
    (List.length a.entries) (List.length b.entries);
  Alcotest.(check bool) (what ^ ": entries identical") true (a.entries = b.entries);
  Alcotest.(check bool) (what ^ ": failures identical") true (a.failures = b.failures);
  Alcotest.(check bool) (what ^ ": rejected identical") true (a.rejected = b.rejected);
  Alcotest.(check bool) (what ^ ": quarantined identical") true
    (a.quarantined = b.quarantined)

let test_parallel_matches_sequential () =
  List.iter
    (fun (u : Uarch.Descriptor.t) ->
      check_datasets_equal ("parallel vs sequential on " ^ u.short)
        (build ~jobs:1 u) (build ~jobs:4 u))
    all_uarches

let test_worker_count_independent () =
  let u = Uarch.All.haswell in
  let ds1 = build ~jobs:1 u in
  List.iter
    (fun jobs ->
      check_datasets_equal (Printf.sprintf "jobs=%d vs jobs=1" jobs) ds1
        (build ~jobs u))
    [ 2; 4 ]

let test_memo_cache_hits () =
  let engine = Engine.create ~jobs:1 ~faults:Faultsim.none () in
  let job =
    {
      Engine.env = Harness.Environment.default;
      uarch = Uarch.All.haswell;
      block = Corpus.Paper_blocks.gzip_crc;
    }
  in
  let first = Engine.run_batch engine [ job ] in
  let s1 = Engine.stats engine in
  Alcotest.(check int) "first submission executes" 1 s1.executed;
  Alcotest.(check int) "no hit yet" 0 s1.cache_hits;
  let again = Engine.run_batch engine [ job ] in
  let s2 = Engine.stats engine in
  Alcotest.(check int) "resubmission does not execute" 1 s2.executed;
  Alcotest.(check int) "resubmission hits the cache" 1 s2.cache_hits;
  Alcotest.(check bool) "memoised result identical" true
    (first.outcomes.(0) = again.outcomes.(0))

let test_batch_dedup () =
  let engine = Engine.create ~jobs:2 ~faults:Faultsim.none () in
  let job block =
    { Engine.env = Harness.Environment.default; uarch = Uarch.All.haswell; block }
  in
  let a = job Corpus.Paper_blocks.gzip_crc in
  let b = job Corpus.Paper_blocks.division in
  let { Engine.outcomes; _ } = Engine.run_batch engine [ a; b; a; a; b ] in
  let s = Engine.stats engine in
  Alcotest.(check int) "submitted" 5 s.submitted;
  Alcotest.(check int) "only unique jobs execute" 2 s.executed;
  Alcotest.(check int) "duplicates are hits" 3 s.cache_hits;
  Alcotest.(check bool) "duplicate slots agree" true
    (outcomes.(0) = outcomes.(2) && outcomes.(2) = outcomes.(3));
  Alcotest.(check bool) "order preserved" true (outcomes.(1) = outcomes.(4))

let test_fingerprint_sensitivity () =
  let base =
    {
      Engine.env = Harness.Environment.default;
      uarch = Uarch.All.haswell;
      block = Corpus.Paper_blocks.gzip_crc;
    }
  in
  Alcotest.(check string) "fingerprint is stable" (Engine.fingerprint base)
    (Engine.fingerprint base);
  Alcotest.(check bool) "uarch changes the fingerprint" false
    (Engine.fingerprint base
    = Engine.fingerprint { base with uarch = Uarch.All.skylake });
  Alcotest.(check bool) "env changes the fingerprint" false
    (Engine.fingerprint base
    = Engine.fingerprint
        { base with env = Harness.Environment.agner_baseline });
  Alcotest.(check bool) "block changes the fingerprint" false
    (Engine.fingerprint base
    = Engine.fingerprint { base with block = Corpus.Paper_blocks.division })

let test_progress_hook () =
  let calls = ref [] in
  let engine =
    Engine.create ~jobs:1 ~faults:Faultsim.none
      ~progress:(fun ~done_ ~total -> calls := (done_, total) :: !calls)
      ()
  in
  let job block =
    { Engine.env = Harness.Environment.default; uarch = Uarch.All.haswell; block }
  in
  ignore
    (Engine.run_batch engine
       [ job Corpus.Paper_blocks.gzip_crc; job Corpus.Paper_blocks.division ]);
  Alcotest.(check (list (pair int int)))
    "progress reported per executed job" [ (1, 2); (2, 2) ] (List.rev !calls)

let test_phase_metrics () =
  let engine = Engine.create ~jobs:1 ~faults:Faultsim.none () in
  let job =
    {
      Engine.env = Harness.Environment.default;
      uarch = Uarch.All.haswell;
      block = Corpus.Paper_blocks.gzip_crc;
    }
  in
  Engine.phase engine "first" (fun () -> ignore (Engine.run_batch engine [ job ]));
  Engine.phase engine "second" (fun () -> ignore (Engine.run_batch engine [ job ]));
  match Engine.phases engine with
  | [ p1; p2 ] ->
    Alcotest.(check string) "phase order" "first" p1.phase_name;
    Alcotest.(check int) "first executes" 1 p1.phase_executed;
    Alcotest.(check int) "second hits cache" 1 p2.phase_cache_hits;
    Alcotest.(check int) "second executes nothing" 0 p2.phase_executed;
    let json = Engine.phases_to_json engine in
    let contains needle =
      let n = String.length needle and h = String.length json in
      let rec at i = i + n <= h && (String.sub json i n = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "json names the phases" true
      (contains "\"section\": \"first\"" && contains "\"section\": \"second\"");
    Alcotest.(check bool) "json reports hit rate" true
      (contains "\"cache_hit_rate\"");
    Alcotest.(check bool) "json reports the fault block" true
      (contains "\"faults\"")
  | phases ->
    Alcotest.fail (Printf.sprintf "expected two phases, got %d" (List.length phases))

(* --- fault injection ------------------------------------------------- *)

let faults_of spec =
  match Faultsim.parse spec with
  | Ok c -> c
  | Error msg -> Alcotest.fail (Printf.sprintf "bad fault spec %S: %s" spec msg)

let chaos_build ~jobs ~faults uarch =
  Bhive.Dataset.build
    ~engine:(Engine.create ~jobs ~faults ())
    uarch
    (Lazy.force chaos_blocks)

(* The tentpole guarantee: under recoverable fault rates, accepted
   output is byte-identical to the fault-free run for every (worker
   count, fault seed) combination — the matrix ISSUE.md pins down. *)
let test_chaos_matrix () =
  let u = Uarch.All.haswell in
  let clean = chaos_build ~jobs:1 ~faults:Faultsim.none u in
  Alcotest.(check bool) "fault-free run quarantines nothing" true
    (clean.quarantined = []);
  List.iter
    (fun seed ->
      List.iter
        (fun jobs ->
          let faults =
            faults_of (Printf.sprintf "crash=0.02,stall=0.01,seed=%d" seed)
          in
          let ds = chaos_build ~jobs ~faults u in
          check_datasets_equal
            (Printf.sprintf "jobs=%d seed=%d vs fault-free" jobs seed)
            clean ds)
        [ 1; 2; 4 ])
    [ 0; 42; 1337 ]

(* Accounting identity: whatever the fault rates, every submitted job
   is completed or quarantined — nothing is lost, nothing raises. *)
let test_no_lost_jobs () =
  List.iter
    (fun spec ->
      let engine =
        Engine.create ~jobs:4 ~faults:(faults_of spec) ~max_retries:2 ()
      in
      ignore
        (Bhive.Dataset.build ~engine Uarch.All.haswell
           (Lazy.force chaos_blocks));
      let s = Engine.stats engine in
      Alcotest.(check int) (spec ^ ": no lost jobs") 0 (Engine.lost s);
      Alcotest.(check int)
        (spec ^ ": completed + quarantined = submitted")
        s.submitted
        (s.completed + s.quarantined))
    [
      "crash=0.02,stall=0.01,seed=7";
      "crash=0.3,stall=0.2,seed=9";
      "crash=0.8,seed=5";
    ]

(* Unrecoverable rates produce quarantines; the manifest must be stable
   across worker counts (same jobs, same attempt histories, same
   order). *)
let test_quarantine_manifest_stable () =
  let faults = faults_of "crash=0.6,seed=11" in
  let run jobs =
    let engine = Engine.create ~jobs ~faults ~max_retries:1 () in
    ignore
      (Bhive.Dataset.build ~engine Uarch.All.haswell (Lazy.force chaos_blocks));
    let path = Filename.temp_file "bhive_quarantine" ".jsonl" in
    let n = Engine.write_quarantine_manifest engine path in
    let contents = In_channel.with_open_text path In_channel.input_all in
    Sys.remove path;
    (Engine.quarantines engine, n, contents)
  in
  let q1, n1, m1 = run 1 in
  Alcotest.(check bool) "crash=0.6 with one retry quarantines something" true
    (n1 > 0);
  Alcotest.(check int) "manifest counts its records" (List.length q1) n1;
  List.iter
    (fun jobs ->
      let q, n, m = run jobs in
      Alcotest.(check int) (Printf.sprintf "jobs=%d: same count" jobs) n1 n;
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: same quarantine records" jobs)
        true (q = q1);
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d: byte-identical manifest" jobs)
        m1 m)
    [ 2; 4 ]

(* Quorum mode outvotes corrupted timings: with a majority of clean
   trials per attempt the accepted results match the fault-free run
   bit for bit. *)
let test_quorum_outvotes_corruption () =
  let job block =
    { Engine.env = Harness.Environment.default; uarch = Uarch.All.haswell; block }
  in
  let jobs =
    [
      job Corpus.Paper_blocks.gzip_crc;
      job Corpus.Paper_blocks.division;
      job Corpus.Paper_blocks.zero_idiom;
    ]
  in
  let clean =
    Engine.run_batch (Engine.create ~jobs:1 ~faults:Faultsim.none ()) jobs
  in
  let chaotic_engine =
    Engine.create ~jobs:2
      ~faults:(faults_of "corrupt=0.3,seed=3")
      ~quorum:3 ()
  in
  let chaotic = Engine.run_batch chaotic_engine jobs in
  Alcotest.(check bool) "corruptions were actually injected" true
    ((Engine.stats chaotic_engine).corruptions > 0);
  Alcotest.(check bool) "quorum result = fault-free result" true
    (clean.outcomes = chaotic.outcomes);
  Alcotest.(check bool) "nothing quarantined" true (chaotic.quarantined = [])

(* With every trial corrupted no majority can form: the job retries
   through its budget and quarantines with no_quorum verdicts. *)
let test_total_corruption_quarantines () =
  let engine =
    Engine.create ~jobs:1
      ~faults:(faults_of "corrupt=1,seed=4")
      ~quorum:3 ~max_retries:2 ()
  in
  let { Engine.outcomes; quarantined } =
    Engine.run_batch engine
      [
        {
          Engine.env = Harness.Environment.default;
          uarch = Uarch.All.haswell;
          block = Corpus.Paper_blocks.gzip_crc;
        };
      ]
  in
  match (outcomes.(0), quarantined) with
  | Error (Engine.Quarantined q), [ q' ] ->
    Alcotest.(check bool) "batch manifest carries the quarantine" true (q = q');
    Alcotest.(check int) "attempt budget exhausted" 3 (List.length q.q_attempts);
    List.iter
      (fun (a : Engine.attempt_record) ->
        Alcotest.(check string) "every attempt failed quorum" "no_quorum"
          a.att_verdict)
      q.q_attempts;
    let s = Engine.stats engine in
    Alcotest.(check int) "quorum failures counted" 3 s.quorum_failures;
    Alcotest.(check int) "slot accounted as quarantined" 1 s.quarantined
  | _ -> Alcotest.fail "expected exactly one quarantined job"

(* Certain crash: the worker domain dies on every attempt. The
   supervisor must replenish the pool each time, record exponential
   backoff, and quarantine after the retry budget — and a resubmission
   of the quarantined fingerprint must be a cache hit, not a re-run. *)
let test_certain_crash_supervision () =
  let engine =
    Engine.create ~jobs:2
      ~faults:(faults_of "crash=1,seed=2")
      ~max_retries:3 ~backoff_ms:10 ()
  in
  let job =
    {
      Engine.env = Harness.Environment.default;
      uarch = Uarch.All.haswell;
      block = Corpus.Paper_blocks.gzip_crc;
    }
  in
  let { Engine.outcomes; quarantined } = Engine.run_batch engine [ job ] in
  (match outcomes.(0) with
  | Error (Engine.Quarantined q) ->
    Alcotest.(check int) "4 attempts (1 + 3 retries)" 4
      (List.length q.q_attempts);
    List.iteri
      (fun i (a : Engine.attempt_record) ->
        Alcotest.(check int) "attempts numbered in order" i a.att_number;
        Alcotest.(check string) "every attempt crashed" "crash" a.att_verdict;
        let expected_backoff = if i < 3 then 10 * (1 lsl i) else 0 in
        Alcotest.(check int) "deterministic exponential backoff"
          expected_backoff a.att_backoff_ms)
      q.q_attempts
  | _ -> Alcotest.fail "expected a quarantined outcome");
  Alcotest.(check int) "one quarantine in the batch manifest" 1
    (List.length quarantined);
  let s = Engine.stats engine in
  Alcotest.(check int) "4 crashes" 4 s.crashes;
  Alcotest.(check int) "3 retries" 3 s.retries;
  Alcotest.(check int) "a replacement domain per crash" 4
    s.workers_replenished;
  Alcotest.(check int) "the profiler never ran" 0 s.profiler_calls;
  (* resubmission: the quarantine is memoised like any other outcome *)
  let again = Engine.run_batch engine [ job ] in
  let s2 = Engine.stats engine in
  Alcotest.(check bool) "quarantined outcome memoised" true
    (again.outcomes.(0) = outcomes.(0));
  Alcotest.(check bool) "no fresh quarantine on resubmission" true
    (again.quarantined = []);
  Alcotest.(check int) "resubmission is a cache hit" 1 s2.cache_hits;
  Alcotest.(check int) "still zero lost" 0 (Engine.lost s2)

(* Stalls inside the deadline are absorbed; past it the attempt times
   out and retries. Either way recoverable stall rates must not change
   accepted output. *)
let test_stalls_absorbed_or_retried () =
  let engine =
    Engine.create ~jobs:1 ~faults:(faults_of "stall=0.9,seed=6") ()
  in
  let job block =
    { Engine.env = Harness.Environment.default; uarch = Uarch.All.haswell; block }
  in
  let jobs =
    [ job Corpus.Paper_blocks.gzip_crc; job Corpus.Paper_blocks.division ]
  in
  let clean =
    Engine.run_batch (Engine.create ~jobs:1 ~faults:Faultsim.none ()) jobs
  in
  let stalled = Engine.run_batch engine jobs in
  let s = Engine.stats engine in
  Alcotest.(check bool) "stalls were injected" true
    (s.stalls_absorbed + s.timeouts > 0);
  Alcotest.(check bool) "output unchanged by stalls" true
    (clean.outcomes = stalled.outcomes);
  Alcotest.(check int) "nothing lost" 0 (Engine.lost s)

(* --- Faultsim -------------------------------------------------------- *)

let test_faultsim_parse () =
  (match Faultsim.parse "crash=0.01,stall=0.005,corrupt=0.002,seed=42" with
  | Ok c ->
    Alcotest.(check (float 0.0)) "crash" 0.01 c.crash;
    Alcotest.(check (float 0.0)) "stall" 0.005 c.stall;
    Alcotest.(check (float 0.0)) "corrupt" 0.002 c.corrupt;
    Alcotest.(check int64) "seed" 42L c.seed;
    (match Faultsim.parse (Faultsim.to_string c) with
    | Ok c' -> Alcotest.(check bool) "to_string round-trips" true (c = c')
    | Error msg -> Alcotest.fail msg)
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "empty spec is none" true
    (Faultsim.parse "" = Ok Faultsim.none);
  Alcotest.(check bool) "'none' is none" true
    (Faultsim.parse "none" = Ok Faultsim.none);
  let rejects spec =
    Alcotest.(check bool)
      (Printf.sprintf "%S rejected" spec)
      true
      (Result.is_error (Faultsim.parse spec))
  in
  rejects "crash=1.5";
  rejects "crash=-0.1";
  rejects "crash=abc";
  rejects "seed=x";
  rejects "bogus=1";
  rejects "crash"

let test_faultsim_draw_deterministic () =
  let c = faults_of "crash=0.2,stall=0.2,corrupt=0.2,seed=42" in
  let draws fingerprint =
    List.init 64 (fun trial ->
        Faultsim.draw c ~fingerprint ~attempt:(trial mod 4) ~trial)
  in
  Alcotest.(check bool) "same key, same faults" true
    (draws "job-a" = draws "job-a");
  Alcotest.(check bool) "different fingerprints, different streams" true
    (draws "job-a" <> draws "job-b");
  let c' = faults_of "crash=0.2,stall=0.2,corrupt=0.2,seed=43" in
  Alcotest.(check bool) "different seeds, different streams" true
    (List.init 64 (fun t -> Faultsim.draw c' ~fingerprint:"job-a" ~attempt:0 ~trial:t)
    <> List.init 64 (fun t -> Faultsim.draw c ~fingerprint:"job-a" ~attempt:0 ~trial:t));
  Alcotest.(check bool) "none never faults" true
    (List.for_all
       (fun t -> Faultsim.draw Faultsim.none ~fingerprint:"x" ~attempt:0 ~trial:t = None)
       (List.init 64 Fun.id))

let test_faultsim_corruption_visible () =
  List.iter
    (fun salt ->
      let tp = 3.25 in
      let corrupted = Faultsim.corrupt_throughput ~salt tp in
      Alcotest.(check bool)
        (Printf.sprintf "salt %Ld corrupts visibly" salt)
        true
        (Float.abs (corrupted -. tp) > 0.1 *. tp))
    [ 0L; 1L; 42L; -7L; Int64.max_int ]

let suite =
  [
    Alcotest.test_case "parallel = sequential (ivb/hsw/skl)" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "worker-count independence (1/2/4)" `Quick
      test_worker_count_independent;
    Alcotest.test_case "memo cache hits" `Quick test_memo_cache_hits;
    Alcotest.test_case "in-batch dedup" `Quick test_batch_dedup;
    Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
    Alcotest.test_case "progress hook" `Quick test_progress_hook;
    Alcotest.test_case "phase metrics" `Quick test_phase_metrics;
    Alcotest.test_case "chaos matrix: workers x seeds byte-identical" `Quick
      test_chaos_matrix;
    Alcotest.test_case "no lost jobs under any fault rate" `Quick
      test_no_lost_jobs;
    Alcotest.test_case "quarantine manifest stable across workers" `Quick
      test_quarantine_manifest_stable;
    Alcotest.test_case "quorum outvotes corruption" `Quick
      test_quorum_outvotes_corruption;
    Alcotest.test_case "total corruption quarantines" `Quick
      test_total_corruption_quarantines;
    Alcotest.test_case "certain crash: supervision and backoff" `Quick
      test_certain_crash_supervision;
    Alcotest.test_case "stalls absorbed or retried" `Quick
      test_stalls_absorbed_or_retried;
    Alcotest.test_case "faultsim: parse" `Quick test_faultsim_parse;
    Alcotest.test_case "faultsim: deterministic draws" `Quick
      test_faultsim_draw_deterministic;
    Alcotest.test_case "faultsim: corruption visible" `Quick
      test_faultsim_corruption_visible;
  ]
