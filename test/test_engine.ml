(* Tests for the measurement engine: determinism of parallel batches
   versus the sequential path, memoisation, and worker-count
   independence. *)

let config = { Corpus.Suite.default_config with scale = 2000 }
let blocks = lazy (Corpus.Suite.generate ~config ())

let all_uarches =
  [ Uarch.All.ivy_bridge; Uarch.All.haswell; Uarch.All.skylake ]

(* Strip the engine out of the comparison: datasets are plain data. *)
let build ~jobs uarch =
  Bhive.Dataset.build ~engine:(Engine.create ~jobs ()) uarch (Lazy.force blocks)

let check_datasets_equal what (a : Bhive.Dataset.t) (b : Bhive.Dataset.t) =
  Alcotest.(check int) (what ^ ": n_input") a.n_input b.n_input;
  Alcotest.(check int) (what ^ ": n_avx2") a.n_avx2_excluded b.n_avx2_excluded;
  Alcotest.(check int)
    (what ^ ": entry count")
    (List.length a.entries) (List.length b.entries);
  Alcotest.(check bool) (what ^ ": entries identical") true (a.entries = b.entries);
  Alcotest.(check bool) (what ^ ": failures identical") true (a.failures = b.failures);
  Alcotest.(check bool) (what ^ ": rejected identical") true (a.rejected = b.rejected)

let test_parallel_matches_sequential () =
  List.iter
    (fun (u : Uarch.Descriptor.t) ->
      check_datasets_equal ("parallel vs sequential on " ^ u.short)
        (build ~jobs:1 u) (build ~jobs:4 u))
    all_uarches

let test_worker_count_independent () =
  let u = Uarch.All.haswell in
  let ds1 = build ~jobs:1 u in
  List.iter
    (fun jobs ->
      check_datasets_equal (Printf.sprintf "jobs=%d vs jobs=1" jobs) ds1
        (build ~jobs u))
    [ 2; 4 ]

let test_memo_cache_hits () =
  let engine = Engine.create ~jobs:1 () in
  let job =
    {
      Engine.env = Harness.Environment.default;
      uarch = Uarch.All.haswell;
      block = Corpus.Paper_blocks.gzip_crc;
    }
  in
  let first = Engine.run_batch engine [ job ] in
  let s1 = Engine.stats engine in
  Alcotest.(check int) "first submission executes" 1 s1.executed;
  Alcotest.(check int) "no hit yet" 0 s1.cache_hits;
  let again = Engine.run_batch engine [ job ] in
  let s2 = Engine.stats engine in
  Alcotest.(check int) "resubmission does not execute" 1 s2.executed;
  Alcotest.(check int) "resubmission hits the cache" 1 s2.cache_hits;
  Alcotest.(check bool) "memoised result identical" true (first.(0) = again.(0))

let test_batch_dedup () =
  let engine = Engine.create ~jobs:2 () in
  let job block =
    { Engine.env = Harness.Environment.default; uarch = Uarch.All.haswell; block }
  in
  let a = job Corpus.Paper_blocks.gzip_crc in
  let b = job Corpus.Paper_blocks.division in
  let outcomes = Engine.run_batch engine [ a; b; a; a; b ] in
  let s = Engine.stats engine in
  Alcotest.(check int) "submitted" 5 s.submitted;
  Alcotest.(check int) "only unique jobs execute" 2 s.executed;
  Alcotest.(check int) "duplicates are hits" 3 s.cache_hits;
  Alcotest.(check bool) "duplicate slots agree" true
    (outcomes.(0) = outcomes.(2) && outcomes.(2) = outcomes.(3));
  Alcotest.(check bool) "order preserved" true (outcomes.(1) = outcomes.(4))

let test_fingerprint_sensitivity () =
  let base =
    {
      Engine.env = Harness.Environment.default;
      uarch = Uarch.All.haswell;
      block = Corpus.Paper_blocks.gzip_crc;
    }
  in
  Alcotest.(check string) "fingerprint is stable" (Engine.fingerprint base)
    (Engine.fingerprint base);
  Alcotest.(check bool) "uarch changes the fingerprint" false
    (Engine.fingerprint base
    = Engine.fingerprint { base with uarch = Uarch.All.skylake });
  Alcotest.(check bool) "env changes the fingerprint" false
    (Engine.fingerprint base
    = Engine.fingerprint
        { base with env = Harness.Environment.agner_baseline });
  Alcotest.(check bool) "block changes the fingerprint" false
    (Engine.fingerprint base
    = Engine.fingerprint { base with block = Corpus.Paper_blocks.division })

let test_progress_hook () =
  let calls = ref [] in
  let engine =
    Engine.create ~jobs:1
      ~progress:(fun ~done_ ~total -> calls := (done_, total) :: !calls)
      ()
  in
  let job block =
    { Engine.env = Harness.Environment.default; uarch = Uarch.All.haswell; block }
  in
  ignore
    (Engine.run_batch engine
       [ job Corpus.Paper_blocks.gzip_crc; job Corpus.Paper_blocks.division ]);
  Alcotest.(check (list (pair int int)))
    "progress reported per executed job" [ (1, 2); (2, 2) ] (List.rev !calls)

let test_phase_metrics () =
  let engine = Engine.create ~jobs:1 () in
  let job =
    {
      Engine.env = Harness.Environment.default;
      uarch = Uarch.All.haswell;
      block = Corpus.Paper_blocks.gzip_crc;
    }
  in
  Engine.phase engine "first" (fun () -> ignore (Engine.run_batch engine [ job ]));
  Engine.phase engine "second" (fun () -> ignore (Engine.run_batch engine [ job ]));
  match Engine.phases engine with
  | [ p1; p2 ] ->
    Alcotest.(check string) "phase order" "first" p1.phase_name;
    Alcotest.(check int) "first executes" 1 p1.phase_executed;
    Alcotest.(check int) "second hits cache" 1 p2.phase_cache_hits;
    Alcotest.(check int) "second executes nothing" 0 p2.phase_executed;
    let json = Engine.phases_to_json engine in
    let contains needle =
      let n = String.length needle and h = String.length json in
      let rec at i = i + n <= h && (String.sub json i n = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "json names the phases" true
      (contains "\"section\": \"first\"" && contains "\"section\": \"second\"");
    Alcotest.(check bool) "json reports hit rate" true
      (contains "\"cache_hit_rate\"")
  | phases ->
    Alcotest.fail (Printf.sprintf "expected two phases, got %d" (List.length phases))

let suite =
  [
    Alcotest.test_case "parallel = sequential (ivb/hsw/skl)" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "worker-count independence (1/2/4)" `Quick
      test_worker_count_independent;
    Alcotest.test_case "memo cache hits" `Quick test_memo_cache_hits;
    Alcotest.test_case "in-batch dedup" `Quick test_batch_dedup;
    Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
    Alcotest.test_case "progress hook" `Quick test_progress_hook;
    Alcotest.test_case "phase metrics" `Quick test_phase_metrics;
  ]
