let () =
  (* multi-process store tests re-execute this binary as their child
     processes (Unix.fork is unavailable once domains exist) *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = Test_store.child_tag then
    Test_store.child_main Sys.argv;
  Alcotest.run "bhive"
    [
      ("width", Test_width.suite);
      ("reg", Test_reg.suite);
      ("inst", Test_inst.suite);
      ("parser", Test_parser.suite);
      ("encoder", Test_encoder.suite);
      ("memsim", Test_memsim.suite);
      ("semantics", Test_semantics.suite);
      ("semantics2", Test_semantics2.suite);
      ("executor", Test_executor.suite);
      ("properties", Test_properties.suite);
      ("uarch", Test_uarch.suite);
      ("pipeline", Test_pipeline.suite);
      ("batch", Test_batch.suite);
      ("l2", Test_l2.suite);
      ("harness", Test_harness.suite);
      ("engine", Test_engine.suite);
      ("telemetry", Test_telemetry.suite);
      ("corpus", Test_corpus.suite);
      ("gen", Test_gen.suite);
      ("classify", Test_classify.suite);
      ("models", Test_models.suite);
      ("static-sim", Test_static_sim.suite);
      ("exegesis", Test_exegesis.suite);
      ("bstats", Test_bstats.suite);
      ("bhive", Test_bhive.suite);
      ("export", Test_export.suite);
      ("kernels", Test_kernels.suite);
      ("store", Test_store.suite);
      ("manifest", Test_manifest.suite);
      ("serve", Test_serve.suite);
      ("refine", Test_refine.suite);
    ]
