(* Tests for the telemetry layer: trace spans (nesting, JSONL
   round-trip, zero-allocation disabled path), metrics (counters,
   histogram bucketing), and the bench_diff regression gate. *)

module Json = Telemetry.Json
module Trace = Telemetry.Trace
module Metrics = Telemetry.Metrics
module Bench_diff = Telemetry.Bench_diff

(* Install a capturing sink, run [f], uninstall, and return the emitted
   JSONL records parsed back into JSON values. *)
let with_capture f =
  let lines = ref [] in
  Trace.install_custom
    ~write:(fun s -> lines := s :: !lines)
    ~close:(fun () -> ());
  Fun.protect ~finally:Trace.uninstall f;
  Trace.uninstall ();
  List.rev_map Json.parse_exn !lines

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "record missing field %S: %s" name (Json.to_string j)

let str name j =
  match field name j with
  | Json.String s -> s
  | v -> Alcotest.failf "field %S not a string: %s" name (Json.to_string v)

let num name j =
  match field name j with
  | Json.Number n -> n
  | v -> Alcotest.failf "field %S not a number: %s" name (Json.to_string v)

let find_record name records =
  match List.find_opt (fun r -> str "name" r = name) records with
  | Some r -> r
  | None -> Alcotest.failf "no record named %S emitted" name

(* --- Trace --- *)

let test_span_nesting () =
  let records =
    with_capture (fun () ->
        Trace.span "outer" (fun () ->
            Trace.span "inner" (fun () -> ());
            Trace.instant "mark"))
  in
  Alcotest.(check int) "three records" 3 (List.length records);
  let outer = find_record "outer" records in
  let inner = find_record "inner" records in
  let mark = find_record "mark" records in
  Alcotest.(check string) "instant type" "instant" (str "type" mark);
  Alcotest.(check (float 0.)) "outer is a root" 0. (num "parent" outer);
  Alcotest.(check (float 0.))
    "inner parented to outer" (num "id" outer) (num "parent" inner);
  Alcotest.(check (float 0.))
    "instant parented to outer" (num "id" outer) (num "parent" mark);
  Alcotest.(check bool)
    "inner closed no later than outer"
    true
    (num "dur_us" inner <= num "dur_us" outer)

let test_span_attrs_roundtrip () =
  let records =
    with_capture (fun () ->
        Trace.span "attrs"
          ~attrs:(fun () ->
            [
              ("b", Trace.Bool true);
              ("i", Trace.Int (-42));
              ("f", Trace.Float 2.5);
              ("s", Trace.Str "quote\" and \\slash\nnewline");
            ])
          (fun () -> ()))
  in
  let attrs = field "attrs" (find_record "attrs" records) in
  Alcotest.(check bool)
    "bool attr" true
    (match field "b" attrs with Json.Bool b -> b | _ -> false);
  Alcotest.(check (float 0.)) "int attr" (-42.) (num "i" attrs);
  Alcotest.(check (float 0.)) "float attr" 2.5 (num "f" attrs);
  Alcotest.(check string)
    "string attr escapes round-trip" "quote\" and \\slash\nnewline"
    (str "s" attrs)

let test_span_result_and_exceptions () =
  let got = ref 0 in
  let records =
    with_capture (fun () ->
        got := Trace.span "value" (fun () -> 7);
        match Trace.span "boom" (fun () -> failwith "boom") with
        | () -> Alcotest.fail "exception swallowed"
        | exception Failure _ -> ())
  in
  Alcotest.(check int) "span returns body value" 7 !got;
  (* The span for the raising body must still be emitted. *)
  ignore (find_record "boom" records)

let test_explicit_parent () =
  let records =
    with_capture (fun () ->
        Trace.span "batch" (fun () ->
            let batch = Trace.current_span () in
            (* Simulates the engine pattern: a worker-domain span with no
               DLS ancestry explicitly parented to the batch span. *)
            let d =
              Domain.spawn (fun () ->
                  Trace.span "worker" ~parent:batch (fun () -> ()))
            in
            Domain.join d))
  in
  let batch = find_record "batch" records in
  let worker = find_record "worker" records in
  Alcotest.(check (float 0.))
    "cross-domain parent" (num "id" batch) (num "parent" worker)

let test_disabled_fast_path_no_alloc () =
  Trace.uninstall ();
  let body = Sys.opaque_identity (fun () -> 0) in
  (* Warm up (first call may trigger lazy init elsewhere). *)
  ignore (Trace.span "warm" body);
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Trace.span "hot" body)
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check (float 0.))
    "no minor allocation across 1000 disabled spans" 0. allocated

let test_disabled_returns_value () =
  Trace.uninstall ();
  Alcotest.(check int) "disabled span is transparent" 5
    (Trace.span "x" (fun () -> 5))

(* --- Metrics --- *)

let test_counter_totals () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "counter total" 42 (Metrics.value c);
  let again = Metrics.counter "test.counter" in
  Metrics.incr again;
  Alcotest.(check int) "same name, same cell" 43 (Metrics.value c)

let test_histogram_buckets () =
  Metrics.reset ();
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 0.001; 0.001; 0.002; 1.0; 100.0 ];
  Alcotest.(check int) "count" 5 (Metrics.count h);
  Alcotest.(check (float 1e-9)) "sum" 101.004 (Metrics.sum h);
  (* Quantiles are bucket upper bounds: log2 buckets so within 2x. *)
  let p50 = Metrics.quantile h 0.5 in
  Alcotest.(check bool) "p50 brackets the median" true
    (p50 >= 0.002 && p50 <= 0.004);
  let p99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool) "p99 brackets the max" true
    (p99 >= 100.0 && p99 <= 200.0);
  (* Distinct magnitudes land in distinct buckets. *)
  Alcotest.(check int) "four magnitudes, four buckets" 4
    (List.length (Metrics.bucket_counts h))

let test_snapshot_json () =
  Metrics.reset ();
  let c = Metrics.counter "snap.counter" in
  Metrics.add c 7;
  let h = Metrics.histogram "snap.hist" in
  Metrics.observe h 0.5;
  let snap = Metrics.snapshot () in
  Alcotest.(check (float 0.))
    "counter in snapshot" 7.
    (match Json.path [ "counters"; "snap.counter" ] snap with
    | Some (Json.Number n) -> n
    | _ -> Alcotest.fail "snap.counter missing");
  Alcotest.(check (float 0.))
    "histogram count in snapshot" 1.
    (match Json.path [ "histograms"; "snap.hist"; "count" ] snap with
    | Some (Json.Number n) -> n
    | _ -> Alcotest.fail "snap.hist missing")

(* --- Json --- *)

let test_json_roundtrip () =
  let v =
    Json.Object
      [
        ("s", Json.String "a\"b\\c\n\t");
        ("n", Json.Number 1.5);
        ("i", Json.Number 12345.);
        ("b", Json.Bool false);
        ("z", Json.Null);
        ("l", Json.List [ Json.Number 1.; Json.String "x" ]);
      ]
  in
  let reparsed = Json.parse_exn (Json.to_string v) in
  Alcotest.(check bool) "pretty round-trip" true (reparsed = v);
  let reparsed_compact = Json.parse_exn (Json.to_string ~compact:true v) in
  Alcotest.(check bool) "compact round-trip" true (reparsed_compact = v)

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | Error _ -> ()
    | Ok v -> Alcotest.failf "parsed %S as %s" s (Json.to_string v)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "nul"

(* Escape-sequence edge cases: escaped quotes and backslashes inside
   strings, strict \uXXXX handling (including surrogate pairs and the
   errors around them), and unknown escapes. *)
let test_json_string_escapes () =
  let parses input expected =
    match Json.parse input with
    | Ok (Json.String s) -> Alcotest.(check string) input expected s
    | Ok v -> Alcotest.failf "%s parsed as non-string %s" input (Json.to_string v)
    | Error msg -> Alcotest.failf "%s failed to parse: %s" input msg
  in
  parses {|"a\"b"|} "a\"b";
  parses {|"a\\b"|} "a\\b";
  parses {|"\\\""|} "\\\"";
  parses {|"a\/b"|} "a/b";
  parses {|"\b\f\n\r\t"|} "\b\012\n\r\t";
  (* \uXXXX: ASCII, 2-byte and 3-byte UTF-8, hex case-insensitive *)
  parses "\"\\u0041\"" "A";
  parses "\"\\u00e9\"" "\xc3\xa9";
  parses "\"\\u00E9\"" "\xc3\xa9";
  parses "\"\\u20ac\"" "\xe2\x82\xac";
  parses "\"\\u0000\"" "\x00";
  (* surrogate pair: U+1F600 as 😀 -> 4-byte UTF-8 *)
  parses "\"\\ud83d\\ude00\"" "\xf0\x9f\x98\x80";
  let bad input =
    match Json.parse input with
    | Error _ -> ()
    | Ok v -> Alcotest.failf "accepted %s as %s" input (Json.to_string v)
  in
  bad {|"\u12"|};
  (* int_of_string "0x..." laxness must not leak: underscores are not hex *)
  bad {|"\u00_1"|};
  bad {|"\u 041"|};
  bad {|"\ug000"|};
  (* unpaired surrogates *)
  bad {|"\ud83d"|};
  bad {|"\ud83dx"|};
  bad {|"\ud83dA"|};
  bad {|"\ude00"|};
  (* unknown escape *)
  bad {|"\x41"|};
  (* escaped quote does not close the string *)
  bad {|"a\"|}

let test_json_escape_roundtrip () =
  (* every byte value survives to_string -> parse, escapes included *)
  let every_byte = String.init 256 Char.chr in
  let v = Json.Object [ ("bytes", Json.String every_byte) ] in
  (match Json.parse (Json.to_string ~compact:true v) with
  | Ok v' -> Alcotest.(check bool) "all 256 byte values round-trip" true (v = v')
  | Error msg -> Alcotest.failf "serialized bytes failed to parse: %s" msg);
  let tricky = "ends with backslash \\" in
  match Json.parse (Json.to_string (Json.String tricky)) with
  | Ok (Json.String s) -> Alcotest.(check string) "trailing backslash" tricky s
  | _ -> Alcotest.fail "trailing-backslash string did not round-trip"

let test_json_deep_nesting () =
  let nested depth =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "1"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  (match Json.parse (nested 100) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "100-deep array rejected: %s" msg);
  (match Json.parse (nested 5000) with
  | Ok _ -> Alcotest.fail "5000-deep array should exceed the depth limit"
  | Error msg ->
    let contains needle =
      let n = String.length needle and h = String.length msg in
      let rec at i = i + n <= h && (String.sub msg i n = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "error names the depth limit" true
      (contains "deep"));
  (* objects count against the same limit *)
  let nested_obj depth =
    String.concat "" (List.init depth (fun _ -> {|{"a":|}))
    ^ "1"
    ^ String.make depth '}'
  in
  match Json.parse (nested_obj 5000) with
  | Ok _ -> Alcotest.fail "5000-deep object should exceed the depth limit"
  | Error _ -> ()

(* Property: any JSON value built from exactly-representable numbers
   serializes and reparses to itself, pretty or compact. *)
let json_gen =
  let open QCheck.Gen in
  (* halves are exact in binary floating point, so formatting is stable *)
  let number = map (fun n -> Json.Number (float_of_int n /. 2.0)) (int_range (-10000) 10000) in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let scalar =
    oneof
      [
        number;
        map (fun s -> Json.String s) (string_size (int_range 0 12));
        map (fun b -> Json.Bool b) bool;
        return Json.Null;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (2, scalar);
               ( 1,
                 map (fun l -> Json.List l)
                   (list_size (int_range 0 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Json.Object kvs)
                   (list_size (int_range 0 4)
                      (pair key (self (n / 2)))) );
             ])

let json_arbitrary =
  QCheck.make ~print:(fun j -> Json.to_string j) json_gen

let json_roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"json round-trip property" ~count:500
       json_arbitrary (fun v ->
         Json.parse_exn (Json.to_string v) = v
         && Json.parse_exn (Json.to_string ~compact:true v) = v))

(* --- Bench_diff --- *)

let summary ?(executed = 1000.) ?(hit_rate = 0.5) ?(wall = 10.)
    ?(sections = [ ("corpus", 100., 0.2, 1.0) ]) () =
  let section (name, ex, hr, w) =
    Json.Object
      [
        ("section", Json.String name);
        ("executed", Json.Number ex);
        ("cache_hit_rate", Json.Number hr);
        ("wall_seconds", Json.Number w);
      ]
  in
  Json.Object
    [
      ("submitted", Json.Number 2000.);
      ("executed", Json.Number executed);
      ("cache_hit_rate", Json.Number hit_rate);
      ("engine_wall_seconds", Json.Number wall);
      ("sections", Json.List (List.map section sections));
    ]

let diff ?thresholds baseline current =
  Bench_diff.compare_summaries ?thresholds ~baseline ~current ()

let check_verdict what expected report =
  let show = function
    | Bench_diff.Pass -> "pass"
    | Bench_diff.Warn -> "warn"
    | Bench_diff.Fail -> "fail"
    | Bench_diff.Mismatch -> "mismatch"
  in
  Alcotest.(check string) what (show expected) (show report.Bench_diff.verdict)

let test_diff_identical () =
  let s = summary () in
  let report = diff s s in
  check_verdict "identical summaries pass" Bench_diff.Pass report;
  Alcotest.(check int) "exit code 0" 0 (Bench_diff.exit_code report)

let test_diff_executed_regression () =
  let report = diff (summary ()) (summary ~executed:1500. ()) in
  check_verdict "executed +50% fails" Bench_diff.Fail report;
  Alcotest.(check int) "exit code 1" 1 (Bench_diff.exit_code report)

let test_diff_executed_at_limit_passes () =
  (* limit = baseline * 1.10 + 4 = 1104; exactly at the limit passes
     (strict inequality), one past it fails. *)
  let report = diff (summary ()) (summary ~executed:1104. ()) in
  check_verdict "at-limit passes" Bench_diff.Pass report;
  let report = diff (summary ()) (summary ~executed:1105. ()) in
  check_verdict "one past limit fails" Bench_diff.Fail report

let test_diff_hit_rate_regression () =
  let report = diff (summary ()) (summary ~hit_rate:0.4 ()) in
  check_verdict "hit-rate drop fails" Bench_diff.Fail report;
  let report = diff (summary ()) (summary ~hit_rate:0.49 ()) in
  check_verdict "within threshold passes" Bench_diff.Pass report

let test_diff_improvement_passes () =
  let report = diff (summary ()) (summary ~executed:500. ~hit_rate:0.9 ()) in
  check_verdict "improvements pass" Bench_diff.Pass report

let test_diff_wall_warns_by_default () =
  let report = diff (summary ()) (summary ~wall:100. ()) in
  check_verdict "wall regression warns" Bench_diff.Warn report;
  Alcotest.(check int) "warn exits 0" 0 (Bench_diff.exit_code report);
  let thresholds =
    { Bench_diff.default_thresholds with wall_fails = true }
  in
  let report = diff ~thresholds (summary ()) (summary ~wall:100. ()) in
  check_verdict "wall regression fails with wall_fails" Bench_diff.Fail report

let test_diff_missing_section_fails () =
  let report = diff (summary ()) (summary ~sections:[] ()) in
  check_verdict "missing section fails" Bench_diff.Fail report

let test_diff_new_section_passes () =
  let sections = [ ("corpus", 100., 0.2, 1.0); ("extra", 5., 0.0, 0.1) ] in
  let report = diff (summary ()) (summary ~sections ()) in
  check_verdict "new section is informational" Bench_diff.Pass report

let test_diff_section_regression_fails () =
  let sections = [ ("corpus", 200., 0.2, 1.0) ] in
  let report = diff (summary ()) (summary ~sections ()) in
  check_verdict "per-section executed regression fails" Bench_diff.Fail report

let test_diff_schema_check () =
  let versioned v = Json.Object [ ("schema_version", Json.Number v) ] in
  Alcotest.(check bool) "current schema accepted" true
    (Result.is_ok (Bench_diff.check_schema (versioned 5.0)));
  let too_old what doc =
    match Bench_diff.check_schema doc with
    | Ok () -> Alcotest.fail (what ^ ": accepted a too-old schema")
    | Error msg ->
      let contains needle =
        let n = String.length needle and h = String.length msg in
        let rec at i = i + n <= h && (String.sub msg i n = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) (what ^ ": message says too old") true
        (contains "too old")
  in
  (* a v1 summary has no schema_version field at all *)
  too_old "v1 (field absent)" (summary ());
  too_old "explicit 1.0" (versioned 1.0);
  too_old "v2 (pre-manifest)" (versioned 2.0);
  too_old "v3 (pre-manifest)" (versioned 3.0);
  too_old "v4 (pre-manifest)" (versioned 4.0)

let with_manifest ~id ~experiment s =
  match s with
  | Json.Object fields ->
    Json.Object
      (fields
      @ [
          ( "manifest",
            Json.Object
              [
                ("id", Json.String id); ("experiment", Json.String experiment);
              ] );
        ])
  | other -> other

let test_diff_experiment_mismatch () =
  (* different experiment ids: not comparable, distinct verdict *)
  let a = with_manifest ~id:"aaaa" ~experiment:"e1-deadbeef0000" (summary ()) in
  let b = with_manifest ~id:"bbbb" ~experiment:"e2-cafebabe0000" (summary ()) in
  let report = diff a b in
  check_verdict "different experiments mismatch" Bench_diff.Mismatch report;
  Alcotest.(check int) "mismatch exits 3" 3 (Bench_diff.exit_code report)

let test_diff_manifest_id_informational () =
  (* same experiment, different execution config: comparable, Info only *)
  let a = with_manifest ~id:"aaaa" ~experiment:"e1" (summary ()) in
  let b = with_manifest ~id:"bbbb" ~experiment:"e1" (summary ()) in
  let report = diff a b in
  check_verdict "same experiment still passes" Bench_diff.Pass report

let with_faults ?(lost = 0.) ?(quarantined = 0.) s =
  match s with
  | Json.Object fields ->
    Json.Object
      (fields
      @ [
          ( "faults",
            Json.Object
              [
                ("lost", Json.Number lost);
                ("quarantined_jobs", Json.Number quarantined);
              ] );
        ])
  | other -> other

let test_diff_lost_jobs_fail () =
  let report = diff (summary ()) (with_faults ~lost:1. (summary ())) in
  check_verdict "a lost job fails regardless of baseline" Bench_diff.Fail
    report;
  let report = diff (summary ()) (with_faults (summary ())) in
  check_verdict "zero lost passes" Bench_diff.Pass report

let test_diff_quarantine_regression () =
  let report = diff (summary ()) (with_faults ~quarantined:2. (summary ())) in
  check_verdict "new quarantines vs clean baseline fail" Bench_diff.Fail
    report;
  let report =
    diff
      (with_faults ~quarantined:2. (summary ()))
      (with_faults ~quarantined:2. (summary ()))
  in
  check_verdict "unchanged quarantine count passes" Bench_diff.Pass report;
  let report =
    diff
      (with_faults ~quarantined:2. (summary ()))
      (with_faults ~quarantined:1. (summary ()))
  in
  check_verdict "fewer quarantines pass" Bench_diff.Pass report

(* --- schema v4: store tier and the warm-cache gate --- *)

let with_store ?(hits = 95.) ?(misses = 5.) ?(hit_rate = 0.95) s =
  match s with
  | Json.Object fields ->
    Json.Object
      (fields
      @ [
          ( "store",
            Json.Object
              [
                ("enabled", Json.Bool true);
                ("path", Json.String "/tmp/store");
                ("hits", Json.Number hits);
                ("misses", Json.Number misses);
                ("invalidated", Json.Number 0.);
                ("writes", Json.Number misses);
                ("hit_rate", Json.Number hit_rate);
              ] );
        ])
  | other -> other

let test_diff_store_hit_rate () =
  (* a regressed store hit rate fails like a regressed cache-hit rate *)
  let report =
    diff (with_store (summary ())) (with_store ~hit_rate:0.5 (summary ()))
  in
  check_verdict "store hit-rate drop fails" Bench_diff.Fail report;
  let report = diff (with_store (summary ())) (with_store (summary ())) in
  check_verdict "unchanged store hit rate passes" Bench_diff.Pass report;
  (* a cold baseline (rate 0) imposes nothing on the current run *)
  let report =
    diff (with_store ~hits:0. ~hit_rate:0. (summary ())) (summary ())
  in
  check_verdict "cold baseline imposes no store check" Bench_diff.Pass report

let test_diff_min_store_hit_rate_floor () =
  let gate baseline current =
    Bench_diff.compare_summaries ~min_store_hit_rate:0.95 ~baseline ~current ()
  in
  let report =
    gate (with_store (summary ())) (with_store ~hit_rate:0.90 (summary ()))
  in
  check_verdict "below the floor fails" Bench_diff.Fail report;
  let report =
    gate (with_store (summary ())) (with_store ~hit_rate:0.99 (summary ()))
  in
  check_verdict "above the floor passes" Bench_diff.Pass report;
  (* a summary with no store object cannot satisfy the floor *)
  let report = gate (summary ()) (summary ()) in
  check_verdict "no store object fails the floor" Bench_diff.Fail report

(* --- schema v6: simulator throughput and the perf gate --- *)

let with_perf ?(blocks_per_sec = 1000.) s =
  match s with
  | Json.Object fields ->
    Json.Object
      (fields
      @ [
          ( "perf",
            Json.Object
              [
                ("blocks", Json.Number 4000.);
                ("sim_seconds", Json.Number (4000. /. blocks_per_sec));
                ("blocks_per_sec", Json.Number blocks_per_sec);
              ] );
        ])
  | other -> other

let test_diff_min_speedup () =
  let gate baseline current =
    Bench_diff.compare_summaries ~min_speedup:0.8 ~baseline ~current ()
  in
  let report =
    gate (with_perf (summary ())) (with_perf ~blocks_per_sec:700. (summary ()))
  in
  check_verdict "below the floor fails" Bench_diff.Fail report;
  let report =
    gate (with_perf (summary ())) (with_perf ~blocks_per_sec:900. (summary ()))
  in
  check_verdict "between floor and parity warns" Bench_diff.Warn report;
  let report =
    gate (with_perf (summary ())) (with_perf ~blocks_per_sec:1200. (summary ()))
  in
  check_verdict "above parity passes" Bench_diff.Pass report;
  let report =
    gate (with_perf (summary ())) (with_perf ~blocks_per_sec:1000. (summary ()))
  in
  check_verdict "exactly at parity passes" Bench_diff.Pass report;
  (* a summary predating schema v6 has no perf object: the gate cannot
     be satisfied, on either side *)
  let report = gate (with_perf (summary ())) (summary ()) in
  check_verdict "current without perf fails" Bench_diff.Fail report;
  let report = gate (summary ()) (with_perf (summary ())) in
  check_verdict "baseline without perf fails" Bench_diff.Fail report;
  (* without --min-speedup the perf object imposes nothing *)
  let report =
    diff (with_perf (summary ())) (with_perf ~blocks_per_sec:1. (summary ()))
  in
  check_verdict "no floor requested: perf not gated" Bench_diff.Pass report

let test_diff_min_speedup_zero_baseline () =
  (* a baseline whose perf object exists but records zero blocks per
     second (a zero-block run: empty corpus or fully warm store) can
     anchor no ratio — distinct from the missing-field case, and a
     failure either way rather than a divide-by-zero pass *)
  let gate baseline current =
    Bench_diff.compare_summaries ~min_speedup:0.8 ~baseline ~current ()
  in
  let report =
    gate
      (with_perf ~blocks_per_sec:0. (summary ()))
      (with_perf ~blocks_per_sec:900. (summary ()))
  in
  check_verdict "zero-block baseline fails the speedup gate" Bench_diff.Fail
    report;
  Alcotest.(check bool) "finding names the zero baseline" true
    (List.exists
       (fun (f : Bench_diff.finding) ->
         f.metric = "perf.blocks_per_sec" && f.severity = Bench_diff.Regression)
       report.Bench_diff.findings);
  (* zero on both sides is still a failure, not 0/0 = pass *)
  let report =
    gate
      (with_perf ~blocks_per_sec:0. (summary ()))
      (with_perf ~blocks_per_sec:0. (summary ()))
  in
  check_verdict "zero vs zero fails" Bench_diff.Fail report

(* --- schema v7: the serving object and its gates --- *)

let with_serving ?(lost = 0.) ?(shed_after_accept = 0.)
    ?(coalesce_ratio = 2.5) ?(p99_ms = 40.) ?(rps = 5000.) s =
  match s with
  | Json.Object fields ->
    Json.Object
      (fields
      @ [
          ( "serving",
            Json.Object
              [
                ("requests", Json.Number 1000.);
                ("ok", Json.Number (1000. -. lost));
                ("lost", Json.Number lost);
                ("shed_after_accept", Json.Number shed_after_accept);
                ("coalesce_ratio", Json.Number coalesce_ratio);
                ("p99_ms", Json.Number p99_ms);
                ("requests_per_sec", Json.Number rps);
              ] );
        ])
  | other -> other

let test_diff_serving_invariants () =
  (* lost and shed_after_accept are absolute invariants: they gate
     whenever the current summary carries a serving object, no flag
     needed *)
  let report = diff (with_serving (summary ())) (with_serving (summary ())) in
  check_verdict "clean serving run passes" Bench_diff.Pass report;
  let report =
    diff (with_serving (summary ())) (with_serving ~lost:1. (summary ()))
  in
  check_verdict "a lost request fails" Bench_diff.Fail report;
  let report =
    diff
      (with_serving (summary ()))
      (with_serving ~shed_after_accept:3. (summary ()))
  in
  check_verdict "shed-after-accept fails" Bench_diff.Fail report;
  (* a summary without a serving object (a bench run) is untouched *)
  let report = diff (summary ()) (summary ()) in
  check_verdict "no serving object: nothing gated" Bench_diff.Pass report

let test_diff_min_coalesce () =
  let gate baseline current =
    Bench_diff.compare_summaries ~min_coalesce:1.05 ~baseline ~current ()
  in
  let report =
    gate
      (with_serving (summary ()))
      (with_serving ~coalesce_ratio:1.0 (summary ()))
  in
  check_verdict "ratio below the floor fails" Bench_diff.Fail report;
  let report =
    gate
      (with_serving (summary ()))
      (with_serving ~coalesce_ratio:3.9 (summary ()))
  in
  check_verdict "ratio above the floor passes" Bench_diff.Pass report;
  (* floor requested against a summary with no serving object at all:
     the gate cannot be evaluated, which is a failure, not a pass *)
  let report = gate (with_serving (summary ())) (summary ()) in
  check_verdict "current without serving fails the coalesce gate"
    Bench_diff.Fail report;
  (* without the flag a weak ratio imposes nothing *)
  let report =
    diff
      (with_serving (summary ()))
      (with_serving ~coalesce_ratio:1.0 (summary ()))
  in
  check_verdict "no floor requested: ratio not gated" Bench_diff.Pass report

let test_diff_max_p99 () =
  let gate baseline current =
    Bench_diff.compare_summaries ~max_p99_ms:100. ~baseline ~current ()
  in
  let report =
    gate (with_serving (summary ())) (with_serving ~p99_ms:250. (summary ()))
  in
  check_verdict "p99 above the ceiling fails" Bench_diff.Fail report;
  let report =
    gate (with_serving (summary ())) (with_serving ~p99_ms:99. (summary ()))
  in
  check_verdict "p99 below the ceiling passes" Bench_diff.Pass report;
  let report =
    gate (with_serving (summary ())) (with_serving ~p99_ms:100. (summary ()))
  in
  check_verdict "p99 exactly at the ceiling passes" Bench_diff.Pass report;
  let report = gate (with_serving (summary ())) (summary ()) in
  check_verdict "current without serving fails the p99 gate" Bench_diff.Fail
    report

let test_diff_min_rps () =
  (* schema v8: serving.requests_per_sec gated as a ratio against the
     baseline, like perf.blocks_per_sec *)
  let gate baseline current =
    Bench_diff.compare_summaries ~min_rps:0.8 ~baseline ~current ()
  in
  let report =
    gate
      (with_serving ~rps:5000. (summary ()))
      (with_serving ~rps:3000. (summary ()))
  in
  check_verdict "throughput below the floor fails" Bench_diff.Fail report;
  let report =
    gate
      (with_serving ~rps:5000. (summary ()))
      (with_serving ~rps:4800. (summary ()))
  in
  check_verdict "throughput above the floor passes" Bench_diff.Pass report;
  (* a baseline that cannot anchor the ratio fails cleanly *)
  let report =
    gate
      (with_serving ~rps:0. (summary ()))
      (with_serving ~rps:5000. (summary ()))
  in
  check_verdict "zero-rps baseline fails" Bench_diff.Fail report;
  let report = gate (summary ()) (with_serving ~rps:5000. (summary ())) in
  check_verdict "baseline without serving fails the rps gate" Bench_diff.Fail
    report;
  let report = gate (with_serving ~rps:5000. (summary ())) (summary ()) in
  check_verdict "current without serving fails the rps gate" Bench_diff.Fail
    report;
  (* without the flag a throughput drop imposes nothing *)
  let report =
    diff
      (with_serving ~rps:5000. (summary ()))
      (with_serving ~rps:100. (summary ()))
  in
  check_verdict "no floor requested: rps not gated" Bench_diff.Pass report

let test_diff_serving_volatile_for_identity () =
  (* the serving object is volatile for --identical comparisons: two
     load runs never share latencies, and a load summary compared to
     itself with different serving numbers must still be identical *)
  let a = with_serving ~p99_ms:10. (summary ()) in
  let b = with_serving ~p99_ms:99. (summary ()) in
  Alcotest.(check bool) "serving stripped" true
    (Json.member "serving" (Bench_diff.strip_volatile a) = None);
  let report =
    Bench_diff.compare_summaries ~require_identical:true ~baseline:a
      ~current:b ()
  in
  check_verdict "identity ignores serving deltas" Bench_diff.Pass report

let test_strip_volatile () =
  let s =
    with_perf
      (with_store ~hit_rate:0.95
         (with_faults (summary ~executed:1000. ~wall:10. ())))
  in
  let stripped = Bench_diff.strip_volatile s in
  Alcotest.(check bool) "wall stripped" true
    (Json.member "engine_wall_seconds" stripped = None);
  Alcotest.(check bool) "store stripped" true
    (Json.member "store" stripped = None);
  Alcotest.(check bool) "perf stripped (timings are volatile)" true
    (Json.member "perf" stripped = None);
  Alcotest.(check bool) "executed stripped" true
    (Json.member "executed" stripped = None);
  Alcotest.(check bool) "submitted stripped" true
    (Json.member "submitted" stripped = None);
  (* stripping recurses into sections *)
  match Json.member "sections" stripped with
  | Some (Json.List (sec :: _)) ->
    Alcotest.(check bool) "section wall stripped" true
      (Json.member "wall_seconds" sec = None);
    Alcotest.(check bool) "section name kept" true
      (Json.member "section" sec <> None)
  | _ -> Alcotest.fail "sections missing after strip"

let test_diff_identical_mode () =
  let identical baseline current =
    Bench_diff.compare_summaries ~require_identical:true ~baseline ~current ()
  in
  (* volatile-only differences (store traffic) pass identically *)
  let report =
    identical
      (with_store ~hits:0. ~misses:100. ~hit_rate:0. (summary ()))
      (with_store ~hit_rate:0.95 (summary ()))
  in
  check_verdict "volatile-only differences are identical" Bench_diff.Pass
    report;
  (* a non-volatile difference (a section's name) fails and names its
     path *)
  let renamed_section =
    summary ~sections:[ ("corpus-renamed", 100., 0.2, 1.0) ] ()
  in
  let report = identical (summary ()) renamed_section in
  check_verdict "non-volatile difference fails" Bench_diff.Fail report;
  Alcotest.(check bool) "finding names the differing path" true
    (List.exists
       (fun (f : Bench_diff.finding) ->
         String.length f.metric >= 10
         && String.sub f.metric 0 10 = "identical:")
       report.Bench_diff.findings)

let test_diff_schema_v5_accepted () =
  let versioned v = Json.Object [ ("schema_version", Json.Number v) ] in
  Alcotest.(check bool) "v5 (manifest era) accepted" true
    (Result.is_ok (Bench_diff.check_schema (versioned 5.0)))

let suite =
  [
    Alcotest.test_case "span nesting and parents" `Quick test_span_nesting;
    Alcotest.test_case "span attrs round-trip" `Quick
      test_span_attrs_roundtrip;
    Alcotest.test_case "span result and exceptions" `Quick
      test_span_result_and_exceptions;
    Alcotest.test_case "explicit cross-domain parent" `Quick
      test_explicit_parent;
    Alcotest.test_case "disabled path allocates nothing" `Quick
      test_disabled_fast_path_no_alloc;
    Alcotest.test_case "disabled span transparent" `Quick
      test_disabled_returns_value;
    Alcotest.test_case "counter totals" `Quick test_counter_totals;
    Alcotest.test_case "histogram bucketing" `Quick test_histogram_buckets;
    Alcotest.test_case "metrics snapshot json" `Quick test_snapshot_json;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json string escapes" `Quick test_json_string_escapes;
    Alcotest.test_case "json escape round-trip" `Quick
      test_json_escape_roundtrip;
    Alcotest.test_case "json deep nesting limit" `Quick test_json_deep_nesting;
    json_roundtrip_prop;
    Alcotest.test_case "diff: identical passes" `Quick test_diff_identical;
    Alcotest.test_case "diff: executed regression" `Quick
      test_diff_executed_regression;
    Alcotest.test_case "diff: at-limit boundary" `Quick
      test_diff_executed_at_limit_passes;
    Alcotest.test_case "diff: hit-rate regression" `Quick
      test_diff_hit_rate_regression;
    Alcotest.test_case "diff: improvement passes" `Quick
      test_diff_improvement_passes;
    Alcotest.test_case "diff: wall warns by default" `Quick
      test_diff_wall_warns_by_default;
    Alcotest.test_case "diff: missing section" `Quick
      test_diff_missing_section_fails;
    Alcotest.test_case "diff: new section" `Quick test_diff_new_section_passes;
    Alcotest.test_case "diff: section regression" `Quick
      test_diff_section_regression_fails;
    Alcotest.test_case "diff: schema too old" `Quick test_diff_schema_check;
    Alcotest.test_case "diff: lost jobs fail" `Quick test_diff_lost_jobs_fail;
    Alcotest.test_case "diff: quarantine regression" `Quick
      test_diff_quarantine_regression;
    Alcotest.test_case "diff: store hit rate" `Quick test_diff_store_hit_rate;
    Alcotest.test_case "diff: min store hit-rate floor" `Quick
      test_diff_min_store_hit_rate_floor;
    Alcotest.test_case "diff: min speedup floor" `Quick test_diff_min_speedup;
    Alcotest.test_case "diff: zero-block baseline speedup" `Quick
      test_diff_min_speedup_zero_baseline;
    Alcotest.test_case "diff: serving invariants" `Quick
      test_diff_serving_invariants;
    Alcotest.test_case "diff: min coalesce floor" `Quick test_diff_min_coalesce;
    Alcotest.test_case "diff: max p99 ceiling" `Quick test_diff_max_p99;
    Alcotest.test_case "diff: min rps floor" `Quick test_diff_min_rps;
    Alcotest.test_case "diff: serving volatile for identity" `Quick
      test_diff_serving_volatile_for_identity;
    Alcotest.test_case "diff: strip volatile" `Quick test_strip_volatile;
    Alcotest.test_case "diff: identical mode" `Quick test_diff_identical_mode;
    Alcotest.test_case "diff: schema v5 accepted" `Quick
      test_diff_schema_v5_accepted;
    Alcotest.test_case "diff: experiment mismatch" `Quick
      test_diff_experiment_mismatch;
    Alcotest.test_case "diff: manifest id informational" `Quick
      test_diff_manifest_id_informational;
  ]
