(* Tests for the persistent content-addressed measurement store and
   its engine integration: the SHA-256 and codec primitives, segment
   crash-safety (truncation at every byte offset of the final record),
   compaction, golden fingerprint pins, the warm-run zero-profiler-call
   guarantee, generation-keyed invalidation, and the determinism matrix
   {cold, warm, post-gc} x workers {1, 2, 4}. *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_store_dir prefix f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* --- SHA-256 ---------------------------------------------------------- *)

let test_sha256_vectors () =
  let check what input expected =
    Alcotest.(check string) what expected (Store.Sha256.hex input)
  in
  check "empty string" ""
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check "abc" "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "two-block message"
    "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  check "million a's"
    (String.make 1_000_000 'a')
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0";
  (* length straddling the padding boundary (55/56/64 bytes) *)
  List.iter
    (fun len ->
      let s = String.make len 'x' in
      Alcotest.(check string)
        (Printf.sprintf "len %d digest is stable" len)
        (Store.Sha256.hex s) (Store.Sha256.hex s);
      Alcotest.(check int)
        (Printf.sprintf "len %d digest is 32 bytes" len)
        32
        (String.length (Store.Sha256.digest s)))
    [ 55; 56; 63; 64; 65 ]

let test_codec_roundtrip () =
  let b = Buffer.create 64 in
  Store.Codec.u8 b 0xAB;
  Store.Codec.u16 b 0xBEEF;
  Store.Codec.u32 b 0xDEADBEEF;
  Store.Codec.i64 b (-1L);
  let s = Buffer.to_bytes b in
  Alcotest.(check int) "u8" 0xAB (Store.Codec.get_u8 s 0);
  Alcotest.(check int) "u16" 0xBEEF (Store.Codec.get_u16 s 1);
  Alcotest.(check int) "u32" 0xDEADBEEF (Store.Codec.get_u32 s 3);
  Alcotest.(check int64) "i64" (-1L) (Store.Codec.get_i64 s 7);
  let payload = String.init 256 Char.chr in
  let hex = Store.Codec.to_hex payload in
  Alcotest.(check (option string))
    "hex round-trips arbitrary bytes" (Some payload)
    (Store.Codec.of_hex hex);
  Alcotest.(check (option string)) "odd-length hex rejected" None
    (Store.Codec.of_hex "abc");
  Alcotest.(check (option string)) "non-hex rejected" None
    (Store.Codec.of_hex "zz")

let test_fnv1a64_vectors () =
  (* classic FNV-1a 64-bit test vectors *)
  Alcotest.(check int64) "fnv1a64(\"\")" 0xCBF29CE484222325L
    (Store.Codec.fnv1a64 "");
  Alcotest.(check int64) "fnv1a64(\"a\")" 0xAF63DC4C8601EC8CL
    (Store.Codec.fnv1a64 "a");
  Alcotest.(check int64) "fnv1a64(\"foobar\")" 0x85944171F73967E8L
    (Store.Codec.fnv1a64 "foobar")

(* --- store basics ----------------------------------------------------- *)

let key_of i = Store.Sha256.hex (Printf.sprintf "key-%d" i)
let gen_a = Store.Sha256.hex "generation-a"
let gen_b = Store.Sha256.hex "generation-b"

let test_store_basics () =
  with_store_dir "bhive_store_basics" (fun dir ->
      let st = Store.open_ dir in
      Alcotest.(check bool) "fresh store misses" true
        (Store.get st ~key:(key_of 0) ~gen:gen_a = Store.Miss);
      Alcotest.(check bool) "put appends" true
        (Store.put st ~key:(key_of 0) ~gen:gen_a "payload-0");
      Alcotest.(check bool) "hit under the written generation" true
        (Store.get st ~key:(key_of 0) ~gen:gen_a = Store.Hit "payload-0");
      Alcotest.(check bool) "other generation is stale" true
        (Store.get st ~key:(key_of 0) ~gen:gen_b = Store.Stale);
      Alcotest.(check bool) "same (key, gen) put is skipped" false
        (Store.put st ~key:(key_of 0) ~gen:gen_a "payload-0");
      Alcotest.(check bool) "new generation supersedes" true
        (Store.put st ~key:(key_of 0) ~gen:gen_b "payload-0b");
      Alcotest.(check bool) "new generation now hits" true
        (Store.get st ~key:(key_of 0) ~gen:gen_b = Store.Hit "payload-0b");
      Alcotest.(check bool) "old generation now stale" true
        (Store.get st ~key:(key_of 0) ~gen:gen_a = Store.Stale);
      let s = Store.stats st in
      Alcotest.(check int) "one live record" 1 s.Store.s_live;
      Alcotest.(check int) "two records on disk" 2 s.Store.s_records;
      Alcotest.(check int) "one superseded" 1 s.Store.s_superseded;
      Store.close st;
      (* reopen: the index is rebuilt from the segments *)
      let st = Store.open_ dir in
      Alcotest.(check bool) "reopened store still hits" true
        (Store.get st ~key:(key_of 0) ~gen:gen_b = Store.Hit "payload-0b");
      let v = Store.verify st in
      Alcotest.(check int) "verify: no corruption" 0 v.Store.v_corrupt;
      Alcotest.(check int) "verify: no torn tail" 0 v.Store.v_torn;
      Store.close st)

let test_store_fold_sorted () =
  with_store_dir "bhive_store_fold" (fun dir ->
      let st = Store.open_ dir in
      (* enough keys to land in several shards *)
      for i = 0 to 63 do
        ignore
          (Store.put st ~key:(key_of i) ~gen:gen_a
             (Printf.sprintf "payload-%d" i))
      done;
      let keys =
        Store.fold st ~init:[] ~f:(fun acc ~key ~gen payload ->
            Alcotest.(check string) "generation preserved" gen_a gen;
            Alcotest.(check bool) "payload preserved" true
              (String.length payload > 0);
            key :: acc)
        |> List.rev
      in
      Alcotest.(check int) "fold visits every record" 64 (List.length keys);
      Alcotest.(check bool) "fold is key-sorted" true
        (keys = List.sort compare keys);
      Store.close st)

let test_store_binary_payload () =
  with_store_dir "bhive_store_binary" (fun dir ->
      let st = Store.open_ dir in
      let payload = String.init 4096 (fun i -> Char.chr (i land 0xFF)) in
      ignore (Store.put st ~key:(key_of 1) ~gen:gen_a payload);
      Alcotest.(check bool) "4 KiB binary payload round-trips" true
        (Store.get st ~key:(key_of 1) ~gen:gen_a = Store.Hit payload);
      Store.close st;
      let st = Store.open_ dir in
      Alcotest.(check bool) "and survives reopen" true
        (Store.get st ~key:(key_of 1) ~gen:gen_a = Store.Hit payload);
      Store.close st)

let test_store_rejects_file_path () =
  let path = Filename.temp_file "bhive_store_notdir" "" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      match Store.open_ path with
      | exception Failure msg ->
        Alcotest.(check bool) "error names the path" true
          (contains ~needle:path msg)
      | st ->
        Store.close st;
        Alcotest.fail "opening a file as a store should fail")

(* --- crash safety ----------------------------------------------------- *)

let shard_of_key key =
  Int64.to_int (Int64.logand (Store.Codec.fnv1a64 key) 15L)

let shard_file dir key =
  Filename.concat dir (Printf.sprintf "seg-%02d.bhs" (shard_of_key key))

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

(* Truncate the last record's shard segment at every byte offset inside
   that record, reopen, and check: the torn record is dropped, every
   earlier record is still served, and the torn-tail event is counted.
   This is the recovery path a mid-append crash exercises. *)
let test_truncation_at_every_offset () =
  with_store_dir "bhive_store_torn" (fun dir ->
      (* Pick three keys that land in the same shard so the truncated
         segment holds context records before the victim. *)
      let shard0 = shard_of_key (key_of 0) in
      let same_shard =
        List.filter (fun i -> shard_of_key (key_of i) = shard0)
          (List.init 400 Fun.id)
      in
      let k1, k2, k3 =
        match same_shard with
        | a :: b :: c :: _ -> (key_of a, key_of b, key_of c)
        | _ -> Alcotest.fail "could not find three keys in one shard"
      in
      let st = Store.open_ dir in
      ignore (Store.put st ~key:k1 ~gen:gen_a "first");
      ignore (Store.put st ~key:k2 ~gen:gen_a "second");
      let seg = shard_file dir k1 in
      let before = (Unix.stat seg).Unix.st_size in
      ignore (Store.put st ~key:k3 ~gen:gen_a "third-the-victim");
      Store.close st;
      let intact = read_file seg in
      let total = String.length intact in
      Alcotest.(check bool) "the victim record appended" true (total > before);
      for cut = before to total - 1 do
        write_file seg (String.sub intact 0 cut);
        let st = Store.open_ dir in
        Alcotest.(check bool)
          (Printf.sprintf "cut@%d: earlier record 1 survives" cut)
          true
          (Store.get st ~key:k1 ~gen:gen_a = Store.Hit "first");
        Alcotest.(check bool)
          (Printf.sprintf "cut@%d: earlier record 2 survives" cut)
          true
          (Store.get st ~key:k2 ~gen:gen_a = Store.Hit "second");
        Alcotest.(check bool)
          (Printf.sprintf "cut@%d: torn record never served" cut)
          true
          (Store.get st ~key:k3 ~gen:gen_a = Store.Miss);
        let s = Store.stats st in
        Alcotest.(check int)
          (Printf.sprintf "cut@%d: only the torn record dropped" cut)
          2 s.Store.s_live;
        (* a cut exactly at the record boundary is a clean tail, any
           cut inside the record is a detected torn tail *)
        Alcotest.(check int)
          (Printf.sprintf "cut@%d: torn-tail event counted" cut)
          (if cut = before then 0 else 1)
          s.Store.s_torn;
        let v = Store.verify st in
        Alcotest.(check int)
          (Printf.sprintf "cut@%d: verify sees no corruption after repair" cut)
          0 v.Store.v_corrupt;
        Alcotest.(check int)
          (Printf.sprintf "cut@%d: verify reports the torn tail" cut)
          (if cut = before then 0 else 1)
          v.Store.v_torn;
        Store.close st;
        (* the tail was truncated away: a fresh append must work *)
        let st = Store.open_ dir in
        ignore (Store.put st ~key:k3 ~gen:gen_a "third-again");
        Alcotest.(check bool)
          (Printf.sprintf "cut@%d: store is writable after repair" cut)
          true
          (Store.get st ~key:k3 ~gen:gen_a = Store.Hit "third-again");
        Store.close st;
        write_file seg intact
      done)

let test_bitflip_detected () =
  with_store_dir "bhive_store_bitflip" (fun dir ->
      let st = Store.open_ dir in
      ignore (Store.put st ~key:(key_of 7) ~gen:gen_a "precious");
      Store.close st;
      let seg = shard_file dir (key_of 7) in
      let intact = read_file seg in
      (* flip one bit inside the final record's payload *)
      let b = Bytes.of_string intact in
      let pos = Bytes.length b - 12 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      write_file seg (Bytes.to_string b);
      let st = Store.open_ dir in
      Alcotest.(check bool) "bit-flipped record never served" true
        (Store.get st ~key:(key_of 7) ~gen:gen_a = Store.Miss);
      Alcotest.(check int) "counted as a torn tail" 1 (Store.stats st).Store.s_torn;
      Store.close st)

(* --- sidecar index crash safety --------------------------------------- *)

let idx_file dir key = shard_file dir key ^ ".idx"

let snapshot st =
  Store.fold st ~init:[] ~f:(fun acc ~key ~gen payload ->
      (key, gen, payload) :: acc)
  |> List.rev

(* Three keys in one shard, written and closed; [reference] is what any
   correct open must serve, however mangled the sidecar is. *)
let with_indexed_shard prefix f =
  with_store_dir prefix (fun dir ->
      let shard0 = shard_of_key (key_of 0) in
      let same_shard =
        List.filter (fun i -> shard_of_key (key_of i) = shard0)
          (List.init 400 Fun.id)
      in
      let keys =
        match same_shard with
        | a :: b :: c :: _ -> [ key_of a; key_of b; key_of c ]
        | _ -> Alcotest.fail "could not find three keys in one shard"
      in
      let st = Store.open_ dir in
      List.iteri
        (fun i key ->
          ignore (Store.put st ~key ~gen:gen_a (Printf.sprintf "payload-%d" i)))
        keys;
      let reference = snapshot st in
      Store.close st;
      f dir keys reference)

let check_serves what dir keys reference =
  let st = Store.open_ dir in
  Alcotest.(check bool) (what ^ ": records byte-identical") true
    (snapshot st = reference);
  List.iteri
    (fun i key ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: key %d served" what i)
        true
        (Store.get st ~key ~gen:gen_a = Store.Hit (Printf.sprintf "payload-%d" i)))
    keys;
  let v = Store.verify st in
  Alcotest.(check int) (what ^ ": verify clean") 0 v.Store.v_corrupt;
  Alcotest.(check int) (what ^ ": index agrees after heal") 0
    v.Store.v_index_mismatched;
  Store.close st

let test_sidecar_persisted_open () =
  with_store_dir "bhive_idx_open" (fun dir ->
      let st = Store.open_ dir in
      for i = 0 to 63 do
        ignore
          (Store.put st ~key:(key_of i) ~gen:gen_a (Printf.sprintf "p%d" i))
      done;
      let reference = snapshot st in
      Store.close st;
      let st = Store.open_ dir in
      let s = Store.stats st in
      Alcotest.(check bool) "some shard opened from its sidecar" true
        (s.Store.s_index_persisted > 0);
      List.iter
        (fun ss ->
          if ss.Store.ss_records > 0 then
            Alcotest.(check bool)
              (Printf.sprintf "shard %d used its persisted index"
                 ss.Store.ss_shard)
              true ss.Store.ss_persisted)
        s.Store.s_per_shard;
      Alcotest.(check bool) "persisted open serves identical records" true
        (snapshot st = reference);
      Alcotest.(check bool) "warm get hits" true
        (Store.get st ~key:(key_of 5) ~gen:gen_a = Store.Hit "p5");
      let v = Store.verify st in
      Alcotest.(check bool) "verify checked the sidecar entries" true
        (v.Store.v_index_entries >= 64);
      Alcotest.(check int) "verify: no index disagreement" 0
        v.Store.v_index_mismatched;
      Alcotest.(check int) "verify: no index gaps" 0 v.Store.v_index_missing;
      Store.close st)

(* The satellite matrix: truncate the sidecar at every byte offset and
   flip a bit at every byte offset. Whatever the damage, the open must
   degrade to the segment scan (or heal the tail) and serve exactly the
   intact store's records — corruption costs open time, never answers. *)
let test_sidecar_truncation_at_every_offset () =
  with_indexed_shard "bhive_idx_torn" (fun dir keys reference ->
      let idx = idx_file dir (List.hd keys) in
      let intact = read_file idx in
      for cut = 0 to String.length intact - 1 do
        write_file idx (String.sub intact 0 cut);
        check_serves (Printf.sprintf "idx cut@%d" cut) dir keys reference
      done;
      (* a missing sidecar entirely *)
      Sys.remove idx;
      check_serves "idx removed" dir keys reference;
      (* the heal rewrote it: the next open is persisted again *)
      let st = Store.open_ dir in
      Alcotest.(check bool) "healed sidecar used on the next open" true
        ((Store.stats st).Store.s_index_persisted > 0);
      Store.close st)

let test_sidecar_bitflip_at_every_offset () =
  with_indexed_shard "bhive_idx_flip" (fun dir keys reference ->
      let idx = idx_file dir (List.hd keys) in
      let intact = read_file idx in
      for pos = 0 to String.length intact - 1 do
        let b = Bytes.of_string intact in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
        write_file idx (Bytes.to_string b);
        check_serves (Printf.sprintf "idx flip@%d" pos) dir keys reference
      done)

(* A SIGKILL can land between the segment append and the sidecar
   append: the segment holds a record its sidecar does not know about.
   The open must notice the unindexed suffix, scan it, serve it, and
   heal the sidecar. Simulated by chopping whole entries off the tail
   (the write ordering — segment first, sidecar second — makes this
   exactly the on-disk state such a crash leaves). *)
let test_sidecar_lagging_entries_healed () =
  with_indexed_shard "bhive_idx_lag" (fun dir keys reference ->
      let idx = idx_file dir (List.hd keys) in
      let intact = read_file idx in
      (* entry sizes vary with key/gen length; find entry boundaries by
         re-deriving them from the fixed layout: magic u32 | off i64 |
         klen u16 | glen u16 | plen u32 | key | gen | fnv u64 *)
      let header_len =
        (* the header ends where the first entry magic begins *)
        let magic =
          let b = Buffer.create 4 in
          Store.Codec.u32 b 0xB17E1DE5;
          Buffer.contents b
        in
        let rec find i =
          if i + 4 > String.length intact then
            Alcotest.fail "no entry magic in sidecar"
          else if String.sub intact i 4 = magic then i
          else find (i + 1)
        in
        find 0
      in
      let entry_end off =
        let s = Bytes.of_string intact in
        let klen = Store.Codec.get_u16 s (off + 12) in
        let glen = Store.Codec.get_u16 s (off + 14) in
        off + 20 + klen + glen + 8
      in
      let boundaries =
        let rec go off acc =
          if off >= String.length intact then List.rev acc
          else
            let e = entry_end off in
            go e (e :: acc)
        in
        go header_len [ header_len ]
      in
      Alcotest.(check int) "one boundary per record plus the header" 4
        (List.length boundaries);
      List.iter
        (fun cut ->
          write_file idx (String.sub intact 0 cut);
          check_serves (Printf.sprintf "idx lag@%d" cut) dir keys reference;
          (* after the heal, the very next open is persisted and still
             byte-identical *)
          let st = Store.open_ dir in
          Alcotest.(check bool)
            (Printf.sprintf "idx lag@%d: healed open is persisted" cut)
            true
            ((Store.stats st).Store.s_index_persisted > 0);
          Alcotest.(check bool)
            (Printf.sprintf "idx lag@%d: healed open identical" cut)
            true
            (snapshot st = reference);
          Store.close st)
        boundaries)

let test_sidecar_torn_segment_with_index () =
  (* both files torn (crash mid segment append after earlier indexed
     records): open truncates the torn segment record AND drops the
     sidecar entries past it *)
  with_indexed_shard "bhive_idx_both" (fun dir keys _reference ->
      let seg = shard_file dir (List.hd keys) in
      let intact = read_file seg in
      (* chop the final segment record in half *)
      let st = Store.open_ dir in
      let before_stats = Store.stats st in
      Store.close st;
      ignore before_stats;
      write_file seg (String.sub intact 0 (String.length intact - 7));
      let st = Store.open_ dir in
      let survivors = List.filteri (fun i _ -> i < 2) keys in
      List.iteri
        (fun i key ->
          Alcotest.(check bool)
            (Printf.sprintf "torn-both: earlier key %d survives" i)
            true
            (Store.get st ~key ~gen:gen_a
            = Store.Hit (Printf.sprintf "payload-%d" i)))
        survivors;
      Alcotest.(check bool) "torn-both: torn record never served" true
        (Store.get st ~key:(List.nth keys 2) ~gen:gen_a = Store.Miss);
      let v = Store.verify st in
      Alcotest.(check int) "torn-both: verify clean" 0 v.Store.v_corrupt;
      Alcotest.(check int) "torn-both: no index disagreement" 0
        v.Store.v_index_mismatched;
      Store.close st)

let test_gc_rewrites_sidecar () =
  with_store_dir "bhive_idx_gc" (fun dir ->
      let st = Store.open_ dir in
      for i = 0 to 31 do
        ignore (Store.put st ~key:(key_of i) ~gen:gen_a (Printf.sprintf "a%d" i))
      done;
      for i = 0 to 15 do
        ignore (Store.put st ~key:(key_of i) ~gen:gen_b (Printf.sprintf "b%d" i))
      done;
      ignore (Store.gc st);
      let v = Store.verify st in
      Alcotest.(check int) "gc'd sidecar agrees with the segments" 0
        v.Store.v_index_mismatched;
      let reference = snapshot st in
      Store.close st;
      (* the compacted store opens from its rewritten sidecars *)
      let st = Store.open_ dir in
      let s = Store.stats st in
      List.iter
        (fun ss ->
          if ss.Store.ss_records > 0 then
            Alcotest.(check bool)
              (Printf.sprintf "shard %d persisted after gc" ss.Store.ss_shard)
              true ss.Store.ss_persisted)
        s.Store.s_per_shard;
      Alcotest.(check bool) "post-gc persisted open identical" true
        (snapshot st = reference);
      Store.close st)

(* --- compaction ------------------------------------------------------- *)

let test_gc_compaction () =
  with_store_dir "bhive_store_gc" (fun dir ->
      let st = Store.open_ dir in
      for i = 0 to 31 do
        ignore (Store.put st ~key:(key_of i) ~gen:gen_a (Printf.sprintf "a%d" i))
      done;
      (* supersede half of them *)
      for i = 0 to 15 do
        ignore (Store.put st ~key:(key_of i) ~gen:gen_b (Printf.sprintf "b%d" i))
      done;
      let s0 = Store.stats st in
      Alcotest.(check int) "pre-gc live" 32 s0.Store.s_live;
      Alcotest.(check int) "pre-gc superseded" 16 s0.Store.s_superseded;
      let g = Store.gc st in
      Alcotest.(check int) "gc keeps live records" 32 g.Store.g_live;
      Alcotest.(check int) "gc drops superseded" 16 g.Store.g_dropped;
      Alcotest.(check bool) "gc reclaims bytes" true
        (g.Store.g_bytes_after < g.Store.g_bytes_before);
      let s1 = Store.stats st in
      Alcotest.(check int) "post-gc superseded" 0 s1.Store.s_superseded;
      Alcotest.(check int) "post-gc records = live" s1.Store.s_live
        s1.Store.s_records;
      (* every surviving record still reads back, through the open
         handle and after a reopen *)
      let check_all st =
        for i = 0 to 15 do
          Alcotest.(check bool)
            (Printf.sprintf "key %d hits under gen b" i)
            true
            (Store.get st ~key:(key_of i) ~gen:gen_b
            = Store.Hit (Printf.sprintf "b%d" i))
        done;
        for i = 16 to 31 do
          Alcotest.(check bool)
            (Printf.sprintf "key %d hits under gen a" i)
            true
            (Store.get st ~key:(key_of i) ~gen:gen_a
            = Store.Hit (Printf.sprintf "a%d" i))
        done
      in
      check_all st;
      Store.close st;
      let st = Store.open_ dir in
      check_all st;
      Alcotest.(check int) "verify clean after gc" 0
        (Store.verify st).Store.v_corrupt;
      Store.close st)

(* Regression: gc replaces the segment inode (rename-over-tmp), and a
   [get] before gc leaves a lock-free pread descriptor open on the OLD
   inode. Unless gc re-anchors that descriptor, every later warm read
   probes the rebuilt index (new offsets) but preads the unlinked old
   inode — silently wrong payloads. *)
let test_gc_reanchors_read_fd () =
  with_store_dir "bhive_store_gc_fd" (fun dir ->
      let st = Store.open_ dir in
      for i = 0 to 199 do
        ignore (Store.put st ~key:(key_of i) ~gen:gen_a (Printf.sprintf "a%d" i))
      done;
      for i = 0 to 99 do
        ignore (Store.put st ~key:(key_of i) ~gen:gen_b (Printf.sprintf "b%d" i))
      done;
      (* warm reads BEFORE gc: every shard opens its read descriptor
         on the pre-compaction inode *)
      for i = 0 to 199 do
        let gen, p =
          if i < 100 then (gen_b, Printf.sprintf "b%d" i)
          else (gen_a, Printf.sprintf "a%d" i)
        in
        Alcotest.(check bool)
          (Printf.sprintf "pre-gc key %d" i)
          true
          (Store.get st ~key:(key_of i) ~gen = Store.Hit p)
      done;
      ignore (Store.gc st);
      for i = 0 to 199 do
        let gen, p =
          if i < 100 then (gen_b, Printf.sprintf "b%d" i)
          else (gen_a, Printf.sprintf "a%d" i)
        in
        Alcotest.(check bool)
          (Printf.sprintf "post-gc key %d reads the right payload" i)
          true
          (Store.get st ~key:(key_of i) ~gen = Store.Hit p)
      done;
      Store.close st)

(* Regression: a SIBLING handle compacts the shared store (new inode on
   disk); our handle's next resync must notice the inode swap — even
   though it rebuilt its index from the new segment — and reopen its
   read descriptor, or warm reads pair new offsets with old bytes. *)
let test_sibling_gc_inode_swap () =
  with_store_dir "bhive_store_gc_sibling" (fun dir ->
      let a = Store.open_ dir in
      for i = 0 to 63 do
        ignore (Store.put a ~key:(key_of i) ~gen:gen_a (Printf.sprintf "a%d" i))
      done;
      for i = 0 to 31 do
        ignore (Store.put a ~key:(key_of i) ~gen:gen_b (Printf.sprintf "b%d" i))
      done;
      (* anchor a's read descriptors on the pre-compaction inodes *)
      for i = 0 to 63 do
        let gen = if i < 32 then gen_b else gen_a in
        ignore (Store.get a ~key:(key_of i) ~gen)
      done;
      (* the "sibling process": a second handle on the same directory
         (the store's advisory file locks are per-process, so this
         sequential use is equivalent to another process compacting) *)
      let b = Store.open_ dir in
      ignore (Store.gc b);
      Store.close b;
      (* a put forces a's resync against the swapped inode *)
      Alcotest.(check bool)
        "put lands after sibling gc" true
        (Store.put a ~key:(key_of 64) ~gen:gen_a "fresh");
      for i = 0 to 64 do
        let gen, p =
          if i < 32 then (gen_b, Printf.sprintf "b%d" i)
          else if i < 64 then (gen_a, Printf.sprintf "a%d" i)
          else (gen_a, "fresh")
        in
        Alcotest.(check bool)
          (Printf.sprintf "post-sibling-gc key %d reads the right payload" i)
          true
          (Store.get a ~key:(key_of i) ~gen = Store.Hit p)
      done;
      Store.close a;
      (* a reopen sees the healed state *)
      let c = Store.open_ dir in
      Alcotest.(check int) "verify clean after sibling gc" 0
        (Store.verify c).Store.v_corrupt;
      Store.close c)

let test_concurrent_puts () =
  with_store_dir "bhive_store_domains" (fun dir ->
      let st = Store.open_ dir in
      let n_domains = 4 and per_domain = 64 in
      let worker d () =
        for i = 0 to per_domain - 1 do
          let key = key_of ((d * per_domain) + i) in
          ignore (Store.put st ~key ~gen:gen_a (Printf.sprintf "%d:%d" d i))
        done
      in
      let domains = List.init n_domains (fun d -> Domain.spawn (worker d)) in
      List.iter Domain.join domains;
      Alcotest.(check int) "every record landed" (n_domains * per_domain)
        (Store.stats st).Store.s_live;
      Store.close st;
      let st = Store.open_ dir in
      Alcotest.(check int) "and survives reopen" (n_domains * per_domain)
        (Store.stats st).Store.s_live;
      Alcotest.(check int) "no torn tails from concurrent appends" 0
        (Store.stats st).Store.s_torn;
      Store.close st)

(* --- golden fingerprints ---------------------------------------------- *)

(* Pinned digests: these keys address persistent measurement stores, so
   any change to the canonical encoding silently orphans every existing
   store. If one of these checks fails, the encoding changed — either
   revert it or treat it as a store-format break (bump
   Stable_key.job_version / generation_version deliberately). *)
let test_golden_fingerprints () =
  let job =
    {
      Engine.env = Harness.Environment.default;
      uarch = Uarch.All.haswell;
      block = Corpus.Paper_blocks.gzip_crc;
    }
  in
  Alcotest.(check string) "golden job fingerprint (hsw/gzip_crc)"
    "9b673043800bb9657360ca40415efdc9977629373140a7ef09d54603ac610475"
    (Engine.fingerprint job);
  Alcotest.(check string) "golden env fingerprint (default)"
    "26d524332960903c6b8b30d6fdb7cc4b90bc0e18fd5b2dfe93dffd979098244a"
    (Engine.env_fingerprint Harness.Environment.default);
  Alcotest.(check string) "golden generation (hsw)"
    "0e4f0a9588c1b077ef04db6085e3a8f2363fca89e95c071392edbc6920035e0d"
    (Engine.generation Uarch.All.haswell);
  Alcotest.(check string) "golden generation (skl)"
    "cef5f774d7008fc937c5dfb85825e9f5cc4754ce8c715881da2c59071c3f2c46"
    (Engine.generation Uarch.All.skylake)

let test_generation_sensitivity () =
  let hsw = Uarch.All.haswell in
  let perturbed =
    {
      hsw with
      Uarch.Descriptor.profile =
        {
          hsw.Uarch.Descriptor.profile with
          Uarch.Profile.div32_latency =
            hsw.Uarch.Descriptor.profile.Uarch.Profile.div32_latency + 1;
        };
    }
  in
  Alcotest.(check bool) "one latency entry changes the generation" false
    (Engine.generation hsw = Engine.generation perturbed);
  Alcotest.(check bool) "but not the job fingerprint (same uarch id)" true
    (Engine.fingerprint
       { Engine.env = Harness.Environment.default; uarch = hsw;
         block = Corpus.Paper_blocks.gzip_crc }
    = Engine.fingerprint
        { Engine.env = Harness.Environment.default; uarch = perturbed;
          block = Corpus.Paper_blocks.gzip_crc });
  Alcotest.(check bool) "uarches have distinct generations" false
    (Engine.generation Uarch.All.haswell = Engine.generation Uarch.All.skylake)

(* --- engine integration ----------------------------------------------- *)

let paper_jobs uarch =
  List.map
    (fun block -> { Engine.env = Harness.Environment.default; uarch; block })
    [
      Corpus.Paper_blocks.gzip_crc;
      Corpus.Paper_blocks.division;
      Corpus.Paper_blocks.zero_idiom;
      Corpus.Paper_blocks.tensorflow_ablation;
    ]

(* The acceptance criterion: a second run against a populated store
   performs zero profiler calls for unchanged jobs and produces
   byte-identical output. *)
let test_warm_run_zero_profiler_calls () =
  with_store_dir "bhive_store_warm" (fun dir ->
      let jobs = paper_jobs Uarch.All.haswell in
      let n = List.length jobs in
      let cold = Engine.create ~jobs:2 ~faults:Faultsim.none ~store_path:dir () in
      let b_cold = Engine.run_batch cold jobs in
      let s_cold = Engine.stats cold in
      Alcotest.(check int) "cold run misses the store" n s_cold.store_misses;
      Alcotest.(check int) "cold run executes everything" n s_cold.executed;
      Alcotest.(check int) "cold run persists every measurement" n
        s_cold.store_writes;
      Alcotest.(check bool) "cold run profiles" true (s_cold.profiler_calls > 0);
      Option.iter Store.close (Engine.store cold);
      (* a fresh engine: empty memo, warm disk tier *)
      let warm = Engine.create ~jobs:2 ~faults:Faultsim.none ~store_path:dir () in
      let b_warm = Engine.run_batch warm jobs in
      let s_warm = Engine.stats warm in
      Alcotest.(check int) "warm run: zero profiler calls" 0
        s_warm.profiler_calls;
      Alcotest.(check int) "warm run: zero executions" 0 s_warm.executed;
      Alcotest.(check int) "warm run: every job served by the store" n
        s_warm.store_hits;
      Alcotest.(check int) "warm run: nothing invalidated" 0
        s_warm.store_invalidated;
      Alcotest.(check int) "warm run: nothing re-written" 0 s_warm.store_writes;
      Alcotest.(check (float 0.0)) "warm run: hit rate 1.0" 1.0
        (Engine.store_hit_rate s_warm);
      Alcotest.(check bool) "warm outcomes byte-identical to cold" true
        (b_cold.outcomes = b_warm.outcomes);
      (* resubmission within the warm engine stays in the memo tier:
         the store is consulted once per fingerprint *)
      ignore (Engine.run_batch warm jobs);
      let s2 = Engine.stats warm in
      Alcotest.(check int) "memo shields the store" n s2.store_hits;
      Alcotest.(check int) "resubmission hits the memo" n s2.cache_hits;
      Option.iter Store.close (Engine.store warm))

(* Perturbing one uarch table entry invalidates exactly that uarch's
   entries: the other uarch's records still hit. *)
let test_invalidation_is_surgical () =
  with_store_dir "bhive_store_inval" (fun dir ->
      let hsw_jobs = paper_jobs Uarch.All.haswell in
      let skl_jobs = paper_jobs Uarch.All.skylake in
      let n = List.length hsw_jobs in
      let cold = Engine.create ~jobs:2 ~faults:Faultsim.none ~store_path:dir () in
      ignore (Engine.run_batch cold (hsw_jobs @ skl_jobs));
      Option.iter Store.close (Engine.store cold);
      (* edit one latency table entry of haswell *)
      let hsw = Uarch.All.haswell in
      let perturbed =
        {
          hsw with
          Uarch.Descriptor.profile =
            {
              hsw.Uarch.Descriptor.profile with
              Uarch.Profile.div32_latency =
                hsw.Uarch.Descriptor.profile.Uarch.Profile.div32_latency + 1;
            };
        }
      in
      let perturbed_jobs =
        List.map (fun j -> { j with Engine.uarch = perturbed }) hsw_jobs
      in
      let warm = Engine.create ~jobs:2 ~faults:Faultsim.none ~store_path:dir () in
      let batch = Engine.run_batch warm (perturbed_jobs @ skl_jobs) in
      let s = Engine.stats warm in
      Alcotest.(check int)
        "exactly the perturbed uarch's entries invalidated" n
        s.store_invalidated;
      Alcotest.(check int) "the other uarch still hits" n s.store_hits;
      Alcotest.(check int) "invalidated jobs re-executed" n s.executed;
      Alcotest.(check int) "and re-persisted under the new generation" n
        s.store_writes;
      Alcotest.(check bool) "nothing quarantined by re-measurement" true
        (batch.quarantined = []);
      Option.iter Store.close (Engine.store warm);
      (* third run: the perturbed generation is now persisted too *)
      let third = Engine.create ~jobs:2 ~faults:Faultsim.none ~store_path:dir () in
      ignore (Engine.run_batch third (perturbed_jobs @ skl_jobs));
      let s3 = Engine.stats third in
      Alcotest.(check int) "perturbed generation now hits" (2 * n) s3.store_hits;
      Alcotest.(check int) "nothing invalidated on the third run" 0
        s3.store_invalidated;
      Alcotest.(check int) "zero profiler calls on the third run" 0
        s3.profiler_calls;
      Option.iter Store.close (Engine.store third))

(* Quarantines are never persisted: a warm run re-derives them from the
   fault seed instead of trusting the disk. *)
let test_quarantines_not_persisted () =
  with_store_dir "bhive_store_quar" (fun dir ->
      let faults =
        match Faultsim.parse "crash=1,seed=2" with
        | Ok c -> c
        | Error msg -> Alcotest.fail msg
      in
      let job =
        {
          Engine.env = Harness.Environment.default;
          uarch = Uarch.All.haswell;
          block = Corpus.Paper_blocks.gzip_crc;
        }
      in
      let e1 = Engine.create ~jobs:1 ~faults ~max_retries:1 ~store_path:dir () in
      let b1 = Engine.run_batch e1 [ job ] in
      Alcotest.(check int) "the job quarantined" 1
        (List.length b1.quarantined);
      Alcotest.(check int) "quarantine not written to the store" 0
        (Engine.stats e1).store_writes;
      Option.iter
        (fun st ->
          Alcotest.(check int) "store is empty" 0 (Store.stats st).Store.s_live;
          Store.close st)
        (Engine.store e1);
      let e2 = Engine.create ~jobs:1 ~faults ~max_retries:1 ~store_path:dir () in
      let b2 = Engine.run_batch e2 [ job ] in
      Alcotest.(check bool) "warm run re-derives the same quarantine" true
        (b1.outcomes = b2.outcomes);
      Option.iter Store.close (Engine.store e2))

(* --- determinism matrix ----------------------------------------------- *)

let matrix_blocks =
  lazy
    (let config = { Corpus.Suite.default_config with scale = 2000 } in
     List.filteri (fun i _ -> i mod 5 = 0) (Corpus.Suite.generate ~config ()))

let check_datasets_equal what (a : Bhive.Dataset.t) (b : Bhive.Dataset.t) =
  Alcotest.(check int) (what ^ ": entry count") (List.length a.entries)
    (List.length b.entries);
  Alcotest.(check bool) (what ^ ": entries identical") true
    (a.entries = b.entries);
  Alcotest.(check bool) (what ^ ": failures identical") true
    (a.failures = b.failures);
  Alcotest.(check bool) (what ^ ": quarantined identical") true
    (a.quarantined = b.quarantined)

(* The ISSUE's determinism matrix: {cold, warm, post-compaction} x
   workers {1, 2, 4} must all produce byte-identical datasets, faults
   included. *)
let test_determinism_matrix () =
  let u = Uarch.All.haswell in
  let blocks = Lazy.force matrix_blocks in
  let faults =
    match Faultsim.parse "crash=0.02,stall=0.01,seed=7" with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  let reference =
    Bhive.Dataset.build
      ~engine:(Engine.create ~jobs:1 ~faults:Faultsim.none ())
      u blocks
  in
  List.iter
    (fun jobs ->
      with_store_dir "bhive_store_matrix" (fun dir ->
          let build () =
            let engine = Engine.create ~jobs ~faults ~store_path:dir () in
            let ds = Bhive.Dataset.build ~engine u blocks in
            let stats = Engine.stats engine in
            Option.iter Store.close (Engine.store engine);
            (ds, stats)
          in
          let cold, _ = build () in
          check_datasets_equal
            (Printf.sprintf "jobs=%d cold vs reference" jobs)
            reference cold;
          let warm, warm_stats = build () in
          check_datasets_equal (Printf.sprintf "jobs=%d warm" jobs) reference
            warm;
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d warm: zero profiler calls" jobs)
            0 warm_stats.profiler_calls;
          (* compact, then run again against the compacted store *)
          let st = Store.open_ dir in
          ignore (Store.gc st);
          Store.close st;
          let post_gc, gc_stats = build () in
          check_datasets_equal (Printf.sprintf "jobs=%d post-gc" jobs)
            reference post_gc;
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d post-gc: zero profiler calls" jobs)
            0 gc_stats.profiler_calls))
    [ 1; 2; 4 ]

(* --- environment validation ------------------------------------------- *)

(* Unix.putenv cannot unset a variable, so every parser treats the
   empty string as unset — restore with "" after each case. *)
let with_env var value f =
  let old = Option.value (Sys.getenv_opt var) ~default:"" in
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var old) f

let test_env_jobs_messages () =
  with_env "BHIVE_JOBS" "abc" (fun () ->
      Alcotest.(check bool) "malformed BHIVE_JOBS rejected" true
        (Engine.jobs_from_env ()
        = Error "invalid BHIVE_JOBS=\"abc\": expected a positive integer");
      Alcotest.(check bool) "validate_env reports it" true
        (Result.is_error (Engine.validate_env ())));
  with_env "BHIVE_JOBS" "0" (fun () ->
      Alcotest.(check bool) "zero rejected" true
        (Engine.jobs_from_env ()
        = Error "invalid BHIVE_JOBS=\"0\": expected a positive integer"));
  with_env "BHIVE_JOBS" "-4" (fun () ->
      Alcotest.(check bool) "negative rejected" true
        (Result.is_error (Engine.jobs_from_env ())));
  with_env "BHIVE_JOBS" "3" (fun () ->
      Alcotest.(check bool) "positive accepted" true
        (Engine.jobs_from_env () = Ok (Some 3)));
  with_env "BHIVE_JOBS" "" (fun () ->
      Alcotest.(check bool) "empty means unset" true
        (Engine.jobs_from_env () = Ok None))

let test_env_faults_messages () =
  with_env "BHIVE_FAULTS" "crash=2" (fun () ->
      match Faultsim.env_result () with
      | Error msg ->
        Alcotest.(check bool) "message names the variable and value" true
          (contains ~needle:"invalid BHIVE_FAULTS=\"crash=2\":" msg);
        Alcotest.(check bool) "validate_env reports it" true
          (Result.is_error (Engine.validate_env ()))
      | Ok _ -> Alcotest.fail "crash=2 should be rejected");
  with_env "BHIVE_FAULTS" "bogus=1" (fun () ->
      Alcotest.(check bool) "unknown key rejected" true
        (Result.is_error (Faultsim.env_result ())));
  with_env "BHIVE_FAULTS" "crash=0.1,seed=5" (fun () ->
      Alcotest.(check bool) "well-formed spec accepted" true
        (Result.is_ok (Faultsim.env_result ())));
  with_env "BHIVE_FAULTS" "" (fun () ->
      Alcotest.(check bool) "empty means unset" true
        (Faultsim.env_result () = Ok Faultsim.none))

let test_env_store_messages () =
  let file = Filename.temp_file "bhive_store_env" "" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      with_env "BHIVE_STORE" file (fun () ->
          Alcotest.(check bool) "non-directory path rejected" true
            (Engine.store_path_from_env ()
            = Error
                (Printf.sprintf
                   "invalid BHIVE_STORE=%S: exists and is not a directory" file));
          Alcotest.(check bool) "validate_env reports it" true
            (Result.is_error (Engine.validate_env ()))));
  with_env "BHIVE_STORE" "" (fun () ->
      Alcotest.(check bool) "empty means unset" true
        (Engine.store_path_from_env () = Ok None));
  with_store_dir "bhive_store_envdir" (fun dir ->
      with_env "BHIVE_STORE" dir (fun () ->
          Alcotest.(check bool) "directory accepted" true
            (Engine.store_path_from_env () = Ok (Some dir))))

(* --- Multi-process sharing -------------------------------------------- *)

(* The cross-process protocol (per-shard advisory file locks, resync
   before append, torn-tail truncation under the lock) is exercised
   with real processes. [Unix.fork] is forbidden once other domains
   exist (the engine tests above spawn workers), so the children are
   this very test binary re-executed in a child role — [child_main]
   below is dispatched from main.ml before Alcotest starts. *)

let child_tag = "store-mp-child"

(* argv: <exe> store-mp-child <role> <dir> <arg>. Exits the process. *)
let child_main argv =
  let role = argv.(2) and dir = argv.(3) in
  let s = Store.open_ dir in
  (match role with
  | "put-range" ->
    let base = int_of_string argv.(4) * 32 in
    for k = 0 to 63 do
      let key = Printf.sprintf "key-%03d" (base + k) in
      ignore (Store.put s ~key ~gen:"g1" ("payload:" ^ key))
    done
  | "spin" ->
    (* append until killed; the parent SIGKILLs this process *)
    let payload = String.make 4096 'x' in
    let i = ref 0 in
    while true do
      incr i;
      ignore (Store.put s ~key:(Printf.sprintf "k%06d" !i) ~gen:"g" payload)
    done
  | "put-one" -> ignore (Store.put s ~key:argv.(4) ~gen:"g" "from-child")
  | role ->
    prerr_endline ("unknown child role " ^ role);
    exit 2);
  Store.close s;
  exit 0

let spawn_child role dir arg =
  let exe = Sys.executable_name in
  Unix.create_process exe
    [| exe; child_tag; role; dir; arg |]
    Unix.stdin Unix.stdout Unix.stderr

let wait_child what pid =
  let _, status = Store.Eintr.intr (fun () -> Unix.waitpid [] pid) in
  match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n ->
    Alcotest.fail (Printf.sprintf "%s: child exited %d" what n)
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> Alcotest.fail (what ^ ": child killed")

let test_multiprocess_concurrent_puts () =
  with_store_dir "bhive_mp" (fun dir ->
      (* 4 children, each appending 64 records; key ranges overlap so
         the same (key, gen) is raced by several writers *)
      let pids =
        List.init 4 (fun i -> spawn_child "put-range" dir (string_of_int i))
      in
      List.iter (wait_child "concurrent put") pids;
      let s = Store.open_ dir in
      let report = Store.verify s in
      Alcotest.(check int) "no corrupt records" 0 report.Store.v_corrupt;
      (* distinct keys: ranges 0..63, 32..95, 64..127, 96..159 = 160,
         and the lock protocol must have deduplicated every race *)
      Alcotest.(check int) "every key live exactly once" 160
        report.Store.v_live;
      Alcotest.(check int) "no duplicate appends" 160 report.Store.v_records;
      (match Store.get s ~key:"key-042" ~gen:"g1" with
      | Store.Hit p -> Alcotest.(check string) "payload" "payload:key-042" p
      | _ -> Alcotest.fail "raced key not served");
      Store.close s)

let test_multiprocess_kill9_writer () =
  with_store_dir "bhive_mp_kill" (fun dir ->
      (* a writer killed with SIGKILL mid-append may leave a torn tail
         but never a corrupt record that a reopen would serve *)
      let pid = spawn_child "spin" dir "" in
      Unix.sleepf 0.25;
      Unix.kill pid Sys.sigkill;
      ignore (Store.Eintr.intr (fun () -> Unix.waitpid [] pid));
      let s = Store.open_ dir in
      let report = Store.verify s in
      Alcotest.(check int) "zero corrupt after SIGKILL" 0
        report.Store.v_corrupt;
      Alcotest.(check bool) "the writer made progress" true
        (report.Store.v_live > 0);
      (* the survivor can keep appending to the same shards *)
      Alcotest.(check bool) "store still writable" true
        (Store.put s ~key:"after-crash" ~gen:"g" "ok");
      Store.close s)

let test_multiprocess_foreign_visibility () =
  with_store_dir "bhive_mp_vis" (fun dir ->
      let parent = Store.open_ dir in
      (* a record appended by another process is not visible to the
         parent's lock-free get until a resynchronising operation *)
      let pid = spawn_child "put-one" dir "foreign" in
      wait_child "foreign append" pid;
      (match Store.get parent ~key:"foreign" ~gen:"g" with
      | Store.Miss -> ()
      | _ -> Alcotest.fail "foreign append visible without a resync");
      (* verify rescans from disk and synchronises the index *)
      let report = Store.verify parent in
      Alcotest.(check int) "foreign record scanned" 1 report.Store.v_live;
      (match Store.get parent ~key:"foreign" ~gen:"g" with
      | Store.Hit p -> Alcotest.(check string) "payload" "from-child" p
      | _ -> Alcotest.fail "foreign append still invisible after verify");
      Store.close parent)

let suite =
  [
    Alcotest.test_case "sha256: FIPS 180-4 vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "codec: round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec: fnv1a64 vectors" `Quick test_fnv1a64_vectors;
    Alcotest.test_case "store: put/get/stale/supersede" `Quick
      test_store_basics;
    Alcotest.test_case "store: fold is key-sorted" `Quick
      test_store_fold_sorted;
    Alcotest.test_case "store: binary payloads" `Quick
      test_store_binary_payload;
    Alcotest.test_case "store: rejects a file path" `Quick
      test_store_rejects_file_path;
    Alcotest.test_case "crash safety: truncation at every offset" `Quick
      test_truncation_at_every_offset;
    Alcotest.test_case "crash safety: bit flip detected" `Quick
      test_bitflip_detected;
    Alcotest.test_case "sidecar: persisted open" `Quick
      test_sidecar_persisted_open;
    Alcotest.test_case "sidecar: truncation at every offset" `Quick
      test_sidecar_truncation_at_every_offset;
    Alcotest.test_case "sidecar: bit flip at every offset" `Quick
      test_sidecar_bitflip_at_every_offset;
    Alcotest.test_case "sidecar: lagging entries healed" `Quick
      test_sidecar_lagging_entries_healed;
    Alcotest.test_case "sidecar: torn segment with index" `Quick
      test_sidecar_torn_segment_with_index;
    Alcotest.test_case "sidecar: gc rewrites the index" `Quick
      test_gc_rewrites_sidecar;
    Alcotest.test_case "gc: compaction" `Quick test_gc_compaction;
    Alcotest.test_case "gc: re-anchors the lock-free read fd" `Quick
      test_gc_reanchors_read_fd;
    Alcotest.test_case "gc: sibling compaction inode swap" `Quick
      test_sibling_gc_inode_swap;
    Alcotest.test_case "concurrent puts from domains" `Quick
      test_concurrent_puts;
    Alcotest.test_case "golden fingerprints pinned" `Quick
      test_golden_fingerprints;
    Alcotest.test_case "generation sensitivity" `Quick
      test_generation_sensitivity;
    Alcotest.test_case "warm run: zero profiler calls" `Quick
      test_warm_run_zero_profiler_calls;
    Alcotest.test_case "invalidation is surgical" `Quick
      test_invalidation_is_surgical;
    Alcotest.test_case "quarantines are not persisted" `Quick
      test_quarantines_not_persisted;
    Alcotest.test_case "determinism matrix: tiers x workers" `Quick
      test_determinism_matrix;
    Alcotest.test_case "env: BHIVE_JOBS messages" `Quick
      test_env_jobs_messages;
    Alcotest.test_case "env: BHIVE_FAULTS messages" `Quick
      test_env_faults_messages;
    Alcotest.test_case "env: BHIVE_STORE messages" `Quick
      test_env_store_messages;
    Alcotest.test_case "multi-process: concurrent puts" `Quick
      test_multiprocess_concurrent_puts;
    Alcotest.test_case "multi-process: SIGKILL mid-write" `Quick
      test_multiprocess_kill9_writer;
    Alcotest.test_case "multi-process: foreign append visibility" `Quick
      test_multiprocess_foreign_visibility;
  ]
