(* Tests for the bhive_serve daemon core: wire framing and protocol
   round-trips, EINTR-retry helpers, and an in-process server driven
   through real Unix sockets — byte-identity with the engine path,
   typed refusals (bad request, overload, deadline, drain) and the
   coalescing of concurrent duplicate requests. The dispatcher [gate]
   hook makes the concurrency tests deterministic: the test holds the
   dispatcher at the top of its cycle until the interesting state
   (queued duplicates, a full queue, an expired deadline) is in place. *)

module Json = Telemetry.Json
module Wire = Serve.Wire
module Server = Serve.Server
module Client = Serve.Client

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* --- EINTR helpers ----------------------------------------------------- *)

let test_eintr_intr () =
  let attempts = ref 0 in
  let v =
    Store.Eintr.intr (fun () ->
        incr attempts;
        if !attempts < 4 then raise (Unix.Unix_error (Unix.EINTR, "read", ""));
        42)
  in
  Alcotest.(check int) "result delivered" 42 v;
  Alcotest.(check int) "three EINTRs retried" 4 !attempts;
  (* other errors pass through untouched *)
  (match Store.Eintr.intr (fun () -> raise (Unix.Unix_error (Unix.EBADF, "x", ""))) with
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  | _ -> Alcotest.fail "EBADF must not be retried");
  Alcotest.(check pass) "EBADF propagates" () ()

let test_eintr_really_rw () =
  (* a payload much larger than the socket buffer forces partial
     writes; the writer thread must loop while this thread drains *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payload = String.init 1_000_000 (fun i -> Char.chr (i land 0xff)) in
  let writer =
    Thread.create
      (fun () ->
        Store.Eintr.really_write_substring a payload;
        Unix.shutdown a Unix.SHUTDOWN_SEND)
      ()
  in
  let buf = Bytes.create (String.length payload) in
  Alcotest.(check bool) "full payload read" true
    (Store.Eintr.really_read b buf 0 (Bytes.length buf));
  Thread.join writer;
  Alcotest.(check bool) "bytes identical" true
    (Bytes.to_string buf = payload);
  (* EOF before the requested length reports false, not an exception *)
  let small = Bytes.create 4 in
  Alcotest.(check bool) "premature EOF is false" false
    (Store.Eintr.really_read b small 0 4);
  Unix.close a;
  Unix.close b

(* --- Wire framing ------------------------------------------------------ *)

let test_wire_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Wire.write_frame a "hello";
  Wire.write_frame a "";
  (match Wire.read_frame b with
  | Ok s -> Alcotest.(check string) "payload round-trips" "hello" s
  | Error _ -> Alcotest.fail "first frame unreadable");
  (match Wire.read_frame b with
  | Ok s -> Alcotest.(check string) "empty payload ok" "" s
  | Error _ -> Alcotest.fail "empty frame unreadable");
  (* garbage magic *)
  ignore (Unix.write_substring a "XXXX\000\000\000\000" 0 8);
  (match Wire.read_frame b with
  | Error (Wire.Malformed msg) ->
    Alcotest.(check bool) "bad magic named" true (contains ~needle:"magic" msg)
  | _ -> Alcotest.fail "bad magic accepted");
  (* oversized length prefix *)
  let buf = Buffer.create 8 in
  Buffer.add_string buf Wire.magic;
  Store.Codec.u32 buf (Wire.max_frame_len + 1);
  ignore (Unix.write_substring a (Buffer.contents buf) 0 8);
  (match Wire.read_frame b with
  | Error (Wire.Malformed msg) ->
    Alcotest.(check bool) "oversized named" true
      (contains ~needle:"oversized" msg)
  | _ -> Alcotest.fail "oversized frame accepted");
  (* clean EOF between frames *)
  Unix.close a;
  (match Wire.read_frame b with
  | Error Wire.Eof -> ()
  | _ -> Alcotest.fail "EOF not detected");
  Unix.close b

let test_wire_request_roundtrip () =
  let reqs =
    [
      Wire.Ping;
      Wire.Stats;
      Wire.Predict
        {
          Wire.asm = "add %rbx, %r10\ncmp %r11, %rax";
          uarch = "hsw";
          deadline_ms = Some 250;
          block_hex = None;
          filters = Manifest.Spec.default_filters;
        };
    ]
  in
  List.iter
    (fun r ->
      match Wire.request_of_string (Wire.request_to_string r) with
      | Ok r' ->
        Alcotest.(check bool) "request round-trips" true (r = r')
      | Error msg -> Alcotest.fail ("round-trip failed: " ^ msg))
    reqs;
  (* unknown op, missing asm, bad version *)
  let bad what s =
    match Wire.request_of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ ": accepted")
  in
  bad "unknown op" {|{"v":1,"op":"explode"}|};
  bad "missing asm" {|{"v":1,"op":"predict"}|};
  bad "wrong version" {|{"v":99,"op":"ping"}|};
  bad "no version" {|{"op":"ping"}|};
  bad "not json" "}{";
  (* v2 coexists with v1 on the same decoder *)
  (match Wire.request_of_string {|{"v":2,"op":"ping"}|} with
  | Ok Wire.Ping -> ()
  | _ -> Alcotest.fail "v2 ping rejected");
  let pb =
    Wire.Predict_batch
      {
        Wire.pb_uarch = "hsw";
        pb_deadline_ms = Some 100;
        pb_filters = Manifest.Spec.default_filters;
        pb_blocks =
          [
            { Wire.bb_asm = "add %rbx, %r10"; bb_block_hex = None };
            { Wire.bb_asm = "imul %rsi, %rdi"; bb_block_hex = Some "ab" };
          ];
      }
  in
  (match Wire.request_of_string (Wire.request_to_string pb) with
  | Ok pb' -> Alcotest.(check bool) "batch round-trips" true (pb = pb')
  | Error msg -> Alcotest.fail ("batch round-trip failed: " ^ msg));
  bad "batch on v1" {|{"v":1,"op":"predict_batch","blocks":[{"asm":"nop"}]}|};
  bad "empty blocks" {|{"v":2,"op":"predict_batch","blocks":[]}|};
  bad "blocks not array" {|{"v":2,"op":"predict_batch","blocks":3}|};
  bad "block missing asm" {|{"v":2,"op":"predict_batch","blocks":[{}]}|};
  Alcotest.(check pass) "malformed requests rejected" () ()

let test_wire_response_roundtrip () =
  let resps =
    [
      Wire.Pong;
      Wire.Result (Json.Object [ ("status", Json.String "measured") ]);
      Wire.Refused (Wire.Overloaded, "queue full");
      Wire.Refused (Wire.Deadline_exceeded, "late");
      Wire.Refused (Wire.Bad_request, "nope");
      Wire.Refused (Wire.Shutting_down, "bye");
      Wire.Stats_reply (Json.Object [ ("requests", Json.Number 3.0) ]);
      Wire.Results
        [
          Wire.Result (Json.Object [ ("status", Json.String "measured") ]);
          Wire.Refused (Wire.Deadline_exceeded, "late");
          Wire.Result (Json.Object [ ("status", Json.String "failed") ]);
        ];
    ]
  in
  List.iter
    (fun r ->
      match Wire.response_of_string (Wire.response_to_string r) with
      | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
      | Error msg -> Alcotest.fail ("round-trip failed: " ^ msg))
    resps;
  (* a batch slot's result object renders byte-identically to the v1
     response carrying the same result, modulo the "v" envelope *)
  let r = Json.Object [ ("status", Json.String "measured") ] in
  let v1 = Wire.response_to_string (Wire.Result r) in
  let v2 = Wire.response_to_string (Wire.Results [ Wire.Result r ]) in
  Alcotest.(check bool) "slot body embedded in v1 rendering" true
    (let body = {|"status":"ok","result":{"status":"measured"}|} in
     contains ~needle:body v1 && contains ~needle:body v2)

(* --- In-process server ------------------------------------------------- *)

let temp_socket () =
  let path = Filename.temp_file "bhive_serve_test" ".sock" in
  Sys.remove path;
  path

(* A dispatcher gate the tests can hold closed: while closed, the
   dispatcher blocks at the top of its cycle, so queued state is
   observable without racing the dispatch. *)
type gate = { g_mutex : Mutex.t; g_cond : Condition.t; mutable g_open : bool }

let make_gate () =
  { g_mutex = Mutex.create (); g_cond = Condition.create (); g_open = true }

let gate_fn g () =
  Mutex.lock g.g_mutex;
  while not g.g_open do
    Condition.wait g.g_cond g.g_mutex
  done;
  Mutex.unlock g.g_mutex

let set_gate g open_ =
  Mutex.lock g.g_mutex;
  g.g_open <- open_;
  Condition.broadcast g.g_cond;
  Mutex.unlock g.g_mutex

let with_server ?(configure = Server.default_config) ?(shards = 1) ?gate f =
  let socket = temp_socket () in
  let engines = Array.init shards (fun _ -> Engine.create ~jobs:1 ()) in
  let config = configure socket in
  let server =
    match gate with
    | Some g -> Server.create ~config ~gate:(gate_fn g) ~engines socket
    | None -> Server.create ~config ~engines socket
  in
  let runner = Thread.create (fun () -> Server.run ~signals:false server) () in
  Fun.protect
    ~finally:(fun () ->
      Option.iter (fun g -> set_gate g true) gate;
      Server.request_drain server;
      Thread.join runner;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () -> f server socket)

let predict ?deadline_ms ?(uarch = "hsw") asm =
  Wire.Predict
    {
      Wire.asm;
      uarch;
      deadline_ms;
      block_hex = None;
      filters = Manifest.Spec.default_filters;
    }

let batch ?deadline_ms ?(uarch = "hsw") asms =
  Wire.Predict_batch
    {
      Wire.pb_uarch = uarch;
      pb_deadline_ms = deadline_ms;
      pb_filters = Manifest.Spec.default_filters;
      pb_blocks =
        List.map (fun asm -> { Wire.bb_asm = asm; bb_block_hex = None }) asms;
    }

let request_exn what client req =
  match Client.request client req with
  | Ok r -> r
  | Error msg -> Alcotest.fail (what ^ ": " ^ msg)

let asm_a = "add %rbx, %r10\ncmp %r11, %rax"
let asm_b = "sub %rcx, %rdx\nmov %rdx, %r9"
let asm_c = "imul %rsi, %rdi"

let test_serve_roundtrip_byte_identity () =
  with_server (fun _server socket ->
      match Client.connect ~retries:20 socket with
      | Error msg -> Alcotest.fail msg
      | Ok c ->
        (match request_exn "ping" c Wire.Ping with
        | Wire.Pong -> ()
        | _ -> Alcotest.fail "ping did not pong");
        let remote =
          match request_exn "predict" c (predict asm_a) with
          | Wire.Result r -> Json.to_string ~compact:true r
          | _ -> Alcotest.fail "predict refused"
        in
        (* the daemon's answer must be byte-identical to the engine
           path's rendering of the same job *)
        let local =
          let engine = Engine.create ~jobs:1 () in
          let job =
            {
              Engine.env =
                Manifest.Spec.environment_of_filters
                  Manifest.Spec.default_filters;
              uarch = Uarch.All.haswell;
              block = Result.get_ok (X86.Parser.block asm_a);
            }
          in
          let batch = Engine.run_batch engine [ job ] in
          Json.to_string ~compact:true
            (Wire.outcome_json batch.Engine.outcomes.(0))
        in
        Alcotest.(check string) "daemon and engine path byte-identical" local
          remote;
        (* stats op reflects the request *)
        (match request_exn "stats" c Wire.Stats with
        | Wire.Stats_reply s ->
          let count name =
            Option.bind (Json.path [ "serving"; name ] s) Json.number
          in
          Alcotest.(check (option (float 0.0))) "one request accepted"
            (Some 1.0) (count "accepted")
        | _ -> Alcotest.fail "stats refused");
        Client.close c)

let test_serve_bad_requests () =
  with_server (fun server socket ->
      match Client.connect ~retries:20 socket with
      | Error msg -> Alcotest.fail msg
      | Ok c ->
        let refused what req expect_needle =
          match request_exn what c req with
          | Wire.Refused (Wire.Bad_request, msg) ->
            Alcotest.(check bool)
              (what ^ " message mentions " ^ expect_needle)
              true
              (contains ~needle:expect_needle msg)
          | _ -> Alcotest.fail (what ^ ": not refused as bad_request")
        in
        refused "unparseable asm" (predict "not even assembly!") "parse";
        refused "empty block" (predict "") "";
        refused "unknown uarch" (predict ~uarch:"z80" asm_a) "z80";
        (* block_hex cross-check: a wrong hex is refused *)
        (match
           request_exn "hex mismatch" c
             (Wire.Predict
                {
                  Wire.asm = asm_a;
                  uarch = "hsw";
                  deadline_ms = None;
                  block_hex = Some "deadbeef";
                  filters = Manifest.Spec.default_filters;
                })
         with
        | Wire.Refused (Wire.Bad_request, msg) ->
          Alcotest.(check bool) "mismatch named" true
            (contains ~needle:"block_hex" msg)
        | _ -> Alcotest.fail "wrong block_hex accepted");
        Alcotest.(check int) "bad requests counted" 4
          (Server.counters server).Server.bad_requests;
        Client.close c)

let spawn_predict socket req =
  let result = ref (Error "not run") in
  let thread =
    Thread.create
      (fun () ->
        match Client.connect ~retries:20 socket with
        | Error msg -> result := Error msg
        | Ok c ->
          result := Client.request c req;
          Client.close c)
      ()
  in
  (thread, result)

let poll_until ?(timeout = 5.0) what f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail ("timeout waiting for " ^ what)
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let test_serve_coalescing () =
  let gate = make_gate () in
  set_gate gate false;
  with_server ~gate (fun server socket ->
      (* two concurrent requests for the same block while the
         dispatcher is held: the second must attach to the first's
         in-flight entry, not occupy a queue slot *)
      let t1, r1 = spawn_predict socket (predict asm_a) in
      let c = Server.counters server in
      poll_until "first request queued" (fun () -> c.Server.accepted = 1);
      let t2, r2 = spawn_predict socket (predict asm_a) in
      poll_until "second request coalesced" (fun () -> c.Server.coalesced = 1);
      Alcotest.(check int) "still one queue entry" 1 c.Server.accepted;
      set_gate gate true;
      Thread.join t1;
      Thread.join t2;
      let payload = function
        | Ok (Wire.Result r) -> Json.to_string ~compact:true r
        | Ok _ -> Alcotest.fail "refused"
        | Error msg -> Alcotest.fail msg
      in
      Alcotest.(check string) "coalesced replies identical" (payload !r1)
        (payload !r2);
      Alcotest.(check int) "both completions counted" 2 c.Server.completed)

let test_serve_overload () =
  let gate = make_gate () in
  set_gate gate false;
  let configure socket =
    { (Server.default_config socket) with Server.queue_capacity = 1 }
  in
  with_server ~configure ~gate (fun server socket ->
      let t1, r1 = spawn_predict socket (predict asm_a) in
      let c = Server.counters server in
      poll_until "queue filled" (fun () -> c.Server.accepted = 1);
      (* a distinct block cannot coalesce and the queue is full: the
         refusal must be immediate and typed, not a hang *)
      let t2, r2 = spawn_predict socket (predict asm_b) in
      Thread.join t2;
      (match !r2 with
      | Ok (Wire.Refused (Wire.Overloaded, msg)) ->
        Alcotest.(check bool) "refusal names the queue" true
          (contains ~needle:"queue full" msg)
      | Ok _ -> Alcotest.fail "overload not refused"
      | Error msg -> Alcotest.fail msg);
      Alcotest.(check int) "shed counted" 1 c.Server.shed_overload;
      set_gate gate true;
      Thread.join t1;
      (match !r1 with
      | Ok (Wire.Result _) -> ()
      | _ -> Alcotest.fail "queued request must still complete"))

let test_serve_deadline_shed () =
  let gate = make_gate () in
  set_gate gate false;
  with_server ~gate (fun server socket ->
      let t1, r1 = spawn_predict socket (predict ~deadline_ms:1 asm_c) in
      let c = Server.counters server in
      poll_until "request queued" (fun () -> c.Server.accepted = 1);
      Thread.delay 0.02;
      (* deadline long expired by the time the dispatcher runs *)
      set_gate gate true;
      Thread.join t1;
      (match !r1 with
      | Ok (Wire.Refused (Wire.Deadline_exceeded, _)) -> ()
      | Ok _ -> Alcotest.fail "expired deadline not shed"
      | Error msg -> Alcotest.fail msg);
      Alcotest.(check int) "deadline shed counted" 1 c.Server.shed_deadline)

(* Regression: the entry's deadline must be the LOOSEST across its
   coalesced waiters. A client that attached with no deadline must not
   be answered Deadline_exceeded on account of the first requester's
   1ms budget — the entry runs, and everyone gets the result. *)
let test_serve_coalesced_deadline_loosens () =
  let gate = make_gate () in
  set_gate gate false;
  with_server ~gate (fun server socket ->
      let t1, r1 = spawn_predict socket (predict ~deadline_ms:1 asm_a) in
      let c = Server.counters server in
      poll_until "first request queued" (fun () -> c.Server.accepted = 1);
      let t2, r2 = spawn_predict socket (predict asm_a) in
      poll_until "second request coalesced" (fun () -> c.Server.coalesced = 1);
      (* let the first requester's deadline expire thoroughly *)
      Thread.delay 0.02;
      set_gate gate true;
      Thread.join t1;
      Thread.join t2;
      (match !r2 with
      | Ok (Wire.Result _) -> ()
      | Ok (Wire.Refused (Wire.Deadline_exceeded, _)) ->
        Alcotest.fail "no-deadline waiter shed on a coalesced deadline"
      | Ok _ -> Alcotest.fail "no-deadline waiter refused"
      | Error msg -> Alcotest.fail msg);
      (* the entry survived, so the impatient requester gets the (late)
         result too rather than a refusal *)
      (match !r1 with
      | Ok (Wire.Result _) -> ()
      | _ -> Alcotest.fail "deadlined requester should ride the kept entry");
      Alcotest.(check int) "nothing shed" 0 c.Server.shed_deadline)

let test_serve_batch_identity () =
  (* one v2 batch frame must produce exactly the slot bodies the v1
     path produces for the same blocks, in request order *)
  with_server ~shards:2 (fun _server socket ->
      match Client.connect ~retries:20 socket with
      | Error msg -> Alcotest.fail msg
      | Ok c ->
        let asms = [ asm_a; asm_b; asm_c ] in
        let singles =
          List.map
            (fun asm ->
              match request_exn "v1 predict" c (predict asm) with
              | Wire.Result r -> Json.to_string ~compact:true r
              | _ -> Alcotest.fail "v1 predict refused")
            asms
        in
        (match request_exn "v2 batch" c (batch asms) with
        | Wire.Results slots ->
          let batched =
            List.map
              (function
                | Wire.Result r -> Json.to_string ~compact:true r
                | _ -> Alcotest.fail "batch slot refused")
              slots
          in
          Alcotest.(check (list string)) "batch slots match v1 answers"
            singles batched
        | _ -> Alcotest.fail "batch request refused");
        (* a bad slot is refused in place without poisoning its
           neighbours *)
        (match
           request_exn "mixed batch" c (batch [ asm_a; "not asm!"; asm_b ])
         with
        | Wire.Results
            [ Wire.Result _; Wire.Refused (Wire.Bad_request, _); Wire.Result _ ]
          -> ()
        | _ -> Alcotest.fail "mixed batch not refused slot-wise");
        Client.close c)

let test_serve_shard_determinism () =
  (* the determinism matrix: answers must not depend on the pool size *)
  let answers shards =
    with_server ~shards (fun _server socket ->
        match Client.connect ~retries:20 socket with
        | Error msg -> Alcotest.fail msg
        | Ok c ->
          let out =
            List.map
              (fun asm ->
                match request_exn "predict" c (predict asm) with
                | Wire.Result r -> Json.to_string ~compact:true r
                | _ -> Alcotest.fail "predict refused")
              [ asm_a; asm_b; asm_c ]
          in
          Client.close c;
          out)
  in
  let one = answers 1 in
  Alcotest.(check (list string)) "2 shards = 1 shard" one (answers 2);
  Alcotest.(check (list string)) "4 shards = 1 shard" one (answers 4)

let test_serve_shed_inflight_hygiene () =
  (* a dispatch-shed entry must leave the coalescing map with it: a
     later duplicate of the shed fingerprint gets a fresh measurement,
     never an attachment to the dead entry *)
  let gate = make_gate () in
  set_gate gate false;
  with_server ~gate (fun server socket ->
      let t1, r1 = spawn_predict socket (predict ~deadline_ms:1 asm_a) in
      let c = Server.counters server in
      poll_until "request queued" (fun () -> c.Server.accepted = 1);
      Thread.delay 0.02;
      set_gate gate true;
      Thread.join t1;
      (match !r1 with
      | Ok (Wire.Refused (Wire.Deadline_exceeded, _)) -> ()
      | Ok _ -> Alcotest.fail "expired deadline not shed"
      | Error msg -> Alcotest.fail msg);
      (* same fingerprint again: must be admitted as a NEW entry *)
      set_gate gate false;
      let t2, r2 = spawn_predict socket (predict asm_a) in
      poll_until "duplicate re-admitted" (fun () -> c.Server.accepted = 2);
      Alcotest.(check int) "no coalescing onto the shed entry" 0
        c.Server.coalesced;
      set_gate gate true;
      Thread.join t2;
      match !r2 with
      | Ok (Wire.Result _) -> ()
      | Ok _ -> Alcotest.fail "re-admitted duplicate refused"
      | Error msg -> Alcotest.fail msg)

let test_serve_drain () =
  with_server (fun server socket ->
      match Client.connect ~retries:20 socket with
      | Error msg -> Alcotest.fail msg
      | Ok c ->
        (* a request before the drain completes normally *)
        (match request_exn "pre-drain predict" c (predict asm_a) with
        | Wire.Result _ -> ()
        | _ -> Alcotest.fail "pre-drain request refused");
        Server.request_drain server;
        (* the connection is still open: further work is refused with
           the drain's own refusal kind *)
        (match request_exn "post-drain predict" c (predict asm_b) with
        | Wire.Refused (Wire.Shutting_down, _) -> ()
        | _ -> Alcotest.fail "draining server accepted new work");
        Client.close c)
  (* with_server joins the run thread: returning at all proves the
     drain terminates, and the socket file is removed by run *)

let suite =
  [
    Alcotest.test_case "eintr: retry loop" `Quick test_eintr_intr;
    Alcotest.test_case "eintr: really read/write" `Quick test_eintr_really_rw;
    Alcotest.test_case "wire: framing" `Quick test_wire_framing;
    Alcotest.test_case "wire: request round-trip" `Quick
      test_wire_request_roundtrip;
    Alcotest.test_case "wire: response round-trip" `Quick
      test_wire_response_roundtrip;
    Alcotest.test_case "serve: round-trip byte-identity" `Quick
      test_serve_roundtrip_byte_identity;
    Alcotest.test_case "serve: bad requests refused" `Quick
      test_serve_bad_requests;
    Alcotest.test_case "serve: coalescing" `Quick test_serve_coalescing;
    Alcotest.test_case "serve: overload refusal" `Quick test_serve_overload;
    Alcotest.test_case "serve: deadline shed" `Quick test_serve_deadline_shed;
    Alcotest.test_case "serve: coalesced deadline loosens" `Quick
      test_serve_coalesced_deadline_loosens;
    Alcotest.test_case "serve: batch identity" `Quick test_serve_batch_identity;
    Alcotest.test_case "serve: shard determinism" `Quick
      test_serve_shard_determinism;
    Alcotest.test_case "serve: shed inflight hygiene" `Quick
      test_serve_shed_inflight_hygiene;
    Alcotest.test_case "serve: graceful drain" `Quick test_serve_drain;
  ]
