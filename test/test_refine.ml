(* Tests for the descriptor-refinement subsystem (lib/refine) and the
   machinery it leans on: overlay canonicalisation and golden digests,
   the block-sensitive generation semantics that make candidate
   evaluations incremental, the shared table-noise perturbation
   source, the search driver's determinism / resume / recovery
   contract, per-generation store statistics, and the schema-v9
   refine gates in bench-diff. *)

module Overlay = Uarch.Overlay
module Driver = Refine.Driver
module Perturb = Refine.Perturb
module Localize = Refine.Localize
module Json = Telemetry.Json
module Bench_diff = Telemetry.Bench_diff
module Spec = Manifest.Spec
module Journal = Manifest.Journal

let ivb = Uarch.All.ivy_bridge

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir prefix f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* --- overlays: canonical encoding ------------------------------------- *)

let test_overlay_codes_total () =
  List.iteri
    (fun i t ->
      Alcotest.(check int) ("code of " ^ Overlay.name t) i (Overlay.code t);
      (match Overlay.of_code i with
      | Some t' ->
        Alcotest.(check bool) "of_code inverts code" true (t = t')
      | None -> Alcotest.fail "of_code not total");
      match Overlay.of_name (Overlay.name t) with
      | Some t' ->
        Alcotest.(check bool) "of_name inverts name" true (t = t')
      | None -> Alcotest.fail "of_name not total")
    Overlay.all;
  Alcotest.(check int) "n_targets" (List.length Overlay.all) Overlay.n_targets

let test_overlay_canonical () =
  let t1 = Overlay.Lat Overlay.L_imul
  and t2 = Overlay.Ports Overlay.P_alu in
  let o =
    Overlay.canonical
      [
        { Overlay.target = t2; value = 3 };
        { Overlay.target = t1; value = 9 };
        { Overlay.target = t2; value = 5 };
      ]
  in
  Alcotest.(check int) "one edit per target" 2 (List.length o);
  Alcotest.(check (option int)) "later edit wins" (Some 5) (Overlay.find o t2);
  (match o with
  | a :: b :: _ ->
    Alcotest.(check bool) "sorted by code" true
      (Overlay.code a.Overlay.target < Overlay.code b.Overlay.target)
  | _ -> Alcotest.fail "canonical dropped edits");
  let o = Overlay.update o t1 11 in
  Alcotest.(check (option int)) "update" (Some 11) (Overlay.find o t1);
  let o = Overlay.remove o t1 in
  Alcotest.(check (option int)) "remove" None (Overlay.find o t1);
  (* the encoding is order-independent *)
  let a =
    Overlay.canonical
      [ { Overlay.target = t1; value = 2 }; { Overlay.target = t2; value = 3 } ]
  and b =
    Overlay.canonical
      [ { Overlay.target = t2; value = 3 }; { Overlay.target = t1; value = 2 } ]
  in
  Alcotest.(check string) "encode order-independent" (Overlay.encode a)
    (Overlay.encode b)

let test_overlay_apply_inverts () =
  let p = ivb.Uarch.Descriptor.profile in
  List.iter
    (fun t ->
      let v0 = Overlay.get p t in
      let p' = Overlay.apply p [ { Overlay.target = t; value = v0 + 1 } ] in
      Alcotest.(check int) ("set/get " ^ Overlay.name t) (v0 + 1)
        (Overlay.get p' t);
      let p'' = Overlay.apply p' [ { Overlay.target = t; value = v0 } ] in
      Alcotest.(check bool)
        ("undo restores profile via " ^ Overlay.name t)
        true (p'' = p))
    Overlay.all

let test_overlay_golden_digests () =
  (* Pinned: the overlay encoding and its digest are persisted in
     journals and store generations; accidental changes must trip CI. *)
  let o =
    Overlay.canonical
      [
        { Overlay.target = Overlay.Lat Overlay.L_imul; value = 5 };
        { Overlay.target = Overlay.Ports Overlay.P_fp_add; value = 3 };
      ]
  in
  Alcotest.(check string) "encoding bytes" "bhive-overlay-v1\n1=5\n29=3\n"
    (Overlay.encode o);
  Alcotest.(check string) "empty overlay encoding" "bhive-overlay-v1\n"
    (Overlay.encode Overlay.empty);
  Alcotest.(check string) "empty overlay digest"
    "f6972fac5513201f8fd66c7616f62229511f721f62c71e9dac3c109033f61c8f"
    (Engine.overlay_digest Overlay.empty);
  Alcotest.(check string) "overlay digest pinned"
    "08ab32438b84a24b699fcd4ca155511079f8a857357e0d4bb4ff98d492b77d00"
    (Engine.overlay_digest o)

(* Every applicable overlay target must be visible to the generation
   scheme — through a flat invariant-class row, a memory code, or a
   variant opcode's read signature. An invisible target would make a
   perturbation both unrecoverable and store-unsound (stale records
   surviving a table edit). *)
let test_overlay_visible_to_generations () =
  let d = ivb in
  let p = d.Uarch.Descriptor.profile in
  let f = Uarch.Flat.of_profile p ~n_ports:d.Uarch.Descriptor.n_ports in
  let visible t =
    let v = Perturb.value ~seed:7L d t in
    let p' = Overlay.apply p [ { Overlay.target = t; value = v } ] in
    let f' = Uarch.Flat.of_profile p' ~n_ports:d.Uarch.Descriptor.n_ports in
    let class_changed = ref false in
    for k = 0 to Uarch.Flat.n_classes - 1 do
      if
        (not f.Uarch.Flat.variant.(k))
        && Uarch.Flat.encode_class f k <> Uarch.Flat.encode_class f' k
      then class_changed := true;
      if
        f.Uarch.Flat.variant.(k)
        && Overlay.variant_signature p Uarch.Flat.classes.(k)
           <> Overlay.variant_signature p' Uarch.Flat.classes.(k)
      then class_changed := true
    done;
    !class_changed
    || f.Uarch.Flat.load_code <> f'.Uarch.Flat.load_code
    || f.Uarch.Flat.store_addr_code <> f'.Uarch.Flat.store_addr_code
    || f.Uarch.Flat.store_data_code <> f'.Uarch.Flat.store_data_code
    || f.Uarch.Flat.load_bytes <> f'.Uarch.Flat.load_bytes
    || f.Uarch.Flat.store_bytes <> f'.Uarch.Flat.store_bytes
  in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Overlay.name t ^ " is visible to block generations")
        true (visible t))
    (List.filter (Perturb.applicable d) Overlay.all)

(* --- block-sensitive generations --------------------------------------- *)

let imul_block = X86.Parser.block_exn "imul rax, rbx"
let add_block = X86.Parser.block_exn "add rax, rbx"

let patch_lat_imul (d : Uarch.Descriptor.t) delta =
  let t = Overlay.Lat Overlay.L_imul in
  let v = Overlay.get d.Uarch.Descriptor.profile t + delta in
  {
    d with
    Uarch.Descriptor.profile =
      Overlay.apply d.Uarch.Descriptor.profile
        [ { Overlay.target = t; value = v } ];
  }

let test_block_generation_selective () =
  let d = ivb in
  let g_imul = Engine.block_generation d imul_block
  and g_add = Engine.block_generation d add_block in
  Alcotest.(check string) "stable across calls" g_imul
    (Engine.block_generation d imul_block);
  let d' = patch_lat_imul d 3 in
  Alcotest.(check bool) "imul block's generation moves" false
    (g_imul = Engine.block_generation d' imul_block);
  Alcotest.(check string) "add block's generation stays warm" g_add
    (Engine.block_generation d' add_block);
  (* whole-descriptor generations are coarser: both move *)
  Alcotest.(check bool) "whole-descriptor generation moves" false
    (Engine.generation d = Engine.generation d')

let test_block_generation_store_warm () =
  with_dir "bhive-refine-warm" (fun dir ->
      let store = Store.open_ dir in
      Fun.protect ~finally:(fun () -> Store.close store)
        (fun () ->
          let run d =
            let eng =
              Engine.create ~jobs:1 ~faults:Faultsim.none ~store
                ~block_generation:true ()
            in
            let jobs =
              List.map
                (fun block ->
                  { Engine.env = Harness.Environment.default; uarch = d; block })
                [ imul_block; add_block ]
            in
            ignore (Engine.run_batch eng jobs);
            Engine.stats eng
          in
          let cold = run ivb in
          Alcotest.(check int) "cold run executes both" 2 cold.Engine.executed;
          (* unrelated-entry edit: only the imul block re-executes; the
             add block's record is a warm hit under its unchanged
             generation *)
          let warm = run (patch_lat_imul ivb 3) in
          Alcotest.(check int) "edited slice re-executes" 1
            warm.Engine.executed;
          Alcotest.(check int) "unchanged slice is a store hit" 1
            warm.Engine.store_hits))

(* --- table noise (shared perturbation source) --------------------------- *)

let test_table_noise_deterministic () =
  let l1 = Models.Table_noise.latency_named ~seed:5L ~fraction:1.0
      ~amplitude:0.6 "lat.imul" 3
  and l2 = Models.Table_noise.latency_named ~seed:5L ~fraction:1.0
      ~amplitude:0.6 "lat.imul" 3
  in
  Alcotest.(check int) "latency draw deterministic" l1 l2;
  Alcotest.(check bool) "latency never below 1" true
    (Models.Table_noise.latency_named ~seed:5L ~fraction:1.0 ~amplitude:1.0
       "lat.imul" 1
    >= 1);
  Alcotest.(check bool) "seeds decorrelate" true
    (List.exists
       (fun s ->
         Models.Table_noise.hash_name ~seed:s "lat.imul"
         <> Models.Table_noise.hash_name ~seed:1L "lat.imul")
       [ 2L; 3L; 4L ])

let test_table_noise_named_opcode_equivalence () =
  (* the opcode wrappers must produce bit-equal draws to the named
     combinators on the mnemonic — lib/refine and the static models
     share one noise source *)
  let ops = [ X86.Opcode.Add; X86.Opcode.Imul_rr; X86.Opcode.Div ] in
  List.iter
    (fun op ->
      let name = X86.Opcode.mnemonic op in
      Alcotest.(check int64) ("hash = hash_name " ^ name)
        (Models.Table_noise.hash_name ~seed:9L name)
        (Models.Table_noise.hash ~seed:9L op);
      Alcotest.(check int) ("latency = latency_named " ^ name)
        (Models.Table_noise.latency_named ~seed:9L ~fraction:0.5
           ~amplitude:0.6 name 7)
        (Models.Table_noise.latency ~seed:9L ~fraction:0.5 ~amplitude:0.6 op 7))
    ops;
  (* singleton port sets are never emptied *)
  Alcotest.(check int) "singleton port set untouched" 1
    (Models.Table_noise.drop_port_named ~seed:9L ~fraction:1.0 "p" 1)

(* --- perturbation ------------------------------------------------------- *)

let test_perturb_deterministic_and_valid () =
  let o1 = Perturb.overlay ~seed:3L ~edits:2 ivb
  and o2 = Perturb.overlay ~seed:3L ~edits:2 ivb in
  Alcotest.(check string) "same seed, same overlay" (Overlay.encode o1)
    (Overlay.encode o2);
  Alcotest.(check int) "edit count respected" 2 (List.length o1);
  let p = ivb.Uarch.Descriptor.profile in
  List.iter
    (fun (e : Overlay.edit) ->
      Alcotest.(check bool)
        ("perturbed " ^ Overlay.name e.Overlay.target ^ " differs")
        true
        (e.Overlay.value <> Overlay.get p e.Overlay.target);
      match e.Overlay.target with
      | Overlay.Lat _ ->
        Alcotest.(check bool) "latency stays >= 1" true (e.Overlay.value >= 1)
      | Overlay.Ports _ ->
        Alcotest.(check bool) "port set stays non-empty" true
          (e.Overlay.value <> 0
          && e.Overlay.value
             land lnot ((1 lsl ivb.Uarch.Descriptor.n_ports) - 1)
             = 0)
      | Overlay.Uops _ ->
        Alcotest.(check bool) "uop count toggles 1<->2" true
          (e.Overlay.value = 1 || e.Overlay.value = 2))
    o1;
  (* break = reference + truth overlay, and edits=1 chooses a prefix of
     the seed's ranking *)
  let broken, truth = Perturb.break ~seed:3L ~edits:2 ivb in
  Alcotest.(check string) "truth is the overlay" (Overlay.encode o1)
    (Overlay.encode truth);
  Alcotest.(check bool) "broken = reference + truth" true
    (broken.Uarch.Descriptor.profile = Overlay.apply p truth);
  let o_one = Perturb.overlay ~seed:3L ~edits:1 ivb in
  Alcotest.(check bool) "edits=1 is a prefix of edits=2" true
    (List.for_all
       (fun (e : Overlay.edit) ->
         List.exists (fun (f : Overlay.edit) -> f.Overlay.target = e.Overlay.target) o1)
       o_one);
  (* different seeds pick different breakage *)
  Alcotest.(check bool) "seeds decorrelate" true
    (List.exists
       (fun s ->
         Overlay.encode (Perturb.overlay ~seed:s ~edits:2 ivb)
         <> Overlay.encode o1)
       [ 1L; 2L; 4L; 5L ])

(* --- localization ------------------------------------------------------- *)

let test_localize_rank () =
  let corpus = [ imul_block; add_block ] in
  let n_ports = ivb.Uarch.Descriptor.n_ports in
  let deltas =
    [|
      { Localize.bd_error = 0.5; bd_port_delta = Array.make n_ports 0.0 };
      { Localize.bd_error = 0.0; bd_port_delta = Array.make n_ports 0.0 };
    |]
  in
  let ranked = Localize.rank ~cand:ivb ~corpus ~deltas in
  Alcotest.(check bool) "some suspects found" true (ranked <> []);
  let score t =
    match List.assoc_opt t ranked with Some s -> s | None -> 0.0
  in
  (* the erring block is the imul one: imul-specific entries must
     outrank the broad ALU entry the agreeing block also touches *)
  Alcotest.(check bool) "lat.imul outranks ports.alu" true
    (score (Overlay.Lat Overlay.L_imul) > score (Overlay.Ports Overlay.P_alu));
  (* no error, no suspects *)
  let quiet =
    Array.map
      (fun _ ->
        { Localize.bd_error = 0.0; bd_port_delta = Array.make n_ports 0.0 })
      deltas
  in
  Alcotest.(check int) "zero error ranks nothing" 0
    (List.length (Localize.rank ~cand:ivb ~corpus ~deltas:quiet));
  (* shape mismatch is a programming error *)
  (try
     ignore (Localize.rank ~cand:ivb ~corpus ~deltas:[| deltas.(0) |]);
     Alcotest.fail "length mismatch accepted"
   with Invalid_argument _ -> ())

let test_localize_precision () =
  let a = Overlay.Lat Overlay.L_imul
  and b = Overlay.Ports Overlay.P_alu
  and c = Overlay.Lat Overlay.L_div32 in
  Alcotest.(check (float 1e-9)) "perfect" 1.0
    (Localize.precision ~suspects:[ a; b ] ~truth:[ a ]);
  Alcotest.(check (float 1e-9)) "half" 0.5
    (Localize.precision ~suspects:[ a; b ] ~truth:[ a; c ]);
  Alcotest.(check (float 1e-9)) "miss" 0.0
    (Localize.precision ~suspects:[ b ] ~truth:[ c ]);
  Alcotest.(check (float 1e-9)) "empty truth" 1.0
    (Localize.precision ~suspects:[] ~truth:[])

(* --- the search driver -------------------------------------------------- *)

let refine_corpus =
  [
    X86.Parser.block_exn {|
      imul rax, rbx
      imul rbx, rcx
      add rcx, 1
    |};
    add_block;
    imul_block;
    Corpus.Paper_blocks.gzip_crc;
    Corpus.Paper_blocks.division;
    Corpus.Paper_blocks.zero_idiom;
  ]

let env = Harness.Environment.default

(* Recovery of a single perturbed latency: the truth is +3 on
   lat.imul, the corpus is imul-heavy, and exact recovery drives the
   error to 0 (simulation is deterministic), so converging below 1e-9
   means the reference profile itself was found. *)
let run_search ?jobs ?store ?record_step ?prior_steps () =
  let t = Overlay.Lat Overlay.L_imul in
  let truth =
    [
      {
        Overlay.target = t;
        value = Overlay.get ivb.Uarch.Descriptor.profile t + 3;
      };
    ]
  in
  let start = Overlay.apply ivb.Uarch.Descriptor.profile truth in
  Driver.run ?jobs ?store ?record_step ?prior_steps ~truth ~env
    ~reference:ivb ~start ~corpus:refine_corpus
    { Driver.target_error = 1e-9; max_evals = 40 }

let test_driver_recovers () =
  with_dir "bhive-refine-drv" (fun dir ->
      let store = Store.open_ dir in
      Fun.protect ~finally:(fun () -> Store.close store)
        (fun () ->
          let r = run_search ~jobs:1 ~store () in
          Alcotest.(check bool) "converged" true r.Driver.r_converged;
          Alcotest.(check bool) "reference profile recovered" true
            r.Driver.r_recovered;
          Alcotest.(check bool) "error driven to zero" true
            (r.Driver.r_final_error <= 1e-9);
          Alcotest.(check (option int)) "lat.imul restored"
            (Some (Overlay.get ivb.Uarch.Descriptor.profile
                     (Overlay.Lat Overlay.L_imul)))
            (Overlay.find r.Driver.r_overlay (Overlay.Lat Overlay.L_imul));
          Alcotest.(check bool) "search was incremental" true
            (r.Driver.r_hit_rate > 0.5);
          Alcotest.(check (option (float 1e-9))) "localizer precision"
            (Some 1.0) r.Driver.r_precision))

let step_fingerprint (s : Driver.step) =
  Printf.sprintf "%d|%s|%d|%016Lx|%b" s.Driver.st_eval
    (match s.Driver.st_target with
    | None -> "baseline"
    | Some t -> Overlay.name t)
    s.Driver.st_value
    (Int64.bits_of_float s.Driver.st_error)
    s.Driver.st_accepted

let test_driver_worker_independent () =
  let r1 = run_search ~jobs:1 () in
  let r2 = run_search ~jobs:2 () in
  Alcotest.(check (list string)) "step sequence identical across workers"
    (List.map step_fingerprint r1.Driver.r_steps)
    (List.map step_fingerprint r2.Driver.r_steps);
  Alcotest.(check string) "rendered report identical" (Driver.report r1)
    (Driver.report r2)

let test_driver_resume_replays () =
  (* first run records every step; a resumed run handed those records
     replays them without re-evaluating and lands on the same result *)
  let recorded = ref [] in
  let full = run_search ~jobs:1 ~record_step:(fun j -> recorded := j :: !recorded) () in
  let prior = List.rev !recorded in
  Alcotest.(check int) "every step was recorded" (List.length full.Driver.r_steps)
    (List.length prior);
  let resumed = run_search ~jobs:1 ~prior_steps:prior () in
  Alcotest.(check (list string)) "replayed steps match"
    (List.map step_fingerprint full.Driver.r_steps)
    (List.map step_fingerprint resumed.Driver.r_steps);
  Alcotest.(check bool) "all candidate steps replayed" true
    (List.for_all (fun s -> s.Driver.st_replayed) resumed.Driver.r_steps);
  Alcotest.(check string) "same report" (Driver.report full)
    (Driver.report resumed);
  (* a partial journal replays its prefix and searches on live *)
  let k = List.length prior / 2 in
  let partial = List.filteri (fun i _ -> i < k) prior in
  let half = run_search ~jobs:1 ~prior_steps:partial () in
  Alcotest.(check string) "prefix resume, same report" (Driver.report full)
    (Driver.report half);
  Alcotest.(check int) "exactly the prefix replayed" k
    (List.length (List.filter (fun s -> s.Driver.st_replayed) half.Driver.r_steps));
  (* a journal from a different search is refused, not silently used *)
  let mangled =
    List.map
      (fun j ->
        match j with
        | Json.Object fields ->
          Json.Object
            (List.map
               (function
                 | "value", Json.Number v -> ("value", Json.Number (v +. 100.))
                 | kv -> kv)
               fields)
        | j -> j)
      prior
  in
  match run_search ~jobs:1 ~prior_steps:mangled () with
  | _ -> Alcotest.fail "mangled journal accepted"
  | exception Failure msg ->
    Alcotest.(check bool) "refusal names the mismatch" true
      (contains ~needle:"does not match" msg)

(* --- store generation stats --------------------------------------------- *)

let test_store_gen_stats () =
  with_dir "bhive-refine-genstats" (fun dir ->
      let st = Store.open_ dir in
      Fun.protect ~finally:(fun () -> Store.close st)
        (fun () ->
          ignore (Store.put st ~key:"a" ~gen:"g1" "xx");
          ignore (Store.put st ~key:"b" ~gen:"g1" "yyyy");
          ignore (Store.put st ~key:"c" ~gen:"g2" "z");
          (match Store.gen_stats st with
          | [ g1; g2 ] ->
            Alcotest.(check string) "heaviest first" "g1" g1.Store.g_gen;
            Alcotest.(check int) "g1 live" 2 g1.Store.g_live;
            Alcotest.(check int) "g1 bytes" 6 g1.Store.g_bytes;
            Alcotest.(check string) "g2 second" "g2" g2.Store.g_gen;
            Alcotest.(check int) "g2 live" 1 g2.Store.g_live
          | l ->
            Alcotest.fail
              (Printf.sprintf "expected 2 generations, got %d" (List.length l)));
          (* superseding a key moves it between generations *)
          ignore (Store.put st ~key:"a" ~gen:"g2" "zz");
          (match Store.gen_stats st with
          | [ g2; g1 ] ->
            Alcotest.(check string) "g2 now heaviest" "g2" g2.Store.g_gen;
            Alcotest.(check int) "g2 live" 2 g2.Store.g_live;
            Alcotest.(check int) "g1 live" 1 g1.Store.g_live
          | _ -> Alcotest.fail "supersede did not regroup");
          (* a multi-generation store verifies clean *)
          let v = Store.verify st in
          Alcotest.(check int) "no corruption" 0 v.Store.v_corrupt;
          Alcotest.(check int) "no index mismatch" 0 v.Store.v_index_mismatched;
          Alcotest.(check int) "all live records scanned" 3 v.Store.v_live))

(* --- journal extras ----------------------------------------------------- *)

let test_journal_extras_roundtrip () =
  with_dir "bhive-refine-journal" (fun dir ->
      let path = Filename.concat dir "j.jsonl" in
      let step n =
        Json.Object
          [
            ("type", Json.String "refine_step");
            ("eval", Json.Number (float_of_int n));
            ("section", Json.String "refine-ivb");
          ]
      in
      (match Journal.open_ ~manifest_id:"m1" path with
      | Error m -> Alcotest.fail m
      | Ok j ->
        Journal.add_extra j (step 1);
        Journal.add_extra j (step 2);
        Journal.add_extra j
          (Json.Object
             [
               ("type", Json.String "refine_summary");
               ("final_error", Json.Number 0.001);
             ]);
        (* extras are visible before reopen, in append order *)
        Alcotest.(check int) "live extras" 3 (List.length (Journal.extras j));
        (* structural record types are refused *)
        (try
           Journal.add_extra j
             (Json.Object [ ("type", Json.String "section_end") ]);
           Alcotest.fail "structural type accepted"
         with Invalid_argument _ -> ());
        Journal.close j);
      match Journal.open_ ~manifest_id:"m1" path with
      | Error m -> Alcotest.fail m
      | Ok j ->
        let steps = Journal.extras ~type_:"refine_step" j in
        Alcotest.(check int) "steps survive reopen" 2 (List.length steps);
        (match steps with
        | first :: _ ->
          Alcotest.(check (option string)) "order preserved"
            (Some "1")
            (Option.map Json.to_string (Json.member "eval" first))
        | [] -> Alcotest.fail "no steps");
        Alcotest.(check int) "summary record too" 1
          (List.length (Journal.extras ~type_:"refine_summary" j));
        Journal.close j)

(* --- manifest: the refine section kind ---------------------------------- *)

let example = Filename.concat "../examples" "refine.manifest.json"
let read_file path = In_channel.with_open_text path In_channel.input_all

let pinned_refine_manifest_id =
  "38f82e81b4d65cee5c1b446d353e2c91e9f2d84ef86693938bbb0c7dabf43906"

let refine_kind ?(uarch = "ivb") ?(seed = 3L) ?(edits = 2)
    ?(target_error = 0.005) ?(max_evals = 60) () =
  Spec.Refine { uarch; seed; edits; target_error; max_evals }

let refine_spec ?uarch ?seed ?edits ?target_error ?max_evals () =
  Spec.make ~name:"refine" ~scale:2000 ~uarches:[ "ivb" ]
    ~sections:
      [ Spec.section (refine_kind ?uarch ?seed ?edits ?target_error ?max_evals ()) ]
    ()

let test_refine_example_manifest () =
  let text = read_file example in
  let spec =
    match Spec.of_string text with
    | Ok s -> s
    | Error m -> Alcotest.fail ("refine example does not parse: " ^ m)
  in
  Alcotest.(check string) "file is canonical" text (Spec.to_string spec);
  Alcotest.(check (result unit string)) "validates" (Ok ())
    (Spec.validate spec);
  (* same pin as the CI refine job greps *)
  Alcotest.(check string) "manifest id pinned" pinned_refine_manifest_id
    (Spec.id spec);
  match List.map (fun s -> s.Spec.kind) spec.Spec.sections with
  | [ Spec.Refine { uarch; seed; edits; target_error; max_evals } ] ->
    Alcotest.(check string) "uarch" "ivb" uarch;
    Alcotest.(check int64) "seed" 3L seed;
    Alcotest.(check int) "edits" 2 edits;
    Alcotest.(check (float 0.0)) "target_error" 0.005 target_error;
    Alcotest.(check int) "max_evals" 60 max_evals
  | _ -> Alcotest.fail "expected exactly one refine section"

let test_refine_spec_roundtrip () =
  let spec = refine_spec () in
  Alcotest.(check (result unit string)) "validates" (Ok ())
    (Spec.validate spec);
  match Spec.of_string (Spec.to_string spec) with
  | Error m -> Alcotest.fail ("round-trip parse failed: " ^ m)
  | Ok spec' ->
    Alcotest.(check string) "identical rendering" (Spec.to_string spec)
      (Spec.to_string spec');
    Alcotest.(check string) "identical id" (Spec.id spec) (Spec.id spec')

let test_refine_spec_validation () =
  let invalid what spec needle =
    match Spec.validate spec with
    | Ok () -> Alcotest.fail (what ^ ": accepted an invalid manifest")
    | Error msg ->
      Alcotest.(check bool)
        (what ^ ": message mentions the field (" ^ msg ^ ")")
        true
        (contains ~needle msg)
  in
  invalid "edits" (refine_spec ~edits:0 ()) "edits must be >= 1";
  invalid "target_error" (refine_spec ~target_error:0.0 ()) "target_error";
  invalid "max_evals" (refine_spec ~max_evals:0 ()) "max_evals";
  invalid "uarch outside manifest set" (refine_spec ~uarch:"hsw" ())
    "not in the manifest's uarch set"

(* --- bench-diff: schema v9 refine gates ---------------------------------- *)

let base_summary ?schema ?refine () =
  Json.Object
    ((match schema with
     | Some v -> [ ("schema_version", Json.Number v) ]
     | None -> [])
    @ [
        ("scale", Json.Number 2000.);
        ("sections", Json.List []);
      ]
    @
    match refine with
    | Some (err, hit) ->
      [
        ( "refine",
          Json.Object
            [
              ("final_error", Json.Number err);
              ("store_hit_rate", Json.Number hit);
            ] );
      ]
    | None -> [])

let check_verdict what expected (report : Bench_diff.report) =
  let show = function
    | Bench_diff.Pass -> "pass"
    | Bench_diff.Warn -> "warn"
    | Bench_diff.Fail -> "fail"
    | Bench_diff.Mismatch -> "mismatch"
  in
  Alcotest.(check string) what (show expected) (show report.Bench_diff.verdict)

let test_strip_top_allowlist () =
  let s = base_summary ~schema:9.0 ~refine:(0.001, 0.9) () in
  let stripped = Bench_diff.strip_top s in
  Alcotest.(check bool) "unknown top-level object is volatile" true
    (Json.member "refine" stripped = None);
  Alcotest.(check bool) "identity fields survive" true
    (Json.member "schema_version" stripped <> None
    && Json.member "scale" stripped <> None
    && Json.member "sections" stripped <> None);
  (* two summaries differing only in the refine object are identical *)
  let report =
    Bench_diff.compare_summaries ~require_identical:true
      ~baseline:(base_summary ~schema:9.0 ())
      ~current:s ()
  in
  check_verdict "refine object volatile for identity" Bench_diff.Pass report

let test_refine_gates () =
  let gate ?max_refine_error ?min_refine_hit_rate current =
    Bench_diff.compare_summaries ?max_refine_error ?min_refine_hit_rate
      ~baseline:(base_summary ~schema:9.0 ~refine:(0.001, 0.9) ())
      ~current ()
  in
  check_verdict "within both floors" Bench_diff.Pass
    (gate ~max_refine_error:0.005 ~min_refine_hit_rate:0.5
       (base_summary ~schema:9.0 ~refine:(0.001, 0.9) ()));
  check_verdict "error above ceiling fails" Bench_diff.Fail
    (gate ~max_refine_error:0.005
       (base_summary ~schema:9.0 ~refine:(0.01, 0.9) ()));
  check_verdict "hit rate below floor fails" Bench_diff.Fail
    (gate ~min_refine_hit_rate:0.5
       (base_summary ~schema:9.0 ~refine:(0.001, 0.2) ()));
  check_verdict "exactly at the ceiling passes" Bench_diff.Pass
    (gate ~max_refine_error:0.005
       (base_summary ~schema:9.0 ~refine:(0.005, 0.9) ()));
  (* the gates refuse to read pre-v9 summaries *)
  let report =
    gate ~max_refine_error:0.005
      (base_summary ~schema:8.0 ~refine:(0.001, 0.9) ())
  in
  check_verdict "pre-v9 summary refused" Bench_diff.Fail report;
  Alcotest.(check bool) "refusal names the schema" true
    (List.exists
       (fun (f : Bench_diff.finding) ->
         contains ~needle:"schema v9" f.Bench_diff.detail)
       report.Bench_diff.findings);
  check_verdict "v9 summary without a refine object fails" Bench_diff.Fail
    (gate ~max_refine_error:0.005 (base_summary ~schema:9.0 ()));
  (* without the flags nothing is gated *)
  check_verdict "no flags, no gate" Bench_diff.Pass
    (gate (base_summary ~schema:8.0 ()))

let suite =
  [
    Alcotest.test_case "overlay codes are total and stable" `Quick
      test_overlay_codes_total;
    Alcotest.test_case "overlay canonicalisation" `Quick
      test_overlay_canonical;
    Alcotest.test_case "overlay apply/undo round-trip" `Quick
      test_overlay_apply_inverts;
    Alcotest.test_case "overlay golden encoding and digests" `Quick
      test_overlay_golden_digests;
    Alcotest.test_case "overlay targets visible to generations" `Quick
      test_overlay_visible_to_generations;
    Alcotest.test_case "block generations are slice-selective" `Quick
      test_block_generation_selective;
    Alcotest.test_case "unrelated edits keep store records warm" `Quick
      test_block_generation_store_warm;
    Alcotest.test_case "table noise is deterministic" `Quick
      test_table_noise_deterministic;
    Alcotest.test_case "table noise named/opcode equivalence" `Quick
      test_table_noise_named_opcode_equivalence;
    Alcotest.test_case "perturbation determinism and validity" `Quick
      test_perturb_deterministic_and_valid;
    Alcotest.test_case "localizer ranks narrow suspects first" `Quick
      test_localize_rank;
    Alcotest.test_case "localization precision" `Quick
      test_localize_precision;
    Alcotest.test_case "driver recovers a perturbed latency" `Quick
      test_driver_recovers;
    Alcotest.test_case "driver is worker-count independent" `Quick
      test_driver_worker_independent;
    Alcotest.test_case "driver resume replays the journal" `Quick
      test_driver_resume_replays;
    Alcotest.test_case "store per-generation stats" `Quick
      test_store_gen_stats;
    Alcotest.test_case "journal extras round-trip" `Quick
      test_journal_extras_roundtrip;
    Alcotest.test_case "refine example manifest pinned" `Quick
      test_refine_example_manifest;
    Alcotest.test_case "refine spec round-trips" `Quick
      test_refine_spec_roundtrip;
    Alcotest.test_case "refine spec validation" `Quick
      test_refine_spec_validation;
    Alcotest.test_case "strip_top allowlists identity fields" `Quick
      test_strip_top_allowlist;
    Alcotest.test_case "bench-diff refine gates" `Quick test_refine_gates;
  ]
