(* Tests for the declarative experiment manifests: canonical encoding
   and pinned golden ids, checked-in example round-trips, validation
   and output-path errors, the crash-safe journal (torn tails,
   manifest mismatch, mid-file corruption refusal), and the resume
   property — kill a run at a section boundary or mid-section, resume
   it (with a different worker count), and the final summary is
   byte-identical to an uninterrupted run's once volatile fields are
   stripped, with zero duplicate profiler calls. *)

module Spec = Manifest.Spec
module Journal = Manifest.Journal
module Runner = Manifest.Runner
module Json = Telemetry.Json

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir prefix f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let read_file path = In_channel.with_open_text path In_channel.input_all
let write_file path s = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc s)

(* a formatter that swallows everything: the resume tests only care
   about journals and summaries, not stdout *)
let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* --- canonical ids ---------------------------------------------------- *)

(* The id is SHA-256 over a versioned canonical byte encoding: the same
   manifest must hash to the same id on every machine and every
   revision that doesn't consciously bump the encoding version. These
   pins are the CI tripwire for accidental encoding changes. *)
let pinned_manifest_id =
  "9fbd9af97d9b2cafc59b15093a7a76268d0b36634db7b98ea3167060f4d6492b"

let pinned_experiment_id =
  "ed373f1ef2462a0597a51ca3648cea50b9be187485f737189ff136511885130c"

let test_golden_ids () =
  let spec = Spec.bench ~scale:2000 () in
  Alcotest.(check string) "manifest id pinned" pinned_manifest_id (Spec.id spec);
  Alcotest.(check string) "experiment id pinned" pinned_experiment_id
    (Spec.experiment_id spec);
  (* deterministic: computing twice gives the same bytes *)
  Alcotest.(check string) "id stable across calls" (Spec.id spec) (Spec.id spec)

let test_id_sensitivity () =
  let base = Spec.bench ~scale:2000 () in
  let renamed = { base with Spec.name = "other" } in
  Alcotest.(check bool) "name changes manifest id" false
    (Spec.id base = Spec.id renamed);
  Alcotest.(check string) "name does not change experiment id"
    (Spec.experiment_id base)
    (Spec.experiment_id renamed);
  let rescaled = { base with Spec.corpus = { base.Spec.corpus with Spec.scale = 100 } } in
  Alcotest.(check bool) "scale changes experiment id" false
    (Spec.experiment_id base = Spec.experiment_id rescaled)

(* --- example manifests ------------------------------------------------ *)

let example name = Filename.concat "../examples" name

let test_bench_example_round_trip () =
  let path = example "bench.manifest.json" in
  let text = read_file path in
  let spec =
    match Spec.of_string text with
    | Ok s -> s
    | Error m -> Alcotest.fail ("bench example does not parse: " ^ m)
  in
  (* the checked-in file is exactly the canonical rendering of the
     built-in bench manifest *)
  Alcotest.(check string) "file is canonical" text (Spec.to_string spec);
  Alcotest.(check string) "file equals Spec.bench ~scale:2000"
    (Spec.to_string (Spec.bench ~scale:2000 ()))
    text;
  Alcotest.(check string) "manifest id" pinned_manifest_id (Spec.id spec)

let test_validate_example_parses () =
  match Spec.load (example "validate.manifest.json") with
  | Error m -> Alcotest.fail m
  | Ok spec ->
    Alcotest.(check (result unit string)) "validates" (Ok ()) (Spec.validate spec);
    Alcotest.(check string) "round-trips"
      (read_file (example "validate.manifest.json"))
      (Spec.to_string spec)

let test_chaos_example_same_experiment () =
  let bench = Result.get_ok (Spec.load (example "bench.manifest.json")) in
  let chaos = Result.get_ok (Spec.load (example "chaos.manifest.json")) in
  Alcotest.(check string) "same experiment id" (Spec.experiment_id bench)
    (Spec.experiment_id chaos);
  Alcotest.(check bool) "different manifest id" false
    (Spec.id bench = Spec.id chaos)

(* --- validation ------------------------------------------------------- *)

let check_invalid what spec needle =
  match Spec.validate spec with
  | Ok () -> Alcotest.fail (what ^ ": accepted an invalid manifest")
  | Error msg ->
    Alcotest.(check bool)
      (what ^ ": message mentions " ^ needle)
      true
      (contains ~needle msg)

let test_validate_errors () =
  let s sections = Spec.make ~sections () in
  check_invalid "empty sections" (s []) "section";
  check_invalid "bad scale"
    { (s [ Spec.section Spec.Corpus_load ]) with
      Spec.corpus = { Spec.scale = 0; seed = None } }
    "scale";
  check_invalid "unknown uarch"
    (Spec.make ~uarches:[ "znver4" ] ~sections:[ Spec.section Spec.Corpus_load ] ())
    "znver4";
  check_invalid "unknown model"
    (Spec.make ~models:[ "oracle" ] ~sections:[ Spec.section Spec.Corpus_load ] ())
    "oracle";
  check_invalid "unknown paper block"
    (s [ Spec.section (Spec.Ablation_block { block = "doom" }) ])
    "doom";
  check_invalid "dataset uarch outside experiment"
    (Spec.make ~uarches:[ "skl" ]
       ~sections:[ Spec.section (Spec.Dataset { uarch = "hsw" }) ]
       ())
    "hsw";
  check_invalid "duplicate section names"
    (s [ Spec.section Spec.Corpus_load; Spec.section Spec.Corpus_load ])
    "duplicate";
  check_invalid "unparseable profile block"
    (s
       [
         Spec.section
           (Spec.Profile
              { asm = "not asm at all %%"; uarch = "hsw"; with_models = false;
                schedule = false });
       ])
    "profile";
  check_invalid "bad quorum"
    { (s [ Spec.section Spec.Corpus_load ]) with
      Spec.policy = { Spec.max_retries = None; quorum = Some 0 } }
    "quorum"

let test_validate_outputs () =
  let bad = Filename.concat (Filename.get_temp_dir_name ()) "no-such-dir-bhive" in
  let spec =
    Spec.make
      ~output:
        { Spec.default_output with
          summary = Some (Filename.concat bad "summary.json") }
      ~sections:[ Spec.section Spec.Corpus_load ]
      ()
  in
  match Spec.validate_outputs spec with
  | Ok () -> Alcotest.fail "accepted a summary path in a missing directory"
  | Error msg ->
    Alcotest.(check bool) "one-line message" false (String.contains msg '\n');
    Alcotest.(check bool) "names the path" true (contains ~needle:bad msg)

let test_parse_errors () =
  let bad what text needle =
    match Spec.of_string text with
    | Ok _ -> Alcotest.fail (what ^ ": parsed")
    | Error msg ->
      Alcotest.(check bool) (what ^ ": mentions " ^ needle) true
        (contains ~needle msg)
  in
  bad "not json" "{" "manifest";
  bad "wrong version" {|{"manifest_version": 99, "sections": []}|} "version";
  bad "missing sections" {|{"manifest_version": 1}|} "section"

(* --- crash-safe JSONL substrate --------------------------------------- *)

let test_jsonl_torn_tail () =
  let path = Filename.temp_file "bhive_jsonl" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "{\"a\":1}\n{\"b\":2}\n{\"torn";
      let valid l = Result.is_ok (Json.parse l) in
      match Store.Jsonl.open_ ~valid path with
      | Error m -> Alcotest.fail m
      | Ok (t, lines) ->
        Store.Jsonl.close t;
        Alcotest.(check (list string)) "torn tail truncated"
          [ "{\"a\":1}"; "{\"b\":2}" ] lines;
        Alcotest.(check string) "file physically truncated"
          "{\"a\":1}\n{\"b\":2}\n" (read_file path))

let test_jsonl_append_after_truncate () =
  let path = Filename.temp_file "bhive_jsonl" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "{\"a\":1}\n{\"half";
      let valid l = Result.is_ok (Json.parse l) in
      let t, _ = Result.get_ok (Store.Jsonl.open_ ~valid path) in
      Store.Jsonl.append t "{\"c\":3}";
      Store.Jsonl.close t;
      Alcotest.(check string) "append lands after the truncated tail"
        "{\"a\":1}\n{\"c\":3}\n" (read_file path))

let test_jsonl_mid_file_corruption_refused () =
  let path = Filename.temp_file "bhive_jsonl" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "garbage\n{\"a\":1}\n";
      let valid l = Result.is_ok (Json.parse l) in
      match Store.Jsonl.open_ ~valid path with
      | Ok (t, _) ->
        Store.Jsonl.close t;
        Alcotest.fail "opened a file with mid-file corruption"
      | Error msg ->
        Alcotest.(check bool) "refuses to truncate mid-file" true
          (contains ~needle:"refusing" msg))

(* --- journal ---------------------------------------------------------- *)

let test_journal_mismatch_and_fresh () =
  let path = Filename.temp_file "bhive_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Journal.open_ ~manifest_id:"aaaa" path with
      | Error m -> Alcotest.fail m
      | Ok j -> Journal.close j);
      (match Journal.open_ ~manifest_id:"bbbb" path with
      | Ok j ->
        Journal.close j;
        Alcotest.fail "opened another manifest's journal"
      | Error msg ->
        Alcotest.(check bool) "mismatch names both ids" true
          (contains ~needle:"belongs to manifest" msg));
      (* --fresh discards the foreign journal *)
      match Journal.open_ ~fresh:true ~manifest_id:"bbbb" path with
      | Error m -> Alcotest.fail m
      | Ok j ->
        Alcotest.(check int) "fresh journal is empty" 0
          (List.length (Journal.entries j));
        Journal.close j)

let test_journal_records_round_trip () =
  let path = Filename.temp_file "bhive_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let entry =
        {
          Journal.e_index = 0;
          e_section = "corpus";
          e_output = "suite: 42 blocks\nwith \"quotes\" and \xe2\x82\xac\n";
          e_digest = "deadbeef";
          e_submitted = 3;
          e_executed = 2;
          e_cache_hits = 1;
          e_retries = 0;
          e_quarantined = 0;
          e_wall_seconds = 0.5;
        }
      in
      (match Journal.open_ ~fresh:true ~manifest_id:"cccc" path with
      | Error m -> Alcotest.fail m
      | Ok j ->
        Journal.section_start j ~index:0 ~section:"corpus";
        Journal.add j entry;
        Journal.close j);
      match Journal.open_ ~manifest_id:"cccc" path with
      | Error m -> Alcotest.fail m
      | Ok j ->
        Journal.close j;
        (match Journal.find j ~index:0 ~section:"corpus" with
        | None -> Alcotest.fail "entry not found after reopen"
        | Some e ->
          Alcotest.(check string) "output round-trips" entry.Journal.e_output
            e.Journal.e_output;
          Alcotest.(check int) "counters round-trip" 2 e.Journal.e_executed);
        Alcotest.(check bool) "missing entry is absent" true
          (Journal.find j ~index:1 ~section:"other" = None))

let test_journal_digest_deterministic () =
  let pairs = [ ("corpus", "aa"); ("table5", "bb") ] in
  Alcotest.(check string) "digest deterministic" (Journal.digest pairs)
    (Journal.digest pairs);
  Alcotest.(check bool) "digest order-sensitive" false
    (Journal.digest pairs = Journal.digest (List.rev pairs))

(* --- resume ----------------------------------------------------------- *)

let resume_spec root =
  let ( / ) = Filename.concat in
  Spec.make ~name:"resume-test" ~scale:6000 ~uarches:[ "hsw" ]
    ~models:[ "iaca"; "llvm-mca" ]
    ~store:(root / "store")
    ~output:
      {
        Spec.summary = Some (root / "summary.json");
        failures = root / "failures.jsonl";
        journal = Some (root / "journal.jsonl");
        export_prefix = None;
      }
    ~sections:
      [
        Spec.section Spec.Corpus_load;
        Spec.section Spec.Applications;
        Spec.section (Spec.Dataset { uarch = "hsw" });
        Spec.section Spec.Validate;
      ]
    ()

let faults_injected () =
  match Sys.getenv_opt "BHIVE_FAULTS" with
  | Some s when String.trim s <> "" && String.trim s <> "none" -> true
  | _ -> false

let run_ok ?overrides ?max_sections ?kill_after_jobs spec =
  match Runner.run ?overrides ?max_sections ?kill_after_jobs ~out:null_fmt
      ~info:null_fmt spec
  with
  | Ok o -> o
  | Error m -> Alcotest.fail ("runner failed: " ^ m)

let jobs n =
  { Runner.no_overrides with Runner.o_jobs = Some n }

let stripped path =
  Json.to_string (Telemetry.Bench_diff.strip_volatile (Json.parse_exn (read_file path)))

(* One uninterrupted reference run, then kill/resume cells against the
   same store, journal and summary paths (the manifest id covers the
   output paths, so all cells must share them; the journal and summary
   are wiped between cells, the store persists — resuming against a
   warm store is exactly the production scenario). *)
let test_resume_matrix () =
  with_dir "bhive_resume" @@ fun root ->
  let ( / ) = Filename.concat in
  let spec = resume_spec root in
  let reference = run_ok ~overrides:(jobs 2) spec in
  Alcotest.(check bool) "reference run completes" false reference.Runner.interrupted;
  let ref_summary = stripped (root / "summary.json") in
  let ref_digest = Option.get reference.Runner.journal_digest in
  let n0 = reference.Runner.stats.Engine.profiler_calls in
  if not (faults_injected ()) then
    Alcotest.(check bool) "reference run profiles" true (n0 > 0);
  let wipe () =
    List.iter
      (fun f -> if Sys.file_exists (root / f) then Sys.remove (root / f))
      [ "journal.jsonl"; "summary.json"; "failures.jsonl" ]
  in
  let check_cell what (interrupted : Runner.outcome) resume_workers =
    Alcotest.(check bool) (what ^ ": interrupted flag") true
      interrupted.Runner.interrupted;
    Alcotest.(check bool) (what ^ ": interrupted run writes no summary") false
      (Sys.file_exists (root / "summary.json"));
    let resumed = run_ok ~overrides:(jobs resume_workers) spec in
    Alcotest.(check string) (what ^ ": summary byte-identical") ref_summary
      (stripped (root / "summary.json"));
    Alcotest.(check string) (what ^ ": journal digest matches") ref_digest
      (Option.get resumed.Runner.journal_digest);
    if not (faults_injected ()) then
      Alcotest.(check int) (what ^ ": zero duplicate profiler calls") n0
        (resumed.Runner.stats.Engine.profiler_calls
        + resumed.Runner.stats.Engine.store_hits);
    resumed
  in
  (* boundary kills after each section count, resuming with a
     different worker count each time *)
  List.iter
    (fun (k, w) ->
      wipe ();
      let killed = run_ok ~overrides:(jobs 1) ~max_sections:k spec in
      let resumed = check_cell (Printf.sprintf "boundary k=%d" k) killed w in
      Alcotest.(check int)
        (Printf.sprintf "boundary k=%d: sections replayed" k)
        k resumed.Runner.sections_replayed)
    [ (1, 1); (2, 2); (3, 4) ];
  (* mid-section kill: the hook fires after the 5th executed job,
     inside the dataset section's batch. The store is wiped too — the
     hook only counts real executions, so the dataset section must
     actually profile. *)
  List.iter
    (fun w ->
      wipe ();
      rm_rf (root / "store");
      (match
         Runner.run ~overrides:(jobs w) ~kill_after_jobs:5 ~out:null_fmt
           ~info:null_fmt spec
       with
      | exception Runner.Killed -> ()
      | Ok o ->
        Alcotest.fail
          (Printf.sprintf "mid-section kill did not fire (interrupted=%b)"
             o.Runner.interrupted)
      | Error m -> Alcotest.fail m);
      let resumed = run_ok ~overrides:(jobs (5 - w)) spec in
      Alcotest.(check string)
        (Printf.sprintf "mid-section w=%d: summary byte-identical" w)
        ref_summary
        (stripped (root / "summary.json"));
      Alcotest.(check string)
        (Printf.sprintf "mid-section w=%d: journal digest" w)
        ref_digest
        (Option.get resumed.Runner.journal_digest);
      if not (faults_injected ()) then
        Alcotest.(check int)
          (Printf.sprintf "mid-section w=%d: zero duplicate profiler calls" w)
          n0
          (resumed.Runner.stats.Engine.profiler_calls
          + resumed.Runner.stats.Engine.store_hits))
    [ 1; 2 ]

(* A completed journal makes a re-run a full replay: no engine work at
   all, and the summary is rewritten identically. *)
let test_full_replay () =
  with_dir "bhive_replay" @@ fun root ->
  let ( / ) = Filename.concat in
  let spec = resume_spec root in
  let first = run_ok ~overrides:(jobs 2) spec in
  let summary1 = stripped (root / "summary.json") in
  let again = run_ok ~overrides:(jobs 1) spec in
  Alcotest.(check int) "all sections replayed"
    (List.length spec.Spec.sections)
    again.Runner.sections_replayed;
  Alcotest.(check int) "replay profiles nothing" 0
    again.Runner.stats.Engine.profiler_calls;
  Alcotest.(check string) "replay rewrites the same summary" summary1
    (stripped (root / "summary.json"));
  Alcotest.(check string) "same journal digest"
    (Option.get first.Runner.journal_digest)
    (Option.get again.Runner.journal_digest)

let suite =
  [
    Alcotest.test_case "golden ids pinned" `Quick test_golden_ids;
    Alcotest.test_case "id sensitivity" `Quick test_id_sensitivity;
    Alcotest.test_case "bench example round-trip" `Quick
      test_bench_example_round_trip;
    Alcotest.test_case "validate example parses" `Quick
      test_validate_example_parses;
    Alcotest.test_case "chaos example shares experiment id" `Quick
      test_chaos_example_same_experiment;
    Alcotest.test_case "validation errors" `Quick test_validate_errors;
    Alcotest.test_case "output path errors" `Quick test_validate_outputs;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "jsonl torn tail" `Quick test_jsonl_torn_tail;
    Alcotest.test_case "jsonl append after truncate" `Quick
      test_jsonl_append_after_truncate;
    Alcotest.test_case "jsonl mid-file corruption" `Quick
      test_jsonl_mid_file_corruption_refused;
    Alcotest.test_case "journal mismatch and fresh" `Quick
      test_journal_mismatch_and_fresh;
    Alcotest.test_case "journal records round-trip" `Quick
      test_journal_records_round_trip;
    Alcotest.test_case "journal digest deterministic" `Quick
      test_journal_digest_deterministic;
    Alcotest.test_case "kill/resume matrix" `Slow test_resume_matrix;
    Alcotest.test_case "full replay" `Slow test_full_replay;
  ]
