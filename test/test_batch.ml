(* The batched fast path's identity contract: a reused machine
   (simulate_batch — flushed caches, epoch-reset scratch, hoisted
   forwarding table) must produce results indistinguishable from a
   brand-new machine per block, and the flat execution tables it runs
   on must decompose every instruction exactly like the reference
   profile path. The flat-table digests are pinned so an encoding or
   preprocessing change cannot slip through unnoticed. *)

open X86

let uarches =
  [ Uarch.All.ivy_bridge; Uarch.All.haswell; Uarch.All.skylake ]

(* full structural equality over the counter record, port arrays
   included — exactly what "byte-identical results" means per block *)
let counters_equal (a : Pipeline.Counters.t) (b : Pipeline.Counters.t) =
  a.core_cycles = b.core_cycles
  && a.instructions = b.instructions
  && a.uops = b.uops
  && a.l1d_read_misses = b.l1d_read_misses
  && a.l1d_write_misses = b.l1d_write_misses
  && a.l1i_misses = b.l1i_misses
  && a.l2_misses = b.l2_misses
  && a.misaligned_mem_refs = b.misaligned_mem_refs
  && a.context_switches = b.context_switches
  && a.subnormal_assists = b.subnormal_assists
  && a.port_cycles = b.port_cycles
  && a.frontend_stall_cycles = b.frontend_stall_cycles
  && a.rob_stall_cycles = b.rob_stall_cycles
  && a.port_contention_cycles = b.port_contention_cycles

let block_gen =
  QCheck.Gen.(
    let* seed = int_range 0 100000 in
    let rng = Bstats.Rng.create (Int64.of_int seed) in
    return
      (Corpus.Gen.block ~rng ~mix:Corpus.Apps.llvm.mix ~min_len:1 ~max_len:6))

let print_block b = String.concat "; " (List.map Inst.to_string b)

(* simulate_batch over a reused machine == a fresh Machine per block,
   for every uarch — cycles, counters, and schedule all equal. The
   block is simulated twice in one batch so any state leaking from a
   previous block through the reused scratch/caches would surface in
   the second result. *)
let batch_matches_fresh =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"simulate_batch == fresh machine" ~count:40
       (QCheck.make ~print:print_block block_gen)
       (fun block ->
         match Harness.Mapping.run Harness.Environment.default block ~unroll:4 with
         | Error _ -> true (* unmappable blocks are out of scope here *)
         | Ok mapped ->
           List.for_all
             (fun d ->
               let fresh =
                 Pipeline.Machine.run ~record_schedule:true
                   (Pipeline.Machine.create d) mapped.steps
               in
               match
                 Pipeline.simulate_batch ~record_schedule:true d
                   [ mapped.steps; mapped.steps ]
               with
               | [ first; second ] ->
                 List.for_all
                   (fun (r : Pipeline.Core.result) ->
                     r.cycles = fresh.cycles
                     && counters_equal r.counters fresh.counters
                     && r.schedule = fresh.schedule)
                   [ first; second ]
               | _ -> false)
             uarches))

(* the flat preprocessed tables must reproduce the reference
   decomposition for every opcode's register form, on every uarch:
   same uops (kind, ports, latency, in order), same fused-slot count,
   same elimination verdict *)
let test_flat_decompose_matches_profile () =
  List.iter
    (fun (d : Uarch.Descriptor.t) ->
      List.iter
        (fun op ->
          let inst =
            match op with
            | Opcode.Nop | Cdq | Cqo | Ret | Vzeroupper -> Inst.make op []
            | _ when Opcode.is_vector op ->
              Inst.make op [ Operand.Reg (Reg.Xmm 0); Operand.Reg (Reg.Xmm 1) ]
            | _ -> Inst.make op [ Operand.Reg Reg.rax; Operand.Reg Reg.rbx ]
          in
          match Inst.validate inst with
          | Error _ -> ()
          | Ok () ->
            let reference = Uarch.Profile.decompose d.profile inst in
            let flat = Uarch.Descriptor.decompose d inst in
            let label fmt =
              Printf.sprintf "%s/%s: %s" d.short (Opcode.mnemonic op) fmt
            in
            Alcotest.(check bool)
              (label "eliminated") reference.eliminated flat.eliminated;
            Alcotest.(check int)
              (label "fused_slots") reference.fused_slots flat.fused_slots;
            Alcotest.(check int)
              (label "uop count")
              (List.length reference.uops)
              (List.length flat.uops);
            List.iter2
              (fun (r : Uarch.Uop.t) (f : Uarch.Uop.t) ->
                Alcotest.(check bool) (label "uop kind") true (r.kind = f.kind);
                Alcotest.(check bool)
                  (label "uop ports") true
                  (Uarch.Port.to_list r.ports = Uarch.Port.to_list f.ports);
                Alcotest.(check int) (label "uop latency") r.latency f.latency)
              reference.uops flat.uops)
        Opcode.all)
    uarches

(* golden digests of the flat tables' canonical encoding. These pin
   the preprocessing end-to-end (class indexing, packed port masks,
   latencies, variant flags): any change to what the fast path
   executes from must show up here and be justified in the commit.
   Regenerate with [Engine.flat_digest] if the uarch tables
   legitimately change — and expect [Engine.generation] (pinned in
   test_store.ml) to move with them. *)
let test_flat_digest_golden () =
  Alcotest.(check string) "golden flat tables (ivb)"
    "be63a20310f649e6adaf7dcb4fdf34fe13bca3b2f565fc210df44c6f855b65ae"
    (Engine.flat_digest Uarch.All.ivy_bridge);
  Alcotest.(check string) "golden flat tables (hsw)"
    "2006fd4b940b84b13ca80e508938caa59aaaba49fd64f0b9b657c1fd75dd1623"
    (Engine.flat_digest Uarch.All.haswell);
  Alcotest.(check string) "golden flat tables (skl)"
    "51f8e07ecbc35935caef674e12f013f2d6810ca01451e58ad496beacd81d457d"
    (Engine.flat_digest Uarch.All.skylake);
  (* the digest must keep the uarches apart — a degenerate encoding
     that hashed only the layout would not *)
  Alcotest.(check bool) "digests distinct" false
    (Engine.flat_digest Uarch.All.haswell = Engine.flat_digest Uarch.All.skylake);
  (* flat preprocessing must not perturb the store invalidation key:
     the generation fingerprint is pinned independently in
     test_store.ml and re-checked here against the same goldens *)
  Alcotest.(check string) "generation unchanged by flat tables (hsw)"
    "0e4f0a9588c1b077ef04db6085e3a8f2363fca89e95c071392edbc6920035e0d"
    (Engine.generation Uarch.All.haswell);
  Alcotest.(check string) "generation unchanged by flat tables (skl)"
    "cef5f774d7008fc937c5dfb85825e9f5cc4754ce8c715881da2c59071c3f2c46"
    (Engine.generation Uarch.All.skylake)

(* deterministic spot check on a block exercising every uop kind
   (load, store, exec, divider) plus a second batch entry, comparing
   against fresh machines — the qcheck property's fixed companion *)
let test_batch_mixed_block () =
  let block =
    Parser.block_exn
      "mov $7, %rcx\n\
       xor %rdx, %rdx\n\
       mov (%rbx), %rax\n\
       add $3, %rax\n\
       divq %rcx\n\
       mov %rax, 8(%rbx)"
  in
  match Harness.Mapping.run Harness.Environment.default block ~unroll:4 with
  | Error f -> Alcotest.failf "%s" (Harness.Mapping.failure_to_string f)
  | Ok mapped ->
    List.iter
      (fun (d : Uarch.Descriptor.t) ->
        let fresh =
          Pipeline.Machine.run (Pipeline.Machine.create d) mapped.steps
        in
        List.iter
          (fun (r : Pipeline.Core.result) ->
            Alcotest.(check int) (d.short ^ " cycles") fresh.cycles r.cycles;
            Alcotest.(check bool) (d.short ^ " counters") true
              (counters_equal fresh.counters r.counters))
          (Pipeline.simulate_batch d [ mapped.steps; mapped.steps ]))
      uarches

let suite =
  [
    batch_matches_fresh;
    Alcotest.test_case "flat decompose == profile decompose" `Quick
      test_flat_decompose_matches_profile;
    Alcotest.test_case "flat table digests golden" `Quick
      test_flat_digest_golden;
    Alcotest.test_case "batch mixed block" `Quick test_batch_mixed_block;
  ]
