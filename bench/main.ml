(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation, plus speed micro-benchmarks and methodology ablations.

    Each [table*] / [fig*] function below corresponds to one artefact of
    the paper (see DESIGN.md's per-experiment index). Output goes to
    stdout; `dune exec bench/main.exe | tee bench_output.txt` reproduces
    the full evaluation. The corpus scale is controlled by BHIVE_SCALE
    (default 100 = 1/100 of the paper's block counts). *)

let fmt = Format.std_formatter

(* BHIVE_TRACE=<path> streams a JSONL span trace (engine batches,
   per-job executions, profiler measurements, pipeline simulations)
   alongside the run. *)
let () = Telemetry.Trace.init_from_env ()

(* Fail fast on malformed engine environment (BHIVE_JOBS, BHIVE_FAULTS,
   BHIVE_STORE) — a bench run that silently ignored its configuration
   would gate CI on the wrong numbers. *)
let () =
  match Engine.validate_env () with
  | Ok () -> ()
  | Error msg ->
    prerr_endline ("bench: " ^ msg);
    exit 2

(* One engine for the whole run: every section submits its profiling
   through it, so e.g. the Table V datasets are measured once and the
   case studies afterwards are pure cache hits. *)
let engine = Engine.default ()

let section name f =
  let t0 = Unix.gettimeofday () in
  let result = Engine.phase engine name f in
  Format.fprintf fmt "@.(%s finished in %.1fs)@." name (Unix.gettimeofday () -. t0);
  result

(* ------------------------------------------------------------------ *)
(* Shared state: corpus, datasets, classifier.                         *)
(* ------------------------------------------------------------------ *)

let config = Corpus.Suite.config_from_env ()

(* Machine-readable perf trajectory: section names, wall seconds,
   worker count, per-worker utilization, cache-hit rates, and the
   telemetry counter/histogram snapshot — the document
   bin/bhive_bench_diff gates CI on. The scale and git revision
   (BHIVE_REV, when the caller exports it) make a summary
   self-describing when diffed across revisions. *)
let write_summary path =
  let open Telemetry in
  let rev =
    match Sys.getenv_opt "BHIVE_REV" with
    | Some r when String.trim r <> "" -> String.trim r
    | _ -> "unknown"
  in
  (* schema v4: the engine summary now carries a "store" object with
     disk-tier hit/miss/invalidation counters *)
  let summary =
    match Engine.summary_json engine with
    | Json.Object fields ->
      Json.Object
        (("schema_version", Json.Number 4.0)
        :: ("scale", Json.Number (float_of_int config.scale))
        :: ("rev", Json.String rev)
        :: (fields @ [ ("telemetry", Metrics.snapshot ()) ]))
    | other -> other
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string summary);
      Out_channel.output_char oc '\n');
  let s = Engine.stats engine in
  Format.fprintf fmt
    "engine: %d workers, %d jobs submitted, %d executed, %d cache hits (%.1f%%)@."
    (Engine.jobs engine) s.submitted s.executed s.cache_hits
    (100.0 *. Engine.hit_rate s);
  (match Engine.store engine with
  | None -> ()
  | Some store ->
    Format.fprintf fmt
      "store (%s): %d hits, %d misses, %d invalidated, %d writes (hit rate %.1f%%), %d entries@."
      (Store.dir store) s.store_hits s.store_misses s.store_invalidated
      s.store_writes
      (100.0 *. Engine.store_hit_rate s)
      (Store.stats store).Store.s_live);
  if not (Faultsim.is_none (Engine.faults engine)) then
    Format.fprintf fmt
      "faults (%s): %d retries, %d crashes, %d timeouts, %d stalls absorbed, %d workers replenished, %d jobs quarantined@."
      (Faultsim.to_string (Engine.faults engine))
      s.retries s.crashes s.timeouts s.stalls_absorbed s.workers_replenished
      s.quarantined;
  Format.fprintf fmt "summary written to %s@." path

(* Every submitted job must resolve: quarantines go to the manifest and
   a lost job (neither completed nor quarantined) fails the run — the
   invariant the CI chaos job gates on. *)
let finalize () =
  let s = Engine.stats engine in
  (match Engine.quarantines engine with
  | [] -> ()
  | _ ->
    let n = Engine.write_quarantine_manifest engine "failures.jsonl" in
    Format.fprintf fmt "%d quarantined job(s) written to failures.jsonl@." n);
  let lost = Engine.lost s in
  if lost <> 0 then begin
    Format.fprintf fmt
      "FATAL: %d job(s) lost (submitted=%d completed=%d quarantined=%d)@."
      lost s.submitted s.completed s.quarantined;
    exit 1
  end

let suite = lazy (Corpus.Suite.generate ~config ())

let classifier = lazy (Classify.Categories.fit (Lazy.force suite))

let dataset (uarch : Uarch.Descriptor.t) =
  Bhive.Dataset.build ~engine uarch (Lazy.force suite)

let datasets =
  lazy (List.map (fun u -> (u, dataset u)) Uarch.All.all)

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let table1_ablation_suite () =
  let rows = Bhive.Ablation.suite_ablation ~engine (Lazy.force suite) in
  Bhive.Report.suite_ablation fmt rows

let table2_ablation_block () =
  let rows = Bhive.Ablation.block_ablation ~engine Corpus.Paper_blocks.tensorflow_ablation in
  Bhive.Report.block_ablation fmt rows

let table3_applications () = Bhive.Report.applications fmt (Lazy.force suite)

let table4_categories () =
  Bhive.Report.categories fmt (Lazy.force classifier) (Lazy.force suite)

let table5_overall_error () =
  let evals =
    List.map
      (fun ((u : Uarch.Descriptor.t), ds) ->
        (u.name, Bhive.Validation.evaluate_all ~engine ds))
      (Lazy.force datasets)
  in
  Bhive.Report.overall_error fmt evals;
  evals

let table6_case_study () =
  let hsw = Uarch.All.haswell in
  let hsw_ds = List.assoc hsw (Lazy.force datasets) in
  let models, _ = Bhive.Validation.standard_models ~engine hsw_ds in
  let measure block =
    match Engine.profile engine Harness.Environment.default hsw block with
    | Ok p -> p.throughput
    | Error _ -> nan
  in
  let rows =
    List.map
      (fun (name, block) ->
        ( name,
          block,
          measure block,
          List.map (fun (m : Models.Model_intf.t) -> (m.name, m.predict block)) models ))
      [
        ("unsigned division (64/32-bit)", Corpus.Paper_blocks.division);
        ("zero idiom (vxorps xmm2,xmm2,xmm2)", Corpus.Paper_blocks.zero_idiom);
        ("gzip updcrc inner loop", Corpus.Paper_blocks.gzip_crc);
      ]
  in
  Bhive.Report.case_study fmt rows;
  (* the mis-scheduling figure: IACA vs llvm-mca schedules on the gzip
     block *)
  let block = Corpus.Paper_blocks.gzip_crc in
  List.iter
    (fun (m : Models.Model_intf.t) ->
      match m.schedule with
      | Some sched when m.name <> "OSACA" ->
        Bhive.Report.schedule fmt ~model:m.name ~block (sched block)
      | _ -> ())
    models

let table7_google () =
  let hsw = Uarch.All.haswell in
  let google = Corpus.Suite.generate_google ~config () in
  let spanner, dremel =
    List.partition (fun (b : Corpus.Block.t) -> b.app = "spanner") google
  in
  (* composition figure, frequency-weighted *)
  let cls = Lazy.force classifier in
  Bhive.Report.composition fmt
    ~title:"Figure: basic block composition of Spanner and Dremel (frequency-weighted)"
    (Classify.Composition.rows ~weighted:true cls google);
  (* accuracy table: IACA, llvm-mca, Ithemal (no OSACA, as in the paper) *)
  let hsw_ds = List.assoc hsw (Lazy.force datasets) in
  let models, _ = Bhive.Validation.standard_models ~engine hsw_ds in
  let models =
    List.filter (fun (m : Models.Model_intf.t) -> m.name <> "OSACA") models
  in
  let rows =
    List.map
      (fun (app, blocks) ->
        let ds = Bhive.Dataset.build ~engine hsw blocks in
        ( app,
          List.map (fun m -> Bhive.Validation.evaluate_entries hsw m ds.entries) models ))
      [ ("Spanner", spanner); ("Dremel", dremel) ]
  in
  Bhive.Report.google_numbers fmt rows

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let fig_examples () =
  Bhive.Report.exemplars fmt
    (Classify.Categories.exemplars (Lazy.force classifier) (Lazy.force suite))

let fig_apps_vs_clusters () =
  Bhive.Report.composition fmt
    ~title:"Figure: breakdown of applications by basic block categories"
    (Classify.Composition.rows (Lazy.force classifier) (Lazy.force suite))

let fig_errors (evals : (string * Bhive.Validation.eval list) list) =
  let cls = Lazy.force classifier in
  List.iter
    (fun (uarch_name, per_model) ->
      Bhive.Report.per_app_error fmt ~uarch:uarch_name per_model;
      Bhive.Report.per_category_error fmt ~uarch:uarch_name cls per_model)
    evals;
  (* extension: error vs block length on Haswell *)
  match List.assoc_opt "Haswell" evals with
  | Some per_model -> Bhive.Report.per_length_error fmt ~uarch:"Haswell" per_model
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Methodology ablations beyond the paper's tables                     *)
(* ------------------------------------------------------------------ *)

let bench_ablation_unroll () =
  Bhive.Report.rule fmt "Ablation: unroll-factor sweep on the TensorFlow block (naive strategy)";
  let block = Corpus.Paper_blocks.tensorflow_ablation in
  List.iter
    (fun u ->
      let env =
        { Harness.Environment.default with unroll = Harness.Environment.Naive u }
      in
      match Engine.profile engine env Uarch.All.haswell block with
      | Ok p ->
        Format.fprintf fmt "  u=%-4d tp=%8.2f accepted=%b l1i_misses=%d@." u
          p.throughput p.accepted p.large.counters.l1i_misses
      | Error e ->
        let fingerprint =
          Engine.fingerprint { Engine.env; uarch = Uarch.All.haswell; block }
        in
        Format.fprintf fmt "  u=%-4d failed: %s@." u
          (Engine.error_to_string ~fingerprint e))
    [ 4; 8; 16; 32; 64; 100; 200 ]

let bench_ablation_filters () =
  Bhive.Report.rule fmt "Ablation: clean-timing threshold sweep (accepted fraction of suite sample)";
  let blocks =
    List.filteri (fun i _ -> i mod 7 = 0) (Lazy.force suite)
  in
  List.iter
    (fun min_clean ->
      let env = { Harness.Environment.default with min_clean } in
      let { Engine.outcomes; _ } =
        Engine.run_batch engine
          (List.map
             (fun (b : Corpus.Block.t) ->
               { Engine.env; uarch = Uarch.All.haswell; block = b.insts })
             blocks)
      in
      let ok =
        Array.fold_left
          (fun acc -> function
            | Ok (p : Harness.Profiler.profile) when p.accepted -> acc + 1
            | _ -> acc)
          0 outcomes
      in
      Format.fprintf fmt "  min_clean=%-3d accepted=%.2f%%@." min_clean
        (100.0 *. float_of_int ok /. float_of_int (List.length blocks)))
    [ 2; 4; 8; 12; 16 ]

let bench_ablation_noise () =
  Bhive.Report.rule fmt "Ablation: context-switch rate vs acceptance (suite sample)";
  let blocks = List.filteri (fun i _ -> i mod 7 = 0) (Lazy.force suite) in
  List.iter
    (fun rate ->
      let env = { Harness.Environment.default with context_switch_rate = rate } in
      let { Engine.outcomes; _ } =
        Engine.run_batch engine
          (List.map
             (fun (b : Corpus.Block.t) ->
               { Engine.env; uarch = Uarch.All.haswell; block = b.insts })
             blocks)
      in
      let ok =
        Array.fold_left
          (fun acc -> function
            | Ok (p : Harness.Profiler.profile) when p.accepted -> acc + 1
            | _ -> acc)
          0 outcomes
      in
      Format.fprintf fmt "  ctx_switch_rate=%.2f accepted=%.2f%%@." rate
        (100.0 *. float_of_int ok /. float_of_int (List.length blocks)))
    [ 0.0; 0.08; 0.25; 0.5 ]

let bench_instruction_table () =
  Bhive.Report.rule fmt
    "Per-instruction characterisation on Haswell (llvm-exegesis-style)";
  Exegesis.Characterize.pp_table fmt
    (Exegesis.Characterize.table ~engine Uarch.All.haswell)

let bench_port_mapping () =
  Bhive.Report.rule fmt
    "Port-mapping inference on Haswell (Abel-Reineke-style blocker probes)";
  Exegesis.Portmap.pp_survey fmt
    (Exegesis.Portmap.survey ~engine Uarch.All.haswell
       Exegesis.Portmap.standard_targets)

(* ------------------------------------------------------------------ *)
(* Speed micro-benchmarks (Bechamel)                                   *)
(* ------------------------------------------------------------------ *)

let speed_benchmarks () =
  Bhive.Report.rule fmt
    "Speed: profiler vs analyzers on the gzip block (ns per prediction)";
  let open Bechamel in
  let block = Corpus.Paper_blocks.gzip_crc in
  let hsw = Uarch.All.haswell in
  let iaca = Models.Iaca.create hsw in
  let mca = Models.Llvm_mca.create hsw in
  let osaca = Models.Osaca.create hsw in
  let env = Harness.Environment.default in
  let tests =
    Test.make_grouped ~name:"prediction"
      [
        Test.make ~name:"bhive-profiler"
          (Staged.stage (fun () -> ignore (Harness.Profiler.profile env hsw block)));
        Test.make ~name:"iaca-like"
          (Staged.stage (fun () -> ignore (iaca.predict block)));
        Test.make ~name:"llvm-mca-like"
          (Staged.stage (fun () -> ignore (mca.predict block)));
        Test.make ~name:"osaca-like"
          (Staged.stage (fun () -> ignore (osaca.predict block)));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.fprintf fmt "  %-24s %12.0f ns/run@." name est
      | _ -> Format.fprintf fmt "  %-24s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)

let () =
  Format.fprintf fmt "BHive reproduction benchmark harness (scale 1/%d)@."
    config.scale;
  section "corpus" (fun () -> ignore (Lazy.force suite));
  section "table3" table3_applications;
  section "table1" table1_ablation_suite;
  section "table2" table2_ablation_block;
  section "classifier" (fun () -> ignore (Lazy.force classifier));
  section "table4" table4_categories;
  section "fig-examples" fig_examples;
  section "fig-apps-vs-clusters" fig_apps_vs_clusters;
  let evals = section "table5" table5_overall_error in
  section "fig-errors" (fun () -> fig_errors evals);
  section "table6" table6_case_study;
  section "table7" table7_google;
  section "instruction-table" bench_instruction_table;
  section "port-mapping" bench_port_mapping;
  section "ablation-unroll" bench_ablation_unroll;
  section "ablation-filters" bench_ablation_filters;
  section "ablation-noise" bench_ablation_noise;
  section "speed" speed_benchmarks;
  write_summary "bench_summary.json";
  finalize ();
  Format.fprintf fmt "@.done.@."
