(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation, plus speed micro-benchmarks and methodology ablations.

    A thin wrapper since the manifest refactor: the whole run is the
    built-in benchmark manifest ([Manifest.Spec.bench] — print it with
    `--emit-manifest`, or run the checked-in copy with
    `bhive_run examples/bench.manifest.json`). Output goes to stdout;
    `dune exec bench/main.exe | tee bench_output.txt` reproduces the
    full evaluation. The corpus scale is controlled by BHIVE_SCALE
    (default 100 = 1/100 of the paper's block counts); BHIVE_TRACE
    streams a JSONL span trace alongside the run.

    The run always starts from a fresh journal (`~fresh:true`): bench
    re-executes every section each time — the persistent store
    (BHIVE_STORE) still makes warm runs cheap. Use bhive_run directly
    for resumable runs.

    Simulator throughput is reported in the summary's [perf] object
    ([blocks_per_sec]: simulated blocks per in-simulator core-second)
    and gated in CI against bench/baseline_summary.json with
    [bhive_bench_diff --min-speedup]. The flat-table/zero-allocation
    fast path (DESIGN.md §9) measured 5.15x over the original cycle
    loop on this manifest (211.7 -> 1090.2 blocks/sec, matched
    back-to-back runs at BHIVE_JOBS=2), against a 3x target. *)

let () = Telemetry.Trace.init_from_env ()

(* Fail fast on malformed engine environment (BHIVE_JOBS, BHIVE_FAULTS,
   BHIVE_STORE) — a bench run that silently ignored its configuration
   would gate CI on the wrong numbers. *)
let () =
  match Engine.validate_env () with
  | Ok () -> ()
  | Error msg ->
    prerr_endline ("bench: " ^ msg);
    exit 2

let () =
  let config = Corpus.Suite.config_from_env () in
  let spec = Manifest.Spec.bench ~scale:config.Corpus.Suite.scale () in
  if Array.exists (( = ) "--emit-manifest") Sys.argv then begin
    print_string (Manifest.Spec.to_string spec);
    exit 0
  end;
  Format.printf "BHive reproduction benchmark harness (scale 1/%d)@."
    config.Corpus.Suite.scale;
  match Manifest.Runner.run ~fresh:true spec with
  | Error msg ->
    prerr_endline ("bench: " ^ msg);
    exit 2
  | Ok (o : Manifest.Runner.outcome) ->
    if o.lost <> 0 then begin
      Format.eprintf "FATAL: %d job(s) lost@." o.lost;
      exit 1
    end;
    Format.printf "@.done.@."
