(* Stable content digests for engine jobs and store generations.

   The previous fingerprint hashed [Marshal] output, whose bytes depend
   on the OCaml release and word size — fine for an in-memory memo,
   useless as a persistent disk key. Here every input is written
   field-by-field through [Store.Codec]'s fixed-width little-endian
   encoders and digested with SHA-256, so the same job produces the
   same key on any host, any domain, any OCaml.

   Two digests with different lifetimes:

   - the *job* fingerprint identifies WHAT is measured: encoded block
     bytes + measurement environment + uarch short name. It is the
     store key (and the memo key, and the faultsim draw seed).

   - the *generation* fingerprint identifies HOW it is measured: the
     full uarch descriptor tables + the profiler's algorithm version.
     It is stored alongside each record; when a latency table entry is
     edited, only records written under that uarch's old generation go
     stale, and a warm run re-profiles exactly those.

   Any change to these encoders is a format change: bump the version
   strings so old stores invalidate instead of mis-matching. *)

module Codec = Store.Codec

let job_version = "bhive-job-v1"
let generation_version = "bhive-gen-v1"

let add_mapping buf (m : Harness.Environment.mapping_mode) =
  Codec.u8 buf
    (match m with
    | No_mapping -> 0
    | Fresh_pages -> 1
    | Single_physical_page -> 2)

let add_unroll buf (u : Harness.Environment.unroll_strategy) =
  match u with
  | Naive n ->
    Codec.u8 buf 0;
    Codec.int buf n
  | Two_point { large; small } ->
    Codec.u8 buf 1;
    Codec.int buf large;
    Codec.int buf small
  | Adaptive_two_point { code_budget_bytes } ->
    Codec.u8 buf 2;
    Codec.int buf code_budget_bytes

let add_env buf (e : Harness.Environment.t) =
  add_mapping buf e.mapping;
  add_unroll buf e.unroll;
  Codec.int32 buf e.fill_value;
  Codec.int buf e.max_faults;
  Codec.int buf e.timings;
  Codec.int buf e.min_clean;
  Codec.bool buf e.disable_underflow;
  Codec.bool buf e.drop_misaligned;
  Codec.float buf e.context_switch_rate;
  Codec.i64 buf e.noise_seed

(* [Port.set] is a plain bit mask (int). *)
let add_ports buf (p : Uarch.Port.set) = Codec.int buf p

let add_profile buf (p : Uarch.Profile.t) =
  Codec.str buf p.name;
  add_ports buf p.alu;
  add_ports buf p.shift;
  add_ports buf p.lea_simple;
  add_ports buf p.lea_complex;
  Codec.int buf p.lea_complex_latency;
  add_ports buf p.imul;
  Codec.int buf p.imul_latency;
  add_ports buf p.div;
  Codec.int buf p.div32_latency;
  Codec.int buf p.div64_latency;
  Codec.int buf p.adc_uops;
  Codec.int buf p.cmov_uops;
  add_ports buf p.bit_scan;
  Codec.int buf p.bit_scan_latency;
  add_ports buf p.load;
  Codec.int buf p.load_latency;
  Codec.int buf p.load_bytes;
  add_ports buf p.store_addr;
  add_ports buf p.store_data;
  Codec.int buf p.store_bytes;
  add_ports buf p.vec_alu;
  add_ports buf p.vec_shift;
  add_ports buf p.vec_shuffle;
  add_ports buf p.vec_imul;
  Codec.int buf p.vec_imul_latency;
  Codec.int buf p.pmulld_uops;
  add_ports buf p.fp_add;
  Codec.int buf p.fp_add_latency;
  add_ports buf p.fp_mul;
  Codec.int buf p.fp_mul_latency;
  Codec.option buf add_ports p.fp_fma;
  Codec.int buf p.fp_fma_latency;
  add_ports buf p.fp_div;
  Codec.int buf p.fp_div_latency_s;
  Codec.int buf p.fp_div_latency_d;
  Codec.int buf p.fp_div_ymm_factor;
  add_ports buf p.fp_mov;
  add_ports buf p.cvt;
  Codec.int buf p.cvt_latency;
  add_ports buf p.movmsk;
  Codec.int buf p.movmsk_latency;
  add_ports buf p.xfer;
  Codec.int buf p.xfer_latency;
  Codec.bool buf p.zero_idiom_elim;
  Codec.bool buf p.move_elim;
  Codec.bool buf p.micro_fusion

let add_descriptor buf (d : Uarch.Descriptor.t) =
  Codec.str buf d.name;
  Codec.str buf d.short;
  add_profile buf d.profile;
  Codec.int buf d.rename_width;
  Codec.int buf d.retire_width;
  Codec.int buf d.rob_size;
  Codec.int buf d.scheduler_size;
  Codec.int buf d.n_ports;
  Codec.int buf d.icache_miss_penalty;
  Codec.int buf d.l1d_miss_penalty;
  Codec.int buf d.l2_miss_penalty;
  Codec.int buf d.subnormal_assist_cycles;
  Codec.int buf d.misaligned_extra_cycles;
  Codec.bool buf d.supports_avx2

(** 64-char hex digest of the measurement environment alone. *)
let env_fingerprint (e : Harness.Environment.t) =
  let buf = Buffer.create 64 in
  Codec.str buf job_version;
  add_env buf e;
  Store.Sha256.hex (Buffer.contents buf)

(** 64-char hex digest identifying WHAT is measured: canonical machine
    encoding of the block + the environment + the uarch identity. *)
let job_fingerprint ~(env : Harness.Environment.t) ~uarch_short
    (block : X86.Inst.t list) =
  let buf = Buffer.create 256 in
  Codec.str buf job_version;
  add_env buf env;
  Codec.str buf uarch_short;
  Codec.bytes buf (X86.Encoder.encode_block block);
  Store.Sha256.hex (Buffer.contents buf)

(** 64-char hex digest identifying HOW it is measured: descriptor
    tables + profiler algorithm version. Editing one latency entry
    changes exactly that uarch's generation. *)
let generation (d : Uarch.Descriptor.t) =
  let buf = Buffer.create 512 in
  Codec.str buf generation_version;
  Codec.str buf Harness.Profiler.algorithm_version;
  add_descriptor buf d;
  Store.Sha256.hex (Buffer.contents buf)

(** 64-char hex digest of the preprocessed flat execution tables
    ({!Uarch.Flat}) a descriptor simulates with. The tables are a pure
    function of the descriptor, so this digest is NOT part of any store
    key — [generation] already covers invalidation. It exists to be
    pinned by golden tests: a change here without a [generation] change
    means table flattening itself altered simulation inputs. *)
let flat_digest (d : Uarch.Descriptor.t) =
  Store.Sha256.hex (Uarch.Flat.encode (Uarch.Descriptor.flat d))

(* --- block-sensitive generations (descriptor refinement) --------------- *)

let block_generation_version = "bhive-gen-block-v1"

(** 64-char hex digest identifying HOW one specific block is measured:
    the slice of the descriptor tables its opcode classes actually
    decode with, rather than the whole descriptor. Two descriptors that
    differ only in entries a block never reads give the block the same
    generation, so a store warmed under one stays hot under the other —
    this is what makes each refinement candidate evaluation incremental.
    Soundness direction: the digest must change whenever the block's
    simulation could change; hashing too much only costs warm hits. *)
let block_generation (d : Uarch.Descriptor.t) (block : X86.Inst.t list) =
  let p = d.profile in
  let f = Uarch.Descriptor.flat d in
  let buf = Buffer.create 512 in
  Codec.str buf block_generation_version;
  Codec.str buf Harness.Profiler.algorithm_version;
  (* machine parameters outside the execution tables; identity names are
     deliberately excluded — same tables, same simulation *)
  Codec.int buf d.rename_width;
  Codec.int buf d.retire_width;
  Codec.int buf d.rob_size;
  Codec.int buf d.scheduler_size;
  Codec.int buf d.n_ports;
  Codec.int buf d.icache_miss_penalty;
  Codec.int buf d.l1d_miss_penalty;
  Codec.int buf d.l2_miss_penalty;
  Codec.int buf d.subnormal_assist_cycles;
  Codec.int buf d.misaligned_extra_cycles;
  Codec.bool buf d.supports_avx2;
  (* decomposition-wide profile switches *)
  Codec.bool buf p.zero_idiom_elim;
  Codec.bool buf p.move_elim;
  Codec.bool buf p.micro_fusion;
  Codec.int buf f.port_mask;
  (* the load/store table section, only when the block touches memory
     (implicit push/pop accesses included) *)
  if List.exists (fun i -> X86.Inst.mem_accesses i <> []) block then
    Codec.str buf (Uarch.Flat.encode_memory f);
  (* per distinct opcode class, the exact table slice it decodes with *)
  let ks =
    List.sort_uniq compare
      (List.map (fun (i : X86.Inst.t) -> Uarch.Flat.class_of i.opcode) block)
  in
  List.iter
    (fun k ->
      Codec.int buf k;
      if k < 0 then add_profile buf p (* unmodelled opcode: whole profile *)
      else begin
        Codec.str buf (Uarch.Flat.encode_class f k);
        if f.variant.(k) then
          Codec.str buf
            (Uarch.Overlay.variant_signature p Uarch.Flat.classes.(k));
        if f.int_div.(k) then Codec.str buf (Uarch.Flat.encode_int_div f)
      end)
    ks;
  Store.Sha256.hex (Buffer.contents buf)

(** 64-char hex digest of a canonical overlay encoding — the identity
    of a refinement candidate's patch, journaled with every search step. *)
let overlay_digest (o : Uarch.Overlay.t) = Store.Sha256.hex (Uarch.Overlay.encode o)
