(** The measurement engine: a shared, {e supervising} scheduling layer
    between the experiment drivers (dataset construction, ablations,
    validation, benchmarks, CLIs) and {!Harness.Profiler.profile}.

    Beyond batching, memoisation and the OCaml 5 domain pool (PR 1),
    the engine now assumes the substrate is hostile: a profiling
    attempt may crash the worker domain that runs it, stall past its
    simulated deadline, or return a corrupted timing
    (see {!Faultsim}). The engine detects, retries, quarantines and
    reports around those faults:

    - {b per-job deadlines with bounded retry}: each failed attempt is
      retried after a deterministic exponential backoff (simulated
      milliseconds — no wall time passes) up to [max_retries] times;
    - {b worker-domain crash recovery}: a crash kills the domain; the
      supervisor resubmits the in-flight job and replenishes the pool
      with a replacement domain on the same worker slot;
    - {b quorum mode} ([quorum : n > 1]): every attempt re-measures the
      job in [n] independently perturbed trials and accepts only a
      strict-majority value — the paper's min-clean-timings filter,
      lifted one level up, which is what outvotes corrupted timings;
    - {b graceful degradation}: a batch {e never} raises out of
      {!run_batch}. Jobs that exhaust their retry budget land in a
      structured quarantine manifest and the batch returns partial
      results plus that manifest. Every submitted job is accounted
      for: completed + quarantined = submitted, always.

    {b Determinism.} Fault decisions are pure functions of
    (fingerprint, attempt, trial) — never of scheduling — and the
    profiler is deterministic per job, so batch output is byte-identical
    for {e any} worker count and {e any} fault seed, as long as every
    job resolves within its retry budget ("recoverable" rates). With
    faults disabled the engine behaves exactly like the PR 1 engine. *)

(** One measurement request. *)
type job = {
  env : Harness.Environment.t;
  uarch : Uarch.Descriptor.t;
  block : X86.Inst.t list;
}

(** Stable content fingerprint of a measurement environment: SHA-256
    (64-char lowercase hex) over a canonical fixed-width byte encoding
    of every field. Identical across OCaml releases, word sizes and
    domains — it is safe as a persistent disk key. *)
val env_fingerprint : Harness.Environment.t -> string

(** Stable content fingerprint of a job, identifying {e what} is
    measured: SHA-256 hex over the canonical encoding of the
    environment, the microarchitecture short name and the {e encoded
    machine bytes} of the block. This is the memo key, the persistent
    store key and the faultsim draw seed. *)
val fingerprint : job -> string

(** Generation fingerprint, identifying {e how} a job is measured:
    SHA-256 hex over the full uarch descriptor tables (every port set
    and latency) plus {!Harness.Profiler.algorithm_version}. The store
    records it next to each measurement; editing one latency table
    entry changes exactly that uarch's generation, invalidating
    exactly its stored entries. *)
val generation : Uarch.Descriptor.t -> string

(** Digest of the preprocessed flat execution tables ({!Uarch.Flat}) a
    descriptor simulates with. Not part of any store key — the tables
    are derived from the descriptor, which [generation] already hashes.
    Pinned by golden tests to prove table flattening does not change
    simulation inputs or invalidation semantics. *)
val flat_digest : Uarch.Descriptor.t -> string

(** Block-sensitive generation: digest of the descriptor-table slice
    this block's opcode classes decode with (plus the machine
    parameters every simulation reads). Unchanged-slice edits leave the
    digest — and any store record under it — warm. See [create]'s
    [?block_generation]. *)
val block_generation : Uarch.Descriptor.t -> X86.Inst.t list -> string

(** Digest of a canonical {!Uarch.Overlay} encoding — the identity of a
    refinement candidate's patch. *)
val overlay_digest : Uarch.Overlay.t -> string

(** {1 Retry policy} *)

type policy = {
  max_retries : int;  (** retries after the first attempt (default 4) *)
  deadline_ms : int;
      (** simulated per-attempt deadline; a stall that pushes the
          attempt past it fails the attempt (default 100) *)
  backoff_ms : int;
      (** base backoff before retry [k] is [backoff_ms * 2^k] simulated
          ms (default 10) *)
  quorum : int;
      (** trials per attempt; [1] disables voting (default 1) *)
}

val default_policy : policy

(** Process-default policy overrides (set by the [--max-retries] /
    [--quorum] CLI flags before the first engine is created). Values
    are clamped: [max_retries >= 0], [quorum >= 1]. *)
val set_default_policy :
  ?max_retries:int -> ?deadline_ms:int -> ?backoff_ms:int -> ?quorum:int ->
  unit -> unit

(** {1 Outcomes and quarantine} *)

(** One attempt of one job, as recorded in the quarantine manifest and
    the engine's telemetry. *)
type attempt_record = {
  att_number : int;  (** 0-based *)
  att_verdict : string;  (** ["ok"], ["crash"], ["timeout"] or ["no_quorum"] *)
  att_faults : string list;  (** injected faults, in trial order *)
  att_sim_ms : int;  (** simulated elapsed ms of the attempt *)
  att_backoff_ms : int;  (** backoff before the next attempt; 0 if none *)
}

(** A job that exhausted its retry budget. *)
type quarantine = {
  q_fingerprint : string;  (** hex job fingerprint *)
  q_uarch : string;
  q_block_insts : int;
  q_attempts : attempt_record list;  (** in attempt order *)
}

(** Why a job has no measurement. *)
type error =
  | Profiler_failure of Harness.Profiler.failure
      (** the profiler ran and failed (mapping failure etc.) *)
  | Quarantined of quarantine
      (** the measurement substrate never produced a trustworthy
          result within the retry budget *)

val error_to_string : ?fingerprint:string -> error -> string

type outcome = (Harness.Profiler.profile, error) result

(** JSONL-ready rendering of one quarantine record — one line of the
    [failures.jsonl] manifest. *)
val quarantine_json : quarantine -> Telemetry.Json.t

(** The result of one batch: outcomes in submission order (every slot
    filled — quarantined slots carry [Error (Quarantined _)]) plus the
    batch's freshly quarantined jobs in worklist order. *)
type batch = { outcomes : outcome array; quarantined : quarantine list }

(** {1 Counters} *)

(** Cumulative engine counters. [submitted] is every job ever handed to
    the engine; [executed] is how many {e unique fresh} jobs the engine
    resolved by running (measured or quarantined);
    [cache_hits = submitted - executed] counts memoised results
    (including duplicates within a single batch). The accounting
    identity [completed + quarantined = submitted] always holds —
    {!lost} is 0 unless the engine itself is broken. *)
type stats = {
  submitted : int;
  executed : int;
  cache_hits : int;
  completed : int;  (** slots resolved with a measured outcome *)
  quarantined : int;  (** slots resolved by quarantine *)
  profiler_calls : int;  (** actual {!Harness.Profiler.profile} invocations *)
  retries : int;  (** attempts beyond each job's first *)
  crashes : int;  (** worker-domain deaths *)
  timeouts : int;  (** attempts failed on the simulated deadline *)
  quorum_failures : int;  (** attempts with no majority value *)
  stalls_absorbed : int;  (** stalls that fit inside the deadline *)
  corruptions : int;  (** corrupted trials injected *)
  workers_replenished : int;  (** replacement domains spawned *)
  store_hits : int;  (** disk-tier lookups served from the store *)
  store_misses : int;  (** disk-tier lookups finding nothing *)
  store_invalidated : int;
      (** disk-tier lookups finding only a stale generation *)
  store_writes : int;  (** records appended to the store *)
  wall_seconds : float;  (** total wall time spent inside [run_batch] *)
}

(** [submitted - completed - quarantined]; 0 for a healthy engine. *)
val lost : stats -> int

(** Disk-tier hit rate: [store_hits] over all store consultations
    (hits + misses + invalidated); 0 when the store was never
    consulted. *)
val store_hit_rate : stats -> float

type t

(** [create ?jobs ?progress ?faults ?max_retries ?deadline_ms
    ?backoff_ms ?quorum ()] makes a fresh engine. [jobs] defaults to
    [$BHIVE_JOBS], falling back to [Domain.recommended_domain_count ()];
    values are clamped to at least 1. [progress] is invoked (under a
    lock) once per resolved unique job. [faults] defaults to
    {!Faultsim.default} (i.e. [$BHIVE_FAULTS] unless overridden); the
    policy fields default to {!set_default_policy}'s current values.

    [store] (an already-open handle) wins over [store_path]: the
    store's cross-process file locks are per-process, so multiple
    engines of one process — the daemon's shard pool — must share one
    handle rather than each opening the same directory. The caller
    keeps ownership: engines never close a store they were handed. *)
val create :
  ?jobs:int ->
  ?progress:(done_:int -> total:int -> unit) ->
  ?faults:Faultsim.config ->
  ?store:Store.t ->
  ?store_path:string ->
  ?max_retries:int ->
  ?deadline_ms:int ->
  ?backoff_ms:int ->
  ?quorum:int ->
  ?block_generation:bool ->
  unit -> t
(** [block_generation] (default [false]) switches the store's
    generation fingerprints from whole-descriptor
    ({!Stable_key.generation}) to per-block table slices
    ({!Stable_key.block_generation}): a record stays warm under any
    descriptor edit its block never reads. This is what makes each
    refinement candidate evaluation incremental; normal runs keep the
    default scheme so their store keys and golden pins are unchanged. *)

(** The shared process-wide engine (created on first use from
    [BHIVE_JOBS] / [BHIVE_FAULTS] / the default-policy overrides).
    Drivers that are not handed an explicit engine use this one, so
    independent experiment sections share its memo cache. *)
val default : unit -> t

(** Worker-pool size resolved from [$BHIVE_JOBS] (what [create]
    uses when [?jobs] is omitted). Raises [Failure] on a malformed
    value — use {!validate_env} at CLI startup to turn that into a
    clean exit. *)
val default_jobs : unit -> int

(** [$BHIVE_JOBS] parsed strictly: unset/empty is [Ok None], a
    positive integer is [Ok (Some n)], anything else is [Error msg]
    with a one-line message. *)
val jobs_from_env : unit -> (int option, string) result

(** {1 Persistent store tier} *)

(** Process-default store path (the [--store] CLI flag; wins over
    [$BHIVE_STORE]). Must be called before the first engine is
    created. *)
val set_default_store : string -> unit

(** [$BHIVE_STORE] parsed strictly: unset/empty is [Ok None]; a path
    that exists but is not a directory is [Error msg]. *)
val store_path_from_env : unit -> (string option, string) result

(** The store path [create] uses when [?store_path] is omitted: the
    {!set_default_store} override if any, else [$BHIVE_STORE]. *)
val default_store_path : unit -> string option

(** Validate every engine-relevant environment variable
    ([BHIVE_JOBS], [BHIVE_FAULTS], [BHIVE_STORE]) without side
    effects. CLIs call this first and turn [Error msg] into a one-line
    stderr message and exit code 2 — never a silent fallback. *)
val validate_env : unit -> (unit, string) result

val jobs : t -> int
val faults : t -> Faultsim.config
val policy : t -> policy
val stats : t -> stats
val cache_size : t -> int

(** The engine's disk tier, if one is attached. *)
val store : t -> Store.t option

(** [hit_rate s] is cache hits over submitted jobs, 0 when nothing was
    submitted. *)
val hit_rate : stats -> float

(** [run_batch t jobs] resolves every job and returns the outcomes in
    submission order plus the batch's quarantine manifest. Jobs whose
    fingerprint is already cached (or duplicated within the batch) are
    not re-executed; a previously quarantined fingerprint resolves to
    its cached quarantine. Never raises on injected faults. *)
val run_batch : t -> job list -> batch

(** [peek t job] probes the cache hierarchy — memory memo, then the
    disk store — without executing anything. [Some outcome] is exactly
    what {!run_batch} would return for the job without a profiler
    call; [None] means resolving it requires execution. A store hit
    fills the memo. Same threading contract as {!run_batch}: the
    submitting thread only. This is the serve dispatcher's warm fast
    path — a warm request is answered without occupying a batch slot. *)
val peek : t -> job -> outcome option

(** [profile t env uarch block] submits a single job — a memoising,
    supervised drop-in for {!Harness.Profiler.profile}. *)
val profile :
  t -> Harness.Environment.t -> Uarch.Descriptor.t -> X86.Inst.t list -> outcome

(** Every job quarantined over the engine's lifetime, in order of
    occurrence. *)
val quarantines : t -> quarantine list

(** Write the lifetime quarantine manifest as JSONL (one
    {!quarantine_json} object per line — the [failures.jsonl] format);
    returns the number of records written. *)
val write_quarantine_manifest : t -> string -> int

(** [phase t name f] runs [f ()] and records its wall time (and the
    engine counter deltas it caused) under [name]. *)
val phase : t -> string -> (unit -> 'a) -> 'a

(** Per-phase metrics, in the order the phases ran. *)
type phase_metrics = {
  phase_name : string;
  phase_wall_seconds : float;
  phase_submitted : int;
  phase_executed : int;
  phase_cache_hits : int;
  phase_retries : int;
  phase_quarantined : int;
}

val phases : t -> phase_metrics list

(** Per-worker execution accounting, tracked unconditionally (two
    monotonic clock reads per executed job): how many jobs each pool
    slot ran and for how long. Utilization is
    [busy_seconds / wall_seconds]. A replenished worker keeps its
    slot, so a slot's totals span every domain that occupied it. *)
type worker_stat = { worker_id : int; jobs_run : int; busy_seconds : float }

val worker_stats : t -> worker_stat list

(** The machine-readable engine report: cumulative counters, fault and
    retry statistics, per-worker utilization, and per-phase sections —
    the object [bench/main.ml] extends into [bench_summary.json]. *)
val summary_json : t -> Telemetry.Json.t

(** [Telemetry.Json.to_string (summary_json t)]. *)
val phases_to_json : t -> string
