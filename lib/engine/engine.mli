(** The measurement engine: a shared, deterministic scheduling layer
    between the experiment drivers (dataset construction, ablations,
    validation, benchmarks, CLIs) and {!Harness.Profiler.profile}.

    Every experiment used to drive the profiler through its own
    sequential [List.map] loop; the engine replaces those loops with
    batch submission. It provides

    - a {e job} abstraction: one (environment, microarchitecture,
      block) measurement request;
    - a worker pool of OCaml 5 domains, sized by the [BHIVE_JOBS]
      environment variable (default
      [Domain.recommended_domain_count ()]), with a zero-overhead
      sequential path when the pool size is 1;
    - a content-addressed memo cache keyed on the job fingerprint —
      legal because [Profiler.profile] is documented deterministic in
      (env, uarch, block) — so identical jobs submitted by different
      experiment sections are profiled exactly once;
    - progress and metrics hooks (jobs done, cache hits, wall time per
      named phase).

    {b Determinism.} Results are aggregated in submission order, so a
    batch's output is byte-identical to the historical sequential code
    regardless of worker count or scheduling order. *)

(** One measurement request. *)
type job = {
  env : Harness.Environment.t;
  uarch : Uarch.Descriptor.t;
  block : X86.Inst.t list;
}

type outcome = (Harness.Profiler.profile, Harness.Profiler.failure) result

(** Content fingerprint of a measurement environment (MD5 of its
    marshalled representation; the environment is immutable data). *)
val env_fingerprint : Harness.Environment.t -> string

(** Content fingerprint of a job: environment fingerprint +
    microarchitecture short name + marshalled instruction list.
    Microarchitectures form a closed set keyed by [short]. *)
val fingerprint : job -> string

(** Cumulative engine counters. [submitted] is every job ever handed
    to the engine; [executed] is how many reached the profiler;
    [cache_hits = submitted - executed] counts memoised results
    (including duplicates within a single batch). *)
type stats = {
  submitted : int;
  executed : int;
  cache_hits : int;
  wall_seconds : float;  (** total wall time spent inside [run_batch] *)
}

type t

(** [create ?jobs ?progress ()] makes a fresh engine. [jobs] defaults
    to [$BHIVE_JOBS], falling back to
    [Domain.recommended_domain_count ()]; values are clamped to at
    least 1. [progress] is invoked (under a lock, from worker domains)
    after each executed job of a batch. *)
val create : ?jobs:int -> ?progress:(done_:int -> total:int -> unit) -> unit -> t

(** The shared process-wide engine (created on first use from
    [BHIVE_JOBS]). Drivers that are not handed an explicit engine use
    this one, so independent experiment sections share its memo
    cache. *)
val default : unit -> t

(** Worker-pool size resolved from [$BHIVE_JOBS] (what [create]
    uses when [?jobs] is omitted). *)
val default_jobs : unit -> int

val jobs : t -> int
val stats : t -> stats
val cache_size : t -> int

(** [hit_rate s] is cache hits over submitted jobs, 0 when nothing was
    submitted. *)
val hit_rate : stats -> float

(** [run_batch t jobs] profiles every job and returns the outcomes in
    submission order. Jobs whose fingerprint is already cached (or
    duplicated within the batch) are not re-executed. *)
val run_batch : t -> job list -> outcome array

(** [profile t env uarch block] submits a single job — a memoising,
    scheduling drop-in for {!Harness.Profiler.profile}. *)
val profile :
  t -> Harness.Environment.t -> Uarch.Descriptor.t -> X86.Inst.t list -> outcome

(** [phase t name f] runs [f ()] and records its wall time (and the
    engine counter deltas it caused) under [name]. *)
val phase : t -> string -> (unit -> 'a) -> 'a

(** Per-phase metrics, in the order the phases ran. *)
type phase_metrics = {
  phase_name : string;
  phase_wall_seconds : float;
  phase_submitted : int;
  phase_executed : int;
  phase_cache_hits : int;
}

val phases : t -> phase_metrics list

(** Per-worker execution accounting, tracked unconditionally (two
    monotonic clock reads per executed job): how many jobs each pool
    slot ran and for how long. Utilization is
    [busy_seconds / wall_seconds]. *)
type worker_stat = { worker_id : int; jobs_run : int; busy_seconds : float }

val worker_stats : t -> worker_stat list

(** The machine-readable engine report: cumulative counters, per-worker
    utilization, and per-phase sections — the object
    [bench/main.ml] extends into [bench_summary.json]. *)
val summary_json : t -> Telemetry.Json.t

(** [Telemetry.Json.to_string (summary_json t)]. *)
val phases_to_json : t -> string
