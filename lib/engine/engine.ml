(* The measurement engine. See engine.mli for the contract.

   Parallelism strategy: each batch is first resolved against the memo
   cache and deduplicated, leaving a worklist of unique jobs in
   first-occurrence order. Workers (OCaml 5 domains) pull indices from
   an atomic counter and write into disjoint slots of a result array,
   so the parallel section shares no mutable state beyond the counter
   and the optional progress hook. The cache is only written by the
   submitting thread after the pool joins, and results are re-expanded
   into submission order — which is what makes output byte-identical
   for any worker count. *)

type job = {
  env : Harness.Environment.t;
  uarch : Uarch.Descriptor.t;
  block : X86.Inst.t list;
}

type outcome = (Harness.Profiler.profile, Harness.Profiler.failure) result

let env_fingerprint (env : Harness.Environment.t) =
  Digest.string (Marshal.to_string env [])

let fingerprint (j : job) =
  Digest.string
    (String.concat "\x00"
       [
         env_fingerprint j.env;
         j.uarch.short;
         Marshal.to_string j.block [];
       ])

type stats = {
  submitted : int;
  executed : int;
  cache_hits : int;
  wall_seconds : float;
}

type phase_metrics = {
  phase_name : string;
  phase_wall_seconds : float;
  phase_submitted : int;
  phase_executed : int;
  phase_cache_hits : int;
}

type t = {
  n_jobs : int;
  progress : (done_:int -> total:int -> unit) option;
  cache : (string, outcome) Hashtbl.t;
  lock : Mutex.t;  (** guards the progress hook only *)
  mutable submitted : int;
  mutable executed : int;
  mutable cache_hits : int;
  mutable wall_seconds : float;
  mutable phase_log : phase_metrics list;  (** reverse order *)
}

let default_jobs () =
  match Sys.getenv_opt "BHIVE_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?jobs ?progress () =
  let n_jobs = max 1 (match jobs with Some n -> n | None -> default_jobs ()) in
  {
    n_jobs;
    progress;
    cache = Hashtbl.create 4096;
    lock = Mutex.create ();
    submitted = 0;
    executed = 0;
    cache_hits = 0;
    wall_seconds = 0.0;
    phase_log = [];
  }

let shared = lazy (create ())
let default () = Lazy.force shared
let jobs t = t.n_jobs
let cache_size t = Hashtbl.length t.cache

let stats t =
  {
    submitted = t.submitted;
    executed = t.executed;
    cache_hits = t.cache_hits;
    wall_seconds = t.wall_seconds;
  }

let hit_rate (s : stats) =
  if s.submitted = 0 then 0.0
  else float_of_int s.cache_hits /. float_of_int s.submitted

let execute (j : job) = Harness.Profiler.profile j.env j.uarch j.block

let run_batch t (submission : job list) : outcome array =
  let t0 = Unix.gettimeofday () in
  let submission = Array.of_list submission in
  let n = Array.length submission in
  let results : outcome option array = Array.make n None in
  (* Resolve against the cache and deduplicate within the batch. The
     worklist keeps unique jobs in first-occurrence order; [claims]
     maps each unique fingerprint to every submission slot wanting its
     result. *)
  let claims : (string, int list ref) Hashtbl.t = Hashtbl.create (max 16 n) in
  let worklist = ref [] in
  let batch_hits = ref 0 in
  Array.iteri
    (fun i j ->
      let fp = fingerprint j in
      match Hashtbl.find_opt t.cache fp with
      | Some r ->
        incr batch_hits;
        results.(i) <- Some r
      | None -> (
        match Hashtbl.find_opt claims fp with
        | Some slots ->
          incr batch_hits;
          slots := i :: !slots
        | None ->
          Hashtbl.add claims fp (ref [ i ]);
          worklist := (fp, i) :: !worklist))
    submission;
  let worklist = Array.of_list (List.rev !worklist) in
  let m = Array.length worklist in
  let out : outcome option array = Array.make m None in
  let completed = Atomic.make 0 in
  let run_one u =
    let _, i = worklist.(u) in
    out.(u) <- Some (execute submission.(i));
    match t.progress with
    | None -> ()
    | Some hook ->
      let d = 1 + Atomic.fetch_and_add completed 1 in
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () -> hook ~done_:d ~total:m)
  in
  let workers = min t.n_jobs m in
  if workers <= 1 then
    for u = 0 to m - 1 do
      run_one u
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let u = Atomic.fetch_and_add next 1 in
        if u < m then begin
          run_one u;
          loop ()
        end
      in
      loop ()
    in
    let pool = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join pool
  end;
  (* Commit to the cache and expand into submission order. *)
  Array.iteri
    (fun u (fp, _) ->
      let r = Option.get out.(u) in
      Hashtbl.replace t.cache fp r;
      List.iter (fun i -> results.(i) <- Some r) !(Hashtbl.find claims fp))
    worklist;
  t.submitted <- t.submitted + n;
  t.executed <- t.executed + m;
  t.cache_hits <- t.cache_hits + !batch_hits;
  t.wall_seconds <- t.wall_seconds +. (Unix.gettimeofday () -. t0);
  Array.map Option.get results

let profile t env uarch block = (run_batch t [ { env; uarch; block } ]).(0)

let phase t name f =
  let before = stats t in
  let t0 = Unix.gettimeofday () in
  let finally () =
    let after = stats t in
    t.phase_log <-
      {
        phase_name = name;
        phase_wall_seconds = Unix.gettimeofday () -. t0;
        phase_submitted = after.submitted - before.submitted;
        phase_executed = after.executed - before.executed;
        phase_cache_hits = after.cache_hits - before.cache_hits;
      }
      :: t.phase_log
  in
  Fun.protect ~finally f

let phases t = List.rev t.phase_log

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let phases_to_json t =
  let phase_json p =
    let rate =
      if p.phase_submitted = 0 then 0.0
      else float_of_int p.phase_cache_hits /. float_of_int p.phase_submitted
    in
    Printf.sprintf
      "    { \"section\": \"%s\", \"wall_seconds\": %.3f, \"jobs\": %d, \
       \"submitted\": %d, \"executed\": %d, \"cache_hits\": %d, \
       \"cache_hit_rate\": %.4f }"
      (json_escape p.phase_name) p.phase_wall_seconds t.n_jobs p.phase_submitted
      p.phase_executed p.phase_cache_hits rate
  in
  let s = stats t in
  Printf.sprintf
    "{\n\
    \  \"jobs\": %d,\n\
    \  \"submitted\": %d,\n\
    \  \"executed\": %d,\n\
    \  \"cache_hits\": %d,\n\
    \  \"cache_hit_rate\": %.4f,\n\
    \  \"engine_wall_seconds\": %.3f,\n\
    \  \"sections\": [\n\
     %s\n\
    \  ]\n\
     }"
    t.n_jobs s.submitted s.executed s.cache_hits (hit_rate s) s.wall_seconds
    (String.concat ",\n" (List.map phase_json (phases t)))
