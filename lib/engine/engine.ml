(* The supervising measurement engine. See engine.mli for the contract.

   Parallelism strategy: each batch is first resolved against the memo
   cache and deduplicated, leaving a worklist of unique jobs in
   first-occurrence order. Worker domains pull (job, attempt) items
   from a mutex-protected queue and write into disjoint slots of a
   result array. Faults are decided by Faultsim purely from
   (fingerprint, attempt, trial), so which domain runs a job — and how
   many domains there are — cannot change any outcome; that is the
   whole determinism argument, faults included.

   Supervision: a simulated worker crash raises Worker_crashed out of
   the worker domain. The submitting thread joins domains one by one;
   when a join re-raises Worker_crashed it requeues the in-flight job
   (attempt + 1) or quarantines it if the budget is spent, then spawns
   a replacement domain on the same worker slot and keeps supervising.
   Timeouts and failed quorum rounds are retried inside the worker
   (with deterministic exponential backoff on the simulated clock);
   only crashes cross the domain boundary, because only crashes kill
   the domain.

   The cache is only written by the submitting thread after the pool
   drains, and results are re-expanded into submission order — which is
   what makes output byte-identical for any worker count and fault
   seed. *)

type job = {
  env : Harness.Environment.t;
  uarch : Uarch.Descriptor.t;
  block : X86.Inst.t list;
}

(* Stable SHA-256 hex digests (see stable_key.ml). These are the memo
   keys, the persistent store keys and the faultsim draw seeds — they
   must not depend on Marshal or Hashtbl.hash, whose bytes change
   across OCaml releases and word sizes. *)
let env_fingerprint = Stable_key.env_fingerprint

let fingerprint (j : job) =
  Stable_key.job_fingerprint ~env:j.env ~uarch_short:j.uarch.short j.block

let generation = Stable_key.generation
let flat_digest = Stable_key.flat_digest
let block_generation = Stable_key.block_generation
let overlay_digest = Stable_key.overlay_digest

(* --- retry policy ----------------------------------------------------- *)

type policy = {
  max_retries : int;
  deadline_ms : int;
  backoff_ms : int;
  quorum : int;
}

let default_policy =
  { max_retries = 4; deadline_ms = 100; backoff_ms = 10; quorum = 1 }

let clamp_policy p =
  {
    max_retries = max 0 p.max_retries;
    deadline_ms = max 1 p.deadline_ms;
    backoff_ms = max 0 p.backoff_ms;
    quorum = max 1 p.quorum;
  }

let policy_override = ref default_policy

let set_default_policy ?max_retries ?deadline_ms ?backoff_ms ?quorum () =
  let p = !policy_override in
  policy_override :=
    clamp_policy
      {
        max_retries = Option.value max_retries ~default:p.max_retries;
        deadline_ms = Option.value deadline_ms ~default:p.deadline_ms;
        backoff_ms = Option.value backoff_ms ~default:p.backoff_ms;
        quorum = Option.value quorum ~default:p.quorum;
      }

(* backoff before attempt [k+1], simulated ms *)
let backoff_of p k = p.backoff_ms * (1 lsl min k 20)

(* --- persistent store tier -------------------------------------------- *)

(* Process-default store path: the [--store] CLI flag wins over
   [BHIVE_STORE]; unset/empty means no disk tier. *)
let store_override : string option ref = ref None
let set_default_store path = store_override := Some path

let store_path_from_env () =
  match Sys.getenv_opt "BHIVE_STORE" with
  | None -> Ok None
  | Some s ->
    let s = String.trim s in
    if s = "" then Ok None
    else if Sys.file_exists s && not (Sys.is_directory s) then
      Error
        (Printf.sprintf "invalid BHIVE_STORE=%S: exists and is not a directory"
           s)
    else Ok (Some s)

let default_store_path () =
  match !store_override with
  | Some _ as p -> p
  | None -> (
    match store_path_from_env () with Ok p -> p | Error msg -> failwith msg)

let jobs_from_env () =
  match Sys.getenv_opt "BHIVE_JOBS" with
  | None -> Ok None
  | Some s -> (
    let trimmed = String.trim s in
    if trimmed = "" then Ok None
    else
      match int_of_string_opt trimmed with
      | Some n when n >= 1 -> Ok (Some n)
      | _ ->
        Error
          (Printf.sprintf "invalid BHIVE_JOBS=%S: expected a positive integer"
             s))

(* One-stop startup validation for the CLIs: every engine-relevant
   environment variable either parses or yields a one-line error. *)
let validate_env () =
  match jobs_from_env () with
  | Error msg -> Error msg
  | Ok _ -> (
    match Faultsim.env_result () with
    | Error msg -> Error msg
    | Ok _ -> (
      match store_path_from_env () with
      | Error msg -> Error msg
      | Ok _ -> Ok ()))

(* --- outcomes and quarantine ------------------------------------------ *)

type attempt_record = {
  att_number : int;
  att_verdict : string;
  att_faults : string list;
  att_sim_ms : int;
  att_backoff_ms : int;
}

type quarantine = {
  q_fingerprint : string;
  q_uarch : string;
  q_block_insts : int;
  q_attempts : attempt_record list;
}

type error =
  | Profiler_failure of Harness.Profiler.failure
  | Quarantined of quarantine

type outcome = (Harness.Profiler.profile, error) result

let error_to_string ?fingerprint = function
  | Profiler_failure f -> Harness.Profiler.failure_to_string ?fingerprint f
  | Quarantined q ->
    Printf.sprintf "quarantined after %d attempts (%s) [job %s]"
      (List.length q.q_attempts)
      (String.concat "; "
         (List.map (fun a -> a.att_verdict) q.q_attempts))
      q.q_fingerprint

let attempt_json (a : attempt_record) =
  let open Telemetry in
  Json.Object
    [
      ("attempt", Json.Number (float_of_int a.att_number));
      ("verdict", Json.String a.att_verdict);
      ("faults", Json.List (List.map (fun f -> Json.String f) a.att_faults));
      ("sim_ms", Json.Number (float_of_int a.att_sim_ms));
      ("backoff_ms", Json.Number (float_of_int a.att_backoff_ms));
    ]

let quarantine_json (q : quarantine) =
  let open Telemetry in
  Json.Object
    [
      ("fingerprint", Json.String q.q_fingerprint);
      ("uarch", Json.String q.q_uarch);
      ("block_insts", Json.Number (float_of_int q.q_block_insts));
      ("attempts", Json.List (List.map attempt_json q.q_attempts));
    ]

type batch = { outcomes : outcome array; quarantined : quarantine list }

(* --- counters --------------------------------------------------------- *)

type stats = {
  submitted : int;
  executed : int;
  cache_hits : int;
  completed : int;
  quarantined : int;
  profiler_calls : int;
  retries : int;
  crashes : int;
  timeouts : int;
  quorum_failures : int;
  stalls_absorbed : int;
  corruptions : int;
  workers_replenished : int;
  store_hits : int;
  store_misses : int;
  store_invalidated : int;
  store_writes : int;
  wall_seconds : float;
}

let lost (s : stats) = s.submitted - s.completed - s.quarantined

(* Disk-tier effectiveness: hits over consultations. Invalidated
   lookups count as misses here — they cost a re-profile. *)
let store_hit_rate (s : stats) =
  let denom = s.store_hits + s.store_misses + s.store_invalidated in
  if denom = 0 then 0.0 else float_of_int s.store_hits /. float_of_int denom

type phase_metrics = {
  phase_name : string;
  phase_wall_seconds : float;
  phase_submitted : int;
  phase_executed : int;
  phase_cache_hits : int;
  phase_retries : int;
  phase_quarantined : int;
}

type worker_stat = { worker_id : int; jobs_run : int; busy_seconds : float }

type t = {
  n_jobs : int;
  progress : (done_:int -> total:int -> unit) option;
  faults : Faultsim.config;
  policy : policy;
  cache : (string, outcome) Hashtbl.t;
  store : Store.t option;  (** disk tier; absent without BHIVE_STORE/--store *)
  mutable gen_cache : (Uarch.Descriptor.t * string) list;
      (** generation fingerprints memoised by descriptor identity
          (physical equality — a perturbed copy of a descriptor must
          get its own generation); only the submitting thread touches
          it *)
  block_gen : (string, Uarch.Descriptor.t * string) Hashtbl.t option;
      (** when [Some], block-sensitive generations: store generations
          come from {!Stable_key.block_generation} (per job, keyed by
          job fingerprint, guarded by descriptor identity so a fresh
          candidate descriptor under the same fingerprint recomputes);
          submitting thread only, like [gen_cache] *)
  lock : Mutex.t;  (** guards the progress hook only *)
  worker_busy_ns : int64 array;
      (** per-worker-slot execution time; only the slot's current
          occupant writes it *)
  worker_jobs : int array;
  mutable submitted : int;
  mutable executed : int;
  mutable cache_hits : int;
  mutable completed : int;
  mutable quarantined_slots : int;
  mutable profiler_calls : int;
  mutable retries : int;
  mutable crashes : int;
  mutable timeouts : int;
  mutable quorum_failures : int;
  mutable stalls_absorbed : int;
  mutable corruptions : int;
  mutable workers_replenished : int;
  mutable store_hit_count : int;
  mutable store_miss_count : int;
  mutable store_invalidated_count : int;
  mutable store_write_count : int;
  mutable wall_seconds : float;
  mutable phase_log : phase_metrics list;  (** reverse order *)
  mutable quarantine_log : quarantine list;  (** reverse order *)
}

let m_submitted = Telemetry.Metrics.counter "engine.submitted"
let m_executed = Telemetry.Metrics.counter "engine.executed"
let m_cache_hits = Telemetry.Metrics.counter "engine.cache_hits"
let m_profiler_calls = Telemetry.Metrics.counter "engine.profiler_calls"
let m_retries = Telemetry.Metrics.counter "engine.retries"
let m_crashes = Telemetry.Metrics.counter "engine.crashes"
let m_timeouts = Telemetry.Metrics.counter "engine.timeouts"
let m_quorum_failures = Telemetry.Metrics.counter "engine.quorum_failures"
let m_stalls_absorbed = Telemetry.Metrics.counter "engine.stalls_absorbed"
let m_corruptions = Telemetry.Metrics.counter "engine.corruptions"
let m_quarantined = Telemetry.Metrics.counter "engine.quarantined"

let m_replenished =
  Telemetry.Metrics.counter "engine.workers_replenished"

let m_store_hits = Telemetry.Metrics.counter "engine.store_hits"
let m_store_misses = Telemetry.Metrics.counter "engine.store_misses"
let m_store_invalidated = Telemetry.Metrics.counter "engine.store_invalidated"
let m_store_writes = Telemetry.Metrics.counter "engine.store_writes"

let h_job_seconds = Telemetry.Metrics.histogram "engine.job_seconds"
let h_batch_seconds = Telemetry.Metrics.histogram "engine.batch_seconds"

let default_jobs () =
  match jobs_from_env () with
  | Ok (Some n) -> n
  | Ok None -> Domain.recommended_domain_count ()
  | Error msg -> failwith msg

let open_store path =
  if Telemetry.Trace.enabled () then begin
    let opened = ref None in
    Telemetry.Trace.span "engine.store_open"
      ~attrs:(fun () -> [ ("path", Telemetry.Trace.Str path) ])
      (fun () -> opened := Some (Store.open_ path));
    Option.get !opened
  end
  else Store.open_ path

let create ?jobs ?progress ?faults ?store ?store_path ?max_retries ?deadline_ms
    ?backoff_ms ?quorum ?(block_generation = false) () =
  let n_jobs = max 1 (match jobs with Some n -> n | None -> default_jobs ()) in
  let faults = match faults with Some f -> f | None -> Faultsim.default () in
  let store =
    (* an already-open handle wins over any path: the store's
       cross-process file locks are per-process, so several engines of
       one process (the daemon's shard pool) must share ONE handle —
       a second open_ in the same process would silently break the
       intra-process append exclusion *)
    match store with
    | Some _ as s -> s
    | None ->
      let store_path =
        match store_path with Some _ as p -> p | None -> default_store_path ()
      in
      Option.map open_store store_path
  in
  let base = !policy_override in
  let policy =
    clamp_policy
      {
        max_retries = Option.value max_retries ~default:base.max_retries;
        deadline_ms = Option.value deadline_ms ~default:base.deadline_ms;
        backoff_ms = Option.value backoff_ms ~default:base.backoff_ms;
        quorum = Option.value quorum ~default:base.quorum;
      }
  in
  {
    n_jobs;
    progress;
    faults;
    policy;
    cache = Hashtbl.create 4096;
    store;
    gen_cache = [];
    block_gen = (if block_generation then Some (Hashtbl.create 1024) else None);
    lock = Mutex.create ();
    worker_busy_ns = Array.make n_jobs 0L;
    worker_jobs = Array.make n_jobs 0;
    submitted = 0;
    executed = 0;
    cache_hits = 0;
    completed = 0;
    quarantined_slots = 0;
    profiler_calls = 0;
    retries = 0;
    crashes = 0;
    timeouts = 0;
    quorum_failures = 0;
    stalls_absorbed = 0;
    corruptions = 0;
    workers_replenished = 0;
    store_hit_count = 0;
    store_miss_count = 0;
    store_invalidated_count = 0;
    store_write_count = 0;
    wall_seconds = 0.0;
    phase_log = [];
    quarantine_log = [];
  }

let shared = lazy (create ())
let default () = Lazy.force shared
let jobs t = t.n_jobs
let faults t = t.faults
let policy t = t.policy
let cache_size t = Hashtbl.length t.cache
let store t = t.store

(* Generation fingerprints, memoised by descriptor identity. *)
let generation_of t (u : Uarch.Descriptor.t) =
  match List.find_opt (fun (d, _) -> d == u) t.gen_cache with
  | Some (_, g) -> g
  | None ->
    let g = Stable_key.generation u in
    t.gen_cache <- (u, g) :: t.gen_cache;
    g

(* The store generation for one job: whole-descriptor by default,
   per-block table slice when the engine was created with
   [~block_generation:true]. The block-sensitive cache is keyed by job
   fingerprint but guarded by descriptor identity: refinement reuses
   one fingerprint across candidate descriptors (same short name), and
   a fresh engine per candidate plus this guard keeps them distinct. *)
let generation_for t fp (j : job) =
  match t.block_gen with
  | None -> generation_of t j.uarch
  | Some tbl -> (
    match Hashtbl.find_opt tbl fp with
    | Some (d, g) when d == j.uarch -> g
    | _ ->
      let g = Stable_key.block_generation j.uarch j.block in
      Hashtbl.replace tbl fp (j.uarch, g);
      g)

(* In block-generation mode the store key is content-addressed by the
   generation itself: each (job, table-slice) pair lives under its own
   key, so a rejected refinement candidate's writes never supersede the
   incumbent's records and every previously-visited configuration stays
   warm (invalidation shows up as a miss, never a stale record).
   Whole-descriptor mode keeps the bare fingerprint key — one live
   record per job, superseded when the descriptor changes. *)
let store_key t fp gen =
  match t.block_gen with None -> fp | Some _ -> fp ^ "@" ^ gen

(* Cache probe without execution: memo tier, then the disk store. A
   store hit fills the memo so later probes and batches resolve in
   memory. Same threading contract as [run_batch] — submitting thread
   only (the memo Hashtbl is unsynchronised); the serve dispatcher is
   that thread. *)
let peek t (j : job) : outcome option =
  let fp = fingerprint j in
  match Hashtbl.find_opt t.cache fp with
  | Some r ->
    t.cache_hits <- t.cache_hits + 1;
    Some r
  | None -> (
    match t.store with
    | None -> None
    | Some st -> (
      let gen = generation_for t fp j in
      match Store.get st ~key:(store_key t fp gen) ~gen with
      | Store.Hit payload -> (
        match
          try Some (Marshal.from_string payload 0 : outcome) with _ -> None
        with
        | Some r ->
          t.store_hit_count <- t.store_hit_count + 1;
          Telemetry.Metrics.incr m_store_hits;
          Hashtbl.replace t.cache fp r;
          Some r
        | None -> None)
      | Store.Stale | Store.Miss -> None))

let stats t =
  {
    submitted = t.submitted;
    executed = t.executed;
    cache_hits = t.cache_hits;
    completed = t.completed;
    quarantined = t.quarantined_slots;
    profiler_calls = t.profiler_calls;
    retries = t.retries;
    crashes = t.crashes;
    timeouts = t.timeouts;
    quorum_failures = t.quorum_failures;
    stalls_absorbed = t.stalls_absorbed;
    corruptions = t.corruptions;
    workers_replenished = t.workers_replenished;
    store_hits = t.store_hit_count;
    store_misses = t.store_miss_count;
    store_invalidated = t.store_invalidated_count;
    store_writes = t.store_write_count;
    wall_seconds = t.wall_seconds;
  }

let hit_rate (s : stats) =
  if s.submitted = 0 then 0.0
  else float_of_int s.cache_hits /. float_of_int s.submitted

let seconds_of_ns ns = Int64.to_float ns /. 1e9

let worker_stats t =
  List.init t.n_jobs (fun w ->
      {
        worker_id = w;
        jobs_run = t.worker_jobs.(w);
        busy_seconds = seconds_of_ns t.worker_busy_ns.(w);
      })

let quarantines t = List.rev t.quarantine_log

let write_quarantine_manifest t path =
  let qs = quarantines t in
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun q ->
          Out_channel.output_string oc
            (Telemetry.Json.to_string ~compact:true (quarantine_json q));
          Out_channel.output_char oc '\n')
        qs);
  List.length qs

(* The raised-out-of-a-domain representation of a simulated worker
   crash; it never escapes run_batch. *)
exception
  Worker_crashed of { unique : int; attempt : int; worker : int }

(* Structural majority vote: the first value whose marshalled
   representation reaches a strict majority of the trials. *)
let majority trials votes =
  match votes with
  | [ v ] when trials = 1 -> Some v
  | vs ->
    let keyed =
      List.map (fun v -> (Digest.string (Marshal.to_string v []), v)) vs
    in
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (k, _) ->
        Hashtbl.replace tbl k
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      keyed;
    List.find_opt (fun (k, _) -> 2 * Hashtbl.find tbl k > trials) keyed
    |> Option.map snd

let run_batch t (submission : job list) : batch =
  let t0 = Unix.gettimeofday () in
  let batch_start_ns = Telemetry.Trace.now_ns () in
  let submission = Array.of_list submission in
  let n = Array.length submission in
  let results : outcome option array = Array.make n None in
  let m_ref = ref 0 in
  let batch_hits = ref 0 in
  (* disk-tier accounting; lookups happen on the submitting thread,
     writes in the workers *)
  let b_store_hits = ref 0 in
  let b_store_misses = ref 0 in
  let b_store_invalidated = ref 0 in
  let a_store_writes = Atomic.make 0 in
  let fresh_quarantines = ref [] in
  (* batch-local fault/retry accounting; folded into [t] after the pool
     drains (workers may not touch [t]'s mutable fields directly) *)
  let a_profiler_calls = Atomic.make 0 in
  let a_retries = Atomic.make 0 in
  let a_crashes = Atomic.make 0 in
  let a_timeouts = Atomic.make 0 in
  let a_quorum_failures = Atomic.make 0 in
  let a_stalls = Atomic.make 0 in
  let a_corruptions = Atomic.make 0 in
  let a_replenished = Atomic.make 0 in
  let body () =
    let batch_span = Telemetry.Trace.current_span () in
    (* Resolve against the cache and deduplicate within the batch. The
       worklist keeps unique jobs in first-occurrence order; [claims]
       maps each unique fingerprint to every submission slot wanting its
       result. *)
    let claims : (string, int list ref) Hashtbl.t =
      Hashtbl.create (max 16 n)
    in
    let worklist = ref [] in
    let traced = Telemetry.Trace.enabled () in
    (* Disk-tier lookup for the first occurrence of a fingerprint. A
       hit fills the memo immediately (later duplicates in this batch
       resolve exactly like cold-run duplicates: through the memo), so
       cache-hit counts are identical cold vs warm. A stale record —
       same job, written under a different generation of the uarch
       tables or profiler — is the invalidation path. *)
    let store_lookup i fp (j : job) : outcome option =
      match t.store with
      | None -> None
      | Some st -> (
        let gen = generation_for t fp j in
        match Store.get st ~key:(store_key t fp gen) ~gen with
        | Store.Hit payload -> (
          match
            try Some (Marshal.from_string payload 0 : outcome)
            with _ -> None
          with
          | Some r ->
            incr b_store_hits;
            Telemetry.Metrics.incr m_store_hits;
            if traced then
              Telemetry.Trace.instant "engine.store_hit" ~attrs:(fun () ->
                  [
                    ("slot", Telemetry.Trace.Int i);
                    ("fingerprint", Telemetry.Trace.Str fp);
                  ]);
            Some r
          | None ->
            (* checksummed but undecodable (should not happen: the
               format tag pins the Marshal dialect) — re-profile and
               overwrite *)
            incr b_store_misses;
            Telemetry.Metrics.incr m_store_misses;
            None)
        | Store.Stale ->
          incr b_store_invalidated;
          Telemetry.Metrics.incr m_store_invalidated;
          if traced then
            Telemetry.Trace.instant "engine.store_invalidated"
              ~attrs:(fun () ->
                [
                  ("slot", Telemetry.Trace.Int i);
                  ("fingerprint", Telemetry.Trace.Str fp);
                ]);
          None
        | Store.Miss ->
          incr b_store_misses;
          Telemetry.Metrics.incr m_store_misses;
          None)
    in
    Array.iteri
      (fun i j ->
        let fp = fingerprint j in
        match Hashtbl.find_opt t.cache fp with
        | Some r ->
          incr batch_hits;
          if traced then
            Telemetry.Trace.instant "engine.cache_hit" ~attrs:(fun () ->
                [ ("slot", Telemetry.Trace.Int i) ]);
          results.(i) <- Some r
        | None -> (
          match Hashtbl.find_opt claims fp with
          | Some slots ->
            incr batch_hits;
            if traced then
              Telemetry.Trace.instant "engine.cache_hit" ~attrs:(fun () ->
                  [
                    ("slot", Telemetry.Trace.Int i);
                    ("dedup", Telemetry.Trace.Bool true);
                  ]);
            slots := i :: !slots
          | None -> (
            match store_lookup i fp j with
            | Some r ->
              Hashtbl.replace t.cache fp r;
              results.(i) <- Some r
            | None ->
              Hashtbl.add claims fp (ref [ i ]);
              worklist := (fp, i) :: !worklist)))
      submission;
    let worklist = Array.of_list (List.rev !worklist) in
    let m = Array.length worklist in
    m_ref := m;
    (* Per-unique generation fingerprints, precomputed on the
       submitting thread so workers read them without touching
       [gen_cache]. *)
    let gens =
      match t.store with
      | None -> [||]
      | Some _ ->
        Array.map
          (fun (fp, slot) -> generation_for t fp submission.(slot))
          worklist
    in
    (* Persist measured outcomes from the worker that produced them.
       Quarantines are never persisted: they are artifacts of the
       simulated substrate, not measurements, and the same fault seed
       re-derives them deterministically on a warm run. *)
    let store_put u fp (r : outcome) =
      match t.store with
      | None -> ()
      | Some st -> (
        match r with
        | Error (Quarantined _) -> ()
        | Ok _ | Error (Profiler_failure _) ->
          if
            Store.put st
              ~key:(store_key t fp gens.(u))
              ~gen:gens.(u)
              (Marshal.to_string r [])
          then begin
            Atomic.incr a_store_writes;
            Telemetry.Metrics.incr m_store_writes;
            if traced then
              Telemetry.Trace.instant "engine.store_write" ~attrs:(fun () ->
                  [ ("fingerprint", Telemetry.Trace.Str fp) ])
          end)
    in
    let out : outcome option array = Array.make m None in
    (* per-unique attempt history (reverse order); owned by whichever
       worker currently holds the job — ownership transfers through the
       queue mutex or a Domain.join, both synchronisation points *)
    let logs : attempt_record list ref array =
      Array.init m (fun _ -> ref [])
    in
    let queue : (int * int) Queue.t = Queue.create () in
    let queue_lock = Mutex.create () in
    Array.iteri (fun u _ -> Queue.add (u, 0) queue) worklist;
    let pop () =
      Mutex.lock queue_lock;
      let item = Queue.take_opt queue in
      Mutex.unlock queue_lock;
      item
    in
    let push item =
      Mutex.lock queue_lock;
      Queue.add item queue;
      Mutex.unlock queue_lock
    in
    let resolved = Atomic.make 0 in
    let mark_resolved () =
      let d = 1 + Atomic.fetch_and_add resolved 1 in
      match t.progress with
      | None -> ()
      | Some hook ->
        Mutex.lock t.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.lock)
          (fun () -> hook ~done_:d ~total:m)
    in
    let mk_quarantine u =
      let fp, slot = worklist.(u) in
      let j = submission.(slot) in
      {
        q_fingerprint = fp;
        q_uarch = j.uarch.short;
        q_block_insts = List.length j.block;
        q_attempts = List.rev !(logs.(u));
      }
    in
    let finalize_quarantine u =
      let q = mk_quarantine u in
      out.(u) <- Some (Error (Quarantined q));
      Telemetry.Metrics.incr m_quarantined;
      if traced then
        Telemetry.Trace.instant "engine.quarantine" ~attrs:(fun () ->
            [
              ("fingerprint", Telemetry.Trace.Str q.q_fingerprint);
              ("attempts", Telemetry.Trace.Int (List.length q.q_attempts));
            ]);
      mark_resolved ()
    in
    (* One real profiler invocation, with span + utilization accounting. *)
    let execute_profiler ~worker ~attempt fp (j : job) :
        (Harness.Profiler.profile, Harness.Profiler.failure) result =
      let start_ns = Telemetry.Trace.now_ns () in
      let result = ref None in
      let run () = result := Some (Harness.Profiler.profile j.env j.uarch j.block) in
      (if Telemetry.Trace.enabled () then
         Telemetry.Trace.span "engine.execute" ~parent:batch_span
           ~attrs:(fun () ->
             [
               ("worker", Telemetry.Trace.Int worker);
               ("attempt", Telemetry.Trace.Int attempt);
               ( "queue_wait_us",
                 Telemetry.Trace.Float
                   (Int64.to_float (Int64.sub start_ns batch_start_ns)
                   /. 1e3) );
               ("fingerprint", Telemetry.Trace.Str fp);
             ])
           run
       else run ());
      let busy = Int64.sub (Telemetry.Trace.now_ns ()) start_ns in
      t.worker_busy_ns.(worker) <- Int64.add t.worker_busy_ns.(worker) busy;
      t.worker_jobs.(worker) <- t.worker_jobs.(worker) + 1;
      Atomic.incr a_profiler_calls;
      Telemetry.Metrics.incr m_profiler_calls;
      Telemetry.Metrics.observe h_job_seconds (seconds_of_ns busy);
      Option.get !result
    in
    (* Run the attempts of unique job [u] starting at [attempt0].
       Timeouts and failed quorum rounds retry in place; a crash
       escapes as Worker_crashed (the domain dies). *)
    let run_attempts ~worker u attempt0 =
      let fp, slot = worklist.(u) in
      let fp_hex = fp in
      let j = submission.(slot) in
      let trials = t.policy.quorum in
      let record ~attempt ~verdict ~faults_rev ~sim_ms ~backoff_ms =
        logs.(u) :=
          {
            att_number = attempt;
            att_verdict = verdict;
            att_faults = List.rev faults_rev;
            att_sim_ms = sim_ms;
            att_backoff_ms = backoff_ms;
          }
          :: !(logs.(u))
      in
      let fault_instant attempt fault =
        if traced then
          Telemetry.Trace.instant "engine.fault" ~attrs:(fun () ->
              [
                ("kind", Telemetry.Trace.Str (Faultsim.fault_to_string fault));
                ("fingerprint", Telemetry.Trace.Str fp_hex);
                ("attempt", Telemetry.Trace.Int attempt);
              ])
      in
      let rec go attempt =
        let sim_ms = ref 0 in
        let faults_seen = ref [] in
        let base = ref None in
        let get_base () =
          match !base with
          | Some r -> r
          | None ->
            let r = execute_profiler ~worker ~attempt fp j in
            base := Some r;
            r
        in
        let corrupt_vote salt =
          match get_base () with
          | Ok p ->
            Ok
              {
                p with
                Harness.Profiler.throughput =
                  Faultsim.corrupt_throughput ~salt p.Harness.Profiler.throughput;
              }
          | Error _ as e -> e
        in
        let rec run_trials trial votes =
          if trial >= trials then `Votes (List.rev votes)
          else begin
            match
              Faultsim.draw t.faults ~fingerprint:fp_hex ~attempt ~trial
            with
            | Some Faultsim.Crash as f ->
              faults_seen := "crash" :: !faults_seen;
              fault_instant attempt (Option.get f);
              `Crash
            | Some (Faultsim.Stall ms) as f ->
              fault_instant attempt (Option.get f);
              sim_ms := !sim_ms + ms;
              if !sim_ms > t.policy.deadline_ms then begin
                faults_seen := Printf.sprintf "stall:%dms" ms :: !faults_seen;
                `Timeout
              end
              else begin
                faults_seen :=
                  Printf.sprintf "stall:%dms(absorbed)" ms :: !faults_seen;
                Atomic.incr a_stalls;
                Telemetry.Metrics.incr m_stalls_absorbed;
                incr sim_ms;
                run_trials (trial + 1) (get_base () :: votes)
              end
            | Some (Faultsim.Corrupt salt) as f ->
              fault_instant attempt (Option.get f);
              faults_seen := "corrupt" :: !faults_seen;
              Atomic.incr a_corruptions;
              Telemetry.Metrics.incr m_corruptions;
              incr sim_ms;
              run_trials (trial + 1) (corrupt_vote salt :: votes)
            | None ->
              incr sim_ms;
              run_trials (trial + 1) (get_base () :: votes)
          end
        in
        let retry_or_quarantine () =
          if attempt < t.policy.max_retries then begin
            Atomic.incr a_retries;
            Telemetry.Metrics.incr m_retries;
            go (attempt + 1)
          end
          else finalize_quarantine u
        in
        let next_backoff () =
          if attempt < t.policy.max_retries then backoff_of t.policy attempt
          else 0
        in
        match run_trials 0 [] with
        | `Crash ->
          Atomic.incr a_crashes;
          Telemetry.Metrics.incr m_crashes;
          record ~attempt ~verdict:"crash" ~faults_rev:!faults_seen
            ~sim_ms:!sim_ms ~backoff_ms:(next_backoff ());
          raise (Worker_crashed { unique = u; attempt; worker })
        | `Timeout ->
          Atomic.incr a_timeouts;
          Telemetry.Metrics.incr m_timeouts;
          record ~attempt ~verdict:"timeout" ~faults_rev:!faults_seen
            ~sim_ms:!sim_ms ~backoff_ms:(next_backoff ());
          retry_or_quarantine ()
        | `Votes votes -> (
          match majority trials votes with
          | Some v ->
            record ~attempt ~verdict:"ok" ~faults_rev:!faults_seen
              ~sim_ms:!sim_ms ~backoff_ms:0;
            let r : outcome =
              match v with
              | Ok p -> Ok p
              | Error f -> Error (Profiler_failure f)
            in
            out.(u) <- Some r;
            store_put u fp r;
            mark_resolved ()
          | None ->
            Atomic.incr a_quorum_failures;
            Telemetry.Metrics.incr m_quorum_failures;
            record ~attempt ~verdict:"no_quorum" ~faults_rev:!faults_seen
              ~sim_ms:!sim_ms ~backoff_ms:(next_backoff ());
            retry_or_quarantine ())
      in
      go attempt0
    in
    let worker_loop w () =
      let rec loop () =
        match pop () with
        | None -> ()
        | Some (u, attempt) ->
          run_attempts ~worker:w u attempt;
          loop ()
      in
      loop ()
    in
    (* The supervisor's half of crash recovery: requeue or quarantine
       the in-flight job, count the replacement. *)
    let recover ~unique ~attempt =
      Atomic.incr a_replenished;
      Telemetry.Metrics.incr m_replenished;
      if attempt < t.policy.max_retries then begin
        Atomic.incr a_retries;
        Telemetry.Metrics.incr m_retries;
        push (unique, attempt + 1)
      end
      else finalize_quarantine unique
    in
    let workers = min t.n_jobs m in
    if workers <= 1 then begin
      (* Sequential path: the single worker slot "dies" on a crash and
         is immediately re-occupied; the queue discipline is the same
         as the parallel path. *)
      let rec drain () =
        match pop () with
        | None -> ()
        | Some (u, attempt) ->
          (try run_attempts ~worker:0 u attempt
           with Worker_crashed { unique; attempt; _ } ->
             recover ~unique ~attempt);
          drain ()
      in
      drain ()
    end
    else begin
      (* A non-crash exception escaping a worker (a caller's progress
         hook aborting the run, an unexpected profiler error) must not
         leak live domains past run_batch: remember the first such
         exception, join every remaining domain without replenishing,
         and re-raise only once the pool is fully drained. *)
      let rec supervise ~fatal pool =
        match (pool, fatal) with
        | [], None -> ()
        | [], Some e -> raise e
        | (w, d) :: rest, _ -> (
          match Domain.join d with
          | () -> supervise ~fatal rest
          | exception Worker_crashed { unique; attempt; worker } -> (
            match fatal with
            | None ->
              recover ~unique ~attempt;
              (* replenish the pool on the same worker slot; the
                 replacement sees any requeued job before exiting *)
              let d' = Domain.spawn (worker_loop worker) in
              supervise ~fatal (rest @ [ (w, d') ])
            | Some _ -> supervise ~fatal rest)
          | exception e ->
            let fatal = match fatal with None -> Some e | some -> some in
            supervise ~fatal rest)
      in
      supervise ~fatal:None
        (List.init workers (fun k -> (k, Domain.spawn (worker_loop k))))
    end;
    (* Commit to the cache and expand into submission order. *)
    Array.iteri
      (fun u (fp, _) ->
        let r = Option.get out.(u) in
        Hashtbl.replace t.cache fp r;
        (match r with
        | Error (Quarantined q) ->
          fresh_quarantines := q :: !fresh_quarantines
        | _ -> ());
        List.iter (fun i -> results.(i) <- Some r) !(Hashtbl.find claims fp))
      worklist
  in
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.span "engine.run_batch"
      ~attrs:(fun () ->
        [
          ("submitted", Telemetry.Trace.Int n);
          ("executed", Telemetry.Trace.Int !m_ref);
          ("cache_hits", Telemetry.Trace.Int !batch_hits);
          ("workers", Telemetry.Trace.Int (min t.n_jobs !m_ref));
          ("retries", Telemetry.Trace.Int (Atomic.get a_retries));
          ("quarantined", Telemetry.Trace.Int (List.length !fresh_quarantines));
        ])
      body
  else body ();
  let outcomes = Array.map Option.get results in
  let quarantined = List.rev !fresh_quarantines in
  (* Slot-level accounting: every submitted slot is either completed or
     quarantined; nothing is ever lost. *)
  let q_slots =
    Array.fold_left
      (fun acc -> function Error (Quarantined _) -> acc + 1 | _ -> acc)
      0 outcomes
  in
  t.submitted <- t.submitted + n;
  t.executed <- t.executed + !m_ref;
  t.cache_hits <- t.cache_hits + !batch_hits;
  t.completed <- t.completed + (n - q_slots);
  t.quarantined_slots <- t.quarantined_slots + q_slots;
  t.profiler_calls <- t.profiler_calls + Atomic.get a_profiler_calls;
  t.retries <- t.retries + Atomic.get a_retries;
  t.crashes <- t.crashes + Atomic.get a_crashes;
  t.timeouts <- t.timeouts + Atomic.get a_timeouts;
  t.quorum_failures <- t.quorum_failures + Atomic.get a_quorum_failures;
  t.stalls_absorbed <- t.stalls_absorbed + Atomic.get a_stalls;
  t.corruptions <- t.corruptions + Atomic.get a_corruptions;
  t.workers_replenished <- t.workers_replenished + Atomic.get a_replenished;
  t.store_hit_count <- t.store_hit_count + !b_store_hits;
  t.store_miss_count <- t.store_miss_count + !b_store_misses;
  t.store_invalidated_count <- t.store_invalidated_count + !b_store_invalidated;
  t.store_write_count <- t.store_write_count + Atomic.get a_store_writes;
  t.quarantine_log <- List.rev_append quarantined t.quarantine_log;
  Telemetry.Metrics.add m_submitted n;
  Telemetry.Metrics.add m_executed !m_ref;
  Telemetry.Metrics.add m_cache_hits !batch_hits;
  let batch_seconds = Unix.gettimeofday () -. t0 in
  Telemetry.Metrics.observe h_batch_seconds batch_seconds;
  t.wall_seconds <- t.wall_seconds +. batch_seconds;
  { outcomes; quarantined }

let profile t env uarch block =
  (run_batch t [ { env; uarch; block } ]).outcomes.(0)

let phase t name f =
  let before = stats t in
  let t0 = Unix.gettimeofday () in
  let finally () =
    let after = stats t in
    t.phase_log <-
      {
        phase_name = name;
        phase_wall_seconds = Unix.gettimeofday () -. t0;
        phase_submitted = after.submitted - before.submitted;
        phase_executed = after.executed - before.executed;
        phase_cache_hits = after.cache_hits - before.cache_hits;
        phase_retries = after.retries - before.retries;
        phase_quarantined = after.quarantined - before.quarantined;
      }
      :: t.phase_log
  in
  Fun.protect ~finally f

let phases t = List.rev t.phase_log

let summary_json t =
  let open Telemetry in
  let s = stats t in
  let num i = Json.Number (float_of_int i) in
  let phase_json p =
    let rate =
      if p.phase_submitted = 0 then 0.0
      else float_of_int p.phase_cache_hits /. float_of_int p.phase_submitted
    in
    Json.Object
      [
        ("section", Json.String p.phase_name);
        ("wall_seconds", Json.Number p.phase_wall_seconds);
        ("jobs", num t.n_jobs);
        ("submitted", num p.phase_submitted);
        ("executed", num p.phase_executed);
        ("cache_hits", num p.phase_cache_hits);
        ("cache_hit_rate", Json.Number rate);
        ("retries", num p.phase_retries);
        ("quarantined", num p.phase_quarantined);
      ]
  in
  let worker_json (w : worker_stat) =
    let utilization =
      if s.wall_seconds <= 0.0 then 0.0 else w.busy_seconds /. s.wall_seconds
    in
    Json.Object
      [
        ("worker", num w.worker_id);
        ("jobs_run", num w.jobs_run);
        ("busy_seconds", Json.Number w.busy_seconds);
        ("utilization", Json.Number utilization);
      ]
  in
  let fault_json =
    Json.Object
      [
        ( "config",
          Json.String
            (if Faultsim.is_none t.faults then "none"
             else Faultsim.to_string t.faults) );
        ("max_retries", num t.policy.max_retries);
        ("deadline_ms", num t.policy.deadline_ms);
        ("backoff_ms", num t.policy.backoff_ms);
        ("quorum", num t.policy.quorum);
        ("profiler_calls", num s.profiler_calls);
        ("retries", num s.retries);
        ("crashes", num s.crashes);
        ("timeouts", num s.timeouts);
        ("quorum_failures", num s.quorum_failures);
        ("stalls_absorbed", num s.stalls_absorbed);
        ("corruptions", num s.corruptions);
        ("workers_replenished", num s.workers_replenished);
        ("quarantined_jobs", num (List.length t.quarantine_log));
        ("quarantined_slots", num s.quarantined);
        ("completed_slots", num s.completed);
        ("lost", num (lost s));
      ]
  in
  let store_json =
    Json.Object
      ([
         ("enabled", Json.Bool (t.store <> None));
         ( "path",
           Json.String
             (match t.store with Some st -> Store.dir st | None -> "") );
         ("hits", num s.store_hits);
         ("misses", num s.store_misses);
         ("invalidated", num s.store_invalidated);
         ("writes", num s.store_writes);
         ("hit_rate", Json.Number (store_hit_rate s));
       ]
      @
      match t.store with
      | None -> []
      | Some st -> [ ("entries", num (Store.stats st).Store.s_live) ])
  in
  Json.Object
    [
      ("jobs", num t.n_jobs);
      ("submitted", num s.submitted);
      ("executed", num s.executed);
      ("cache_hits", num s.cache_hits);
      ("cache_hit_rate", Json.Number (hit_rate s));
      ("completed", num s.completed);
      ("quarantined", num s.quarantined);
      ("engine_wall_seconds", Json.Number s.wall_seconds);
      ("store", store_json);
      ("faults", fault_json);
      ("workers", Json.List (List.map worker_json (worker_stats t)));
      ("sections", Json.List (List.map phase_json (phases t)));
    ]

let phases_to_json t = Telemetry.Json.to_string (summary_json t)
