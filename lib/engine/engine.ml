(* The measurement engine. See engine.mli for the contract.

   Parallelism strategy: each batch is first resolved against the memo
   cache and deduplicated, leaving a worklist of unique jobs in
   first-occurrence order. Workers (OCaml 5 domains) pull indices from
   an atomic counter and write into disjoint slots of a result array,
   so the parallel section shares no mutable state beyond the counter
   and the optional progress hook. The cache is only written by the
   submitting thread after the pool joins, and results are re-expanded
   into submission order — which is what makes output byte-identical
   for any worker count.

   Telemetry: a "engine.run_batch" span wraps every batch; each
   executed job gets an "engine.execute" span (with its queue wait and
   worker id) parented to the batch span, and each cache hit an
   "engine.cache_hit" instant. Per-worker busy time is accumulated
   unconditionally — two monotonic clock reads per executed job —
   because worker utilization feeds bench_summary.json even when no
   trace sink is installed. *)

type job = {
  env : Harness.Environment.t;
  uarch : Uarch.Descriptor.t;
  block : X86.Inst.t list;
}

type outcome = (Harness.Profiler.profile, Harness.Profiler.failure) result

let env_fingerprint (env : Harness.Environment.t) =
  Digest.string (Marshal.to_string env [])

let fingerprint (j : job) =
  Digest.string
    (String.concat "\x00"
       [
         env_fingerprint j.env;
         j.uarch.short;
         Marshal.to_string j.block [];
       ])

type stats = {
  submitted : int;
  executed : int;
  cache_hits : int;
  wall_seconds : float;
}

type phase_metrics = {
  phase_name : string;
  phase_wall_seconds : float;
  phase_submitted : int;
  phase_executed : int;
  phase_cache_hits : int;
}

type worker_stat = { worker_id : int; jobs_run : int; busy_seconds : float }

type t = {
  n_jobs : int;
  progress : (done_:int -> total:int -> unit) option;
  cache : (string, outcome) Hashtbl.t;
  lock : Mutex.t;  (** guards the progress hook only *)
  worker_busy_ns : int64 array;
      (** per-worker execution time; each worker writes only its slot *)
  worker_jobs : int array;
  mutable submitted : int;
  mutable executed : int;
  mutable cache_hits : int;
  mutable wall_seconds : float;
  mutable phase_log : phase_metrics list;  (** reverse order *)
}

let m_submitted = Telemetry.Metrics.counter "engine.submitted"
let m_executed = Telemetry.Metrics.counter "engine.executed"
let m_cache_hits = Telemetry.Metrics.counter "engine.cache_hits"
let h_job_seconds = Telemetry.Metrics.histogram "engine.job_seconds"
let h_batch_seconds = Telemetry.Metrics.histogram "engine.batch_seconds"

let default_jobs () =
  match Sys.getenv_opt "BHIVE_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?jobs ?progress () =
  let n_jobs = max 1 (match jobs with Some n -> n | None -> default_jobs ()) in
  {
    n_jobs;
    progress;
    cache = Hashtbl.create 4096;
    lock = Mutex.create ();
    worker_busy_ns = Array.make n_jobs 0L;
    worker_jobs = Array.make n_jobs 0;
    submitted = 0;
    executed = 0;
    cache_hits = 0;
    wall_seconds = 0.0;
    phase_log = [];
  }

let shared = lazy (create ())
let default () = Lazy.force shared
let jobs t = t.n_jobs
let cache_size t = Hashtbl.length t.cache

let stats t =
  {
    submitted = t.submitted;
    executed = t.executed;
    cache_hits = t.cache_hits;
    wall_seconds = t.wall_seconds;
  }

let hit_rate (s : stats) =
  if s.submitted = 0 then 0.0
  else float_of_int s.cache_hits /. float_of_int s.submitted

let seconds_of_ns ns = Int64.to_float ns /. 1e9

let worker_stats t =
  List.init t.n_jobs (fun w ->
      {
        worker_id = w;
        jobs_run = t.worker_jobs.(w);
        busy_seconds = seconds_of_ns t.worker_busy_ns.(w);
      })

let execute (j : job) = Harness.Profiler.profile j.env j.uarch j.block

let run_batch t (submission : job list) : outcome array =
  let t0 = Unix.gettimeofday () in
  let batch_start_ns = Telemetry.Trace.now_ns () in
  let submission = Array.of_list submission in
  let n = Array.length submission in
  let results : outcome option array = Array.make n None in
  let m_ref = ref 0 in
  let batch_hits = ref 0 in
  let body () =
    let batch_span = Telemetry.Trace.current_span () in
    (* Resolve against the cache and deduplicate within the batch. The
       worklist keeps unique jobs in first-occurrence order; [claims]
       maps each unique fingerprint to every submission slot wanting its
       result. *)
    let claims : (string, int list ref) Hashtbl.t =
      Hashtbl.create (max 16 n)
    in
    let worklist = ref [] in
    let traced = Telemetry.Trace.enabled () in
    Array.iteri
      (fun i j ->
        let fp = fingerprint j in
        match Hashtbl.find_opt t.cache fp with
        | Some r ->
          incr batch_hits;
          if traced then
            Telemetry.Trace.instant "engine.cache_hit" ~attrs:(fun () ->
                [ ("slot", Telemetry.Trace.Int i) ]);
          results.(i) <- Some r
        | None -> (
          match Hashtbl.find_opt claims fp with
          | Some slots ->
            incr batch_hits;
            if traced then
              Telemetry.Trace.instant "engine.cache_hit" ~attrs:(fun () ->
                  [
                    ("slot", Telemetry.Trace.Int i);
                    ("dedup", Telemetry.Trace.Bool true);
                  ]);
            slots := i :: !slots
          | None ->
            Hashtbl.add claims fp (ref [ i ]);
            worklist := (fp, i) :: !worklist))
      submission;
    let worklist = Array.of_list (List.rev !worklist) in
    let m = Array.length worklist in
    m_ref := m;
    let out : outcome option array = Array.make m None in
    let completed = Atomic.make 0 in
    let run_one ~worker u =
      let fp, i = worklist.(u) in
      let start_ns = Telemetry.Trace.now_ns () in
      (if Telemetry.Trace.enabled () then
         Telemetry.Trace.span "engine.execute" ~parent:batch_span
           ~attrs:(fun () ->
             [
               ("worker", Telemetry.Trace.Int worker);
               ( "queue_wait_us",
                 Telemetry.Trace.Float
                   (Int64.to_float (Int64.sub start_ns batch_start_ns)
                   /. 1e3) );
               ("fingerprint", Telemetry.Trace.Str (Digest.to_hex fp));
             ])
           (fun () -> out.(u) <- Some (execute submission.(i)))
       else out.(u) <- Some (execute submission.(i)));
      let busy = Int64.sub (Telemetry.Trace.now_ns ()) start_ns in
      t.worker_busy_ns.(worker) <- Int64.add t.worker_busy_ns.(worker) busy;
      t.worker_jobs.(worker) <- t.worker_jobs.(worker) + 1;
      Telemetry.Metrics.observe h_job_seconds (seconds_of_ns busy);
      match t.progress with
      | None -> ()
      | Some hook ->
        let d = 1 + Atomic.fetch_and_add completed 1 in
        Mutex.lock t.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.lock)
          (fun () -> hook ~done_:d ~total:m)
    in
    let workers = min t.n_jobs m in
    if workers <= 1 then
      for u = 0 to m - 1 do
        run_one ~worker:0 u
      done
    else begin
      let next = Atomic.make 0 in
      let worker_loop w () =
        let rec loop () =
          let u = Atomic.fetch_and_add next 1 in
          if u < m then begin
            run_one ~worker:w u;
            loop ()
          end
        in
        loop ()
      in
      let pool =
        List.init (workers - 1) (fun k -> Domain.spawn (worker_loop (k + 1)))
      in
      worker_loop 0 ();
      List.iter Domain.join pool
    end;
    (* Commit to the cache and expand into submission order. *)
    Array.iteri
      (fun u (fp, _) ->
        let r = Option.get out.(u) in
        Hashtbl.replace t.cache fp r;
        List.iter (fun i -> results.(i) <- Some r) !(Hashtbl.find claims fp))
      worklist
  in
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.span "engine.run_batch"
      ~attrs:(fun () ->
        [
          ("submitted", Telemetry.Trace.Int n);
          ("executed", Telemetry.Trace.Int !m_ref);
          ("cache_hits", Telemetry.Trace.Int !batch_hits);
          ("workers", Telemetry.Trace.Int (min t.n_jobs !m_ref));
        ])
      body
  else body ();
  t.submitted <- t.submitted + n;
  t.executed <- t.executed + !m_ref;
  t.cache_hits <- t.cache_hits + !batch_hits;
  Telemetry.Metrics.add m_submitted n;
  Telemetry.Metrics.add m_executed !m_ref;
  Telemetry.Metrics.add m_cache_hits !batch_hits;
  let batch_seconds = Unix.gettimeofday () -. t0 in
  Telemetry.Metrics.observe h_batch_seconds batch_seconds;
  t.wall_seconds <- t.wall_seconds +. batch_seconds;
  Array.map Option.get results

let profile t env uarch block = (run_batch t [ { env; uarch; block } ]).(0)

let phase t name f =
  let before = stats t in
  let t0 = Unix.gettimeofday () in
  let finally () =
    let after = stats t in
    t.phase_log <-
      {
        phase_name = name;
        phase_wall_seconds = Unix.gettimeofday () -. t0;
        phase_submitted = after.submitted - before.submitted;
        phase_executed = after.executed - before.executed;
        phase_cache_hits = after.cache_hits - before.cache_hits;
      }
      :: t.phase_log
  in
  Fun.protect ~finally f

let phases t = List.rev t.phase_log

let summary_json t =
  let open Telemetry in
  let s = stats t in
  let phase_json p =
    let rate =
      if p.phase_submitted = 0 then 0.0
      else float_of_int p.phase_cache_hits /. float_of_int p.phase_submitted
    in
    Json.Object
      [
        ("section", Json.String p.phase_name);
        ("wall_seconds", Json.Number p.phase_wall_seconds);
        ("jobs", Json.Number (float_of_int t.n_jobs));
        ("submitted", Json.Number (float_of_int p.phase_submitted));
        ("executed", Json.Number (float_of_int p.phase_executed));
        ("cache_hits", Json.Number (float_of_int p.phase_cache_hits));
        ("cache_hit_rate", Json.Number rate);
      ]
  in
  let worker_json (w : worker_stat) =
    let utilization =
      if s.wall_seconds <= 0.0 then 0.0 else w.busy_seconds /. s.wall_seconds
    in
    Json.Object
      [
        ("worker", Json.Number (float_of_int w.worker_id));
        ("jobs_run", Json.Number (float_of_int w.jobs_run));
        ("busy_seconds", Json.Number w.busy_seconds);
        ("utilization", Json.Number utilization);
      ]
  in
  Json.Object
    [
      ("jobs", Json.Number (float_of_int t.n_jobs));
      ("submitted", Json.Number (float_of_int s.submitted));
      ("executed", Json.Number (float_of_int s.executed));
      ("cache_hits", Json.Number (float_of_int s.cache_hits));
      ("cache_hit_rate", Json.Number (hit_rate s));
      ("engine_wall_seconds", Json.Number s.wall_seconds);
      ("workers", Json.List (List.map worker_json (worker_stats t)));
      ("sections", Json.List (List.map phase_json (phases t)));
    ]

let phases_to_json t = Telemetry.Json.to_string (summary_json t)
