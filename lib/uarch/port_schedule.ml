(** Per-port issue-slot allocation with backfill.

    Each execution port accepts one micro-op per cycle. A dataflow
    scheduler processing uops in program order must still allow a young,
    early-ready uop to claim a port cycle that precedes slots already
    given to older uops (out-of-order issue). This structure answers
    "first free cycle >= t on port p" in near-constant amortised time via
    a disjoint-set forest over occupied cycles.

    The forest is stored in open-addressed int arrays (linear probing)
    with an epoch stamp per slot, so [reset] is O(ports) and the
    simulator's cycle loop performs no allocation and no [Hashtbl]
    operations: arrays grow geometrically and are reused across
    simulated blocks. *)

type port = {
  (* occupied cycle -> candidate later cycle; a slot belongs to the
     current epoch only when its stamp matches, so stale entries from
     previous simulations are free without clearing the arrays *)
  mutable keys : int array;
  mutable nexts : int array;
  mutable stamps : int array;
  mutable mask : int;  (** capacity - 1; capacity is a power of two *)
  mutable live : int;
}

type t = { ports : port array; mutable epoch : int }

let initial_capacity = 128

let make_port () =
  {
    keys = Array.make initial_capacity 0;
    nexts = Array.make initial_capacity 0;
    stamps = Array.make initial_capacity (-1);
    mask = initial_capacity - 1;
    live = 0;
  }

let create ~n_ports = { ports = Array.init n_ports (fun _ -> make_port ()); epoch = 0 }

(* Fibonacci-style multiplicative hash; cycles are small non-negative
   ints, the multiply spreads consecutive values across the table. *)
let hash c = (c * 0x9E3779B1) lxor (c lsr 16)

(* Slot index of [k], or [-insert_position - 1] when absent. *)
let rec probe_from p ~epoch k i =
  if p.stamps.(i) <> epoch then -i - 1
  else if p.keys.(i) = k then i
  else probe_from p ~epoch k ((i + 1) land p.mask)

let probe p ~epoch k = probe_from p ~epoch k (hash k land p.mask)

let grow p ~epoch =
  let old_keys = p.keys and old_nexts = p.nexts and old_stamps = p.stamps in
  let cap = 2 * (p.mask + 1) in
  p.keys <- Array.make cap 0;
  p.nexts <- Array.make cap 0;
  p.stamps <- Array.make cap (-1);
  p.mask <- cap - 1;
  for i = 0 to Array.length old_keys - 1 do
    if old_stamps.(i) = epoch then begin
      let j = -probe p ~epoch old_keys.(i) - 1 in
      p.keys.(j) <- old_keys.(i);
      p.nexts.(j) <- old_nexts.(i);
      p.stamps.(j) <- epoch
    end
  done

let set p ~epoch k v =
  let i = probe p ~epoch k in
  if i >= 0 then p.nexts.(i) <- v
  else begin
    if 2 * (p.live + 1) > p.mask + 1 then grow p ~epoch;
    let i = -probe p ~epoch k - 1 in
    p.keys.(i) <- k;
    p.nexts.(i) <- v;
    p.stamps.(i) <- epoch;
    p.live <- p.live + 1
  end

let rec find p ~epoch c =
  let i = probe p ~epoch c in
  if i < 0 then c
  else begin
    let c' = p.nexts.(i) in
    let root = find p ~epoch c' in
    if root <> c' then p.nexts.(i) <- root;
    root
  end

(** First free cycle >= [ready] on port [p], without claiming it. *)
let peek t ~port ~ready = find t.ports.(port) ~epoch:t.epoch (max 0 ready)

(** Claim [busy] consecutive free cycles, the first starting at or after
    [ready] on [port]; returns the start cycle. *)
let claim t ~port ~ready ~busy =
  let p = t.ports.(port) and epoch = t.epoch in
  let rec find_run start =
    (* verify cells start .. start+busy-1 are all free; cycles are
       non-negative, so -1 can flag a clean run *)
    let rec check k =
      if k >= busy then -1
      else
        let c = find p ~epoch (start + k) in
        if c = start + k then check (k + 1) else c
    in
    let blocked = check 1 in
    if blocked < 0 then start else find_run (find p ~epoch blocked)
  in
  let start = find_run (find p ~epoch (max 0 ready)) in
  for c = start to start + busy - 1 do
    set p ~epoch c (c + 1)
  done;
  start

(** Forget every claim; O(ports), the backing arrays are retained. *)
let reset t =
  t.epoch <- t.epoch + 1;
  Array.iter (fun p -> p.live <- 0) t.ports
