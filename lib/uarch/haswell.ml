(** Haswell (4th-gen Core) microarchitecture model.

    Eight execution ports: 0,1,5,6 integer ALU; 0,1 FP/FMA; 5 shuffles;
    6 branches; 2,3 load; 2,3,7 store address; 4 store data. Parameters
    follow Intel's optimisation manual and Abel-Reineke port mappings. *)

let profile : Profile.t =
  {
    name = "Haswell";
    alu = Port.p0156;
    shift = Port.p06;
    lea_simple = Port.p15;
    lea_complex = Port.p1;
    lea_complex_latency = 3;
    imul = Port.p1;
    imul_latency = 3;
    div = Port.p0;
    div32_latency = 22;  (* div r32: manual range 20-26 *)
    div64_latency = 85;  (* div r64 with wide dividend: 80-95 *)
    adc_uops = 2;
    cmov_uops = 2;
    bit_scan = Port.p1;
    bit_scan_latency = 3;
    load = Port.p23;
    load_latency = 4;
    load_bytes = 32;
    store_addr = Port.p237;
    store_data = Port.p4;
    store_bytes = 32;
    vec_alu = Port.p015;
    vec_shift = Port.p0;
    vec_shuffle = Port.p5;
    vec_imul = Port.p0;
    vec_imul_latency = 5;
    pmulld_uops = 2;
    fp_add = Port.p1;
    fp_add_latency = 3;
    fp_mul = Port.p01;
    fp_mul_latency = 5;
    fp_fma = Some Port.p01;
    fp_fma_latency = 5;
    fp_div = Port.p0;
    fp_div_latency_s = 13;
    fp_div_latency_d = 20;
    fp_div_ymm_factor = 2;
    fp_mov = Port.p5;
    cvt = Port.p1;
    cvt_latency = 4;
    movmsk = Port.p0;
    movmsk_latency = 3;
    xfer = Port.p0;
    xfer_latency = 2;
    zero_idiom_elim = true;
    move_elim = true;
    micro_fusion = true;
  }

let descriptor : Descriptor.t =
  {
    name = "Haswell";
    short = "hsw";
    profile;
    rename_width = 4;
    retire_width = 4;
    rob_size = 192;
    scheduler_size = 60;
    n_ports = 8;
    icache_miss_penalty = 30;
    l1d_miss_penalty = 12;
    l2_miss_penalty = 30;
    subnormal_assist_cycles = 150;
    misaligned_extra_cycles = 9;
    supports_avx2 = true;
  }

(* Preprocess the execution tables into flat, opcode-indexed arrays at
   descriptor construction time (see Flat). *)
let () = ignore (Flat.of_profile profile ~n_ports:descriptor.n_ports)
