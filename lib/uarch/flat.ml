(** Preprocessed ("flattened") execution tables for one
    microarchitecture profile.

    [Profile.exec_uops] is a big pattern match and [Profile.decompose]
    builds fresh uop lists per call; doing that per dynamic instruction
    dominates the simulator's decode cost. A [Flat.t] precomputes, once
    per (profile, port count):

    - a dense array over opcode classes (every payload-instantiated
      constructor in [X86.Opcode.all]) holding the register-form exec-uop
      skeleton and its int-packed encoding — latency, uop kind and the
      candidate-port bit mask in a single immediate int;
    - the packed load / store-address / store-data uop codes and the
      split thresholds;
    - the effective divider latencies, including the 64-bit
      zeroed-rdx fast path.

    Opcode classes whose decomposition depends on the concrete operands
    (memory forms of moves, shifts by a register count, width-dependent
    multiplies/divides, YMM division, ...) are flagged [variant] and fall
    back to [Profile.exec_uops]; everything else shares one immutable
    skeleton list and one packed array per class. [decompose] is
    observationally identical to [Profile.decompose] — it routes through
    [Profile.decompose_with], so eliminations, load/store splitting and
    micro-fusion run the exact same code.

    Packed uop code layout (also used by the pipeline's cycle loop):
    bits 0..15 candidate-port mask (already clipped to the machine's
    ports, defaulting to port 0 when the profile names none), bits
    16..17 the uop kind, bits 18.. the latency. *)

open X86

(* --- opcode class index ----------------------------------------------- *)

let classes : Opcode.t array = Array.of_list Opcode.all
let n_classes = Array.length classes

let class_ids : (Opcode.t, int) Hashtbl.t =
  let tbl = Hashtbl.create (2 * n_classes) in
  Array.iteri (fun i op -> Hashtbl.replace tbl op i) classes;
  tbl

(** Dense class index of an opcode, or -1 when unmodelled. *)
let class_of (op : Opcode.t) =
  match Hashtbl.find_opt class_ids op with Some i -> i | None -> -1

(* Classes whose exec-uop skeleton inspects the operands, the operation
   width or the register file (YMM) — these cannot be preprocessed from
   the opcode alone and fall back to [Profile.exec_uops]. Keep in sync
   with the pattern match there; the test suite checks equivalence over
   every opcode class and generated corpus blocks. *)
let variant_opcode : Opcode.t -> bool = function
  | Opcode.Mov | Movzx _ | Movsx _ | Movsxd | Lea (* memory forms *)
  | Shl | Shr | Sar | Rol | Ror (* immediate vs register count *)
  | Mul_1 | Imul_1 | Div | Idiv | Bswap (* width-dependent *)
  | Movap _ | Movup _ | Movs_x _ | Movdqa | Movdqu | Lddqu | Movnt _
  | Movd | Movq_x | Vbroadcast _ (* memory forms *)
  | Fdiv _ | Fsqrt _ (* YMM latency factor *)
  | Psll _ | Psrl _ | Psra _ (* register shift count *) -> true
  | _ -> false

let is_divider_opcode : Opcode.t -> bool = function
  | Opcode.Div | Idiv | Fdiv _ | Fsqrt _ -> true
  | _ -> false

let is_int_div_opcode : Opcode.t -> bool = function
  | Opcode.Div | Idiv -> true
  | _ -> false

(* --- packed uop codes -------------------------------------------------- *)

let kind_bits = function
  | Uop.Exec -> 0
  | Uop.Load -> 1
  | Uop.Store_addr -> 2
  | Uop.Store_data -> 3

let code_mask c = c land 0xFFFF
let code_kind c = (c lsr 16) land 3
let code_latency c = c lsr 18

type t = {
  profile : Profile.t;
  n_ports : int;
  port_mask : int;
  variant : bool array;  (** per class: must fall back to [exec_uops] *)
  skel : Uop.t list array;  (** per invariant class: shared exec skeleton *)
  skel_codes : int array array;  (** packed form of [skel] *)
  skel_n_uops : int array;  (** uop count; -1 for variant classes *)
  divider : bool array;  (** unpipelined-divider classes *)
  int_div : bool array;  (** div/idiv: latency picked from the trace *)
  load_code : int;
  store_addr_code : int;
  store_data_code : int;
  load_bytes : int;
  store_bytes : int;
  div32_latency : int;
  div64_latency : int;
  divq_latency : int;  (** 64-bit divide with zeroed rdx *)
}

let pack_uop ~port_mask (u : Uop.t) =
  let m = u.ports land port_mask in
  let m = if m = 0 then 1 else m in
  (u.latency lsl 18) lor (kind_bits u.kind lsl 16) lor m

let pack_uops t uops = Array.of_list (List.map (pack_uop ~port_mask:t.port_mask) uops)

let build (p : Profile.t) ~n_ports : t =
  let port_mask = (1 lsl n_ports) - 1 in
  let variant = Array.map variant_opcode classes in
  let skel = Array.make n_classes [] in
  let skel_codes = Array.make n_classes [||] in
  let skel_n_uops = Array.make n_classes (-1) in
  Array.iteri
    (fun k op ->
      if not variant.(k) then begin
        (* the skeleton of an invariant class never looks at operands,
           so a bare representative instruction stands for the class *)
        let uops = Profile.exec_uops p (Inst.make op []) in
        skel.(k) <- uops;
        skel_codes.(k) <- Array.of_list (List.map (pack_uop ~port_mask) uops);
        skel_n_uops.(k) <- List.length uops
      end)
    classes;
  {
    profile = p;
    n_ports;
    port_mask;
    variant;
    skel;
    skel_codes;
    skel_n_uops;
    divider = Array.map is_divider_opcode classes;
    int_div = Array.map is_int_div_opcode classes;
    load_code = pack_uop ~port_mask (Uop.load ~latency:p.load_latency p.load);
    store_addr_code = pack_uop ~port_mask (Uop.store_addr p.store_addr);
    store_data_code = pack_uop ~port_mask (Uop.store_data p.store_data);
    load_bytes = p.load_bytes;
    store_bytes = p.store_bytes;
    div32_latency = p.div32_latency;
    div64_latency = p.div64_latency;
    divq_latency =
      p.div32_latency + ((p.div64_latency - p.div32_latency) / 4);
  }

(* --- per-profile memoisation ------------------------------------------- *)

(* Keyed first by physical profile identity (the three shipped
   descriptors), then structurally (perturbed copies, e.g. the store's
   invalidation tests); a stale-table hazard cannot arise because the
   tables live outside the descriptor record. The unlocked read is safe:
   a racing writer only prepends, and a missed entry merely rebuilds an
   identical table under the lock. *)
let memo : (Profile.t * int * t) list ref = ref []
let memo_lock = Mutex.create ()

let of_profile (p : Profile.t) ~n_ports =
  let rec phys = function
    | [] -> None
    | (p', n, f) :: tl -> if p' == p && n = n_ports then Some f else phys tl
  in
  match phys !memo with
  | Some f -> f
  | None ->
    Mutex.lock memo_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock memo_lock) (fun () ->
        let rec structural = function
          | [] -> None
          | (p', n, f) :: tl ->
            if n = n_ports && p' = p then Some f else structural tl
        in
        match structural !memo with
        | Some f -> f
        | None ->
          let f = build p ~n_ports in
          memo := (p, n_ports, f) :: !memo;
          f)

(* --- decomposition ----------------------------------------------------- *)

(** Exactly [Profile.decompose], with the exec skeleton served from the
    flat tables for invariant classes. *)
let decompose t (inst : Inst.t) : Uop.decomp =
  Profile.decompose_with t.profile inst ~execs:(fun () ->
      let k = class_of inst.opcode in
      if k >= 0 && not t.variant.(k) then t.skel.(k)
      else Profile.exec_uops t.profile inst)

(** [decompose] plus the packed uop codes, sharing the preprocessed
    per-class array whenever the decomposition is the bare skeleton. *)
let decompose_packed t (inst : Inst.t) : Uop.decomp * int array =
  let d = decompose t inst in
  let k = class_of inst.opcode in
  let codes =
    if (not d.eliminated) && k >= 0 && (not t.variant.(k))
       && d.uops == t.skel.(k)
    then t.skel_codes.(k)
    else pack_uops t d.uops
  in
  (d, codes)

let is_divider t (op : Opcode.t) =
  let k = class_of op in
  if k >= 0 then t.divider.(k) else is_divider_opcode op

let is_int_div t (op : Opcode.t) =
  let k = class_of op in
  if k >= 0 then t.int_div.(k) else is_int_div_opcode op

(* --- canonical encoding (for fingerprinting) --------------------------- *)

(** One table row: packed uop codes of an invariant class (or its
    [variant] marker) plus the divider flags. Shared between the full
    {!encode} and the engine's block-sensitive generation fingerprints,
    which hash exactly the rows a block's opcode classes use. *)
let encode_class t k =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "%d:%s:" k (Opcode.mnemonic classes.(k)));
  if t.variant.(k) then Buffer.add_string b "variant"
  else begin
    Buffer.add_string b (Printf.sprintf "n=%d" t.skel_n_uops.(k));
    Array.iter
      (fun c -> Buffer.add_string b (Printf.sprintf ",%x" c))
      t.skel_codes.(k)
  end;
  if t.divider.(k) then Buffer.add_char b (if t.int_div.(k) then '!' else '/');
  Buffer.contents b

(** The load/store uop codes and split thresholds — the slice of the
    tables every memory-touching block depends on. *)
let encode_memory t =
  Printf.sprintf "load=%x staddr=%x stdata=%x lb=%d sb=%d" t.load_code
    t.store_addr_code t.store_data_code t.load_bytes t.store_bytes

(** The effective integer-divider latencies, depended on only by blocks
    containing div/idiv classes. *)
let encode_int_div t =
  Printf.sprintf "div32=%d div64=%d divq=%d" t.div32_latency t.div64_latency
    t.divq_latency

(** Deterministic byte encoding of every preprocessed table, consumed by
    the engine's fingerprinting layer. The flat tables are a pure
    function of (profile, n_ports), so this digest changing without the
    descriptor changing would mean flattening altered simulation
    semantics — the golden tests pin exactly that. *)
let encode t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "bhive-flat-v1\n";
  Buffer.add_string b (Printf.sprintf "n_ports=%d mask=%x\n" t.n_ports t.port_mask);
  Buffer.add_string b (encode_memory t);
  Buffer.add_char b '\n';
  Buffer.add_string b (encode_int_div t);
  Buffer.add_char b '\n';
  Array.iteri
    (fun k _ ->
      Buffer.add_string b (encode_class t k);
      Buffer.add_char b '\n')
    classes;
  Buffer.contents b
