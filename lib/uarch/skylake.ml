(** Skylake (6th-gen Core) microarchitecture model.

    Same port topology as Haswell with rebalanced units: FP add and
    multiply both run on ports 0 and 1 at 4-cycle latency, vector shifts
    gain port 1, single-uop ADC/CMOV, and the radix-1024 divider shortens
    64-bit division considerably. *)

let profile : Profile.t =
  {
    name = "Skylake";
    alu = Port.p0156;
    shift = Port.p06;
    lea_simple = Port.p15;
    lea_complex = Port.p1;
    lea_complex_latency = 3;
    imul = Port.p1;
    imul_latency = 3;
    div = Port.p0;
    div32_latency = 24;
    div64_latency = 42;
    adc_uops = 1;
    cmov_uops = 1;
    bit_scan = Port.p1;
    bit_scan_latency = 3;
    load = Port.p23;
    load_latency = 4;
    load_bytes = 32;
    store_addr = Port.p237;
    store_data = Port.p4;
    store_bytes = 32;
    vec_alu = Port.p015;
    vec_shift = Port.p01;
    vec_shuffle = Port.p5;
    vec_imul = Port.p01;
    vec_imul_latency = 5;
    pmulld_uops = 2;
    fp_add = Port.p01;
    fp_add_latency = 4;
    fp_mul = Port.p01;
    fp_mul_latency = 4;
    fp_fma = Some Port.p01;
    fp_fma_latency = 4;
    fp_div = Port.p0;
    fp_div_latency_s = 11;
    fp_div_latency_d = 14;
    fp_div_ymm_factor = 1;
    fp_mov = Port.p5;
    cvt = Port.p01;
    cvt_latency = 4;
    movmsk = Port.p0;
    movmsk_latency = 2;
    xfer = Port.p0;
    xfer_latency = 2;
    zero_idiom_elim = true;
    move_elim = true;
    micro_fusion = true;
  }

let descriptor : Descriptor.t =
  {
    name = "Skylake";
    short = "skl";
    profile;
    rename_width = 4;
    retire_width = 4;
    rob_size = 224;
    scheduler_size = 97;
    n_ports = 8;
    icache_miss_penalty = 30;
    l1d_miss_penalty = 12;
    l2_miss_penalty = 28;
    subnormal_assist_cycles = 140;
    misaligned_extra_cycles = 8;
    supports_avx2 = true;
  }

(* Preprocess the execution tables into flat, opcode-indexed arrays at
   descriptor construction time (see Flat). *)
let () = ignore (Flat.of_profile profile ~n_ports:descriptor.n_ports)
