(** Microarchitecture execution profile: which ports each instruction
    class issues to and with what latency, in the style of Abel and
    Reineke's reverse-engineered port mappings. [decompose] derives the
    micro-op decomposition of any modelled instruction from a profile;
    Ivy Bridge, Haswell and Skylake instantiate different profiles. *)

open X86

type t = {
  name : string;
  (* scalar integer *)
  alu : Port.set;  (** 1-cycle integer ALU ops *)
  shift : Port.set;
  lea_simple : Port.set;
  lea_complex : Port.set;
  lea_complex_latency : int;
  imul : Port.set;
  imul_latency : int;
  div : Port.set;
  div32_latency : int;  (** 64/32-bit unsigned divide, steady state *)
  div64_latency : int;  (** 128/64-bit divide (slow path) *)
  adc_uops : int;  (** 1 on SKL, 2 on IVB/HSW *)
  cmov_uops : int;
  bit_scan : Port.set;  (** bsf/bsr/popcnt/lzcnt/tzcnt/crc32 *)
  bit_scan_latency : int;
  (* memory *)
  load : Port.set;
  load_latency : int;
  load_bytes : int;  (** max bytes per load uop (16 on IVB, 32 on HSW+) *)
  store_addr : Port.set;
  store_data : Port.set;
  store_bytes : int;
  (* vector *)
  vec_alu : Port.set;  (** vector logic / int add / cmp / min / max *)
  vec_shift : Port.set;
  vec_shuffle : Port.set;
  vec_imul : Port.set;
  vec_imul_latency : int;
  pmulld_uops : int;  (** 2 on HSW/SKL (10-cycle pmulld), 1 on IVB *)
  fp_add : Port.set;
  fp_add_latency : int;
  fp_mul : Port.set;
  fp_mul_latency : int;
  fp_fma : Port.set option;  (** None when the uarch has no FMA units *)
  fp_fma_latency : int;
  fp_div : Port.set;
  fp_div_latency_s : int;  (** scalar/packed single *)
  fp_div_latency_d : int;  (** scalar/packed double *)
  fp_div_ymm_factor : int;  (** extra factor for 256-bit division *)
  fp_mov : Port.set;
  cvt : Port.set;
  cvt_latency : int;
  movmsk : Port.set;
  movmsk_latency : int;
  xfer : Port.set;  (** gpr<->xmm transfers *)
  xfer_latency : int;
  (* rename-stage optimisations *)
  zero_idiom_elim : bool;
  move_elim : bool;
  micro_fusion : bool;  (** load-op pairs occupy one fused-domain slot *)
}

(* --- helpers --------------------------------------------------------- *)

let exec = Uop.exec
let chain1 ports latency = [ exec ~latency ports ]

(* The exec-uop skeleton of the register-register form of an instruction.
   Memory forms are derived from this by [decompose]. Returns [] for pure
   data movement that a load or store uop covers entirely. Multi-uop
   instructions are modelled as a chain whose per-uop latencies sum to the
   documented instruction latency. *)
let exec_uops p (t : Inst.t) : Uop.t list =
  let ymm = Inst.uses_ymm t in
  let fp_div_lat prec =
    let base =
      match prec with
      | Opcode.Ss | Opcode.Ps -> p.fp_div_latency_s
      | Opcode.Sd | Opcode.Pd -> p.fp_div_latency_d
    in
    if ymm then base * p.fp_div_ymm_factor else base
  in
  let n_ops = List.length t.operands in
  match t.opcode with
  (* scalar moves: reg-reg form needs an ALU slot (or is eliminated,
     handled in decompose); load/store forms need no exec uop at all *)
  | Opcode.Mov | Movzx _ | Movsx _ | Movsxd ->
    if Inst.has_mem t then [] else chain1 p.alu 1
  | Opcode.Lea -> (
    match t.operands with
    | [ _; Operand.Mem m ] ->
      let components =
        (if m.base <> None then 1 else 0)
        + (if m.index <> None then 1 else 0)
        + if not (Int64.equal m.disp 0L) then 1 else 0
      in
      if components >= 3 || m.scale > 1 then
        chain1 p.lea_complex p.lea_complex_latency
      else chain1 p.lea_simple 1
    | _ -> chain1 p.lea_simple 1)
  | Opcode.Push | Pop -> []
  | Opcode.Xchg -> [ exec p.alu; exec p.alu; exec p.alu ]
  | Opcode.Cmov _ ->
    if p.cmov_uops = 1 then chain1 p.alu 1
    else [ exec p.alu; exec p.alu ]
  | Opcode.Set _ -> chain1 p.alu 1
  | Opcode.Add | Sub | And | Or | Xor | Cmp | Test | Inc | Dec | Neg | Not ->
    chain1 p.alu 1
  | Opcode.Adc | Sbb ->
    if p.adc_uops = 1 then chain1 p.alu 1 else [ exec p.alu; exec p.alu ]
  | Opcode.Shl | Shr | Sar | Rol | Ror -> (
    match t.operands with
    | [ _; Operand.Imm _ ] -> chain1 p.shift 1
    | _ -> [ exec p.shift; exec p.alu ] (* variable count: extra flag uop *))
  | Opcode.Shld | Shrd -> chain1 p.imul 3
  | Opcode.Imul_rr -> chain1 p.imul p.imul_latency
  | Opcode.Mul_1 | Imul_1 ->
    if Width.equal t.width Width.Q || Width.equal t.width Width.D then
      [ exec ~latency:p.imul_latency p.imul; exec p.alu ]
    else chain1 p.imul p.imul_latency
  | Opcode.Div | Idiv ->
    (* The divider is not pipelined; the pipeline model keys on the
       Div_fast_path / Div_slow_path event to pick the real latency. This
       entry is the table default (fast path at the instruction width). *)
    let lat =
      if Width.equal t.width Width.Q then p.div64_latency else p.div32_latency
    in
    chain1 p.div lat
  | Opcode.Cdq | Cqo -> chain1 p.alu 1
  | Opcode.Bsf | Bsr | Popcnt | Lzcnt | Tzcnt ->
    chain1 p.bit_scan p.bit_scan_latency
  | Opcode.Crc32 -> chain1 p.bit_scan p.bit_scan_latency
  | Opcode.Bswap ->
    if Width.equal t.width Width.Q then [ exec p.alu; exec p.shift ]
    else chain1 p.alu 1
  | Opcode.Bt | Bts | Btr | Btc -> chain1 p.alu 1
  | Opcode.Andn | Blsi | Blsr | Blsmsk -> chain1 p.alu 1
  | Opcode.Bextr -> [ exec p.shift; exec p.alu ]
  | Opcode.Nop -> []
  | Opcode.Jmp | Jcc _ | Call | Ret -> chain1 p.shift 1 (* branch port *)
  (* vector moves *)
  | Opcode.Movap _ | Movup _ | Movdqa | Movdqu | Lddqu | Movnt _ ->
    if Inst.has_mem t then [] else chain1 p.fp_mov 1
  | Opcode.Movs_x _ -> (
    match t.operands with
    | [ Operand.Reg _; Operand.Reg _ ] -> chain1 p.vec_shuffle 1 (* merge *)
    | _ -> [])
  | Opcode.Movd | Movq_x ->
    if Inst.has_mem t then [] else chain1 p.xfer p.xfer_latency
  (* FP arithmetic *)
  | Opcode.Fadd _ | Fsub _ -> chain1 p.fp_add p.fp_add_latency
  | Opcode.Fmin _ | Fmax _ -> chain1 p.fp_add p.fp_add_latency
  | Opcode.Fmul _ -> chain1 p.fp_mul p.fp_mul_latency
  | Opcode.Fdiv prec -> chain1 p.fp_div (fp_div_lat prec)
  | Opcode.Fsqrt prec -> chain1 p.fp_div (fp_div_lat prec + 3)
  | Opcode.Rcp _ | Rsqrt _ -> chain1 p.fp_div 5
  | Opcode.Fand _ | Fandn _ | For_ _ | Fxor _ -> chain1 p.vec_alu 1
  | Opcode.Ucomis _ -> chain1 p.fp_add p.fp_add_latency
  | Opcode.Cmp_fp _ -> chain1 p.fp_add p.fp_add_latency
  | Opcode.Haddp _ ->
    [ exec p.vec_shuffle; exec p.vec_shuffle;
      exec ~latency:p.fp_add_latency p.fp_add ]
  | Opcode.Round _ -> [ exec p.fp_add; exec ~latency:p.fp_add_latency p.fp_add ]
  (* FMA *)
  | Opcode.Vfmadd _ | Vfmsub _ | Vfnmadd _ -> (
    match p.fp_fma with
    | Some ports -> chain1 ports p.fp_fma_latency
    | None ->
      (* no FMA unit: executes as separate multiply and add *)
      [ exec ~latency:p.fp_mul_latency p.fp_mul;
        exec ~latency:p.fp_add_latency p.fp_add ])
  (* conversions *)
  | Opcode.Cvtsi2 _ | Cvt2si _ ->
    [ exec p.xfer; exec ~latency:p.cvt_latency p.cvt ]
  | Opcode.Cvtss2sd | Cvtsd2ss | Cvtdq2ps | Cvtps2dq | Cvttps2dq ->
    chain1 p.cvt p.cvt_latency
  | Opcode.Cvtdq2pd | Cvtps2pd | Cvtpd2ps ->
    [ exec p.vec_shuffle; exec ~latency:p.cvt_latency p.cvt ]
  (* shuffles *)
  | Opcode.Shufp _ | Unpckl _ | Unpckh _ | Pshufd | Pshufb | Palignr
  | Punpckl _ | Punpckh _ | Packss _ | Packus _ | Pslldq | Psrldq ->
    chain1 p.vec_shuffle 1
  | Opcode.Blendp _ -> chain1 p.vec_alu 1
  | Opcode.Vbroadcast _ ->
    if Inst.has_mem t then [] else chain1 p.vec_shuffle 1
  | Opcode.Vinsertf128 | Vextractf128 -> chain1 p.vec_shuffle 3
  | Opcode.Vperm2f128 -> chain1 p.vec_shuffle 3
  | Opcode.Vzeroupper -> chain1 p.vec_alu 1
  | Opcode.Movmsk _ | Pmovmskb -> chain1 p.movmsk p.movmsk_latency
  | Opcode.Ptest -> [ exec p.vec_alu; exec ~latency:2 p.movmsk ]
  | Opcode.Pextr _ -> [ exec p.vec_shuffle; exec ~latency:p.xfer_latency p.xfer ]
  | Opcode.Pinsr _ -> [ exec p.xfer; exec ~latency:1 p.vec_shuffle ]
  (* integer vector *)
  | Opcode.Padd _ | Psub _ | Pand | Pandn | Por | Pxor | Pcmpeq _
  | Pcmpgt _ | Pmaxs _ | Pmins _ | Pmaxu _ | Pminu _ | Pabs _ | Pavg _ ->
    chain1 p.vec_alu 1
  | Opcode.Pmull Opcode.I32 ->
    if p.pmulld_uops = 2 then
      [ exec ~latency:p.vec_imul_latency p.vec_imul;
        exec ~latency:p.vec_imul_latency p.vec_imul ]
    else chain1 p.vec_imul p.vec_imul_latency
  | Opcode.Pmull _ | Pmuludq | Pmaddwd -> chain1 p.vec_imul p.vec_imul_latency
  | Opcode.Psll _ | Psrl _ | Psra _ ->
    if n_ops >= 2 && not (List.exists Operand.is_imm t.operands) then
      [ exec p.vec_shift; exec p.vec_shuffle ]
    else chain1 p.vec_shift 1

(* --- full decomposition ---------------------------------------------- *)

(* Split one architectural memory access into 1 or 2 load uops depending
   on the uarch's load-port width. *)
let load_uops p ~size =
  let n = if size > p.load_bytes then 2 else 1 in
  List.init n (fun _ -> Uop.load ~latency:p.load_latency p.load)

let store_uops p ~size =
  let n = if size > p.store_bytes then 2 else 1 in
  List.concat
    (List.init n (fun _ ->
         [ Uop.store_addr p.store_addr; Uop.store_data p.store_data ]))

(** Decompose an instruction into its micro-ops under profile [p],
    taking the exec-uop skeleton from [execs] (a thunk, because the
    rename-stage eliminations never consult it). [Flat] passes a
    preprocessed per-opcode-class skeleton here; [decompose] below
    passes [exec_uops], so both paths share every other rule —
    eliminations, load/store splitting and micro-fusion — and cannot
    diverge. *)
let decompose_with (p : t) (t : Inst.t) ~(execs : unit -> Uop.t list) :
    Uop.decomp =
  (* Rename-stage eliminations first. *)
  if p.zero_idiom_elim && Inst.is_zero_idiom t then
    Uop.decomp ~eliminated:true ~fused_slots:1 []
  else
    let reg_to_reg_move =
      match (t.opcode, t.operands) with
      | (Opcode.Mov | Movap _ | Movup _ | Movdqa | Movdqu),
        [ Operand.Reg _; Operand.Reg _ ] -> true
      | _ -> false
    in
    if p.move_elim && reg_to_reg_move then
      Uop.decomp ~eliminated:true ~fused_slots:1 []
    else begin
      let execs = execs () in
      let mems = Inst.mem_accesses t in
      let loads =
        List.concat_map
          (fun (a : Inst.mem_access) ->
            match a.kind with
            | `Load | `Load_store -> load_uops p ~size:a.size
            | `Store -> [])
          mems
      in
      let stores =
        List.concat_map
          (fun (a : Inst.mem_access) ->
            match a.kind with
            | `Store | `Load_store -> store_uops p ~size:a.size
            | `Load -> [])
          mems
      in
      let uops =
        (* avoid re-building the exec list when there is no memory
           traffic: pure register instructions — the vast majority —
           then share one skeleton list per opcode class *)
        match (loads, stores) with
        | [], [] -> execs
        | _ -> loads @ execs @ stores
      in
      let fused_slots =
        if not p.micro_fusion then max 1 (List.length uops)
        else begin
          (* micro-fusion: each load fuses with one exec uop; store-addr
             fuses with store-data *)
          let n_loads = List.length loads in
          let n_execs = List.length execs in
          let n_store_pairs = List.length stores / 2 in
          let fused_load_exec = min n_loads n_execs in
          max 1 (n_loads + n_execs - fused_load_exec + n_store_pairs)
        end
      in
      Uop.decomp ~fused_slots uops
    end

(** Decompose an instruction into its micro-ops under profile [p]. *)
let decompose (p : t) (t : Inst.t) : Uop.decomp =
  decompose_with p t ~execs:(fun () -> exec_uops p t)

(* Port combinations used by any uop of this instruction; this is the
   feature the LDA classifier tokenises. *)
let port_combinations p t =
  let d = decompose p t in
  List.map (fun (u : Uop.t) -> u.ports) d.uops |> List.sort_uniq compare
