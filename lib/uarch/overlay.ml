(** Typed, canonically-encodable edits to a {!Profile} execution table.

    An overlay is a sparse patch over the profile's scalar entries:
    latencies, candidate-port masks and uop counts. Every patchable
    entry is a [target] with a stable small-int code, so an overlay has
    a canonical byte encoding (sorted by code, one edit per target) that
    the engine can digest into generation fingerprints, the refinement
    journal can replay byte-for-byte, and tests can pin.

    The module also carries the *dependency map* the block-sensitive
    generation scheme and the discrepancy localizer share: which targets
    each variant opcode class (see {!Flat.variant_opcode}) reads when it
    decomposes. Invariant classes need no map — their flat table rows
    are compared directly. *)

type lat_field =
  | L_lea_complex
  | L_imul
  | L_div32
  | L_div64
  | L_bit_scan
  | L_load
  | L_vec_imul
  | L_fp_add
  | L_fp_mul
  | L_fp_fma
  | L_fp_div_s
  | L_fp_div_d
  | L_cvt
  | L_movmsk
  | L_xfer

type port_field =
  | P_alu
  | P_shift
  | P_lea_simple
  | P_lea_complex
  | P_imul
  | P_div
  | P_bit_scan
  | P_load
  | P_store_addr
  | P_store_data
  | P_vec_alu
  | P_vec_shift
  | P_vec_shuffle
  | P_vec_imul
  | P_fp_add
  | P_fp_mul
  | P_fp_div
  | P_fp_mov
  | P_cvt
  | P_movmsk
  | P_xfer

type uop_field = U_adc | U_cmov | U_pmulld

type target = Lat of lat_field | Ports of port_field | Uops of uop_field

(* Canonical target order; [code] is the index here. Append-only: codes
   are persisted in journals and store generations. *)
let all : target list =
  List.map
    (fun l -> Lat l)
    [
      L_lea_complex; L_imul; L_div32; L_div64; L_bit_scan; L_load;
      L_vec_imul; L_fp_add; L_fp_mul; L_fp_fma; L_fp_div_s; L_fp_div_d;
      L_cvt; L_movmsk; L_xfer;
    ]
  @ List.map
      (fun p -> Ports p)
      [
        P_alu; P_shift; P_lea_simple; P_lea_complex; P_imul; P_div;
        P_bit_scan; P_load; P_store_addr; P_store_data; P_vec_alu;
        P_vec_shift; P_vec_shuffle; P_vec_imul; P_fp_add; P_fp_mul;
        P_fp_div; P_fp_mov; P_cvt; P_movmsk; P_xfer;
      ]
  @ List.map (fun u -> Uops u) [ U_adc; U_cmov; U_pmulld ]

let n_targets = List.length all

let code (t : target) =
  let rec go i = function
    | [] -> invalid_arg "Overlay.code"
    | x :: tl -> if x = t then i else go (i + 1) tl
  in
  go 0 all

let of_code c = List.nth_opt all c

let name = function
  | Lat l ->
    "lat."
    ^ (match l with
      | L_lea_complex -> "lea_complex"
      | L_imul -> "imul"
      | L_div32 -> "div32"
      | L_div64 -> "div64"
      | L_bit_scan -> "bit_scan"
      | L_load -> "load"
      | L_vec_imul -> "vec_imul"
      | L_fp_add -> "fp_add"
      | L_fp_mul -> "fp_mul"
      | L_fp_fma -> "fp_fma"
      | L_fp_div_s -> "fp_div_s"
      | L_fp_div_d -> "fp_div_d"
      | L_cvt -> "cvt"
      | L_movmsk -> "movmsk"
      | L_xfer -> "xfer")
  | Ports p ->
    "ports."
    ^ (match p with
      | P_alu -> "alu"
      | P_shift -> "shift"
      | P_lea_simple -> "lea_simple"
      | P_lea_complex -> "lea_complex"
      | P_imul -> "imul"
      | P_div -> "div"
      | P_bit_scan -> "bit_scan"
      | P_load -> "load"
      | P_store_addr -> "store_addr"
      | P_store_data -> "store_data"
      | P_vec_alu -> "vec_alu"
      | P_vec_shift -> "vec_shift"
      | P_vec_shuffle -> "vec_shuffle"
      | P_vec_imul -> "vec_imul"
      | P_fp_add -> "fp_add"
      | P_fp_mul -> "fp_mul"
      | P_fp_div -> "fp_div"
      | P_fp_mov -> "fp_mov"
      | P_cvt -> "cvt"
      | P_movmsk -> "movmsk"
      | P_xfer -> "xfer")
  | Uops u ->
    "uops."
    ^ (match u with U_adc -> "adc" | U_cmov -> "cmov" | U_pmulld -> "pmulld")

let of_name s = List.find_opt (fun t -> name t = s) all

(* --- entry access ------------------------------------------------------ *)

let get (p : Profile.t) = function
  | Lat L_lea_complex -> p.lea_complex_latency
  | Lat L_imul -> p.imul_latency
  | Lat L_div32 -> p.div32_latency
  | Lat L_div64 -> p.div64_latency
  | Lat L_bit_scan -> p.bit_scan_latency
  | Lat L_load -> p.load_latency
  | Lat L_vec_imul -> p.vec_imul_latency
  | Lat L_fp_add -> p.fp_add_latency
  | Lat L_fp_mul -> p.fp_mul_latency
  | Lat L_fp_fma -> p.fp_fma_latency
  | Lat L_fp_div_s -> p.fp_div_latency_s
  | Lat L_fp_div_d -> p.fp_div_latency_d
  | Lat L_cvt -> p.cvt_latency
  | Lat L_movmsk -> p.movmsk_latency
  | Lat L_xfer -> p.xfer_latency
  | Ports P_alu -> p.alu
  | Ports P_shift -> p.shift
  | Ports P_lea_simple -> p.lea_simple
  | Ports P_lea_complex -> p.lea_complex
  | Ports P_imul -> p.imul
  | Ports P_div -> p.div
  | Ports P_bit_scan -> p.bit_scan
  | Ports P_load -> p.load
  | Ports P_store_addr -> p.store_addr
  | Ports P_store_data -> p.store_data
  | Ports P_vec_alu -> p.vec_alu
  | Ports P_vec_shift -> p.vec_shift
  | Ports P_vec_shuffle -> p.vec_shuffle
  | Ports P_vec_imul -> p.vec_imul
  | Ports P_fp_add -> p.fp_add
  | Ports P_fp_mul -> p.fp_mul
  | Ports P_fp_div -> p.fp_div
  | Ports P_fp_mov -> p.fp_mov
  | Ports P_cvt -> p.cvt
  | Ports P_movmsk -> p.movmsk
  | Ports P_xfer -> p.xfer
  | Uops U_adc -> p.adc_uops
  | Uops U_cmov -> p.cmov_uops
  | Uops U_pmulld -> p.pmulld_uops

let set (p : Profile.t) t v : Profile.t =
  match t with
  | Lat L_lea_complex -> { p with lea_complex_latency = v }
  | Lat L_imul -> { p with imul_latency = v }
  | Lat L_div32 -> { p with div32_latency = v }
  | Lat L_div64 -> { p with div64_latency = v }
  | Lat L_bit_scan -> { p with bit_scan_latency = v }
  | Lat L_load -> { p with load_latency = v }
  | Lat L_vec_imul -> { p with vec_imul_latency = v }
  | Lat L_fp_add -> { p with fp_add_latency = v }
  | Lat L_fp_mul -> { p with fp_mul_latency = v }
  | Lat L_fp_fma -> { p with fp_fma_latency = v }
  | Lat L_fp_div_s -> { p with fp_div_latency_s = v }
  | Lat L_fp_div_d -> { p with fp_div_latency_d = v }
  | Lat L_cvt -> { p with cvt_latency = v }
  | Lat L_movmsk -> { p with movmsk_latency = v }
  | Lat L_xfer -> { p with xfer_latency = v }
  | Ports P_alu -> { p with alu = v }
  | Ports P_shift -> { p with shift = v }
  | Ports P_lea_simple -> { p with lea_simple = v }
  | Ports P_lea_complex -> { p with lea_complex = v }
  | Ports P_imul -> { p with imul = v }
  | Ports P_div -> { p with div = v }
  | Ports P_bit_scan -> { p with bit_scan = v }
  | Ports P_load -> { p with load = v }
  | Ports P_store_addr -> { p with store_addr = v }
  | Ports P_store_data -> { p with store_data = v }
  | Ports P_vec_alu -> { p with vec_alu = v }
  | Ports P_vec_shift -> { p with vec_shift = v }
  | Ports P_vec_shuffle -> { p with vec_shuffle = v }
  | Ports P_vec_imul -> { p with vec_imul = v }
  | Ports P_fp_add -> { p with fp_add = v }
  | Ports P_fp_mul -> { p with fp_mul = v }
  | Ports P_fp_div -> { p with fp_div = v }
  | Ports P_fp_mov -> { p with fp_mov = v }
  | Ports P_cvt -> { p with cvt = v }
  | Ports P_movmsk -> { p with movmsk = v }
  | Ports P_xfer -> { p with xfer = v }
  | Uops U_adc -> { p with adc_uops = v }
  | Uops U_cmov -> { p with cmov_uops = v }
  | Uops U_pmulld -> { p with pmulld_uops = v }

(* --- overlays ---------------------------------------------------------- *)

type edit = { target : target; value : int }
type t = edit list  (** canonical: sorted by target code, one edit each *)

let empty : t = []
let is_empty (o : t) = o = []

(* Sort by code; later edits to the same target win. *)
let canonical (edits : edit list) : t =
  let tbl = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace tbl (code e.target) e) edits;
  Hashtbl.fold (fun c e acc -> (c, e) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let update (o : t) target value = canonical (o @ [ { target; value } ])
let remove (o : t) target = List.filter (fun e -> e.target <> target) o

let find (o : t) target =
  List.find_map (fun e -> if e.target = target then Some e.value else None) o

let apply (p : Profile.t) (o : t) =
  List.fold_left (fun p e -> set p e.target e.value) p o

let encoding_version = "bhive-overlay-v1"

(** Canonical byte encoding: version line then one [code=value] line per
    edit in code order. Digested by the engine into per-candidate
    generation fingerprints and replayed by the refinement journal. *)
let encode (o : t) =
  let b = Buffer.create 64 in
  Buffer.add_string b encoding_version;
  Buffer.add_char b '\n';
  List.iter
    (fun e -> Buffer.add_string b (Printf.sprintf "%d=%d\n" (code e.target) e.value))
    (canonical o);
  Buffer.contents b

let to_string (o : t) =
  if is_empty o then "(empty)"
  else
    String.concat ","
      (List.map
         (fun e ->
           match e.target with
           | Ports _ -> Printf.sprintf "%s=%s" (name e.target) (Port.name e.value)
           | _ -> Printf.sprintf "%s=%d" (name e.target) e.value)
         (canonical o))

let pp fmt o = Format.pp_print_string fmt (to_string o)

(* --- dependency map ---------------------------------------------------- *)

(* Which targets each *variant* opcode class ([Flat.variant_opcode])
   reads when decomposing. Kept deliberately as supersets of the exact
   reads in [Profile.exec_uops]; the block-generation soundness test
   (gen unchanged => simulation unchanged, over generated corpora and
   random single-target patches) catches omissions, while an overly
   wide entry only costs warm-store hits. Load/store splitting is not
   listed here — memory-touching blocks carry the whole load/store
   section in their generation. *)
let variant_reads : X86.Opcode.t -> target list = function
  | X86.Opcode.Mov | Movzx _ | Movsx _ | Movsxd -> [ Ports P_alu ]
  | Lea ->
    [ Ports P_lea_simple; Ports P_lea_complex; Lat L_lea_complex ]
  | Shl | Shr | Sar | Rol | Ror -> [ Ports P_shift; Ports P_alu ]
  | Mul_1 | Imul_1 -> [ Ports P_imul; Lat L_imul; Ports P_alu ]
  | Div | Idiv -> [ Ports P_div; Lat L_div32; Lat L_div64 ]
  | Bswap -> [ Ports P_alu; Ports P_shift ]
  | Movap _ | Movup _ | Movdqa | Movdqu | Lddqu | Movnt _ ->
    [ Ports P_fp_mov ]
  | Movs_x _ -> [ Ports P_vec_shuffle; Ports P_fp_mov ]
  | Movd | Movq_x -> [ Ports P_xfer; Lat L_xfer ]
  | Vbroadcast _ -> [ Ports P_vec_shuffle ]
  | Fdiv _ | Fsqrt _ -> [ Ports P_fp_div; Lat L_fp_div_s; Lat L_fp_div_d ]
  | Psll _ | Psrl _ | Psra _ -> [ Ports P_vec_shift; Ports P_vec_shuffle ]
  | _ -> []

(** Canonical value signature of the fields a variant opcode class
    reads, e.g. ["ports.shift=21;ports.alu=23;"]. Part of a
    memory-block-independent generation for blocks containing the
    class: if no read field changed, the class decomposes identically. *)
let variant_signature (p : Profile.t) (op : X86.Opcode.t) =
  let reads =
    List.sort (fun a b -> compare (code a) (code b)) (variant_reads op)
  in
  String.concat ""
    (List.map (fun t -> Printf.sprintf "%d=%d;" (code t) (get p t)) reads)

(* --- localizer support ------------------------------------------------- *)

(** Bit mask of the execution ports a target's entry steers uops to —
    the localizer aligns per-port busy-cycle deltas against this. Empty
    for uop counts. *)
let port_footprint (p : Profile.t) = function
  | Ports f -> get p (Ports f)
  | Lat l -> (
    (* the port set the latency's uops issue to *)
    match l with
    | L_lea_complex -> p.lea_complex
    | L_imul -> p.imul
    | L_div32 | L_div64 -> p.div
    | L_bit_scan -> p.bit_scan
    | L_load -> p.load
    | L_vec_imul -> p.vec_imul
    | L_fp_add -> p.fp_add
    | L_fp_mul -> p.fp_mul
    | L_fp_fma -> ( match p.fp_fma with Some s -> s | None -> Port.empty)
    | L_fp_div_s | L_fp_div_d -> p.fp_div
    | L_cvt -> p.cvt
    | L_movmsk -> p.movmsk
    | L_xfer -> p.xfer)
  | Uops _ -> Port.empty
