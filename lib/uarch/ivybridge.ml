(** Ivy Bridge (3rd-gen Core) microarchitecture model.

    Six execution ports: 0,1,5 compute; 2,3 load / store address; 4 store
    data. 256-bit loads and stores are split into two 128-bit uops. No
    FMA units and no AVX2 (blocks using AVX2-class instructions are
    excluded from Ivy Bridge validation, as in the paper). *)

let profile : Profile.t =
  {
    name = "Ivy Bridge";
    alu = Port.p015;
    shift = Port.p05;
    lea_simple = Port.p01;
    lea_complex = Port.p1;
    lea_complex_latency = 3;
    imul = Port.p1;
    imul_latency = 3;
    div = Port.p0;
    div32_latency = 23;
    div64_latency = 90;
    adc_uops = 2;
    cmov_uops = 2;
    bit_scan = Port.p1;
    bit_scan_latency = 3;
    load = Port.p23;
    load_latency = 4;
    load_bytes = 16;
    store_addr = Port.p23;
    store_data = Port.p4;
    store_bytes = 16;
    vec_alu = Port.p15;
    vec_shift = Port.p0;
    vec_shuffle = Port.p5;
    vec_imul = Port.p0;
    vec_imul_latency = 5;
    pmulld_uops = 1;
    fp_add = Port.p1;
    fp_add_latency = 3;
    fp_mul = Port.p0;
    fp_mul_latency = 5;
    fp_fma = None;
    fp_fma_latency = 8;
    fp_div = Port.p0;
    fp_div_latency_s = 13;
    fp_div_latency_d = 22;
    fp_div_ymm_factor = 2;
    fp_mov = Port.p5;
    cvt = Port.p1;
    cvt_latency = 4;
    movmsk = Port.p0;
    movmsk_latency = 2;
    xfer = Port.p0;
    xfer_latency = 2;
    zero_idiom_elim = true;
    move_elim = true;
    micro_fusion = true;
  }

let descriptor : Descriptor.t =
  {
    name = "Ivy Bridge";
    short = "ivb";
    profile;
    rename_width = 4;
    retire_width = 4;
    rob_size = 168;
    scheduler_size = 54;
    n_ports = 6;
    icache_miss_penalty = 30;
    l1d_miss_penalty = 12;
    l2_miss_penalty = 32;
    subnormal_assist_cycles = 160;
    misaligned_extra_cycles = 10;
    supports_avx2 = false;
  }

(* Preprocess the execution tables into flat, opcode-indexed arrays at
   descriptor construction time (see Flat). *)
let () = ignore (Flat.of_profile profile ~n_ports:descriptor.n_ports)
