(** Complete microarchitecture description: execution profile plus the
    pipeline and memory-system parameters the cycle-level simulator
    needs. *)

type t = {
  name : string;
  short : string;  (** "ivb" / "hsw" / "skl" *)
  profile : Profile.t;
  rename_width : int;  (** fused-domain uops renamed per cycle *)
  retire_width : int;
  rob_size : int;
  scheduler_size : int;
  n_ports : int;
  icache_miss_penalty : int;  (** cycles per L1I line miss *)
  l1d_miss_penalty : int;  (** cycles per L1D line miss (L2 hit) *)
  l2_miss_penalty : int;  (** additional cycles when the L2 also misses *)
  subnormal_assist_cycles : int;
      (** microcode assist cost when an FP op touches subnormals with
          gradual underflow enabled *)
  misaligned_extra_cycles : int;
      (** extra cycles for a load/store crossing a cache line *)
  supports_avx2 : bool;
}

(** The preprocessed flat execution tables for this descriptor
    (memoised per profile; see {!Flat}). *)
let flat t = Flat.of_profile t.profile ~n_ports:t.n_ports

let decompose t inst = Flat.decompose (flat t) inst

let port_combinations t inst = Profile.port_combinations t.profile inst

let pp fmt t = Format.pp_print_string fmt t.name
