(** Instruction characterisation: measured latency, reciprocal
    throughput, and micro-op count per instruction form, per
    microarchitecture — the per-instruction tables (Agner Fog,
    uops.info, llvm-exegesis) rebuilt on top of the block profiler. *)



type result = {
  form : Benchgen.form;
  latency : float option;  (** cycles; None for unchainable forms *)
  rthroughput : float;  (** reciprocal throughput, cycles/instruction *)
  uops : float;  (** unfused micro-ops per instruction *)
}

(* Environment tuned for microbenchmarks: naive unrolling is fine (the
   blocks are tiny) and misalignment never occurs (aligned slots). *)
let env = { Harness.Environment.default with unroll = Harness.Environment.Naive 100 }

(* Microbenchmarks route through the engine when one is given — gaining
   its memoisation and fault supervision — and fall back to the bare
   profiler otherwise. *)
let measure_block ?engine (uarch : Uarch.Descriptor.t) block :
    (float * float) option =
  let outcome : Engine.outcome =
    match engine with
    | Some e -> Engine.profile e env uarch block
    | None -> (
      match Harness.Profiler.profile env uarch block with
      | Ok p -> Ok p
      | Error f -> Error (Engine.Profiler_failure f))
  in
  match outcome with
  | Ok p when p.accepted ->
    let c = p.large.counters in
    let uops_per_inst =
      float_of_int c.uops /. float_of_int (max 1 c.instructions)
    in
    Some (p.throughput, uops_per_inst)
  | _ -> None

(** Characterise one instruction form. *)
let characterize ?engine (uarch : Uarch.Descriptor.t) (form : Benchgen.form) :
    result option =
  (* latency: a single chained instance per iteration; the steady-state
     cycles/iteration of the unrolled chain is the latency *)
  let latency =
    match Benchgen.latency_block form ~n:1 with
    | None -> None
    | Some block -> Option.map fst (measure_block ?engine uarch block)
  in
  (* throughput: as many disjoint copies as the register pool allows *)
  let copies = Benchgen.default_copies form in
  let tp_block = Benchgen.throughput_block form ~copies in
  match measure_block ?engine uarch tp_block with
  | None -> None
  | Some (cycles_per_iter, uops) ->
    Some
      {
        form;
        latency;
        rthroughput = cycles_per_iter /. float_of_int copies;
        uops;
      }

(** The full standard table for one microarchitecture. *)
let table ?engine (uarch : Uarch.Descriptor.t) : result list =
  List.filter_map (characterize ?engine uarch) Benchgen.standard_forms

let pp_row fmt (r : result) =
  Format.fprintf fmt "%-16s lat=%-6s rtp=%-6.2f uops=%.1f"
    (Benchgen.form_name r.form)
    (match r.latency with Some l -> Printf.sprintf "%.1f" l | None -> "-")
    r.rthroughput r.uops

let pp_table fmt (rows : result list) =
  Format.fprintf fmt "%-16s %-9s %-9s %s@." "form" "latency" "rthroughput" "uops";
  List.iter
    (fun (r : result) ->
      Format.fprintf fmt "%-16s %-9s %-9.2f %.1f@."
        (Benchgen.form_name r.form)
        (match r.latency with Some l -> Printf.sprintf "%.1f" l | None -> "-")
        r.rthroughput r.uops)
    rows
