(** Port-mapping inference in the style of Abel and Reineke (uops.info):
    saturate candidate port sets with single-port blocker instructions
    and find the smallest set the target instruction cannot escape. *)

(** A blocker instance for the given port (0, 1 or 5); [k] selects
    registers so that instances are independent. Raises on unsupported
    ports. *)
val blocker_for_port : int -> int -> X86.Inst.t

(** Ports for which single-port blockers exist on all modelled
    microarchitectures. *)
val supported_ports : int list

(** Measured slowdown from adding the target to a saturated combination;
    [None] when either measurement fails. [?engine] routes the probe
    measurements through a supervising engine (memoised, fault-tolerant)
    instead of the bare profiler. *)
val pressure_delta :
  ?engine:Engine.t ->
  Uarch.Descriptor.t -> X86.Inst.t -> Uarch.Port.set -> float option

(** Infer the execution-port combination of the target's compute
    micro-op; [None] when no supported candidate set confines it. *)
val infer :
  ?engine:Engine.t -> Uarch.Descriptor.t -> X86.Inst.t -> Uarch.Port.set option

type entry = {
  name : string;
  inferred : Uarch.Port.set option;
  expected : Uarch.Port.set option;  (** from the uarch table *)
}

(** First execution-port set of the instruction per the uarch table
    (the reference the inference is checked against). *)
val expected_ports : Uarch.Descriptor.t -> X86.Inst.t -> Uarch.Port.set option

val survey :
  ?engine:Engine.t ->
  Uarch.Descriptor.t -> (string * X86.Inst.t) list -> entry list

(** Non-accumulating target forms whose port sets the survey infers. *)
val standard_targets : (string * X86.Inst.t) list

val pp_survey : Format.formatter -> entry list -> unit
