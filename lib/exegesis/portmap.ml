(** Port-mapping inference in the style of Abel and Reineke (uops.info),
    whose reverse-engineered instruction-to-port mappings the paper uses
    to featurise basic blocks.

    The technique: saturate a candidate set of execution ports with
    "blocker" instructions known to issue only there, add one instance of
    the target instruction, and compare against the blocker-only
    baseline. If the target's micro-op can only execute inside the
    blocked set, the measurement grows by its full cost; if it has a port
    outside the set, it slips into the idle capacity and the delta stays
    near zero. The inferred port combination is the smallest blocked set
    that the target cannot escape. *)

open X86
open X86.Builder

(* Single-port blocker generators for the compute ports shared by all
   three modelled microarchitectures: p0 (vector shifts), p1 (integer
   multiply), p5 (shuffles). Each instance uses its own registers. *)
let blocker_for_port port k =
  match port with
  | 0 -> mk (Opcode.Psll Opcode.I32) [ r (Reg.Xmm (k mod 12)); i 3 ]
  | 1 ->
    let regs = Reg.[ rax; rcx; rdx; rsi; rdi; r8; r9; r10; r11 ] in
    let dst = List.nth regs (k mod List.length regs) in
    imul3 (r dst) (r Reg.rbx) (i 7)
  | 5 ->
    mk Opcode.Pshufd [ r (Reg.Xmm (k mod 12)); r (Reg.Xmm ((k + 3) mod 12)); i 0x1b ]
  | p -> invalid_arg (Printf.sprintf "Portmap: no single-port blocker for p%d" p)

let supported_ports = [ 0; 1; 5 ]

(* Candidate combinations over the supported ports, smallest first. *)
let candidate_combos : Uarch.Port.set list =
  Uarch.Port.
    [ p0; p1; p5; p01; p05; p15; p015 ]

let blockers_per_port = 4

(* The measurement block: one target instance plus [blockers_per_port]
   blockers for every port in the combination. *)
let probe_block (target : Inst.t) (combo : Uarch.Port.set) : Inst.t list =
  let blockers =
    List.concat_map
      (fun port -> List.init blockers_per_port (blocker_for_port port))
      (Uarch.Port.to_list combo)
  in
  target :: blockers

let baseline_block (combo : Uarch.Port.set) : Inst.t list =
  List.concat_map
    (fun port -> List.init blockers_per_port (blocker_for_port port))
    (Uarch.Port.to_list combo)

let env = { Harness.Environment.default with unroll = Harness.Environment.Naive 100 }

let throughput ?engine uarch block =
  match engine with
  | Some e -> (
    match Engine.profile e env uarch block with
    | Ok p -> Some p.Harness.Profiler.throughput
    | Error _ -> None)
  | None -> (
    match Harness.Profiler.profile env uarch block with
    | Ok p -> Some p.throughput
    | Error _ -> None)

(** Measured slowdown caused by adding the target to a saturated
    combination. *)
let pressure_delta ?engine (uarch : Uarch.Descriptor.t) (target : Inst.t)
    (combo : Uarch.Port.set) : float option =
  match
    ( throughput ?engine uarch (probe_block target combo),
      throughput ?engine uarch (baseline_block combo) )
  with
  | Some combined, Some baseline -> Some (combined -. baseline)
  | _ -> None

(** Infer the port combination of [target]'s execution micro-op: the
    smallest candidate set whose saturation the target cannot escape.
    [None] when no candidate confines it (its ports lie outside the
    supported blockers, e.g. memory ports). *)
let infer ?engine (uarch : Uarch.Descriptor.t) (target : Inst.t) :
    Uarch.Port.set option =
  let confined =
    List.filter
      (fun combo ->
        (* a confined micro-op adds 1 cycle spread over the combo's
           ports; an escaping one adds (nearly) nothing *)
        let threshold = 0.8 /. float_of_int (Uarch.Port.cardinal combo) in
        match pressure_delta ?engine uarch target combo with
        | Some delta -> delta >= threshold
        | None -> false)
      candidate_combos
  in
  (* the smallest confining set is the port combination *)
  match
    List.sort
      (fun a b -> compare (Uarch.Port.cardinal a) (Uarch.Port.cardinal b))
      confined
  with
  | smallest :: _ -> Some smallest
  | [] -> None

(* The inference report for a battery of forms. *)
type entry = {
  name : string;
  inferred : Uarch.Port.set option;
  expected : Uarch.Port.set option;  (** from the uarch table, for comparison *)
}

let expected_ports (uarch : Uarch.Descriptor.t) (target : Inst.t) =
  let d = Uarch.Descriptor.decompose uarch target in
  List.find_map
    (fun (u : Uarch.Uop.t) ->
      if u.kind = Uarch.Uop.Exec then Some u.ports else None)
    d.uops

let survey ?engine (uarch : Uarch.Descriptor.t)
    (targets : (string * Inst.t) list) : entry list =
  List.map
    (fun (name, target) ->
      {
        name;
        inferred = infer ?engine uarch target;
        expected = expected_ports uarch target;
      })
    targets

(* Targets use non-accumulating (AVX three-operand) forms where they
   exist, so the probe measures port pressure rather than the target's
   own loop-carried latency. *)
let standard_targets : (string * Inst.t) list =
  [
    ("addps", vec3 (Opcode.Fadd Opcode.Ps) (r (Reg.Xmm 13)) (r (Reg.Xmm 14)) (r (Reg.Xmm 15)));
    ("mulps", vec3 (Opcode.Fmul Opcode.Ps) (r (Reg.Xmm 13)) (r (Reg.Xmm 14)) (r (Reg.Xmm 15)));
    ("paddd", vec3 (Opcode.Padd Opcode.I32) (r (Reg.Xmm 13)) (r (Reg.Xmm 14)) (r (Reg.Xmm 15)));
    ("pshufb", vec3 Opcode.Pshufb (r (Reg.Xmm 13)) (r (Reg.Xmm 14)) (r (Reg.Xmm 15)));
    ("imul", imul3 (r Reg.r12) (r Reg.r13) (i 7));
    ("popcnt", popcnt (r Reg.r12) (r Reg.r13));
    ("pslld", mk (Opcode.Psll Opcode.I32) [ r (Reg.Xmm 13); i 1 ]);
  ]

let pp_survey fmt entries =
  Format.fprintf fmt "%-10s %-10s %s@." "form" "inferred" "table";
  List.iter
    (fun e ->
      Format.fprintf fmt "%-10s %-10s %s@." e.name
        (match e.inferred with Some s -> Uarch.Port.name s | None -> "?")
        (match e.expected with Some s -> Uarch.Port.name s | None -> "?"))
    entries
