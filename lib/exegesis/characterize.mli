(** Per-instruction characterisation: measured latency, reciprocal
    throughput and micro-op count per instruction form — the
    per-instruction tables (Agner Fog, uops.info, llvm-exegesis) rebuilt
    on top of the block profiler. *)

type result = {
  form : Benchgen.form;
  latency : float option;  (** cycles; [None] for unchainable forms *)
  rthroughput : float;  (** reciprocal throughput, cycles/instruction *)
  uops : float;  (** unfused micro-ops per instruction *)
}

(** Characterise one form; [None] if neither benchmark could be
    measured. [?engine] routes the microbenchmarks through a supervising
    engine (memoised, fault-tolerant) instead of the bare profiler. *)
val characterize :
  ?engine:Engine.t -> Uarch.Descriptor.t -> Benchgen.form -> result option

(** The full standard-form table for one microarchitecture. *)
val table : ?engine:Engine.t -> Uarch.Descriptor.t -> result list

val pp_row : Format.formatter -> result -> unit
val pp_table : Format.formatter -> result list -> unit
