(** Static out-of-order scheduler shared by the analyzer-style models
    (IACA-like, llvm-mca-like).

    Unlike the ground-truth pipeline this simulator has no architectural
    state: it never sees addresses or data, assumes every load hits L1 (as
    all the modelled tools do), and derives throughput purely from a
    model-supplied micro-op table, register dependences, and port
    contention. Differences between models live entirely in their tables
    and quirk flags. *)

open X86

type uop = {
  ports : Uarch.Port.set;
  latency : int;
  is_load : bool;
}

(** Model-view of one instruction. *)
type entry = {
  uops : uop list;
  eliminated : bool;
  divider_busy : int;  (** cycles the (non-pipelined) divider stays busy *)
  split_fused_loads : bool;
      (** llvm-mca quirk: treat a micro-fused load+op pair as a single
          unit, so the load cannot start before the op's data inputs are
          ready (the mis-scheduling case study) *)
}

type table = Inst.t -> entry

type config = {
  n_ports : int;
  issue_width : int;
}

let flags_root = Reg.num_roots
let n_roots = Reg.num_roots + 1

(* Schedule [iterations] copies of [block]; returns total cycles and the
   schedule of the first [record_iterations] iterations. *)
let run (config : config) (table : table) (block : Inst.t list) ~iterations
    ~record_iterations : int * Model_intf.schedule_entry list =
  let reg_ready = Array.make n_roots 0 in
  let ports = Uarch.Port_schedule.create ~n_ports:config.n_ports in
  let schedule = ref [] in
  let issue_cycle = ref 0 in
  let issued_this_cycle = ref 0 in
  let finish = ref 0 in
  (* Preprocess each static instruction once: the iteration loop replays
     the same block 24..64 times, so the model table, dependence roots
     and the per-uop candidate-port masks (clipped to the machine's
     ports, defaulting to port 0 — the same fallback the pipeline's flat
     tables use) are all hoisted out of it. *)
  let port_mask = (1 lsl config.n_ports) - 1 in
  let entries =
    List.map
      (fun inst ->
        let addr_roots =
          List.concat_map
            (fun op ->
              match op with
              | Operand.Mem m ->
                List.map (fun r -> Reg.root_index (Reg.root r)) (Operand.mem_regs m)
              | _ -> [])
            inst.Inst.operands
        in
        let entry = table inst in
        let masks =
          Array.of_list
            (List.map
               (fun u ->
                 let m = u.ports land port_mask in
                 if m = 0 then 1 else m)
               entry.uops)
        in
        (inst, entry, Array.of_list entry.uops, masks, addr_roots,
         List.map Reg.root_index (Inst.read_roots inst),
         List.map Reg.root_index (Inst.write_roots inst)))
      block
  in
  for iter = 0 to iterations - 1 do
    List.iteri
      (fun inst_index (inst, entry, uops, masks, addr_roots, reads, writes) ->
        (* front end issue bandwidth *)
        let slots = max 1 (List.length entry.uops) in
        for _ = 1 to slots do
          if !issued_this_cycle >= config.issue_width then begin
            incr issue_cycle;
            issued_this_cycle := 0
          end;
          incr issued_this_cycle
        done;
        let renamed_at = !issue_cycle in
        let ready_of roots =
          List.fold_left (fun acc r -> max acc reg_ready.(r)) 0 roots
        in
        let data_ready =
          let base = ready_of reads in
          if Opcode.reads_flags inst.Inst.opcode then
            max base reg_ready.(flags_root)
          else base
        in
        let addr_ready = ready_of addr_roots in
        if entry.eliminated then begin
          let ready =
            if Inst.is_zero_idiom inst then renamed_at
            else max renamed_at data_ready
          in
          List.iter (fun r -> reg_ready.(r) <- ready) writes;
          if Opcode.writes_flags inst.Inst.opcode then
            reg_ready.(flags_root) <- ready;
          if ready > !finish then finish := ready
        end
        else begin
          let earliest = renamed_at + 1 in
          let last_load = ref 0 in
          let prev_exec = ref 0 in
          let result = ref renamed_at in
          for k = 0 to Array.length uops - 1 do
            let u = uops.(k) in
            let ready =
              if u.is_load then
                if entry.split_fused_loads then
                  (* fused view: the whole unit waits for everything *)
                  max earliest (max addr_ready data_ready)
                else max earliest addr_ready
              else max earliest (max data_ready (max !last_load !prev_exec))
            in
            (* earliest available candidate port, with backfill; the
               ascending mask scan keeps the lowest-port tie-break of
               the candidate-list version *)
            let best = ref 0 in
            let best_t = ref max_int in
            let m = ref masks.(k) and p = ref 0 in
            while !m <> 0 do
              if !m land 1 <> 0 then begin
                let t = Uarch.Port_schedule.peek ports ~port:!p ~ready in
                if t < !best_t then begin
                  best_t := t;
                  best := !p
                end
              end;
              incr p;
              m := !m lsr 1
            done;
            let dispatch =
              Uarch.Port_schedule.claim ports ~port:!best ~ready:!best_t
                ~busy:(max 1 entry.divider_busy)
            in
            let complete = dispatch + u.latency in
            if u.is_load then last_load := max !last_load complete
            else prev_exec := complete;
            if complete > !result then result := complete;
            if iter < record_iterations then
              schedule :=
                {
                  Model_intf.inst_index;
                  iteration = iter;
                  port = !best;
                  dispatch;
                  complete;
                }
                :: !schedule
          done;
          List.iter (fun r -> reg_ready.(r) <- !result) writes;
          if Opcode.writes_flags inst.Inst.opcode then
            reg_ready.(flags_root) <- !result;
          if !result > !finish then finish := !result
        end)
      entries
  done;
  (!finish, List.rev !schedule)

(* Steady-state throughput by the two-point method the analyzers
   themselves use (IACA reports the steady-state window width). *)
let throughput (config : config) (table : table) (block : Inst.t list) : float =
  let c1, _ = run config table block ~iterations:32 ~record_iterations:0 in
  let c2, _ = run config table block ~iterations:64 ~record_iterations:0 in
  float_of_int (c2 - c1) /. 32.0

let schedule (config : config) (table : table) (block : Inst.t list) =
  let _, sched = run config table block ~iterations:24 ~record_iterations:24 in
  sched
