(** Deterministic, seed-keyed perturbation of performance-model tables.

    One shared noise source for two consumers: the static analyzer
    models perturb their per-opcode tables (modelling real analyzers'
    table errors), and [lib/refine]'s [--perturb] deliberately breaks
    descriptor entries for the repair loop to recover. All draws are
    pure functions of (seed, entry name): same seed, same noise, on any
    host and in any order.

    The [_named] combinators key on an arbitrary entry-name string; the
    opcode versions are wrappers over the mnemonic and produce
    bit-equal draws. *)

val hash_name : seed:int64 -> string -> int64
(** Stable 64-bit draw for a named table entry under a model seed. *)

val hash : seed:int64 -> X86.Opcode.t -> int64

val latency_named :
  seed:int64 -> fraction:float -> amplitude:float -> string -> int -> int
(** Perturbed latency: a [fraction] of entries are off by up to
    [amplitude] (relative), half low, half high, never below 1. *)

val latency :
  seed:int64 -> fraction:float -> amplitude:float -> X86.Opcode.t -> int -> int

val scale_named :
  seed:int64 -> fraction:float -> amplitude:float -> string -> float
(** Multiplicative cost scale in [1-amplitude/2, 1+amplitude] for
    fractional reciprocal-throughput tables; 1.0 for unperturbed
    entries. *)

val scale :
  seed:int64 -> fraction:float -> amplitude:float -> X86.Opcode.t -> float

val extra_uop_named : seed:int64 -> fraction:float -> string -> bool
(** Whether the table charges an extra micro-op for the entry. *)

val extra_uop : seed:int64 -> fraction:float -> X86.Opcode.t -> bool

val drop_port_named :
  seed:int64 -> fraction:float -> string -> Uarch.Port.set -> Uarch.Port.set
(** Drop one of the entry's alternative ports (incomplete port
    mapping); port sets of one port are left untouched. *)

val drop_port :
  seed:int64 -> fraction:float -> X86.Opcode.t -> Uarch.Port.set -> Uarch.Port.set
