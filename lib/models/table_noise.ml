(** Deterministic per-entry table perturbation.

    Every real analyzer carries idiosyncratic table errors — latencies
    scraped from the wrong manual row, stale entries for new
    microarchitectures, missed special cases. We reproduce this as a
    deterministic perturbation keyed on (model seed, entry name): a
    fixed fraction of entries get their value scaled by a fixed,
    reproducible factor.

    The core combinators are keyed by an arbitrary entry *name* so both
    consumers share one noise source: the static models perturb
    per-opcode-form tables (keyed by mnemonic), and [lib/refine]'s
    [--perturb] breaks descriptor entries (keyed by overlay target
    name). The opcode versions are thin wrappers and produce bit-equal
    draws to the named versions on the mnemonic. *)

open X86

(* Stable hash of a named table entry under a model seed. *)
let hash_name ~seed name =
  Bstats.Rng.next_u64
    (Bstats.Rng.create (Int64.add seed (Bstats.Rng.seed_of_string name)))

let hash ~seed (op : Opcode.t) = hash_name ~seed (Opcode.mnemonic op)

let u01 bits = Int64.to_float (Int64.logand bits 0xFFFFFFL) /. 16777216.0

(* Perturbed latency: a [fraction] of entries are off by up to
   [amplitude] (relative), half of them low, half high. *)
let latency_named ~seed ~fraction ~amplitude name (latency : int) =
  let h = hash_name ~seed name in
  let select = u01 h in
  if select >= fraction then latency
  else begin
    let magnitude = u01 (Int64.shift_right_logical h 24) *. amplitude in
    let sign = if Int64.equal (Int64.logand (Int64.shift_right_logical h 48) 1L) 0L then 1.0 else -1.0 in
    let scaled = float_of_int latency *. (1.0 +. (sign *. magnitude)) in
    max 1 (int_of_float (Float.round scaled))
  end

let latency ~seed ~fraction ~amplitude (op : Opcode.t) lat =
  latency_named ~seed ~fraction ~amplitude (Opcode.mnemonic op) lat

(* Multiplicative float cost scale in [1-amplitude/2, 1+amplitude],
   for models whose costs are fractional reciprocal throughputs. *)
let scale_named ~seed ~fraction ~amplitude name =
  let h = hash_name ~seed:(Int64.add seed 53L) name in
  if u01 h >= fraction then 1.0
  else begin
    let magnitude = u01 (Int64.shift_right_logical h 24) in
    let up = Int64.equal (Int64.logand (Int64.shift_right_logical h 48) 1L) 0L in
    if up then 1.0 +. (magnitude *. amplitude)
    else Float.max 0.2 (1.0 -. (magnitude *. amplitude /. 2.0))
  end

let scale ~seed ~fraction ~amplitude (op : Opcode.t) =
  scale_named ~seed ~fraction ~amplitude (Opcode.mnemonic op)

(* Whether this model's table charges an extra micro-op for the entry
   (a mis-split table entry): this perturbs pure throughput, which
   latency noise alone cannot. *)
let extra_uop_named ~seed ~fraction name =
  let h = hash_name ~seed:(Int64.add seed 101L) name in
  u01 h < fraction

let extra_uop ~seed ~fraction (op : Opcode.t) =
  extra_uop_named ~seed ~fraction (Opcode.mnemonic op)

(* Whether this model's table drops one of the entry's alternative ports
   (modelling an incomplete port mapping). *)
let drop_port_named ~seed ~fraction name (ports : Uarch.Port.set) =
  let h = hash_name ~seed:(Int64.add seed 17L) name in
  if u01 h >= fraction then ports
  else
    match Uarch.Port.to_list ports with
    | [] | [ _ ] -> ports
    | p :: rest ->
      ignore p;
      Uarch.Port.of_list rest

let drop_port ~seed ~fraction (op : Opcode.t) ports =
  drop_port_named ~seed ~fraction (Opcode.mnemonic op) ports
