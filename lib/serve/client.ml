(* Blocking client for the bhive_serve wire protocol — used by
   bhive_load, the tests, and anything else that wants a prediction
   from a running daemon. One request in flight per connection; the
   server answers in order. *)

type t = { fd : Unix.file_descr }

let connect ?(retries = 0) ?(retry_interval = 0.1) path =
  let rec go n =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if n > 0 then begin
        Unix.sleepf retry_interval;
        go (n - 1)
      end
      else
        Error
          (Printf.sprintf "cannot connect to %s: %s" path
             (Unix.error_message e))
  in
  go retries

(* Raw variant: the caller supplies an already-encoded request payload,
   so a load generator replaying the same request thousands of times
   pays the JSON encoding once, not per send. *)
let request_raw t payload : (Wire.response, string) result =
  match
    Wire.write_frame t.fd payload;
    Wire.read_frame t.fd
  with
  | Ok payload -> Wire.response_of_string payload
  | Error Wire.Eof -> Error "connection closed by server"
  | Error (Wire.Malformed msg) -> Error ("malformed response frame: " ^ msg)
  | exception Unix.Unix_error (e, _, _) ->
    Error ("connection error: " ^ Unix.error_message e)

let request t req : (Wire.response, string) result =
  request_raw t (Wire.request_to_string req)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
