(* The bhive_serve wire protocol.

   Frames are length-prefixed binary:

   {v
     "BHSV" | u32 payload_len (LE) | payload bytes
   v}

   and the payload is one compact JSON document. JSON rather than a
   bespoke binary encoding because a request is literally a small
   manifest — the [filters] object is parsed by the same
   [Manifest.Spec] code as a manifest file's, so a daemon answer and a
   CLI answer resolve the measurement environment identically by
   construction. The frame prefix exists so that a reader never has to
   scan for a delimiter and an oversized or garbage payload is
   rejected before any of it is parsed.

   Requests ([op]):
   - ["predict"] — asm (required, AT&T or Intel syntax), uarch short
     name, optional [deadline_ms], optional [block_hex] (hex of the
     encoded block bytes, cross-checked against the parsed asm),
     optional [filters] (manifest filters object).
   - ["stats"] — server and engine counters snapshot.
   - ["ping"] — liveness probe.

   Responses: [{"v":1,"status":"ok","result":...}] carrying the
   canonical outcome object (shared by the server and the load
   generator's verification path — byte-identity between daemon and
   CLI answers is checked against this exact rendering), or
   [{"v":1,"status":"error","error":<kind>,"message":...}] with kind
   one of overloaded | deadline_exceeded | bad_request |
   shutting_down. *)

module Json = Telemetry.Json

let version = 1
let magic = "BHSV"

(* Generous for one basic block + headroom; a frame this size is a
   confused or malicious client, not a real request. *)
let max_frame_len = 1 lsl 22

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let write_frame fd payload =
  let buf = Buffer.create (8 + String.length payload) in
  Buffer.add_string buf magic;
  Store.Codec.u32 buf (String.length payload);
  Buffer.add_string buf payload;
  Store.Eintr.really_write_substring fd (Buffer.contents buf)

type read_error = Eof | Malformed of string

let read_frame fd =
  let hdr = Bytes.create 8 in
  match Store.Eintr.read fd hdr 0 8 with
  | 0 -> Error Eof
  | n ->
    if n < 8 && not (Store.Eintr.really_read fd hdr n (8 - n)) then
      Error (Malformed "truncated frame header")
    else if Bytes.sub_string hdr 0 4 <> magic then
      Error (Malformed "bad frame magic")
    else
      let len = Store.Codec.get_u32 hdr 4 in
      if len > max_frame_len then
        Error (Malformed (Printf.sprintf "oversized frame (%d bytes)" len))
      else
        let b = Bytes.create len in
        if Store.Eintr.really_read fd b 0 len then
          Ok (Bytes.unsafe_to_string b)
        else Error (Malformed "truncated frame payload")

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type predict = {
  asm : string;
  uarch : string;
  deadline_ms : int option;
  block_hex : string option;
  filters : Manifest.Spec.filters;
}

type request = Predict of predict | Stats | Ping

let request_to_json = function
  | Ping ->
    Json.Object [ ("v", Json.Number (float_of_int version)); ("op", Json.String "ping") ]
  | Stats ->
    Json.Object [ ("v", Json.Number (float_of_int version)); ("op", Json.String "stats") ]
  | Predict p ->
    Json.Object
      ([
         ("v", Json.Number (float_of_int version));
         ("op", Json.String "predict");
         ("asm", Json.String p.asm);
         ("uarch", Json.String p.uarch);
       ]
      @ (match p.deadline_ms with
        | Some d -> [ ("deadline_ms", Json.Number (float_of_int d)) ]
        | None -> [])
      @ (match p.block_hex with
        | Some h -> [ ("block_hex", Json.String h) ]
        | None -> [])
      @
      if p.filters = Manifest.Spec.default_filters then []
      else [ ("filters", Manifest.Spec.filters_to_json p.filters) ])

let request_to_string r = Json.to_string ~compact:true (request_to_json r)

let str_field name j =
  Option.bind (Json.member name j) Json.string_value

let int_field name j =
  Option.bind (Json.member name j) Json.number |> Option.map int_of_float

let request_of_string s =
  match Json.parse s with
  | Error msg -> Error ("request is not JSON: " ^ msg)
  | Ok j -> (
    (match int_field "v" j with
    | Some v when v = version -> Ok ()
    | Some v -> Error (Printf.sprintf "unsupported protocol version %d" v)
    | None -> Error "missing protocol version")
    |> function
    | Error _ as e -> e
    | Ok () -> (
      match Option.value ~default:"predict" (str_field "op" j) with
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "predict" -> (
        match str_field "asm" j with
        | None -> Error "predict request missing asm"
        | Some asm -> (
          let filters =
            match Json.member "filters" j with
            | None -> Ok Manifest.Spec.default_filters
            | Some f -> (
              try Ok (Manifest.Spec.filters_of_json f)
              with Failure msg -> Error msg)
          in
          match filters with
          | Error msg -> Error msg
          | Ok filters ->
            Ok
              (Predict
                 {
                   asm;
                   uarch = Option.value ~default:"hsw" (str_field "uarch" j);
                   deadline_ms = int_field "deadline_ms" j;
                   block_hex = str_field "block_hex" j;
                   filters;
                 })))
      | op -> Error (Printf.sprintf "unknown op %S" op)))

(* Resolve a predict request into an engine job — the same parser,
   encoder and filter resolution as the CLI path. *)
let job_of_predict (p : predict) : (Engine.job, string) result =
  match Uarch.All.by_short p.uarch with
  | None -> Error (Printf.sprintf "unknown uarch %S" p.uarch)
  | Some uarch -> (
    match X86.Parser.block p.asm with
    | Error msg -> Error ("cannot parse block: " ^ msg)
    | Ok [] -> Error "empty block"
    | Ok block -> (
      let env = Manifest.Spec.environment_of_filters p.filters in
      let job = { Engine.env; uarch; block } in
      match p.block_hex with
      | None -> Ok job
      | Some hex ->
        let encoded =
          Store.Sha256.to_hex
            (Bytes.to_string (X86.Encoder.encode_block block))
        in
        if String.lowercase_ascii hex = encoded then Ok job
        else
          Error
            (Printf.sprintf
               "block_hex mismatch: asm encodes to %s, request carried %s"
               encoded hex)))

(* ------------------------------------------------------------------ *)
(* Canonical outcome rendering                                         *)
(* ------------------------------------------------------------------ *)

(* One rendering, used by the server for every predict response and by
   the load generator to verify byte-identity against a local engine:
   if the two ever disagree, the bytes differ. *)

let point_json (p : Harness.Profiler.point) =
  Json.Object
    [
      ("unroll", Json.Number (float_of_int p.unroll));
      ( "accepted_cycles",
        match p.accepted_cycles with
        | Some c -> Json.Number (float_of_int c)
        | None -> Json.Null );
      ("best_cycles", Json.Number (float_of_int p.best_cycles));
      ("faults", Json.Number (float_of_int p.faults));
      ("distinct_frames", Json.Number (float_of_int p.distinct_frames));
    ]

let outcome_json (o : Engine.outcome) =
  match o with
  | Ok (p : Harness.Profiler.profile) ->
    Json.Object
      ([
         ("status", Json.String "measured");
         ("accepted", Json.Bool p.accepted);
         ("throughput", Json.Number p.throughput);
       ]
      @ (match p.reject with
        | Some r ->
          [
            ( "reject",
              Json.String
                (Harness.Profiler.failure_to_string
                   (Harness.Profiler.Rejected r)) );
          ]
        | None -> [])
      @ [
          ("large", point_json p.large);
          ( "small",
            match p.small with Some s -> point_json s | None -> Json.Null );
          ( "factors",
            Json.Object
              [
                ("large", Json.Number (float_of_int p.factors.Harness.Unroll.large));
                ("small", Json.Number (float_of_int p.factors.Harness.Unroll.small));
              ] );
        ])
  | Error (Engine.Profiler_failure f) ->
    Json.Object
      [
        ("status", Json.String "failed");
        ("failure", Json.String (Harness.Profiler.failure_to_string f));
      ]
  | Error (Engine.Quarantined q) ->
    Json.Object
      [
        ("status", Json.String "quarantined");
        ("fingerprint", Json.String q.Engine.q_fingerprint);
        ("attempts", Json.Number (float_of_int (List.length q.Engine.q_attempts)));
      ]

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type refusal = Overloaded | Deadline_exceeded | Bad_request | Shutting_down

let refusal_code = function
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Bad_request -> "bad_request"
  | Shutting_down -> "shutting_down"

let refusal_of_code = function
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "bad_request" -> Some Bad_request
  | "shutting_down" -> Some Shutting_down
  | _ -> None

type response =
  | Result of Json.t  (** canonical outcome object *)
  | Refused of refusal * string
  | Stats_reply of Json.t
  | Pong

let response_to_json = function
  | Result r ->
    Json.Object
      [
        ("v", Json.Number (float_of_int version));
        ("status", Json.String "ok");
        ("result", r);
      ]
  | Refused (kind, msg) ->
    Json.Object
      [
        ("v", Json.Number (float_of_int version));
        ("status", Json.String "error");
        ("error", Json.String (refusal_code kind));
        ("message", Json.String msg);
      ]
  | Stats_reply s ->
    Json.Object
      [
        ("v", Json.Number (float_of_int version));
        ("status", Json.String "ok");
        ("stats", s);
      ]
  | Pong ->
    Json.Object
      [
        ("v", Json.Number (float_of_int version));
        ("status", Json.String "ok");
        ("pong", Json.Bool true);
      ]

let response_to_string r = Json.to_string ~compact:true (response_to_json r)

let response_of_string s =
  match Json.parse s with
  | Error msg -> Error ("response is not JSON: " ^ msg)
  | Ok j -> (
    match str_field "status" j with
    | Some "ok" -> (
      match (Json.member "result" j, Json.member "stats" j) with
      | Some r, _ -> Ok (Result r)
      | None, Some s -> Ok (Stats_reply s)
      | None, None -> (
        match Json.member "pong" j with
        | Some _ -> Ok Pong
        | None -> Error "ok response carries neither result, stats nor pong"))
    | Some "error" -> (
      let msg = Option.value ~default:"" (str_field "message" j) in
      match Option.bind (str_field "error" j) refusal_of_code with
      | Some kind -> Ok (Refused (kind, msg))
      | None -> Error "error response with unknown error kind")
    | _ -> Error "response missing status")
