(* The bhive_serve wire protocol.

   Frames are length-prefixed binary:

   {v
     "BHSV" | u32 payload_len (LE) | payload bytes
   v}

   and the payload is one compact JSON document. JSON rather than a
   bespoke binary encoding because a request is literally a small
   manifest — the [filters] object is parsed by the same
   [Manifest.Spec] code as a manifest file's, so a daemon answer and a
   CLI answer resolve the measurement environment identically by
   construction. The frame prefix exists so that a reader never has to
   scan for a delimiter and an oversized or garbage payload is
   rejected before any of it is parsed.

   Requests ([op]):
   - ["predict"] — asm (required, AT&T or Intel syntax), uarch short
     name, optional [deadline_ms], optional [block_hex] (hex of the
     encoded block bytes, cross-checked against the parsed asm),
     optional [filters] (manifest filters object).
   - ["predict_batch"] (v2 only) — shared uarch / deadline_ms /
     filters plus a non-empty [blocks] array of [{asm, block_hex?}],
     amortising framing and syscalls over many blocks. Each block is
     admitted, coalesced, shed and answered independently.
   - ["stats"] — server and engine counters snapshot.
   - ["ping"] — liveness probe.

   The protocol version is per-request: the server accepts [v] of 1 or
   2 on any connection, so a v1 client never has to change, and a v2
   client can mix single and batch requests on one socket. Responses
   echo the request's version.

   Responses: [{"v":1,"status":"ok","result":...}] carrying the
   canonical outcome object (shared by the server and the load
   generator's verification path — byte-identity between daemon and
   CLI answers is checked against this exact rendering), or
   [{"v":1,"status":"error","error":<kind>,"message":...}] with kind
   one of overloaded | deadline_exceeded | bad_request |
   shutting_down. A batch answer is
   [{"v":2,"status":"ok","results":[<slot>...]}] where each slot is
   the version-less body of a single-predict response in request
   order — the slot's ["result"] object is byte-identical to what a v1
   ["predict"] of the same block returns. *)

module Json = Telemetry.Json

let version = 1
let version_batch = 2
let magic = "BHSV"

(* Generous for one basic block + headroom; a frame this size is a
   confused or malicious client, not a real request. *)
let max_frame_len = 1 lsl 22

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let write_frame fd payload =
  let buf = Buffer.create (8 + String.length payload) in
  Buffer.add_string buf magic;
  Store.Codec.u32 buf (String.length payload);
  Buffer.add_string buf payload;
  Store.Eintr.really_write_substring fd (Buffer.contents buf)

type read_error = Eof | Malformed of string

let read_frame fd =
  let hdr = Bytes.create 8 in
  match Store.Eintr.read fd hdr 0 8 with
  | 0 -> Error Eof
  | n ->
    if n < 8 && not (Store.Eintr.really_read fd hdr n (8 - n)) then
      Error (Malformed "truncated frame header")
    else if Bytes.sub_string hdr 0 4 <> magic then
      Error (Malformed "bad frame magic")
    else
      let len = Store.Codec.get_u32 hdr 4 in
      if len > max_frame_len then
        Error (Malformed (Printf.sprintf "oversized frame (%d bytes)" len))
      else
        let b = Bytes.create len in
        if Store.Eintr.really_read fd b 0 len then
          Ok (Bytes.unsafe_to_string b)
        else Error (Malformed "truncated frame payload")

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type predict = {
  asm : string;
  uarch : string;
  deadline_ms : int option;
  block_hex : string option;
  filters : Manifest.Spec.filters;
}

(* One batched block: the asm plus its optional encoded-bytes
   cross-check. uarch, deadline and filters are shared batch-wide —
   a client mixing uarchs sends several batches. *)
type batch_block = { bb_asm : string; bb_block_hex : string option }

type predict_batch = {
  pb_uarch : string;
  pb_deadline_ms : int option;
  pb_filters : Manifest.Spec.filters;
  pb_blocks : batch_block list;
}

type request = Predict of predict | Predict_batch of predict_batch | Stats | Ping

(* Expand one batch slot into the equivalent single-predict request —
   admission and rendering then share every code path with v1, which
   is what makes v1/v2 byte-identity hold by construction. *)
let predict_of_batch_block pb bb =
  {
    asm = bb.bb_asm;
    uarch = pb.pb_uarch;
    deadline_ms = pb.pb_deadline_ms;
    block_hex = bb.bb_block_hex;
    filters = pb.pb_filters;
  }

let request_to_json = function
  | Ping ->
    Json.Object [ ("v", Json.Number (float_of_int version)); ("op", Json.String "ping") ]
  | Stats ->
    Json.Object [ ("v", Json.Number (float_of_int version)); ("op", Json.String "stats") ]
  | Predict p ->
    Json.Object
      ([
         ("v", Json.Number (float_of_int version));
         ("op", Json.String "predict");
         ("asm", Json.String p.asm);
         ("uarch", Json.String p.uarch);
       ]
      @ (match p.deadline_ms with
        | Some d -> [ ("deadline_ms", Json.Number (float_of_int d)) ]
        | None -> [])
      @ (match p.block_hex with
        | Some h -> [ ("block_hex", Json.String h) ]
        | None -> [])
      @
      if p.filters = Manifest.Spec.default_filters then []
      else [ ("filters", Manifest.Spec.filters_to_json p.filters) ])
  | Predict_batch pb ->
    Json.Object
      ([
         ("v", Json.Number (float_of_int version_batch));
         ("op", Json.String "predict_batch");
         ("uarch", Json.String pb.pb_uarch);
       ]
      @ (match pb.pb_deadline_ms with
        | Some d -> [ ("deadline_ms", Json.Number (float_of_int d)) ]
        | None -> [])
      @ (if pb.pb_filters = Manifest.Spec.default_filters then []
         else [ ("filters", Manifest.Spec.filters_to_json pb.pb_filters) ])
      @ [
          ( "blocks",
            Json.List
              (List.map
                 (fun bb ->
                   Json.Object
                     (("asm", Json.String bb.bb_asm)
                     ::
                     (match bb.bb_block_hex with
                     | Some h -> [ ("block_hex", Json.String h) ]
                     | None -> [])))
                 pb.pb_blocks) );
        ])

let request_to_string r = Json.to_string ~compact:true (request_to_json r)

let str_field name j =
  Option.bind (Json.member name j) Json.string_value

let int_field name j =
  Option.bind (Json.member name j) Json.number |> Option.map int_of_float

let filters_field j =
  match Json.member "filters" j with
  | None -> Ok Manifest.Spec.default_filters
  | Some f -> (
    try Ok (Manifest.Spec.filters_of_json f) with Failure msg -> Error msg)

let request_of_string s =
  match Json.parse s with
  | Error msg -> Error ("request is not JSON: " ^ msg)
  | Ok j -> (
    (match int_field "v" j with
    | Some v when v = version || v = version_batch -> Ok v
    | Some v -> Error (Printf.sprintf "unsupported protocol version %d" v)
    | None -> Error "missing protocol version")
    |> function
    | Error _ as e -> e
    | Ok v -> (
      match Option.value ~default:"predict" (str_field "op" j) with
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "predict" -> (
        match str_field "asm" j with
        | None -> Error "predict request missing asm"
        | Some asm -> (
          match filters_field j with
          | Error msg -> Error msg
          | Ok filters ->
            Ok
              (Predict
                 {
                   asm;
                   uarch = Option.value ~default:"hsw" (str_field "uarch" j);
                   deadline_ms = int_field "deadline_ms" j;
                   block_hex = str_field "block_hex" j;
                   filters;
                 })))
      | "predict_batch" -> (
        if v < version_batch then
          Error
            (Printf.sprintf "predict_batch requires protocol version %d"
               version_batch)
        else
          match Json.member "blocks" j with
          | None -> Error "predict_batch request missing blocks"
          | Some (Json.List []) -> Error "predict_batch with empty blocks"
          | Some (Json.List items) -> (
            let blocks =
              List.fold_left
                (fun acc item ->
                  match acc with
                  | Error _ as e -> e
                  | Ok acc -> (
                    match str_field "asm" item with
                    | None -> Error "batch block missing asm"
                    | Some asm ->
                      Ok
                        ({ bb_asm = asm; bb_block_hex = str_field "block_hex" item }
                        :: acc)))
                (Ok []) items
            in
            match blocks with
            | Error msg -> Error msg
            | Ok rev_blocks -> (
              match filters_field j with
              | Error msg -> Error msg
              | Ok filters ->
                Ok
                  (Predict_batch
                     {
                       pb_uarch =
                         Option.value ~default:"hsw" (str_field "uarch" j);
                       pb_deadline_ms = int_field "deadline_ms" j;
                       pb_filters = filters;
                       pb_blocks = List.rev rev_blocks;
                     })))
          | Some _ -> Error "predict_batch blocks must be an array")
      | op -> Error (Printf.sprintf "unknown op %S" op)))

(* Resolve a predict request into an engine job — the same parser,
   encoder and filter resolution as the CLI path. *)
let job_of_predict (p : predict) : (Engine.job, string) result =
  match Uarch.All.by_short p.uarch with
  | None -> Error (Printf.sprintf "unknown uarch %S" p.uarch)
  | Some uarch -> (
    match X86.Parser.block p.asm with
    | Error msg -> Error ("cannot parse block: " ^ msg)
    | Ok [] -> Error "empty block"
    | Ok block -> (
      let env = Manifest.Spec.environment_of_filters p.filters in
      let job = { Engine.env; uarch; block } in
      match p.block_hex with
      | None -> Ok job
      | Some hex ->
        let encoded =
          Store.Sha256.to_hex
            (Bytes.to_string (X86.Encoder.encode_block block))
        in
        if String.lowercase_ascii hex = encoded then Ok job
        else
          Error
            (Printf.sprintf
               "block_hex mismatch: asm encodes to %s, request carried %s"
               encoded hex)))

(* ------------------------------------------------------------------ *)
(* Canonical outcome rendering                                         *)
(* ------------------------------------------------------------------ *)

(* One rendering, used by the server for every predict response and by
   the load generator to verify byte-identity against a local engine:
   if the two ever disagree, the bytes differ. *)

let point_json (p : Harness.Profiler.point) =
  Json.Object
    [
      ("unroll", Json.Number (float_of_int p.unroll));
      ( "accepted_cycles",
        match p.accepted_cycles with
        | Some c -> Json.Number (float_of_int c)
        | None -> Json.Null );
      ("best_cycles", Json.Number (float_of_int p.best_cycles));
      ("faults", Json.Number (float_of_int p.faults));
      ("distinct_frames", Json.Number (float_of_int p.distinct_frames));
    ]

let outcome_json (o : Engine.outcome) =
  match o with
  | Ok (p : Harness.Profiler.profile) ->
    Json.Object
      ([
         ("status", Json.String "measured");
         ("accepted", Json.Bool p.accepted);
         ("throughput", Json.Number p.throughput);
       ]
      @ (match p.reject with
        | Some r ->
          [
            ( "reject",
              Json.String
                (Harness.Profiler.failure_to_string
                   (Harness.Profiler.Rejected r)) );
          ]
        | None -> [])
      @ [
          ("large", point_json p.large);
          ( "small",
            match p.small with Some s -> point_json s | None -> Json.Null );
          ( "factors",
            Json.Object
              [
                ("large", Json.Number (float_of_int p.factors.Harness.Unroll.large));
                ("small", Json.Number (float_of_int p.factors.Harness.Unroll.small));
              ] );
        ])
  | Error (Engine.Profiler_failure f) ->
    Json.Object
      [
        ("status", Json.String "failed");
        ("failure", Json.String (Harness.Profiler.failure_to_string f));
      ]
  | Error (Engine.Quarantined q) ->
    Json.Object
      [
        ("status", Json.String "quarantined");
        ("fingerprint", Json.String q.Engine.q_fingerprint);
        ("attempts", Json.Number (float_of_int (List.length q.Engine.q_attempts)));
      ]

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type refusal = Overloaded | Deadline_exceeded | Bad_request | Shutting_down

let refusal_code = function
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Bad_request -> "bad_request"
  | Shutting_down -> "shutting_down"

let refusal_of_code = function
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "bad_request" -> Some Bad_request
  | "shutting_down" -> Some Shutting_down
  | _ -> None

type response =
  | Result of Json.t  (** canonical outcome object *)
  | Refused of refusal * string
  | Stats_reply of Json.t
  | Pong
  | Results of response list
      (** v2 batch answer: one [Result] or [Refused] slot per batch
          block, in request order *)

(* The version-less body of a single-predict answer — a batch slot.
   Sharing these fields with the top-level v1 rendering is what makes
   the "result" object of a batch slot byte-identical to the v1
   response for the same block. *)
let slot_fields = function
  | Result r -> [ ("status", Json.String "ok"); ("result", r) ]
  | Refused (kind, msg) ->
    [
      ("status", Json.String "error");
      ("error", Json.String (refusal_code kind));
      ("message", Json.String msg);
    ]
  | Stats_reply s -> [ ("status", Json.String "ok"); ("stats", s) ]
  | Pong -> [ ("status", Json.String "ok"); ("pong", Json.Bool true) ]
  | Results _ -> invalid_arg "Wire.slot_fields: nested batch"

let response_to_json = function
  | Results slots ->
    Json.Object
      [
        ("v", Json.Number (float_of_int version_batch));
        ("status", Json.String "ok");
        ("results", Json.List (List.map (fun s -> Json.Object (slot_fields s)) slots));
      ]
  | r -> Json.Object (("v", Json.Number (float_of_int version)) :: slot_fields r)

let response_to_string r = Json.to_string ~compact:true (response_to_json r)

let slot_of_json j =
  match str_field "status" j with
  | Some "ok" -> (
    match (Json.member "result" j, Json.member "stats" j) with
    | Some r, _ -> Ok (Result r)
    | None, Some s -> Ok (Stats_reply s)
    | None, None -> (
      match Json.member "pong" j with
      | Some _ -> Ok Pong
      | None -> Error "ok response carries neither result, stats nor pong"))
  | Some "error" -> (
    let msg = Option.value ~default:"" (str_field "message" j) in
    match Option.bind (str_field "error" j) refusal_of_code with
    | Some kind -> Ok (Refused (kind, msg))
    | None -> Error "error response with unknown error kind")
  | _ -> Error "response missing status"

let response_of_string s =
  match Json.parse s with
  | Error msg -> Error ("response is not JSON: " ^ msg)
  | Ok j -> (
    match Json.member "results" j with
    | Some (Json.List slots) ->
      List.fold_left
        (fun acc slot ->
          match acc with
          | Error _ as e -> e
          | Ok acc -> (
            match slot_of_json slot with
            | Ok s -> Ok (s :: acc)
            | Error _ as e -> e))
        (Ok []) slots
      |> Result.map (fun rev -> Results (List.rev rev))
    | Some _ -> Error "results must be an array"
    | None -> slot_of_json j)
