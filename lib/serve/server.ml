(* The bhive_serve daemon core: a Unix-socket server in front of one
   engine + store, built so overload degrades into typed refusals
   instead of hangs.

   Thread layout — exactly one thread ever touches the engine:

   - the caller of [run] becomes the acceptor: accepts connections
     (with a short poll timeout so a drain flag is noticed promptly)
     and spawns one handler thread per connection;
   - handler threads parse requests, admit them into the bounded
     queue (or refuse: Overloaded / Shutting_down / Bad_request),
     block on their waiter until the dispatcher fulfils it, and write
     the response under a send timeout so a slow client cannot wedge
     a dispatcher result;
   - the dispatcher thread owns the engine (Engine.run_batch's memo
     cache is submitting-thread-only): it pops up to [batch_max]
     queued entries, sheds the expired ones, answers warm ones via
     Engine.peek, batches the rest through the engine, and fulfils
     every waiter.

   Coalescing: [inflight] maps job fingerprint -> entry for every
   queued or executing entry. A request whose fingerprint is already
   in flight attaches as a waiter (coalesced++) instead of occupying a
   queue slot. The entry is removed from the map atomically with
   taking its waiter list, so a late request can never attach to an
   already-fulfilled entry.

   Drain: SIGTERM/SIGINT set a flag. The acceptor stops accepting and
   returns; queued work is finished if it fits inside the drain grace
   period and shed with Shutting_down otherwise; telemetry is flushed
   by the caller after [run] returns. *)

module Json = Telemetry.Json

type config = {
  socket_path : string;
  queue_capacity : int;
  batch_max : int;
  idle_timeout : float;  (** seconds a connection may sit between requests *)
  write_timeout : float;  (** slow-client response-write budget, seconds *)
  drain_grace : float;  (** seconds to finish queued work after SIGTERM *)
}

let default_config socket_path =
  {
    socket_path;
    queue_capacity = 256;
    batch_max = 64;
    idle_timeout = 30.0;
    write_timeout = 10.0;
    drain_grace = 5.0;
  }

type counters = {
  mutable connections : int;
  mutable requests : int;  (** predict requests that reached admission *)
  mutable accepted : int;  (** entries admitted into the queue *)
  mutable coalesced : int;  (** requests attached to an in-flight entry *)
  mutable completed : int;  (** requests answered with a result *)
  mutable warm_hits : int;  (** entries answered from memo/store via peek *)
  mutable executed : int;  (** entries resolved through Engine.run_batch *)
  mutable shed_overload : int;  (** refused at admission: queue full *)
  mutable shed_deadline : int;  (** shed after accept: deadline expired *)
  mutable shed_drain : int;  (** shed after accept: drain grace exceeded *)
  mutable bad_requests : int;
  mutable write_timeouts : int;
}

type waiter = {
  w_mutex : Mutex.t;
  w_cond : Condition.t;
  mutable w_reply : Wire.response option;
}

type entry = {
  fp : string;
  job : Engine.job;
  deadline_ns : int64 option;  (** absolute, Trace.now_ns clock *)
  mutable waiters : waiter list;
}

type t = {
  cfg : config;
  engine : Engine.t;
  listen_fd : Unix.file_descr;
  qmutex : Mutex.t;
  qcond : Condition.t;
  queue : entry Queue.t;
  inflight : (string, entry) Hashtbl.t;
  c : counters;
  draining : bool Atomic.t;
  mutable drain_until_ns : int64;
  mutable busy : int;  (** admitted requests not yet written back *)
  gate : (unit -> unit) option;
      (** test hook, called at the top of every dispatch cycle *)
}

let now_ns () = Telemetry.Trace.now_ns ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create ?(config : config option) ?gate ~engine socket_path =
  let cfg =
    match config with Some c -> c | None -> default_config socket_path
  in
  (* a stale socket file from a killed server would make bind fail;
     remove it — the advisory store locks, not the socket file, are
     what serialises multi-process access *)
  (match Unix.lstat cfg.socket_path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink cfg.socket_path
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" cfg.socket_path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 128;
  (* short accept timeout: the accept loop is also the drain poll *)
  Unix.setsockopt_float listen_fd Unix.SO_RCVTIMEO 0.25;
  {
    cfg;
    engine;
    listen_fd;
    qmutex = Mutex.create ();
    qcond = Condition.create ();
    queue = Queue.create ();
    inflight = Hashtbl.create 256;
    c =
      {
        connections = 0;
        requests = 0;
        accepted = 0;
        coalesced = 0;
        completed = 0;
        warm_hits = 0;
        executed = 0;
        shed_overload = 0;
        shed_deadline = 0;
        shed_drain = 0;
        bad_requests = 0;
        write_timeouts = 0;
      };
    draining = Atomic.make false;
    drain_until_ns = Int64.max_int;
    busy = 0;
    gate;
  }

let stats_json t =
  let c, queued, inflight =
    with_lock t.qmutex (fun () ->
        ( { t.c with connections = t.c.connections },
          Queue.length t.queue,
          Hashtbl.length t.inflight ))
  in
  let e = Engine.stats t.engine in
  let n name v = (name, Json.Number (float_of_int v)) in
  Json.Object
    [
      ( "serving",
        Json.Object
          [
            n "connections" c.connections;
            n "requests" c.requests;
            n "accepted" c.accepted;
            n "coalesced" c.coalesced;
            n "completed" c.completed;
            n "warm_hits" c.warm_hits;
            n "executed" c.executed;
            n "shed_overload" c.shed_overload;
            n "shed_deadline" c.shed_deadline;
            n "shed_drain" c.shed_drain;
            n "bad_requests" c.bad_requests;
            n "write_timeouts" c.write_timeouts;
            n "queued" queued;
            n "inflight" inflight;
          ] );
      ( "engine",
        Json.Object
          [
            n "profiler_calls" e.Engine.profiler_calls;
            n "store_hits" e.Engine.store_hits;
            n "store_misses" e.Engine.store_misses;
            n "store_writes" e.Engine.store_writes;
            n "cache_hits" e.Engine.cache_hits;
            n "executed" e.Engine.executed;
          ] );
    ]

(* Fulfil every waiter of [entry] with [reply], detaching the entry
   from the coalescing map first (atomically with taking the waiter
   list). *)
let fulfil t entry reply =
  let ws =
    with_lock t.qmutex (fun () ->
        Hashtbl.remove t.inflight entry.fp;
        let ws = entry.waiters in
        entry.waiters <- [];
        (match reply with
        | Wire.Result _ -> t.c.completed <- t.c.completed + List.length ws
        | _ -> ());
        ws)
  in
  List.iter
    (fun w ->
      with_lock w.w_mutex (fun () ->
          w.w_reply <- Some reply;
          Condition.signal w.w_cond))
    ws

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                          *)
(* ------------------------------------------------------------------ *)

let dispatcher_cycle t =
  (match t.gate with Some g -> g () | None -> ());
  let batch =
    with_lock t.qmutex (fun () ->
        while Queue.is_empty t.queue && not (Atomic.get t.draining) do
          Condition.wait t.qcond t.qmutex
        done;
        if Queue.is_empty t.queue then None
        else begin
          let n = min t.cfg.batch_max (Queue.length t.queue) in
          Some (List.init n (fun _ -> Queue.pop t.queue))
        end)
  in
  match batch with
  | None -> false
  | Some entries ->
    let now = now_ns () in
    let drain_cut =
      if Atomic.get t.draining && now > t.drain_until_ns then `Shed else `Run
    in
    let runnable =
      List.filter
        (fun e ->
          match drain_cut with
          | `Shed ->
            with_lock t.qmutex (fun () ->
                t.c.shed_drain <- t.c.shed_drain + 1);
            fulfil t e
              (Wire.Refused (Wire.Shutting_down, "drain deadline exceeded"));
            false
          | `Run -> (
            match e.deadline_ns with
            | Some d when now > d ->
              with_lock t.qmutex (fun () ->
                  t.c.shed_deadline <- t.c.shed_deadline + 1);
              fulfil t e
                (Wire.Refused
                   (Wire.Deadline_exceeded, "deadline expired before dispatch"));
              false
            | _ -> true))
        entries
    in
    (* warm fast path: memo/store probe answers without a batch slot *)
    let cold =
      List.filter
        (fun e ->
          match Engine.peek t.engine e.job with
          | Some outcome ->
            with_lock t.qmutex (fun () ->
                t.c.warm_hits <- t.c.warm_hits + 1);
            fulfil t e (Wire.Result (Wire.outcome_json outcome));
            false
          | None -> true)
        runnable
    in
    (match cold with
    | [] -> ()
    | _ ->
      let batch = Engine.run_batch t.engine (List.map (fun e -> e.job) cold) in
      with_lock t.qmutex (fun () ->
          t.c.executed <- t.c.executed + List.length cold);
      List.iteri
        (fun i e ->
          fulfil t e (Wire.Result (Wire.outcome_json batch.Engine.outcomes.(i))))
        cold);
    true

let rec dispatcher_loop t = if dispatcher_cycle t then dispatcher_loop t

(* ------------------------------------------------------------------ *)
(* Admission and handlers                                              *)
(* ------------------------------------------------------------------ *)

let submit_and_wait t (job : Engine.job) deadline_ms =
  let fp = Engine.fingerprint job in
  let w =
    { w_mutex = Mutex.create (); w_cond = Condition.create (); w_reply = None }
  in
  let admitted =
    with_lock t.qmutex (fun () ->
        t.c.requests <- t.c.requests + 1;
        if Atomic.get t.draining then
          `Refuse (Wire.Refused (Wire.Shutting_down, "server is draining"))
        else
          match Hashtbl.find_opt t.inflight fp with
          | Some entry ->
            entry.waiters <- w :: entry.waiters;
            t.c.coalesced <- t.c.coalesced + 1;
            t.busy <- t.busy + 1;
            `Wait
          | None ->
            if Queue.length t.queue >= t.cfg.queue_capacity then begin
              t.c.shed_overload <- t.c.shed_overload + 1;
              `Refuse
                (Wire.Refused
                   ( Wire.Overloaded,
                     Printf.sprintf "queue full (%d entries)"
                       t.cfg.queue_capacity ))
            end
            else begin
              let deadline_ns =
                Option.map
                  (fun ms ->
                    Int64.add (now_ns ()) (Int64.of_int (ms * 1_000_000)))
                  deadline_ms
              in
              let entry = { fp; job; deadline_ns; waiters = [ w ] } in
              Hashtbl.replace t.inflight fp entry;
              Queue.push entry t.queue;
              t.c.accepted <- t.c.accepted + 1;
              t.busy <- t.busy + 1;
              Condition.signal t.qcond;
              `Wait
            end)
  in
  match admitted with
  | `Refuse r -> (r, false)
  | `Wait ->
    ( with_lock w.w_mutex (fun () ->
          while w.w_reply = None do
            Condition.wait w.w_cond w.w_mutex
          done;
          Option.get w.w_reply),
      true )

let send_response t fd response =
  match Wire.write_frame fd (Wire.response_to_string response) with
  | () -> true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    with_lock t.qmutex (fun () ->
        t.c.write_timeouts <- t.c.write_timeouts + 1);
    false
  | exception Unix.Unix_error (_, _, _) -> false

let handle_connection t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.write_timeout;
  let finished = ref false in
  (try
     while not !finished do
       match Wire.read_frame fd with
       | Error Wire.Eof -> finished := true
       | Error (Wire.Malformed msg) ->
         (* framing is broken; answer if possible, then hang up *)
         ignore (send_response t fd (Wire.Refused (Wire.Bad_request, msg)));
         finished := true
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
         (* idle timeout between requests *)
         finished := true
       | Ok payload -> (
         match Wire.request_of_string payload with
         | Error msg ->
           with_lock t.qmutex (fun () ->
               t.c.bad_requests <- t.c.bad_requests + 1);
           if not (send_response t fd (Wire.Refused (Wire.Bad_request, msg)))
           then finished := true
         | Ok Wire.Ping ->
           if not (send_response t fd Wire.Pong) then finished := true
         | Ok Wire.Stats ->
           if not (send_response t fd (Wire.Stats_reply (stats_json t))) then
             finished := true
         | Ok (Wire.Predict p) -> (
           match Wire.job_of_predict p with
           | Error msg ->
             with_lock t.qmutex (fun () ->
                 t.c.bad_requests <- t.c.bad_requests + 1);
             if not (send_response t fd (Wire.Refused (Wire.Bad_request, msg)))
             then finished := true
           | Ok job ->
             let reply, waited = submit_and_wait t job p.deadline_ms in
             let ok = send_response t fd reply in
             if waited then
               with_lock t.qmutex (fun () -> t.busy <- t.busy - 1);
             if not ok then finished := true))
     done
   with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let request_drain t = Atomic.set t.draining true

let install_signal_handlers t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let drain = Sys.Signal_handle (fun _ -> request_drain t) in
  Sys.set_signal Sys.sigterm drain;
  Sys.set_signal Sys.sigint drain

(* Accept loop; returns when draining. The SO_RCVTIMEO poll bounds how
   long a drain request waits on an idle listener. *)
let accept_loop t =
  let continue = ref true in
  while !continue do
    if Atomic.get t.draining then continue := false
    else
      match Store.Eintr.intr (fun () -> Unix.accept ~cloexec:true t.listen_fd) with
      | fd, _ ->
        with_lock t.qmutex (fun () ->
            t.c.connections <- t.c.connections + 1);
        ignore (Thread.create (fun () -> handle_connection t fd) ())
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> continue := false
  done

(* Wait (bounded) for handler threads to finish writing fulfilled
   responses, so a drain does not exit with results still unsent. *)
let await_quiescent t deadline_ns =
  let rec go () =
    let busy = with_lock t.qmutex (fun () -> t.busy) in
    if busy > 0 && now_ns () < deadline_ns then begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* Run until drained: blocks the calling thread in the accept loop and
   returns once the queue is drained (or shed) and responses are
   written. The caller flushes telemetry and exits. *)
let run ?(signals = true) t =
  if signals then install_signal_handlers t;
  let dispatcher = Thread.create (fun () -> dispatcher_loop t) () in
  accept_loop t;
  (* drain: the grace period starts when the drain begins *)
  t.drain_until_ns <-
    Int64.add (now_ns ())
      (Int64.of_float (t.cfg.drain_grace *. 1e9));
  with_lock t.qmutex (fun () -> Condition.broadcast t.qcond);
  Thread.join dispatcher;
  await_quiescent t t.drain_until_ns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())

let counters t = t.c
let engine t = t.engine
