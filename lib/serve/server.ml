(* The bhive_serve daemon core: a Unix-socket server in front of a
   sharded pool of engines over one shared store, built so overload
   degrades into typed refusals instead of hangs.

   Thread layout — per engine, exactly one domain ever touches it:

   - the caller of [run] becomes the acceptor: accepts connections
     (with a short poll timeout so a drain flag is noticed promptly)
     and spawns one handler thread per connection;
   - handler threads parse requests (through a resolution cache, so
     the x86 parser and the fingerprint sha256 run once per unique
     block), answer repeats of already-computed blocks straight from
     a rendered-answer cache, admit the rest into the bounded
     per-shard queues (or refuse: Overloaded / Shutting_down /
     Bad_request), block on their waiter until a dispatcher fulfils
     it, and write the response under a send timeout so a slow client
     cannot wedge a dispatcher result;
   - one dispatcher *domain* per shard owns that shard's engine
     (Engine.run_batch's memo cache is submitting-thread-only, and an
     engine created with [~jobs:1] executes its batch inline on the
     calling domain, so each dispatcher domain gets its own
     [Pipeline.Batch] machine through the existing Domain.DLS
     discipline): it pops up to [batch_max] queued entries, sheds the
     expired ones, answers warm ones via Engine.peek, micro-batches
     the rest through [Engine.run_batch], and fulfils every waiter.

   Sharding: requests are routed by the hash of the job fingerprint,
   so every request for a given block lands on the same shard — which
   is exactly what makes coalescing still exact with N dispatchers,
   and what makes responses independent of the pool size: the answer
   to a job depends only on the job, never on which shard computed it.
   The engines share ONE store handle (the store's cross-process file
   locks are per-process; see Engine.create's [?store]).

   Coalescing: each shard's [inflight] maps job fingerprint -> entry
   for every queued or executing entry of that shard. A request whose
   fingerprint is already in flight attaches as a waiter (coalesced++)
   instead of occupying a queue slot. The entry is removed from the
   map atomically with taking its waiter list — on every fulfilment
   path, including deadline and drain sheds — so a late request can
   never attach to an already-dead entry.

   Drain: SIGTERM/SIGINT set a flag. The acceptor stops accepting and
   returns; queued work is finished if it fits inside the drain grace
   period and shed with Shutting_down otherwise; telemetry is flushed
   by the caller after [run] returns. *)

module Json = Telemetry.Json

type config = {
  socket_path : string;
  queue_capacity : int;
      (** total across the pool; each shard gets an equal slice *)
  batch_max : int;  (** micro-batch ceiling per dispatch cycle *)
  idle_timeout : float;  (** seconds a connection may sit between requests *)
  write_timeout : float;  (** slow-client response-write budget, seconds *)
  drain_grace : float;  (** seconds to finish queued work after SIGTERM *)
}

let default_config socket_path =
  {
    socket_path;
    queue_capacity = 256;
    batch_max = 64;
    idle_timeout = 30.0;
    write_timeout = 10.0;
    drain_grace = 5.0;
  }

type counters = {
  mutable connections : int;
  mutable requests : int;
      (** predict requests handled (admitted or answered from cache) *)
  mutable accepted : int;  (** entries admitted into a queue *)
  mutable coalesced : int;  (** requests attached to an in-flight entry *)
  mutable completed : int;  (** requests answered with a result *)
  mutable warm_hits : int;
      (** requests answered without executing: the handler's answer
          cache or the dispatcher's memo/store peek *)
  mutable executed : int;  (** entries resolved through Engine.run_batch *)
  mutable shed_overload : int;  (** refused at admission: queue full *)
  mutable shed_deadline : int;  (** shed after accept: deadline expired *)
  mutable shed_drain : int;  (** shed after accept: drain grace exceeded *)
  mutable bad_requests : int;
  mutable write_timeouts : int;
}

type waiter = {
  w_mutex : Mutex.t;
  w_cond : Condition.t;
  mutable w_reply : Wire.response option;
}

type entry = {
  fp : string;
  job : Engine.job;
  mutable deadline_ns : int64 option;
      (** absolute, Trace.now_ns clock; always the LOOSEST deadline
          across every attached waiter ([None] = no deadline), so an
          entry is shed only when no waiter could still use the
          answer — a client that attached with no (or a longer)
          deadline is never refused on account of the first
          requester's. Mutated under the shard mutex. *)
  mutable waiters : waiter list;
}

type shard = {
  s_engine : Engine.t;
  s_mutex : Mutex.t;
  s_cond : Condition.t;
  s_queue : entry Queue.t;
  s_inflight : (string, entry) Hashtbl.t;
  s_capacity : int;
}

type t = {
  cfg : config;
  shards : shard array;
  listen_fd : Unix.file_descr;
  cmutex : Mutex.t;
      (** guards [c] and [busy]; lock order is shard mutex first,
          [cmutex] second — never the reverse *)
  c : counters;
  draining : bool Atomic.t;
  mutable drain_until_ns : int64;
  mutable busy : int;  (** admitted requests not yet written back *)
  rmutex : Mutex.t;
      (** guards [resolved] and [answers]; a leaf lock — never taken
          while holding it *)
  resolved :
    ( string * string * string option * Manifest.Spec.filters,
      (Engine.job * string, string) result )
    Hashtbl.t;
      (** request resolution cache: (uarch, asm, block_hex, filters) —
          everything that determines the job, deadline excluded — to
          the parsed job and its fingerprint (or the parse error).
          Sound because [Wire.job_of_predict] and [Engine.fingerprint]
          are deterministic; this takes the x86 parser and sha256 off
          the warm path. *)
  answers : (string, Wire.response * string) Hashtbl.t;
      (** fingerprint -> (successful Result, its rendered v1 frame).
          Filled by [fulfil]; lets a handler answer a repeat request
          directly, without a dispatcher round trip (which on a
          saturated box costs two context switches per request).
          Refusals are never cached, and results are immutable for the
          life of the process (same property the engine memo relies
          on), so a cached answer is byte-identical to a recomputed
          one. *)
  gate : (unit -> unit) option;
      (** test hook, called at the top of every dispatch cycle *)
}

let resolve_cache_max = 8192
let answer_cache_max = 65536

let now_ns () = Telemetry.Trace.now_ns ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create ?(config : config option) ?gate ~engines socket_path =
  if Array.length engines = 0 then
    invalid_arg "Server.create: empty engine pool";
  let cfg =
    match config with Some c -> c | None -> default_config socket_path
  in
  (* a stale socket file from a killed server would make bind fail;
     remove it — the advisory store locks, not the socket file, are
     what serialises multi-process access *)
  (match Unix.lstat cfg.socket_path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink cfg.socket_path
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" cfg.socket_path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 128;
  (* short accept timeout: the accept loop is also the drain poll *)
  Unix.setsockopt_float listen_fd Unix.SO_RCVTIMEO 0.25;
  let capacity =
    max 1 (cfg.queue_capacity / Array.length engines)
  in
  {
    cfg;
    shards =
      Array.map
        (fun engine ->
          {
            s_engine = engine;
            s_mutex = Mutex.create ();
            s_cond = Condition.create ();
            s_queue = Queue.create ();
            s_inflight = Hashtbl.create 256;
            s_capacity = capacity;
          })
        engines;
    listen_fd;
    cmutex = Mutex.create ();
    c =
      {
        connections = 0;
        requests = 0;
        accepted = 0;
        coalesced = 0;
        completed = 0;
        warm_hits = 0;
        executed = 0;
        shed_overload = 0;
        shed_deadline = 0;
        shed_drain = 0;
        bad_requests = 0;
        write_timeouts = 0;
      };
    draining = Atomic.make false;
    drain_until_ns = Int64.max_int;
    busy = 0;
    rmutex = Mutex.create ();
    resolved = Hashtbl.create 1024;
    answers = Hashtbl.create 4096;
    gate;
  }

(* Same-fingerprint requests always land on the same shard: that is
   what keeps coalescing exact with N dispatchers, and why responses
   cannot depend on the pool size. *)
let shard_index t fp =
  let h = Store.Codec.fnv1a64 fp in
  Int64.to_int
    (Int64.rem (Int64.logand h Int64.max_int)
       (Int64.of_int (Array.length t.shards)))

let shard_for t fp = t.shards.(shard_index t fp)

let stats_json t =
  let queued = ref 0 and inflight = ref 0 in
  Array.iter
    (fun sh ->
      with_lock sh.s_mutex (fun () ->
          queued := !queued + Queue.length sh.s_queue;
          inflight := !inflight + Hashtbl.length sh.s_inflight))
    t.shards;
  let c = with_lock t.cmutex (fun () -> { t.c with connections = t.c.connections }) in
  let agg f =
    Array.fold_left (fun acc sh -> acc + f (Engine.stats sh.s_engine)) 0 t.shards
  in
  let n name v = (name, Json.Number (float_of_int v)) in
  Json.Object
    ([
       ( "serving",
         Json.Object
           [
             n "shards" (Array.length t.shards);
             n "connections" c.connections;
             n "requests" c.requests;
             n "accepted" c.accepted;
             n "coalesced" c.coalesced;
             n "completed" c.completed;
             n "warm_hits" c.warm_hits;
             n "executed" c.executed;
             n "shed_overload" c.shed_overload;
             n "shed_deadline" c.shed_deadline;
             n "shed_drain" c.shed_drain;
             n "bad_requests" c.bad_requests;
             n "write_timeouts" c.write_timeouts;
             n "queued" !queued;
             n "inflight" !inflight;
           ] );
       ( "engine",
         Json.Object
           [
             n "profiler_calls" (agg (fun e -> e.Engine.profiler_calls));
             n "store_hits" (agg (fun e -> e.Engine.store_hits));
             n "store_misses" (agg (fun e -> e.Engine.store_misses));
             n "store_writes" (agg (fun e -> e.Engine.store_writes));
             n "cache_hits" (agg (fun e -> e.Engine.cache_hits));
             n "executed" (agg (fun e -> e.Engine.executed));
           ] );
     ]
    @
    match Engine.store t.shards.(0).s_engine with
    | None -> []
    | Some store ->
      let s = Store.stats store in
      [
        ( "store",
          Json.Object
            [
              n "index_persisted" s.Store.s_index_persisted;
              n "index_scanned" s.Store.s_index_scanned;
              ("open_seconds", Json.Number s.Store.s_open_seconds);
              n "live" s.Store.s_live;
            ] );
      ])

(* ------------------------------------------------------------------ *)
(* Warm-path caches                                                    *)
(* ------------------------------------------------------------------ *)

let resolve t (p : Wire.predict) =
  let key = (p.Wire.uarch, p.Wire.asm, p.Wire.block_hex, p.Wire.filters) in
  match with_lock t.rmutex (fun () -> Hashtbl.find_opt t.resolved key) with
  | Some r -> r
  | None ->
    let r =
      match Wire.job_of_predict p with
      | Error _ as e -> e
      | Ok job -> Ok (job, Engine.fingerprint job)
    in
    (* two threads may race to compute the same key; both arrive at the
       same value, so last-write-wins is fine *)
    with_lock t.rmutex (fun () ->
        if Hashtbl.length t.resolved >= resolve_cache_max then
          Hashtbl.reset t.resolved;
        Hashtbl.replace t.resolved key r);
    r

let cached_answer t fp =
  with_lock t.rmutex (fun () -> Hashtbl.find_opt t.answers fp)

let cache_answer t fp reply =
  with_lock t.rmutex (fun () ->
      if not (Hashtbl.mem t.answers fp) then begin
        if Hashtbl.length t.answers >= answer_cache_max then
          Hashtbl.reset t.answers;
        Hashtbl.replace t.answers fp (reply, Wire.response_to_string reply)
      end)

(* Counter bump for requests answered straight from the handler's
   answer cache: they never reach admission, but they are requests,
   warm hits and completions all the same. *)
let count_cache_hits t n =
  if n > 0 then
    with_lock t.cmutex (fun () ->
        t.c.requests <- t.c.requests + n;
        t.c.warm_hits <- t.c.warm_hits + n;
        t.c.completed <- t.c.completed + n)

let notify_waiters ws reply =
  List.iter
    (fun w ->
      with_lock w.w_mutex (fun () ->
          w.w_reply <- Some reply;
          Condition.signal w.w_cond))
    ws

(* Fulfil every waiter of [entry] with [reply], detaching the entry
   from its shard's coalescing map first (atomically with taking the
   waiter list) — this removal happens on shed paths too, so a late
   duplicate can never attach to a dead entry. *)
let fulfil t sh entry reply =
  (match reply with
  | Wire.Result _ -> cache_answer t entry.fp reply
  | _ -> ());
  let ws =
    with_lock sh.s_mutex (fun () ->
        Hashtbl.remove sh.s_inflight entry.fp;
        let ws = entry.waiters in
        entry.waiters <- [];
        ws)
  in
  (match reply with
  | Wire.Result _ ->
    with_lock t.cmutex (fun () ->
        t.c.completed <- t.c.completed + List.length ws)
  | _ -> ());
  notify_waiters ws reply

(* Dispatch-time deadline shed: the expiry check, the detach from the
   coalescing map and the waiter grab happen atomically under the
   shard lock, so a concurrent attach that loosens the deadline (see
   [admit]) either lands before the check and rescues the entry, or
   misses the map and is admitted as a fresh entry. [entry.deadline_ns]
   is the loosest deadline over the attached waiters, so when it has
   expired, every waiter's has. *)
let take_if_expired sh entry now =
  with_lock sh.s_mutex (fun () ->
      match entry.deadline_ns with
      | Some d when Int64.compare now d > 0 ->
        Hashtbl.remove sh.s_inflight entry.fp;
        let ws = entry.waiters in
        entry.waiters <- [];
        `Shed ws
      | _ -> `Run)

(* ------------------------------------------------------------------ *)
(* Dispatchers                                                         *)
(* ------------------------------------------------------------------ *)

let bump t f =
  with_lock t.cmutex (fun () -> f t.c)

let dispatcher_cycle t sh =
  (match t.gate with Some g -> g () | None -> ());
  let batch =
    with_lock sh.s_mutex (fun () ->
        while Queue.is_empty sh.s_queue && not (Atomic.get t.draining) do
          Condition.wait sh.s_cond sh.s_mutex
        done;
        if Queue.is_empty sh.s_queue then None
        else begin
          let n = min t.cfg.batch_max (Queue.length sh.s_queue) in
          Some (List.init n (fun _ -> Queue.pop sh.s_queue))
        end)
  in
  match batch with
  | None -> false
  | Some entries ->
    let now = now_ns () in
    let drain_cut =
      if Atomic.get t.draining && now > t.drain_until_ns then `Shed else `Run
    in
    let runnable =
      List.filter
        (fun e ->
          match drain_cut with
          | `Shed ->
            bump t (fun c -> c.shed_drain <- c.shed_drain + 1);
            fulfil t sh e
              (Wire.Refused (Wire.Shutting_down, "drain deadline exceeded"));
            false
          | `Run -> (
            match take_if_expired sh e now with
            | `Shed ws ->
              bump t (fun c -> c.shed_deadline <- c.shed_deadline + 1);
              notify_waiters ws
                (Wire.Refused
                   (Wire.Deadline_exceeded, "deadline expired before dispatch"));
              false
            | `Run -> true))
        entries
    in
    (* warm fast path: memo/store probe answers without a batch slot *)
    let cold =
      List.filter
        (fun e ->
          match Engine.peek sh.s_engine e.job with
          | Some outcome ->
            bump t (fun c -> c.warm_hits <- c.warm_hits + 1);
            fulfil t sh e (Wire.Result (Wire.outcome_json outcome));
            false
          | None -> true)
        runnable
    in
    (match cold with
    | [] -> ()
    | _ ->
      let batch =
        Engine.run_batch sh.s_engine (List.map (fun e -> e.job) cold)
      in
      bump t (fun c -> c.executed <- c.executed + List.length cold);
      List.iteri
        (fun i e ->
          fulfil t sh e
            (Wire.Result (Wire.outcome_json batch.Engine.outcomes.(i))))
        cold);
    true

let rec dispatcher_loop t sh = if dispatcher_cycle t sh then dispatcher_loop t sh

(* ------------------------------------------------------------------ *)
(* Admission and handlers                                              *)
(* ------------------------------------------------------------------ *)

let new_waiter () =
  { w_mutex = Mutex.create (); w_cond = Condition.create (); w_reply = None }

let deadline_ns_of deadline_ms =
  Option.map
    (fun ms -> Int64.add (now_ns ()) (Int64.of_int (ms * 1_000_000)))
    deadline_ms

(* Admit one job into [sh]. The caller holds [sh.s_mutex]. *)
let admit t sh ~fp job deadline_ms =
  bump t (fun c -> c.requests <- c.requests + 1);
  if Atomic.get t.draining then
    `Refuse (Wire.Refused (Wire.Shutting_down, "server is draining"))
  else
    match Hashtbl.find_opt sh.s_inflight fp with
    | Some entry ->
      let w = new_waiter () in
      entry.waiters <- w :: entry.waiters;
      (* keep the entry's deadline the loosest across its waiters: a
         coalesced entry must outlive its most patient requester *)
      (match (entry.deadline_ns, deadline_ns_of deadline_ms) with
      | None, _ -> ()
      | _, None -> entry.deadline_ns <- None
      | Some a, Some b ->
        if Int64.compare b a > 0 then entry.deadline_ns <- Some b);
      with_lock t.cmutex (fun () ->
          t.c.coalesced <- t.c.coalesced + 1;
          t.busy <- t.busy + 1);
      `Wait w
    | None ->
      if Queue.length sh.s_queue >= sh.s_capacity then begin
        bump t (fun c -> c.shed_overload <- c.shed_overload + 1);
        `Refuse
          (Wire.Refused
             ( Wire.Overloaded,
               Printf.sprintf "queue full (%d entries)" sh.s_capacity ))
      end
      else begin
        let w = new_waiter () in
        let deadline_ns = deadline_ns_of deadline_ms in
        let entry = { fp; job; deadline_ns; waiters = [ w ] } in
        Hashtbl.replace sh.s_inflight fp entry;
        Queue.push entry sh.s_queue;
        with_lock t.cmutex (fun () ->
            t.c.accepted <- t.c.accepted + 1;
            t.busy <- t.busy + 1);
        Condition.signal sh.s_cond;
        `Wait w
      end

let wait_reply w =
  with_lock w.w_mutex (fun () ->
      while w.w_reply = None do
        Condition.wait w.w_cond w.w_mutex
      done;
      Option.get w.w_reply)

let submit_and_wait t ~fp (job : Engine.job) deadline_ms =
  let sh = shard_for t fp in
  match with_lock sh.s_mutex (fun () -> admit t sh ~fp job deadline_ms) with
  | `Refuse r -> (r, false)
  | `Wait w -> (wait_reply w, true)

(* Admit many (fingerprint, job) pairs, taking each shard's lock only
   once however many of the batch land on it. Returns one slot per
   job, in order; [waited] is how many were admitted (their busy ticks
   to release after the response is written). *)
let submit_jobs t (jobs : (string * Engine.job) list) deadline_ms =
  let items =
    List.mapi (fun i (fp, job) -> (i, fp, job, shard_index t fp)) jobs
  in
  let out = Array.make (List.length jobs) None in
  Array.iteri
    (fun si sh ->
      match List.filter (fun (_, _, _, s) -> s = si) items with
      | [] -> ()
      | mine ->
        with_lock sh.s_mutex (fun () ->
            List.iter
              (fun (i, fp, job, _) ->
                out.(i) <- Some (admit t sh ~fp job deadline_ms))
              mine))
    t.shards;
  let waited = ref 0 in
  let slots =
    Array.to_list
      (Array.map
         (function
           | Some (`Refuse r) -> r
           | Some (`Wait w) ->
             incr waited;
             wait_reply w
           | None -> assert false)
         out)
  in
  (slots, !waited)

let send_raw t fd payload =
  match Wire.write_frame fd payload with
  | () -> true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    bump t (fun c -> c.write_timeouts <- c.write_timeouts + 1);
    false
  | exception Unix.Unix_error (_, _, _) -> false

let send_response t fd response =
  send_raw t fd (Wire.response_to_string response)

let release_busy t n =
  if n > 0 then with_lock t.cmutex (fun () -> t.busy <- t.busy - n)

let handle_connection t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.write_timeout;
  let finished = ref false in
  (try
     while not !finished do
       match Wire.read_frame fd with
       | Error Wire.Eof -> finished := true
       | Error (Wire.Malformed msg) ->
         (* framing is broken; answer if possible, then hang up *)
         ignore (send_response t fd (Wire.Refused (Wire.Bad_request, msg)));
         finished := true
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
         (* idle timeout between requests *)
         finished := true
       | Ok payload -> (
         match Wire.request_of_string payload with
         | Error msg ->
           bump t (fun c -> c.bad_requests <- c.bad_requests + 1);
           if not (send_response t fd (Wire.Refused (Wire.Bad_request, msg)))
           then finished := true
         | Ok Wire.Ping ->
           if not (send_response t fd Wire.Pong) then finished := true
         | Ok Wire.Stats ->
           if not (send_response t fd (Wire.Stats_reply (stats_json t))) then
             finished := true
         | Ok (Wire.Predict p) -> (
           match resolve t p with
           | Error msg ->
             bump t (fun c -> c.bad_requests <- c.bad_requests + 1);
             if not (send_response t fd (Wire.Refused (Wire.Bad_request, msg)))
             then finished := true
           | Ok (job, fp) -> (
             (* handler fast path: a repeat of an already-answered
                block is written straight from the answer cache —
                no admission, no dispatcher round trip. Skipped while
                draining so a drain refuses uniformly. *)
             match
               if Atomic.get t.draining then None else cached_answer t fp
             with
             | Some (_, raw) ->
               count_cache_hits t 1;
               if not (send_raw t fd raw) then finished := true
             | None ->
               let reply, waited = submit_and_wait t ~fp job p.deadline_ms in
               (* the busy tick must be released on EVERY exit path —
                  an exception here would otherwise wedge
                  [await_quiescent] for the full drain grace *)
               let ok =
                 Fun.protect
                   ~finally:(fun () -> if waited then release_busy t 1)
                   (fun () -> send_response t fd reply)
               in
               if not ok then finished := true))
         | Ok (Wire.Predict_batch pb) ->
           (* each block is resolved and admitted independently: a
              malformed slot answers Bad_request in place, a cached
              slot answers from the handler, and only the rest of the
              batch is admitted *)
           let draining = Atomic.get t.draining in
           let slots0 =
             List.map
               (fun bb ->
                 match resolve t (Wire.predict_of_batch_block pb bb) with
                 | Error msg ->
                   bump t (fun c -> c.bad_requests <- c.bad_requests + 1);
                   `Bad msg
                 | Ok (job, fp) -> (
                   match if draining then None else cached_answer t fp with
                   | Some (reply, _) -> `Hit reply
                   | None -> `Submit (fp, job)))
               pb.pb_blocks
           in
           count_cache_hits t
             (List.length
                (List.filter (function `Hit _ -> true | _ -> false) slots0));
           let jobs =
             List.filter_map
               (function `Submit fj -> Some fj | _ -> None)
               slots0
           in
           let replies, waited = submit_jobs t jobs pb.pb_deadline_ms in
           (* the busy ticks must be released on EVERY exit path out
              of the re-interleave + send below (including a zip
              assertion or an allocation failure), or a drain would
              wait out its full grace on ticks nobody will return *)
           let ok =
             Fun.protect
               ~finally:(fun () -> release_busy t waited)
               (fun () ->
                 (* re-interleave engine answers with the per-slot
                    parse errors and cache hits *)
                 let slots =
                   let rec zip slots0 replies =
                     match (slots0, replies) with
                     | [], _ -> []
                     | `Bad msg :: rest, replies ->
                       Wire.Refused (Wire.Bad_request, msg) :: zip rest replies
                     | `Hit reply :: rest, replies -> reply :: zip rest replies
                     | `Submit _ :: rest, reply :: replies ->
                       reply :: zip rest replies
                     | `Submit _ :: _, [] -> assert false
                   in
                   zip slots0 replies
                 in
                 send_response t fd (Wire.Results slots))
           in
           if not ok then finished := true)
     done
   with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let request_drain t = Atomic.set t.draining true

let install_signal_handlers t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let drain = Sys.Signal_handle (fun _ -> request_drain t) in
  Sys.set_signal Sys.sigterm drain;
  Sys.set_signal Sys.sigint drain

(* Accept loop; returns when draining. The SO_RCVTIMEO poll bounds how
   long a drain request waits on an idle listener. *)
let accept_loop t =
  let continue = ref true in
  while !continue do
    if Atomic.get t.draining then continue := false
    else
      match Store.Eintr.intr (fun () -> Unix.accept ~cloexec:true t.listen_fd) with
      | fd, _ ->
        bump t (fun c -> c.connections <- c.connections + 1);
        ignore (Thread.create (fun () -> handle_connection t fd) ())
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> continue := false
  done

(* Wait (bounded) for handler threads to finish writing fulfilled
   responses, so a drain does not exit with results still unsent. *)
let await_quiescent t deadline_ns =
  let rec go () =
    let busy = with_lock t.cmutex (fun () -> t.busy) in
    if busy > 0 && now_ns () < deadline_ns then begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* Run until drained: blocks the calling thread in the accept loop and
   returns once every shard queue is drained (or shed) and responses
   are written. The caller flushes telemetry and exits. *)
let run ?(signals = true) t =
  if signals then install_signal_handlers t;
  let dispatchers =
    Array.map (fun sh -> Domain.spawn (fun () -> dispatcher_loop t sh)) t.shards
  in
  accept_loop t;
  (* drain: the grace period starts when the drain begins *)
  t.drain_until_ns <-
    Int64.add (now_ns ())
      (Int64.of_float (t.cfg.drain_grace *. 1e9));
  Array.iter
    (fun sh -> with_lock sh.s_mutex (fun () -> Condition.broadcast sh.s_cond))
    t.shards;
  Array.iter Domain.join dispatchers;
  await_quiescent t t.drain_until_ns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())

let counters t = t.c
let shard_count t = Array.length t.shards
let engine t = t.shards.(0).s_engine
