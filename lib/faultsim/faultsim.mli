(** Deterministic, seeded fault injection for the simulated measurement
    substrate.

    The real BHive harness survives a hostile environment: worker
    processes die on unmappable blocks, measurements stall under OS
    interference, and hardware counters occasionally return garbage.
    This module makes those failure modes first-class and {e exactly
    reproducible}: whether a given profiling attempt crashes, stalls or
    returns a corrupted timing is a pure function of the fault
    configuration and the attempt's identity — the job fingerprint, the
    attempt number, and the trial index within the attempt. Nothing
    depends on wall time, worker count or scheduling order, which is
    what lets the engine's recovery machinery promise byte-identical
    output under any fault seed (for recoverable fault rates).

    Configuration comes from the [BHIVE_FAULTS] environment variable
    (or the [--faults] CLI flag), a comma-separated key=value spec:

    {v BHIVE_FAULTS=crash=0.01,stall=0.005,corrupt=0.002,seed=42 v}

    Unset keys default to rate 0 / seed 0; the empty string and unset
    variable both mean "no faults". *)

type config = {
  crash : float;  (** per-trial probability the worker domain dies *)
  stall : float;
      (** per-trial probability of a simulated-clock stall; whether the
          stall exceeds the job deadline is the engine's decision *)
  corrupt : float;
      (** per-trial probability the returned timing is corrupted *)
  seed : int64;  (** fault-stream seed; independent of the noise seed *)
}

(** No faults: all rates zero. [draw] on this config never faults and
    performs no work. *)
val none : config

val is_none : config -> bool

(** Parse a [crash=..,stall=..,corrupt=..,seed=..] spec. Rates must be
    in [0, 1]; unknown keys and malformed values are errors. The empty
    string parses to {!none}. *)
val parse : string -> (config, string) result

(** Canonical spec string: [parse (to_string c) = Ok c]. *)
val to_string : config -> string

(** Read [BHIVE_FAULTS] without raising: unset or empty is [Ok none];
    a malformed value is [Error msg] with the same one-line message
    {!of_env} raises. This is what CLI startup validation uses to turn
    a bad spec into a clean non-zero exit. *)
val env_result : unit -> (config, string) result

(** Read [BHIVE_FAULTS]. Unset or empty means {!none}; a malformed
    value raises [Failure] with a usable message — a chaos run that
    silently ran without chaos would defeat its purpose. *)
val of_env : unit -> config

(** Process-default override (set by the [--faults] CLI flag, consulted
    by [Engine.create] when no explicit config is passed). *)
val set_default : config -> unit

(** The override if set, else {!of_env}. *)
val default : unit -> config

(** One injected fault. *)
type fault =
  | Crash  (** the worker domain executing the job dies *)
  | Stall of int
      (** the measurement hangs for this many {e simulated}
          milliseconds (25–400); no wall-clock time passes *)
  | Corrupt of int64
      (** the timing comes back corrupted; the payload seeds the
          corruption so distinct trials corrupt differently *)

val fault_to_string : fault -> string

(** [draw cfg ~fingerprint ~attempt ~trial] decides deterministically
    whether this trial faults. Fault classes are checked in order
    crash, stall, corrupt — at most one fires per trial. *)
val draw :
  config -> fingerprint:string -> attempt:int -> trial:int -> fault option

(** Corrupt a measured throughput: scales it by a salt-derived factor
    in [0.25, 4] bounded away from 1, so a corrupted value never equals
    the clean one and two different salts essentially never agree —
    which is what quorum voting relies on to outvote corruption. *)
val corrupt_throughput : salt:int64 -> float -> float
