(* See faultsim.mli for the contract.

   Determinism: every decision derives from one SplitMix64 stream
   seeded by (config seed XOR FNV-1a of "fingerprint\x00attempt\x00trial").
   The stream is consumed in a fixed order (crash, stall, corrupt, then
   payload), so adding a fault class later can only extend — never
   reshuffle — existing draws. *)

type config = { crash : float; stall : float; corrupt : float; seed : int64 }

let none = { crash = 0.0; stall = 0.0; corrupt = 0.0; seed = 0L }

let is_none c = c.crash = 0.0 && c.stall = 0.0 && c.corrupt = 0.0

let float_to_string f =
  (* shortest round-trip-safe rendering, so to_string stays canonical *)
  let s = Printf.sprintf "%.12g" f in
  s

let to_string c =
  Printf.sprintf "crash=%s,stall=%s,corrupt=%s,seed=%Ld"
    (float_to_string c.crash) (float_to_string c.stall)
    (float_to_string c.corrupt) c.seed

let parse spec =
  let spec = String.trim spec in
  if spec = "" || spec = "none" then Ok none
  else
    let parts = String.split_on_char ',' spec in
    let rec fold acc = function
      | [] -> Ok acc
      | part :: rest -> (
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" part)
        | Some i -> (
          let key = String.trim (String.sub part 0 i) in
          let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
          let rate () =
            match float_of_string_opt v with
            | Some r when r >= 0.0 && r <= 1.0 -> Ok r
            | Some _ -> Error (Printf.sprintf "%s=%s: rate must be in [0, 1]" key v)
            | None -> Error (Printf.sprintf "%s=%s: not a number" key v)
          in
          match key with
          | "crash" -> Result.bind (rate ()) (fun r -> fold { acc with crash = r } rest)
          | "stall" -> Result.bind (rate ()) (fun r -> fold { acc with stall = r } rest)
          | "corrupt" -> Result.bind (rate ()) (fun r -> fold { acc with corrupt = r } rest)
          | "seed" -> (
            match Int64.of_string_opt v with
            | Some s -> fold { acc with seed = s } rest
            | None -> Error (Printf.sprintf "seed=%s: not an integer" v))
          | _ ->
            Error
              (Printf.sprintf
                 "unknown key %S (expected crash, stall, corrupt or seed)" key)))
    in
    fold none parts

let env_result () =
  match Sys.getenv_opt "BHIVE_FAULTS" with
  | None -> Ok none
  | Some s -> (
    match parse s with
    | Ok c -> Ok c
    | Error msg -> Error (Printf.sprintf "invalid BHIVE_FAULTS=%S: %s" s msg))

let of_env () =
  match env_result () with Ok c -> c | Error msg -> failwith msg

let override = ref None
let set_default c = override := Some c
let default () = match !override with Some c -> c | None -> of_env ()

type fault = Crash | Stall of int | Corrupt of int64

let fault_to_string = function
  | Crash -> "crash"
  | Stall ms -> Printf.sprintf "stall:%dms" ms
  | Corrupt _ -> "corrupt"

let trial_rng (c : config) ~fingerprint ~attempt ~trial =
  let key =
    Bstats.Rng.seed_of_string
      (Printf.sprintf "%s\x00%d\x00%d" fingerprint attempt trial)
  in
  Bstats.Rng.create (Int64.logxor c.seed key)

let draw c ~fingerprint ~attempt ~trial =
  if is_none c then None
  else begin
    let rng = trial_rng c ~fingerprint ~attempt ~trial in
    if Bstats.Rng.bernoulli rng c.crash then Some Crash
    else if Bstats.Rng.bernoulli rng c.stall then
      (* 25, 50, 100, 200 or 400 simulated ms: some stalls fit inside
         the default 100ms deadline, some blow past it *)
      Some (Stall (25 * (1 lsl Bstats.Rng.int rng 5)))
    else if Bstats.Rng.bernoulli rng c.corrupt then
      Some (Corrupt (Bstats.Rng.next_u64 rng))
    else None
  end

let corrupt_throughput ~salt tp =
  let rng = Bstats.Rng.create salt in
  let factor = 0.25 +. (3.75 *. Bstats.Rng.float rng) in
  (* keep the corruption visibly wrong: bound the factor away from 1 *)
  let factor =
    if factor > 0.8 && factor < 1.25 then factor +. 0.75 else factor
  in
  let corrupted = tp *. factor in
  if corrupted = tp then tp +. 1.0 else corrupted
