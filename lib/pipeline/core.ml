(** Cycle-level out-of-order core model.

    The simulator replays a dynamic instruction trace against the
    microarchitecture's resources: a fused-domain front end with an L1I
    cache, register renaming with zero-idiom and move elimination, a
    port-constrained scheduler with per-port pipelined execution (the
    divider is not pipelined), load/store address disambiguation with
    store-to-load forwarding, a reorder buffer, and in-order retirement.

    The model is timing-directed: architectural values (addresses, the
    division fast path, subnormal operands) come from the pre-recorded
    trace, so the timing pass itself is deterministic and cheap. *)

open Uarch

type schedule_entry = {
  inst_index : int;
  static_index : int;
  uop : Uop.t;
  port : int;  (** -1 for eliminated uops *)
  dispatch : int;
  complete : int;
}

type result = {
  cycles : int;
  counters : Counters.t;
  schedule : schedule_entry list;  (** only populated when requested *)
}

(* Dependence-root index used for RFLAGS. *)
let flags_root = X86.Reg.num_roots
let n_roots = X86.Reg.num_roots + 1

let is_divider_op (inst : X86.Inst.t) =
  match inst.opcode with
  | X86.Opcode.Div | Idiv | Fdiv _ | Fsqrt _ -> true
  | _ -> false

(* Effective division latency given the observed execution path. *)
let div_latency (d : Descriptor.t) (di : Trace.dyn_inst) =
  let p = d.profile in
  match di.inst.opcode with
  | X86.Opcode.Div | Idiv ->
    if di.div_slow then p.div64_latency
    else if X86.Width.equal di.inst.width X86.Width.Q then
      (* 64-bit divide with zeroed rdx: faster than the wide path but
         slower than the 32-bit divide *)
      p.div32_latency + ((p.div64_latency - p.div32_latency) / 4)
    else p.div32_latency
  | _ -> 0

let simulate ?(record_schedule = false) (d : Descriptor.t)
    ~(l1d : Memsim.Cache.t) ~(l1i : Memsim.Cache.t) ~(l2 : Memsim.Cache.t)
    (trace : Trace.dyn_inst list) : result =
  let c = Counters.create () in
  c.port_cycles <- Array.make d.n_ports 0;
  let reg_ready = Array.make n_roots 0 in
  let ports = Port_schedule.create ~n_ports:d.n_ports in
  let schedule = ref [] in
  (* Front end state: fused-domain slots. *)
  let frontend_cycle = ref 0 in
  let slots_this_cycle = ref 0 in
  (* ROB: retire times of allocated entries, bounded by rob_size. *)
  let rob = Queue.create () in
  (* Retirement: ring of the last [retire_width] retire times. *)
  let retire_ring = Array.make d.retire_width 0 in
  let retire_pos = ref 0 in
  let last_retire = ref 0 in
  (* Store-to-load forwarding: 8-byte chunk -> data-ready time. *)
  let store_chunks : (int64, int) Hashtbl.t = Hashtbl.create 256 in
  let chunk_range addr size =
    let first = Int64.shift_right_logical addr 3 in
    let last = Int64.shift_right_logical (Int64.add addr (Int64.of_int (max 1 size - 1))) 3 in
    (first, last)
  in
  let forwarding_ready addr size =
    let first, last = chunk_range addr size in
    let t = ref 0 in
    let chunk = ref first in
    while Int64.compare !chunk last <= 0 do
      (match Hashtbl.find_opt store_chunks !chunk with
      | Some ready -> if ready > !t then t := ready
      | None -> ());
      chunk := Int64.add !chunk 1L
    done;
    !t
  in
  let record_store addr size ready =
    let first, last = chunk_range addr size in
    let chunk = ref first in
    while Int64.compare !chunk last <= 0 do
      Hashtbl.replace store_chunks !chunk ready;
      chunk := Int64.add !chunk 1L
    done
  in
  (* Allocate [n] fused-domain rename slots; returns cycle of last slot. *)
  let rename_slots n =
    let r = ref 0 in
    for _ = 1 to max 1 n do
      if !slots_this_cycle >= d.rename_width then begin
        incr frontend_cycle;
        slots_this_cycle := 0
      end;
      incr slots_this_cycle;
      r := !frontend_cycle
    done;
    !r
  in
  (* Dispatch one uop on the candidate port with the earliest free
     issue slot (out-of-order backfill included). *)
  let dispatch_on_port (u : Uop.t) ~ready ~busy =
    let candidates = Port.to_list u.ports in
    let candidates = List.filter (fun p -> p < d.n_ports) candidates in
    let candidates = if candidates = [] then [ 0 ] else candidates in
    let best_port = ref (List.hd candidates) in
    let best_time = ref max_int in
    List.iter
      (fun p ->
        let t = Port_schedule.peek ports ~port:p ~ready in
        if t < !best_time then begin
          best_time := t;
          best_port := p
        end)
      candidates;
    let start = Port_schedule.claim ports ~port:!best_port ~ready:!best_time ~busy in
    c.port_cycles.(!best_port) <- c.port_cycles.(!best_port) + busy;
    if start > ready then
      c.port_contention_cycles <- c.port_contention_cycles + (start - ready);
    (!best_port, start)
  in
  let ready_of_roots roots =
    List.fold_left (fun acc r -> max acc reg_ready.(r)) 0 roots
  in
  let finish_time = ref 0 in
  List.iteri
    (fun idx (di : Trace.dyn_inst) ->
      (* --- front end: instruction fetch through the L1I cache --- *)
      let line0 = di.code_addr / 64 and line1 = (di.code_addr + di.code_len - 1) / 64 in
      for line = line0 to line1 do
        if not (Memsim.Cache.access_line l1i (Int64.of_int line)) then begin
          c.l1i_misses <- c.l1i_misses + 1;
          (* instruction lines refill from the unified L2; tag them into
             a distinct address range so they do not alias data lines *)
          let l2_line = Int64.add 0x4000000L (Int64.of_int line) in
          let extra =
            if Memsim.Cache.access_line l2 l2_line then 0
            else begin
              c.l2_misses <- c.l2_misses + 1;
              d.l2_miss_penalty
            end
          in
          c.frontend_stall_cycles <-
            c.frontend_stall_cycles + d.icache_miss_penalty + extra;
          frontend_cycle := !frontend_cycle + d.icache_miss_penalty + extra;
          slots_this_cycle := 0
        end
      done;
      (* --- rename --- *)
      let renamed_at = rename_slots di.decomp.fused_slots in
      (* ROB occupancy: wait for the oldest entry to retire. *)
      for _ = 1 to di.decomp.fused_slots do
        if Queue.length rob >= d.rob_size then begin
          let oldest = Queue.pop rob in
          if oldest > !frontend_cycle then begin
            c.rob_stall_cycles <- c.rob_stall_cycles + (oldest - !frontend_cycle);
            frontend_cycle := oldest;
            slots_this_cycle := 0
          end
        end
      done;
      c.instructions <- c.instructions + 1;
      c.uops <- c.uops + max 1 (List.length di.decomp.uops);
      let data_ready = ready_of_roots di.reads in
      let data_ready =
        if di.reads_flags then max data_ready reg_ready.(flags_root) else data_ready
      in
      let addr_roots =
        List.concat_map
          (fun (op : X86.Operand.t) ->
            match op with
            | X86.Operand.Mem m ->
              List.map (fun r -> X86.Reg.root_index (X86.Reg.root r))
                (X86.Operand.mem_regs m)
            | _ -> [])
          di.inst.operands
      in
      let addr_ready = ready_of_roots addr_roots in
      if di.decomp.eliminated then begin
        (* Handled at rename: result ready immediately. For zero idioms
           the result does not depend on sources at all. *)
        let ready =
          if X86.Inst.is_zero_idiom di.inst then renamed_at
          else max renamed_at data_ready
        in
        List.iter (fun r -> reg_ready.(r) <- ready) di.writes;
        if di.writes_flags then reg_ready.(flags_root) <- ready;
        if record_schedule then
          schedule :=
            {
              inst_index = idx;
              static_index = di.static_index;
              uop = Uop.exec Port.empty;
              port = -1;
              dispatch = renamed_at;
              complete = ready;
            }
            :: !schedule;
        Queue.push (max ready renamed_at) rob;
        if max ready renamed_at > !finish_time then finish_time := max ready renamed_at
      end
      else begin
        let earliest = renamed_at + 1 in
        let load_idx = ref 0 and store_idx = ref 0 in
        let last_load_complete = ref 0 in
        let last_exec_complete = ref 0 in
        let prev_exec_complete = ref 0 in
        let inst_complete = ref renamed_at in
        let subnormal_applied = ref false in
        List.iter
          (fun (u : Uop.t) ->
            let ready, latency_extra, busy =
              match u.kind with
              | Uop.Load ->
                let paddr, size =
                  if !load_idx < Array.length di.loads then di.loads.(!load_idx)
                  else (0L, 8)
                in
                let vaddr =
                  if !load_idx < Array.length di.load_vaddrs then
                    di.load_vaddrs.(!load_idx)
                  else 0L
                in
                incr load_idx;
                let misses = Memsim.Cache.access l1d ~addr:paddr ~size in
                if misses > 0 then
                  c.l1d_read_misses <- c.l1d_read_misses + misses;
                (* lines that miss L1 go to the unified L2 *)
                let l2_misses =
                  if misses > 0 then Memsim.Cache.access l2 ~addr:paddr ~size
                  else 0
                in
                if l2_misses > 0 then c.l2_misses <- c.l2_misses + l2_misses;
                let split =
                  Memsim.Cache.crosses_line l1d ~addr:vaddr ~size
                in
                if split then
                  c.misaligned_mem_refs <- c.misaligned_mem_refs + 1;
                let fwd = forwarding_ready paddr size in
                ( max (max addr_ready fwd) earliest,
                  (misses * d.l1d_miss_penalty)
                  + (l2_misses * d.l2_miss_penalty)
                  + (if split then d.misaligned_extra_cycles else 0),
                  1 )
              | Uop.Store_addr -> (max addr_ready earliest, 0, 1)
              | Uop.Store_data ->
                let src =
                  if !last_exec_complete > 0 then !last_exec_complete
                  else max data_ready !last_load_complete
                in
                (max src earliest, 0, 1)
              | Uop.Exec ->
                let chain =
                  max data_ready (max !last_load_complete !prev_exec_complete)
                in
                let busy =
                  if is_divider_op di.inst then
                    let lat =
                      match di.inst.opcode with
                      | X86.Opcode.Div | Idiv -> div_latency d di
                      | _ -> u.latency
                    in
                    max 1 (lat - 1)
                  else 1
                in
                (max chain earliest, 0, busy)
            in
            let port, dispatch = dispatch_on_port u ~ready ~busy in
            let latency =
              match u.kind with
              | Uop.Exec when (match di.inst.opcode with
                              | X86.Opcode.Div | Idiv -> true
                              | _ -> false) -> div_latency d di
              | _ -> u.latency
            in
            let complete = dispatch + latency + latency_extra in
            let complete =
              if di.subnormal && not !subnormal_applied && u.kind = Uop.Exec
              then begin
                subnormal_applied := true;
                c.subnormal_assists <- c.subnormal_assists + 1;
                complete + d.subnormal_assist_cycles
              end
              else complete
            in
            (match u.kind with
            | Uop.Load -> last_load_complete := max !last_load_complete complete
            | Uop.Exec ->
              prev_exec_complete := complete;
              last_exec_complete := max !last_exec_complete complete
            | Uop.Store_data ->
              let paddr, size =
                if !store_idx < Array.length di.stores then di.stores.(!store_idx)
                else (0L, 8)
              in
              let vaddr =
                if !store_idx < Array.length di.store_vaddrs then
                  di.store_vaddrs.(!store_idx)
                else 0L
              in
              incr store_idx;
              let misses = Memsim.Cache.access l1d ~addr:paddr ~size in
              if misses > 0 then begin
                c.l1d_write_misses <- c.l1d_write_misses + misses;
                let l2m = Memsim.Cache.access l2 ~addr:paddr ~size in
                if l2m > 0 then c.l2_misses <- c.l2_misses + l2m
              end;
              if Memsim.Cache.crosses_line l1d ~addr:vaddr ~size then
                c.misaligned_mem_refs <- c.misaligned_mem_refs + 1;
              record_store paddr size (complete + 1)
            | Uop.Store_addr -> ());
            if complete > !inst_complete then inst_complete := complete;
            if record_schedule then
              schedule :=
                {
                  inst_index = idx;
                  static_index = di.static_index;
                  uop = u;
                  port;
                  dispatch;
                  complete;
                }
                :: !schedule)
          di.decomp.uops;
        (* A microcode assist flushes the front end. *)
        if di.subnormal then begin
          frontend_cycle := max !frontend_cycle !inst_complete;
          slots_this_cycle := 0
        end;
        (* Architectural results become visible at instruction completion:
           the producing uop is the last exec uop, or the load for pure
           loads. *)
        let result_time =
          if !last_exec_complete > 0 then !last_exec_complete
          else if !last_load_complete > 0 then !last_load_complete
          else renamed_at
        in
        List.iter (fun r -> reg_ready.(r) <- result_time) di.writes;
        if di.writes_flags then reg_ready.(flags_root) <- result_time;
        (* In-order retirement. *)
        let ready_to_retire = max !inst_complete !last_retire in
        let width_limited = retire_ring.(!retire_pos) + 1 in
        let retire_at = max ready_to_retire width_limited in
        retire_ring.(!retire_pos) <- retire_at;
        retire_pos := (!retire_pos + 1) mod d.retire_width;
        last_retire := retire_at;
        Queue.push retire_at rob;
        if retire_at > !finish_time then finish_time := retire_at
      end)
    trace;
  c.core_cycles <- !finish_time;
  { cycles = !finish_time; counters = c; schedule = List.rev !schedule }
