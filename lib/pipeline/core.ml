(** Cycle-level out-of-order core model.

    The simulator replays a dynamic instruction trace against the
    microarchitecture's resources: a fused-domain front end with an L1I
    cache, register renaming with zero-idiom and move elimination, a
    port-constrained scheduler with per-port pipelined execution (the
    divider is not pipelined), load/store address disambiguation with
    store-to-load forwarding, a reorder buffer, and in-order retirement.

    The model is timing-directed: architectural values (addresses, the
    division fast path, subnormal operands) come from the pre-recorded
    trace, so the timing pass itself is deterministic and cheap.

    The cycle loop is allocation-free: uops are consumed as int-packed
    codes ({!Uarch.Flat}), machine state lives in mutable scratch arrays
    reused across simulated blocks ({!Scratch}), and the store-forwarding
    table is an epoch-stamped open-addressed int table rather than a
    fresh [Hashtbl] per simulation. *)

open Uarch

type schedule_entry = {
  inst_index : int;
  static_index : int;
  uop : Uop.t;
  port : int;  (** -1 for eliminated uops *)
  dispatch : int;
  complete : int;
}

type result = {
  cycles : int;
  counters : Counters.t;
  schedule : schedule_entry list;  (** only populated when requested *)
}

(* Dependence-root index used for RFLAGS. *)
let flags_root = X86.Reg.num_roots
let n_roots = X86.Reg.num_roots + 1

(* Store-to-load forwarding table: 8-byte chunk index -> data-ready
   time. Open-addressed with linear probing and an epoch stamp per slot,
   so clearing between simulations is O(1). Chunk indices are physical
   addresses shifted right by 3, so they always fit a native int. *)
module Fwd = struct
  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable stamps : int array;
    mutable mask : int;  (** capacity - 1; capacity is a power of two *)
    mutable live : int;
    mutable epoch : int;
  }

  let initial_capacity = 256

  let create () =
    {
      keys = Array.make initial_capacity 0;
      vals = Array.make initial_capacity 0;
      stamps = Array.make initial_capacity (-1);
      mask = initial_capacity - 1;
      live = 0;
      epoch = 0;
    }

  let reset t =
    t.epoch <- t.epoch + 1;
    t.live <- 0

  let hash k = (k * 0x9E3779B1) lxor (k lsr 16)

  (* Slot index of [k], or [-insert_position - 1] when absent. *)
  let rec probe_from t k i =
    if t.stamps.(i) <> t.epoch then -i - 1
    else if t.keys.(i) = k then i
    else probe_from t k ((i + 1) land t.mask)

  let probe t k = probe_from t k (hash k land t.mask)

  (* Ready times are always >= 1, so 0 doubles as "no pending store". *)
  let find t k =
    let i = probe t k in
    if i < 0 then 0 else t.vals.(i)

  let grow t =
    let old_keys = t.keys and old_vals = t.vals and old_stamps = t.stamps in
    let cap = 2 * (t.mask + 1) in
    t.keys <- Array.make cap 0;
    t.vals <- Array.make cap 0;
    t.stamps <- Array.make cap (-1);
    t.mask <- cap - 1;
    for i = 0 to Array.length old_keys - 1 do
      if old_stamps.(i) = t.epoch then begin
        let j = -probe t old_keys.(i) - 1 in
        t.keys.(j) <- old_keys.(i);
        t.vals.(j) <- old_vals.(i);
        t.stamps.(j) <- t.epoch
      end
    done

  let set t k v =
    let i = probe t k in
    if i >= 0 then t.vals.(i) <- v
    else begin
      if 2 * (t.live + 1) > t.mask + 1 then grow t;
      let i = -probe t k - 1 in
      t.keys.(i) <- k;
      t.vals.(i) <- v;
      t.stamps.(i) <- t.epoch;
      t.live <- t.live + 1
    end
end

(** Reusable per-machine simulation state: every array the cycle loop
    touches, allocated once per machine and reset in O(state) between
    blocks instead of reallocated. *)
module Scratch = struct
  type t = {
    n_ports : int;
    rob_size : int;
    retire_width : int;
    reg_ready : int array;
    ports : Port_schedule.t;
    rob : int array;  (** ring of retire times, capacity [rob_size + 1] *)
    mutable rob_head : int;
    mutable rob_len : int;
    retire_ring : int array;
    fwd : Fwd.t;
  }

  let create (d : Descriptor.t) =
    {
      n_ports = d.n_ports;
      rob_size = d.rob_size;
      retire_width = d.retire_width;
      reg_ready = Array.make n_roots 0;
      ports = Port_schedule.create ~n_ports:d.n_ports;
      rob = Array.make (d.rob_size + 1) 0;
      rob_head = 0;
      rob_len = 0;
      retire_ring = Array.make d.retire_width 0;
      fwd = Fwd.create ();
    }

  let reset t =
    Array.fill t.reg_ready 0 n_roots 0;
    Port_schedule.reset t.ports;
    t.rob_head <- 0;
    t.rob_len <- 0;
    Array.fill t.retire_ring 0 t.retire_width 0;
    Fwd.reset t.fwd

  let fits t (d : Descriptor.t) =
    t.n_ports = d.n_ports && t.rob_size = d.rob_size
    && t.retire_width = d.retire_width
end

let simulate ?(record_schedule = false) ?scratch (d : Descriptor.t)
    ~(l1d : Memsim.Cache.t) ~(l1i : Memsim.Cache.t) ~(l2 : Memsim.Cache.t)
    (trace : Trace.dyn_inst list) : result =
  let s =
    match scratch with
    | Some s when Scratch.fits s d ->
      Scratch.reset s;
      s
    | _ -> Scratch.create d
  in
  let c = Counters.create () in
  c.port_cycles <- Array.make d.n_ports 0;
  let reg_ready = s.reg_ready in
  let ports = s.ports in
  let schedule = ref [] in
  (* Front end state: fused-domain slots. *)
  let frontend_cycle = ref 0 in
  let slots_this_cycle = ref 0 in
  (* ROB: retire times of allocated entries, bounded by rob_size. *)
  let rob_cap = s.rob_size + 1 in
  let rob_pop () =
    let v = s.rob.(s.rob_head) in
    s.rob_head <- (s.rob_head + 1) mod rob_cap;
    s.rob_len <- s.rob_len - 1;
    v
  in
  let rob_push v =
    s.rob.((s.rob_head + s.rob_len) mod rob_cap) <- v;
    s.rob_len <- s.rob_len + 1
  in
  (* Retirement: ring of the last [retire_width] retire times. *)
  let retire_ring = s.retire_ring in
  let retire_pos = ref 0 in
  let last_retire = ref 0 in
  (* Store-to-load forwarding over 8-byte chunks. *)
  let fwd_tbl = s.fwd in
  let forwarding_ready addr size =
    let first = Int64.to_int (Int64.shift_right_logical addr 3) in
    let last =
      Int64.to_int
        (Int64.shift_right_logical
           (Int64.add addr (Int64.of_int (max 1 size - 1)))
           3)
    in
    let t = ref 0 in
    for chunk = first to last do
      let ready = Fwd.find fwd_tbl chunk in
      if ready > !t then t := ready
    done;
    !t
  in
  let record_store addr size ready =
    let first = Int64.to_int (Int64.shift_right_logical addr 3) in
    let last =
      Int64.to_int
        (Int64.shift_right_logical
           (Int64.add addr (Int64.of_int (max 1 size - 1)))
           3)
    in
    for chunk = first to last do
      Fwd.set fwd_tbl chunk ready
    done
  in
  (* Allocate [n] fused-domain rename slots; returns cycle of last slot. *)
  let rename_slots n =
    let r = ref 0 in
    for _ = 1 to max 1 n do
      if !slots_this_cycle >= d.rename_width then begin
        incr frontend_cycle;
        slots_this_cycle := 0
      end;
      incr slots_this_cycle;
      r := !frontend_cycle
    done;
    !r
  in
  let ready_of_roots roots =
    let t = ref 0 in
    for i = 0 to Array.length roots - 1 do
      let v = reg_ready.(roots.(i)) in
      if v > !t then t := v
    done;
    !t
  in
  let finish_time = ref 0 in
  List.iteri
    (fun idx (di : Trace.dyn_inst) ->
      let st = di.static in
      (* --- front end: instruction fetch through the L1I cache --- *)
      let line0 = di.code_addr / 64
      and line1 = (di.code_addr + st.s_code_len - 1) / 64 in
      for line = line0 to line1 do
        if not (Memsim.Cache.access_line l1i (Int64.of_int line)) then begin
          c.l1i_misses <- c.l1i_misses + 1;
          (* instruction lines refill from the unified L2; tag them into
             a distinct address range so they do not alias data lines *)
          let l2_line = Int64.add 0x4000000L (Int64.of_int line) in
          let extra =
            if Memsim.Cache.access_line l2 l2_line then 0
            else begin
              c.l2_misses <- c.l2_misses + 1;
              d.l2_miss_penalty
            end
          in
          c.frontend_stall_cycles <-
            c.frontend_stall_cycles + d.icache_miss_penalty + extra;
          frontend_cycle := !frontend_cycle + d.icache_miss_penalty + extra;
          slots_this_cycle := 0
        end
      done;
      (* --- rename --- *)
      let renamed_at = rename_slots st.s_fused_slots in
      (* ROB occupancy: wait for the oldest entry to retire. *)
      for _ = 1 to st.s_fused_slots do
        if s.rob_len >= d.rob_size then begin
          let oldest = rob_pop () in
          if oldest > !frontend_cycle then begin
            c.rob_stall_cycles <- c.rob_stall_cycles + (oldest - !frontend_cycle);
            frontend_cycle := oldest;
            slots_this_cycle := 0
          end
        end
      done;
      c.instructions <- c.instructions + 1;
      c.uops <- c.uops + max 1 st.s_n_uops;
      let data_ready = ready_of_roots st.s_reads in
      let data_ready =
        if st.s_reads_flags then max data_ready reg_ready.(flags_root)
        else data_ready
      in
      let addr_ready = ready_of_roots st.s_addr_roots in
      if st.s_eliminated then begin
        (* Handled at rename: result ready immediately. For zero idioms
           the result does not depend on sources at all. *)
        let ready =
          if st.s_zero_idiom then renamed_at else max renamed_at data_ready
        in
        let writes = st.s_writes in
        for i = 0 to Array.length writes - 1 do
          reg_ready.(writes.(i)) <- ready
        done;
        if st.s_writes_flags then reg_ready.(flags_root) <- ready;
        if record_schedule then
          schedule :=
            {
              inst_index = idx;
              static_index = di.static_index;
              uop = Uop.exec Port.empty;
              port = -1;
              dispatch = renamed_at;
              complete = ready;
            }
            :: !schedule;
        rob_push (max ready renamed_at);
        if max ready renamed_at > !finish_time then
          finish_time := max ready renamed_at
      end
      else begin
        let earliest = renamed_at + 1 in
        let load_idx = ref 0 and store_idx = ref 0 in
        let last_load_complete = ref 0 in
        let last_exec_complete = ref 0 in
        let prev_exec_complete = ref 0 in
        let inst_complete = ref renamed_at in
        let subnormal_applied = ref false in
        let codes = st.s_codes in
        for k = 0 to Array.length codes - 1 do
          let code = codes.(k) in
          let kind = Flat.code_kind code in
          let ulat = Flat.code_latency code in
          let ready, latency_extra, busy =
            match kind with
            | 1 (* Load *) ->
              let paddr, size =
                if !load_idx < Array.length di.loads then di.loads.(!load_idx)
                else (0L, 8)
              in
              let vaddr =
                if !load_idx < Array.length di.load_vaddrs then
                  di.load_vaddrs.(!load_idx)
                else 0L
              in
              incr load_idx;
              let misses = Memsim.Cache.access l1d ~addr:paddr ~size in
              if misses > 0 then
                c.l1d_read_misses <- c.l1d_read_misses + misses;
              (* lines that miss L1 go to the unified L2 *)
              let l2_misses =
                if misses > 0 then Memsim.Cache.access l2 ~addr:paddr ~size
                else 0
              in
              if l2_misses > 0 then c.l2_misses <- c.l2_misses + l2_misses;
              let split = Memsim.Cache.crosses_line l1d ~addr:vaddr ~size in
              if split then c.misaligned_mem_refs <- c.misaligned_mem_refs + 1;
              let fwd = forwarding_ready paddr size in
              ( max (max addr_ready fwd) earliest,
                (misses * d.l1d_miss_penalty)
                + (l2_misses * d.l2_miss_penalty)
                + (if split then d.misaligned_extra_cycles else 0),
                1 )
            | 2 (* Store_addr *) -> (max addr_ready earliest, 0, 1)
            | 3 (* Store_data *) ->
              let src =
                if !last_exec_complete > 0 then !last_exec_complete
                else max data_ready !last_load_complete
              in
              (max src earliest, 0, 1)
            | _ (* Exec *) ->
              let chain =
                max data_ready (max !last_load_complete !prev_exec_complete)
              in
              let busy =
                if st.s_is_divider then
                  let lat = if st.s_is_int_div then di.div_lat else ulat in
                  max 1 (lat - 1)
                else 1
              in
              (max chain earliest, 0, busy)
          in
          (* Dispatch on the candidate port with the earliest free issue
             slot (out-of-order backfill included); ties resolve to the
             lowest-numbered port, as the mask is scanned ascending. *)
          let best_port = ref 0 and best_time = ref max_int in
          let m = ref (Flat.code_mask code) and pn = ref 0 in
          while !m <> 0 do
            if !m land 1 <> 0 then begin
              let t = Port_schedule.peek ports ~port:!pn ~ready in
              if t < !best_time then begin
                best_time := t;
                best_port := !pn
              end
            end;
            incr pn;
            m := !m lsr 1
          done;
          let port = !best_port in
          let dispatch =
            Port_schedule.claim ports ~port ~ready:!best_time ~busy
          in
          c.port_cycles.(port) <- c.port_cycles.(port) + busy;
          if dispatch > ready then
            c.port_contention_cycles <-
              c.port_contention_cycles + (dispatch - ready);
          let latency =
            if kind = 0 && st.s_is_int_div then di.div_lat else ulat
          in
          let complete = dispatch + latency + latency_extra in
          let complete =
            if di.subnormal && (not !subnormal_applied) && kind = 0 then begin
              subnormal_applied := true;
              c.subnormal_assists <- c.subnormal_assists + 1;
              complete + d.subnormal_assist_cycles
            end
            else complete
          in
          (match kind with
          | 1 (* Load *) ->
            last_load_complete := max !last_load_complete complete
          | 0 (* Exec *) ->
            prev_exec_complete := complete;
            last_exec_complete := max !last_exec_complete complete
          | 3 (* Store_data *) ->
            let paddr, size =
              if !store_idx < Array.length di.stores then di.stores.(!store_idx)
              else (0L, 8)
            in
            let vaddr =
              if !store_idx < Array.length di.store_vaddrs then
                di.store_vaddrs.(!store_idx)
              else 0L
            in
            incr store_idx;
            let misses = Memsim.Cache.access l1d ~addr:paddr ~size in
            if misses > 0 then begin
              c.l1d_write_misses <- c.l1d_write_misses + misses;
              let l2m = Memsim.Cache.access l2 ~addr:paddr ~size in
              if l2m > 0 then c.l2_misses <- c.l2_misses + l2m
            end;
            if Memsim.Cache.crosses_line l1d ~addr:vaddr ~size then
              c.misaligned_mem_refs <- c.misaligned_mem_refs + 1;
            record_store paddr size (complete + 1)
          | _ (* Store_addr *) -> ());
          if complete > !inst_complete then inst_complete := complete;
          if record_schedule then
            schedule :=
              {
                inst_index = idx;
                static_index = di.static_index;
                uop = st.s_uops.(k);
                port;
                dispatch;
                complete;
              }
              :: !schedule
        done;
        (* A microcode assist flushes the front end. *)
        if di.subnormal then begin
          frontend_cycle := max !frontend_cycle !inst_complete;
          slots_this_cycle := 0
        end;
        (* Architectural results become visible at instruction completion:
           the producing uop is the last exec uop, or the load for pure
           loads. *)
        let result_time =
          if !last_exec_complete > 0 then !last_exec_complete
          else if !last_load_complete > 0 then !last_load_complete
          else renamed_at
        in
        let writes = st.s_writes in
        for i = 0 to Array.length writes - 1 do
          reg_ready.(writes.(i)) <- result_time
        done;
        if st.s_writes_flags then reg_ready.(flags_root) <- result_time;
        (* In-order retirement. *)
        let ready_to_retire = max !inst_complete !last_retire in
        let width_limited = retire_ring.(!retire_pos) + 1 in
        let retire_at = max ready_to_retire width_limited in
        retire_ring.(!retire_pos) <- retire_at;
        retire_pos := (!retire_pos + 1) mod d.retire_width;
        last_retire := retire_at;
        rob_push retire_at;
        if retire_at > !finish_time then finish_time := retire_at
      end)
    trace;
  c.core_cycles <- !finish_time;
  { cycles = !finish_time; counters = c; schedule = List.rev !schedule }
