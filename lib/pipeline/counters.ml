(** Hardware performance counters, as read by the measurement framework.

    These mirror the events BHive monitors: core cycles, the three L1
    miss counters, MISALIGNED_MEM_REFERENCE, and the OS context-switch
    count (the latter is a software counter on real systems).

    Beyond the paper's event set, the simulator also exposes its own
    introspection counters — per-port busy cycles and per-cause stall
    cycles — which real PMUs surface as UOPS_DISPATCHED_PORT.* and the
    various *_STALLS events. They feed the telemetry layer and never
    participate in the clean-measurement filter. *)

type t = {
  mutable core_cycles : int;
  mutable instructions : int;
  mutable uops : int;
  mutable l1d_read_misses : int;
  mutable l1d_write_misses : int;
  mutable l1i_misses : int;
  mutable l2_misses : int;
  mutable misaligned_mem_refs : int;
  mutable context_switches : int;
  mutable subnormal_assists : int;
  mutable port_cycles : int array;
      (** busy cycles per execution port (length = the uarch's port
          count; [[||]] until a simulation sizes it) *)
  mutable frontend_stall_cycles : int;
      (** cycles the front end lost to L1I/L2 instruction misses *)
  mutable rob_stall_cycles : int;  (** cycles rename waited on a full ROB *)
  mutable port_contention_cycles : int;
      (** uop-cycles spent data-ready but waiting for a free port *)
}

let create () =
  {
    core_cycles = 0;
    instructions = 0;
    uops = 0;
    l1d_read_misses = 0;
    l1d_write_misses = 0;
    l1i_misses = 0;
    l2_misses = 0;
    misaligned_mem_refs = 0;
    context_switches = 0;
    subnormal_assists = 0;
    port_cycles = [||];
    frontend_stall_cycles = 0;
    rob_stall_cycles = 0;
    port_contention_cycles = 0;
  }

let copy t = { t with port_cycles = Array.copy t.port_cycles }

let diff_ports ~begin_ ~end_ =
  let n = max (Array.length begin_) (Array.length end_) in
  let get a i = if i < Array.length a then a.(i) else 0 in
  Array.init n (fun i -> get end_ i - get begin_ i)

(* Counter delta, as computed from the begin/end reads in the paper's
   measure() routine. *)
let diff ~begin_ ~end_ =
  {
    core_cycles = end_.core_cycles - begin_.core_cycles;
    instructions = end_.instructions - begin_.instructions;
    uops = end_.uops - begin_.uops;
    l1d_read_misses = end_.l1d_read_misses - begin_.l1d_read_misses;
    l1d_write_misses = end_.l1d_write_misses - begin_.l1d_write_misses;
    l1i_misses = end_.l1i_misses - begin_.l1i_misses;
    l2_misses = end_.l2_misses - begin_.l2_misses;
    misaligned_mem_refs = end_.misaligned_mem_refs - begin_.misaligned_mem_refs;
    context_switches = end_.context_switches - begin_.context_switches;
    subnormal_assists = end_.subnormal_assists - begin_.subnormal_assists;
    port_cycles = diff_ports ~begin_:begin_.port_cycles ~end_:end_.port_cycles;
    frontend_stall_cycles =
      end_.frontend_stall_cycles - begin_.frontend_stall_cycles;
    rob_stall_cycles = end_.rob_stall_cycles - begin_.rob_stall_cycles;
    port_contention_cycles =
      end_.port_contention_cycles - begin_.port_contention_cycles;
  }

(* A "clean" measurement in the BHive sense: no cache misses of any kind
   and no context switches. *)
let is_clean t =
  t.l1d_read_misses = 0 && t.l1d_write_misses = 0 && t.l1i_misses = 0
  && t.context_switches = 0

let total_port_cycles t = Array.fold_left ( + ) 0 t.port_cycles

let pp_ports fmt t =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "p%d:%d" i c)
    t.port_cycles;
  Format.fprintf fmt "]"

let pp fmt t =
  Format.fprintf fmt
    "cycles=%d insts=%d uops=%d l1d_rd_miss=%d l1d_wr_miss=%d l1i_miss=%d \
     l2_miss=%d misaligned=%d ctx_switches=%d assists=%d ports=%a \
     fe_stall=%d rob_stall=%d port_stall=%d"
    t.core_cycles t.instructions t.uops t.l1d_read_misses t.l1d_write_misses
    t.l1i_misses t.l2_misses t.misaligned_mem_refs t.context_switches
    t.subnormal_assists pp_ports t t.frontend_stall_cycles t.rob_stall_cycles
    t.port_contention_cycles
