(** Cycle-level pipeline simulation: trace construction, the
    out-of-order core model, machine state, and batched entry points. *)

module Core = Core
module Counters = Counters
module Machine = Machine
module Trace = Trace
module Batch = Batch

(** Simulate many independent blocks under one reused machine; results
    are byte-identical to per-block [Machine.create] + [Machine.run]. *)
let simulate_batch = Batch.simulate_batch
