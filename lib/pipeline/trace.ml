(** Dynamic instruction trace: the bridge between architectural execution
    (which determines addresses, faults and data-dependent events) and the
    timing simulation (which replays the trace against pipeline
    resources).

    The trace is split into a per-static-instruction part — decomposition,
    packed uop codes, dependence roots — computed once per distinct
    instruction and shared by every unrolled copy, and a thin dynamic part
    carrying only what truly varies per execution (addresses, events).
    Under the profiler's unroll factors this removes ~99% of the decode
    work the simulator used to repeat per dynamic instruction. *)

open X86

(** Preprocessed static instruction: everything derivable from the
    instruction bytes and the microarchitecture alone. Shared across
    unrolled copies. *)
type static_info = {
  s_inst : Inst.t;
  s_code_len : int;
  s_decomp : Uarch.Uop.decomp;
  s_codes : int array;
      (** int-packed uops ({!Uarch.Flat} layout): port mask, kind,
          latency — the cycle loop reads only this *)
  s_uops : Uarch.Uop.t array;  (** [s_decomp.uops] as an array (schedule recording) *)
  s_n_uops : int;
  s_fused_slots : int;
  s_eliminated : bool;
  s_zero_idiom : bool;
  s_reads : int array;  (** dependence-root indices read (registers) *)
  s_writes : int array;
  s_addr_roots : int array;  (** roots feeding address generation *)
  s_reads_flags : bool;
  s_writes_flags : bool;
  s_is_divider : bool;  (** occupies the unpipelined divider *)
  s_is_int_div : bool;  (** div/idiv: latency resolved from the trace *)
}

type dyn_inst = {
  static : static_info;
  static_index : int;  (** index within the (unrolled) static stream *)
  code_addr : int;  (** byte offset of the instruction in the code stream *)
  loads : (int64 * int) array;  (** physical address and size per load *)
  stores : (int64 * int) array;
  load_vaddrs : int64 array;  (** virtual addresses (for split detection) *)
  store_vaddrs : int64 array;
  div_slow : bool;  (** division executed the wide-dividend path *)
  subnormal : bool;  (** FP op touched subnormals (gradual underflow) *)
  div_lat : int;
      (** effective div/idiv latency given the observed execution path;
          0 for every other instruction *)
}

let build_static (flat : Uarch.Flat.t) (inst : Inst.t) : static_info =
  let decomp, codes = Uarch.Flat.decompose_packed flat inst in
  let addr_roots =
    List.concat_map
      (fun (op : Operand.t) ->
        match op with
        | Operand.Mem m ->
          List.map (fun r -> Reg.root_index (Reg.root r)) (Operand.mem_regs m)
        | _ -> [])
      inst.operands
  in
  {
    s_inst = inst;
    s_code_len = Encoder.encoded_length inst;
    s_decomp = decomp;
    s_codes = codes;
    s_uops = Array.of_list decomp.uops;
    s_n_uops = List.length decomp.uops;
    s_fused_slots = decomp.fused_slots;
    s_eliminated = decomp.eliminated;
    s_zero_idiom = Inst.is_zero_idiom inst;
    s_reads = Array.of_list (List.map Reg.root_index (Inst.read_roots inst));
    s_writes = Array.of_list (List.map Reg.root_index (Inst.write_roots inst));
    s_addr_roots = Array.of_list addr_roots;
    s_reads_flags = Opcode.reads_flags inst.opcode;
    s_writes_flags = Opcode.writes_flags inst.opcode;
    s_is_divider = Uarch.Flat.is_divider flat inst.opcode;
    s_is_int_div = Uarch.Flat.is_int_div flat inst.opcode;
  }

(** Build the dynamic trace for a completed execution of [steps] under
    microarchitecture [d]. Instructions are laid out consecutively, as
    the unrolled benchmark body is; static preprocessing is computed once
    per distinct instruction (unrolled copies share it). *)
let of_steps (d : Uarch.Descriptor.t) (steps : Xsem.Executor.step list) :
    dyn_inst list =
  let flat = Uarch.Descriptor.flat d in
  (* keyed structurally: unrolled copies share the instruction values
     physically, and structurally equal instructions decompose
     identically, so sharing their static info is sound either way *)
  let statics : (Inst.t, static_info) Hashtbl.t = Hashtbl.create 64 in
  let static_of inst =
    match Hashtbl.find_opt statics inst with
    | Some s -> s
    | None ->
      let s = build_static flat inst in
      Hashtbl.add statics inst s;
      s
  in
  (* Byte offsets for the full dynamic stream. *)
  let offset = ref 0 in
  List.map
    (fun (s : Xsem.Executor.step) ->
      let st = static_of s.inst in
      let addr = !offset in
      offset := !offset + st.s_code_len;
      let loads, stores =
        List.partition (fun (a : Memsim.Mmu.access) -> not a.is_store) s.accesses
      in
      let div_slow = List.mem Xsem.Semantics.Div_slow_path s.events in
      let div_lat =
        if not st.s_is_int_div then 0
        else if div_slow then flat.Uarch.Flat.div64_latency
        else if Width.equal s.inst.width Width.Q then
          (* 64-bit divide with zeroed rdx: faster than the wide path but
             slower than the 32-bit divide *)
          flat.Uarch.Flat.divq_latency
        else flat.Uarch.Flat.div32_latency
      in
      {
        static = st;
        static_index = s.index;
        code_addr = addr;
        loads = Array.of_list (List.map (fun (a : Memsim.Mmu.access) -> (a.paddr, a.size)) loads);
        stores = Array.of_list (List.map (fun (a : Memsim.Mmu.access) -> (a.paddr, a.size)) stores);
        load_vaddrs = Array.of_list (List.map (fun (a : Memsim.Mmu.access) -> a.vaddr) loads);
        store_vaddrs = Array.of_list (List.map (fun (a : Memsim.Mmu.access) -> a.vaddr) stores);
        div_slow;
        subnormal = List.mem Xsem.Semantics.Subnormal s.events;
        div_lat;
      })
    steps

let total_uops trace =
  List.fold_left (fun acc di -> acc + di.static.s_n_uops) 0 trace
