(** A simulated machine: one microarchitecture core plus its private L1
    caches. Cache contents persist across [run] calls until [reset],
    mirroring warm-up behaviour on real hardware. The machine also owns
    the simulator's reusable scratch state, so repeated [run] calls
    perform no per-simulation machine-state allocation. *)

type t = {
  descriptor : Uarch.Descriptor.t;
  l1d : Memsim.Cache.t;
  l1i : Memsim.Cache.t;
  l2 : Memsim.Cache.t;  (** unified second level *)
  scratch : Core.Scratch.t;
}

val create : Uarch.Descriptor.t -> t

(** Flush both caches. *)
val reset : t -> unit

(** Simulate the timing of one completed architectural execution;
    deterministic given the machine state. *)
val run : ?record_schedule:bool -> t -> Xsem.Executor.step list -> Core.result
