(** A simulated machine: one microarchitecture core plus its private L1
    caches. Cache contents persist across [run] calls until [reset],
    mirroring warm-up behaviour on real hardware. The machine also owns
    the simulator's scratch state ({!Core.Scratch}), so repeated [run]
    calls perform no per-simulation machine-state allocation. *)

type t = {
  descriptor : Uarch.Descriptor.t;
  l1d : Memsim.Cache.t;
  l1i : Memsim.Cache.t;
  l2 : Memsim.Cache.t;  (** unified second level *)
  scratch : Core.Scratch.t;
}

(* Always-on throughput accounting: simulated blocks and cumulative
   in-simulator nanoseconds. Two plain atomic counters per run — cheap
   enough to never gate, and the source of the bench summary's
   blocks-per-second figure. *)
let m_blocks = Telemetry.Metrics.counter "pipeline.blocks"
let m_sim_ns = Telemetry.Metrics.counter "pipeline.sim_ns"

let create (descriptor : Uarch.Descriptor.t) =
  {
    descriptor;
    l1d = Memsim.Cache.l1_default ();
    l1i = Memsim.Cache.l1_default ();
    l2 = Memsim.Cache.create ~size_bytes:(256 * 1024) ~ways:8 ~line_bytes:64;
    scratch = Core.Scratch.create descriptor;
  }

let reset t =
  Memsim.Cache.flush t.l1d;
  Memsim.Cache.flush t.l1i;
  Memsim.Cache.flush t.l2

(* Simulate the timing of one completed architectural execution. The
   telemetry span wraps the whole decode+simulate step; the branch on
   [Trace.enabled] keeps the traced path (closure, attribute thunk) off
   the hot path when no sink is installed. *)
let run ?record_schedule t (steps : Xsem.Executor.step list) : Core.result =
  let simulate () =
    let t0 = Telemetry.Trace.now_ns () in
    let trace = Trace.of_steps t.descriptor steps in
    let r =
      Core.simulate ?record_schedule ~scratch:t.scratch t.descriptor
        ~l1d:t.l1d ~l1i:t.l1i ~l2:t.l2 trace
    in
    Telemetry.Metrics.add m_sim_ns
      (Int64.to_int (Int64.sub (Telemetry.Trace.now_ns ()) t0));
    Telemetry.Metrics.incr m_blocks;
    r
  in
  if not (Telemetry.Trace.enabled ()) then simulate ()
  else begin
    let result = ref None in
    Telemetry.Trace.span "pipeline.simulate"
      ~attrs:(fun () ->
        match !result with
        | None -> [ ("uarch", Telemetry.Trace.Str t.descriptor.short) ]
        | Some (r : Core.result) ->
          let c = r.counters in
          let ports =
            String.concat ","
              (Array.to_list (Array.map string_of_int c.port_cycles))
          in
          [
            ("uarch", Telemetry.Trace.Str t.descriptor.short);
            ("cycles", Telemetry.Trace.Int r.cycles);
            ("instructions", Telemetry.Trace.Int c.instructions);
            ("uops", Telemetry.Trace.Int c.uops);
            ("port_cycles", Telemetry.Trace.Str ports);
            ("frontend_stall_cycles", Telemetry.Trace.Int c.frontend_stall_cycles);
            ("rob_stall_cycles", Telemetry.Trace.Int c.rob_stall_cycles);
            ( "port_contention_cycles",
              Telemetry.Trace.Int c.port_contention_cycles );
          ])
      (fun () -> result := Some (simulate ()));
    match !result with Some r -> r | None -> assert false
  end
