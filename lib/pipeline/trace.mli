(** Dynamic instruction trace: the bridge between architectural
    execution (addresses, faults, data-dependent events) and the timing
    simulation that replays it against pipeline resources.

    Split into a per-static-instruction part (decomposition, packed uop
    codes, dependence roots — shared by every unrolled copy) and a thin
    dynamic part carrying only what varies per execution. *)

(** Preprocessed static instruction: everything derivable from the
    instruction and the microarchitecture alone. *)
type static_info = {
  s_inst : X86.Inst.t;
  s_code_len : int;
  s_decomp : Uarch.Uop.decomp;
  s_codes : int array;
      (** int-packed uops ({!Uarch.Flat} layout): port mask, kind,
          latency — the cycle loop reads only this *)
  s_uops : Uarch.Uop.t array;  (** [s_decomp.uops] as an array (schedule recording) *)
  s_n_uops : int;
  s_fused_slots : int;
  s_eliminated : bool;
  s_zero_idiom : bool;
  s_reads : int array;  (** dependence-root indices read (registers) *)
  s_writes : int array;
  s_addr_roots : int array;  (** roots feeding address generation *)
  s_reads_flags : bool;
  s_writes_flags : bool;
  s_is_divider : bool;  (** occupies the unpipelined divider *)
  s_is_int_div : bool;  (** div/idiv: latency resolved from the trace *)
}

type dyn_inst = {
  static : static_info;
  static_index : int;  (** index within the (unrolled) static stream *)
  code_addr : int;  (** byte offset of the instruction in the code stream *)
  loads : (int64 * int) array;  (** physical address and size per load *)
  stores : (int64 * int) array;
  load_vaddrs : int64 array;  (** virtual addresses (for split detection) *)
  store_vaddrs : int64 array;
  div_slow : bool;  (** division took the wide-dividend path *)
  subnormal : bool;  (** FP op touched subnormals (gradual underflow) *)
  div_lat : int;
      (** effective div/idiv latency given the observed execution path;
          0 for every other instruction *)
}

(** Build the dynamic trace of a completed execution under
    microarchitecture [d]; instructions are laid out consecutively, as
    the unrolled benchmark body is. *)
val of_steps : Uarch.Descriptor.t -> Xsem.Executor.step list -> dyn_inst list

val total_uops : dyn_inst list -> int
