(** Hardware performance counters as read by the measurement framework,
    mirroring the events BHive monitors: core cycles, the cache-miss
    counters, MISALIGNED_MEM_REFERENCE, and the OS context-switch count.

    The simulator additionally exposes introspection counters — busy
    cycles per execution port and stall cycles per cause (front-end
    instruction misses, ROB-full rename stalls, port contention) — the
    events a real PMU reports as UOPS_DISPATCHED_PORT.* /
    RESOURCE_STALLS.*. They feed the telemetry layer and are ignored
    by {!is_clean}. *)

type t = {
  mutable core_cycles : int;
  mutable instructions : int;
  mutable uops : int;
  mutable l1d_read_misses : int;
  mutable l1d_write_misses : int;
  mutable l1i_misses : int;
  mutable l2_misses : int;
  mutable misaligned_mem_refs : int;
  mutable context_switches : int;
  mutable subnormal_assists : int;
  mutable port_cycles : int array;
      (** busy cycles per execution port; [[||]] until a simulation
          sizes it to the uarch's port count *)
  mutable frontend_stall_cycles : int;
      (** cycles the front end lost to L1I/L2 instruction misses *)
  mutable rob_stall_cycles : int;  (** cycles rename waited on a full ROB *)
  mutable port_contention_cycles : int;
      (** uop-cycles spent data-ready but waiting for a free port *)
}

val create : unit -> t

(** Deep copy (the port array is duplicated). *)
val copy : t -> t

(** Counter delta, as computed from the begin/end reads in the paper's
    measure() routine. Port arrays of different lengths are
    zero-padded. *)
val diff : begin_:t -> end_:t -> t

(** A "clean" measurement in the BHive sense: no cache misses of any
    kind and no context switches. (L2 misses imply L1 misses, so they
    need no separate clause.) *)
val is_clean : t -> bool

(** Sum of {!field-port_cycles}. *)
val total_port_cycles : t -> int

val pp_ports : Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit
