(** Batched simulation: reuse one {!Machine.t} — caches, port scheduler,
    scratch arrays — across many independent blocks instead of building
    machine state per block.

    [Memsim.Cache.flush] restores a cache to its freshly-created state,
    and {!Core.Scratch} resets by epoch bump, so a [~fresh:true] run on a
    reused machine is byte-identical to a run on a brand-new one; the
    identity is pinned by the test suite and by the bench diff gate. *)

type t = { machine : Machine.t }

let create (d : Uarch.Descriptor.t) = { machine = Machine.create d }
let machine t = t.machine

(** Simulate one block. [fresh] (default [false]) flushes the caches
    first, making the run independent of previously simulated blocks;
    leave it unset to model a warm machine across consecutive runs of
    the same block (the profiler's warmup/measure pattern). *)
let run ?record_schedule ?(fresh = false) t steps =
  if fresh then Machine.reset t.machine;
  Machine.run ?record_schedule t.machine steps

(* Per-domain batch cache, keyed by descriptor physical identity. The
   shipped descriptors are module-level constants, so this holds at most
   a few entries per domain; domains never share a batch, keeping the
   mutable scratch state race-free. *)
let dls_cache : (Uarch.Descriptor.t * t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(** The calling domain's cached batch for [d], created on first use. *)
let for_descriptor (d : Uarch.Descriptor.t) =
  let cache = Domain.DLS.get dls_cache in
  let rec find = function
    | [] -> None
    | (d', b) :: tl -> if d' == d then Some b else find tl
  in
  match find !cache with
  | Some b -> b
  | None ->
    let b = create d in
    cache := (d, b) :: !cache;
    b

(** Simulate many independent blocks under one machine; each block runs
    from cold caches ([fresh]), so results match per-block
    [Machine.create] exactly. *)
let simulate_batch ?record_schedule (d : Uarch.Descriptor.t)
    (steps_list : Xsem.Executor.step list list) : Core.result list =
  let b = for_descriptor d in
  List.map (fun steps -> run ?record_schedule ~fresh:true b steps) steps_list
