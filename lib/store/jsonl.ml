(* Crash-safe append-only JSONL files.

   The run journal (lib/manifest) needs the same discipline the store's
   segments follow: a record is only trusted once its terminating
   newline is on disk, and a torn tail — the half-written record a kill
   leaves behind — is truncated away at open time, never served. This
   module owns exactly that file discipline and nothing else: lines in,
   lines out. It does not parse JSON; callers pass a [valid] predicate
   so that a final record whose bytes made it to disk but whose content
   is garbage is also treated as torn. A garbage line in the {e middle}
   of the file is not a torn tail — it means the file is not what we
   wrote, and opening fails rather than silently dropping records. *)

type t = { fd : Unix.file_descr; path : string }

let read_all fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off < len then begin
      match Eintr.read fd buf off (len - off) with
      | 0 -> off
      | n -> go (off + n)
    end
    else off
  in
  let got = go 0 in
  Bytes.sub_string buf 0 got

(* Scan the complete ('\n'-terminated) lines of [contents]. Returns the
   valid prefix plus the byte offset where the file should be truncated
   ([None] when every byte is sound), or [Error] for mid-file
   corruption. *)
let scan ~valid contents =
  let len = String.length contents in
  let rec go off acc =
    if off >= len then Ok (List.rev acc, None)
    else
      match String.index_from_opt contents off '\n' with
      | None -> Ok (List.rev acc, Some off) (* torn tail: no newline *)
      | Some nl ->
        let line = String.sub contents off (nl - off) in
        if valid line then go (nl + 1) (line :: acc)
        else if nl + 1 >= len then Ok (List.rev acc, Some off)
        else Error off
  in
  go 0 []

let open_ ?(fresh = false) ?(valid = fun _ -> true) path =
  match Unix.openfile path [ O_RDWR; O_CREAT; O_CLOEXEC ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "cannot open %s: %s" path (Unix.error_message e))
  | fd ->
    if fresh then Unix.ftruncate fd 0;
    let len = (Unix.fstat fd).Unix.st_size in
    let contents = read_all fd len in
    (match scan ~valid contents with
    | Error off ->
      Unix.close fd;
      Error
        (Printf.sprintf
           "%s: corrupt record at byte %d (not at the tail — refusing to \
            truncate mid-file)"
           path off)
    | Ok (lines, truncate_at) ->
      Option.iter (fun off -> Unix.ftruncate fd off) truncate_at;
      ignore (Unix.lseek fd 0 Unix.SEEK_END);
      Ok ({ fd; path }, lines))

(* Eintr-wrapped: a SIGTERM arriving mid-append must not tear the
   journal tail beyond what the open-time truncation already covers. *)
let append t line = Eintr.really_write_substring t.fd (line ^ "\n")

let path t = t.path
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
