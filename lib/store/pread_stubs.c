/* pread(2) binding for the store's lock-free warm read path.
 *
 * The Unix library's read() shares one file offset per descriptor, so
 * concurrent readers of a segment would have to serialise on a mutex
 * around seek+read. pread carries its own offset and never touches
 * the shared one, so any number of domains can read the same segment
 * fd in parallel.
 *
 * The runtime lock is released around the syscall (that is the whole
 * point — readers must overlap), which means the OCaml bytes buffer
 * cannot be touched while blocked: the GC may move it. The data lands
 * in a malloc'd staging buffer and is copied out after the lock is
 * reacquired.
 *
 * Returns the byte count (0 at EOF, short counts possible) or -1 on
 * any error; errno discrimination is deliberately not exposed — the
 * OCaml caller treats every failure as "segment changed under us" and
 * retries under the shard lock, where ordinary channel I/O reports
 * real errors with full fidelity. */

#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <errno.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

CAMLprim value bhive_store_pread(value vfd, value vbuf, value vpos, value vlen,
                                 value voff)
{
  CAMLparam5(vfd, vbuf, vpos, vlen, voff);
  int fd = Int_val(vfd);
  long pos = Long_val(vpos);
  long len = Long_val(vlen);
  long long off = (long long)Long_val(voff);
  ssize_t n;

  if (len < 0 || pos < 0) CAMLreturn(Val_long(-1));
  /* the destination slice must lie inside the OCaml bytes block, or
   * the copy-out below would scribble past the heap block */
  if ((uintnat)pos + (uintnat)len > caml_string_length(vbuf))
    CAMLreturn(Val_long(-1));
  if (len == 0) CAMLreturn(Val_long(0));

  char *staging = malloc((size_t)len);
  if (staging == NULL) caml_raise_out_of_memory();

  caml_release_runtime_system();
  do {
    n = pread(fd, staging, (size_t)len, (off_t)off);
  } while (n == -1 && errno == EINTR);
  caml_acquire_runtime_system();

  if (n > 0) memcpy(Bytes_val(vbuf) + pos, staging, (size_t)n);
  free(staging);
  CAMLreturn(Val_long(n == -1 ? -1 : n));
}
