(* Canonical binary encoding helpers shared by the segment format and
   the stable-fingerprint builders in lib/engine. All multi-byte
   integers are little-endian and fixed-width so the same value always
   encodes to the same bytes regardless of host word size. *)

let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let u16 buf v =
  u8 buf v;
  u8 buf (v lsr 8)

let u32 buf v =
  u16 buf v;
  u16 buf (v lsr 16)

let i64 buf (v : int64) =
  for i = 0 to 7 do
    u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

(* OCaml ints are 63-bit on 64-bit hosts; widen to a fixed 64 bits. *)
let int buf v = i64 buf (Int64.of_int v)
let bool buf b = u8 buf (if b then 1 else 0)

(* Bit-exact: NaN payloads and signed zeros distinguish, which is what
   a fingerprint wants. *)
let float buf f = i64 buf (Int64.bits_of_float f)
let int32 buf (v : int32) = i64 buf (Int64.of_int32 v)

let str buf s =
  u32 buf (String.length s);
  Buffer.add_string buf s

let bytes buf b = str buf (Bytes.to_string b)

let option buf enc = function
  | None -> u8 buf 0
  | Some v ->
    u8 buf 1;
    enc buf v

let list buf enc xs =
  u32 buf (List.length xs);
  List.iter (fun x -> enc buf x) xs

(* --- readers (segment scan) --- *)

let get_u8 b off = Char.code (Bytes.get b off)
let get_u16 b off = get_u8 b off lor (get_u8 b (off + 1) lsl 8)
let get_u32 b off = get_u16 b off lor (get_u16 b (off + 2) lsl 16)

let get_i64 b off =
  let r = ref 0L in
  for i = 7 downto 0 do
    r := Int64.logor (Int64.shift_left !r 8) (Int64.of_int (get_u8 b (off + i)))
  done;
  !r

(* --- FNV-1a 64-bit, used as the per-record checksum. Cheap enough to
   run on every append and every open-time scan; torn or bit-flipped
   tail records fail it and are truncated rather than served. --- *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv1a64 ?(h0 = fnv_offset) s =
  let h = ref h0 in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let fnv1a64_bytes ?(h0 = fnv_offset) ~off ~len b =
  let h = ref h0 in
  for i = off to off + len - 1 do
    h :=
      Int64.mul (Int64.logxor !h (Int64.of_int (get_u8 b i))) fnv_prime
  done;
  !h

(* --- hex, for export/import payloads --- *)

let to_hex s =
  String.concat ""
    (List.init (String.length s) (fun i ->
         Printf.sprintf "%02x" (Char.code s.[i])))

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let out = Bytes.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      match (nibble s.[2 * i], nibble s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.unsafe_to_string out) else None
