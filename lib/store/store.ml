(* See store.mli. *)

module Sha256 = Sha256
module Codec = Codec
module Jsonl = Jsonl
module Eintr = Eintr

let shard_count = 16
let segment_magic = "BHIVESTORE1\n"
let idx_magic = "BHIVEIDX1\n"

(* Payloads are Marshal blobs, which are not stable across OCaml
   releases or word sizes. The writer stamps its format into the
   segment header; a segment from an incompatible writer is treated as
   empty (stale) and rewritten on first append, so an OCaml upgrade
   degrades to a cold store instead of undefined behaviour. The
   sidecar index carries the same tag, so a foreign sidecar is never
   trusted either. *)
let format_tag = Printf.sprintf "marshal/%s/%d" Sys.ocaml_version Sys.word_size
let record_magic = 0xB17EC0DE
let idx_entry_magic = 0xB17E1DE5
let max_key_len = 4096
let max_payload_len = 1 lsl 26

type entry = { e_gen : string; e_off : int; e_len : int }

type index_mode = Persisted | Scanned

type shard = {
  path : string;
  index : (string, entry) Hashtbl.t;
  lock : Mutex.t; (* intra-process exclusion (domains/threads) *)
  lockf_fd : Unix.file_descr;
      (* cross-process exclusion: fcntl-style advisory lock on a
         sibling .lock file. fcntl locks are per-process (a second
         lock by another thread of the same process would succeed and
         its unlock would release ours), so the Mutex above is always
         taken first and the file lock only ever held by one thread of
         this process at a time. *)
  mutable size : int; (* valid byte length of the segment *)
  mutable oc : out_channel option;
  mutable ic : in_channel option;
  mutable idx_oc : out_channel option; (* sidecar append channel *)
  mutable read_fd : Unix.file_descr option;
      (* lock-free pread descriptor for [get]'s warm path. Deliberately
         NOT closed by [close_channels]: a reader may be mid-pread on
         it without holding the shard lock, and closing would let the
         OS recycle the fd number under that read. Ordinary appends and
         torn-tail truncations happen in place on the same inode, so
         the descriptor stays valid and a short read tells the reader
         the file shrank. Whenever the segment inode IS replaced or
         removed — gc's rename-over-tmp, a rescan after a sibling
         process compacted the shared store, ensure_oc recreating a
         removed segment — [reanchor_locked] must run under the locks:
         it repoints this fd number at the new inode with dup2, so
         concurrent readers switch inodes atomically and the fd number
         is never recycled under them. Readers additionally verify the
         whole record frame (key, gen, checksum) before trusting a
         payload, so a read that races an inode swap degrades to the
         locked resync path, never to wrong bytes. *)
  mutable seg_id : int * int;
      (* (st_dev, st_ino) of the segment inode the in-memory index and
         [read_fd] describe; [no_seg_id] when the segment is absent.
         [resync] compares it against the file on disk to catch a
         sibling process swapping the inode (gc) even when the sizes
         coincide. *)
  mutable records : int; (* records on disk, including superseded *)
  mutable superseded : int;
  mutable torn : int; (* torn-tail truncation events at open/resync *)
  mutable stale : bool;
  mutable index_mode : index_mode; (* how this shard's open resolved *)
  mutable open_seconds : float; (* wall time of the open *)
}

type t = { t_dir : string; shards : shard array; mutable closed : bool }

let dir t = t.t_dir

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Whole-file advisory lock on the shard's .lock sibling. Caller must
   already hold the shard Mutex (see the lockf_fd field comment). *)
let with_file_lock sh f =
  Eintr.lockf sh.lockf_fd Unix.F_LOCK 0;
  Fun.protect ~finally:(fun () -> Unix.lockf sh.lockf_fd Unix.F_ULOCK 0) f

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let header () =
  let buf = Buffer.create 32 in
  Buffer.add_string buf segment_magic;
  Codec.str buf format_tag;
  Buffer.contents buf

let idx_header () =
  let buf = Buffer.create 32 in
  Buffer.add_string buf idx_magic;
  Codec.str buf format_tag;
  Buffer.contents buf

(* The segment header is a pure function of the format tag, so the
   data region always starts at the same offset — which is what lets
   the sidecar loader validate the header with one small pread. *)
let data_start = lazy (String.length (header ()))

let encode_record ~key ~gen payload =
  let buf =
    Buffer.create
      (24 + String.length key + String.length gen + String.length payload)
  in
  Codec.u32 buf record_magic;
  Codec.u16 buf (String.length key);
  Codec.u16 buf (String.length gen);
  Codec.u32 buf (String.length payload);
  Buffer.add_string buf key;
  Buffer.add_string buf gen;
  Buffer.add_string buf payload;
  let sum = Codec.fnv1a64 (Buffer.contents buf) in
  Codec.i64 buf sum;
  Buffer.contents buf

(* Scan one decoded segment image. Returns the byte offset of the end
   of the last intact record ("good" prefix) plus what was indexed; a
   record that fails frame bounds or checksum ends the scan — the log
   is append-only, so everything past the first bad byte is a torn
   tail from an interrupted writer. [emit] sees records in log order,
   later generations superseding earlier ones at the caller. *)
let scan_records b ~start ~len ~emit =
  let pos = ref start in
  let torn = ref false in
  (try
     while !pos < len do
       let off = !pos in
       if off + 12 > len then raise Exit;
       if Codec.get_u32 b off <> record_magic then raise Exit;
       let klen = Codec.get_u16 b (off + 4) in
       let glen = Codec.get_u16 b (off + 6) in
       let plen = Codec.get_u32 b (off + 8) in
       if klen = 0 || klen > max_key_len || glen > max_key_len
          || plen > max_payload_len
       then raise Exit;
       let body_len = 12 + klen + glen + plen in
       if off + body_len + 8 > len then raise Exit;
       let sum = Codec.fnv1a64_bytes ~off ~len:body_len b in
       if sum <> Codec.get_i64 b (off + body_len) then raise Exit;
       let key = Bytes.sub_string b (off + 12) klen in
       let gen = Bytes.sub_string b (off + 12 + klen) glen in
       emit ~key ~gen ~payload_off:(off + 12 + klen + glen) ~payload_len:plen;
       pos := off + body_len + 8
     done
   with Exit -> torn := true);
  (!pos, !torn)

let scan_image b ~len ~emit =
  let header_ok, data_start, stale =
    let hm = String.length segment_magic in
    if len < hm + 4 then (false, 0, len > 0)
    else if Bytes.sub_string b 0 hm <> segment_magic then (false, 0, true)
    else
      let tag_len = Codec.get_u32 b hm in
      if tag_len > 256 || len < hm + 4 + tag_len then (false, 0, true)
      else if Bytes.sub_string b (hm + 4) tag_len <> format_tag then
        (false, 0, true)
      else (true, hm + 4 + tag_len, false)
  in
  if not header_ok then (`Stale stale, 0)
  else begin
    let good, torn = scan_records b ~start:data_start ~len ~emit in
    (`Good good, if torn then 1 else 0)
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

(* ------------------------------------------------------------------ *)
(* The persisted sidecar index                                         *)
(* ------------------------------------------------------------------ *)

(* Each segment [seg-NN.bhs] may carry a sidecar [seg-NN.bhs.idx]:
   the index header (magic + format tag) followed by one checksummed
   entry per segment record, appended in segment order:

     u32 magic | i64 record_off | u16 key_len | u16 gen_len
     | u32 payload_len | key | gen | u64 FNV-1a over all of the above

   The entry names the record's absolute offset in the segment, so a
   warm open indexes the shard with no segment scan at all. The
   discipline is segment-record-first, sidecar-entry-second (both
   under the shard file lock), which bounds what a crash can leave:

   - a torn sidecar *tail* (killed mid-entry-append): truncated at
     open, and the records it no longer covers are re-scanned from
     the segment suffix and the entries re-appended;
   - a sidecar *gap* (killed between the segment append and the entry
     append, possibly with another process appending afterwards): the
     open-time walk scans exactly the gap bytes from the segment and
     heals the sidecar;
   - anything else — bad header, overlapping or out-of-bounds entries,
     a tail entry whose record bytes do not verify against the
     segment — distrusts the whole sidecar and falls back to today's
     full segment scan (which then rewrites a fresh sidecar).

   Every fallback path re-derives the index from segment bytes and
   per-record checksums, so sidecar corruption can cost time, never
   wrong answers. *)

type ientry = { i_off : int; i_key : string; i_gen : string; i_plen : int }

let idx_path path = path ^ ".idx"

let ientry_payload_off e =
  e.i_off + 12 + String.length e.i_key + String.length e.i_gen

let ientry_end e = ientry_payload_off e + e.i_plen + 8

let encode_idx_entry ~record_off ~key ~gen ~payload_len =
  let buf = Buffer.create (28 + String.length key + String.length gen) in
  Codec.u32 buf idx_entry_magic;
  Codec.i64 buf (Int64.of_int record_off);
  Codec.u16 buf (String.length key);
  Codec.u16 buf (String.length gen);
  Codec.u32 buf payload_len;
  Buffer.add_string buf key;
  Buffer.add_string buf gen;
  let sum = Codec.fnv1a64 (Buffer.contents buf) in
  Codec.i64 buf sum;
  Buffer.contents buf

(* Same good-prefix discipline as [scan_records]: the first entry that
   fails bounds or checksum ends the scan, and everything after it is
   treated as a torn tail. *)
let scan_idx_entries b ~start ~len ~emit =
  let pos = ref start in
  let torn = ref false in
  (try
     while !pos < len do
       let off = !pos in
       if off + 20 > len then raise Exit;
       if Codec.get_u32 b off <> idx_entry_magic then raise Exit;
       let roff = Codec.get_i64 b (off + 4) in
       let klen = Codec.get_u16 b (off + 12) in
       let glen = Codec.get_u16 b (off + 14) in
       let plen = Codec.get_u32 b (off + 16) in
       if klen = 0 || klen > max_key_len || glen > max_key_len
          || plen > max_payload_len
          || Int64.compare roff 0L < 0
          || Int64.compare roff (Int64.of_int max_int) > 0
       then raise Exit;
       let body_len = 20 + klen + glen in
       if off + body_len + 8 > len then raise Exit;
       let sum = Codec.fnv1a64_bytes ~off ~len:body_len b in
       if sum <> Codec.get_i64 b (off + body_len) then raise Exit;
       let key = Bytes.sub_string b (off + 20) klen in
       let gen = Bytes.sub_string b (off + 20 + klen) glen in
       emit { i_off = Int64.to_int roff; i_key = key; i_gen = gen; i_plen = plen };
       pos := off + body_len + 8
     done
   with Exit -> torn := true);
  (!pos, !torn)

(* Parse a sidecar image: [None] if the header is missing, foreign or
   malformed; otherwise the good-prefix entries plus the prefix end
   (entries beyond it are a torn tail). *)
let parse_idx_image b =
  let len = Bytes.length b in
  let hm = String.length idx_magic in
  if len < hm + 4 then None
  else if Bytes.sub_string b 0 hm <> idx_magic then None
  else
    let tag_len = Codec.get_u32 b hm in
    if tag_len > 256 || len < hm + 4 + tag_len then None
    else if Bytes.sub_string b (hm + 4) tag_len <> format_tag then None
    else begin
      let entries = ref [] in
      let good, _torn =
        scan_idx_entries b ~start:(hm + 4 + tag_len) ~len ~emit:(fun e ->
            entries := e :: !entries)
      in
      Some (List.rev !entries, good)
    end

(* Atomically replace the sidecar with a fresh one describing
   [records] (in segment order). Caller holds the shard file lock. *)
let write_sidecar path records =
  let tmp = idx_path path ^ ".tmp" in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
  in
  output_string oc (idx_header ());
  List.iter
    (fun (record_off, key, gen, payload_len) ->
      output_string oc (encode_idx_entry ~record_off ~key ~gen ~payload_len))
    records;
  close_out oc;
  Sys.rename tmp (idx_path path)

let remove_if_exists path =
  if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* pread                                                               *)
(* ------------------------------------------------------------------ *)

external pread_unsafe : Unix.file_descr -> Bytes.t -> int -> int -> int -> int
  = "bhive_store_pread"

(* Read exactly [len] bytes at absolute file offset [off]; [false] on
   EOF, short file or any I/O error — the caller falls back to the
   locked resync path, which reports real errors with full fidelity. *)
let pread_exact fd b ~pos ~len ~off =
  let rec go pos remaining off =
    remaining = 0
    ||
    match pread_unsafe fd b pos remaining off with
    | n when n <= 0 -> false
    | n -> go (pos + n) (remaining - n) (off + n)
  in
  go pos len off

let ensure_read_fd sh =
  match sh.read_fd with
  | Some fd -> fd
  | None ->
    let fd = Unix.openfile sh.path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 in
    sh.read_fd <- Some fd;
    fd

let no_seg_id = (-1, -1)

(* Re-anchor the shard to whatever inode currently lives at [sh.path]:
   record its identity for [resync]'s replacement check and, if a
   lock-free read descriptor is already out, atomically repoint that
   fd NUMBER at the new inode with dup2 — concurrent readers holding
   the number switch inodes without the OS ever recycling it under a
   mid-flight pread. When the segment is absent the descriptor is
   parked on /dev/null, so stale reads short-read and fall back to the
   locked path. Must be called, under the shard Mutex and file lock,
   whenever the segment inode may have been replaced or removed. *)
let reanchor_locked sh =
  match Unix.openfile sh.path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | nfd -> (
    let st = Unix.fstat nfd in
    sh.seg_id <- (st.Unix.st_dev, st.Unix.st_ino);
    match sh.read_fd with
    | Some fd ->
      Unix.dup2 ~cloexec:true nfd fd;
      Unix.close nfd
    | None -> Unix.close nfd)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> (
    sh.seg_id <- no_seg_id;
    match sh.read_fd with
    | Some fd ->
      let nfd = Unix.openfile "/dev/null" [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 in
      Unix.dup2 ~cloexec:true nfd fd;
      Unix.close nfd
    | None -> ())

(* Lock-free verified read of the whole record frame behind [e]:
   framing, key, gen and checksum must all match the index entry
   before the payload is trusted. [None] means the segment changed
   identity under the reader (shrank, or an inode swap raced the
   probe) — the caller retries under the full locks, where [resync]
   restores index/descriptor coherence. *)
let pread_record_verified fd ~key ~gen e =
  let klen = String.length key and glen = String.length gen in
  let roff = e.e_off - 12 - klen - glen in
  let rlen = 12 + klen + glen + e.e_len + 8 in
  let b = Bytes.create rlen in
  let ok =
    (try pread_exact fd b ~pos:0 ~len:rlen ~off:roff
     with Unix.Unix_error _ -> false)
    && Codec.get_u32 b 0 = record_magic
    && Codec.get_u16 b 4 = klen
    && Codec.get_u16 b 6 = glen
    && Codec.get_u32 b 8 = e.e_len
    && Bytes.sub_string b 12 klen = key
    && Bytes.sub_string b (12 + klen) glen = gen
    && Codec.fnv1a64_bytes ~off:0 ~len:(rlen - 8) b = Codec.get_i64 b (rlen - 8)
  in
  if ok then Some (Bytes.sub_string b (12 + klen + glen) e.e_len) else None

(* ------------------------------------------------------------------ *)
(* Shard open / rescan                                                 *)
(* ------------------------------------------------------------------ *)

let close_channels sh =
  (match sh.oc with
  | Some oc ->
    close_out_noerr oc;
    sh.oc <- None
  | None -> ());
  (match sh.idx_oc with
  | Some oc ->
    close_out_noerr oc;
    sh.idx_oc <- None
  | None -> ());
  match sh.ic with
  | Some ic ->
    close_in_noerr ic;
    sh.ic <- None
  | None -> ()

let ensure_idx_oc sh =
  match sh.idx_oc with
  | Some oc -> oc
  | None ->
    let oc =
      open_out_gen
        [ Open_wronly; Open_creat; Open_append; Open_binary ]
        0o644 (idx_path sh.path)
    in
    if out_channel_length oc = 0 then begin
      output_string oc (idx_header ());
      flush oc
    end;
    sh.idx_oc <- Some oc;
    oc

(* Rebuild the shard's index from the segment bytes on disk,
   truncating any torn tail, and rewrite the sidecar to match (or
   remove it, for stale/absent segments). Must hold both the shard
   Mutex and the shard file lock (the truncate races with another
   process's in-flight append otherwise). *)
let rescan_locked sh =
  close_channels sh;
  Hashtbl.reset sh.index;
  sh.records <- 0;
  sh.superseded <- 0;
  sh.stale <- false;
  sh.size <- 0;
  if Sys.file_exists sh.path then begin
    let b = read_file sh.path in
    let len = Bytes.length b in
    let sidecar = ref [] in
    let result, torn =
      scan_image b ~len ~emit:(fun ~key ~gen ~payload_off ~payload_len ->
          sh.records <- sh.records + 1;
          if Hashtbl.mem sh.index key then sh.superseded <- sh.superseded + 1;
          Hashtbl.replace sh.index key
            { e_gen = gen; e_off = payload_off; e_len = payload_len };
          let record_off =
            payload_off - 12 - String.length key - String.length gen
          in
          sidecar := (record_off, key, gen, payload_len) :: !sidecar)
    in
    sh.torn <- sh.torn + torn;
    match result with
    | `Stale nonempty ->
      (* foreign or pre-format segment: serve nothing from it and
         rewrite it wholesale on first append *)
      sh.stale <- nonempty;
      sh.size <- 0;
      remove_if_exists (idx_path sh.path)
    | `Good good ->
      if good < len then Unix.truncate sh.path good;
      sh.size <- good;
      write_sidecar sh.path (List.rev !sidecar)
  end
  else remove_if_exists (idx_path sh.path);
  (* the rescan may have been triggered by a sibling process swapping
     the segment inode (gc): repoint the read descriptor at whatever
     the index now describes *)
  reanchor_locked sh

(* Open a shard through its persisted sidecar: validate the sidecar,
   check the segment header and the last indexed record against the
   segment bytes, scan only the bytes the sidecar does not cover
   (gaps from crashed writers, the un-indexed suffix), and heal the
   sidecar with what those scans found. [false] means the sidecar
   cannot be trusted and the caller must fall back to a full scan.
   Must hold the shard Mutex and the shard file lock. *)
let try_load_index_locked sh =
  match parse_idx_image (read_file (idx_path sh.path)) with
  | None -> false
  | Some (entries, good_prefix) ->
    (* drop the torn sidecar tail now so later appends land on an
       entry boundary; the records it no longer covers are re-scanned
       below as part of the suffix *)
    let isize = (Unix.stat (idx_path sh.path)).Unix.st_size in
    if good_prefix < isize then Unix.truncate (idx_path sh.path) good_prefix;
    let seg_len =
      match Unix.stat sh.path with
      | st -> st.Unix.st_size
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> 0
    in
    let ds = Lazy.force data_start in
    let fd = ensure_read_fd sh in
    let header_ok =
      seg_len >= ds
      &&
      let hb = Bytes.create ds in
      pread_exact fd hb ~pos:0 ~len:ds ~off:0
      && Bytes.to_string hb = header ()
    in
    if not header_ok then false
    else begin
      let entries =
        List.sort (fun a b -> compare a.i_off b.i_off) entries
      in
      (* binding check: the last indexed record's bytes must verify
         against its entry, which catches a sidecar describing a
         segment that was since rewritten *)
      let entry_verifies e =
        let rend = ientry_end e in
        let rlen = rend - e.i_off in
        let klen = String.length e.i_key and glen = String.length e.i_gen in
        rend <= seg_len
        &&
        let b = Bytes.create rlen in
        pread_exact fd b ~pos:0 ~len:rlen ~off:e.i_off
        && Codec.get_u32 b 0 = record_magic
        && Codec.get_u16 b 4 = klen
        && Codec.get_u16 b 6 = glen
        && Codec.get_u32 b 8 = e.i_plen
        && Bytes.sub_string b 12 klen = e.i_key
        && Bytes.sub_string b (12 + klen) glen = e.i_gen
        && Codec.fnv1a64_bytes ~off:0 ~len:(rlen - 8) b
           = Codec.get_i64 b (rlen - 8)
      in
      let tail_ok =
        match List.rev entries with [] -> true | last :: _ -> entry_verifies last
      in
      if not tail_ok then false
      else begin
        let ok = ref true in
        let emitted = ref [] (* reverse segment order *) in
        let repairs = ref [] (* entries to append for scanned records *) in
        (* scan segment bytes [start, stop) that the sidecar does not
           cover; a torn record is tolerated only at the very tail of
           the file *)
        let scan_region ~start ~stop ~is_tail =
          let rlen = stop - start in
          let b = Bytes.create rlen in
          if not (pread_exact fd b ~pos:0 ~len:rlen ~off:start) then begin
            ok := false;
            start
          end
          else begin
            let good, torn =
              scan_records b ~start:0 ~len:rlen
                ~emit:(fun ~key ~gen ~payload_off ~payload_len ->
                  let record_off =
                    start + payload_off - 12 - String.length key
                    - String.length gen
                  in
                  let r = (record_off, key, gen, payload_len) in
                  emitted := r :: !emitted;
                  repairs := r :: !repairs)
            in
            if torn then
              if is_tail then begin
                sh.torn <- sh.torn + 1;
                Unix.truncate sh.path (start + good)
              end
              else ok := false
            else if (not is_tail) && start + good <> stop then ok := false;
            start + good
          end
        in
        let pos = ref ds in
        List.iter
          (fun e ->
            if !ok then
              if e.i_off < !pos then ok := false (* overlap: distrust *)
              else begin
                if e.i_off > !pos then
                  ignore (scan_region ~start:!pos ~stop:e.i_off ~is_tail:false);
                if !ok then begin
                  let rend = ientry_end e in
                  if rend > seg_len then ok := false
                  else begin
                    emitted := (e.i_off, e.i_key, e.i_gen, e.i_plen) :: !emitted;
                    pos := rend
                  end
                end
              end)
          entries;
        let final =
          if !ok && !pos < seg_len then
            scan_region ~start:!pos ~stop:seg_len ~is_tail:true
          else !pos
        in
        if not !ok then false
        else begin
          Hashtbl.reset sh.index;
          sh.records <- 0;
          sh.superseded <- 0;
          sh.stale <- false;
          List.iter
            (fun (record_off, key, gen, payload_len) ->
              sh.records <- sh.records + 1;
              if Hashtbl.mem sh.index key then
                sh.superseded <- sh.superseded + 1;
              Hashtbl.replace sh.index key
                {
                  e_gen = gen;
                  e_off = record_off + 12 + String.length key
                          + String.length gen;
                  e_len = payload_len;
                })
            (List.rev !emitted);
          sh.size <- final;
          (* heal: persist entries for every record a region scan
             found, so the next open needs no scan at all *)
          (match List.rev !repairs with
          | [] -> ()
          | rs ->
            let oc = ensure_idx_oc sh in
            List.iter
              (fun (record_off, key, gen, payload_len) ->
                output_string oc
                  (encode_idx_entry ~record_off ~key ~gen ~payload_len))
              rs;
            flush oc);
          true
        end
      end
    end

let load_shard_locked sh =
  let loaded =
    Sys.file_exists sh.path
    && Sys.file_exists (idx_path sh.path)
    && (try try_load_index_locked sh
        with Unix.Unix_error _ | Sys_error _ -> false)
  in
  if loaded then begin
    sh.index_mode <- Persisted;
    (* the sidecar was validated against the inode behind read_fd;
       that inode is what the index now describes *)
    match sh.read_fd with
    | Some fd ->
      let st = Unix.fstat fd in
      sh.seg_id <- (st.Unix.st_dev, st.Unix.st_ino)
    | None -> ()
  end
  else begin
    rescan_locked sh;
    sh.index_mode <- Scanned
  end

let lock_path path = path ^ ".lock"

let open_shard path =
  let lockf_fd =
    Unix.openfile (lock_path path)
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
      0o644
  in
  let sh =
    {
      path;
      index = Hashtbl.create 64;
      lock = Mutex.create ();
      lockf_fd;
      size = 0;
      oc = None;
      ic = None;
      idx_oc = None;
      read_fd = None;
      seg_id = no_seg_id;
      records = 0;
      superseded = 0;
      torn = 0;
      stale = false;
      index_mode = Scanned;
      open_seconds = 0.0;
    }
  in
  let t0 = Unix.gettimeofday () in
  with_file_lock sh (fun () -> load_shard_locked sh);
  sh.open_seconds <- Unix.gettimeofday () -. t0;
  sh

let shard_path root i = Filename.concat root (Printf.sprintf "seg-%02d.bhs" i)

let open_ root =
  if Sys.file_exists root && not (Sys.is_directory root) then
    failwith (Printf.sprintf "store path %S exists and is not a directory" root);
  mkdir_p root;
  {
    t_dir = root;
    shards = Array.init shard_count (fun i -> open_shard (shard_path root i));
    closed = false;
  }

let shard_of t key =
  let h = Codec.fnv1a64 key in
  t.shards.(Int64.to_int (Int64.logand h (Int64.of_int (shard_count - 1))))

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun sh ->
        with_lock sh.lock (fun () ->
            close_channels sh;
            (match sh.read_fd with
            | Some fd ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              sh.read_fd <- None
            | None -> ());
            try Unix.close sh.lockf_fd with Unix.Unix_error _ -> ()))
      t.shards
  end

let ensure_ic sh =
  match sh.ic with
  | Some ic -> ic
  | None ->
    let ic = open_in_bin sh.path in
    sh.ic <- Some ic;
    ic

(* Fold in whatever other processes appended to the segment since we
   last looked, and truncate away the torn tail a killed foreign writer
   may have left, so our own append lands on a record boundary. Must
   hold both the shard Mutex and the shard file lock. Writers append
   whole records while holding the file lock, so the un-indexed suffix
   always starts on a record boundary; only a crash mid-append leaves
   a torn (checksum-failing) tail. Foreign writers append their own
   sidecar entries under the same lock, so the sidecar needs no
   maintenance here — a foreign crash between the two appends leaves a
   gap the next open heals. *)
let resync sh =
  let real, replaced =
    match Unix.stat sh.path with
    | st ->
      (st.Unix.st_size, (st.Unix.st_dev, st.Unix.st_ino) <> sh.seg_id)
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      (0, sh.seg_id <> no_seg_id)
  in
  if real <> sh.size || replaced then
    if replaced || sh.size = 0 || sh.stale || real < sh.size then begin
      (* segment appeared, was rewritten, shrank, or is a different
         inode (a sibling process compacted it) under us: the
         incremental path has nothing to anchor to — rescan it all *)
      close_channels sh;
      rescan_locked sh
    end
    else begin
      let delta_len = real - sh.size in
      let b = Bytes.create delta_len in
      let ic = ensure_ic sh in
      seek_in ic sh.size;
      really_input ic b 0 delta_len;
      let base = sh.size in
      let good, torn =
        scan_records b ~start:0 ~len:delta_len
          ~emit:(fun ~key ~gen ~payload_off ~payload_len ->
            sh.records <- sh.records + 1;
            if Hashtbl.mem sh.index key then
              sh.superseded <- sh.superseded + 1;
            Hashtbl.replace sh.index key
              { e_gen = gen; e_off = base + payload_off; e_len = payload_len })
      in
      if torn then begin
        sh.torn <- sh.torn + 1;
        Unix.truncate sh.path (base + good)
      end;
      sh.size <- base + good
    end

(* Must hold the shard Mutex and the shard file lock, after [resync].
   Opens the append channel, writing (or rewriting, for stale/foreign
   segments) the header first. The fresh decision is made against the
   resynced size, so a segment another process already initialised is
   appended to, never truncated. *)
let ensure_oc sh =
  match sh.oc with
  | Some oc -> oc
  | None ->
    let fresh = sh.stale || sh.size = 0 in
    let oc =
      if fresh then begin
        (* Open_append even on the fresh path: this channel is cached
           across puts, and between two of our appends another process
           may grow the file. A non-append channel would keep writing
           at its own stale offset and silently overwrite the foreign
           records; O_APPEND makes every flush land at the real EOF
           (we hold the file lock, so EOF equals the resynced size). *)
        let oc =
          open_out_gen
            [ Open_wronly; Open_creat; Open_trunc; Open_append; Open_binary ]
            0o644 sh.path
        in
        let h = header () in
        output_string oc h;
        flush oc;
        sh.size <- String.length h;
        sh.stale <- false;
        sh.records <- 0;
        sh.superseded <- 0;
        Hashtbl.reset sh.index;
        (* the fresh segment invalidates whatever the sidecar said *)
        (match sh.idx_oc with
        | Some c ->
          close_out_noerr c;
          sh.idx_oc <- None
        | None -> ());
        write_sidecar sh.path [];
        (* O_CREAT may just have made a brand-new inode (the previous
           segment was removed by a sibling's gc): re-anchor the read
           descriptor and recorded identity to it *)
        reanchor_locked sh;
        oc
      end
      else
        open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 sh.path
    in
    sh.oc <- Some oc;
    oc

type lookup = Hit of string | Stale | Miss

let get t ~key ~gen =
  let sh = shard_of t key in
  (* the shard lock covers only the index probe; the payload read is a
     lock-free pread, so any number of domains read one shard
     concurrently *)
  let probe =
    with_lock sh.lock (fun () ->
        match Hashtbl.find_opt sh.index key with
        | None -> `Miss
        | Some e when e.e_gen <> gen -> `Stale
        | Some e -> `Read (ensure_read_fd sh, e))
  in
  match probe with
  | `Miss -> Miss
  | `Stale -> Stale
  | `Read (fd, e) -> (
    match pread_record_verified fd ~key ~gen e with
    | Some payload -> Hit payload
    | None ->
      (* the segment changed under the lock-free read (a sibling
         process truncated a torn tail or swapped the inode by
         compacting): resynchronise under the full locks — [resync]
         re-anchors the read descriptor if the inode was replaced —
         and answer from the fresh, verified index *)
      with_lock sh.lock (fun () ->
          with_file_lock sh (fun () ->
              resync sh;
              match Hashtbl.find_opt sh.index key with
              | None -> Miss
              | Some e when e.e_gen <> gen -> Stale
              | Some e -> (
                match pread_record_verified (ensure_read_fd sh) ~key ~gen e with
                | Some payload -> Hit payload
                | None -> Miss))))

let put t ~key ~gen payload =
  let sh = shard_of t key in
  with_lock sh.lock (fun () ->
      match Hashtbl.find_opt sh.index key with
      | Some e when e.e_gen = gen -> false
      | _ ->
        with_file_lock sh (fun () ->
            resync sh;
            (* re-check: another process may have appended exactly this
               record while we waited for the lock *)
            match Hashtbl.find_opt sh.index key with
            | Some e when e.e_gen = gen -> false
            | prev ->
              let oc = ensure_oc sh in
              let rec_ = encode_record ~key ~gen payload in
              let record_off = sh.size in
              output_string oc rec_;
              flush oc;
              let payload_off =
                record_off + 12 + String.length key + String.length gen
              in
              Hashtbl.replace sh.index key
                {
                  e_gen = gen;
                  e_off = payload_off;
                  e_len = String.length payload;
                };
              sh.size <- record_off + String.length rec_;
              sh.records <- sh.records + 1;
              if prev <> None then sh.superseded <- sh.superseded + 1;
              (* segment first, sidecar second: a crash between the
                 two leaves a gap the next open re-scans and heals *)
              let ioc = ensure_idx_oc sh in
              output_string ioc
                (encode_idx_entry ~record_off ~key ~gen
                   ~payload_len:(String.length payload));
              flush ioc;
              true))

let live_entries_sorted sh =
  Hashtbl.fold (fun key e acc -> (key, e) :: acc) sh.index []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let read_payload sh e =
  let ic = ensure_ic sh in
  seek_in ic e.e_off;
  let b = Bytes.create e.e_len in
  really_input ic b 0 e.e_len;
  Bytes.unsafe_to_string b

let fold t ~init ~f =
  (* entries are gathered under the shard locks, then globally
     key-sorted so export order is independent of shard layout *)
  let all =
    Array.to_list t.shards
    |> List.concat_map (fun sh ->
           with_lock sh.lock (fun () ->
               List.map
                 (fun (key, e) -> (key, e.e_gen, read_payload sh e))
                 (live_entries_sorted sh)))
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  List.fold_left (fun acc (key, gen, payload) -> f acc ~key ~gen payload) init
    all

type gen_stats = { g_gen : string; g_live : int; g_bytes : int }

(* Live records grouped by generation fingerprint, heaviest first. With
   block-sensitive generations (descriptor refinement) this is the
   per-candidate invalidation footprint: how many records each
   generation keeps warm and what they weigh. Payload bytes come from
   the index entries — no payload reads. *)
let gen_stats t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun sh ->
      with_lock sh.lock (fun () ->
          Hashtbl.iter
            (fun _ e ->
              let live, bytes =
                Option.value (Hashtbl.find_opt tbl e.e_gen) ~default:(0, 0)
              in
              Hashtbl.replace tbl e.e_gen (live + 1, bytes + e.e_len))
            sh.index))
    t.shards;
  Hashtbl.fold
    (fun gen (live, bytes) acc ->
      { g_gen = gen; g_live = live; g_bytes = bytes } :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.g_live a.g_live with
         | 0 -> compare a.g_gen b.g_gen
         | c -> c)

type shard_stats = {
  ss_shard : int;
  ss_live : int;
  ss_records : int;
  ss_bytes : int;
  ss_persisted : bool;
  ss_open_seconds : float;
}

type stats = {
  s_dir : string;
  s_shards : int;
  s_live : int;
  s_records : int;
  s_superseded : int;
  s_torn : int;
  s_stale_segments : int;
  s_bytes : int;
  s_index_persisted : int;
  s_index_scanned : int;
  s_open_seconds : float;
  s_per_shard : shard_stats list;
}

let stats t =
  let acc = ref (0, 0, 0, 0, 0, 0) in
  let persisted = ref 0 and scanned = ref 0 and open_s = ref 0.0 in
  let per_shard = ref [] in
  Array.iteri
    (fun i sh ->
      with_lock sh.lock (fun () ->
          let live, recs, sup, torn, stale, bytes = !acc in
          acc :=
            ( live + Hashtbl.length sh.index,
              recs + sh.records,
              sup + sh.superseded,
              torn + sh.torn,
              (stale + if sh.stale then 1 else 0),
              bytes + sh.size );
          (match sh.index_mode with
          | Persisted -> incr persisted
          | Scanned -> incr scanned);
          open_s := !open_s +. sh.open_seconds;
          per_shard :=
            {
              ss_shard = i;
              ss_live = Hashtbl.length sh.index;
              ss_records = sh.records;
              ss_bytes = sh.size;
              ss_persisted = sh.index_mode = Persisted;
              ss_open_seconds = sh.open_seconds;
            }
            :: !per_shard))
    t.shards;
  let live, recs, sup, torn, stale, bytes = !acc in
  {
    s_dir = t.t_dir;
    s_shards = shard_count;
    s_live = live;
    s_records = recs;
    s_superseded = sup;
    s_torn = torn;
    s_stale_segments = stale;
    s_bytes = bytes;
    s_index_persisted = !persisted;
    s_index_scanned = !scanned;
    s_open_seconds = !open_s;
    s_per_shard = List.rev !per_shard;
  }

type verify_report = {
  v_live : int;
  v_records : int;
  v_corrupt : int;
  v_torn : int;
  v_stale_segments : int;
  v_index_entries : int;
  v_index_mismatched : int;
  v_index_missing : int;
}

let verify t =
  let live = ref 0 and records = ref 0 and corrupt = ref 0 in
  let torn = ref 0 and stale = ref 0 in
  let idx_entries = ref 0 and idx_mismatched = ref 0 and idx_missing = ref 0 in
  Array.iter
    (fun sh ->
      with_lock sh.lock (fun () ->
          with_file_lock sh (fun () ->
              (* the file lock keeps another process's in-flight append
                 from reading as a torn tail; resync folds its finished
                 appends in so v_live reflects the shared segment *)
              resync sh;
              live := !live + Hashtbl.length sh.index;
              torn := !torn + sh.torn;
              if sh.stale then incr stale
              else if Sys.file_exists sh.path then begin
                (match sh.oc with Some oc -> flush oc | None -> ());
                let on_disk = Hashtbl.create 64 in
                let b = read_file sh.path in
                let len = Bytes.length b in
                let result, bad =
                  scan_image b ~len
                    ~emit:(fun ~key ~gen ~payload_off ~payload_len ->
                      incr records;
                      let record_off =
                        payload_off - 12 - String.length key
                        - String.length gen
                      in
                      Hashtbl.replace on_disk record_off
                        (key, gen, payload_len))
                in
                corrupt := !corrupt + bad;
                (match result with
                | `Stale nonempty -> if nonempty then incr stale
                | `Good _ -> ());
                (* sidecar validation: every entry must describe a
                   record that really sits at its offset. Entries may
                   legitimately be a subset (a crash between segment
                   and sidecar appends leaves a gap the next open
                   heals); they may never disagree. *)
                if Hashtbl.length on_disk > 0 then begin
                  (match sh.idx_oc with Some oc -> flush oc | None -> ());
                  match
                    if Sys.file_exists (idx_path sh.path) then
                      parse_idx_image (read_file (idx_path sh.path))
                    else None
                  with
                  | None -> incr idx_missing
                  | Some (entries, _good) ->
                    List.iter
                      (fun e ->
                        incr idx_entries;
                        match Hashtbl.find_opt on_disk e.i_off with
                        | Some (key, gen, plen)
                          when key = e.i_key && gen = e.i_gen
                               && plen = e.i_plen ->
                          ()
                        | _ -> incr idx_mismatched)
                      entries
                end
              end)))
    t.shards;
  {
    v_live = !live;
    v_records = !records;
    v_corrupt = !corrupt;
    v_torn = !torn;
    v_stale_segments = !stale;
    v_index_entries = !idx_entries;
    v_index_mismatched = !idx_mismatched;
    v_index_missing = !idx_missing;
  }

type gc_report = {
  g_live : int;
  g_dropped : int;
  g_bytes_before : int;
  g_bytes_after : int;
}

let gc t =
  let live = ref 0 and dropped = ref 0 in
  let before = ref 0 and after = ref 0 in
  Array.iter
    (fun sh ->
      with_lock sh.lock (fun () ->
          with_file_lock sh (fun () ->
          resync sh;
          before := !before + sh.size;
          dropped := !dropped + (sh.records - Hashtbl.length sh.index);
          let entries =
            List.map
              (fun (key, e) -> (key, e.e_gen, read_payload sh e))
              (live_entries_sorted sh)
          in
          close_channels sh;
          (* the sidecar describes the old segment layout; remove it
             before the rewrite so a crash mid-gc leaves a segment
             with no sidecar (full scan) rather than a wrong one *)
          remove_if_exists (idx_path sh.path);
          if entries = [] then begin
            if Sys.file_exists sh.path then Sys.remove sh.path;
            Hashtbl.reset sh.index;
            sh.size <- 0
          end
          else begin
            let tmp = sh.path ^ ".gc" in
            let oc =
              open_out_gen
                [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
                0o644 tmp
            in
            let h = header () in
            output_string oc h;
            let pos = ref (String.length h) in
            let sidecar = ref [] in
            Hashtbl.reset sh.index;
            List.iter
              (fun (key, gen, payload) ->
                let rec_ = encode_record ~key ~gen payload in
                output_string oc rec_;
                Hashtbl.replace sh.index key
                  {
                    e_gen = gen;
                    e_off = !pos + 12 + String.length key + String.length gen;
                    e_len = String.length payload;
                  };
                sidecar := (!pos, key, gen, String.length payload) :: !sidecar;
                pos := !pos + String.length rec_)
              entries;
            close_out oc;
            Sys.rename tmp sh.path;
            write_sidecar sh.path (List.rev !sidecar);
            sh.size <- !pos
          end;
          (* the rename (or remove) replaced the segment inode: any
             outstanding lock-free read descriptor still points at the
             unlinked one — repoint it at the rewrite so the rebuilt
             index and the bytes readers see stay coherent *)
          reanchor_locked sh;
          sh.records <- Hashtbl.length sh.index;
          sh.superseded <- 0;
          sh.torn <- 0;
          sh.stale <- false;
          live := !live + Hashtbl.length sh.index;
          after := !after + sh.size)))
    t.shards;
  {
    g_live = !live;
    g_dropped = !dropped;
    g_bytes_before = !before;
    g_bytes_after = !after;
  }
