(* See store.mli. *)

module Sha256 = Sha256
module Codec = Codec
module Jsonl = Jsonl

let shard_count = 16
let segment_magic = "BHIVESTORE1\n"

(* Payloads are Marshal blobs, which are not stable across OCaml
   releases or word sizes. The writer stamps its format into the
   segment header; a segment from an incompatible writer is treated as
   empty (stale) and rewritten on first append, so an OCaml upgrade
   degrades to a cold store instead of undefined behaviour. *)
let format_tag = Printf.sprintf "marshal/%s/%d" Sys.ocaml_version Sys.word_size
let record_magic = 0xB17EC0DE
let max_key_len = 4096
let max_payload_len = 1 lsl 26

type entry = { e_gen : string; e_off : int; e_len : int }

type shard = {
  path : string;
  index : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable size : int; (* valid byte length of the segment *)
  mutable oc : out_channel option;
  mutable ic : in_channel option;
  mutable records : int; (* records on disk, including superseded *)
  mutable superseded : int;
  mutable torn : int; (* torn-tail truncation events at open *)
  mutable stale : bool;
}

type t = { t_dir : string; shards : shard array; mutable closed : bool }

let dir t = t.t_dir

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let header () =
  let buf = Buffer.create 32 in
  Buffer.add_string buf segment_magic;
  Codec.str buf format_tag;
  Buffer.contents buf

let encode_record ~key ~gen payload =
  let buf =
    Buffer.create
      (24 + String.length key + String.length gen + String.length payload)
  in
  Codec.u32 buf record_magic;
  Codec.u16 buf (String.length key);
  Codec.u16 buf (String.length gen);
  Codec.u32 buf (String.length payload);
  Buffer.add_string buf key;
  Buffer.add_string buf gen;
  Buffer.add_string buf payload;
  let sum = Codec.fnv1a64 (Buffer.contents buf) in
  Codec.i64 buf sum;
  Buffer.contents buf

(* Scan one decoded segment image. Returns the byte offset of the end
   of the last intact record ("good" prefix) plus what was indexed; a
   record that fails frame bounds or checksum ends the scan — the log
   is append-only, so everything past the first bad byte is a torn
   tail from an interrupted writer. [emit] sees records in log order,
   later generations superseding earlier ones at the caller. *)
let scan_image b ~len ~emit =
  let header_ok, data_start, stale =
    let hm = String.length segment_magic in
    if len < hm + 4 then (false, 0, len > 0)
    else if Bytes.sub_string b 0 hm <> segment_magic then (false, 0, true)
    else
      let tag_len = Codec.get_u32 b hm in
      if tag_len > 256 || len < hm + 4 + tag_len then (false, 0, true)
      else if Bytes.sub_string b (hm + 4) tag_len <> format_tag then
        (false, 0, true)
      else (true, hm + 4 + tag_len, false)
  in
  if not header_ok then (`Stale stale, 0)
  else begin
    let pos = ref data_start in
    let torn = ref false in
    (try
       while !pos < len do
         let off = !pos in
         if off + 12 > len then raise Exit;
         if Codec.get_u32 b off <> record_magic then raise Exit;
         let klen = Codec.get_u16 b (off + 4) in
         let glen = Codec.get_u16 b (off + 6) in
         let plen = Codec.get_u32 b (off + 8) in
         if klen = 0 || klen > max_key_len || glen > max_key_len
            || plen > max_payload_len
         then raise Exit;
         let body_len = 12 + klen + glen + plen in
         if off + body_len + 8 > len then raise Exit;
         let sum = Codec.fnv1a64_bytes ~off ~len:body_len b in
         if sum <> Codec.get_i64 b (off + body_len) then raise Exit;
         let key = Bytes.sub_string b (off + 12) klen in
         let gen = Bytes.sub_string b (off + 12 + klen) glen in
         emit ~key ~gen ~payload_off:(off + 12 + klen + glen) ~payload_len:plen;
         pos := off + body_len + 8
       done
     with Exit -> torn := true);
    (`Good !pos, if !torn then 1 else 0)
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

let open_shard path =
  let sh =
    {
      path;
      index = Hashtbl.create 64;
      lock = Mutex.create ();
      size = 0;
      oc = None;
      ic = None;
      records = 0;
      superseded = 0;
      torn = 0;
      stale = false;
    }
  in
  if Sys.file_exists path then begin
    let b = read_file path in
    let len = Bytes.length b in
    let result, torn =
      scan_image b ~len ~emit:(fun ~key ~gen ~payload_off ~payload_len ->
          sh.records <- sh.records + 1;
          if Hashtbl.mem sh.index key then sh.superseded <- sh.superseded + 1;
          Hashtbl.replace sh.index key
            { e_gen = gen; e_off = payload_off; e_len = payload_len })
    in
    sh.torn <- torn;
    match result with
    | `Stale nonempty ->
      (* foreign or pre-format segment: serve nothing from it and
         rewrite it wholesale on first append *)
      sh.stale <- nonempty;
      sh.size <- 0
    | `Good good ->
      if good < len then Unix.truncate path good;
      sh.size <- good
  end;
  sh

let shard_path root i = Filename.concat root (Printf.sprintf "seg-%02d.bhs" i)

let open_ root =
  if Sys.file_exists root && not (Sys.is_directory root) then
    failwith (Printf.sprintf "store path %S exists and is not a directory" root);
  mkdir_p root;
  {
    t_dir = root;
    shards = Array.init shard_count (fun i -> open_shard (shard_path root i));
    closed = false;
  }

let shard_of t key =
  let h = Codec.fnv1a64 key in
  t.shards.(Int64.to_int (Int64.logand h (Int64.of_int (shard_count - 1))))

let close_channels sh =
  (match sh.oc with
  | Some oc ->
    close_out_noerr oc;
    sh.oc <- None
  | None -> ());
  match sh.ic with
  | Some ic ->
    close_in_noerr ic;
    sh.ic <- None
  | None -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter (fun sh -> with_lock sh.lock (fun () -> close_channels sh))
      t.shards
  end

(* Must hold the shard lock. Opens the append channel, writing (or
   rewriting, for stale/foreign segments) the header first. *)
let ensure_oc sh =
  match sh.oc with
  | Some oc -> oc
  | None ->
    let fresh = sh.stale || not (Sys.file_exists sh.path) || sh.size = 0 in
    let oc =
      if fresh then begin
        let oc =
          open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644
            sh.path
        in
        let h = header () in
        output_string oc h;
        flush oc;
        sh.size <- String.length h;
        sh.stale <- false;
        sh.records <- 0;
        sh.superseded <- 0;
        Hashtbl.reset sh.index;
        oc
      end
      else
        open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 sh.path
    in
    sh.oc <- Some oc;
    oc

let ensure_ic sh =
  match sh.ic with
  | Some ic -> ic
  | None ->
    let ic = open_in_bin sh.path in
    sh.ic <- Some ic;
    ic

type lookup = Hit of string | Stale | Miss

let get t ~key ~gen =
  let sh = shard_of t key in
  with_lock sh.lock (fun () ->
      match Hashtbl.find_opt sh.index key with
      | None -> Miss
      | Some e when e.e_gen <> gen -> Stale
      | Some e ->
        let ic = ensure_ic sh in
        seek_in ic e.e_off;
        let b = Bytes.create e.e_len in
        really_input ic b 0 e.e_len;
        Hit (Bytes.unsafe_to_string b))

let put t ~key ~gen payload =
  let sh = shard_of t key in
  with_lock sh.lock (fun () ->
      match Hashtbl.find_opt sh.index key with
      | Some e when e.e_gen = gen -> false
      | prev ->
        let oc = ensure_oc sh in
        let rec_ = encode_record ~key ~gen payload in
        output_string oc rec_;
        flush oc;
        let payload_off =
          sh.size + 12 + String.length key + String.length gen
        in
        Hashtbl.replace sh.index key
          { e_gen = gen; e_off = payload_off; e_len = String.length payload };
        sh.size <- sh.size + String.length rec_;
        sh.records <- sh.records + 1;
        if prev <> None then sh.superseded <- sh.superseded + 1;
        true)

let live_entries_sorted sh =
  Hashtbl.fold (fun key e acc -> (key, e) :: acc) sh.index []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let read_payload sh e =
  let ic = ensure_ic sh in
  seek_in ic e.e_off;
  let b = Bytes.create e.e_len in
  really_input ic b 0 e.e_len;
  Bytes.unsafe_to_string b

let fold t ~init ~f =
  (* entries are gathered under the shard locks, then globally
     key-sorted so export order is independent of shard layout *)
  let all =
    Array.to_list t.shards
    |> List.concat_map (fun sh ->
           with_lock sh.lock (fun () ->
               List.map
                 (fun (key, e) -> (key, e.e_gen, read_payload sh e))
                 (live_entries_sorted sh)))
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  List.fold_left (fun acc (key, gen, payload) -> f acc ~key ~gen payload) init
    all

type stats = {
  s_dir : string;
  s_shards : int;
  s_live : int;
  s_records : int;
  s_superseded : int;
  s_torn : int;
  s_stale_segments : int;
  s_bytes : int;
}

let stats t =
  let acc = ref (0, 0, 0, 0, 0, 0) in
  Array.iter
    (fun sh ->
      with_lock sh.lock (fun () ->
          let live, recs, sup, torn, stale, bytes = !acc in
          acc :=
            ( live + Hashtbl.length sh.index,
              recs + sh.records,
              sup + sh.superseded,
              torn + sh.torn,
              (stale + if sh.stale then 1 else 0),
              bytes + sh.size )))
    t.shards;
  let live, recs, sup, torn, stale, bytes = !acc in
  {
    s_dir = t.t_dir;
    s_shards = shard_count;
    s_live = live;
    s_records = recs;
    s_superseded = sup;
    s_torn = torn;
    s_stale_segments = stale;
    s_bytes = bytes;
  }

type verify_report = {
  v_live : int;
  v_records : int;
  v_corrupt : int;
  v_torn : int;
  v_stale_segments : int;
}

let verify t =
  let live = ref 0 and records = ref 0 and corrupt = ref 0 in
  let torn = ref 0 and stale = ref 0 in
  Array.iter
    (fun sh ->
      with_lock sh.lock (fun () ->
          live := !live + Hashtbl.length sh.index;
          torn := !torn + sh.torn;
          if sh.stale then incr stale
          else if Sys.file_exists sh.path then begin
            (match sh.oc with Some oc -> flush oc | None -> ());
            let b = read_file sh.path in
            let len = Bytes.length b in
            let result, bad =
              scan_image b ~len ~emit:(fun ~key:_ ~gen:_ ~payload_off:_
                                           ~payload_len:_ -> incr records)
            in
            corrupt := !corrupt + bad;
            match result with
            | `Stale nonempty -> if nonempty then incr stale
            | `Good _ -> ()
          end))
    t.shards;
  {
    v_live = !live;
    v_records = !records;
    v_corrupt = !corrupt;
    v_torn = !torn;
    v_stale_segments = !stale;
  }

type gc_report = {
  g_live : int;
  g_dropped : int;
  g_bytes_before : int;
  g_bytes_after : int;
}

let gc t =
  let live = ref 0 and dropped = ref 0 in
  let before = ref 0 and after = ref 0 in
  Array.iter
    (fun sh ->
      with_lock sh.lock (fun () ->
          before := !before + sh.size;
          dropped := !dropped + (sh.records - Hashtbl.length sh.index);
          let entries =
            List.map
              (fun (key, e) -> (key, e.e_gen, read_payload sh e))
              (live_entries_sorted sh)
          in
          close_channels sh;
          if entries = [] then begin
            if Sys.file_exists sh.path then Sys.remove sh.path;
            Hashtbl.reset sh.index;
            sh.size <- 0
          end
          else begin
            let tmp = sh.path ^ ".gc" in
            let oc =
              open_out_gen
                [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
                0o644 tmp
            in
            let h = header () in
            output_string oc h;
            let pos = ref (String.length h) in
            Hashtbl.reset sh.index;
            List.iter
              (fun (key, gen, payload) ->
                let rec_ = encode_record ~key ~gen payload in
                output_string oc rec_;
                Hashtbl.replace sh.index key
                  {
                    e_gen = gen;
                    e_off = !pos + 12 + String.length key + String.length gen;
                    e_len = String.length payload;
                  };
                pos := !pos + String.length rec_)
              entries;
            close_out oc;
            Sys.rename tmp sh.path;
            sh.size <- !pos
          end;
          sh.records <- Hashtbl.length sh.index;
          sh.superseded <- 0;
          sh.torn <- 0;
          sh.stale <- false;
          live := !live + Hashtbl.length sh.index;
          after := !after + sh.size))
    t.shards;
  {
    g_live = !live;
    g_dropped = !dropped;
    g_bytes_before = !before;
    g_bytes_after = !after;
  }
