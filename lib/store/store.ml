(* See store.mli. *)

module Sha256 = Sha256
module Codec = Codec
module Jsonl = Jsonl
module Eintr = Eintr

let shard_count = 16
let segment_magic = "BHIVESTORE1\n"

(* Payloads are Marshal blobs, which are not stable across OCaml
   releases or word sizes. The writer stamps its format into the
   segment header; a segment from an incompatible writer is treated as
   empty (stale) and rewritten on first append, so an OCaml upgrade
   degrades to a cold store instead of undefined behaviour. *)
let format_tag = Printf.sprintf "marshal/%s/%d" Sys.ocaml_version Sys.word_size
let record_magic = 0xB17EC0DE
let max_key_len = 4096
let max_payload_len = 1 lsl 26

type entry = { e_gen : string; e_off : int; e_len : int }

type shard = {
  path : string;
  index : (string, entry) Hashtbl.t;
  lock : Mutex.t; (* intra-process exclusion (domains/threads) *)
  lockf_fd : Unix.file_descr;
      (* cross-process exclusion: fcntl-style advisory lock on a
         sibling .lock file. fcntl locks are per-process (a second
         lock by another thread of the same process would succeed and
         its unlock would release ours), so the Mutex above is always
         taken first and the file lock only ever held by one thread of
         this process at a time. *)
  mutable size : int; (* valid byte length of the segment *)
  mutable oc : out_channel option;
  mutable ic : in_channel option;
  mutable records : int; (* records on disk, including superseded *)
  mutable superseded : int;
  mutable torn : int; (* torn-tail truncation events at open/resync *)
  mutable stale : bool;
}

type t = { t_dir : string; shards : shard array; mutable closed : bool }

let dir t = t.t_dir

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Whole-file advisory lock on the shard's .lock sibling. Caller must
   already hold the shard Mutex (see the lockf_fd field comment). *)
let with_file_lock sh f =
  Eintr.lockf sh.lockf_fd Unix.F_LOCK 0;
  Fun.protect ~finally:(fun () -> Unix.lockf sh.lockf_fd Unix.F_ULOCK 0) f

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let header () =
  let buf = Buffer.create 32 in
  Buffer.add_string buf segment_magic;
  Codec.str buf format_tag;
  Buffer.contents buf

let encode_record ~key ~gen payload =
  let buf =
    Buffer.create
      (24 + String.length key + String.length gen + String.length payload)
  in
  Codec.u32 buf record_magic;
  Codec.u16 buf (String.length key);
  Codec.u16 buf (String.length gen);
  Codec.u32 buf (String.length payload);
  Buffer.add_string buf key;
  Buffer.add_string buf gen;
  Buffer.add_string buf payload;
  let sum = Codec.fnv1a64 (Buffer.contents buf) in
  Codec.i64 buf sum;
  Buffer.contents buf

(* Scan one decoded segment image. Returns the byte offset of the end
   of the last intact record ("good" prefix) plus what was indexed; a
   record that fails frame bounds or checksum ends the scan — the log
   is append-only, so everything past the first bad byte is a torn
   tail from an interrupted writer. [emit] sees records in log order,
   later generations superseding earlier ones at the caller. *)
let scan_records b ~start ~len ~emit =
  let pos = ref start in
  let torn = ref false in
  (try
     while !pos < len do
       let off = !pos in
       if off + 12 > len then raise Exit;
       if Codec.get_u32 b off <> record_magic then raise Exit;
       let klen = Codec.get_u16 b (off + 4) in
       let glen = Codec.get_u16 b (off + 6) in
       let plen = Codec.get_u32 b (off + 8) in
       if klen = 0 || klen > max_key_len || glen > max_key_len
          || plen > max_payload_len
       then raise Exit;
       let body_len = 12 + klen + glen + plen in
       if off + body_len + 8 > len then raise Exit;
       let sum = Codec.fnv1a64_bytes ~off ~len:body_len b in
       if sum <> Codec.get_i64 b (off + body_len) then raise Exit;
       let key = Bytes.sub_string b (off + 12) klen in
       let gen = Bytes.sub_string b (off + 12 + klen) glen in
       emit ~key ~gen ~payload_off:(off + 12 + klen + glen) ~payload_len:plen;
       pos := off + body_len + 8
     done
   with Exit -> torn := true);
  (!pos, !torn)

let scan_image b ~len ~emit =
  let header_ok, data_start, stale =
    let hm = String.length segment_magic in
    if len < hm + 4 then (false, 0, len > 0)
    else if Bytes.sub_string b 0 hm <> segment_magic then (false, 0, true)
    else
      let tag_len = Codec.get_u32 b hm in
      if tag_len > 256 || len < hm + 4 + tag_len then (false, 0, true)
      else if Bytes.sub_string b (hm + 4) tag_len <> format_tag then
        (false, 0, true)
      else (true, hm + 4 + tag_len, false)
  in
  if not header_ok then (`Stale stale, 0)
  else begin
    let good, torn = scan_records b ~start:data_start ~len ~emit in
    (`Good good, if torn then 1 else 0)
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

(* Rebuild the shard's index from the segment bytes on disk,
   truncating any torn tail. Must hold both the shard Mutex and the
   shard file lock (the truncate races with another process's in-flight
   append otherwise). *)
let rescan_locked sh =
  Hashtbl.reset sh.index;
  sh.records <- 0;
  sh.superseded <- 0;
  sh.stale <- false;
  sh.size <- 0;
  if Sys.file_exists sh.path then begin
    let b = read_file sh.path in
    let len = Bytes.length b in
    let result, torn =
      scan_image b ~len ~emit:(fun ~key ~gen ~payload_off ~payload_len ->
          sh.records <- sh.records + 1;
          if Hashtbl.mem sh.index key then sh.superseded <- sh.superseded + 1;
          Hashtbl.replace sh.index key
            { e_gen = gen; e_off = payload_off; e_len = payload_len })
    in
    sh.torn <- sh.torn + torn;
    match result with
    | `Stale nonempty ->
      (* foreign or pre-format segment: serve nothing from it and
         rewrite it wholesale on first append *)
      sh.stale <- nonempty;
      sh.size <- 0
    | `Good good ->
      if good < len then Unix.truncate sh.path good;
      sh.size <- good
  end

let lock_path path = path ^ ".lock"

let open_shard path =
  let lockf_fd =
    Unix.openfile (lock_path path)
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
      0o644
  in
  let sh =
    {
      path;
      index = Hashtbl.create 64;
      lock = Mutex.create ();
      lockf_fd;
      size = 0;
      oc = None;
      ic = None;
      records = 0;
      superseded = 0;
      torn = 0;
      stale = false;
    }
  in
  with_file_lock sh (fun () -> rescan_locked sh);
  sh

let shard_path root i = Filename.concat root (Printf.sprintf "seg-%02d.bhs" i)

let open_ root =
  if Sys.file_exists root && not (Sys.is_directory root) then
    failwith (Printf.sprintf "store path %S exists and is not a directory" root);
  mkdir_p root;
  {
    t_dir = root;
    shards = Array.init shard_count (fun i -> open_shard (shard_path root i));
    closed = false;
  }

let shard_of t key =
  let h = Codec.fnv1a64 key in
  t.shards.(Int64.to_int (Int64.logand h (Int64.of_int (shard_count - 1))))

let close_channels sh =
  (match sh.oc with
  | Some oc ->
    close_out_noerr oc;
    sh.oc <- None
  | None -> ());
  match sh.ic with
  | Some ic ->
    close_in_noerr ic;
    sh.ic <- None
  | None -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun sh ->
        with_lock sh.lock (fun () ->
            close_channels sh;
            try Unix.close sh.lockf_fd with Unix.Unix_error _ -> ()))
      t.shards
  end

let ensure_ic sh =
  match sh.ic with
  | Some ic -> ic
  | None ->
    let ic = open_in_bin sh.path in
    sh.ic <- Some ic;
    ic

(* Fold in whatever other processes appended to the segment since we
   last looked, and truncate away the torn tail a killed foreign writer
   may have left, so our own append lands on a record boundary. Must
   hold both the shard Mutex and the shard file lock. Writers append
   whole records while holding the file lock, so the un-indexed suffix
   always starts on a record boundary; only a crash mid-append leaves
   a torn (checksum-failing) tail. *)
let resync sh =
  let real =
    match Unix.stat sh.path with
    | st -> st.Unix.st_size
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> 0
  in
  if real <> sh.size then
    if sh.size = 0 || sh.stale || real < sh.size then begin
      (* segment appeared, was rewritten, or shrank under us: the
         incremental path has nothing to anchor to — rescan it all *)
      close_channels sh;
      rescan_locked sh
    end
    else begin
      let delta_len = real - sh.size in
      let b = Bytes.create delta_len in
      let ic = ensure_ic sh in
      seek_in ic sh.size;
      really_input ic b 0 delta_len;
      let base = sh.size in
      let good, torn =
        scan_records b ~start:0 ~len:delta_len
          ~emit:(fun ~key ~gen ~payload_off ~payload_len ->
            sh.records <- sh.records + 1;
            if Hashtbl.mem sh.index key then
              sh.superseded <- sh.superseded + 1;
            Hashtbl.replace sh.index key
              { e_gen = gen; e_off = base + payload_off; e_len = payload_len })
      in
      if torn then begin
        sh.torn <- sh.torn + 1;
        Unix.truncate sh.path (base + good)
      end;
      sh.size <- base + good
    end

(* Must hold the shard Mutex and the shard file lock, after [resync].
   Opens the append channel, writing (or rewriting, for stale/foreign
   segments) the header first. The fresh decision is made against the
   resynced size, so a segment another process already initialised is
   appended to, never truncated. *)
let ensure_oc sh =
  match sh.oc with
  | Some oc -> oc
  | None ->
    let fresh = sh.stale || sh.size = 0 in
    let oc =
      if fresh then begin
        (* Open_append even on the fresh path: this channel is cached
           across puts, and between two of our appends another process
           may grow the file. A non-append channel would keep writing
           at its own stale offset and silently overwrite the foreign
           records; O_APPEND makes every flush land at the real EOF
           (we hold the file lock, so EOF equals the resynced size). *)
        let oc =
          open_out_gen
            [ Open_wronly; Open_creat; Open_trunc; Open_append; Open_binary ]
            0o644 sh.path
        in
        let h = header () in
        output_string oc h;
        flush oc;
        sh.size <- String.length h;
        sh.stale <- false;
        sh.records <- 0;
        sh.superseded <- 0;
        Hashtbl.reset sh.index;
        oc
      end
      else
        open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 sh.path
    in
    sh.oc <- Some oc;
    oc

type lookup = Hit of string | Stale | Miss

let get t ~key ~gen =
  let sh = shard_of t key in
  with_lock sh.lock (fun () ->
      match Hashtbl.find_opt sh.index key with
      | None -> Miss
      | Some e when e.e_gen <> gen -> Stale
      | Some e ->
        let ic = ensure_ic sh in
        seek_in ic e.e_off;
        let b = Bytes.create e.e_len in
        really_input ic b 0 e.e_len;
        Hit (Bytes.unsafe_to_string b))

let put t ~key ~gen payload =
  let sh = shard_of t key in
  with_lock sh.lock (fun () ->
      match Hashtbl.find_opt sh.index key with
      | Some e when e.e_gen = gen -> false
      | _ ->
        with_file_lock sh (fun () ->
            resync sh;
            (* re-check: another process may have appended exactly this
               record while we waited for the lock *)
            match Hashtbl.find_opt sh.index key with
            | Some e when e.e_gen = gen -> false
            | prev ->
              let oc = ensure_oc sh in
              let rec_ = encode_record ~key ~gen payload in
              output_string oc rec_;
              flush oc;
              let payload_off =
                sh.size + 12 + String.length key + String.length gen
              in
              Hashtbl.replace sh.index key
                {
                  e_gen = gen;
                  e_off = payload_off;
                  e_len = String.length payload;
                };
              sh.size <- sh.size + String.length rec_;
              sh.records <- sh.records + 1;
              if prev <> None then sh.superseded <- sh.superseded + 1;
              true))

let live_entries_sorted sh =
  Hashtbl.fold (fun key e acc -> (key, e) :: acc) sh.index []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let read_payload sh e =
  let ic = ensure_ic sh in
  seek_in ic e.e_off;
  let b = Bytes.create e.e_len in
  really_input ic b 0 e.e_len;
  Bytes.unsafe_to_string b

let fold t ~init ~f =
  (* entries are gathered under the shard locks, then globally
     key-sorted so export order is independent of shard layout *)
  let all =
    Array.to_list t.shards
    |> List.concat_map (fun sh ->
           with_lock sh.lock (fun () ->
               List.map
                 (fun (key, e) -> (key, e.e_gen, read_payload sh e))
                 (live_entries_sorted sh)))
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  List.fold_left (fun acc (key, gen, payload) -> f acc ~key ~gen payload) init
    all

type stats = {
  s_dir : string;
  s_shards : int;
  s_live : int;
  s_records : int;
  s_superseded : int;
  s_torn : int;
  s_stale_segments : int;
  s_bytes : int;
}

let stats t =
  let acc = ref (0, 0, 0, 0, 0, 0) in
  Array.iter
    (fun sh ->
      with_lock sh.lock (fun () ->
          let live, recs, sup, torn, stale, bytes = !acc in
          acc :=
            ( live + Hashtbl.length sh.index,
              recs + sh.records,
              sup + sh.superseded,
              torn + sh.torn,
              (stale + if sh.stale then 1 else 0),
              bytes + sh.size )))
    t.shards;
  let live, recs, sup, torn, stale, bytes = !acc in
  {
    s_dir = t.t_dir;
    s_shards = shard_count;
    s_live = live;
    s_records = recs;
    s_superseded = sup;
    s_torn = torn;
    s_stale_segments = stale;
    s_bytes = bytes;
  }

type verify_report = {
  v_live : int;
  v_records : int;
  v_corrupt : int;
  v_torn : int;
  v_stale_segments : int;
}

let verify t =
  let live = ref 0 and records = ref 0 and corrupt = ref 0 in
  let torn = ref 0 and stale = ref 0 in
  Array.iter
    (fun sh ->
      with_lock sh.lock (fun () ->
          with_file_lock sh (fun () ->
              (* the file lock keeps another process's in-flight append
                 from reading as a torn tail; resync folds its finished
                 appends in so v_live reflects the shared segment *)
              resync sh;
              live := !live + Hashtbl.length sh.index;
              torn := !torn + sh.torn;
              if sh.stale then incr stale
              else if Sys.file_exists sh.path then begin
                (match sh.oc with Some oc -> flush oc | None -> ());
                let b = read_file sh.path in
                let len = Bytes.length b in
                let result, bad =
                  scan_image b ~len ~emit:(fun ~key:_ ~gen:_ ~payload_off:_
                                               ~payload_len:_ -> incr records)
                in
                corrupt := !corrupt + bad;
                match result with
                | `Stale nonempty -> if nonempty then incr stale
                | `Good _ -> ()
              end)))
    t.shards;
  {
    v_live = !live;
    v_records = !records;
    v_corrupt = !corrupt;
    v_torn = !torn;
    v_stale_segments = !stale;
  }

type gc_report = {
  g_live : int;
  g_dropped : int;
  g_bytes_before : int;
  g_bytes_after : int;
}

let gc t =
  let live = ref 0 and dropped = ref 0 in
  let before = ref 0 and after = ref 0 in
  Array.iter
    (fun sh ->
      with_lock sh.lock (fun () ->
          with_file_lock sh (fun () ->
          resync sh;
          before := !before + sh.size;
          dropped := !dropped + (sh.records - Hashtbl.length sh.index);
          let entries =
            List.map
              (fun (key, e) -> (key, e.e_gen, read_payload sh e))
              (live_entries_sorted sh)
          in
          close_channels sh;
          if entries = [] then begin
            if Sys.file_exists sh.path then Sys.remove sh.path;
            Hashtbl.reset sh.index;
            sh.size <- 0
          end
          else begin
            let tmp = sh.path ^ ".gc" in
            let oc =
              open_out_gen
                [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
                0o644 tmp
            in
            let h = header () in
            output_string oc h;
            let pos = ref (String.length h) in
            Hashtbl.reset sh.index;
            List.iter
              (fun (key, gen, payload) ->
                let rec_ = encode_record ~key ~gen payload in
                output_string oc rec_;
                Hashtbl.replace sh.index key
                  {
                    e_gen = gen;
                    e_off = !pos + 12 + String.length key + String.length gen;
                    e_len = String.length payload;
                  };
                pos := !pos + String.length rec_)
              entries;
            close_out oc;
            Sys.rename tmp sh.path;
            sh.size <- !pos
          end;
          sh.records <- Hashtbl.length sh.index;
          sh.superseded <- 0;
          sh.torn <- 0;
          sh.stale <- false;
          live := !live + Hashtbl.length sh.index;
          after := !after + sh.size)))
    t.shards;
  {
    g_live = !live;
    g_dropped = !dropped;
    g_bytes_before = !before;
    g_bytes_after = !after;
  }
