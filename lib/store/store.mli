(** Persistent, sharded, content-addressed measurement store.

    This is the disk tier of the engine's cache hierarchy (memory memo
    -> disk store -> real profiler). A store is a directory of 16
    append-only binary segments, sharded by key so engine worker
    domains append concurrently without contending on one file lock.

    Records are framed as

    {v
      u32 magic | u16 key_len | u16 gen_len | u32 payload_len
      key bytes | gen bytes | payload bytes | u64 FNV-1a checksum
    v}

    where [key] is the stable content digest of the job (block bytes +
    environment + uarch id), [gen] is the generation fingerprint of the
    profiler configuration and uarch descriptor tables, and [payload]
    is an opaque measurement blob. The checksum covers frame and body,
    so a torn or bit-flipped tail record is detected at open time and
    truncated away — never served.

    Lookups are generation-keyed: a record whose key matches but whose
    generation does not is reported as {!Stale}, which is how editing a
    latency table invalidates exactly the affected entries. Appending
    a record for an existing key supersedes the previous generation;
    {!gc} rewrites live records and drops superseded ones.

    All operations are safe to call from multiple domains of one
    process. The store is single-writer per directory across
    processes. *)

type t

(** Open (creating if needed) the store rooted at a directory path.
    Scans every segment to rebuild the in-memory index, truncating any
    torn tail. Raises [Failure] if the path exists and is not a
    directory. *)
val open_ : string -> t

val close : t -> unit
val dir : t -> string

type lookup =
  | Hit of string  (** payload, current generation *)
  | Stale  (** key present but written under a different generation *)
  | Miss

val get : t -> key:string -> gen:string -> lookup

(** Append a record. Returns [false] (and writes nothing) when the
    live record for [key] already has this [gen]: payloads are
    deterministic functions of (key, gen), so rewriting is pure
    churn. Returns [true] after a durable append. *)
val put : t -> key:string -> gen:string -> string -> bool

(** Iterate live records in deterministic (key-sorted) order. *)
val fold : t -> init:'a -> f:('a -> key:string -> gen:string -> string -> 'a) -> 'a

type stats = {
  s_dir : string;
  s_shards : int;
  s_live : int;  (** records served by the index *)
  s_records : int;  (** total records on disk, including superseded *)
  s_superseded : int;
  s_torn : int;  (** torn-tail truncation events observed at open *)
  s_stale_segments : int;
      (** segments whose header belongs to an incompatible writer
          (different format or OCaml version); treated as empty and
          rewritten on first append *)
  s_bytes : int;
}

val stats : t -> stats

type verify_report = {
  v_live : int;
  v_records : int;
  v_corrupt : int;  (** checksum failures found by this scan *)
  v_torn : int;  (** torn-tail events recorded when the store was opened *)
  v_stale_segments : int;
}

(** Re-scan every segment from disk and re-check every record
    checksum. A clean store reports [v_corrupt = 0]. *)
val verify : t -> verify_report

type gc_report = {
  g_live : int;
  g_dropped : int;  (** superseded records removed *)
  g_bytes_before : int;
  g_bytes_after : int;
}

(** Compact: rewrite each segment with only live records, key-sorted,
    dropping superseded generations and reclaiming torn/stale bytes. *)
val gc : t -> gc_report

(** Number of key shards (segment files) per store. *)
val shard_count : int

module Sha256 : sig
  val digest : string -> string
  val hex : string -> string
  val to_hex : string -> string
end

module Codec : module type of Codec

(** Crash-safe append-only JSONL files — the discipline the run journal
    (lib/manifest) shares with the store's segments: a record counts
    only once its terminating newline is on disk; a torn or invalid
    tail is truncated at open time; mid-file corruption refuses to
    open. *)
module Jsonl : sig
  type t

  (** Open (creating if needed) for appending, returning the complete
      lines already present. [~fresh:true] truncates first. A final
      line that is unterminated or fails [valid] is truncated away; an
      invalid line anywhere else is an [Error]. *)
  val open_ :
    ?fresh:bool ->
    ?valid:(string -> bool) ->
    string ->
    (t * string list, string) result

  (** Append one line (the newline is added) and push it to the OS. *)
  val append : t -> string -> unit

  val path : t -> string
  val close : t -> unit
end
