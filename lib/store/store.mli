(** Persistent, sharded, content-addressed measurement store.

    This is the disk tier of the engine's cache hierarchy (memory memo
    -> disk store -> real profiler). A store is a directory of 16
    append-only binary segments, sharded by key so engine worker
    domains append concurrently without contending on one file lock.

    Records are framed as

    {v
      u32 magic | u16 key_len | u16 gen_len | u32 payload_len
      key bytes | gen bytes | payload bytes | u64 FNV-1a checksum
    v}

    where [key] is the stable content digest of the job (block bytes +
    environment + uarch id), [gen] is the generation fingerprint of the
    profiler configuration and uarch descriptor tables, and [payload]
    is an opaque measurement blob. The checksum covers frame and body,
    so a torn or bit-flipped tail record is detected at open time and
    truncated away — never served.

    Lookups are generation-keyed: a record whose key matches but whose
    generation does not is reported as {!Stale}, which is how editing a
    latency table invalidates exactly the affected entries. Appending
    a record for an existing key supersedes the previous generation;
    {!gc} rewrites live records and drops superseded ones.

    All operations are safe to call from multiple domains of one
    process. Across processes the store is shared through per-shard
    advisory file locks (a [.lock] sibling per segment): every append
    takes the shard's file lock, resynchronises the in-memory index
    with whatever other processes appended since the shard was last
    looked at, truncates the torn tail a killed foreign writer may
    have left, and only then writes — so several server processes can
    share one directory with a single writer per shard at any instant
    and no duplicated records for the same (key, generation). Reads
    ({!get}, {!fold}) are lock-free and serve the process's last
    synchronised snapshot plus its own writes; records appended by
    another process become visible at the next {!put} on that shard,
    {!verify}, or reopen. {!gc} is the exception: it rewrites segment
    files in place (rename-over-tmp), which invalidates the open file
    handles of every other process sharing the directory — run it
    offline, never while servers are attached. *)

type t

(** Open (creating if needed) the store rooted at a directory path.
    Each segment may carry a checksummed sidecar index ([.idx]
    sibling, written on every append and rewritten by every full
    scan); a warm open loads the index from the sidecar after
    verifying it against the segment (header bytes, entry bounds and
    tiling, and the last indexed record's checksum), scanning only the
    segment bytes the sidecar does not cover. Any disagreement —
    foreign header, torn or bit-flipped entries beyond the tail,
    overlap, a tail record that fails verification — distrusts the
    sidecar entirely and falls back to the full segment scan, which
    rewrites a fresh sidecar. Either way the resulting index is
    derived from (or verified against) checksummed segment bytes, so
    sidecar corruption costs open time, never wrong answers. Torn
    segment tails are truncated as before. Raises [Failure] if the
    path exists and is not a directory. *)
val open_ : string -> t

val close : t -> unit
val dir : t -> string

type lookup =
  | Hit of string  (** payload, current generation *)
  | Stale  (** key present but written under a different generation *)
  | Miss

(** Warm-path lookup. The shard lock covers only the in-memory index
    probe; the payload itself is read with [pread] on a per-shard
    descriptor that carries no shared offset, so any number of domains
    read the same shard concurrently without serialising. A read that
    comes back short (the segment was truncated under us by a sibling
    process healing a torn tail) retries once under the shard and file
    locks after a resync; if the record is gone it degrades to
    {!Miss}, never a wrong payload. *)
val get : t -> key:string -> gen:string -> lookup

(** Append a record. Returns [false] (and writes nothing) when the
    live record for [key] already has this [gen]: payloads are
    deterministic functions of (key, gen), so rewriting is pure
    churn. Returns [true] after a durable append. *)
val put : t -> key:string -> gen:string -> string -> bool

(** Iterate live records in deterministic (key-sorted) order. *)
val fold : t -> init:'a -> f:('a -> key:string -> gen:string -> string -> 'a) -> 'a

type gen_stats = {
  g_gen : string;  (** generation fingerprint *)
  g_live : int;  (** live records stored under it *)
  g_bytes : int;  (** their summed payload bytes *)
}

(** Live records grouped by generation, heaviest (most live records)
    first; ties broken by fingerprint. With block-sensitive generations
    this is the per-candidate invalidation footprint. *)
val gen_stats : t -> gen_stats list

type shard_stats = {
  ss_shard : int;
  ss_live : int;
  ss_records : int;
  ss_bytes : int;
  ss_persisted : bool;
      (** this shard's open was served by the sidecar index *)
  ss_open_seconds : float;
}

type stats = {
  s_dir : string;
  s_shards : int;
  s_live : int;  (** records served by the index *)
  s_records : int;  (** total records on disk, including superseded *)
  s_superseded : int;
  s_torn : int;  (** torn-tail truncation events observed at open *)
  s_stale_segments : int;
      (** segments whose header belongs to an incompatible writer
          (different format or OCaml version); treated as empty and
          rewritten on first append *)
  s_bytes : int;
  s_index_persisted : int;  (** shards opened from their sidecar index *)
  s_index_scanned : int;  (** shards opened by a full segment scan *)
  s_open_seconds : float;  (** summed per-shard open wall time *)
  s_per_shard : shard_stats list;
}

val stats : t -> stats

type verify_report = {
  v_live : int;
  v_records : int;
  v_corrupt : int;  (** checksum failures found by this scan *)
  v_torn : int;  (** torn-tail events recorded when the store was opened *)
  v_stale_segments : int;
  v_index_entries : int;  (** valid sidecar entries checked *)
  v_index_mismatched : int;
      (** sidecar entries that disagree with the record actually at
          their offset — the only sidecar failure mode that counts as
          corruption (a missing or subset sidecar merely costs the
          next open a scan) *)
  v_index_missing : int;
      (** non-empty segments with no parseable sidecar *)
}

(** Re-scan every segment from disk, re-check every record checksum,
    and validate every sidecar index entry against the record at its
    offset. A clean store reports [v_corrupt = 0] and
    [v_index_mismatched = 0]. *)
val verify : t -> verify_report

type gc_report = {
  g_live : int;
  g_dropped : int;  (** superseded records removed *)
  g_bytes_before : int;
  g_bytes_after : int;
}

(** Compact: rewrite each segment with only live records, key-sorted,
    dropping superseded generations and reclaiming torn/stale bytes.
    Offline maintenance only — the rename-over-tmp rewrite invalidates
    other processes' open handles on the shared directory. *)
val gc : t -> gc_report

(** Number of key shards (segment files) per store. *)
val shard_count : int

module Sha256 : sig
  val digest : string -> string
  val hex : string -> string
  val to_hex : string -> string
end

module Codec : module type of Codec

(** EINTR-retry wrappers for the blocking Unix syscalls issued by the
    store, the journal, and the serve loop. A signal landing mid-call
    (SIGTERM during a drain, SIGCHLD in a forked test) must retry the
    syscall, not surface as a spurious [Unix_error (EINTR, _, _)].
    Lives here — not lib/core — because store is the lowest library in
    the dependency graph that touches Unix. *)
module Eintr : sig
  (** Run [f], retrying as long as it raises [Unix_error (EINTR, _, _)]. *)
  val intr : (unit -> 'a) -> 'a

  val read : Unix.file_descr -> Bytes.t -> int -> int -> int
  val write : Unix.file_descr -> Bytes.t -> int -> int -> int
  val write_substring : Unix.file_descr -> string -> int -> int -> int

  val accept :
    ?cloexec:bool -> Unix.file_descr -> Unix.file_descr * Unix.sockaddr

  val lockf : Unix.file_descr -> Unix.lock_command -> int -> unit

  (** Write the whole string, looping over partial writes. *)
  val really_write_substring : Unix.file_descr -> string -> unit

  (** Read exactly [len] bytes; [false] on premature EOF. *)
  val really_read : Unix.file_descr -> Bytes.t -> int -> int -> bool
end

(** Crash-safe append-only JSONL files — the discipline the run journal
    (lib/manifest) shares with the store's segments: a record counts
    only once its terminating newline is on disk; a torn or invalid
    tail is truncated at open time; mid-file corruption refuses to
    open. *)
module Jsonl : sig
  type t

  (** Open (creating if needed) for appending, returning the complete
      lines already present. [~fresh:true] truncates first. A final
      line that is unterminated or fails [valid] is truncated away; an
      invalid line anywhere else is an [Error]. *)
  val open_ :
    ?fresh:bool ->
    ?valid:(string -> bool) ->
    string ->
    (t * string list, string) result

  (** Append one line (the newline is added) and push it to the OS. *)
  val append : t -> string -> unit

  val path : t -> string
  val close : t -> unit
end
