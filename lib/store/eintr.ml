(* EINTR-retry wrappers for the blocking Unix syscalls this codebase
   issues directly (segment appends, journal I/O, the serve accept
   loop). A signal delivered mid-syscall — SIGTERM during a drain,
   SIGCHLD from a forked test — makes the kernel return EINTR, which
   OCaml surfaces as [Unix_error (EINTR, _, _)]. None of our call
   sites want to observe that: the operation should simply be retried.
   Interruption policy lives with whoever installed the signal handler
   (e.g. the serve drain flag), not in the I/O path.

   This lives in lib/store rather than lib/core because store is the
   lowest library in the dependency graph that touches Unix — lib/core
   sits above the engine and cannot be a dependency of the store or
   the journal. *)

let rec intr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> intr f

let read fd buf off len = intr (fun () -> Unix.read fd buf off len)
let write fd buf off len = intr (fun () -> Unix.write fd buf off len)

let write_substring fd s off len =
  intr (fun () -> Unix.write_substring fd s off len)

let accept ?cloexec fd = intr (fun () -> Unix.accept ?cloexec fd)
let lockf fd cmd len = intr (fun () -> Unix.lockf fd cmd len)

(* Loop a partial-write syscall to completion. *)
let really_write_substring fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + write_substring fd s off (len - off))
  in
  go 0

(* Read exactly [len] bytes into [buf] starting at [off]; returns
   [false] on EOF before [len] bytes arrived. *)
let really_read fd buf off len =
  let rec go off remaining =
    if remaining = 0 then true
    else
      match read fd buf off remaining with
      | 0 -> false
      | n -> go (off + n) (remaining - n)
  in
  go off len
