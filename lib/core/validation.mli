(** Model validation: predictions vs ground truth, aggregated overall,
    per application, and per LDA category. *)

type sample = {
  entry : Dataset.entry;
  predicted : float;
}

type eval = {
  model : string;
  uarch : string;
  samples : sample list;
  unsupported : int;  (** blocks the model failed to analyse *)
  average_error : float;  (** unweighted mean relative error (Table V) *)
  weighted_error : float;  (** frequency-weighted (Table VII) *)
  kendall_tau : float;
}

val error_of : sample -> float

(** Evaluate one model over explicit dataset entries. *)
val evaluate_entries :
  Uarch.Descriptor.t -> Models.Model_intf.t -> Dataset.entry list -> eval

(** Evaluate one model over a whole dataset. *)
val evaluate : Dataset.t -> Models.Model_intf.t -> eval

(** Frequency-weighted error per source application (the per-application
    figures). *)
val by_app : eval -> (string * float) list

(** Unweighted error per block category (the per-cluster figures). *)
val by_category :
  Classify.Categories.t -> eval -> (Classify.Categories.label * float) list

(** Average error per block-length bucket (bucket name, error, count) —
    the error-vs-length analysis the paper leaves as an open TODO. *)
val by_length : eval -> (string * float * int) list

(** Ground-truth (block, throughput) pairs for [entries] of [dataset].
    Without an engine the stored measurements are used; with one, the
    entries are re-profiled through the engine's memo cache — free when
    the same engine built the dataset, an independent re-measurement
    (bit-identical, since the profiler is deterministic) otherwise. *)
val ground_truth :
  ?engine:Engine.t ->
  Dataset.t ->
  Dataset.entry list ->
  (X86.Inst.t list * float) list

(** The paper's four models for this dataset's microarchitecture; the
    learned model is trained on the dataset's training split, and the
    returned entries are the held-out evaluation set. When [engine] is
    given, the training split's ground truth is derived through
    {!ground_truth}. *)
val standard_models :
  ?train_fraction:float ->
  ?engine:Engine.t ->
  Dataset.t ->
  Models.Model_intf.t list * Dataset.entry list

(** All four models evaluated on the held-out entries (Table V rows).
    When [engine] is given, both splits go through {!ground_truth}. *)
val evaluate_all : ?train_fraction:float -> ?engine:Engine.t -> Dataset.t -> eval list
