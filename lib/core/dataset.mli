(** The measured dataset: ground-truth throughput for every successfully
    profiled block of a corpus on one microarchitecture. *)

type entry = {
  block : Corpus.Block.t;
  throughput : float;  (** measured cycles per iteration *)
  faults : int;  (** pages the monitor had to map *)
  unroll_large : int;
  unroll_small : int;
}

(** A block the profiler could not measure, with the measurement
    conditions it failed under (so failure lists from different
    datasets can be pooled without losing provenance). *)
type failure = {
  fail_block : Corpus.Block.t;
  fail_env : Harness.Environment.t;
  fail_uarch : Uarch.Descriptor.t;
  fail_reason : Harness.Profiler.failure;
}

type t = {
  uarch : Uarch.Descriptor.t;
  env : Harness.Environment.t;
  entries : entry list;
  n_input : int;  (** corpus blocks offered *)
  n_avx2_excluded : int;  (** skipped on non-AVX2 uarches, as in the paper *)
  failures : failure list;
  rejected : (Corpus.Block.t * Harness.Profiler.reject_reason) list;
  quarantined : (Corpus.Block.t * Engine.quarantine) list;
      (** blocks the engine gave up on (retry budget exhausted under
          fault injection); empty when faults are off or recoverable *)
}

(** Profile every block of the corpus on [uarch] as one engine batch;
    deterministic, and entry/failure/rejection order follows corpus
    order for any worker count. [engine] defaults to {!Engine.default}
    so independent builds share the memo cache. *)
val build :
  ?env:Harness.Environment.t ->
  ?engine:Engine.t ->
  Uarch.Descriptor.t ->
  Corpus.Block.t list ->
  t

val size : t -> int

(** Fraction of (non-excluded) corpus blocks successfully measured — the
    quantity of the paper's Table I. *)
val profiled_fraction : t -> float

(** Deterministic split by block-id hash, used to train the learned model
    on data disjoint from its evaluation set. *)
val split : train_fraction:float -> t -> entry list * entry list
