(** The measured dataset: every successfully profiled block of a corpus
    on one microarchitecture, with its ground-truth throughput. *)

type entry = {
  block : Corpus.Block.t;
  throughput : float;
  faults : int;  (** pages the monitor had to map *)
  unroll_large : int;
  unroll_small : int;
}

type failure = {
  fail_block : Corpus.Block.t;
  fail_env : Harness.Environment.t;
  fail_uarch : Uarch.Descriptor.t;
  fail_reason : Harness.Profiler.failure;
}

type t = {
  uarch : Uarch.Descriptor.t;
  env : Harness.Environment.t;
  entries : entry list;
  n_input : int;
  n_avx2_excluded : int;
  failures : failure list;
  rejected : (Corpus.Block.t * Harness.Profiler.reject_reason) list;
  quarantined : (Corpus.Block.t * Engine.quarantine) list;
}

(* Profile every block of [blocks] on [uarch] as one engine batch;
   blocks using AVX2-class instructions are excluded on
   microarchitectures without AVX2 support, as in the paper's Ivy
   Bridge validation. The engine aggregates in submission order, so
   entries/failures/rejected keep corpus order for any worker count. *)
let build ?(env = Harness.Environment.default) ?engine
    (uarch : Uarch.Descriptor.t) (blocks : Corpus.Block.t list) : t =
  let engine =
    match engine with Some e -> e | None -> Engine.default ()
  in
  let n_avx2 = ref 0 in
  let considered =
    List.filter
      (fun (b : Corpus.Block.t) ->
        if (not uarch.supports_avx2) && Corpus.Block.uses_avx2 b then begin
          incr n_avx2;
          false
        end
        else true)
      blocks
  in
  let { Engine.outcomes; _ } =
    Engine.run_batch engine
      (List.map
         (fun (b : Corpus.Block.t) -> { Engine.env; uarch; block = b.insts })
         considered)
  in
  let entries = ref [] in
  let failures = ref [] in
  let rejected = ref [] in
  let quarantined = ref [] in
  List.iteri
    (fun i (b : Corpus.Block.t) ->
      match outcomes.(i) with
      | Ok (p : Harness.Profiler.profile) when p.accepted ->
        entries :=
          {
            block = b;
            throughput = p.throughput;
            faults = p.large.faults;
            unroll_large = p.factors.large;
            unroll_small = p.factors.small;
          }
          :: !entries
      | Ok p ->
        let reason =
          Option.value p.reject ~default:Harness.Profiler.Unstable
        in
        rejected := (b, reason) :: !rejected
      | Error (Engine.Profiler_failure f) ->
        failures :=
          { fail_block = b; fail_env = env; fail_uarch = uarch; fail_reason = f }
          :: !failures
      | Error (Engine.Quarantined q) -> quarantined := (b, q) :: !quarantined)
    considered;
  {
    uarch;
    env;
    entries = List.rev !entries;
    (* the batch result carries the measured-job count; adding the
       exclusions back recovers the corpus size without re-walking the
       input list *)
    n_input = Array.length outcomes + !n_avx2;
    n_avx2_excluded = !n_avx2;
    failures = List.rev !failures;
    rejected = List.rev !rejected;
    quarantined = List.rev !quarantined;
  }

let size t = List.length t.entries

let profiled_fraction t =
  let considered = t.n_input - t.n_avx2_excluded in
  if considered = 0 then 0.0
  else float_of_int (size t) /. float_of_int considered

(* Deterministic train/evaluation split by block-id hash (used to train
   the learned model on data it is not evaluated on). *)
let split ~train_fraction t =
  let train = ref [] and eval = ref [] in
  List.iter
    (fun e ->
      let h = Bstats.Rng.seed_of_string e.block.id in
      let u =
        Int64.to_float (Int64.logand h 0xFFFFFFL) /. 16777216.0
      in
      if u < train_fraction then train := e :: !train else eval := e :: !eval)
    t.entries;
  (List.rev !train, List.rev !eval)
