(** Ablation experiments (Tables I and II of the paper).

    Table I measures what fraction of the suite each incremental
    measurement technique can successfully profile; Table II follows a
    single large TensorFlow block through the same progression of
    configurations, reporting the measured value and miss counters at
    each step.

    Both tables drive the profiler through one shared {!Engine}, so the
    "None" → "Mapping" → "Unrolling" progression reuses memoised
    profiles wherever two configurations fingerprint identically, and
    re-running a table after a dataset build costs only cache hits. *)

type suite_row = {
  technique : string;
  profiled_percent : float;
  n_profiled : int;
  n_total : int;
  n_quarantined : int;
}

let technique_envs =
  [
    ("None", Harness.Environment.agner_baseline);
    ("Mapping all accessed pages", Harness.Environment.with_page_mapping);
    ("More intelligent unrolling", Harness.Environment.default);
  ]

(* Table I: percentage of the suite profiled under each incremental
   technique. One engine batch per technique environment. *)
let suite_ablation ?(uarch = Uarch.All.haswell) ?engine
    (blocks : Corpus.Block.t list) : suite_row list =
  let engine = match engine with Some e -> e | None -> Engine.default () in
  List.map
    (fun (technique, env) ->
      let { Engine.outcomes; _ } =
        Engine.run_batch engine
          (List.map
             (fun (b : Corpus.Block.t) -> { Engine.env; uarch; block = b.insts })
             blocks)
      in
      let ok, quarantined =
        Array.fold_left
          (fun (ok, q) -> function
            | Ok (p : Harness.Profiler.profile) when p.accepted -> (ok + 1, q)
            | Error (Engine.Quarantined _) -> (ok, q + 1)
            | _ -> (ok, q))
          (0, 0) outcomes
      in
      let n = Array.length outcomes in
      {
        technique;
        profiled_percent = 100.0 *. float_of_int ok /. float_of_int n;
        n_profiled = ok;
        n_total = n;
        n_quarantined = quarantined;
      })
    technique_envs

type block_row = {
  optimization : string;
  measured : string;  (** throughput or "Crashed" *)
  l1d_misses : string;
  l1i_misses : string;
}

(* Table II: one block through the five incremental configurations. *)
let block_ablation ?(uarch = Uarch.All.haswell) ?engine
    (block : X86.Inst.t list) : block_row list =
  let engine = match engine with Some e -> e | None -> Engine.default () in
  let configs =
    [
      ("None", Harness.Environment.agner_baseline);
      ( "Page mapping",
        {
          Harness.Environment.default with
          mapping = Harness.Environment.Fresh_pages;
          unroll = Harness.Environment.Naive 100;
          disable_underflow = false;
          drop_misaligned = false;
        } );
      ( "Single physical page",
        {
          Harness.Environment.default with
          unroll = Harness.Environment.Naive 100;
          disable_underflow = false;
          drop_misaligned = false;
        } );
      ( "Disabling gradual underflow",
        {
          Harness.Environment.default with
          unroll = Harness.Environment.Naive 100;
          drop_misaligned = false;
        } );
      ("Using smaller unroll factor", Harness.Environment.default);
    ]
  in
  let { Engine.outcomes; _ } =
    Engine.run_batch engine
      (List.map (fun (_, env) -> { Engine.env; uarch; block }) configs)
  in
  List.mapi
    (fun i (optimization, _) ->
      match outcomes.(i) with
      | Error (Engine.Quarantined _) ->
        {
          optimization;
          measured = "Quarantined";
          l1d_misses = "N/A";
          l1i_misses = "N/A";
        }
      | Error (Engine.Profiler_failure _) ->
        { optimization; measured = "Crashed"; l1d_misses = "N/A"; l1i_misses = "N/A" }
      | Ok (p : Harness.Profiler.profile) ->
        let c = p.large.counters in
        {
          optimization;
          measured = Printf.sprintf "%.1f" p.throughput;
          l1d_misses = string_of_int (c.l1d_read_misses + c.l1d_write_misses);
          l1i_misses = string_of_int c.l1i_misses;
        })
    configs
