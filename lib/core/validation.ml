(** Model validation: predict every dataset entry with every model and
    aggregate errors overall, per application, and per block category. *)

type sample = {
  entry : Dataset.entry;
  predicted : float;
}

type eval = {
  model : string;
  uarch : string;
  samples : sample list;
  unsupported : int;  (** blocks the model failed on *)
  average_error : float;
  weighted_error : float;
  kendall_tau : float;
}

let error_of (s : sample) =
  Bstats.Error.relative ~predicted:s.predicted ~measured:s.entry.throughput

(* Evaluate one model over dataset entries. *)
let evaluate_entries (uarch : Uarch.Descriptor.t) (model : Models.Model_intf.t)
    (entries : Dataset.entry list) : eval =
  let samples = ref [] in
  let unsupported = ref 0 in
  List.iter
    (fun (e : Dataset.entry) ->
      match model.predict e.block.insts with
      | Models.Model_intf.Throughput tp when Float.is_finite tp && tp > 0.0 ->
        samples := { entry = e; predicted = tp } :: !samples
      | Models.Model_intf.Throughput _ -> incr unsupported
      | Models.Model_intf.Unsupported _ -> incr unsupported)
    entries;
  let samples = List.rev !samples in
  let pairs = List.map (fun s -> (s.predicted, s.entry.throughput)) samples in
  let triples =
    List.map
      (fun s -> (s.predicted, s.entry.throughput, float_of_int s.entry.block.freq))
      samples
  in
  {
    model = model.name;
    uarch = uarch.short;
    samples;
    unsupported = !unsupported;
    average_error = Bstats.Error.average_relative pairs;
    weighted_error = Bstats.Error.weighted_relative triples;
    kendall_tau = Bstats.Kendall.tau pairs;
  }

let evaluate (dataset : Dataset.t) (model : Models.Model_intf.t) : eval =
  evaluate_entries dataset.uarch model dataset.entries

(* Per-application breakdown (frequency-weighted, per the paper's
   per-application figures). *)
let by_app (e : eval) : (string * float) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let app = s.entry.block.app in
      let w = float_of_int s.entry.block.freq in
      let num, den =
        Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt tbl app)
      in
      Hashtbl.replace tbl app (num +. (w *. error_of s), den +. w))
    e.samples;
  Hashtbl.fold
    (fun app (num, den) acc -> (app, if den > 0.0 then num /. den else nan) :: acc)
    tbl []
  |> List.sort compare

(* Per-category breakdown (unweighted, per the per-cluster figures). *)
let by_category (cls : Classify.Categories.t) (e : eval) :
    (Classify.Categories.label * float) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let l = Classify.Categories.classify cls s.entry.block in
      let errs = Option.value ~default:[] (Hashtbl.find_opt tbl l) in
      Hashtbl.replace tbl l (error_of s :: errs))
    e.samples;
  List.map
    (fun l ->
      (l, Bstats.Error.average (Option.value ~default:[] (Hashtbl.find_opt tbl l))))
    Classify.Categories.all_labels

(* Length buckets for the error-vs-block-size analysis (a TODO the paper
   leaves open: "compare error to basic block length and show [the
   learned model] does not generalize to large basic blocks"). *)
let length_buckets = [ (1, 3); (4, 7); (8, 15); (16, 31); (32, 1000) ]

let bucket_name (lo, hi) =
  if hi >= 1000 then Printf.sprintf "%d+" lo else Printf.sprintf "%d-%d" lo hi

let by_length (e : eval) : (string * float * int) list =
  List.map
    (fun (lo, hi) ->
      let errs =
        List.filter_map
          (fun s ->
            let n = Corpus.Block.length s.entry.block in
            if n >= lo && n <= hi then Some (error_of s) else None)
          e.samples
      in
      (bucket_name (lo, hi), Bstats.Error.average errs, List.length errs))
    length_buckets

(* Ground truth for a split. Without an engine, trust the dataset's
   stored measurements. With one, re-derive each entry's throughput
   through the engine: when the same engine built the dataset this is
   pure memo-cache hits; with a fresh engine it is an independent
   re-measurement, which the profiler's determinism guarantees agrees
   bit-for-bit with the stored value. *)
let ground_truth ?engine (dataset : Dataset.t) (entries : Dataset.entry list) :
    (X86.Inst.t list * float) list =
  match engine with
  | None ->
    List.map (fun (e : Dataset.entry) -> (e.block.insts, e.throughput)) entries
  | Some engine ->
    let { Engine.outcomes; _ } =
      Engine.run_batch engine
        (List.map
           (fun (e : Dataset.entry) ->
             { Engine.env = dataset.env; uarch = dataset.uarch; block = e.block.insts })
           entries)
    in
    List.mapi
      (fun i (e : Dataset.entry) ->
        match Harness.Profiler.accepted_throughput outcomes.(i) with
        | Some tp -> (e.block.insts, tp)
        | None -> (e.block.insts, e.throughput))
      entries

(** The paper's four models, instantiated for a dataset's uarch; the
    learned model is trained on the dataset's training split. *)
let standard_models ?(train_fraction = 0.85) ?engine (dataset : Dataset.t) :
    Models.Model_intf.t list * Dataset.entry list =
  let train, eval_entries = Dataset.split ~train_fraction dataset in
  let trained = Models.Ithemal.train (ground_truth ?engine dataset train) in
  ( [
      Models.Iaca.create dataset.uarch;
      Models.Llvm_mca.create dataset.uarch;
      Models.Ithemal.create trained;
      Models.Osaca.create dataset.uarch;
    ],
    eval_entries )

(* Full Table-"overall" style evaluation of one dataset: all four models
   on the held-out entries. *)
let evaluate_all ?train_fraction ?engine (dataset : Dataset.t) : eval list =
  let models, entries = standard_models ?train_fraction ?engine dataset in
  let entries =
    match engine with
    | None -> entries
    | Some _ ->
      (* evaluate against engine-derived ground truth (identical to the
         stored values by determinism; keeps the split cache-resident) *)
      List.map2
        (fun (e : Dataset.entry) (_, tp) -> { e with throughput = tp })
        entries
        (ground_truth ?engine dataset entries)
  in
  List.map (fun m -> evaluate_entries dataset.uarch m entries) models
