(** Plain-text rendering of the paper's tables and figures.

    Figures are rendered as labelled horizontal bar charts; tables as
    aligned columns. Every renderer prints to the given formatter so the
    bench harness can tee them into the experiment log. *)

let rule fmt title =
  Format.fprintf fmt "@.=== %s ===@." title

(* --- tables ---------------------------------------------------------- *)

let suite_ablation fmt (rows : Ablation.suite_row list) =
  rule fmt "Table I: measurement-technique ablation (percent of suite profiled)";
  let any_quarantined =
    List.exists (fun (r : Ablation.suite_row) -> r.n_quarantined > 0) rows
  in
  Format.fprintf fmt "%-34s %-10s %s%s@." "(Additional) Technique" "Profiled"
    "Blocks"
    (if any_quarantined then "       Quarantined" else "");
  List.iter
    (fun (r : Ablation.suite_row) ->
      Format.fprintf fmt "%-34s %6.2f%%    %d/%d%s@." r.technique
        r.profiled_percent r.n_profiled r.n_total
        (if any_quarantined then Printf.sprintf "    %d" r.n_quarantined
         else ""))
    rows

let block_ablation fmt (rows : Ablation.block_row list) =
  rule fmt "Table II: incremental optimizations on one TensorFlow block";
  Format.fprintf fmt "%-30s %-12s %-12s %s@." "(Additional) Optimization"
    "Measured" "L1D misses" "L1I misses";
  List.iter
    (fun (r : Ablation.block_row) ->
      Format.fprintf fmt "%-30s %-12s %-12s %s@." r.optimization r.measured
        r.l1d_misses r.l1i_misses)
    rows

let applications fmt (blocks : Corpus.Block.t list) =
  rule fmt "Table III: source applications of basic blocks";
  Format.fprintf fmt "%-14s %-24s %s@." "Application" "Domain" "# Basic Blocks";
  let by_app = Corpus.Suite.count_by_app blocks in
  List.iter
    (fun (app, n) ->
      let domain =
        match List.find_opt (fun (a : Corpus.Apps.t) -> a.name = app) Corpus.Apps.all_apps with
        | Some a -> a.domain
        | None -> "-"
      in
      Format.fprintf fmt "%-14s %-24s %d@." app domain n)
    by_app;
  Format.fprintf fmt "%-14s %-24s %d@." "Total" "" (List.length blocks)

let categories fmt (cls : Classify.Categories.t) (blocks : Corpus.Block.t list) =
  rule fmt "Table IV: basic block categories (LDA, 6 topics)";
  Format.fprintf fmt "%-12s %-45s %s@." "Category" "Description" "# Basic Blocks";
  List.iter
    (fun (l, n) ->
      Format.fprintf fmt "%-12s %-45s %d@."
        (Classify.Categories.label_name l)
        (Classify.Categories.label_description l)
        n)
    (Classify.Categories.category_counts cls blocks)

let overall_error fmt (evals : (string * Validation.eval list) list) =
  rule fmt "Table V: overall error of evaluated models";
  Format.fprintf fmt "%-16s %-10s %-10s %s@." "Microarchitecture" "Model"
    "Avg Error" "95% bootstrap CI";
  List.iter
    (fun (uarch_name, per_model) ->
      List.iteri
        (fun i (e : Validation.eval) ->
          let ci =
            Bstats.Bootstrap.mean_ci (List.map Validation.error_of e.samples)
          in
          Format.fprintf fmt "%-16s %-10s %-10.4f [%.4f, %.4f]@."
            (if i = 0 then uarch_name else "")
            e.model e.average_error ci.lo ci.hi)
        per_model)
    evals

let case_study fmt
    (rows :
      (string * X86.Inst.t list * float * (string * Models.Model_intf.prediction) list)
      list) =
  rule fmt "Table VI: interesting basic blocks (measured vs predicted inverse throughput)";
  List.iter
    (fun (name, block, measured, predictions) ->
      Format.fprintf fmt "@.%s:@." name;
      List.iter
        (fun inst -> Format.fprintf fmt "    %s@." (X86.Inst.to_string inst))
        block;
      Format.fprintf fmt "  measured: %.2f@." measured;
      List.iter
        (fun (model, p) ->
          match p with
          | Models.Model_intf.Throughput tp ->
            Format.fprintf fmt "  %-10s %.2f@." model tp
          | Models.Model_intf.Unsupported reason ->
            Format.fprintf fmt "  %-10s - (%s)@." model reason)
        predictions)
    rows

let google_numbers fmt
    (rows : (string * Validation.eval list) list) =
  rule fmt "Table VII: accuracy on Spanner and Dremel (Haswell)";
  Format.fprintf fmt "%-10s %-10s %-14s %-14s %s@." "Application" "Model"
    "Average Error" "Weighted Error" "Kendall's Tau";
  List.iter
    (fun (app, per_model) ->
      List.iteri
        (fun i (e : Validation.eval) ->
          Format.fprintf fmt "%-10s %-10s %-14.4f %-14.4f %.4f@."
            (if i = 0 then app else "")
            e.model e.average_error e.weighted_error e.kendall_tau)
        per_model)
    rows

(* --- figures (text bars) --------------------------------------------- *)

let bar_chart fmt ~title ~unit rows =
  rule fmt title;
  let max_value = List.fold_left (fun m (_, v) -> Float.max m v) 0.0 rows in
  List.iter
    (fun (label, v) ->
      Format.fprintf fmt "%-14s |%s| %.3f%s@." label
        (Bstats.Summary.bar ~max_value v)
        v unit)
    rows

let per_app_error fmt ~uarch (evals : Validation.eval list) =
  rule fmt (Printf.sprintf "Figure: per-application error on %s (frequency-weighted)" uarch);
  List.iter
    (fun (e : Validation.eval) ->
      Format.fprintf fmt "@.[%s]@." e.model;
      let rows = Validation.by_app e in
      let max_value = List.fold_left (fun m (_, v) -> Float.max m v) 0.0 rows in
      List.iter
        (fun (app, err) ->
          Format.fprintf fmt "  %-12s |%s| %.3f@." app
            (Bstats.Summary.bar ~max_value err)
            err)
        rows)
    evals

let per_category_error fmt ~uarch (cls : Classify.Categories.t)
    (evals : Validation.eval list) =
  rule fmt (Printf.sprintf "Figure: per-cluster error on %s" uarch);
  List.iter
    (fun (e : Validation.eval) ->
      Format.fprintf fmt "@.[%s]@." e.model;
      let rows = Validation.by_category cls e in
      let max_value =
        List.fold_left
          (fun m (_, v) -> if Float.is_nan v then m else Float.max m v)
          0.0 rows
      in
      List.iter
        (fun (l, err) ->
          if Float.is_nan err then
            Format.fprintf fmt "  %-12s (no blocks)@." (Classify.Categories.label_name l)
          else
            Format.fprintf fmt "  %-12s |%s| %.3f@."
              (Classify.Categories.label_name l)
              (Bstats.Summary.bar ~max_value err)
              err)
        rows)
    evals

let composition fmt ~title (rows : Classify.Composition.row list) =
  rule fmt title;
  Format.fprintf fmt "%-14s" "";
  List.iter
    (fun l -> Format.fprintf fmt " %8s" (Classify.Categories.label_name l))
    Classify.Categories.all_labels;
  Format.fprintf fmt "@.";
  List.iter
    (fun (r : Classify.Composition.row) ->
      Format.fprintf fmt "%a@." Classify.Composition.pp_row r)
    rows

let exemplars fmt (pairs : (Classify.Categories.label * Corpus.Block.t) list) =
  rule fmt "Figure: example basic blocks per category";
  List.iter
    (fun (l, (b : Corpus.Block.t)) ->
      Format.fprintf fmt "@.%s (%s) — from %s:@."
        (Classify.Categories.label_name l)
        (Classify.Categories.label_description l)
        b.app;
      List.iter
        (fun inst -> Format.fprintf fmt "    %s@." (X86.Inst.to_string inst))
        b.insts)
    pairs

let per_length_error fmt ~uarch (evals : Validation.eval list) =
  rule fmt
    (Printf.sprintf "Figure (extension): error vs block length on %s" uarch);
  List.iter
    (fun (e : Validation.eval) ->
      Format.fprintf fmt "@.[%s]@." e.model;
      let rows = Validation.by_length e in
      let max_value =
        List.fold_left
          (fun m (_, v, _) -> if Float.is_nan v then m else Float.max m v)
          0.0 rows
      in
      List.iter
        (fun (name, err, n) ->
          if n = 0 then Format.fprintf fmt "  %-8s (no blocks)@." name
          else
            Format.fprintf fmt "  %-8s |%s| %.3f (n=%d)@." name
              (Bstats.Summary.bar ~max_value err)
              err n)
        rows)
    evals

(* Gantt-style schedule rendering for the mis-scheduling case study. *)
let schedule fmt ~model ~block (entries : Models.Model_intf.schedule_entry list) =
  Format.fprintf fmt "@.[%s schedule]@." model;
  let insts = Array.of_list block in
  (* show the middle iterations (steady state) *)
  let iters =
    List.sort_uniq compare
      (List.map (fun (e : Models.Model_intf.schedule_entry) -> e.iteration) entries)
  in
  let mid =
    match iters with
    | [] -> []
    | _ ->
      let n = List.length iters in
      List.filteri (fun i _ -> i >= n / 2 && i < (n / 2) + 2) iters
  in
  let shown =
    List.filter
      (fun (e : Models.Model_intf.schedule_entry) -> List.mem e.iteration mid)
      entries
  in
  let t0 =
    List.fold_left
      (fun m (e : Models.Model_intf.schedule_entry) -> min m e.dispatch)
      max_int shown
  in
  List.iter
    (fun (e : Models.Model_intf.schedule_entry) ->
      let pad = String.make (max 0 (e.dispatch - t0)) ' ' in
      let width = max 1 (e.complete - e.dispatch) in
      Format.fprintf fmt "  it%d p%d %s%s %s@." e.iteration e.port pad
        (String.make width '=')
        (if e.inst_index < Array.length insts then
           X86.Inst.to_string insts.(e.inst_index)
         else ""))
    shown
