(** The BHive basic-block profiler.

    For each unroll factor the profiler: (1) runs the monitor/measure
    mapping algorithm, (2) replays the final execution through the cycle
    simulator once to warm the caches (the paper's first, discarded
    execution), then (3) takes [env.timings] timed runs, each exposed to
    simulated OS noise. A block is accepted only if at least
    [env.min_clean] timings are clean (no cache misses of any kind, no
    context switches) and identical, and — when the filter is enabled —
    no load or store crossed a cache line. *)

open X86

(* Bump whenever the measurement algorithm changes in a way that can
   alter results for the same (env, uarch, block) — the persistent
   store folds this into its generation fingerprint, so a bump
   invalidates every stored measurement at once. *)
let algorithm_version = "bhive-measure-1"

type reject_reason =
  | Misaligned_access  (** MISALIGNED_MEM_REFERENCE counter non-zero *)
  | Never_clean
      (** no timing met the clean criteria (persistent cache misses) *)
  | Unstable  (** fewer than [min_clean] identical clean timings *)

type failure =
  | Mapping_failed of Mapping.failure
  | Rejected of reject_reason

let failure_to_string ?fingerprint f =
  let base =
    match f with
    | Mapping_failed f -> "mapping: " ^ Mapping.failure_to_string f
    | Rejected Misaligned_access -> "rejected: misaligned access"
    | Rejected Never_clean -> "rejected: never clean"
    | Rejected Unstable -> "rejected: unstable timings"
  in
  match fingerprint with
  | None -> base
  | Some fp -> Printf.sprintf "%s [job %s]" base fp

(* Telemetry instruments. Counters are always on (an increment is one
   atomic add); spans are emitted only when a BHIVE_TRACE sink is
   installed. *)
let m_profiles = Telemetry.Metrics.counter "profiler.profiles"
let m_accepted = Telemetry.Metrics.counter "profiler.accepted"
let m_mapping_failed = Telemetry.Metrics.counter "profiler.mapping_failed"

let m_rejected_misaligned =
  Telemetry.Metrics.counter "profiler.rejected.misaligned"

let m_rejected_never_clean =
  Telemetry.Metrics.counter "profiler.rejected.never_clean"

let m_rejected_unstable =
  Telemetry.Metrics.counter "profiler.rejected.unstable"

let h_profile_seconds = Telemetry.Metrics.histogram "profiler.seconds"

type timing = {
  cycles : int;
  counters : Pipeline.Counters.t;
  clean : bool;
}

(* Result of measuring one unrolled instance. *)
type point = {
  unroll : int;
  accepted_cycles : int option;  (** agreed-upon clean cycle count *)
  best_cycles : int;  (** minimum observed, reported even when unclean *)
  timings : timing list;
  faults : int;
  distinct_frames : int;
  counters : Pipeline.Counters.t;  (** from the first timed run *)
}

type profile = {
  throughput : float;
  accepted : bool;
  reject : reject_reason option;
  large : point;
  small : point option;
  factors : Unroll.factors;
}

(* OS / measurement noise model: a context switch pollutes the counters
   and adds many cycles; small timer jitter perturbs the cycle count
   without dirtying the counters. Both are what the 16-timings /
   8-identical-clean rule exists to filter. *)
let apply_noise (env : Environment.t) rng ~cycles
    (counters : Pipeline.Counters.t) =
  let counters = Pipeline.Counters.copy counters in
  let cycles =
    if Bstats.Rng.bernoulli rng env.context_switch_rate then begin
      counters.context_switches <- counters.context_switches + 1;
      cycles + 3000 + Bstats.Rng.int rng 4000
    end
    else cycles
  in
  let cycles =
    if Bstats.Rng.bernoulli rng 0.05 then cycles + 1 + Bstats.Rng.int rng 3
    else cycles
  in
  (cycles, counters)

(* Mapping.run wrapped in a "profiler.mapping" span. The monitor's
   mapping attempts are its restarts: one per intercepted fault plus
   the final complete run. *)
let run_mapping (env : Environment.t) block ~unroll =
  if not (Telemetry.Trace.enabled ()) then Mapping.run env block ~unroll
  else begin
    let result = ref None in
    Telemetry.Trace.span "profiler.mapping"
      ~attrs:(fun () ->
        let open Telemetry.Trace in
        let base = [ ("unroll", Int unroll) ] in
        match !result with
        | Some (Ok (m : Mapping.success)) ->
          base
          @ [
              ("ok", Bool true);
              ("attempts", Int (m.faults + 1));
              ("faults", Int m.faults);
              ("distinct_frames", Int m.distinct_frames);
            ]
        | Some (Error f) ->
          base
          @ [ ("ok", Bool false); ("error", Str (Mapping.failure_to_string f)) ]
        | None -> base)
      (fun () -> result := Some (Mapping.run env block ~unroll));
    Option.get !result
  end

(* Measure one unroll factor of [block] on [descriptor]. *)
let measure_point_untraced (env : Environment.t)
    (descriptor : Uarch.Descriptor.t) rng (block : Inst.t list) ~unroll :
    (point, Mapping.failure) result =
  match run_mapping env block ~unroll with
  | Error f -> Error f
  | Ok mapped ->
    (* One machine per (domain, uarch), reused across measure points:
       [~fresh] flushes the caches, which restores exactly the state a
       newly created machine would have. *)
    let batch = Pipeline.Batch.for_descriptor descriptor in
    let machine = Pipeline.Batch.machine batch in
    (* Discarded warm-up execution: fills L1D/L1I. *)
    ignore (Pipeline.Batch.run ~fresh:true batch mapped.steps);
    (* Steady-state timed executions. The simulated machine is
       deterministic once warm, so one simulation gives the noise-free
       cycle count; each of the [env.timings] measurements then sees its
       own independently sampled OS noise, exactly what the repeat-and-
       filter protocol exists to reject. *)
    let base = Pipeline.Machine.run machine mapped.steps in
    let timings =
      List.init env.timings (fun _ ->
          let cycles, counters =
            apply_noise env rng ~cycles:base.cycles base.counters
          in
          { cycles; counters; clean = Pipeline.Counters.is_clean counters })
    in
    (* Most frequent cycle count among clean timings. *)
    let clean = List.filter (fun t -> t.clean) timings in
    let accepted_cycles =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun t ->
          Hashtbl.replace tbl t.cycles
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl t.cycles)))
        clean;
      Hashtbl.fold
        (fun cyc count best ->
          match best with
          | Some (_, bc) when bc >= count -> best
          | _ when count >= env.min_clean -> Some (cyc, count)
          | _ -> best)
        tbl None
      |> Option.map fst
    in
    let best_cycles =
      List.fold_left (fun acc t -> min acc t.cycles) max_int timings
    in
    Ok
      {
        unroll;
        accepted_cycles;
        best_cycles;
        timings;
        faults = mapped.faults;
        distinct_frames = mapped.distinct_frames;
        counters = base.counters;
      }

(* One measurement = one "profiler.measure" span, carrying the unroll
   factor tried and the mapping/filter-relevant outcome. *)
let measure_point env descriptor rng block ~unroll =
  if not (Telemetry.Trace.enabled ()) then
    measure_point_untraced env descriptor rng block ~unroll
  else begin
    let result = ref None in
    Telemetry.Trace.span "profiler.measure"
      ~attrs:(fun () ->
        let open Telemetry.Trace in
        let base = [ ("unroll", Int unroll) ] in
        match !result with
        | Some (Ok (p : point)) ->
          base
          @ [
              ( "accepted_cycles",
                match p.accepted_cycles with
                | Some c -> Int c
                | None -> Str "none" );
              ("best_cycles", Int p.best_cycles);
              ("faults", Int p.faults);
              ("distinct_frames", Int p.distinct_frames);
            ]
        | Some (Error f) ->
          base @ [ ("mapping_error", Str (Mapping.failure_to_string f)) ]
        | None -> base)
      (fun () ->
        result := Some (measure_point_untraced env descriptor rng block ~unroll));
    Option.get !result
  end

let profile_untraced (env : Environment.t) (descriptor : Uarch.Descriptor.t)
    (block : Inst.t list) : (profile, failure) result =
  let seed =
    Int64.add env.noise_seed
      (Bstats.Rng.seed_of_string
         (String.concat ";" (List.map Inst.to_string block)))
  in
  let rng = Bstats.Rng.create seed in
  let factors = Unroll.choose env.unroll block in
  match measure_point env descriptor rng block ~unroll:factors.large with
  | Error f -> Error (Mapping_failed f)
  | Ok large -> (
    let small =
      if factors.small = 0 then Ok None
      else
        Result.map Option.some
          (measure_point env descriptor rng block ~unroll:factors.small)
    in
    match small with
    | Error f -> Error (Mapping_failed f)
    | Ok small ->
      let cycles_of (p : point) =
        match p.accepted_cycles with Some c -> Some c | None -> None
      in
      let misaligned =
        env.drop_misaligned && large.counters.misaligned_mem_refs > 0
      in
      let accepted_large = cycles_of large in
      let accepted_small = Option.map cycles_of small in
      let all_clean_present =
        accepted_large <> None
        && (match accepted_small with Some None -> false | _ -> true)
      in
      let reject =
        if misaligned then Some Misaligned_access
        else if not all_clean_present then
          if List.exists (fun t -> t.clean) large.timings then Some Unstable
          else Some Never_clean
        else None
      in
      let cl = Option.value accepted_large ~default:large.best_cycles in
      let cs =
        match small with
        | None -> 0
        | Some p -> Option.value p.accepted_cycles ~default:p.best_cycles
      in
      let throughput = Unroll.throughput factors ~cycles_large:cl ~cycles_small:cs in
      Ok
        {
          throughput;
          accepted = reject = None;
          reject;
          large;
          small;
          factors;
        })

let reject_to_string = function
  | Misaligned_access -> "misaligned"
  | Never_clean -> "never_clean"
  | Unstable -> "unstable"

(* Count the outcome and, when tracing, emit the filter decision with
   its reason as an instant event. *)
let record_outcome (result : (profile, failure) result) =
  Telemetry.Metrics.incr m_profiles;
  (match result with
  | Ok p when p.accepted -> Telemetry.Metrics.incr m_accepted
  | Ok p ->
    (match p.reject with
    | Some Misaligned_access -> Telemetry.Metrics.incr m_rejected_misaligned
    | Some Never_clean -> Telemetry.Metrics.incr m_rejected_never_clean
    | Some Unstable -> Telemetry.Metrics.incr m_rejected_unstable
    | None -> ());
    Telemetry.Trace.instant "profiler.filter" ~attrs:(fun () ->
        [
          ( "reason",
            Telemetry.Trace.Str
              (match p.reject with
              | Some r -> reject_to_string r
              | None -> "none") );
        ])
  | Error f ->
    Telemetry.Metrics.incr m_mapping_failed;
    Telemetry.Trace.instant "profiler.filter" ~attrs:(fun () ->
        [ ("reason", Telemetry.Trace.Str (failure_to_string f)) ]));
  result

let profile (env : Environment.t) (descriptor : Uarch.Descriptor.t)
    (block : Inst.t list) : (profile, failure) result =
  let t0 = Telemetry.Trace.now_ns () in
  let result =
    if not (Telemetry.Trace.enabled ()) then
      profile_untraced env descriptor block
    else begin
      let result = ref None in
      Telemetry.Trace.span "profiler.profile"
        ~attrs:(fun () ->
          let open Telemetry.Trace in
          let base =
            [
              ("uarch", Str descriptor.short);
              ("block_insts", Int (List.length block));
            ]
          in
          match !result with
          | Some (Ok (p : profile)) ->
            base
            @ [
                ("accepted", Bool p.accepted);
                ("throughput", Float p.throughput);
                ("unroll_large", Int p.factors.large);
                ("unroll_small", Int p.factors.small);
              ]
          | Some (Error f) -> base @ [ ("failure", Str (failure_to_string f)) ]
          | None -> base)
        (fun () -> result := Some (profile_untraced env descriptor block));
      Option.get !result
    end
  in
  Telemetry.Metrics.observe h_profile_seconds
    (Int64.to_float (Int64.sub (Telemetry.Trace.now_ns ()) t0) /. 1e9);
  record_outcome result

(* Throughput if accepted, in the style the dataset stores. *)
let accepted_throughput = function
  | Ok p when p.accepted -> Some p.throughput
  | _ -> None
