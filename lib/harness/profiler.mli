(** The BHive basic-block profiler: measures the steady-state inverse
    throughput of an arbitrary basic block under a configurable
    measurement environment, applying the paper's clean-measurement
    protocol (16 timings, at least 8 clean and identical, misalignment
    filter). *)

(** Semantic version of the measurement algorithm itself. Bumped when
    a change to the protocol can alter results for an unchanged
    (env, uarch, block) triple; the persistent measurement store folds
    it into the generation fingerprint so stored results from an older
    protocol are invalidated rather than served. *)
val algorithm_version : string

type reject_reason =
  | Misaligned_access  (** MISALIGNED_MEM_REFERENCE counter non-zero *)
  | Never_clean
      (** no timing met the clean criteria (persistent cache misses) *)
  | Unstable  (** fewer than [min_clean] identical clean timings *)

type failure =
  | Mapping_failed of Mapping.failure
  | Rejected of reject_reason

(** Render a failure; [?fingerprint] (the engine's hex job fingerprint)
    is appended as [ [job <hex>] ] so a failure in a log can be matched
    back to its quarantine-manifest / trace entry. *)
val failure_to_string : ?fingerprint:string -> failure -> string

(** One timed execution of the unrolled block, with its counters. *)
type timing = {
  cycles : int;
  counters : Pipeline.Counters.t;
  clean : bool;  (** no cache misses of any kind, no context switches *)
}

(** Result of measuring one unrolled instance of the block. *)
type point = {
  unroll : int;
  accepted_cycles : int option;  (** agreed-upon clean cycle count *)
  best_cycles : int;  (** minimum observed, reported even when unclean *)
  timings : timing list;
  faults : int;  (** pages the monitor mapped *)
  distinct_frames : int;  (** 1 under single-physical-page mapping *)
  counters : Pipeline.Counters.t;  (** from the first timed run *)
}

type profile = {
  throughput : float;  (** cycles per block iteration at steady state *)
  accepted : bool;  (** all clean-measurement criteria satisfied *)
  reject : reject_reason option;
  large : point;
  small : point option;  (** absent under the naive unroll strategy *)
  factors : Unroll.factors;
}

(** [profile env uarch block] runs the full measurement pipeline:
    page-mapping monitor, cache warm-up, repeated timed executions with
    simulated OS noise, filtering, and throughput derivation. The result
    is deterministic in (env, uarch, block). *)
val profile :
  Environment.t ->
  Uarch.Descriptor.t ->
  X86.Inst.t list ->
  (profile, failure) result

(** The measured throughput when the block was accepted, [None]
    otherwise. Polymorphic in the error so it applies to both raw
    profiler results and engine outcomes. *)
val accepted_throughput : (profile, 'e) result -> float option
