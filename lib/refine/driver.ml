(** The refinement search driver: coordinate descent over the suspect
    list, every candidate evaluated through the engine + store.

    Determinism contract (the same one [lib/faultsim] honours): the
    accepted-patch sequence, every per-eval error, and the rendered
    report are byte-identical for any worker count and across a
    kill+resume. Everything the search branches on is either a
    deterministic simulation output or replayed verbatim from the
    journal:

    - the reference and initial-candidate runs are re-executed on
      resume (cheap — the store is warm) to rebuild the localizer's
      per-block state, which the journal does not carry;
    - every candidate evaluation is journaled as a [refine_step] record
      carrying the proposal, the error as exact float bits (JSON's
      decimal printing is lossy), the accept decision and the eval's
      store counters; on resume the pending records are verified
      against the regenerated proposal sequence and their outcomes are
      reused without evaluation;
    - store hit/miss counters of *live* evals depend on how much of the
      search ran in this process, so they go to the journal and the
      summary (volatile for identity) but never into the rendered
      report.

    Incrementality: each evaluation builds a fresh engine (the memo is
    keyed by job fingerprint only, which candidates share) in
    block-generation mode over one shared store handle; a candidate
    re-simulates exactly the blocks whose table slice its overlay
    touches, everything else is a warm store hit. *)

type limits = { target_error : float; max_evals : int }

type eval_stats = {
  ev_executed : int;
  ev_store_hits : int;
  ev_store_misses : int;
  ev_store_invalidated : int;
  ev_store_writes : int;
}

let eval_hit_rate s =
  let denom = s.ev_store_hits + s.ev_store_misses + s.ev_store_invalidated in
  if denom = 0 then 0.0
  else float_of_int s.ev_store_hits /. float_of_int denom

type step = {
  st_eval : int;  (** 1-based; eval 1 is the unpatched baseline *)
  st_target : Uarch.Overlay.target option;  (** [None] for the baseline *)
  st_value : int;
  st_error : float;
  st_accepted : bool;
  st_overlay : Uarch.Overlay.t;  (** accepted overlay *after* the step *)
  st_stats : eval_stats;
  st_replayed : bool;
}

type result = {
  r_uarch : string;
  r_blocks : int;  (** reference-measured blocks the error averages over *)
  r_initial_error : float;
  r_final_error : float;
  r_evals : int;
  r_accepted : int;
  r_converged : bool;
  r_overlay : Uarch.Overlay.t;
  r_steps : step list;  (** in eval order *)
  r_suspects : (Uarch.Overlay.target * float) list;
  r_precision : float option;  (** vs the truth overlay, when known *)
  r_recovered : bool;  (** final candidate profile = reference profile *)
  r_hit_rate : float;  (** store hit rate across evals 2.. *)
}

let m_evals = Telemetry.Metrics.counter "refine.evals"
let m_accepted = Telemetry.Metrics.counter "refine.accepted"
let m_replayed = Telemetry.Metrics.counter "refine.steps_replayed"

(* --- journal records --------------------------------------------------- *)

let error_bits e = Printf.sprintf "%016Lx" (Int64.bits_of_float e)

let bits_error s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some b -> Int64.float_of_bits b
  | None -> failwith "refine: bad error_bits in journal"

let step_json (s : step) =
  let open Telemetry in
  Json.Object
    [
      ("type", Json.String "refine_step");
      ("eval", Json.Number (float_of_int s.st_eval));
      ( "target",
        match s.st_target with
        | None -> Json.Null
        | Some t -> Json.String (Uarch.Overlay.name t) );
      ("value", Json.Number (float_of_int s.st_value));
      ("error_bits", Json.String (error_bits s.st_error));
      ("error", Json.Number s.st_error);
      ("accepted", Json.Bool s.st_accepted);
      ("overlay", Json.String (Uarch.Overlay.to_string s.st_overlay));
      ("overlay_digest", Json.String (Engine.overlay_digest s.st_overlay));
      ("executed", Json.Number (float_of_int s.st_stats.ev_executed));
      ("store_hits", Json.Number (float_of_int s.st_stats.ev_store_hits));
      ("store_misses", Json.Number (float_of_int s.st_stats.ev_store_misses));
      ( "store_invalidated",
        Json.Number (float_of_int s.st_stats.ev_store_invalidated) );
      ("store_writes", Json.Number (float_of_int s.st_stats.ev_store_writes));
    ]

(* Parse the fields replay verifies or reuses; unknown fields are
   ignored so the record can grow. *)
type replayed = {
  rp_eval : int;
  rp_target : Uarch.Overlay.target option;
  rp_value : int;
  rp_error : float;
  rp_accepted : bool;
  rp_stats : eval_stats;
}

let parse_step j =
  let open Telemetry in
  let num name =
    match Option.bind (Json.member name j) Json.number with
    | Some v -> int_of_float v
    | None -> failwith ("refine: journal step missing " ^ name)
  in
  let rp_target =
    match Json.member "target" j with
    | Some (Json.String s) -> (
      match Uarch.Overlay.of_name s with
      | Some t -> Some t
      | None -> failwith ("refine: unknown journal target " ^ s))
    | _ -> None
  in
  let rp_error =
    match Option.bind (Json.member "error_bits" j) Json.string_value with
    | Some s -> bits_error s
    | None -> failwith "refine: journal step missing error_bits"
  in
  let rp_accepted =
    match Json.member "accepted" j with
    | Some (Json.Bool b) -> b
    | _ -> failwith "refine: journal step missing accepted"
  in
  {
    rp_eval = num "eval";
    rp_target;
    rp_value = num "value";
    rp_error;
    rp_accepted;
    rp_stats =
      {
        ev_executed = num "executed";
        ev_store_hits = num "store_hits";
        ev_store_misses = num "store_misses";
        ev_store_invalidated = num "store_invalidated";
        ev_store_writes = num "store_writes";
      };
  }

(* --- evaluation through the engine ------------------------------------- *)

(* Raised when the eval budget is exhausted or the target error is
   reached; unwinds the proposal loops. *)
exception Converged
exception Budget

type outcome_row = { o_tp : float option; o_counters : Pipeline.Counters.t option }

let outcome_row (o : Engine.outcome) =
  match o with
  | Ok p -> { o_tp = Some p.Harness.Profiler.throughput;
              o_counters = Some p.Harness.Profiler.large.counters }
  | Error _ -> { o_tp = None; o_counters = None }

(* Run the whole corpus under [desc] through a fresh block-generation
   engine sharing [store]; returns per-block rows + the engine's stats
   (which, engine being fresh, are exactly this eval's). *)
let run_corpus ?jobs ?store ?progress ~env ~(desc : Uarch.Descriptor.t) corpus =
  let eng = Engine.create ?jobs ?store ?progress ~block_generation:true () in
  let jobs_list =
    List.map (fun block -> { Engine.env; uarch = desc; block }) corpus
  in
  let batch = Engine.run_batch eng jobs_list in
  let s = Engine.stats eng in
  ( Array.map outcome_row batch.Engine.outcomes,
    {
      ev_executed = s.Engine.executed;
      ev_store_hits = s.Engine.store_hits;
      ev_store_misses = s.Engine.store_misses;
      ev_store_invalidated = s.Engine.store_invalidated;
      ev_store_writes = s.Engine.store_writes;
    } )

(* Mean relative throughput error over the reference-measured blocks; a
   candidate failure on a measured block costs a full 1.0. Summation
   order is block order: deterministic. *)
let error_against ~(ref_rows : outcome_row array) (rows : outcome_row array) =
  let sum = ref 0.0 and n = ref 0 in
  Array.iteri
    (fun b r ->
      match r.o_tp with
      | None -> ()
      | Some tr ->
        incr n;
        let e =
          match rows.(b).o_tp with
          | None -> 1.0
          | Some tc ->
            if tr > 0.0 then Float.abs (tc -. tr) /. tr
            else Float.abs (tc -. tr)
        in
        sum := !sum +. e)
    ref_rows;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let block_deltas ~(ref_rows : outcome_row array) (rows : outcome_row array)
    ~n_ports =
  Array.mapi
    (fun b r ->
      match r.o_tp with
      | None -> { Localize.bd_error = 0.0; bd_port_delta = Array.make n_ports 0.0 }
      | Some tr ->
        let bd_error =
          match rows.(b).o_tp with
          | None -> 1.0
          | Some tc ->
            if tr > 0.0 then Float.abs (tc -. tr) /. tr
            else Float.abs (tc -. tr)
        in
        let bd_port_delta = Array.make n_ports 0.0 in
        (match (r.o_counters, rows.(b).o_counters) with
        | Some cr, Some cc ->
          let pr = cr.Pipeline.Counters.port_cycles
          and pc = cc.Pipeline.Counters.port_cycles in
          for q = 0 to n_ports - 1 do
            let vr = if q < Array.length pr then pr.(q) else 0
            and vc = if q < Array.length pc then pc.(q) else 0 in
            bd_port_delta.(q) <- Float.abs (float_of_int (vc - vr))
          done
        | _ -> ());
        { Localize.bd_error; bd_port_delta })
    ref_rows

(* --- the search -------------------------------------------------------- *)

let run ?jobs ?store ?progress ?(record_step = fun _ -> ())
    ?(prior_steps = []) ?truth ~(env : Harness.Environment.t)
    ~(reference : Uarch.Descriptor.t) ~(start : Uarch.Profile.t)
    ~(corpus : X86.Inst.t list list) (limits : limits) : result =
  if limits.max_evals < 1 then invalid_arg "Refine.Driver.run: max_evals < 1";
  (* Disjoint store key spaces: the reference truth and the candidates
     never supersede each other's records, or anyone else's. *)
  let ref_desc = { reference with short = reference.short ^ "~ref" } in
  let cand_desc profile =
    { reference with short = reference.short ^ "~cand"; profile }
  in
  let measure name desc =
    let rows = ref ([||], {
      ev_executed = 0; ev_store_hits = 0; ev_store_misses = 0;
      ev_store_invalidated = 0; ev_store_writes = 0 }) in
    Telemetry.Trace.span "refine.eval"
      ~attrs:(fun () -> [ ("what", Telemetry.Trace.Str name) ])
      (fun () -> rows := run_corpus ?jobs ?store ?progress ~env ~desc corpus);
    !rows
  in
  let ref_rows, _ = measure "reference" ref_desc in
  let n_measured =
    Array.fold_left (fun n r -> if r.o_tp <> None then n + 1 else n) 0 ref_rows
  in
  (* replay queue *)
  let pending = ref (List.map parse_step prior_steps) in
  let evals = ref 0 in
  let steps = ref [] in
  let best = ref infinity in
  let overlay = ref Uarch.Overlay.empty in
  let baseline_rows = ref [||] in
  (* One candidate evaluation: replayed from the journal when the next
     pending record matches the proposal, executed otherwise. The
     baseline (eval 1) always executes — the localizer needs its
     per-block rows — but a replayed baseline reports the journaled
     stats so the recorded history stays the single source of truth. *)
  let eval_candidate (target : Uarch.Overlay.target option) value =
    if !evals >= limits.max_evals then raise Budget;
    incr evals;
    Telemetry.Metrics.incr m_evals;
    let ov' =
      match target with
      | None -> !overlay
      | Some t -> Uarch.Overlay.update !overlay t value
    in
    let replay =
      match !pending with
      | [] -> None
      | rp :: rest ->
        if rp.rp_eval <> !evals || rp.rp_target <> target || rp.rp_value <> value
        then
          failwith
            (Printf.sprintf
               "refine: journal step %d does not match regenerated proposal \
                (journaled %s=%d, proposed %s=%d) — wrong journal for this \
                search"
               !evals
               (match rp.rp_target with
               | None -> "baseline"
               | Some t -> Uarch.Overlay.name t)
               rp.rp_value
               (match target with
               | None -> "baseline"
               | Some t -> Uarch.Overlay.name t)
               value);
        pending := rest;
        Some rp
    in
    let error, accepted, stats, replayed =
      match replay with
      | Some rp ->
        Telemetry.Metrics.incr m_replayed;
        if target = None then begin
          let rows, _ = measure "baseline(resume)" (cand_desc start) in
          baseline_rows := rows
        end;
        (rp.rp_error, rp.rp_accepted, rp.rp_stats, true)
      | None ->
        let profile = Uarch.Overlay.apply start ov' in
        let rows, stats = measure "candidate" (cand_desc profile) in
        if target = None then baseline_rows := rows;
        let error = error_against ~ref_rows rows in
        (* strict decrease; ties keep the incumbent *)
        let accepted = target = None || error < !best in
        (error, accepted, stats, false)
    in
    let st =
      {
        st_eval = !evals;
        st_target = target;
        st_value = value;
        st_error = error;
        st_accepted = accepted;
        st_overlay = (if accepted then ov' else !overlay);
        st_stats = stats;
        st_replayed = replayed;
      }
    in
    if not replayed then record_step (step_json st);
    steps := st :: !steps;
    if accepted then begin
      if target <> None then Telemetry.Metrics.incr m_accepted;
      overlay := ov';
      best := error;
      if error <= limits.target_error then raise Converged
    end;
    (error, accepted)
  in
  let current_value t = Uarch.Overlay.get (Uarch.Overlay.apply start !overlay) t in
  let suspects = ref [] in
  (try
     (* eval 1: the unpatched candidate — the initial error *)
     ignore (eval_candidate None 0);
     let deltas =
       block_deltas ~ref_rows !baseline_rows ~n_ports:reference.n_ports
     in
     suspects :=
       Localize.rank ~cand:(cand_desc start) ~corpus ~deltas;
     (* coordinate descent, first-improvement, passes until a full pass
        accepts nothing *)
     let improved = ref true in
     while !improved do
       improved := false;
       List.iter
         (fun (t, _score) ->
           match t with
           | Uarch.Overlay.Lat _ ->
             (* try +1; walk further in whichever direction improves *)
             let walk dir =
               let continue_ = ref true in
               while !continue_ do
                 let v = current_value t + dir in
                 if v < 1 then continue_ := false
                 else begin
                   let _, acc = eval_candidate (Some t) v in
                   if acc then improved := true else continue_ := false
                 end
               done
             in
             let v0 = current_value t in
             let _, up = eval_candidate (Some t) (v0 + 1) in
             if up then begin
               improved := true;
               walk 1
             end
             else if v0 > 1 then begin
               let _, down = eval_candidate (Some t) (v0 - 1) in
               if down then begin
                 improved := true;
                 walk (-1)
               end
             end
           | Uarch.Overlay.Ports _ ->
             (* greedy bit flips over the machine's ports *)
             for q = 0 to reference.n_ports - 1 do
               let v = current_value t lxor (1 lsl q) in
               if v <> 0 then begin
                 let _, acc = eval_candidate (Some t) v in
                 if acc then improved := true
               end
             done
           | Uarch.Overlay.Uops _ ->
             let v0 = current_value t in
             let v = if v0 = 1 then 2 else 1 in
             let _, acc = eval_candidate (Some t) v in
             if acc then improved := true)
         !suspects
     done
   with
  | Converged -> ()
  | Budget -> ());
  if !pending <> [] then
    failwith
      (Printf.sprintf
         "refine: %d journaled steps left unreplayed — journal does not \
          belong to this search"
         (List.length !pending));
  let steps = List.rev !steps in
  let initial_error =
    match steps with s :: _ -> s.st_error | [] -> infinity
  in
  let final_error = !best in
  let cand_evals = List.filter (fun s -> s.st_eval > 1) steps in
  let agg f = List.fold_left (fun a s -> a + f s.st_stats) 0 cand_evals in
  let hits = agg (fun s -> s.ev_store_hits) in
  let denom =
    hits
    + agg (fun s -> s.ev_store_misses)
    + agg (fun s -> s.ev_store_invalidated)
  in
  {
    r_uarch = reference.short;
    r_blocks = n_measured;
    r_initial_error = initial_error;
    r_final_error = final_error;
    r_evals = !evals;
    r_accepted =
      List.length (List.filter (fun s -> s.st_accepted && s.st_eval > 1) steps);
    r_converged = final_error <= limits.target_error;
    r_overlay = !overlay;
    r_steps = steps;
    r_suspects = !suspects;
    r_precision =
      Option.map
        (fun tr ->
          Localize.precision
            ~suspects:(List.map fst !suspects)
            ~truth:(List.map (fun e -> e.Uarch.Overlay.target) tr))
        truth;
    r_recovered = Uarch.Overlay.apply start !overlay = reference.profile;
    r_hit_rate =
      (if denom = 0 then 0.0 else float_of_int hits /. float_of_int denom);
  }

(* --- rendering --------------------------------------------------------- *)

(* The deterministic report: everything here must be byte-identical for
   any worker count and across kill+resume, because section-output
   digests pin it. Store counters are deliberately absent (a resumed
   run re-warms differently); they live in the summary object. *)
let report (r : result) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b "refine %s: %d measured blocks, %d suspects\n" r.r_uarch
    r.r_blocks
    (List.length r.r_suspects);
  List.iteri
    (fun i (t, s) ->
      if i < 10 then
        Printf.bprintf b "  suspect %2d: %-18s score %.4f\n" (i + 1)
          (Uarch.Overlay.name t) s)
    r.r_suspects;
  List.iter
    (fun s ->
      Printf.bprintf b "eval %3d  %-24s error %.6f  %s\n" s.st_eval
        (match s.st_target with
        | None -> "baseline"
        | Some t ->
          Printf.sprintf "%s=%s" (Uarch.Overlay.name t)
            (match t with
            | Uarch.Overlay.Ports _ -> Uarch.Port.name s.st_value
            | _ -> string_of_int s.st_value))
        s.st_error
        (if s.st_eval = 1 then "measured"
         else if s.st_accepted then "accepted"
         else "rejected"))
    r.r_steps;
  Printf.bprintf b "accepted patch: %s\n" (Uarch.Overlay.to_string r.r_overlay);
  Printf.bprintf b "error %.6f -> %.6f in %d evals (%d accepted)%s\n"
    r.r_initial_error r.r_final_error r.r_evals r.r_accepted
    (match r.r_precision with
    | Some p -> Printf.sprintf ", localization precision %.2f" p
    | None -> "");
  Printf.bprintf b "%s%s\n"
    (if r.r_converged then "converged" else "NOT converged")
    (if r.r_recovered then ", reference profile recovered" else "");
  Buffer.contents b

let summary_json ?truth (r : result) =
  let open Telemetry in
  Json.Object
    ([
       ("uarch", Json.String r.r_uarch);
       ("blocks", Json.Number (float_of_int r.r_blocks));
       ("initial_error", Json.Number r.r_initial_error);
       ("final_error", Json.Number r.r_final_error);
       ("evals", Json.Number (float_of_int r.r_evals));
       ("accepted", Json.Number (float_of_int r.r_accepted));
       ("converged", Json.Bool r.r_converged);
       ("overlay", Json.String (Uarch.Overlay.to_string r.r_overlay));
       ("overlay_digest", Json.String (Engine.overlay_digest r.r_overlay));
       ("store_hit_rate", Json.Number r.r_hit_rate);
       ( "suspects",
         Json.List
           (List.filteri (fun i _ -> i < 10) r.r_suspects
           |> List.map (fun (t, s) ->
                  Json.Object
                    [
                      ("target", Json.String (Uarch.Overlay.name t));
                      ("score", Json.Number s);
                    ])) );
       ( "per_eval",
         Json.List
           (List.map
              (fun s ->
                Json.Object
                  [
                    ("eval", Json.Number (float_of_int s.st_eval));
                    ("executed", Json.Number (float_of_int s.st_stats.ev_executed));
                    ("hit_rate", Json.Number (eval_hit_rate s.st_stats));
                    ("accepted", Json.Bool s.st_accepted);
                  ])
              r.r_steps) );
     ]
    @ [ ("recovered", Json.Bool r.r_recovered) ]
    @ (match r.r_precision with
      | Some p -> [ ("precision", Json.Number p) ]
      | None -> [])
    @
    match truth with
    | Some t -> [ ("truth", Json.String (Uarch.Overlay.to_string t)) ]
    | None -> [])
