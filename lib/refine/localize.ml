(** Discrepancy localization: from per-block error and per-port counter
    deltas to a ranked list of suspect table entries.

    CounterPoint's observation, transplanted: when a candidate
    descriptor disagrees with the reference measurement, the *shape* of
    the disagreement — which blocks err, and which ports' busy-cycle
    counters moved — points at the table entries responsible. For each
    overlay target we know (a) which opcode classes its entry feeds
    (flat-row probe diff for invariant classes, the {!Uarch.Overlay}
    dependency map for variant ones) and (b) which execution ports it
    steers uops to. A target's score accumulates, over every measured
    block, the block's relative error weighted by how many of its
    instructions the target can influence and by how much of the
    block's port-counter delta lands on the target's ports. The ranking
    is a heuristic — the search driver will happily reject a
    mis-ranked suspect — but a good ranking is what keeps the eval
    budget small. *)

(* Per-target influence: affected opcode classes + whether the entry
   sits in the load/store section every memory block reads. *)
type effect_ = { eff_classes : bool array; eff_mem : bool }

let probe_value (d : Uarch.Descriptor.t) (t : Uarch.Overlay.target) =
  let cur = Uarch.Overlay.get d.profile t in
  match t with
  | Uarch.Overlay.Lat _ -> cur + 1
  | Uarch.Overlay.Ports _ ->
    let mask = (1 lsl d.n_ports) - 1 in
    if cur = mask then 1 else mask
  | Uarch.Overlay.Uops _ -> if cur = 1 then 2 else 1

(* Which classes a target's entry can influence, computed against the
   candidate profile by diffing flat table rows under a probe edit.
   Variant classes have no precomputed row; they use the shared
   dependency map (the same one block generations hash). *)
let effect_of (d : Uarch.Descriptor.t) (t : Uarch.Overlay.target) : effect_ =
  let p = d.profile in
  let f = Uarch.Descriptor.flat d in
  let p' = Uarch.Overlay.set p t (probe_value d t) in
  let f' = Uarch.Flat.of_profile p' ~n_ports:d.n_ports in
  let classes = Array.make Uarch.Flat.n_classes false in
  for k = 0 to Uarch.Flat.n_classes - 1 do
    if f.Uarch.Flat.variant.(k) then
      classes.(k) <-
        List.mem t (Uarch.Overlay.variant_reads Uarch.Flat.classes.(k))
    else if
      Uarch.Flat.encode_class f k <> Uarch.Flat.encode_class f' k
    then classes.(k) <- true
  done;
  let eff_mem =
    f.Uarch.Flat.load_code <> f'.Uarch.Flat.load_code
    || f.Uarch.Flat.store_addr_code <> f'.Uarch.Flat.store_addr_code
    || f.Uarch.Flat.store_data_code <> f'.Uarch.Flat.store_data_code
    || f.Uarch.Flat.load_bytes <> f'.Uarch.Flat.load_bytes
    || f.Uarch.Flat.store_bytes <> f'.Uarch.Flat.store_bytes
  in
  { eff_classes = classes; eff_mem }

(** One measured block's disagreement between reference and candidate. *)
type block_delta = {
  bd_error : float;  (** relative throughput error, 1.0 if cand failed *)
  bd_port_delta : float array;  (** |Δ busy cycles| per execution port *)
}

let targets (d : Uarch.Descriptor.t) =
  List.filter (Perturb.applicable d) Uarch.Overlay.all

(** Ranked suspects: positive-score targets, best first; ties broken by
    target code so the order is total and deterministic. *)
let rank ~(cand : Uarch.Descriptor.t) ~(corpus : X86.Inst.t list list)
    ~(deltas : block_delta array) : (Uarch.Overlay.target * float) list =
  let blocks = Array.of_list corpus in
  let n_blocks = Array.length blocks in
  if Array.length deltas <> n_blocks then
    invalid_arg "Localize.rank: corpus / deltas length mismatch";
  (* per block: class occurrence counts + memory-instruction count *)
  let occ = Array.make n_blocks [||] in
  let mem_insts = Array.make n_blocks 0 in
  Array.iteri
    (fun b insts ->
      let counts = Array.make (Uarch.Flat.n_classes + 1) 0 in
      List.iter
        (fun (i : X86.Inst.t) ->
          let k = Uarch.Flat.class_of i.opcode in
          let k = if k < 0 then Uarch.Flat.n_classes else k in
          counts.(k) <- counts.(k) + 1;
          if X86.Inst.mem_accesses i <> [] then
            mem_insts.(b) <- mem_insts.(b) + 1)
        insts;
      occ.(b) <- counts)
    blocks;
  let scored =
    List.map
      (fun t ->
        let eff = effect_of cand t in
        let fp = Uarch.Overlay.port_footprint cand.profile t in
        (* Correlation between the error profile and the target's touch
           profile, not raw error mass: a broad entry (plain ALU) feeds
           every block including the many that agree perfectly, so
           normalising by the touch vector's norm demotes it below a
           narrow entry whose touched blocks are exactly the erring
           ones. *)
        let dot = ref 0.0 and norm2 = ref 0.0 in
        for b = 0 to n_blocks - 1 do
          let d = deltas.(b) in
          let touched = ref 0 in
          Array.iteri
            (fun k c -> if k < Uarch.Flat.n_classes && eff.eff_classes.(k) then touched := !touched + c)
            occ.(b);
          (* unmodelled opcodes can depend on anything *)
          touched := !touched + occ.(b).(Uarch.Flat.n_classes);
          if eff.eff_mem then touched := !touched + mem_insts.(b);
          if !touched > 0 then begin
            (* port alignment: share of the block's busy-cycle delta
               landing on this entry's ports, in [1, 2) *)
            let on_fp = ref 0.0 and total = ref 0.0 in
            Array.iteri
              (fun q v ->
                total := !total +. v;
                if fp land (1 lsl q) <> 0 then on_fp := !on_fp +. v)
              d.bd_port_delta;
            let align = 1.0 +. (!on_fp /. (1.0 +. !total)) in
            let feat = float_of_int !touched *. align in
            dot := !dot +. (d.bd_error *. feat);
            norm2 := !norm2 +. (feat *. feat)
          end
        done;
        let score = if !norm2 > 0.0 then !dot /. sqrt !norm2 else 0.0 in
        (t, score))
      (targets cand)
  in
  scored
  |> List.filter (fun (_, s) -> s > 0.0)
  |> List.sort (fun (ta, sa) (tb, sb) ->
         match compare sb sa with
         | 0 -> compare (Uarch.Overlay.code ta) (Uarch.Overlay.code tb)
         | c -> c)

(** Localization precision: of the |truth| top-ranked suspects, the
    fraction that are genuinely perturbed entries. 1.0 when there is
    nothing to find. *)
let precision ~(suspects : Uarch.Overlay.target list)
    ~(truth : Uarch.Overlay.target list) =
  let k = List.length truth in
  if k = 0 then 1.0
  else begin
    let top = List.filteri (fun i _ -> i < k) suspects in
    let hits = List.length (List.filter (fun t -> List.mem t truth) top) in
    float_of_int hits /. float_of_int k
  end
