(** Deterministic descriptor breakage: the refinement loop's starting
    point.

    [--perturb seed=S,edits=N] picks [N] distinct overlay targets and
    perturbed values as a pure function of (seed, target name), through
    the shared {!Models.Table_noise} source (the same noise the static
    models use for their table errors). The result is the *truth*
    overlay: applying it to a reference descriptor produces the broken
    candidate, and the localizer's precision is scored against its
    target set. *)

let amplitude = 0.6

(* The perturbed value for one target. Guaranteed to differ from the
   current entry and to stay valid: latencies >= 1, port sets
   non-empty within the machine's ports, uop counts toggled 1<->2. *)
let value ~seed (d : Uarch.Descriptor.t) (t : Uarch.Overlay.target) =
  let n = Uarch.Overlay.name t in
  let cur = Uarch.Overlay.get d.profile t in
  match t with
  | Uarch.Overlay.Lat _ ->
    let v =
      Models.Table_noise.latency_named ~seed ~fraction:1.0 ~amplitude n cur
    in
    if v = cur then cur + 1 else v
  | Uarch.Overlay.Ports _ ->
    let v = Models.Table_noise.drop_port_named ~seed ~fraction:1.0 n cur in
    if v <> cur then v
    else begin
      (* single-candidate-port entry: add the lowest absent port *)
      let rec add q =
        if q >= d.n_ports then cur lor 1
        else if cur land (1 lsl q) = 0 then cur lor (1 lsl q)
        else add (q + 1)
      in
      add 0
    end
  | Uarch.Overlay.Uops _ -> if cur = 1 then 2 else 1

(* Applicability: perturbing an entry the descriptor never reads (Ivy
   Bridge has no FMA unit) would be unrecoverable noise. *)
let applicable (d : Uarch.Descriptor.t) = function
  | Uarch.Overlay.Lat Uarch.Overlay.L_fp_fma -> d.profile.fp_fma <> None
  | _ -> true

(** The truth overlay for (seed, edits): targets ranked by their
    per-name hash draw, the first [edits] applicable ones perturbed. *)
let overlay ~seed ~edits (d : Uarch.Descriptor.t) : Uarch.Overlay.t =
  let ranked =
    Uarch.Overlay.all
    |> List.filter (applicable d)
    |> List.map (fun t ->
           (Models.Table_noise.hash_name ~seed (Uarch.Overlay.name t), t))
    |> List.sort (fun (a, ta) (b, tb) ->
           match Int64.unsigned_compare a b with
           | 0 -> compare (Uarch.Overlay.code ta) (Uarch.Overlay.code tb)
           | c -> c)
    |> List.map snd
  in
  let chosen = List.filteri (fun i _ -> i < edits) ranked in
  Uarch.Overlay.canonical
    (List.map
       (fun t -> { Uarch.Overlay.target = t; value = value ~seed d t })
       chosen)

(** The broken descriptor: reference with the truth overlay applied.
    Identity fields are untouched — callers rename [short] themselves
    when they need disjoint store keys. *)
let break ~seed ~edits (d : Uarch.Descriptor.t) : Uarch.Descriptor.t * Uarch.Overlay.t =
  let truth = overlay ~seed ~edits d in
  ({ d with profile = Uarch.Overlay.apply d.profile truth }, truth)
