(* The declarative experiment manifest.

   A manifest is the single versioned description of an experiment run:
   what corpus to generate, which microarchitectures and models to
   evaluate, which measurement filters apply, which sections to
   execute, and where outputs go. Every entry point of the repository
   (bhive_run, the wrapper CLIs, bench/main.exe) synthesizes or loads
   one of these and hands it to [Runner].

   Two content identities, both SHA-256 over a canonical fixed-width
   byte encoding (the [Store.Codec] / [Stable_key] discipline — never
   over JSON text, so formatting and key order cannot change an id):

   - the {e experiment id} covers what is measured: corpus, uarches,
     models, filters and the section list. Two runs with equal
     experiment ids executed the same experiment and their summaries
     are comparable.
   - the {e manifest id} additionally covers how it is executed and
     where outputs go: name, jobs, faults, retry policy, store and
     output paths. It keys the run journal: a journal belongs to
     exactly one manifest id.

   Any change to the encoders below is a format change: bump
   [version] so old ids invalidate instead of colliding. *)

module Codec = Store.Codec
module Json = Telemetry.Json

let version = "bhive-manifest-v1"

(* The integer stamped into the JSON document ("manifest_version"). *)
let json_version = 1

type corpus = { scale : int; seed : int64 option }

(* Measurement-environment overrides, applied over
   [Harness.Environment.default]. All defaults mean "the paper's
   methodology as-is". *)
type filters = {
  naive_unroll : int option;  (** naive unrolling instead of two-point *)
  min_clean : int option;  (** clean-timing acceptance threshold *)
  keep_underflow : bool;  (** do not set FTZ/DAZ *)
  keep_misaligned : bool;  (** keep cache-line-crossing accesses *)
  context_switch_rate : float option;  (** injected timing noise *)
}

type policy = { max_retries : int option; quorum : int option }

type output = {
  summary : string option;  (** bench_summary.json path *)
  failures : string;  (** quarantine manifest (JSONL) *)
  journal : string option;  (** run journal; [None] disables resume *)
  export_prefix : string option;  (** dataset CSV export prefix *)
}

type kind =
  | Corpus_load
  | Corpus_dump of {
      variant : string;  (** "suite", "extended" or "google" *)
      app : string option;
      limit : int option;
      freq : bool;
    }
  | Applications
  | Ablation_suite
  | Ablation_block of { block : string }  (** a named paper block *)
  | Classifier
  | Categories
  | Exemplars
  | Composition of { title : string }
  | Dataset of { uarch : string }
  | Validate
  | Errors
  | Case_study
  | Google
  | Instruction_table of { uarch : string }
  | Port_mapping of { uarch : string }
  | Ablation_unroll
  | Ablation_filters
  | Ablation_noise
  | Speed
  | Profile of {
      asm : string;  (** assembly text, embedded in the manifest *)
      uarch : string;
      with_models : bool;
      schedule : bool;
    }
  | Refine of {
      uarch : string;
      seed : int64;  (** perturbation seed ([Refine.Perturb]) *)
      edits : int;  (** perturbed table entries to recover *)
      target_error : float;  (** stop when mean error drops below this *)
      max_evals : int;  (** candidate-evaluation budget *)
    }

type section = { label : string option; kind : kind }

type t = {
  name : string;
  corpus : corpus;
  uarches : string list;  (** short names; [] means all *)
  models : string list;  (** model keys; [] means all four *)
  filters : filters;
  policy : policy;
  faults : Faultsim.config option;
  jobs : int option;
  store : string option;
  output : output;
  sections : section list;
}

let default_filters =
  {
    naive_unroll = None;
    min_clean = None;
    keep_underflow = false;
    keep_misaligned = false;
    context_switch_rate = None;
  }

let default_policy = { max_retries = None; quorum = None }

let default_output =
  {
    summary = None;
    failures = "failures.jsonl";
    journal = None;
    export_prefix = None;
  }

let make ?(name = "experiment") ?(scale = 100) ?seed ?(uarches = [])
    ?(models = []) ?(filters = default_filters) ?(policy = default_policy)
    ?faults ?jobs ?store ?(output = default_output) ~sections () =
  {
    name;
    corpus = { scale; seed };
    uarches;
    models;
    filters;
    policy;
    faults;
    jobs;
    store;
    output;
    sections;
  }

let section ?label kind = { label; kind }

(* ------------------------------------------------------------------ *)
(* Names and lookups                                                   *)
(* ------------------------------------------------------------------ *)

let kind_name = function
  | Corpus_load -> "corpus"
  | Corpus_dump _ -> "dump"
  | Applications -> "applications"
  | Ablation_suite -> "ablation-suite"
  | Ablation_block { block } -> "ablation-block-" ^ block
  | Classifier -> "classifier"
  | Categories -> "categories"
  | Exemplars -> "exemplars"
  | Composition _ -> "composition"
  | Dataset { uarch } -> "dataset-" ^ uarch
  | Validate -> "validate"
  | Errors -> "errors"
  | Case_study -> "case-study"
  | Google -> "google"
  | Instruction_table { uarch } -> "instruction-table-" ^ uarch
  | Port_mapping { uarch } -> "port-mapping-" ^ uarch
  | Ablation_unroll -> "ablation-unroll"
  | Ablation_filters -> "ablation-filters"
  | Ablation_noise -> "ablation-noise"
  | Speed -> "speed"
  | Profile _ -> "profile"
  | Refine { uarch; _ } -> "refine-" ^ uarch

let section_name s =
  match s.label with Some l -> l | None -> kind_name s.kind

(* Sections whose rendered output is legitimately different on every
   run (wall-clock micro-benchmarks): their output digest is recorded
   as "-" and excluded from the byte-identity contract. *)
let volatile_output s = match s.kind with Speed -> true | _ -> false

(* Model keys (manifest spelling) and the display names the evaluation
   layer uses. *)
let model_names =
  [
    ("iaca", "IACA");
    ("llvm-mca", "llvm-mca");
    ("ithemal", "Ithemal");
    ("osaca", "OSACA");
  ]

let model_display key = List.assoc_opt key model_names

(* Named paper blocks usable in ablation-block sections. *)
let paper_blocks =
  [
    ("tensorflow", Corpus.Paper_blocks.tensorflow_ablation);
    ("division", Corpus.Paper_blocks.division);
    ("zero-idiom", Corpus.Paper_blocks.zero_idiom);
    ("gzip-crc", Corpus.Paper_blocks.gzip_crc);
  ]

let paper_block key = List.assoc_opt key paper_blocks

(* Resolved uarch descriptors, in manifest order ([] = all). *)
let resolved_uarches t =
  match t.uarches with
  | [] -> Uarch.All.all
  | shorts -> List.filter_map Uarch.All.by_short shorts

let dump_variants = [ "suite"; "extended"; "google" ]

(* The measurement environment a filters record describes. Exposed on
   its own (not just via [environment]) because a serve request is a
   tiny manifest: its filters object resolves through exactly this
   function, so daemon answers and CLI answers agree by construction. *)
let environment_of_filters (f : filters) =
  let e = Harness.Environment.default in
  let e =
    match f.naive_unroll with
    | Some u -> { e with Harness.Environment.unroll = Harness.Environment.Naive u }
    | None -> e
  in
  let e = match f.min_clean with Some m -> { e with min_clean = m } | None -> e in
  let e =
    {
      e with
      disable_underflow = not f.keep_underflow;
      drop_misaligned = not f.keep_misaligned;
    }
  in
  match f.context_switch_rate with
  | Some r -> { e with context_switch_rate = r }
  | None -> e

let environment t = environment_of_filters t.filters

(* ------------------------------------------------------------------ *)
(* Canonical encoding and ids                                          *)
(* ------------------------------------------------------------------ *)

let add_corpus buf c =
  Codec.int buf c.scale;
  Codec.option buf Codec.i64 c.seed

let add_filters buf f =
  Codec.option buf Codec.int f.naive_unroll;
  Codec.option buf Codec.int f.min_clean;
  Codec.bool buf f.keep_underflow;
  Codec.bool buf f.keep_misaligned;
  Codec.option buf Codec.float f.context_switch_rate

let add_kind buf = function
  | Corpus_load -> Codec.u8 buf 0
  | Corpus_dump { variant; app; limit; freq } ->
    Codec.u8 buf 1;
    Codec.str buf variant;
    Codec.option buf Codec.str app;
    Codec.option buf Codec.int limit;
    Codec.bool buf freq
  | Applications -> Codec.u8 buf 2
  | Ablation_suite -> Codec.u8 buf 3
  | Ablation_block { block } ->
    Codec.u8 buf 4;
    Codec.str buf block
  | Classifier -> Codec.u8 buf 5
  | Categories -> Codec.u8 buf 6
  | Exemplars -> Codec.u8 buf 7
  | Composition { title } ->
    Codec.u8 buf 8;
    Codec.str buf title
  | Dataset { uarch } ->
    Codec.u8 buf 9;
    Codec.str buf uarch
  | Validate -> Codec.u8 buf 10
  | Errors -> Codec.u8 buf 11
  | Case_study -> Codec.u8 buf 12
  | Google -> Codec.u8 buf 13
  | Instruction_table { uarch } ->
    Codec.u8 buf 14;
    Codec.str buf uarch
  | Port_mapping { uarch } ->
    Codec.u8 buf 15;
    Codec.str buf uarch
  | Ablation_unroll -> Codec.u8 buf 16
  | Ablation_filters -> Codec.u8 buf 17
  | Ablation_noise -> Codec.u8 buf 18
  | Speed -> Codec.u8 buf 19
  | Profile { asm; uarch; with_models; schedule } ->
    Codec.u8 buf 20;
    Codec.str buf asm;
    Codec.str buf uarch;
    Codec.bool buf with_models;
    Codec.bool buf schedule
  | Refine { uarch; seed; edits; target_error; max_evals } ->
    Codec.u8 buf 21;
    Codec.str buf uarch;
    Codec.i64 buf seed;
    Codec.int buf edits;
    Codec.float buf target_error;
    Codec.int buf max_evals

let add_section buf s =
  Codec.option buf Codec.str s.label;
  add_kind buf s.kind

(* The experiment-defining subset: what is measured. *)
let add_experiment buf t =
  Codec.str buf version;
  add_corpus buf t.corpus;
  Codec.list buf Codec.str t.uarches;
  Codec.list buf Codec.str t.models;
  add_filters buf t.filters;
  Codec.list buf add_section t.sections

let experiment_id t =
  let buf = Buffer.create 512 in
  add_experiment buf t;
  Store.Sha256.hex (Buffer.contents buf)

(* The full manifest: experiment + execution configuration + outputs. *)
let id t =
  let buf = Buffer.create 512 in
  add_experiment buf t;
  Codec.str buf t.name;
  Codec.option buf Codec.int t.policy.max_retries;
  Codec.option buf Codec.int t.policy.quorum;
  Codec.option buf
    (fun b f -> Codec.str b (Faultsim.to_string f))
    t.faults;
  Codec.option buf Codec.int t.jobs;
  Codec.option buf Codec.str t.store;
  Codec.option buf Codec.str t.output.summary;
  Codec.str buf t.output.failures;
  Codec.option buf Codec.str t.output.journal;
  Codec.option buf Codec.str t.output.export_prefix;
  Store.Sha256.hex (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let kind_tag = function
  | Corpus_load -> "corpus"
  | Corpus_dump _ -> "dump"
  | Applications -> "applications"
  | Ablation_suite -> "ablation-suite"
  | Ablation_block _ -> "ablation-block"
  | Classifier -> "classifier"
  | Categories -> "categories"
  | Exemplars -> "exemplars"
  | Composition _ -> "composition"
  | Dataset _ -> "dataset"
  | Validate -> "validate"
  | Errors -> "errors"
  | Case_study -> "case-study"
  | Google -> "google"
  | Instruction_table _ -> "instruction-table"
  | Port_mapping _ -> "port-mapping"
  | Ablation_unroll -> "ablation-unroll"
  | Ablation_filters -> "ablation-filters"
  | Ablation_noise -> "ablation-noise"
  | Speed -> "speed"
  | Profile _ -> "profile"
  | Refine _ -> "refine"

let num i = Json.Number (float_of_int i)

let opt name f v = match v with None -> [] | Some x -> [ (name, f x) ]

let section_to_json s =
  let fields =
    match s.kind with
    | Corpus_dump { variant; app; limit; freq } ->
      [ ("variant", Json.String variant) ]
      @ opt "app" (fun a -> Json.String a) app
      @ opt "limit" num limit
      @ (if freq then [ ("freq", Json.Bool true) ] else [])
    | Ablation_block { block } -> [ ("block", Json.String block) ]
    | Composition { title } -> [ ("title", Json.String title) ]
    | Dataset { uarch } | Instruction_table { uarch } | Port_mapping { uarch }
      ->
      [ ("uarch", Json.String uarch) ]
    | Profile { asm; uarch; with_models; schedule } ->
      [ ("uarch", Json.String uarch); ("asm", Json.String asm) ]
      @ (if with_models then [ ("models", Json.Bool true) ] else [])
      @ if schedule then [ ("schedule", Json.Bool true) ] else []
    | Refine { uarch; seed; edits; target_error; max_evals } ->
      [
        ("uarch", Json.String uarch);
        ("seed", Json.Number (Int64.to_float seed));
        ("edits", num edits);
        ("target_error", Json.Number target_error);
        ("max_evals", num max_evals);
      ]
    | _ -> []
  in
  Json.Object
    ((("kind", Json.String (kind_tag s.kind))
     :: opt "label" (fun l -> Json.String l) s.label)
    @ fields)

(* Shared with the serve wire protocol: a request's filters object is
   rendered and parsed with the same code as a manifest's. *)
let filters_to_json (f : filters) =
  Json.Object
    (opt "naive_unroll" num f.naive_unroll
    @ opt "min_clean" num f.min_clean
    @ (if f.keep_underflow then [ ("keep_underflow", Json.Bool true) ] else [])
    @ (if f.keep_misaligned then [ ("keep_misaligned", Json.Bool true) ]
       else [])
    @ opt "context_switch_rate"
        (fun r -> Json.Number r)
        f.context_switch_rate)

let to_json t =
  let strings l = Json.List (List.map (fun s -> Json.String s) l) in
  let filters = filters_to_json t.filters in
  let policy =
    Json.Object
      (opt "max_retries" num t.policy.max_retries
      @ opt "quorum" num t.policy.quorum)
  in
  let output =
    Json.Object
      (opt "summary" (fun s -> Json.String s) t.output.summary
      @ [ ("failures", Json.String t.output.failures) ]
      @ opt "journal" (fun s -> Json.String s) t.output.journal
      @ opt "export_prefix" (fun s -> Json.String s) t.output.export_prefix)
  in
  Json.Object
    ([
       ("manifest_version", num json_version);
       ("name", Json.String t.name);
       ( "corpus",
         Json.Object
           (("scale", num t.corpus.scale)
           :: opt "seed" (fun s -> Json.Number (Int64.to_float s)) t.corpus.seed
           ) );
       ("uarches", strings t.uarches);
       ("models", strings t.models);
       ("filters", filters);
       ("policy", policy);
     ]
    @ opt "faults" (fun f -> Json.String (Faultsim.to_string f)) t.faults
    @ opt "jobs" num t.jobs
    @ opt "store" (fun s -> Json.String s) t.store
    @ [
        ("output", output);
        ("sections", Json.List (List.map section_to_json t.sections));
      ])

let to_string t = Json.to_string (to_json t)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let str_field name j = Option.bind (Json.member name j) Json.string_value
let num_field name j = Option.bind (Json.member name j) Json.number
let int_field name j = Option.map int_of_float (num_field name j)

let bool_field name j =
  match Json.member name j with Some (Json.Bool b) -> Some b | _ -> None

let require what = function Some v -> v | None -> fail "manifest: missing %s" what

let section_of_json j =
  let label = str_field "label" j in
  let uarch () = require "section uarch" (str_field "uarch" j) in
  let kind =
    match require "section kind" (str_field "kind" j) with
    | "corpus" -> Corpus_load
    | "dump" ->
      Corpus_dump
        {
          variant = Option.value ~default:"suite" (str_field "variant" j);
          app = str_field "app" j;
          limit = int_field "limit" j;
          freq = Option.value ~default:false (bool_field "freq" j);
        }
    | "applications" -> Applications
    | "ablation-suite" -> Ablation_suite
    | "ablation-block" ->
      Ablation_block { block = require "section block" (str_field "block" j) }
    | "classifier" -> Classifier
    | "categories" -> Categories
    | "exemplars" -> Exemplars
    | "composition" ->
      Composition { title = require "section title" (str_field "title" j) }
    | "dataset" -> Dataset { uarch = uarch () }
    | "validate" -> Validate
    | "errors" -> Errors
    | "case-study" -> Case_study
    | "google" -> Google
    | "instruction-table" -> Instruction_table { uarch = uarch () }
    | "port-mapping" -> Port_mapping { uarch = uarch () }
    | "ablation-unroll" -> Ablation_unroll
    | "ablation-filters" -> Ablation_filters
    | "ablation-noise" -> Ablation_noise
    | "speed" -> Speed
    | "profile" ->
      Profile
        {
          asm = require "section asm" (str_field "asm" j);
          uarch = uarch ();
          with_models = Option.value ~default:false (bool_field "models" j);
          schedule = Option.value ~default:false (bool_field "schedule" j);
        }
    | "refine" ->
      Refine
        {
          uarch = uarch ();
          seed =
            Int64.of_float (require "section seed" (num_field "seed" j));
          edits = Option.value ~default:2 (int_field "edits" j);
          target_error =
            Option.value ~default:0.05 (num_field "target_error" j);
          max_evals = Option.value ~default:200 (int_field "max_evals" j);
        }
    | k -> fail "manifest: unknown section kind %S" k
  in
  { label; kind }

(* Raises [Failure] on malformed fields, like the rest of the parser;
   callers outside [of_json] (the serve request decoder) catch it. *)
let filters_of_json f =
  {
    naive_unroll = int_field "naive_unroll" f;
    min_clean = int_field "min_clean" f;
    keep_underflow =
      Option.value ~default:false (bool_field "keep_underflow" f);
    keep_misaligned =
      Option.value ~default:false (bool_field "keep_misaligned" f);
    context_switch_rate = num_field "context_switch_rate" f;
  }

let of_json j =
  try
    (match int_field "manifest_version" j with
    | Some v when v = json_version -> ()
    | Some v -> fail "manifest: unsupported manifest_version %d (expected %d)" v json_version
    | None -> fail "manifest: missing manifest_version");
    let corpus =
      match Json.member "corpus" j with
      | Some c ->
        {
          scale = Option.value ~default:100 (int_field "scale" c);
          seed = Option.map Int64.of_float (num_field "seed" c);
        }
      | None -> { scale = 100; seed = None }
    in
    let strings name =
      match Option.bind (Json.member name j) Json.list_value with
      | None -> []
      | Some items ->
        List.map
          (fun v ->
            match Json.string_value v with
            | Some s -> s
            | None -> fail "manifest: %s entries must be strings" name)
          items
    in
    let filters =
      match Json.member "filters" j with
      | None -> default_filters
      | Some f -> filters_of_json f
    in
    let policy =
      match Json.member "policy" j with
      | None -> default_policy
      | Some p ->
        { max_retries = int_field "max_retries" p; quorum = int_field "quorum" p }
    in
    let faults =
      match str_field "faults" j with
      | None -> None
      | Some s -> (
        match Faultsim.parse s with
        | Ok c -> Some c
        | Error m -> fail "manifest: faults: %s" m)
    in
    let output =
      match Json.member "output" j with
      | None -> default_output
      | Some o ->
        {
          summary = str_field "summary" o;
          failures =
            Option.value ~default:default_output.failures
              (str_field "failures" o);
          journal = str_field "journal" o;
          export_prefix = str_field "export_prefix" o;
        }
    in
    let sections =
      match Option.bind (Json.member "sections" j) Json.list_value with
      | None | Some [] -> fail "manifest: no sections"
      | Some items -> List.map section_of_json items
    in
    Ok
      {
        name = Option.value ~default:"experiment" (str_field "name" j);
        corpus;
        uarches = strings "uarches";
        models = strings "models";
        filters;
        policy;
        faults;
        jobs = int_field "jobs" j;
        store = str_field "store" j;
        output;
        sections;
      }
  with Bad msg -> Error msg

let of_string s =
  match Json.parse s with
  | Error e -> Error ("manifest: " ^ e)
  | Ok j -> of_json j

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read manifest %s: %s" path msg)
  | contents -> of_string contents

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_uarch where short =
    match Uarch.All.by_short short with
    | Some _ -> Ok ()
    | None -> err "%s: unknown microarchitecture %S (ivb/hsw/skl)" where short
  in
  let rec all = function
    | [] -> Ok ()
    | Error _ as e :: _ -> e
    | Ok () :: rest -> all rest
  in
  let ( let* ) = Result.bind in
  let* () =
    if t.corpus.scale >= 1 then Ok ()
    else err "manifest %s: corpus scale must be >= 1" t.name
  in
  let* () = all (List.map (check_uarch "manifest") t.uarches) in
  let* () =
    all
      (List.map
         (fun m ->
           match model_display m with
           | Some _ -> Ok ()
           | None -> err "manifest %s: unknown model %S (iaca/llvm-mca/ithemal/osaca)" t.name m)
         t.models)
  in
  let* () =
    match t.policy.max_retries with
    | Some n when n < 0 -> err "manifest %s: max_retries must be >= 0" t.name
    | _ -> Ok ()
  in
  let* () =
    match t.policy.quorum with
    | Some n when n < 1 -> err "manifest %s: quorum must be >= 1" t.name
    | _ -> Ok ()
  in
  let* () =
    if t.sections = [] then err "manifest %s: no sections" t.name else Ok ()
  in
  let resolved_shorts =
    List.map (fun (u : Uarch.Descriptor.t) -> u.short) (resolved_uarches t)
  in
  let requires_hsw name =
    if List.mem "hsw" resolved_shorts then Ok ()
    else err "section %s requires microarchitecture hsw in the manifest's uarch set" name
  in
  let check_section s =
    let name = section_name s in
    match s.kind with
    | Corpus_dump { variant; _ } ->
      if List.mem variant dump_variants then Ok ()
      else err "section %s: unknown corpus variant %S (suite/extended/google)" name variant
    | Ablation_block { block } -> (
      match paper_block block with
      | Some _ -> Ok ()
      | None ->
        err "section %s: unknown paper block %S (%s)" name block
          (String.concat "/" (List.map fst paper_blocks)))
    | Dataset { uarch } ->
      let* () = check_uarch ("section " ^ name) uarch in
      if List.mem uarch resolved_shorts then Ok ()
      else err "section %s: uarch %s is not in the manifest's uarch set" name uarch
    | Instruction_table { uarch } | Port_mapping { uarch } ->
      check_uarch ("section " ^ name) uarch
    | Case_study | Google -> requires_hsw name
    | Profile { asm; uarch; _ } -> (
      let* () = check_uarch ("section " ^ name) uarch in
      match X86.Parser.block asm with
      | Error e -> err "section %s: parse error: %s" name e
      | Ok [] -> err "section %s: empty block" name
      | Ok _ -> Ok ())
    | Refine { uarch; edits; target_error; max_evals; _ } ->
      let* () = check_uarch ("section " ^ name) uarch in
      let* () =
        if List.mem uarch resolved_shorts then Ok ()
        else err "section %s: uarch %s is not in the manifest's uarch set" name uarch
      in
      let* () =
        if edits >= 1 then Ok ()
        else err "section %s: edits must be >= 1" name
      in
      let* () =
        if target_error > 0.0 then Ok ()
        else err "section %s: target_error must be > 0" name
      in
      if max_evals >= 1 then Ok ()
      else err "section %s: max_evals must be >= 1" name
    | _ -> Ok ()
  in
  let* () = all (List.map check_section t.sections) in
  (* duplicate section names would make journal records ambiguous *)
  let names = List.map section_name t.sections in
  let rec dup = function
    | [] -> Ok ()
    | n :: rest ->
      if List.mem n rest then err "manifest %s: duplicate section name %S" t.name n
      else dup rest
  in
  dup names

(* Check every output path's directory up front so a long run cannot
   die mid-way on a typo'd path: exit-2 material, one line each. *)
let validate_outputs t =
  let check what = function
    | None -> Ok ()
    | Some path ->
      let dir = Filename.dirname path in
      if not (Sys.file_exists dir) then
        Error (Printf.sprintf "output directory %s for %s does not exist" dir what)
      else if not (Sys.is_directory dir) then
        Error (Printf.sprintf "output path %s for %s is not a directory" dir what)
      else (
        match Unix.access dir [ Unix.W_OK ] with
        | () -> Ok ()
        | exception Unix.Unix_error _ ->
          Error
            (Printf.sprintf "output directory %s for %s is not writable" dir what))
  in
  let ( let* ) = Result.bind in
  let* () = check "the summary" t.output.summary in
  let* () = check "the failures manifest" (Some t.output.failures) in
  let* () = check "the run journal" t.output.journal in
  let* () = check "the dataset export" t.output.export_prefix in
  Ok ()

(* ------------------------------------------------------------------ *)
(* The bench manifest                                                  *)
(* ------------------------------------------------------------------ *)

(* The full evaluation — every table and figure of the paper plus the
   methodology ablations and speed micro-benchmarks, labelled with the
   paper artefact names. bench/main.exe synthesizes exactly this;
   examples/bench.manifest.json is its printed form. *)
let bench ?(name = "bench") ~scale () =
  let sec = section in
  make ~name ~scale
    ~output:
      {
        summary = Some "bench_summary.json";
        failures = "failures.jsonl";
        journal = Some "bench.journal.jsonl";
        export_prefix = None;
      }
    ~sections:
      [
        sec ~label:"corpus" Corpus_load;
        sec ~label:"table3" Applications;
        sec ~label:"table1" Ablation_suite;
        sec ~label:"table2" (Ablation_block { block = "tensorflow" });
        sec ~label:"classifier" Classifier;
        sec ~label:"table4" Categories;
        sec ~label:"fig-examples" Exemplars;
        sec ~label:"fig-apps-vs-clusters"
          (Composition
             {
               title =
                 "Figure: breakdown of applications by basic block categories";
             });
        sec ~label:"table5" Validate;
        sec ~label:"fig-errors" Errors;
        sec ~label:"table6" Case_study;
        sec ~label:"table7" Google;
        sec ~label:"instruction-table" (Instruction_table { uarch = "hsw" });
        sec ~label:"port-mapping" (Port_mapping { uarch = "hsw" });
        sec ~label:"ablation-unroll" Ablation_unroll;
        sec ~label:"ablation-filters" Ablation_filters;
        sec ~label:"ablation-noise" Ablation_noise;
        sec ~label:"speed" Speed;
      ]
    ()
