(* Execute a manifest end-to-end through one shared engine.

   Every section renders into a buffer; the buffer is journaled
   (output + digest + engine counter deltas) and then printed, so a
   replayed section is indistinguishable on stdout from an executed
   one. Section timing and engine chatter go to [info] (stderr by
   default) — stdout carries exactly the experiment output.

   Resume: a section with a [section_end] record in the journal is
   replayed from it; everything else runs, and anything the persistent
   store already holds is served without re-profiling. The summary's
   non-volatile content is therefore byte-identical between an
   uninterrupted run and any kill/resume sequence of the same
   manifest.

   Execution-parameter precedence is CLI flag > environment > manifest
   ([overrides] carries the flags); experiment-defining parameters
   (corpus, uarches, models, filters, sections) come only from the
   manifest. *)

module Json = Telemetry.Json

(* Raised out of [run] by the [kill_after_jobs] test hook: simulates a
   mid-section kill at an exact, deterministic point (the Nth resolved
   job) while leaving journal and store exactly as a real kill would. *)
exception Killed

(* Cooperative interrupt (the bhive_run SIGINT/SIGTERM handlers set
   this): honoured at the next section boundary, exactly like
   --max-sections — the in-progress section finishes, its journal
   entry is appended (the journal tail stays well-formed), remaining
   sections are skipped, and the outcome reports [interrupted = true]
   so the CLI exits 3. Re-running the same manifest resumes from the
   journal. Reset at the start of every [run]. *)
let interrupt_flag = Atomic.make false
let request_interrupt () = Atomic.set interrupt_flag true

type overrides = {
  o_jobs : int option;
  o_store : string option;
  o_faults : Faultsim.config option;
  o_max_retries : int option;
  o_quorum : int option;
}

let no_overrides =
  {
    o_jobs = None;
    o_store = None;
    o_faults = None;
    o_max_retries = None;
    o_quorum = None;
  }

type outcome = {
  manifest_id : string;
  experiment_id : string;
  journal_digest : string option;  (** [Some] once every section completed *)
  interrupted : bool;  (** stopped by [max_sections] *)
  sections_replayed : int;
  sections_executed : int;
  stats : Engine.stats;
  lost : int;
  quarantined_jobs : int;
  summary_path : string option;  (** where the summary was written *)
}

(* ------------------------------------------------------------------ *)
(* Shared run context: every lazy is forced at most once per run, and  *)
(* always through the run's single engine.                             *)
(* ------------------------------------------------------------------ *)

type ctx = {
  spec : Spec.t;
  engine : Engine.t;
  journal : Journal.t;
  progress : (done_:int -> total:int -> unit) option;
      (* the run's kill/progress hook; sections that build their own
         engines (refine) must install it there too, or
         [kill_after_jobs] could never land inside them *)
  env : Harness.Environment.t;
  config : Corpus.Suite.config;
  suite : Corpus.Block.t list Lazy.t;
  extended : Corpus.Block.t list Lazy.t;
  google : Corpus.Block.t list Lazy.t;
  classifier : Classify.Categories.t Lazy.t;
  uarches : Uarch.Descriptor.t list;
  datasets : (Uarch.Descriptor.t * Bhive.Dataset.t Lazy.t) list;
  evals : (string * Bhive.Validation.eval list) list Lazy.t;
}

let make_ctx (spec : Spec.t) engine journal progress =
  let config =
    let d = Corpus.Suite.default_config in
    {
      Corpus.Suite.scale = spec.corpus.scale;
      seed = Option.value ~default:d.Corpus.Suite.seed spec.corpus.seed;
    }
  in
  let env = Spec.environment spec in
  let suite = lazy (Corpus.Suite.generate ~config ()) in
  let uarches = Spec.resolved_uarches spec in
  let datasets =
    List.map
      (fun u -> (u, lazy (Bhive.Dataset.build ~env ~engine u (Lazy.force suite))))
      uarches
  in
  let keep_models evals =
    match spec.models with
    | [] -> evals
    | keys ->
      let names = List.filter_map Spec.model_display keys in
      List.filter
        (fun (e : Bhive.Validation.eval) -> List.mem e.model names)
        evals
  in
  {
    spec;
    engine;
    journal;
    progress;
    env;
    config;
    suite;
    extended = lazy (Corpus.Suite.generate_extended ~config ());
    google = lazy (Corpus.Suite.generate_google ~config ());
    classifier = lazy (Classify.Categories.fit (Lazy.force suite));
    uarches;
    datasets;
    evals =
      lazy
        (List.map
           (fun ((u : Uarch.Descriptor.t), ds) ->
             ( u.name,
               keep_models
                 (Bhive.Validation.evaluate_all ~engine (Lazy.force ds)) ))
           datasets);
  }

let dataset_of ctx short =
  let u, ds =
    List.find
      (fun ((u : Uarch.Descriptor.t), _) -> u.short = short)
      ctx.datasets
  in
  (u, Lazy.force ds)

let uarch_exn short =
  match Uarch.All.by_short short with
  | Some u -> u
  | None -> invalid_arg ("unknown uarch " ^ short)

(* ------------------------------------------------------------------ *)
(* Section bodies (ported from bench/main.ml and the former CLI        *)
(* bodies; all output through [fmt])                                   *)
(* ------------------------------------------------------------------ *)

let sec_corpus ctx fmt =
  Format.fprintf fmt "suite: %d blocks (scale 1/%d)@."
    (List.length (Lazy.force ctx.suite))
    ctx.config.scale

let sec_dump ctx fmt ~variant ~app ~limit ~freq =
  let blocks =
    match variant with
    | "extended" -> Lazy.force ctx.extended
    | "google" -> Lazy.force ctx.google
    | _ -> Lazy.force ctx.suite
  in
  let blocks =
    match app with
    | Some name -> List.filter (fun (b : Corpus.Block.t) -> b.app = name) blocks
    | None -> blocks
  in
  let blocks =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) blocks
    | None -> blocks
  in
  List.iter
    (fun (b : Corpus.Block.t) ->
      if freq then Format.fprintf fmt "# %s freq=%d@." b.id b.freq
      else Format.fprintf fmt "# %s@." b.id;
      Format.fprintf fmt "%s@.@." (Corpus.Block.text b))
    blocks

let sec_ablation_suite ctx fmt =
  let rows =
    Bhive.Ablation.suite_ablation ~engine:ctx.engine (Lazy.force ctx.suite)
  in
  Bhive.Report.suite_ablation fmt rows

let sec_ablation_block ctx fmt block_name =
  let block = Option.get (Spec.paper_block block_name) in
  let rows = Bhive.Ablation.block_ablation ~engine:ctx.engine block in
  Bhive.Report.block_ablation fmt rows

let sec_classifier ctx fmt =
  ignore (Lazy.force ctx.classifier);
  Format.fprintf fmt "classifier fitted on %d blocks@."
    (List.length (Lazy.force ctx.suite))

let sec_dataset ctx fmt short =
  let (u : Uarch.Descriptor.t), ds = dataset_of ctx short in
  Format.fprintf fmt "profiling on %s...@." u.name;
  Format.fprintf fmt "  %d/%d blocks measured (%.1f%%), %d AVX2-excluded@."
    (Bhive.Dataset.size ds) ds.n_input
    (100.0 *. Bhive.Dataset.profiled_fraction ds)
    ds.n_avx2_excluded;
  if ds.quarantined <> [] then
    Format.fprintf fmt "  %d block(s) quarantined by the engine@."
      (List.length ds.quarantined);
  match ctx.spec.output.export_prefix with
  | Some prefix ->
    let path = Printf.sprintf "%s-%s.csv" prefix u.short in
    Bhive.Export.to_file path ds;
    Format.fprintf fmt "  dataset written to %s@." path
  | None -> ()

let sec_validate ctx fmt =
  Bhive.Report.overall_error fmt (Lazy.force ctx.evals)

let sec_errors ctx fmt =
  let cls = Lazy.force ctx.classifier in
  let evals = Lazy.force ctx.evals in
  List.iter
    (fun (uarch_name, per_model) ->
      Bhive.Report.per_app_error fmt ~uarch:uarch_name per_model;
      Bhive.Report.per_category_error fmt ~uarch:uarch_name cls per_model)
    evals;
  match List.assoc_opt "Haswell" evals with
  | Some per_model -> Bhive.Report.per_length_error fmt ~uarch:"Haswell" per_model
  | None -> ()

let sec_case_study ctx fmt =
  let hsw, hsw_ds = dataset_of ctx "hsw" in
  let models, _ = Bhive.Validation.standard_models ~engine:ctx.engine hsw_ds in
  let measure block =
    match Engine.profile ctx.engine ctx.env hsw block with
    | Ok p -> p.throughput
    | Error _ -> nan
  in
  let rows =
    List.map
      (fun (name, block) ->
        ( name,
          block,
          measure block,
          List.map
            (fun (m : Models.Model_intf.t) -> (m.name, m.predict block))
            models ))
      [
        ("unsigned division (64/32-bit)", Corpus.Paper_blocks.division);
        ("zero idiom (vxorps xmm2,xmm2,xmm2)", Corpus.Paper_blocks.zero_idiom);
        ("gzip updcrc inner loop", Corpus.Paper_blocks.gzip_crc);
      ]
  in
  Bhive.Report.case_study fmt rows;
  (* the mis-scheduling figure: IACA vs llvm-mca schedules on the gzip
     block *)
  let block = Corpus.Paper_blocks.gzip_crc in
  List.iter
    (fun (m : Models.Model_intf.t) ->
      match m.schedule with
      | Some sched when m.name <> "OSACA" ->
        Bhive.Report.schedule fmt ~model:m.name ~block (sched block)
      | _ -> ())
    models

let sec_google ctx fmt =
  let hsw, hsw_ds = dataset_of ctx "hsw" in
  let google = Lazy.force ctx.google in
  let spanner, dremel =
    List.partition (fun (b : Corpus.Block.t) -> b.app = "spanner") google
  in
  let cls = Lazy.force ctx.classifier in
  Bhive.Report.composition fmt
    ~title:
      "Figure: basic block composition of Spanner and Dremel \
       (frequency-weighted)"
    (Classify.Composition.rows ~weighted:true cls google);
  let models, _ = Bhive.Validation.standard_models ~engine:ctx.engine hsw_ds in
  let models =
    List.filter (fun (m : Models.Model_intf.t) -> m.name <> "OSACA") models
  in
  let rows =
    List.map
      (fun (app, blocks) ->
        let ds = Bhive.Dataset.build ~env:ctx.env ~engine:ctx.engine hsw blocks in
        ( app,
          List.map
            (fun m -> Bhive.Validation.evaluate_entries hsw m ds.entries)
            models ))
      [ ("Spanner", spanner); ("Dremel", dremel) ]
  in
  Bhive.Report.google_numbers fmt rows

let sec_instruction_table ctx fmt short =
  let u = uarch_exn short in
  Bhive.Report.rule fmt
    (Printf.sprintf
       "Per-instruction characterisation on %s (llvm-exegesis-style)"
       u.Uarch.Descriptor.name);
  Exegesis.Characterize.pp_table fmt
    (Exegesis.Characterize.table ~engine:ctx.engine u)

let sec_port_mapping ctx fmt short =
  let u = uarch_exn short in
  Bhive.Report.rule fmt
    (Printf.sprintf
       "Port-mapping inference on %s (Abel-Reineke-style blocker probes)"
       u.Uarch.Descriptor.name);
  Exegesis.Portmap.pp_survey fmt
    (Exegesis.Portmap.survey ~engine:ctx.engine u
       Exegesis.Portmap.standard_targets)

let sec_ablation_unroll ctx fmt =
  Bhive.Report.rule fmt
    "Ablation: unroll-factor sweep on the TensorFlow block (naive strategy)";
  let block = Corpus.Paper_blocks.tensorflow_ablation in
  List.iter
    (fun u ->
      let env =
        { ctx.env with Harness.Environment.unroll = Harness.Environment.Naive u }
      in
      match Engine.profile ctx.engine env Uarch.All.haswell block with
      | Ok p ->
        Format.fprintf fmt "  u=%-4d tp=%8.2f accepted=%b l1i_misses=%d@." u
          p.throughput p.accepted p.large.counters.l1i_misses
      | Error e ->
        let fingerprint =
          Engine.fingerprint { Engine.env; uarch = Uarch.All.haswell; block }
        in
        Format.fprintf fmt "  u=%-4d failed: %s@." u
          (Engine.error_to_string ~fingerprint e))
    [ 4; 8; 16; 32; 64; 100; 200 ]

let accepted_fraction ctx env blocks =
  let { Engine.outcomes; _ } =
    Engine.run_batch ctx.engine
      (List.map
         (fun (b : Corpus.Block.t) ->
           { Engine.env; uarch = Uarch.All.haswell; block = b.insts })
         blocks)
  in
  let ok =
    Array.fold_left
      (fun acc -> function
        | Ok (p : Harness.Profiler.profile) when p.accepted -> acc + 1
        | _ -> acc)
      0 outcomes
  in
  100.0 *. float_of_int ok /. float_of_int (List.length blocks)

let sec_ablation_filters ctx fmt =
  Bhive.Report.rule fmt
    "Ablation: clean-timing threshold sweep (accepted fraction of suite \
     sample)";
  let blocks = List.filteri (fun i _ -> i mod 7 = 0) (Lazy.force ctx.suite) in
  List.iter
    (fun min_clean ->
      let env = { ctx.env with Harness.Environment.min_clean } in
      Format.fprintf fmt "  min_clean=%-3d accepted=%.2f%%@." min_clean
        (accepted_fraction ctx env blocks))
    [ 2; 4; 8; 12; 16 ]

let sec_ablation_noise ctx fmt =
  Bhive.Report.rule fmt
    "Ablation: context-switch rate vs acceptance (suite sample)";
  let blocks = List.filteri (fun i _ -> i mod 7 = 0) (Lazy.force ctx.suite) in
  List.iter
    (fun rate ->
      let env = { ctx.env with Harness.Environment.context_switch_rate = rate } in
      Format.fprintf fmt "  ctx_switch_rate=%.2f accepted=%.2f%%@." rate
        (accepted_fraction ctx env blocks))
    [ 0.0; 0.08; 0.25; 0.5 ]

let sec_speed ctx fmt =
  Bhive.Report.rule fmt
    "Speed: profiler vs analyzers on the gzip block (ns per prediction)";
  let open Bechamel in
  let block = Corpus.Paper_blocks.gzip_crc in
  let hsw = Uarch.All.haswell in
  let iaca = Models.Iaca.create hsw in
  let mca = Models.Llvm_mca.create hsw in
  let osaca = Models.Osaca.create hsw in
  let env = ctx.env in
  let tests =
    Test.make_grouped ~name:"prediction"
      [
        Test.make ~name:"bhive-profiler"
          (Staged.stage (fun () ->
               ignore (Harness.Profiler.profile env hsw block)));
        Test.make ~name:"iaca-like"
          (Staged.stage (fun () -> ignore (iaca.predict block)));
        Test.make ~name:"llvm-mca-like"
          (Staged.stage (fun () -> ignore (mca.predict block)));
        Test.make ~name:"osaca-like"
          (Staged.stage (fun () -> ignore (osaca.predict block)));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.fprintf fmt "  %-24s %12.0f ns/run@." name est
      | _ -> Format.fprintf fmt "  %-24s (no estimate)@." name)
    results

let print_ground_truth_schedule fmt uarch block =
  (* map, execute a few copies, and dump the simulated core's schedule *)
  match Harness.Mapping.run Harness.Environment.default block ~unroll:4 with
  | Error f ->
    Format.fprintf fmt "cannot map block: %s@."
      (Harness.Mapping.failure_to_string f)
  | Ok mapped ->
    let machine = Pipeline.Machine.create uarch in
    ignore (Pipeline.Machine.run machine mapped.steps);
    let r = Pipeline.Machine.run ~record_schedule:true machine mapped.steps in
    let insts = Array.of_list block in
    Format.fprintf fmt "@.ground-truth schedule (4 unrolled iterations, warm):@.";
    List.iter
      (fun (e : Pipeline.Core.schedule_entry) ->
        let n = Array.length insts in
        let name =
          if n > 0 then X86.Inst.to_string insts.(e.static_index mod n) else ""
        in
        if e.port < 0 then
          Format.fprintf fmt "  %4d..%-4d (eliminated)  %s@." e.dispatch
            e.complete name
        else
          Format.fprintf fmt "  %4d..%-4d p%d %-7s %s@." e.dispatch e.complete
            e.port
            (Uarch.Uop.kind_name e.uop.kind)
            name)
      r.schedule

let sec_profile ctx fmt ~asm ~uarch:short ~with_models ~schedule =
  let uarch = uarch_exn short in
  let block =
    match X86.Parser.block asm with
    | Ok (_ :: _ as b) -> b
    | Ok [] | Error _ ->
      (* Spec.validate rejects these before a run starts *)
      invalid_arg "unparseable profile section"
  in
  let env = ctx.env in
  Format.fprintf fmt "block (%d instructions, %d bytes):@." (List.length block)
    (X86.Encoder.block_length block);
  List.iter (fun i -> Format.fprintf fmt "    %s@." (X86.Inst.to_string i)) block;
  (match Engine.profile ctx.engine env uarch block with
  | Ok p ->
    Format.fprintf fmt "@.measured inverse throughput on %s: %.2f cycles/iteration@."
      uarch.Uarch.Descriptor.name p.throughput;
    Format.fprintf fmt "accepted: %b%s@." p.accepted
      (match p.reject with
      | Some Harness.Profiler.Misaligned_access -> " (misaligned access)"
      | Some Harness.Profiler.Never_clean -> " (no clean timing)"
      | Some Harness.Profiler.Unstable -> " (unstable timings)"
      | None -> "");
    Format.fprintf fmt "unroll factors: %d / %d; pages mapped: %d@."
      p.factors.large p.factors.small p.large.faults;
    Format.fprintf fmt "counters: %s@."
      (Format.asprintf "%a" Pipeline.Counters.pp p.large.counters)
  | Error e ->
    let fingerprint = Engine.fingerprint { Engine.env; uarch; block } in
    Format.fprintf fmt "@.profiling failed: %s@."
      (Engine.error_to_string ~fingerprint e));
  if schedule then print_ground_truth_schedule fmt uarch block;
  if with_models then begin
    Format.fprintf fmt "@.";
    List.iter
      (fun (m : Models.Model_intf.t) ->
        match m.predict block with
        | Models.Model_intf.Throughput tp ->
          Format.fprintf fmt "%-10s %.2f@." m.name tp
        | Models.Model_intf.Unsupported r ->
          Format.fprintf fmt "%-10s - (%s)@." m.name r)
      [
        Models.Iaca.create uarch;
        Models.Llvm_mca.create uarch;
        Models.Osaca.create uarch;
      ]
  end

(* Descriptor refinement (lib/refine): perturb the reference table with
   the pinned seed, then search the repair. Every candidate evaluation
   is journaled through [Journal.add_extra] tagged with the section
   name; a resumed run feeds those records back as [prior_steps], so a
   kill mid-search replays the already-evaluated prefix verbatim and
   continues from there. The finished search's summary object is also
   journaled ([refine_summary]) so the run summary can carry it even
   when this section itself is replayed. *)
let sec_refine ctx fmt ~name ~uarch:short ~seed ~edits ~target_error ~max_evals =
  let reference = uarch_exn short in
  let corpus =
    List.map (fun (b : Corpus.Block.t) -> b.insts) (Lazy.force ctx.suite)
  in
  let broken, truth = Refine.Perturb.break ~seed ~edits reference in
  Format.fprintf fmt "perturb %s: seed=%Ld edits=%d -> %s@."
    reference.Uarch.Descriptor.short seed edits
    (Uarch.Overlay.to_string truth);
  let prior_steps =
    List.filter
      (fun j ->
        Option.bind (Json.member "section" j) Json.string_value = Some name)
      (Journal.extras ~type_:"refine_step" ctx.journal)
  in
  let record_step j =
    match j with
    | Json.Object fields ->
      Journal.add_extra ctx.journal
        (Json.Object (fields @ [ ("section", Json.String name) ]))
    | _ -> ()
  in
  let r =
    Refine.Driver.run ~jobs:(Engine.jobs ctx.engine)
      ?store:(Engine.store ctx.engine) ?progress:ctx.progress ~record_step
      ~prior_steps ~truth ~env:ctx.env ~reference
      ~start:broken.Uarch.Descriptor.profile ~corpus
      { Refine.Driver.target_error; max_evals }
  in
  Format.pp_print_string fmt (Refine.Driver.report r);
  Format.pp_print_flush fmt ();
  match Refine.Driver.summary_json ~truth r with
  | Json.Object fields ->
    Journal.add_extra ctx.journal
      (Json.Object
         (("type", Json.String "refine_summary")
         :: ("section", Json.String name)
         :: fields))
  | _ -> ()

let exec_section ctx fmt ~name (kind : Spec.kind) =
  match kind with
  | Spec.Corpus_load -> sec_corpus ctx fmt
  | Spec.Corpus_dump { variant; app; limit; freq } ->
    sec_dump ctx fmt ~variant ~app ~limit ~freq
  | Spec.Applications -> Bhive.Report.applications fmt (Lazy.force ctx.suite)
  | Spec.Ablation_suite -> sec_ablation_suite ctx fmt
  | Spec.Ablation_block { block } -> sec_ablation_block ctx fmt block
  | Spec.Classifier -> sec_classifier ctx fmt
  | Spec.Categories ->
    Bhive.Report.categories fmt
      (Lazy.force ctx.classifier)
      (Lazy.force ctx.suite)
  | Spec.Exemplars ->
    Bhive.Report.exemplars fmt
      (Classify.Categories.exemplars
         (Lazy.force ctx.classifier)
         (Lazy.force ctx.suite))
  | Spec.Composition { title } ->
    Bhive.Report.composition fmt ~title
      (Classify.Composition.rows
         (Lazy.force ctx.classifier)
         (Lazy.force ctx.suite))
  | Spec.Dataset { uarch } -> sec_dataset ctx fmt uarch
  | Spec.Validate -> sec_validate ctx fmt
  | Spec.Errors -> sec_errors ctx fmt
  | Spec.Case_study -> sec_case_study ctx fmt
  | Spec.Google -> sec_google ctx fmt
  | Spec.Instruction_table { uarch } -> sec_instruction_table ctx fmt uarch
  | Spec.Port_mapping { uarch } -> sec_port_mapping ctx fmt uarch
  | Spec.Ablation_unroll -> sec_ablation_unroll ctx fmt
  | Spec.Ablation_filters -> sec_ablation_filters ctx fmt
  | Spec.Ablation_noise -> sec_ablation_noise ctx fmt
  | Spec.Speed -> sec_speed ctx fmt
  | Spec.Profile { asm; uarch; with_models; schedule } ->
    sec_profile ctx fmt ~asm ~uarch ~with_models ~schedule
  | Spec.Refine { uarch; seed; edits; target_error; max_evals } ->
    sec_refine ctx fmt ~name ~uarch ~seed ~edits ~target_error ~max_evals

(* ------------------------------------------------------------------ *)
(* Summary (schema v5)                                                 *)
(* ------------------------------------------------------------------ *)

let section_json jobs (e : Journal.entry) =
  let num i = Json.Number (float_of_int i) in
  let rate =
    if e.e_submitted = 0 then 0.0
    else float_of_int e.e_cache_hits /. float_of_int e.e_submitted
  in
  Json.Object
    [
      ("section", Json.String e.e_section);
      ("output_sha256", Json.String e.e_digest);
      ("wall_seconds", Json.Number e.e_wall_seconds);
      ("jobs", num jobs);
      ("submitted", num e.e_submitted);
      ("executed", num e.e_executed);
      ("cache_hits", num e.e_cache_hits);
      ("cache_hit_rate", Json.Number rate);
      ("retries", num e.e_retries);
      ("quarantined", num e.e_quarantined);
    ]

let summary_json ~(spec : Spec.t) ~manifest_id ~experiment_id ~journal_digest
    ?refine engine sections =
  let rev =
    match Sys.getenv_opt "BHIVE_REV" with
    | Some r when String.trim r <> "" -> String.trim r
    | _ -> "unknown"
  in
  let sections_json =
    List.map (section_json (Engine.jobs engine)) sections
  in
  match Engine.summary_json engine with
  | Json.Object fields ->
    let fields = List.filter (fun (k, _) -> k <> "sections") fields in
    (* Simulator throughput, from the pipeline's always-on counters.
       [blocks_per_sec] is simulated blocks over cumulative in-simulator
       core-seconds — a machine-load-insensitive rate the CI perf job
       gates on (bhive_bench_diff --min-speedup). The wall breakdown is
       informational and volatile, like every other timing field. *)
    let perf =
      let value name =
        Telemetry.Metrics.value (Telemetry.Metrics.counter name)
      in
      let blocks = value "pipeline.blocks" in
      let sim_seconds = float_of_int (value "pipeline.sim_ns") /. 1e9 in
      let engine_wall =
        match List.assoc_opt "engine_wall_seconds" fields with
        | Some (Json.Number w) -> w
        | _ -> 0.0
      in
      Json.Object
        [
          ("blocks", Json.Number (float_of_int blocks));
          ("sim_seconds", Json.Number sim_seconds);
          ( "blocks_per_sec",
            Json.Number
              (if sim_seconds > 0.0 then float_of_int blocks /. sim_seconds
               else 0.0) );
          ( "wall",
            Json.Object
              [
                ("engine_seconds", Json.Number engine_wall);
                ("sim_seconds", Json.Number sim_seconds);
                ( "other_seconds",
                  Json.Number (Float.max 0.0 (engine_wall -. sim_seconds)) );
              ] );
        ]
    in
    Json.Object
      (("schema_version", Json.Number 9.0)
      :: ("scale", Json.Number (float_of_int spec.corpus.scale))
      :: ("rev", Json.String rev)
      :: ("name", Json.String spec.name)
      :: ( "manifest",
           Json.Object
             [
               ("id", Json.String manifest_id);
               ("experiment", Json.String experiment_id);
               ("journal", Json.String journal_digest);
             ] )
      :: (fields
         @ [ ("perf", perf) ]
         @ (match refine with Some r -> [ ("refine", r) ] | None -> [])
         @ [
             ("sections", Json.List sections_json);
             ("telemetry", Telemetry.Metrics.snapshot ());
           ]))
  | other -> other

(* ------------------------------------------------------------------ *)
(* The run loop                                                        *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let resolve_execution (spec : Spec.t) overrides =
  let first_some l = List.find_map Fun.id l in
  let* env_jobs = Engine.jobs_from_env () in
  let* env_store = Engine.store_path_from_env () in
  let* env_faults =
    match Sys.getenv_opt "BHIVE_FAULTS" with
    | None -> Ok None
    | Some s when String.trim s = "" -> Ok None
    | Some _ -> Result.map Option.some (Faultsim.env_result ())
  in
  Ok
    ( first_some [ overrides.o_jobs; env_jobs; spec.jobs ],
      first_some [ overrides.o_store; env_store; spec.store ],
      first_some [ overrides.o_faults; env_faults; spec.faults ],
      first_some [ overrides.o_max_retries; spec.policy.max_retries ],
      first_some [ overrides.o_quorum; spec.policy.quorum ] )

let run ?(overrides = no_overrides) ?(fresh = false) ?max_sections
    ?kill_after_jobs ?(out = Format.std_formatter)
    ?(info = Format.err_formatter) (spec : Spec.t) =
  Atomic.set interrupt_flag false;
  let* () = Spec.validate spec in
  let* () = Spec.validate_outputs spec in
  let manifest_id = Spec.id spec in
  let experiment_id = Spec.experiment_id spec in
  let* jobs, store_path, faults, max_retries, quorum =
    resolve_execution spec overrides
  in
  let progress =
    match kill_after_jobs with
    | None -> None
    | Some n ->
      let count = ref 0 in
      Some
        (fun ~done_:_ ~total:_ ->
          incr count;
          if !count >= n then raise Killed)
  in
  let engine =
    Engine.create ?jobs ?progress ?faults ?store_path ?max_retries ?quorum ()
  in
  let* journal =
    match spec.output.journal with
    | None -> Ok (Journal.memory ())
    | Some path -> Journal.open_ ~fresh ~manifest_id path
  in
  Fun.protect
    ~finally:(fun () -> Journal.close journal)
    (fun () ->
      let ctx = make_ctx spec engine journal progress in
      let replayed = ref 0 and executed = ref 0 in
      let interrupted = ref false in
      List.iteri
        (fun i s ->
          if
            Atomic.get interrupt_flag
            || (match max_sections with Some k -> i >= k | None -> false)
          then interrupted := true
          else if not !interrupted then begin
            let name = Spec.section_name s in
            match Journal.find journal ~index:i ~section:name with
            | Some e ->
              incr replayed;
              Format.fprintf info "(%s replayed from journal)@." name;
              Format.pp_print_string out e.Journal.e_output;
              Format.pp_print_flush out ()
            | None ->
              Journal.section_start journal ~index:i ~section:name;
              let before = Engine.stats engine in
              let t0 = Unix.gettimeofday () in
              let buf = Buffer.create 4096 in
              let bfmt = Format.formatter_of_buffer buf in
              Engine.phase engine name (fun () ->
                  exec_section ctx bfmt ~name s.kind);
              Format.pp_print_flush bfmt ();
              let output = Buffer.contents buf in
              let wall = Unix.gettimeofday () -. t0 in
              let after = Engine.stats engine in
              Journal.add journal
                {
                  Journal.e_index = i;
                  e_section = name;
                  e_output = output;
                  e_digest =
                    (if Spec.volatile_output s then "-"
                     else Store.Sha256.hex output);
                  e_submitted = after.submitted - before.submitted;
                  e_executed = after.executed - before.executed;
                  e_cache_hits = after.cache_hits - before.cache_hits;
                  e_retries = after.retries - before.retries;
                  e_quarantined = after.quarantined - before.quarantined;
                  e_wall_seconds = wall;
                };
              incr executed;
              Format.pp_print_string out output;
              Format.pp_print_flush out ();
              Format.fprintf info "(%s finished in %.1fs)@." name wall
          end)
        spec.sections;
      (* quarantine manifest: only jobs this process actually gave up
         on (replayed sections re-report nothing) *)
      let quarantines = Engine.quarantines engine in
      if quarantines <> [] then begin
        let n = Engine.write_quarantine_manifest engine spec.output.failures in
        Format.fprintf info "%d quarantined job(s) written to %s@." n
          spec.output.failures
      end;
      let s = Engine.stats engine in
      Format.fprintf info
        "engine: %d workers, %d jobs submitted, %d executed, %d cache hits \
         (%.1f%%)@."
        (Engine.jobs engine) s.submitted s.executed s.cache_hits
        (100.0 *. Engine.hit_rate s);
      (match Engine.store engine with
      | None -> ()
      | Some store ->
        Format.fprintf info
          "store (%s): %d hits, %d misses, %d invalidated, %d writes (hit \
           rate %.1f%%), %d entries@."
          (Store.dir store) s.store_hits s.store_misses s.store_invalidated
          s.store_writes
          (100.0 *. Engine.store_hit_rate s)
          (Store.stats store).Store.s_live);
      if not (Faultsim.is_none (Engine.faults engine)) then
        Format.fprintf info
          "faults (%s): %d retries, %d crashes, %d timeouts, %d stalls \
           absorbed, %d workers replenished, %d jobs quarantined@."
          (Faultsim.to_string (Engine.faults engine))
          s.retries s.crashes s.timeouts s.stalls_absorbed
          s.workers_replenished s.quarantined;
      let journal_digest =
        if !interrupted then None
        else
          Some
            (Journal.digest
               (List.mapi
                  (fun i s ->
                    let name = Spec.section_name s in
                    match Journal.find journal ~index:i ~section:name with
                    | Some e -> (name, e.Journal.e_digest)
                    | None -> (name, "?"))
                  spec.sections))
      in
      let summary_path =
        match (journal_digest, spec.output.summary) with
        | Some digest, Some path ->
          let ordered =
            List.sort
              (fun (a : Journal.entry) b -> compare a.e_index b.e_index)
              (Journal.entries journal)
          in
          (* the last refine_summary record wins: the journal carries
             one per completed refine section, and a replayed section
             re-uses the record its original execution appended *)
          let refine =
            match
              List.rev (Journal.extras ~type_:"refine_summary" journal)
            with
            | [] -> None
            | Json.Object fields :: _ ->
              Some
                (Json.Object
                   (List.filter (fun (k, _) -> k <> "type") fields))
            | j :: _ -> Some j
          in
          let summary =
            summary_json ~spec ~manifest_id ~experiment_id
              ~journal_digest:digest ?refine engine ordered
          in
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Json.to_string summary);
              Out_channel.output_char oc '\n');
          Format.fprintf info "summary written to %s@." path;
          Some path
        | _ -> None
      in
      Ok
        {
          manifest_id;
          experiment_id;
          journal_digest;
          interrupted = !interrupted;
          sections_replayed = !replayed;
          sections_executed = !executed;
          stats = s;
          lost = Engine.lost s;
          quarantined_jobs = List.length quarantines;
          summary_path;
        })
