(* The append-only run journal.

   One JSONL file per run directory, keyed by the manifest id: a header
   record stamps which manifest the journal belongs to, then one
   [section_start] record when a section begins and one [section_end]
   record — carrying the section's full rendered output, its SHA-256
   digest and the engine counter deltas it caused — when it completes.

   Resume is a pure function of this file: a section whose
   [section_end] record is present is replayed (its recorded output is
   printed verbatim, nothing is re-executed); everything else runs.
   The file discipline is [Store.Jsonl]'s: a record only exists once
   its newline is on disk, a torn or unparseable tail is truncated at
   open, and mid-file corruption refuses to open. *)

module Json = Telemetry.Json

let digest_version = "bhive-journal-v1"

type entry = {
  e_index : int;  (** position in the manifest's section list *)
  e_section : string;
  e_output : string;  (** full rendered stdout text of the section *)
  e_digest : string;  (** SHA-256 hex of [e_output], or "-" if volatile *)
  e_submitted : int;
  e_executed : int;
  e_cache_hits : int;
  e_retries : int;
  e_quarantined : int;
  e_wall_seconds : float;
}

type sink = Disk of Store.Jsonl.t | Memory

type t = {
  sink : sink;
  mutable entries : entry list;  (* reverse order *)
  mutable extras : Json.t list;  (* reverse order; typed extra records *)
}

(* Record types a journal recognises as its own structure; anything
   else appended through [add_extra] (refinement steps, summaries of
   resumable sub-searches) is carried verbatim in [extras]. *)
let structural = function
  | Some "run" | Some "section_start" | Some "section_end" -> true
  | _ -> false

let num i = Json.Number (float_of_int i)
let int_field name j = Option.map int_of_float (Option.bind (Json.member name j) Json.number)
let str_field name j = Option.bind (Json.member name j) Json.string_value

let entry_to_json e =
  Json.Object
    [
      ("type", Json.String "section_end");
      ("index", num e.e_index);
      ("section", Json.String e.e_section);
      ("output_sha256", Json.String e.e_digest);
      ("submitted", num e.e_submitted);
      ("executed", num e.e_executed);
      ("cache_hits", num e.e_cache_hits);
      ("retries", num e.e_retries);
      ("quarantined", num e.e_quarantined);
      ("wall_seconds", Json.Number e.e_wall_seconds);
      ("output", Json.String e.e_output);
    ]

let entry_of_json j =
  match
    ( int_field "index" j,
      str_field "section" j,
      str_field "output_sha256" j,
      str_field "output" j )
  with
  | Some e_index, Some e_section, Some e_digest, Some e_output ->
    let i name = Option.value ~default:0 (int_field name j) in
    Some
      {
        e_index;
        e_section;
        e_output;
        e_digest;
        e_submitted = i "submitted";
        e_executed = i "executed";
        e_cache_hits = i "cache_hits";
        e_retries = i "retries";
        e_quarantined = i "quarantined";
        e_wall_seconds =
          Option.value ~default:0.0
            (Option.bind (Json.member "wall_seconds" j) Json.number);
      }
  | _ -> None

let header_json manifest_id =
  Json.Object
    [ ("type", Json.String "run"); ("manifest_id", Json.String manifest_id) ]

let memory () = { sink = Memory; entries = []; extras = [] }

let open_ ?(fresh = false) ~manifest_id path =
  let valid line = Result.is_ok (Json.parse line) in
  match Store.Jsonl.open_ ~fresh ~valid path with
  | Error msg -> Error ("journal " ^ msg)
  | Ok (file, lines) -> (
    let records = List.map Json.parse_exn lines in
    match records with
    | [] ->
      Store.Jsonl.append file
        (Json.to_string ~compact:true (header_json manifest_id));
      Ok { sink = Disk file; entries = []; extras = [] }
    | header :: rest ->
      (match (str_field "type" header, str_field "manifest_id" header) with
      | Some "run", Some id when id = manifest_id ->
        let entries =
          List.filter_map
            (fun r ->
              match str_field "type" r with
              | Some "section_end" -> entry_of_json r
              | _ -> None)
            rest
        in
        let extras =
          List.filter (fun r -> not (structural (str_field "type" r))) rest
        in
        Ok { sink = Disk file; entries = List.rev entries; extras = List.rev extras }
      | Some "run", Some id ->
        Store.Jsonl.close file;
        Error
          (Printf.sprintf
             "journal %s belongs to manifest %s…, not %s… (use --fresh to \
              discard it)"
             path
             (String.sub id 0 (min 12 (String.length id)))
             (String.sub manifest_id 0 (min 12 (String.length manifest_id))))
      | _ ->
        Store.Jsonl.close file;
        Error (Printf.sprintf "journal %s: malformed header record" path)))

let entries t = List.rev t.entries

let find t ~index ~section =
  List.find_opt
    (fun e -> e.e_index = index && e.e_section = section)
    t.entries

let append_json t j =
  match t.sink with
  | Memory -> ()
  | Disk file -> Store.Jsonl.append file (Json.to_string ~compact:true j)

let section_start t ~index ~section =
  append_json t
    (Json.Object
       [
         ("type", Json.String "section_start");
         ("index", num index);
         ("section", Json.String section);
       ])

let add t entry =
  t.entries <- entry :: t.entries;
  append_json t (entry_to_json entry)

(* Typed extra records (e.g. [refine_step]); appended durably and
   visible to [extras] immediately, so in-memory journals behave like
   reopened disk ones. The record must carry a "type" field that is
   none of the journal's own. *)
let add_extra t j =
  (match str_field "type" j with
  | Some ty when not (structural (Some ty)) -> ()
  | _ -> invalid_arg "Journal.add_extra: record needs a non-structural type");
  t.extras <- j :: t.extras;
  append_json t j

(** All extra records in append order, optionally filtered by "type". *)
let extras ?type_ t =
  let all = List.rev t.extras in
  match type_ with
  | None -> all
  | Some ty -> List.filter (fun r -> str_field "type" r = Some ty) all

let close t = match t.sink with Memory -> () | Disk file -> Store.Jsonl.close file

(* Digest of a completed run: the ordered (section name, output digest)
   pairs, canonically encoded. Two runs with equal journal digests
   produced byte-identical section outputs in the same order —
   regardless of how many kills and resumes it took. *)
let digest pairs =
  let buf = Buffer.create 256 in
  Store.Codec.str buf digest_version;
  List.iter
    (fun (name, d) ->
      Store.Codec.str buf name;
      Store.Codec.str buf d)
    pairs;
  Store.Sha256.hex (Buffer.contents buf)
