(* Declarative, resumable experiment manifests.

   [Spec] is the versioned description of an experiment (what to run),
   [Journal] the append-only record of a run in progress (what
   happened), and [Runner] the driver that executes a spec against one
   shared engine, journaling each section so a killed run resumes
   where it stopped. *)

module Spec = Spec
module Journal = Journal
module Runner = Runner
