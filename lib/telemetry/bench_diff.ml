(* See bench_diff.mli. *)

type thresholds = {
  executed_rel : float;
  executed_abs : float;
  hit_rate_rel : float;
  wall_rel : float;
  wall_abs : float;
  wall_fails : bool;
}

let default_thresholds =
  {
    executed_rel = 0.10;
    executed_abs = 4.0;
    hit_rate_rel = 0.05;
    wall_rel = 0.50;
    wall_abs = 1.0;
    wall_fails = false;
  }

type severity = Info | Warning | Regression

type finding = {
  severity : severity;
  metric : string;
  baseline : float;
  current : float;
  limit : float;
  detail : string;
}

type verdict = Pass | Warn | Fail | Mismatch

type report = { findings : finding list; verdict : verdict }

let num_field name j = Option.bind (Json.member name j) Json.number

(* v5: the first schema carrying the manifest/experiment identity and
   the journal digest; anything older cannot prove the two runs
   executed the same experiment. *)
let min_schema_version = 5.0

let check_schema j =
  match num_field "schema_version" j with
  | None ->
    Error
      "summary has no schema_version field (schema v1, before the telemetry \
       snapshot): schema too old to compare"
  | Some v when v < min_schema_version ->
    Error
      (Printf.sprintf
         "summary schema version %s is too old to compare (minimum %s)"
         (Json.number_to_string v)
         (Json.number_to_string min_schema_version))
  | Some _ -> Ok ()

(* One comparison: [violated] decides against the limit; findings at or
   below the limit become Info entries so CI logs show what was checked. *)
let check ~severity ~metric ~baseline ~current ~limit ~violated ~detail acc =
  let f =
    if violated then { severity; metric; baseline; current; limit; detail }
    else { severity = Info; metric; baseline; current; limit; detail = "ok" }
  in
  f :: acc

let check_executed t ~metric ~baseline ~current acc =
  let limit = (baseline *. (1.0 +. t.executed_rel)) +. t.executed_abs in
  check ~severity:Regression ~metric ~baseline ~current ~limit
    ~violated:(current > limit)
    ~detail:"more profiler executions than baseline (cache effectiveness regressed)"
    acc

let check_hit_rate t ~metric ~baseline ~current acc =
  let limit = baseline *. (1.0 -. t.hit_rate_rel) in
  check ~severity:Regression ~metric ~baseline ~current ~limit
    ~violated:(current < limit)
    ~detail:"cache-hit rate dropped past threshold" acc

let check_wall t ~metric ~baseline ~current acc =
  let limit = (baseline *. (1.0 +. t.wall_rel)) +. t.wall_abs in
  let severity = if t.wall_fails then Regression else Warning in
  check ~severity ~metric ~baseline ~current ~limit
    ~violated:(current > limit)
    ~detail:"wall time regressed past threshold" acc

(* --- identical-mode support (warm-cache CI gate) ---------------------- *)

(* Keys whose values legitimately differ between two runs of the same
   experiment: timing, utilization, tier traffic (a warm run executes
   nothing), scheduling-dependent job accounting (a resumed run
   replays completed sections from the journal, so where submissions
   and retries land shifts even though every section's output is
   byte-identical), worker count, and run metadata. Everything else —
   schema, scale, manifest/experiment ids, journal digest, section
   structure and section output digests — must match byte-for-byte. *)
let volatile_keys =
  [
    "wall_seconds";
    "engine_wall_seconds";
    "perf";
    "busy_seconds";
    "utilization";
    "telemetry";
    "store";
    "submitted";
    "executed";
    "cache_hits";
    "cache_hit_rate";
    "completed";
    "quarantined";
    "retries";
    "jobs";
    "profiler_calls";
    "workers";
    "faults";
    "rev";
    "generated_unix_time";
    (* schema v7: the serving object is all latency/throughput/traffic
       measurement — volatile by nature; its absolute invariants (lost,
       shed_after_accept) are gated explicitly instead *)
    "serving";
  ]

let rec strip_volatile (j : Json.t) : Json.t =
  match j with
  | Json.Object kvs ->
    Json.Object
      (List.filter_map
         (fun (k, v) ->
           if List.mem k volatile_keys then None
           else Some (k, strip_volatile v))
         kvs)
  | Json.List items -> Json.List (List.map strip_volatile items)
  | other -> other

(* Identity at the top level is an allowlist, not a blocklist: exactly
   the fields that define the experiment and its deterministic output.
   Any other top-level object — the [refine] summary with its
   resume-dependent store rates, or a future schema's addition an older
   gate has never heard of — is volatile for the identity check; its
   absolute invariants get explicit gates instead. (Below the top
   level the blocklist above still applies: section objects mix
   deterministic digests with volatile timings.) *)
let identity_keys = [ "schema_version"; "scale"; "name"; "manifest"; "sections" ]

let strip_top (j : Json.t) : Json.t =
  match j with
  | Json.Object kvs ->
    Json.Object
      (List.filter_map
         (fun (k, v) ->
           if List.mem k identity_keys then Some (k, strip_volatile v)
           else None)
         kvs)
  | other -> strip_volatile other

(* Structural diff of the stripped trees; collects dotted paths of the
   first [limit] mismatches. *)
let diff_paths ~limit a b =
  let out = ref [] and count = ref 0 in
  let emit path what =
    if !count < limit then
      out := (String.concat "." (List.rev path), what) :: !out;
    incr count
  in
  let rec go path (a : Json.t) (b : Json.t) =
    match (a, b) with
    | Json.Object ka, Json.Object kb ->
      List.iter
        (fun (k, va) ->
          match List.assoc_opt k kb with
          | None -> emit (k :: path) "missing from current"
          | Some vb -> go (k :: path) va vb)
        ka;
      List.iter
        (fun (k, _) ->
          if not (List.mem_assoc k ka) then
            emit (k :: path) "absent from baseline")
        kb
    | Json.List la, Json.List lb ->
      if List.length la <> List.length lb then
        emit path
          (Printf.sprintf "list length %d vs %d" (List.length la)
             (List.length lb))
      else
        List.iteri
          (fun i (va, vb) -> go (string_of_int i :: path) va vb)
          (List.combine la lb)
    | a, b -> if a <> b then emit path "value differs"
  in
  go [] a b;
  (List.rev !out, !count)

let sections j =
  match Option.bind (Json.member "sections" j) Json.list_value with
  | None -> []
  | Some items ->
    List.filter_map
      (fun s ->
        match Option.bind (Json.member "section" s) Json.string_value with
        | Some name -> Some (name, s)
        | None -> None)
      items

let manifest_field doc name =
  Option.bind (Json.path [ "manifest"; name ] doc) Json.string_value

let compare_summaries ?(thresholds = default_thresholds)
    ?(require_identical = false) ?min_store_hit_rate ?min_speedup
    ?min_coalesce ?max_p99_ms ?min_rps ?max_refine_error
    ?min_refine_hit_rate ~baseline ~current () =
  let t = thresholds in
  (* Same experiment? Two summaries with different experiment ids were
     produced by manifests that measure different things — comparing
     their numbers would gate CI on an apples-to-oranges diff, so this
     is a distinct verdict, not a threshold failure. A different
     manifest id under the same experiment id (e.g. the chaos manifest:
     same corpus/sections, different fault injection) is fine and only
     worth a note. *)
  match (manifest_field baseline "experiment", manifest_field current "experiment") with
  | Some b, Some c when b <> c ->
    {
      findings =
        [
          {
            severity = Regression;
            metric = "manifest.experiment";
            baseline = 0.0;
            current = 1.0;
            limit = 0.0;
            detail =
              Printf.sprintf
                "different experiments: baseline %s vs current %s — these \
                 runs are not comparable"
                (String.sub b 0 (min 12 (String.length b)))
                (String.sub c 0 (min 12 (String.length c)));
          };
        ];
      verdict = Mismatch;
    }
  | _ ->
  let acc = ref [] in
  (match (manifest_field baseline "id", manifest_field current "id") with
  | Some b, Some c when b <> c ->
    acc :=
      {
        severity = Info;
        metric = "manifest.id";
        baseline = 0.0;
        current = 1.0;
        limit = 0.0;
        detail =
          "manifest ids differ (same experiment, different execution \
           configuration)";
      }
      :: !acc
  | _ -> ());
  (* identical mode declares the counter fields volatile (a resumed or
     warm run legitimately shifts memo hits into store hits and moves
     submissions between sections), so gating them against relative
     thresholds would contradict the mode's own contract — the identity
     check and the absolute invariants below are the gate instead. *)
  let gate_thresholds = not require_identical in
  let top name checker =
    match (num_field name baseline, num_field name current) with
    | Some b, Some c -> acc := checker t ~metric:name ~baseline:b ~current:c !acc
    | _ -> ()
  in
  if gate_thresholds then begin
    top "executed" check_executed;
    top "cache_hit_rate" check_hit_rate;
    top "engine_wall_seconds" check_wall
  end;
  (* a submitted-count change is not a regression, but it explains
     executed-count drift, so surface it *)
  (match (num_field "submitted" baseline, num_field "submitted" current) with
  | Some b, Some c when b <> c ->
    acc :=
      {
        severity = Info;
        metric = "submitted";
        baseline = b;
        current = c;
        limit = b;
        detail = "workload size changed — regenerate the baseline if intended";
      }
      :: !acc
  | _ -> ());
  (* fault accounting (schema v3): a lost job is an absolute invariant
     violation, and quarantining more jobs than the baseline means the
     engine's recovery regressed *)
  let fault_num doc name = Option.bind (Json.path [ "faults"; name ] doc) Json.number in
  (match fault_num current "lost" with
  | Some l ->
    acc :=
      check ~severity:Regression ~metric:"faults.lost" ~baseline:0.0
        ~current:l ~limit:0.0 ~violated:(l <> 0.0)
        ~detail:"jobs lost (completed + quarantined <> submitted)" !acc
  | None -> ());
  (match fault_num current "quarantined_jobs" with
  | Some c ->
    let b = Option.value (fault_num baseline "quarantined_jobs") ~default:0.0 in
    acc :=
      check ~severity:Regression ~metric:"faults.quarantined_jobs" ~baseline:b
        ~current:c ~limit:b ~violated:(c > b)
        ~detail:"more quarantined jobs than baseline (recovery regressed)" !acc
  | None -> ());
  (* store tier (schema v4): hit-rate regressions against the baseline,
     and an optional absolute floor for the warm-cache CI job *)
  let store_num doc name =
    Option.bind (Json.path [ "store"; name ] doc) Json.number
  in
  (match (store_num baseline "hit_rate", store_num current "hit_rate") with
  | Some b, Some c when b > 0.0 && gate_thresholds ->
    acc := check_hit_rate t ~metric:"store.hit_rate" ~baseline:b ~current:c !acc
  | _ -> ());
  (match min_store_hit_rate with
  | None -> ()
  | Some floor ->
    let c = Option.value (store_num current "hit_rate") ~default:0.0 in
    acc :=
      check ~severity:Regression ~metric:"store.hit_rate" ~baseline:floor
        ~current:c ~limit:floor ~violated:(c < floor)
        ~detail:
          "store hit rate below required floor (warm run re-profiled too much)"
        !acc);
  (* simulator throughput (schema v6): [perf.blocks_per_sec] is simulated
     blocks over cumulative in-simulator core-seconds, so it is far less
     runner-noise-sensitive than wall time. The gate fails below
     [min_speedup] x baseline and warns below parity. Read before
     stripping — the perf object is volatile for the identity check
     (its wall breakdown genuinely varies) but is exactly what this
     gate exists to compare. *)
  (match min_speedup with
  | None -> ()
  | Some floor ->
    let bps doc =
      Option.bind (Json.path [ "perf"; "blocks_per_sec" ] doc) Json.number
    in
    (match (bps baseline, bps current) with
    | Some b, Some _ when b = 0.0 ->
      (* present but zero: a zero-block baseline run (empty corpus or
         fully warm store) cannot anchor a ratio — distinct from a
         pre-v6 summary that lacks the field entirely *)
      acc :=
        {
          severity = Regression;
          metric = "perf.blocks_per_sec";
          baseline = 0.0;
          current = 0.0;
          limit = floor;
          detail =
            "baseline perf.blocks_per_sec is zero (zero-block run?) — \
             cannot compute a throughput ratio; regenerate the baseline \
             from a run that simulates blocks";
        }
        :: !acc
    | Some b, Some c when b > 0.0 ->
      let ratio = c /. b in
      if ratio < floor then
        acc :=
          {
            severity = Regression;
            metric = "perf.blocks_per_sec";
            baseline = b;
            current = c;
            limit = b *. floor;
            detail =
              Printf.sprintf
                "simulator throughput regressed to %.2fx baseline (floor %.2fx)"
                ratio floor;
          }
          :: !acc
      else if ratio < 1.0 then
        acc :=
          {
            severity = Warning;
            metric = "perf.blocks_per_sec";
            baseline = b;
            current = c;
            limit = b;
            detail =
              Printf.sprintf
                "simulator throughput at %.2fx baseline (above the %.2fx \
                 floor, below parity)"
                ratio floor;
          }
          :: !acc
      else
        acc :=
          check ~severity:Regression ~metric:"perf.blocks_per_sec" ~baseline:b
            ~current:c ~limit:(b *. floor) ~violated:false ~detail:"ok" !acc
    | _ ->
      acc :=
        {
          severity = Regression;
          metric = "perf.blocks_per_sec";
          baseline = 0.0;
          current = 0.0;
          limit = floor;
          detail =
            "perf.blocks_per_sec missing (summary predates schema v6?) — \
             cannot gate simulator throughput";
        }
        :: !acc));
  (* serving object (schema v7, written by bhive_load): the absolute
     invariants hold for any load run — an accepted request is always
     answered (lost = 0) and, absent client deadlines and drains,
     never shed after acceptance. The optional floors gate the
     service-level numbers the CI serve job cares about. *)
  let serving_num doc name =
    Option.bind (Json.path [ "serving"; name ] doc) Json.number
  in
  (match serving_num current "lost" with
  | Some l ->
    acc :=
      check ~severity:Regression ~metric:"serving.lost" ~baseline:0.0
        ~current:l ~limit:0.0 ~violated:(l <> 0.0)
        ~detail:
          "requests lost (sent but never answered) — accept-then-hang or \
           connection drop under load"
        !acc
  | None -> ());
  (match serving_num current "shed_after_accept" with
  | Some s ->
    acc :=
      check ~severity:Regression ~metric:"serving.shed_after_accept"
        ~baseline:0.0 ~current:s ~limit:0.0 ~violated:(s <> 0.0)
        ~detail:
          "requests shed after admission (deadline expiry or drain cut) — \
           admission control let in more than the server could finish"
        !acc
  | None -> ());
  (match min_coalesce with
  | None -> ()
  | Some floor -> (
    match serving_num current "coalesce_ratio" with
    | Some c ->
      acc :=
        check ~severity:Regression ~metric:"serving.coalesce_ratio"
          ~baseline:floor ~current:c ~limit:floor ~violated:(c < floor)
          ~detail:
            "coalesce ratio below floor (concurrent duplicate requests are \
             not sharing in-flight runs)"
          !acc
    | None ->
      acc :=
        {
          severity = Regression;
          metric = "serving.coalesce_ratio";
          baseline = floor;
          current = 0.0;
          limit = floor;
          detail =
            "serving.coalesce_ratio missing (not a bhive_load summary?) — \
             cannot gate coalescing";
        }
        :: !acc));
  (* serving throughput (schema v8): [serving.requests_per_sec] is
     answered requests over replay wall time — the end-to-end daemon
     number the serve-perf CI job gates. Like the simulator gate, the
     floor is a ratio against the checked-in baseline, and a baseline
     that cannot anchor the ratio (zero, missing field, or no serving
     object at all) is a clean failure, not a silent pass. *)
  (match min_rps with
  | None -> ()
  | Some floor ->
    let rps doc = serving_num doc "requests_per_sec" in
    (match (rps baseline, rps current) with
    | Some b, Some _ when b = 0.0 ->
      acc :=
        {
          severity = Regression;
          metric = "serving.requests_per_sec";
          baseline = 0.0;
          current = 0.0;
          limit = floor;
          detail =
            "baseline serving.requests_per_sec is zero — cannot compute a \
             throughput ratio; regenerate the serving baseline from a real \
             load run";
        }
        :: !acc
    | Some b, Some c when b > 0.0 ->
      let ratio = c /. b in
      if ratio < floor then
        acc :=
          {
            severity = Regression;
            metric = "serving.requests_per_sec";
            baseline = b;
            current = c;
            limit = b *. floor;
            detail =
              Printf.sprintf
                "serving throughput regressed to %.2fx baseline (floor %.2fx)"
                ratio floor;
          }
          :: !acc
      else
        acc :=
          check ~severity:Regression ~metric:"serving.requests_per_sec"
            ~baseline:b ~current:c ~limit:(b *. floor) ~violated:false
            ~detail:"ok" !acc
    | _ ->
      acc :=
        {
          severity = Regression;
          metric = "serving.requests_per_sec";
          baseline = 0.0;
          current = 0.0;
          limit = floor;
          detail =
            "serving.requests_per_sec missing (not a schema v8 bhive_load \
             summary?) — cannot gate serving throughput";
        }
        :: !acc));
  (match max_p99_ms with
  | None -> ()
  | Some ceiling -> (
    match serving_num current "p99_ms" with
    | Some c ->
      acc :=
        check ~severity:Regression ~metric:"serving.p99_ms" ~baseline:ceiling
          ~current:c ~limit:ceiling ~violated:(c > ceiling)
          ~detail:"p99 latency above ceiling" !acc
    | None ->
      acc :=
        {
          severity = Regression;
          metric = "serving.p99_ms";
          baseline = ceiling;
          current = 0.0;
          limit = ceiling;
          detail =
            "serving.p99_ms missing (not a bhive_load summary?) — cannot \
             gate tail latency";
        }
        :: !acc));
  (* descriptor refinement (schema v9, the [refine] summary object):
     absolute gates on the search outcome. The refine numbers only
     exist from schema v9 on, so either flag on an older summary is a
     clean failure — the same refusal the schema floor applies to
     pre-v5 documents, just stated per-gate. *)
  let refine_num doc name =
    Option.bind (Json.path [ "refine"; name ] doc) Json.number
  in
  let refine_gate ~metric ~limit ~field ~violated ~detail =
    match num_field "schema_version" current with
    | Some v when v >= 9.0 -> (
      match refine_num current field with
      | Some c ->
        acc :=
          check ~severity:Regression ~metric ~baseline:limit ~current:c ~limit
            ~violated:(violated c) ~detail !acc
      | None ->
        acc :=
          {
            severity = Regression;
            metric;
            baseline = limit;
            current = 0.0;
            limit;
            detail =
              "refine object missing from the current summary (manifest has \
               no refine section?) — cannot gate refinement";
          }
          :: !acc)
    | _ ->
      acc :=
        {
          severity = Regression;
          metric;
          baseline = limit;
          current = 0.0;
          limit;
          detail =
            "refine gates require a schema v9 summary — regenerate it with \
             the current harness";
        }
        :: !acc
  in
  (match max_refine_error with
  | None -> ()
  | Some ceiling ->
    refine_gate ~metric:"refine.final_error" ~limit:ceiling
      ~field:"final_error"
      ~violated:(fun c -> c > ceiling)
      ~detail:
        "refinement final error above ceiling (the search failed to recover \
         the descriptor)");
  (match min_refine_hit_rate with
  | None -> ()
  | Some floor ->
    refine_gate ~metric:"refine.store_hit_rate" ~limit:floor
      ~field:"store_hit_rate"
      ~violated:(fun c -> c < floor)
      ~detail:
        "candidate evaluations re-simulated too many blocks (incremental \
         re-simulation through block generations regressed)");
  (* identical mode: after stripping volatile fields, the two summaries
     must be structurally equal — the warm-run byte-identity gate *)
  if require_identical then begin
    let a = strip_top baseline and b = strip_top current in
    if a = b then
      acc :=
        check ~severity:Regression ~metric:"identical" ~baseline:0.0
          ~current:0.0 ~limit:0.0 ~violated:false ~detail:"ok" !acc
    else begin
      let paths, total = diff_paths ~limit:16 a b in
      List.iter
        (fun (path, what) ->
          acc :=
            {
              severity = Regression;
              metric = "identical:" ^ path;
              baseline = 0.0;
              current = 1.0;
              limit = 0.0;
              detail = what;
            }
            :: !acc)
        paths;
      if total > 16 then
        acc :=
          {
            severity = Regression;
            metric = "identical";
            baseline = 0.0;
            current = float_of_int total;
            limit = 0.0;
            detail = Printf.sprintf "%d differing paths in total" total;
          }
          :: !acc
    end
  end;
  let base_sections = sections baseline in
  let cur_sections = sections current in
  List.iter
    (fun (name, bs) ->
      match List.assoc_opt name cur_sections with
      | None ->
        acc :=
          {
            severity = Regression;
            metric = name;
            baseline = 1.0;
            current = 0.0;
            limit = 1.0;
            detail = "section present in baseline but missing from current run";
          }
          :: !acc
      | Some cs ->
        let sec field checker =
          match (num_field field bs, num_field field cs) with
          | Some b, Some c ->
            acc :=
              checker t ~metric:(name ^ "." ^ field) ~baseline:b ~current:c
                !acc
          | _ -> ()
        in
        if gate_thresholds then begin
          sec "executed" check_executed;
          sec "cache_hit_rate" check_hit_rate;
          sec "wall_seconds" check_wall
        end)
    base_sections;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name base_sections) then
        acc :=
          {
            severity = Info;
            metric = name;
            baseline = 0.0;
            current = 1.0;
            limit = 0.0;
            detail = "new section (absent from baseline)";
          }
          :: !acc)
    cur_sections;
  let findings = List.rev !acc in
  let verdict =
    if List.exists (fun f -> f.severity = Regression) findings then Fail
    else if List.exists (fun f -> f.severity = Warning) findings then Warn
    else Pass
  in
  { findings; verdict }

let severity_tag = function
  | Info -> "info"
  | Warning -> "WARN"
  | Regression -> "FAIL"

let verdict_tag = function
  | Pass -> "PASS"
  | Warn -> "PASS (with warnings)"
  | Fail -> "FAIL"
  | Mismatch -> "MISMATCH (different experiment)"

let pp_report fmt r =
  List.iter
    (fun f ->
      if f.severity <> Info || f.detail <> "ok" then
        Format.fprintf fmt "%-4s %-32s baseline=%s current=%s limit=%s  %s@."
          (severity_tag f.severity) f.metric
          (Json.number_to_string f.baseline)
          (Json.number_to_string f.current)
          (Json.number_to_string f.limit)
          f.detail)
    r.findings;
  let checked = List.length r.findings in
  let bad =
    List.length (List.filter (fun f -> f.severity = Regression) r.findings)
  in
  let warned =
    List.length (List.filter (fun f -> f.severity = Warning) r.findings)
  in
  Format.fprintf fmt "bench-diff: %s (%d comparisons, %d regressions, %d warnings)@."
    (verdict_tag r.verdict) checked bad warned

let exit_code r =
  match r.verdict with Fail -> 1 | Mismatch -> 3 | Pass | Warn -> 0
