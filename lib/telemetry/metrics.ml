(* See metrics.mli. *)

type counter = { c_name : string; cell : int Atomic.t }

let n_buckets = 44
let bias = 21

type histogram = {
  h_name : string;
  lock : Mutex.t;
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
}

let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; cell = Atomic.make 0 } in
        Hashtbl.add counters name c;
        c)

let incr c = ignore (Atomic.fetch_and_add c.cell 1)
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell
let counter_name c = c.c_name

let histogram name =
  with_registry (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            lock = Mutex.create ();
            buckets = Array.make n_buckets 0;
            h_count = 0;
            h_sum = 0.0;
          }
        in
        Hashtbl.add histograms name h;
        h)

(* frexp gives v = m * 2^e with m in [0.5, 1), i.e. 2^(e-1) <= v < 2^e. *)
let bucket_of v =
  if v <= 0.0 then 0
  else
    let _, e = Float.frexp v in
    Int.max 0 (Int.min (n_buckets - 1) (e + bias))

let upper_bound i = Float.ldexp 1.0 (i - bias)

let with_histogram h f =
  Mutex.lock h.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.lock) f

let observe h v =
  with_histogram h (fun () ->
      let b = bucket_of v in
      h.buckets.(b) <- h.buckets.(b) + 1;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v)

let count h = with_histogram h (fun () -> h.h_count)
let sum h = with_histogram h (fun () -> h.h_sum)

let quantile h q =
  with_histogram h (fun () ->
      if h.h_count = 0 then 0.0
      else begin
        let target = Float.max 1.0 (q *. float_of_int h.h_count) in
        let result = ref (upper_bound (n_buckets - 1)) in
        let cum = ref 0 in
        (try
           for i = 0 to n_buckets - 1 do
             cum := !cum + h.buckets.(i);
             if float_of_int !cum >= target then begin
               result := upper_bound i;
               raise Exit
             end
           done
         with Exit -> ());
        !result
      end)

let bucket_counts h =
  with_histogram h (fun () ->
      let acc = ref [] in
      for i = n_buckets - 1 downto 0 do
        if h.buckets.(i) > 0 then acc := (upper_bound i, h.buckets.(i)) :: !acc
      done;
      !acc)

let snapshot () =
  let cs, hs =
    with_registry (fun () ->
        ( Hashtbl.fold (fun _ c acc -> c :: acc) counters [],
          Hashtbl.fold (fun _ h acc -> h :: acc) histograms [] ))
  in
  let cs = List.sort (fun a b -> compare a.c_name b.c_name) cs in
  let hs = List.sort (fun a b -> compare a.h_name b.h_name) hs in
  let counter_fields =
    List.map (fun c -> (c.c_name, Json.Number (float_of_int (value c)))) cs
  in
  let histogram_fields =
    List.map
      (fun h ->
        ( h.h_name,
          Json.Object
            [
              ("count", Json.Number (float_of_int (count h)));
              ("sum", Json.Number (sum h));
              ("p50", Json.Number (quantile h 0.50));
              ("p90", Json.Number (quantile h 0.90));
              ("p99", Json.Number (quantile h 0.99));
            ] ))
      hs
  in
  Json.Object
    [
      ("counters", Json.Object counter_fields);
      ("histograms", Json.Object histogram_fields);
    ]

let reset () =
  with_registry (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter
        (fun _ h ->
          Mutex.lock h.lock;
          Array.fill h.buckets 0 n_buckets 0;
          h.h_count <- 0;
          h.h_sum <- 0.0;
          Mutex.unlock h.lock)
        histograms)
