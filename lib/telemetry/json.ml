(* See json.mli. The parser is a plain recursive-descent scanner over
   the input string; it exists so the bench-diff gate can read
   bench_summary.json without pulling a JSON package into the image. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_string ?(compact = false) t =
  let buf = Buffer.create 256 in
  let key k =
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape k);
    Buffer.add_string buf (if compact then "\":" else "\": ")
  in
  let rec go indent t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Number v -> Buffer.add_string buf (number_to_string v)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | Object [] -> Buffer.add_string buf "{}"
    | List items ->
      if compact then begin
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go indent v)
          items;
        Buffer.add_char buf ']'
      end
      else begin
        let inner = indent + 2 in
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (String.make inner ' ');
            go inner v)
          items;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_char buf ']'
      end
    | Object kvs ->
      if compact then begin
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            key k;
            go indent v)
          kvs;
        Buffer.add_char buf '}'
      end
      else begin
        let inner = indent + 2 in
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (String.make inner ' ');
            key k;
            go inner v)
          kvs;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_char buf '}'
      end
  in
  go 0 t;
  Buffer.contents buf

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      v
    end
    else fail "invalid literal"
  in
  (* Exactly four hex digits after the 'u' at !pos; no leading signs
     or underscores (which [int_of_string "0x..."] would accept).
     Leaves !pos on the last digit. *)
  let parse_hex4 () =
    if !pos + 4 >= n then fail "truncated \\u escape";
    let v = ref 0 in
    for i = 1 to 4 do
      let d =
        match s.[!pos + i] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid \\u escape (expected 4 hex digits)"
      in
      v := (!v lsl 4) lor d
    done;
    pos := !pos + 4;
    !v
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents buf
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let hi = parse_hex4 () in
          let code =
            if hi >= 0xD800 && hi <= 0xDBFF then begin
              (* surrogate pair: the low half must follow immediately
                 as another \u escape; the two combine into one
                 supplementary-plane code point (4-byte UTF-8) *)
              if !pos + 2 < n && s.[!pos + 1] = '\\' && s.[!pos + 2] = 'u'
              then begin
                pos := !pos + 2;
                let lo = parse_hex4 () in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
                else fail "invalid low surrogate in \\u pair"
              end
              else fail "unpaired high surrogate"
            end
            else if hi >= 0xDC00 && hi <= 0xDFFF then
              fail "unpaired low surrogate"
            else hi
          in
          add_utf8 buf code
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "invalid number"
  in
  (* A depth bound turns pathological nesting ("[[[[...") into a
     Parse_error instead of a stack overflow — this parser reads
     machine-generated summaries but also imported store dumps, which
     are untrusted. *)
  let max_depth = 512 in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Object []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Object (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Number (parse_number ())
  in
  try
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing data at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error m -> invalid_arg ("Json.parse: " ^ m)

let member k = function Object kvs -> List.assoc_opt k kvs | _ -> None

let path keys v =
  List.fold_left
    (fun acc k -> match acc with None -> None | Some v -> member k v)
    (Some v) keys

let number = function Number v -> Some v | _ -> None
let string_value = function String s -> Some s | _ -> None
let list_value = function List l -> Some l | _ -> None
