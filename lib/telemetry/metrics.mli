(** Process-wide metrics: named monotonic counters and log-scale
    latency histograms.

    Unlike {!Trace} spans, metrics are always on — an increment is one
    atomic add, an observation one short mutex-protected bucket update
    — and they are aggregated into [bench_summary.json] by the bench
    harness via {!snapshot}. Names are flat dotted strings
    ("engine.executed", "profiler.rejected.unstable"); registering the
    same name twice returns the same instrument. *)

type counter

(** Get or create the counter registered under [name]. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

type histogram

(** Get or create a histogram under [name]. Buckets are powers of two:
    bucket [i] holds values in [[2^(i-22), 2^(i-21))], clamped at both
    ends — at one-second units this spans ~0.25µs to ~4M seconds. *)
val histogram : string -> histogram

val observe : histogram -> float -> unit
val count : histogram -> int
val sum : histogram -> float

(** [quantile h q] returns the upper bound of the bucket containing
    the [q]-quantile observation (0 when empty). Accurate to one
    power-of-two bucket, which is all a regression gate needs. *)
val quantile : histogram -> float -> float

(** Non-empty buckets as (upper bound, count), ascending. *)
val bucket_counts : histogram -> (float * int) list

(** All registered instruments as
    [{"counters": {..}, "histograms": {name: {count,sum,p50,p90,p99}}}],
    names sorted. *)
val snapshot : unit -> Json.t

(** Zero every registered instrument (registrations survive — module
    initialisers hold instrument handles). Test hook. *)
val reset : unit -> unit
