(* See trace.mli. The disabled fast path must not allocate: [span]
   performs exactly one Atomic.get and calls the body directly, and
   [Monotonic_clock.now] is a [@noalloc] external with an unboxed
   return, so even the enabled path's clock reads stay off the minor
   heap. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type sink = { write : string -> unit; close : unit -> unit }

let current : sink option Atomic.t = Atomic.make None
let t0_ns : int64 Atomic.t = Atomic.make 0L
let next_id = Atomic.make 1
let stack_key = Domain.DLS.new_key (fun () -> ref ([] : int list))

let now_ns () = Monotonic_clock.now ()

let enabled () =
  match Atomic.get current with Some _ -> true | None -> false

let uninstall () =
  match Atomic.exchange current None with None -> () | Some s -> s.close ()

let install_custom ~write ~close =
  uninstall ();
  Atomic.set t0_ns (now_ns ());
  Atomic.set current (Some { write; close })

let install_file path =
  let oc = open_out path in
  let lock = Mutex.create () in
  install_custom
    ~write:(fun line ->
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          output_string oc line;
          output_char oc '\n'))
    ~close:(fun () -> close_out oc)

let init_from_env () =
  match Sys.getenv_opt "BHIVE_TRACE" with
  | None | Some "" -> ()
  | Some path ->
    install_file path;
    at_exit uninstall

let value_to_json = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Number (float_of_int i)
  | Float f -> Json.Number f
  | Str s -> Json.String s

let emit s ~kind ~name ~id ~parent ~ts_ns ~dur_ns ~attrs =
  let us ns = Int64.to_float ns /. 1e3 in
  let base =
    [
      ("type", Json.String kind);
      ("name", Json.String name);
      ("id", Json.Number (float_of_int id));
      ("parent", Json.Number (float_of_int parent));
      ("domain", Json.Number (float_of_int (Domain.self () :> int)));
      ("ts_us", Json.Number (us (Int64.sub ts_ns (Atomic.get t0_ns))));
    ]
  in
  let base =
    match dur_ns with
    | None -> base
    | Some d -> base @ [ ("dur_us", Json.Number (us d)) ]
  in
  let fields =
    match attrs with
    | [] -> base
    | attrs ->
      base
      @ [
          ( "attrs",
            Json.Object (List.map (fun (k, v) -> (k, value_to_json v)) attrs) );
        ]
  in
  s.write (Json.to_string ~compact:true (Json.Object fields))

let current_span () =
  match !(Domain.DLS.get stack_key) with [] -> 0 | id :: _ -> id

let span ?parent ?attrs name f =
  match Atomic.get current with
  | None -> f ()
  | Some s ->
    let stack = Domain.DLS.get stack_key in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent =
      match parent with
      | Some p -> p
      | None -> ( match !stack with [] -> 0 | p :: _ -> p)
    in
    stack := id :: !stack;
    let start_ns = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (now_ns ()) start_ns in
        (match !stack with _ :: tl -> stack := tl | [] -> ());
        let attrs = match attrs with None -> [] | Some mk -> mk () in
        emit s ~kind:"span" ~name ~id ~parent ~ts_ns:start_ns
          ~dur_ns:(Some dur) ~attrs)
      f

let instant ?attrs name =
  match Atomic.get current with
  | None -> ()
  | Some s ->
    let id = Atomic.fetch_and_add next_id 1 in
    let attrs = match attrs with None -> [] | Some mk -> mk () in
    emit s ~kind:"instant" ~name ~id ~parent:(current_span ())
      ~ts_ns:(now_ns ()) ~dur_ns:None ~attrs
