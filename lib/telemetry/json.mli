(** A minimal JSON tree with a printer and a parser.

    The repository deliberately carries no external JSON dependency;
    this module covers exactly what the telemetry layer needs:
    constructing trace records and bench summaries, printing them
    compactly (one JSONL record per line) or pretty (the
    [bench_summary.json] format), and parsing machine-generated
    summaries back for {!Bench_diff}. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

(** Escape a string for inclusion between JSON double quotes. *)
val escape : string -> string

(** Render a number the way every emitter in this repo does: integers
    without a fractional part, everything else with [%.6g]; non-finite
    values become [null]. *)
val number_to_string : float -> string

(** [to_string v] pretty-prints with two-space indentation (the
    [bench_summary.json] shape). [~compact:true] prints on a single
    line with no spaces — the JSONL trace-record shape. *)
val to_string : ?compact:bool -> t -> string

(** Parse a complete JSON document. Trailing garbage is an error.
    [\u] escapes require exactly four hex digits and are decoded to
    UTF-8; surrogate pairs combine into one supplementary-plane code
    point (4-byte UTF-8), and unpaired surrogates are an error.
    Nesting deeper than 512 levels is an error rather than a stack
    overflow. *)
val parse : string -> (t, string) result

(** [parse] or [invalid_arg]. *)
val parse_exn : string -> t

(** Field lookup on [Object]; [None] on anything else. *)
val member : string -> t -> t option

(** Nested field lookup: [path ["a"; "b"] v = member "b" (member "a" v)]. *)
val path : string list -> t -> t option

val number : t -> float option
val string_value : t -> string option
val list_value : t -> t list option
