(** The bench regression gate: compare two [bench_summary.json]
    documents (a checked-in baseline and a fresh run) and decide
    whether the perf trajectory regressed.

    Three families of metrics are compared, at the top level and per
    section (matched by section name):

    - {b executed} job counts — more profiler executions than the
      baseline means the memo cache or the batch plan regressed; the
      gate fails when [current > baseline * (1 + executed_rel) +
      executed_abs]. Counts are deterministic at a fixed
      [BHIVE_SCALE], so the slack only absorbs intentional drift.
    - {b cache-hit rate} — fails when
      [current < baseline * (1 - hit_rate_rel)].
    - {b wall seconds} — noisy on shared CI runners, so violations of
      [current > baseline * (1 + wall_rel) + wall_abs] are warnings
      unless [wall_fails] is set.

    A section present in the baseline but missing from the current
    summary is a failure; a new section is reported as info. All
    comparisons use strict inequality: a value exactly at its limit
    passes. *)

(** Oldest summary schema the comparison understands (2.0, the first
    with a telemetry snapshot). Schema v3 added the [faults] object;
    v2 summaries still compare (the fault checks are skipped). *)
val min_schema_version : float

(** Reject a summary whose [schema_version] predates
    {!min_schema_version} — or is absent entirely (schema v1) — with a
    "schema too old" message suitable for the CLI's exit-2 path. *)
val check_schema : Json.t -> (unit, string) result

type thresholds = {
  executed_rel : float;  (** relative slack on executed counts *)
  executed_abs : float;  (** absolute slack on executed counts *)
  hit_rate_rel : float;  (** relative drop allowed on cache-hit rate *)
  wall_rel : float;  (** relative slack on wall seconds *)
  wall_abs : float;  (** absolute slack on wall seconds *)
  wall_fails : bool;  (** wall violations fail instead of warning *)
}

(** [executed_rel = 0.10], [executed_abs = 4], [hit_rate_rel = 0.05],
    [wall_rel = 0.50], [wall_abs = 1.0], [wall_fails = false]. *)
val default_thresholds : thresholds

type severity = Info | Warning | Regression

type finding = {
  severity : severity;
  metric : string;  (** e.g. "table5.executed" or "engine_wall_seconds" *)
  baseline : float;
  current : float;
  limit : float;  (** the violated (or respected) bound *)
  detail : string;
}

type verdict = Pass | Warn | Fail

type report = { findings : finding list; verdict : verdict }

(** Remove fields that legitimately differ between two runs of the
    same workload (wall times, utilization, tier traffic, telemetry
    snapshot, run metadata) from a summary, recursively. What remains
    must be byte-identical between a cold and a warm run. *)
val strip_volatile : Json.t -> Json.t

(** [compare_summaries ?thresholds ?require_identical
    ?min_store_hit_rate ~baseline ~current ()].

    Beyond the threshold checks above, schema v4 summaries carry a
    [store] object: its [hit_rate] is compared like the cache-hit rate
    whenever the baseline consulted a store. [?min_store_hit_rate]
    additionally imposes an absolute floor on the {e current} run's
    store hit rate (the warm-cache CI gate). [?require_identical]
    demands the two summaries be structurally equal after
    {!strip_volatile}; each differing path fails as
    [identical:<path>]. *)
val compare_summaries :
  ?thresholds:thresholds ->
  ?require_identical:bool ->
  ?min_store_hit_rate:float ->
  baseline:Json.t -> current:Json.t -> unit -> report

val pp_report : Format.formatter -> report -> unit

(** CI exit code: [Pass]/[Warn] → 0, [Fail] → 1. *)
val exit_code : report -> int
