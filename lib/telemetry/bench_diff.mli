(** The bench regression gate: compare two [bench_summary.json]
    documents (a checked-in baseline and a fresh run) and decide
    whether the perf trajectory regressed.

    Three families of metrics are compared, at the top level and per
    section (matched by section name):

    - {b executed} job counts — more profiler executions than the
      baseline means the memo cache or the batch plan regressed; the
      gate fails when [current > baseline * (1 + executed_rel) +
      executed_abs]. Counts are deterministic at a fixed
      [BHIVE_SCALE], so the slack only absorbs intentional drift.
    - {b cache-hit rate} — fails when
      [current < baseline * (1 - hit_rate_rel)].
    - {b wall seconds} — noisy on shared CI runners, so violations of
      [current > baseline * (1 + wall_rel) + wall_abs] are warnings
      unless [wall_fails] is set.

    A section present in the baseline but missing from the current
    summary is a failure; a new section is reported as info. All
    comparisons use strict inequality: a value exactly at its limit
    passes. *)

(** Oldest summary schema the comparison understands (5.0, the first
    carrying the manifest/experiment identity and journal digest).
    Older summaries cannot answer "did these two runs execute the same
    experiment?", so they are rejected rather than half-compared. *)
val min_schema_version : float

(** Reject a summary whose [schema_version] predates
    {!min_schema_version} — or is absent entirely (schema v1) — with a
    "schema too old" message suitable for the CLI's exit-2 path. *)
val check_schema : Json.t -> (unit, string) result

type thresholds = {
  executed_rel : float;  (** relative slack on executed counts *)
  executed_abs : float;  (** absolute slack on executed counts *)
  hit_rate_rel : float;  (** relative drop allowed on cache-hit rate *)
  wall_rel : float;  (** relative slack on wall seconds *)
  wall_abs : float;  (** absolute slack on wall seconds *)
  wall_fails : bool;  (** wall violations fail instead of warning *)
}

(** [executed_rel = 0.10], [executed_abs = 4], [hit_rate_rel = 0.05],
    [wall_rel = 0.50], [wall_abs = 1.0], [wall_fails = false]. *)
val default_thresholds : thresholds

type severity = Info | Warning | Regression

type finding = {
  severity : severity;
  metric : string;  (** e.g. "table5.executed" or "engine_wall_seconds" *)
  baseline : float;
  current : float;
  limit : float;  (** the violated (or respected) bound *)
  detail : string;
}

(** [Mismatch] is the distinct verdict for two summaries whose
    [manifest.experiment] ids differ: the runs measured {e different
    experiments}, so no threshold comparison of their numbers is
    meaningful. It maps to its own exit code. *)
type verdict = Pass | Warn | Fail | Mismatch

type report = { findings : finding list; verdict : verdict }

(** Remove fields that legitimately differ between two runs of the
    same workload (wall times, utilization, tier traffic, telemetry
    snapshot, run metadata) from a summary, recursively. What remains
    must be byte-identical between a cold and a warm run. *)
val strip_volatile : Json.t -> Json.t

(** What [?require_identical] actually compares: at the top level only
    an allowlist of identity-defining fields survives ([schema_version],
    [scale], [name], [manifest], [sections]) — an unknown extra
    top-level object (the schema-v9 [refine] summary, or anything a
    future schema adds) is volatile rather than a mismatch — and below
    the top level {!strip_volatile} applies. *)
val strip_top : Json.t -> Json.t

(** [compare_summaries ?thresholds ?require_identical
    ?min_store_hit_rate ~baseline ~current ()].

    Beyond the threshold checks above, schema v4 summaries carry a
    [store] object: its [hit_rate] is compared like the cache-hit rate
    whenever the baseline consulted a store. [?min_store_hit_rate]
    additionally imposes an absolute floor on the {e current} run's
    store hit rate (the warm-cache CI gate). [?require_identical]
    demands the two summaries be structurally equal after
    {!strip_volatile}; each differing path fails as
    [identical:<path>]. In identical mode the relative threshold
    checks on counters are skipped — those fields are volatile by the
    mode's own contract (a warm or resumed run shifts memo hits into
    store hits) — while the absolute invariants ([faults.lost],
    quarantine regressions, the store-hit-rate floor) still gate.

    [?min_speedup] gates simulator throughput (schema v6):
    [perf.blocks_per_sec] — simulated blocks over cumulative
    in-simulator core-seconds, far less runner-noise-sensitive than
    wall time — must be at least [min_speedup] x the baseline's, or
    the gate fails; a ratio between [min_speedup] and parity is a
    warning. A summary without the field fails the gate outright. A
    baseline whose [perf.blocks_per_sec] is zero (a zero-block run)
    also fails: no throughput ratio is computable from it.

    Summaries written by [bhive_load] (schema v7) carry a [serving]
    object. Whenever the current summary has one, two absolute
    invariants gate unconditionally: [serving.lost] and
    [serving.shed_after_accept] must both be zero — a request the
    server accepted must be answered, not dropped. [?min_coalesce]
    additionally imposes a floor on [serving.coalesce_ratio] (the CI
    serve job's duplicate-sharing gate) and [?max_p99_ms] a ceiling on
    [serving.p99_ms]; either flag fails outright when the current
    summary lacks the field.

    [?min_rps] gates end-to-end serving throughput (schema v8):
    [serving.requests_per_sec] must be at least [min_rps] x the
    baseline's. Like [?min_speedup], a baseline that cannot anchor the
    ratio — a zero value, a missing field, or no [serving] object at
    all in either summary — fails cleanly rather than passing
    silently.

    [?max_refine_error] and [?min_refine_hit_rate] gate the
    descriptor-refinement summary (schema v9, the top-level [refine]
    object): the search's [final_error] must not exceed the ceiling,
    and its cross-eval [store_hit_rate] — the incremental
    re-simulation measure — must reach the floor. Either flag against
    a pre-v9 summary, or a v9 summary without a [refine] object, fails
    cleanly. *)
val compare_summaries :
  ?thresholds:thresholds ->
  ?require_identical:bool ->
  ?min_store_hit_rate:float ->
  ?min_speedup:float ->
  ?min_coalesce:float ->
  ?max_p99_ms:float ->
  ?min_rps:float ->
  ?max_refine_error:float ->
  ?min_refine_hit_rate:float ->
  baseline:Json.t -> current:Json.t -> unit -> report

val pp_report : Format.formatter -> report -> unit

(** CI exit code: [Pass]/[Warn] → 0, [Fail] → 1, [Mismatch] → 3. *)
val exit_code : report -> int
