(** Structured tracing: nested spans with monotonic timing, emitted as
    one JSON record per line (JSONL) to an installable sink.

    {b Zero cost when disabled.} When no sink is installed, {!span}
    reduces to one atomic load followed by a direct call of the body —
    no clock reads, no span-id allocation, no attribute construction
    ([?attrs] is a thunk, forced only when a record is actually
    emitted). [test/test_telemetry.ml] asserts the disabled path
    allocates nothing observable.

    {b Concurrency.} Spans may be opened from any domain. Parent/child
    nesting is tracked per domain (the engine's worker pool passes an
    explicit [?parent] to attach worker-side spans to the submitting
    domain's batch span); sink writes are serialised by the sink.

    {b Record schema} (one object per line):
    {v
    {"type":"span","name":"engine.execute","id":7,"parent":2,
     "domain":1,"ts_us":123.4,"dur_us":56.7,"attrs":{"worker":1}}
    {"type":"instant","name":"profiler.filter","id":8,"parent":7,
     "domain":1,"ts_us":130.1,"attrs":{"reason":"unstable"}}
    v}
    [ts_us] is microseconds of monotonic time since sink installation;
    [parent] is [0] for roots. *)

type value = Bool of bool | Int of int | Float of float | Str of string

(** Is a sink installed? Hot paths that would otherwise build closures
    or attributes may branch on this. *)
val enabled : unit -> bool

(** Monotonic clock, nanoseconds. Always available (used by the engine
    for worker-utilization accounting even when tracing is off). *)
val now_ns : unit -> int64

(** [span name f] times [f ()] and emits a span record on completion
    (also on exception). [attrs] is forced after [f] returns, so it can
    capture results through a ref. [parent] overrides the
    domain-local parent — used to stitch cross-domain causality. *)
val span :
  ?parent:int -> ?attrs:(unit -> (string * value) list) -> string ->
  (unit -> 'a) -> 'a

(** Zero-duration event, e.g. a cache hit or a filter decision. *)
val instant : ?attrs:(unit -> (string * value) list) -> string -> unit

(** Id of the innermost open span on this domain ([0] if none). *)
val current_span : unit -> int

(** Install a JSONL file sink (writes are mutex-serialised). Replaces
    (and closes) any previous sink. *)
val install_file : string -> unit

(** Install an arbitrary sink; [write] receives one complete record
    (no trailing newline) and must be safe to call from any domain. *)
val install_custom : write:(string -> unit) -> close:(unit -> unit) -> unit

(** Close and remove the current sink, if any. *)
val uninstall : unit -> unit

(** Install a file sink at [$BHIVE_TRACE] if the variable is set and
    non-empty, closing it at process exit. *)
val init_from_env : unit -> unit
