(* The instruction-characterisation tool must agree with the
   microarchitecture tables it is (indirectly) measuring: this is a
   self-consistency check between the profiler-based measurement path and
   the uop decomposition tables. *)

let hsw = Uarch.All.haswell

let characterize form =
  match Exegesis.Characterize.characterize hsw form with
  | Some r -> r
  | None -> Alcotest.failf "characterisation failed for %s" (Exegesis.Benchgen.form_name form)

let form opcode ?(width = X86.Width.Q) shape =
  { Exegesis.Benchgen.opcode; width; shape }

let check_lat name expected (r : Exegesis.Characterize.result) =
  match r.latency with
  | Some l ->
    if Float.abs (l -. expected) > 0.3 then
      Alcotest.failf "%s: latency %.2f, expected %.2f" name l expected
  | None -> Alcotest.failf "%s: no latency" name

let check_rtp name expected (r : Exegesis.Characterize.result) =
  if Float.abs (r.rthroughput -. expected) > 0.12 then
    Alcotest.failf "%s: rthroughput %.2f, expected %.2f" name r.rthroughput expected

let test_alu () =
  let r = characterize (form X86.Opcode.Add `RR) in
  check_lat "add" 1.0 r;
  check_rtp "add" 0.25 r;
  Alcotest.(check (float 0.1)) "add 1 uop" 1.0 r.uops

let test_imul () =
  let r = characterize (form X86.Opcode.Imul_rr `RR) in
  check_lat "imul" 3.0 r;
  check_rtp "imul" 1.0 r

let test_load_op () =
  let r = characterize (form X86.Opcode.Add `RM) in
  Alcotest.(check (float 0.1)) "load-op 2 uops" 2.0 r.uops;
  check_rtp "add rm" 0.5 r

let test_store () =
  let r = characterize (form X86.Opcode.Mov `MR) in
  Alcotest.(check bool) "store has no latency chain" true (r.latency = None);
  check_rtp "store" 1.0 r (* one store-data port *)

let test_fp () =
  let r = characterize (form (X86.Opcode.Fmul X86.Opcode.Ps) `VV) in
  check_lat "mulps" 5.0 r;
  check_rtp "mulps" 0.5 r;
  let r = characterize (form (X86.Opcode.Fadd X86.Opcode.Ps) `VV) in
  check_lat "addps" 3.0 r;
  check_rtp "addps (one FP add port)" 1.0 r

let test_divider_not_pipelined () =
  let r = characterize (form (X86.Opcode.Fdiv X86.Opcode.Ss) `VV) in
  Alcotest.(check bool)
    (Printf.sprintf "divss rtp (%.1f) close to latency (%.1f)" r.rthroughput
       (Option.value ~default:0.0 r.latency))
    true
    (r.rthroughput > 0.7 *. Option.value ~default:0.0 r.latency)

let test_move_elimination_visible () =
  let r = characterize (form X86.Opcode.Mov `RR) in
  match r.latency with
  | Some l -> Alcotest.(check bool) "eliminated move latency < 1" true (l < 1.0)
  | None -> Alcotest.fail "mov rr should chain"

let test_zero_idiom_not_chained () =
  Alcotest.(check bool) "xor same-reg chain refused" true
    (Exegesis.Benchgen.latency_block (form X86.Opcode.Xor `RR) ~n:1 = None)

let test_skylake_differs () =
  let hsw_mul = characterize (form (X86.Opcode.Fmul X86.Opcode.Ps) `VV) in
  match Exegesis.Characterize.characterize Uarch.All.skylake (form (X86.Opcode.Fmul X86.Opcode.Ps) `VV) with
  | None -> Alcotest.fail "skl characterisation failed"
  | Some skl_mul ->
    Alcotest.(check bool) "skl mulps latency 4 < hsw 5" true
      (Option.get skl_mul.latency < Option.get hsw_mul.latency)

let test_table_complete () =
  let rows = Exegesis.Characterize.table hsw in
  Alcotest.(check int) "all standard forms measured"
    (List.length Exegesis.Benchgen.standard_forms)
    (List.length rows);
  List.iter
    (fun (r : Exegesis.Characterize.result) ->
      Alcotest.(check bool) "rtp positive" true (r.rthroughput > 0.0);
      Alcotest.(check bool) "uops >= 1" true (r.uops >= 1.0))
    rows

let test_benchmark_shapes () =
  let f = form X86.Opcode.Add `RR in
  (match Exegesis.Benchgen.latency_block f ~n:3 with
  | Some block -> Alcotest.(check int) "chain length" 3 (List.length block)
  | None -> Alcotest.fail "add should chain");
  let tp = Exegesis.Benchgen.throughput_block f ~copies:5 in
  Alcotest.(check int) "copies" 5 (List.length tp);
  (* destinations pairwise distinct *)
  let dsts =
    List.filter_map
      (fun (i : X86.Inst.t) ->
        match i.operands with X86.Operand.Reg r :: _ -> Some r | _ -> None)
      tp
  in
  Alcotest.(check int) "disjoint destinations" 5
    (List.length (List.sort_uniq compare dsts))

let test_portmap_inference () =
  (* the inference must recover the table's port combination for every
     standard target (a measurement-vs-table consistency check) *)
  let entries = Exegesis.Portmap.survey hsw Exegesis.Portmap.standard_targets in
  List.iter
    (fun (e : Exegesis.Portmap.entry) ->
      match (e.inferred, e.expected) with
      | Some inf, Some exp ->
        if not (Uarch.Port.equal inf exp) then
          Alcotest.failf "%s: inferred %s, table says %s" e.name
            (Uarch.Port.name inf) (Uarch.Port.name exp)
      | None, _ -> Alcotest.failf "%s: no inference" e.name
      | _, None -> Alcotest.failf "%s: no table entry" e.name)
    entries

let test_portmap_blockers_single_port () =
  (* each blocker must indeed be confined to its port in the tables *)
  List.iter
    (fun port ->
      let b = Exegesis.Portmap.blocker_for_port port 0 in
      match Exegesis.Portmap.expected_ports hsw b with
      | Some s ->
        if not (Uarch.Port.equal s (Uarch.Port.singleton port)) then
          Alcotest.failf "blocker for p%d uses %s" port (Uarch.Port.name s)
      | None -> Alcotest.failf "blocker for p%d has no exec uop" port)
    Exegesis.Portmap.supported_ports

let suite =
  [
    Alcotest.test_case "portmap inference" `Quick test_portmap_inference;
    Alcotest.test_case "portmap blockers" `Quick test_portmap_blockers_single_port;
    Alcotest.test_case "alu" `Quick test_alu;
    Alcotest.test_case "imul" `Quick test_imul;
    Alcotest.test_case "load-op" `Quick test_load_op;
    Alcotest.test_case "store" `Quick test_store;
    Alcotest.test_case "fp" `Quick test_fp;
    Alcotest.test_case "divider not pipelined" `Quick test_divider_not_pipelined;
    Alcotest.test_case "move elimination" `Quick test_move_elimination_visible;
    Alcotest.test_case "zero idiom not chained" `Quick test_zero_idiom_not_chained;
    Alcotest.test_case "skylake differs" `Quick test_skylake_differs;
    Alcotest.test_case "table complete" `Quick test_table_complete;
    Alcotest.test_case "benchmark shapes" `Quick test_benchmark_shapes;
  ]
