open X86

let hsw = Uarch.All.haswell
let iaca = lazy (Models.Iaca.create hsw)
let mca = lazy (Models.Llvm_mca.create hsw)
let osaca = lazy (Models.Osaca.create hsw)

let predict model block =
  match (Lazy.force model).Models.Model_intf.predict block with
  | Models.Model_intf.Throughput tp -> tp
  | Models.Model_intf.Unsupported r -> Alcotest.failf "unsupported: %s" r

let div_block = Corpus.Paper_blocks.division
let zero_block = Corpus.Paper_blocks.zero_idiom
let crc_block = Corpus.Paper_blocks.gzip_crc

(* Case-study assertions: the documented failure modes. *)
let test_division_bug () =
  (* IACA and llvm-mca grossly over-predict div r32 (paper: 98 and 99 for
     a measured 21.62) *)
  let i = predict iaca div_block and m = predict mca div_block in
  Alcotest.(check bool) (Printf.sprintf "iaca over-predicts (%.1f)" i) true (i > 60.0);
  Alcotest.(check bool) (Printf.sprintf "mca over-predicts (%.1f)" m) true (m > 60.0);
  (* OSACA under-predicts (paper: 12.25) *)
  let o = predict osaca div_block in
  Alcotest.(check bool) (Printf.sprintf "osaca under-predicts (%.1f)" o) true
    (o < 16.0 && o > 4.0)

let test_zero_idiom_knowledge () =
  let i = predict iaca zero_block in
  Alcotest.(check bool) (Printf.sprintf "iaca knows idiom (%.2f)" i) true (i < 0.5);
  let m = predict mca zero_block in
  Alcotest.(check (float 0.01)) "mca full cycle" 1.0 m;
  let o = predict osaca zero_block in
  Alcotest.(check (float 0.01)) "osaca full cycle" 1.0 o

let test_crc_scheduling () =
  (* llvm-mca mis-schedules the fused load (paper: 13.03 vs measured
     8.25; IACA predicts 8.0) *)
  let i = predict iaca crc_block and m = predict mca crc_block in
  Alcotest.(check bool) (Printf.sprintf "iaca close (%.1f)" i) true (i >= 5.0 && i <= 9.0);
  Alcotest.(check bool) (Printf.sprintf "mca over (%.1f)" m) true (m > 1.5 *. i)

let test_osaca_parser_failures () =
  (match (Lazy.force osaca).predict crc_block with
  | Models.Model_intf.Unsupported _ -> ()
  | Models.Model_intf.Throughput tp ->
    Alcotest.failf "osaca should fail on byte-mem ALU, got %.2f" tp);
  (* imm->mem forms parsed as nops: adding them must not increase the
     prediction *)
  let base = Parser.block_exn "add %rbx, %rax\nimul %rcx, %rdx" in
  let with_nop =
    base @ Parser.block_exn "movq $1, (%rbx)\naddq $1, 8(%rbx)"
  in
  let o1 = predict osaca base and o2 = predict osaca with_nop in
  Alcotest.(check (float 0.001)) "imm->mem ignored" o1 o2

let test_mca_skl_degradation () =
  (* llvm-mca's table is noticeably staler for Skylake *)
  let block = Parser.block_exn "add %rbx, %rax\nmulps %xmm1, %xmm0\nmov (%rcx), %rdx" in
  ignore block;
  let count_perturbed uarch =
    let model = Models.Llvm_mca.table uarch in
    List.length
      (List.filter
         (fun op ->
           match op with
           | Opcode.Nop | Cdq | Cqo | Ret | Vzeroupper -> false
           | _ ->
             let inst =
               if Opcode.is_vector op then
                 Inst.make op [ Operand.Reg (Reg.Xmm 0); Operand.Reg (Reg.Xmm 1) ]
               else Inst.make op [ Operand.Reg Reg.rax; Operand.Reg Reg.rbx ]
             in
             let base = Uarch.Descriptor.decompose uarch inst in
             let entry = model inst in
             (match (base.uops, entry.uops) with
             | (b0 :: _), (e0 :: _) -> b0.latency <> e0.latency
             | _ -> false))
         Opcode.all)
  in
  let skl = count_perturbed Uarch.All.skylake in
  let hsw_n = count_perturbed hsw in
  Alcotest.(check bool)
    (Printf.sprintf "more SKL entries perturbed (%d vs %d)" skl hsw_n)
    true (skl > hsw_n)

let test_ithemal_learns () =
  (* train on synthetic additive data; must recover it approximately *)
  let mk n =
    List.init n (fun _ -> Builder.add (Builder.r Reg.rax) (Builder.i 1))
  in
  let dataset = List.init 20 (fun k -> (mk (k + 1), float_of_int (k + 1))) in
  let t = Models.Ithemal.train dataset in
  let pred = Models.Ithemal.predict_block t (mk 10) in
  Alcotest.(check bool) (Printf.sprintf "pred ~10 (%.2f)" pred) true
    (pred > 7.0 && pred < 13.0)

let test_ithemal_no_schedule () =
  let t = Models.Ithemal.train [] in
  let m = Models.Ithemal.create t in
  Alcotest.(check bool) "black box" true (m.schedule = None)

let test_ithemal_empty_training () =
  let t = Models.Ithemal.train [] in
  let p = Models.Ithemal.predict_block t div_block in
  Alcotest.(check bool) "clamped positive" true (p >= 0.2)

let test_predictions_positive () =
  let blocks =
    Corpus.Suite.generate ~config:{ Corpus.Suite.default_config with scale = 3000 } ()
  in
  List.iter
    (fun (b : Corpus.Block.t) ->
      List.iter
        (fun model ->
          match (Lazy.force model).Models.Model_intf.predict b.insts with
          | Models.Model_intf.Throughput tp ->
            if not (Float.is_finite tp) || tp <= 0.0 then
              Alcotest.failf "%s: bad prediction %f on %s"
                (Lazy.force model).name tp b.id
          | Models.Model_intf.Unsupported _ -> ())
        [ iaca; mca; osaca ])
    blocks

let test_schedules_available () =
  Alcotest.(check bool) "iaca schedules" true ((Lazy.force iaca).schedule <> None);
  Alcotest.(check bool) "mca schedules" true ((Lazy.force mca).schedule <> None);
  Alcotest.(check bool) "osaca no schedule" true ((Lazy.force osaca).schedule = None)

let test_schedule_shape () =
  match (Lazy.force iaca).schedule with
  | None -> Alcotest.fail "no scheduler"
  | Some f ->
    let entries = f crc_block in
    Alcotest.(check bool) "non-empty" true (entries <> []);
    List.iter
      (fun (e : Models.Model_intf.schedule_entry) ->
        Alcotest.(check bool) "ordering" true (e.complete >= e.dispatch);
        Alcotest.(check bool) "inst index" true
          (e.inst_index >= 0 && e.inst_index < List.length crc_block))
      entries

let test_table_noise_deterministic () =
  let l1 = Models.Table_noise.latency ~seed:1L ~fraction:0.5 ~amplitude:0.5 Opcode.Add 3 in
  let l2 = Models.Table_noise.latency ~seed:1L ~fraction:0.5 ~amplitude:0.5 Opcode.Add 3 in
  Alcotest.(check int) "same seed same noise" l1 l2;
  Alcotest.(check bool) "positive" true (l1 >= 1);
  let n_hit =
    List.length
      (List.filter
         (fun op ->
           Models.Table_noise.latency ~seed:1L ~fraction:0.5 ~amplitude:0.5 op 10 <> 10)
         Opcode.all)
  in
  let total = List.length Opcode.all in
  Alcotest.(check bool)
    (Printf.sprintf "roughly half perturbed (%d/%d)" n_hit total)
    true
    (float_of_int n_hit > 0.3 *. float_of_int total
    && float_of_int n_hit < 0.7 *. float_of_int total)

let suite =
  [
    Alcotest.test_case "division bug" `Quick test_division_bug;
    Alcotest.test_case "zero idiom knowledge" `Quick test_zero_idiom_knowledge;
    Alcotest.test_case "crc scheduling" `Quick test_crc_scheduling;
    Alcotest.test_case "osaca parser failures" `Quick test_osaca_parser_failures;
    Alcotest.test_case "mca skl degradation" `Quick test_mca_skl_degradation;
    Alcotest.test_case "ithemal learns" `Quick test_ithemal_learns;
    Alcotest.test_case "ithemal black box" `Quick test_ithemal_no_schedule;
    Alcotest.test_case "ithemal empty training" `Quick test_ithemal_empty_training;
    Alcotest.test_case "predictions positive" `Quick test_predictions_positive;
    Alcotest.test_case "schedules available" `Quick test_schedules_available;
    Alcotest.test_case "schedule shape" `Quick test_schedule_shape;
    Alcotest.test_case "table noise deterministic" `Quick test_table_noise_deterministic;
  ]
