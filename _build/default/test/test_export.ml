(* CSV round-trip of measured datasets. *)

let small_dataset =
  lazy
    (let config = { Corpus.Suite.default_config with scale = 3000 } in
     let blocks = Corpus.Suite.generate ~config () in
     Bhive.Dataset.build Uarch.All.haswell blocks)

let test_roundtrip () =
  let ds = Lazy.force small_dataset in
  let csv = Bhive.Export.to_string ds in
  let rows = Bhive.Export.of_string csv in
  Alcotest.(check int) "row count" (Bhive.Dataset.size ds) (List.length rows);
  List.iter2
    (fun (e : Bhive.Dataset.entry) (r : Bhive.Export.row) ->
      Alcotest.(check string) "id" e.block.id r.block.id;
      Alcotest.(check string) "app" e.block.app r.block.app;
      Alcotest.(check int) "freq" e.block.freq r.block.freq;
      Alcotest.(check (float 1e-5)) "throughput" e.throughput r.throughput;
      Alcotest.(check int) "block length" (Corpus.Block.length e.block)
        (Corpus.Block.length r.block);
      List.iter2
        (fun a b -> Alcotest.(check bool) "inst" true (X86.Inst.equal a b))
        e.block.insts r.block.insts)
    ds.entries rows

let test_file_roundtrip () =
  let ds = Lazy.force small_dataset in
  let path = Filename.temp_file "bhive" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bhive.Export.to_file path ds;
      let rows = Bhive.Export.of_file path in
      Alcotest.(check int) "rows" (Bhive.Dataset.size ds) (List.length rows))

let test_header_required () =
  Alcotest.(check bool) "rejects missing header" true
    (try
       ignore (Bhive.Export.of_string "not,a,header\n");
       false
     with Bhive.Export.Parse_error _ -> true)

let test_bad_row () =
  let bad = Bhive.Export.header ^ "\nonly,three,fields\n" in
  Alcotest.(check bool) "rejects bad row" true
    (try
       ignore (Bhive.Export.of_string bad);
       false
     with Bhive.Export.Parse_error _ -> true)

let test_training_pairs () =
  let ds = Lazy.force small_dataset in
  let rows = Bhive.Export.of_string (Bhive.Export.to_string ds) in
  let pairs = Bhive.Export.training_pairs rows in
  Alcotest.(check int) "pair count" (List.length rows) (List.length pairs);
  (* a model trained from the CSV behaves like one trained in-process *)
  let t = Models.Ithemal.train pairs in
  let e = List.hd ds.entries in
  let p = Models.Ithemal.predict_block t e.block.insts in
  Alcotest.(check bool) "prediction sane" true (p > 0.0 && Float.is_finite p)

let test_csv_quoting () =
  (* ids and block text containing commas survive *)
  let b =
    Corpus.Block.make ~id:"odd,id" ~app:"test"
      (X86.Parser.block_exn "lea 8(%rax, %rbx, 2), %rcx")
  in
  let ds =
    {
      (Lazy.force small_dataset) with
      entries =
        [ { block = b; throughput = 1.5; faults = 0; unroll_large = 10; unroll_small = 5 } ];
    }
  in
  let rows = Bhive.Export.of_string (Bhive.Export.to_string ds) in
  match rows with
  | [ r ] ->
    Alcotest.(check string) "quoted id" "odd,id" r.block.id;
    Alcotest.(check int) "block" 1 (Corpus.Block.length r.block)
  | _ -> Alcotest.fail "expected one row"

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "header required" `Quick test_header_required;
    Alcotest.test_case "bad row" `Quick test_bad_row;
    Alcotest.test_case "training pairs" `Quick test_training_pairs;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
  ]
