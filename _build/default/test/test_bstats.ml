let test_rng_determinism () =
  let a = Bstats.Rng.create 42L and b = Bstats.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Bstats.Rng.next_u64 a) (Bstats.Rng.next_u64 b)
  done

let test_rng_ranges () =
  let rng = Bstats.Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Bstats.Rng.int rng 10 in
    Alcotest.(check bool) "int bound" true (v >= 0 && v < 10);
    let f = Bstats.Rng.float rng in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_uniformish () =
  let rng = Bstats.Rng.create 9L in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10000 do
    let v = Bstats.Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "bucket %d (%d)" i c) true (c > 700 && c < 1300))
    buckets

let test_seed_of_string () =
  Alcotest.(check bool) "distinct" true
    (Bstats.Rng.seed_of_string "foo" <> Bstats.Rng.seed_of_string "bar");
  Alcotest.(check int64) "stable" (Bstats.Rng.seed_of_string "abc") (Bstats.Rng.seed_of_string "abc")

let test_choose_weighted () =
  let rng = Bstats.Rng.create 1L in
  let picks = List.init 1000 (fun _ ->
      Bstats.Rng.choose_weighted rng [ (9.0, `A); (1.0, `B) ]) in
  let a = List.length (List.filter (( = ) `A) picks) in
  Alcotest.(check bool) (Printf.sprintf "weighting (%d)" a) true (a > 800 && a < 980)

let test_relative_error () =
  Alcotest.(check (float 1e-9)) "exact" 0.0 (Bstats.Error.relative ~predicted:5.0 ~measured:5.0);
  Alcotest.(check (float 1e-9)) "50%" 0.5 (Bstats.Error.relative ~predicted:15.0 ~measured:10.0);
  Alcotest.(check (float 1e-9)) "under" 0.5 (Bstats.Error.relative ~predicted:5.0 ~measured:10.0)

let test_average_weighted () =
  Alcotest.(check (float 1e-9)) "avg" 0.25
    (Bstats.Error.average_relative [ (1.0, 2.0); (1.0, 1.0) ]);
  Alcotest.(check (float 1e-9)) "weighted ignores light" 0.5
    (Bstats.Error.weighted_relative [ (1.0, 2.0, 1.0); (1.0, 1.0, 0.0) ])

let test_median_percentile () =
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Bstats.Error.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 1.5 (Bstats.Error.median [ 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Bstats.Error.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "p100" 3.0 (Bstats.Error.percentile 1.0 [ 3.0; 1.0; 2.0 ])

let test_kendall_known () =
  Alcotest.(check (float 1e-9)) "perfect" 1.0
    (Bstats.Kendall.tau [ (1.0, 1.0); (2.0, 2.0); (3.0, 3.0) ]);
  Alcotest.(check (float 1e-9)) "inverted" (-1.0)
    (Bstats.Kendall.tau [ (1.0, 3.0); (2.0, 2.0); (3.0, 1.0) ]);
  Alcotest.(check bool) "nan on singleton" true (Float.is_nan (Bstats.Kendall.tau [ (1.0, 1.0) ]))

let test_pairwise_agreement () =
  Alcotest.(check (float 1e-9)) "perfect" 1.0
    (Bstats.Kendall.pairwise_agreement [ (1.0, 1.0); (2.0, 2.0); (3.0, 3.0) ]);
  Alcotest.(check (float 1e-9)) "coin flip structure" 0.0
    (Bstats.Kendall.pairwise_agreement [ (1.0, 2.0); (2.0, 1.0) ])

let prop_kendall_bounded =
  QCheck.Test.make ~name:"tau in [-1,1]" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 30) (pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0)))
    (fun pairs ->
      let t = Bstats.Kendall.tau pairs in
      Float.is_nan t || (t >= -1.0 && t <= 1.0))

let test_bootstrap_ci () =
  let xs = List.init 200 (fun i -> float_of_int (i mod 10)) in
  let ci = Bstats.Bootstrap.mean_ci xs in
  Alcotest.(check (float 1e-9)) "mean" 4.5 ci.mean;
  Alcotest.(check bool) "lo <= mean <= hi" true (ci.lo <= ci.mean && ci.mean <= ci.hi);
  Alcotest.(check bool) "interval tight for n=200" true (ci.hi -. ci.lo < 1.5);
  let ci2 = Bstats.Bootstrap.mean_ci xs in
  Alcotest.(check (float 0.0)) "deterministic" ci.lo ci2.lo;
  let empty = Bstats.Bootstrap.mean_ci [] in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan empty.mean)

let test_summary () =
  let s = Bstats.Summary.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "n" 4 s.n;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.max

let test_bar () =
  Alcotest.(check int) "width" 40 (String.length (Bstats.Summary.bar ~max_value:1.0 0.5));
  Alcotest.(check string) "empty" (String.make 10 ' ')
    (Bstats.Summary.bar ~width:10 ~max_value:1.0 0.0);
  Alcotest.(check string) "full" (String.make 10 '#')
    (Bstats.Summary.bar ~width:10 ~max_value:1.0 1.0)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng uniformish" `Quick test_rng_uniformish;
    Alcotest.test_case "seed of string" `Quick test_seed_of_string;
    Alcotest.test_case "choose weighted" `Quick test_choose_weighted;
    Alcotest.test_case "relative error" `Quick test_relative_error;
    Alcotest.test_case "average/weighted" `Quick test_average_weighted;
    Alcotest.test_case "median/percentile" `Quick test_median_percentile;
    Alcotest.test_case "kendall known" `Quick test_kendall_known;
    Alcotest.test_case "pairwise agreement" `Quick test_pairwise_agreement;
    QCheck_alcotest.to_alcotest prop_kendall_bounded;
    Alcotest.test_case "bootstrap ci" `Quick test_bootstrap_ci;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "bar" `Quick test_bar;
  ]
