open X86
open X86.Builder

let test_zero_idiom () =
  let t b i = Alcotest.(check bool) (Inst.to_string i) b (Inst.is_zero_idiom i) in
  t true (xor (r Reg.rax) (r Reg.rax));
  t true (sub (r Reg.rcx) (r Reg.rcx));
  t true (pxor (r (Reg.Xmm 2)) (r (Reg.Xmm 2)));
  t true (xorps (r (Reg.Xmm 1)) (r (Reg.Xmm 1)));
  t true (vxorps (r (Reg.Xmm 2)) (r (Reg.Xmm 2)) (r (Reg.Xmm 2)));
  t false (xor (r Reg.rax) (r Reg.rbx));
  t false (add (r Reg.rax) (r Reg.rax));
  t false (vxorps (r (Reg.Xmm 0)) (r (Reg.Xmm 1)) (r (Reg.Xmm 2)))

let test_ones_idiom () =
  Alcotest.(check bool) "pcmpeq same" true
    (Inst.is_ones_idiom (pcmpeqd (r (Reg.Xmm 3)) (r (Reg.Xmm 3))));
  Alcotest.(check bool) "pcmpeq diff" false
    (Inst.is_ones_idiom (pcmpeqd (r (Reg.Xmm 3)) (r (Reg.Xmm 4))))

let test_mem_accesses () =
  let load = mov (r Reg.rax) (mb ~base:Reg.rbx ()) in
  let store = mov (mb ~base:Reg.rbx ()) (r Reg.rax) in
  let rmw = add (mb ~base:Reg.rbx ()) (i 1) in
  Alcotest.(check bool) "load" true (Inst.has_load load && not (Inst.has_store load));
  Alcotest.(check bool) "store" true (Inst.has_store store && not (Inst.has_load store));
  Alcotest.(check bool) "rmw" true (Inst.has_load rmw && Inst.has_store rmw);
  Alcotest.(check int) "load count" 1 (List.length (Inst.mem_accesses load))

let test_lea_no_access () =
  let l = lea (r Reg.rax) (mb ~base:Reg.rbx ~index:Reg.rcx ~scale:4 ()) in
  Alcotest.(check int) "lea accesses" 0 (List.length (Inst.mem_accesses l));
  Alcotest.(check bool) "lea reads base+index" true
    (List.mem (Reg.root Reg.rbx) (Inst.read_roots l)
    && List.mem (Reg.root Reg.rcx) (Inst.read_roots l))

let test_push_pop_stack () =
  Alcotest.(check int) "push accesses" 1 (List.length (Inst.mem_accesses (push (r Reg.rax))));
  Alcotest.(check bool) "push stores" true (Inst.has_store (push (r Reg.rax)));
  Alcotest.(check bool) "pop loads" true (Inst.has_load (pop (r Reg.rax)));
  Alcotest.(check bool) "push writes rsp" true
    (List.mem (Reg.root Reg.rsp) (Inst.write_roots (push (r Reg.rax))))

let test_read_write_roots () =
  let i1 = add (r Reg.rax) (r Reg.rbx) in
  Alcotest.(check bool) "add reads both" true
    (List.mem (Reg.root Reg.rax) (Inst.read_roots i1)
    && List.mem (Reg.root Reg.rbx) (Inst.read_roots i1));
  Alcotest.(check bool) "add writes dst only" true
    (Inst.write_roots i1 = [ Reg.root Reg.rax ]);
  let m = mov (r Reg.rax) (r Reg.rbx) in
  Alcotest.(check bool) "mov does not read dst" true
    (not (List.mem (Reg.root Reg.rax) (Inst.read_roots m)));
  let d = div (r Reg.ecx) ~w:Width.D in
  Alcotest.(check bool) "div reads rax rdx rcx" true
    (List.mem (Reg.root Reg.rax) (Inst.read_roots d)
    && List.mem (Reg.root Reg.rdx) (Inst.read_roots d)
    && List.mem (Reg.root Reg.rcx) (Inst.read_roots d));
  Alcotest.(check bool) "div writes rax rdx" true
    (List.mem (Reg.root Reg.rax) (Inst.write_roots d)
    && List.mem (Reg.root Reg.rdx) (Inst.write_roots d))

let test_flags () =
  Alcotest.(check bool) "add writes flags" true (Opcode.writes_flags Opcode.Add);
  Alcotest.(check bool) "mov no flags" false (Opcode.writes_flags Opcode.Mov);
  Alcotest.(check bool) "adc reads flags" true (Opcode.reads_flags Opcode.Adc);
  Alcotest.(check bool) "cmov reads flags" true (Opcode.reads_flags (Opcode.Cmov Cond.E));
  Alcotest.(check bool) "lea no flags" false (Opcode.writes_flags Opcode.Lea)

let test_mem_size () =
  Alcotest.(check int) "movzx bl source" 1
    (Inst.mem_size (movzx ~from:Width.B ~w:Width.D (r Reg.eax) (mb ~base:Reg.rbx ())));
  Alcotest.(check int) "movaps xmm" 16 (Inst.mem_size (movaps (r (Reg.Xmm 0)) (mb ~base:Reg.rbx ())));
  Alcotest.(check int) "vmovaps ymm" 32
    (Inst.mem_size (mk (Opcode.Movap Opcode.Ps) [ r (Reg.Ymm 0); mb ~base:Reg.rbx () ]));
  Alcotest.(check int) "movss" 4 (Inst.mem_size (movss (r (Reg.Xmm 0)) (mb ~base:Reg.rbx ())));
  Alcotest.(check int) "movsd" 8 (Inst.mem_size (movsd_x (r (Reg.Xmm 0)) (mb ~base:Reg.rbx ())))

let test_avx2_detection () =
  Alcotest.(check bool) "fma is avx2" true
    (Inst.requires_avx2 (vfmadd231ps (r (Reg.Xmm 0)) (r (Reg.Xmm 1)) (r (Reg.Xmm 2))));
  Alcotest.(check bool) "ymm int is avx2" true
    (Inst.requires_avx2 (mk (Opcode.Padd Opcode.I32) [ r (Reg.Ymm 0); r (Reg.Ymm 1) ]));
  Alcotest.(check bool) "ymm fp is avx1" false
    (Inst.requires_avx2 (mk (Opcode.Fadd Opcode.Ps) [ r (Reg.Ymm 0); r (Reg.Ymm 1) ]));
  Alcotest.(check bool) "xmm int is sse" false
    (Inst.requires_avx2 (paddd (r (Reg.Xmm 0)) (r (Reg.Xmm 1))))

let test_validate () =
  Alcotest.(check bool) "good add" true (Inst.validate (add (r Reg.rax) (i 1)) = Ok ());
  Alcotest.(check bool) "bad nop" true
    (Result.is_error (Inst.validate (mk Opcode.Nop [ r Reg.rax ])));
  Alcotest.(check bool) "bad inc" true
    (Result.is_error (Inst.validate (mk Opcode.Inc [ r Reg.rax; r Reg.rbx ])))

let test_partial_write () =
  Alcotest.(check bool) "al write partial" true
    (Inst.partial_register_write (mov ~w:Width.B (r Reg.al) (i 1)));
  Alcotest.(check bool) "eax write not partial" false
    (Inst.partial_register_write (mov ~w:Width.D (r Reg.eax) (i 1)))

let test_printing () =
  let p i = Inst.to_string i in
  Alcotest.(check string) "att order" "addq $1, %rdi" (p (add (r Reg.rdi) (i 1)));
  Alcotest.(check string) "suffix on mem" "movl %eax, 0x10(%rbx)"
    (p (mov ~w:Width.D (mb ~base:Reg.rbx ~disp:16 ()) (r Reg.eax)));
  Alcotest.(check string) "vex 3op" "vxorps %xmm2, %xmm2, %xmm2"
    (p (vxorps (r (Reg.Xmm 2)) (r (Reg.Xmm 2)) (r (Reg.Xmm 2))));
  Alcotest.(check string) "movzx" "movzbl %al, %eax"
    (p (movzx ~from:Width.B ~w:Width.D (r Reg.eax) (r Reg.al)))

let suite =
  [
    Alcotest.test_case "zero idiom" `Quick test_zero_idiom;
    Alcotest.test_case "ones idiom" `Quick test_ones_idiom;
    Alcotest.test_case "mem accesses" `Quick test_mem_accesses;
    Alcotest.test_case "lea no access" `Quick test_lea_no_access;
    Alcotest.test_case "push/pop stack" `Quick test_push_pop_stack;
    Alcotest.test_case "read/write roots" `Quick test_read_write_roots;
    Alcotest.test_case "flags" `Quick test_flags;
    Alcotest.test_case "mem size" `Quick test_mem_size;
    Alcotest.test_case "avx2 detection" `Quick test_avx2_detection;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "partial write" `Quick test_partial_write;
    Alcotest.test_case "printing" `Quick test_printing;
  ]
