(* The hand-written kernels must all be profilable and show the expected
   performance characteristics. *)

let hsw = Uarch.All.haswell

let profile insts =
  match Harness.Profiler.profile Harness.Environment.default hsw insts with
  | Ok p -> p
  | Error f -> Alcotest.failf "profile: %s" (Harness.Profiler.failure_to_string f)

let test_all_profilable () =
  List.iter
    (fun (name, _, insts) ->
      let p = profile insts in
      if not p.accepted then Alcotest.failf "%s not accepted" name;
      if p.throughput <= 0.0 then Alcotest.failf "%s: bad throughput" name)
    Corpus.Kernels.all

let tp insts = (profile insts).throughput

let test_memcpy_store_bound () =
  (* two 16-byte stores per iteration on one store-data port *)
  let t = tp Corpus.Kernels.memcpy_sse in
  Alcotest.(check bool) (Printf.sprintf "memcpy ~2 (%.2f)" t) true (t >= 1.8 && t <= 2.6)

let test_fnv1a_latency_bound () =
  (* serial imul chain: at least the multiply latency per byte *)
  let t = tp Corpus.Kernels.fnv1a in
  Alcotest.(check bool) (Printf.sprintf "fnv1a >= 4 (%.2f)" t) true (t >= 4.0)

let test_xxhash_chain () =
  let t = tp Corpus.Kernels.xxhash_round in
  Alcotest.(check bool) (Printf.sprintf "xxhash chain >= 5 (%.2f)" t) true (t >= 5.0)

let test_dot_product_throughput_bound () =
  (* one FMA + one load-FMA per iteration: should stream near 1-2
     cycles, nowhere near the 5-cycle FMA latency chain *)
  let t = tp Corpus.Kernels.dot_product_fma in
  Alcotest.(check bool) (Printf.sprintf "dot product streams (%.2f)" t) true (t <= 5.5)

let test_bignum_carry_chain () =
  (* adc chains through the flags: slower than the plain add version *)
  let t = tp Corpus.Kernels.bignum_add in
  Alcotest.(check bool) (Printf.sprintf "bignum carry >= 2 (%.2f)" t) true (t >= 2.0)

let test_kernels_in_suite () =
  let config = { Corpus.Suite.default_config with scale = 100 } in
  let blocks = Corpus.Suite.generate ~config () in
  let kernel_blocks =
    List.filter (fun (b : Corpus.Block.t) -> String.contains b.id ':') blocks
  in
  Alcotest.(check bool)
    (Printf.sprintf "kernels present (%d)" (List.length kernel_blocks))
    true
    (List.length kernel_blocks > 20)

let test_for_app () =
  Alcotest.(check bool) "openblas has kernels" true (Corpus.Kernels.for_app "openblas" <> []);
  Alcotest.(check bool) "unknown app empty" true (Corpus.Kernels.for_app "nosuch" = [])

let suite =
  [
    Alcotest.test_case "all profilable" `Quick test_all_profilable;
    Alcotest.test_case "memcpy store bound" `Quick test_memcpy_store_bound;
    Alcotest.test_case "fnv1a latency bound" `Quick test_fnv1a_latency_bound;
    Alcotest.test_case "xxhash chain" `Quick test_xxhash_chain;
    Alcotest.test_case "dot product streams" `Quick test_dot_product_throughput_bound;
    Alcotest.test_case "bignum carry chain" `Quick test_bignum_carry_chain;
    Alcotest.test_case "kernels in suite" `Quick test_kernels_in_suite;
    Alcotest.test_case "for_app" `Quick test_for_app;
  ]
