open X86

let check = Alcotest.check
let int = Alcotest.int
let i64 = Alcotest.testable (fun fmt v -> Format.fprintf fmt "0x%Lx" v) Int64.equal

let test_bytes_bits () =
  check int "B bytes" 1 (Width.bytes Width.B);
  check int "W bytes" 2 (Width.bytes Width.W);
  check int "D bytes" 4 (Width.bytes Width.D);
  check int "Q bytes" 8 (Width.bytes Width.Q);
  check int "B bits" 8 (Width.bits Width.B);
  check int "Q bits" 64 (Width.bits Width.Q)

let test_of_bytes () =
  List.iter
    (fun w -> Alcotest.(check bool) "roundtrip" true (Width.equal w (Width.of_bytes (Width.bytes w))))
    Width.all;
  Alcotest.check_raises "bad size" (Invalid_argument "Width.of_bytes: 3") (fun () ->
      ignore (Width.of_bytes 3))

let test_truncate () =
  check i64 "truncate B" 0xFFL (Width.truncate Width.B 0x1FFL);
  check i64 "truncate W" 0x1234L (Width.truncate Width.W 0xABCD1234L);
  check i64 "truncate D" 0xDEADBEEFL (Width.truncate Width.D 0x12345678DEADBEEFL);
  check i64 "truncate Q id" (-1L) (Width.truncate Width.Q (-1L))

let test_sign_extend () =
  check i64 "sext B negative" (-1L) (Width.sign_extend Width.B 0xFFL);
  check i64 "sext B positive" 0x7FL (Width.sign_extend Width.B 0x7FL);
  check i64 "sext W" (-2L) (Width.sign_extend Width.W 0xFFFEL);
  check i64 "sext D" (-1L) (Width.sign_extend Width.D 0xFFFFFFFFL);
  check i64 "sext Q id" Int64.min_int (Width.sign_extend Width.Q Int64.min_int)

let test_suffix () =
  check Alcotest.string "suffixes" "bwlq"
    (String.concat "" (List.map Width.suffix Width.all))

let prop_truncate_idempotent =
  QCheck.Test.make ~name:"truncate idempotent" ~count:500
    QCheck.(pair (oneofl Width.all) int64)
    (fun (w, v) -> Int64.equal (Width.truncate w (Width.truncate w v)) (Width.truncate w v))

let prop_sign_extend_preserves_low =
  QCheck.Test.make ~name:"sign-extend preserves low bits" ~count:500
    QCheck.(pair (oneofl Width.all) int64)
    (fun (w, v) ->
      Int64.equal
        (Width.truncate w (Width.sign_extend w (Width.truncate w v)))
        (Width.truncate w v))

let suite =
  [
    Alcotest.test_case "bytes/bits" `Quick test_bytes_bits;
    Alcotest.test_case "of_bytes" `Quick test_of_bytes;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "sign_extend" `Quick test_sign_extend;
    Alcotest.test_case "suffix" `Quick test_suffix;
    QCheck_alcotest.to_alcotest prop_truncate_idempotent;
    QCheck_alcotest.to_alcotest prop_sign_extend_preserves_low;
  ]
