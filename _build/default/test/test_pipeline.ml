(* End-to-end throughput checks of the ground-truth pipeline simulator
   against well-understood microbenchmark values. *)

let throughput ?(uarch = Uarch.All.haswell) text =
  let block = X86.Parser.block_exn text in
  match Harness.Profiler.profile Harness.Environment.default uarch block with
  | Ok p -> p.throughput
  | Error f -> Alcotest.failf "profile failed: %s" (Harness.Profiler.failure_to_string f)

let check_tp ?uarch name expected tolerance text =
  let tp = throughput ?uarch text in
  if Float.abs (tp -. expected) > tolerance then
    Alcotest.failf "%s: throughput %.2f, expected %.2f +/- %.2f" name tp expected
      tolerance

let test_dependent_chain () =
  check_tp "add chain" 1.0 0.05 "add $1, %rdi"

let test_independent_alu () =
  (* 6 independent adds on 4 ALU ports: 1.5 cycles/iteration *)
  check_tp "alu ports" 1.5 0.1
    "add $1, %rdi\nadd $1, %rsi\nadd $1, %rdx\nadd $1, %rcx\nadd $1, %r8\nadd $1, %r9"

let test_zero_idiom_rename () =
  (* eliminated at rename: bounded by the 4-wide front end *)
  check_tp "vxorps" 0.25 0.05 "vxorps %xmm2, %xmm2, %xmm2"

let test_mul_latency_chain () =
  (* loop-carried multiply chain: latency 3 *)
  check_tp "imul chain" 3.0 0.1 "imul %rbx, %rax"

let test_mul_throughput () =
  (* two independent multiplies per iteration on the single multiply
     port: 2 cycles/iteration *)
  check_tp "imul tp" 2.0 0.2 "imul $3, %rbx, %rax\nimul $3, %rbx, %rcx"

let test_fp_chain_vs_parallel () =
  (* SSE mulps accumulates into its destination, so it is loop-carried *)
  check_tp "mulps chain (latency 5)" 5.0 0.1 "mulps %xmm1, %xmm0";
  (* the AVX form writes a fresh destination: no loop carry, two
     multiplies per iteration on two ports *)
  check_tp "vmulps parallel" 1.0 0.2
    "vmulps %xmm4, %xmm5, %xmm0\nvmulps %xmm6, %xmm7, %xmm1"

let test_skylake_fp_latency () =
  check_tp ~uarch:Uarch.All.skylake "skl mulps chain (latency 4)" 4.0 0.1
    "mulps %xmm1, %xmm0"

let test_load_ports () =
  (* 3 independent loads on 2 load ports *)
  check_tp "load ports" 1.5 0.1
    "mov (%rbx), %rax\nmov 8(%rbx), %rcx\nmov 16(%rbx), %rdx"

let test_store_port () =
  (* 2 stores on 1 store-data port *)
  check_tp "store port" 2.0 0.1
    "movq %rax, (%rbx)\nmovq %rcx, 8(%rbx)"

let test_div_not_pipelined () =
  check_tp "div blocks divider" 23.0 2.0 "xor %edx, %edx\ndivl %ecx\ntestl %edx, %edx"

let test_div_width_difference () =
  let t32 = throughput "xor %edx, %edx\ndivl %ecx" in
  let tp =
    let block = X86.Parser.block_exn "xorq %rdx, %rdx\ndivq %rcx" in
    match Harness.Profiler.profile Harness.Environment.default Uarch.All.haswell block with
    | Ok p -> p.throughput
    | Error f -> Alcotest.failf "%s" (Harness.Profiler.failure_to_string f)
  in
  Alcotest.(check bool)
    (Printf.sprintf "64-bit (%.1f) slower than 32-bit (%.1f)" tp t32)
    true (tp > t32)

let test_store_load_forwarding () =
  (* loop-carried chain through memory: store then reload same slot *)
  let tp = throughput "movq %rax, 16(%rsp)\nmovq 16(%rsp), %rax\nadd $1, %rax" in
  Alcotest.(check bool) (Printf.sprintf "forwarding chain > 5 (%.2f)" tp) true (tp > 5.0)

let test_gzip_crc_block () =
  (* the paper's case-study block: measured 8.25 on real Haswell *)
  let tp = throughput (Corpus.Block.text Corpus.Paper_blocks.gzip_crc_block) in
  Alcotest.(check bool) (Printf.sprintf "crc in [6,10] (%.2f)" tp) true
    (tp >= 6.0 && tp <= 10.0)

let test_counters_clean () =
  let block = X86.Parser.block_exn "add $1, %rax\nmov (%rbx), %rcx" in
  match Harness.Profiler.profile Harness.Environment.default Uarch.All.haswell block with
  | Ok p ->
    Alcotest.(check bool) "clean" true (Pipeline.Counters.is_clean p.large.counters);
    Alcotest.(check bool) "instructions counted" true
      (p.large.counters.instructions > 0);
    Alcotest.(check bool) "uops >= instructions" true
      (p.large.counters.uops >= p.large.counters.instructions)
  | Error f -> Alcotest.failf "%s" (Harness.Profiler.failure_to_string f)

let test_icache_miss_large_code () =
  (* naive unroll of a large block overflows the 32 KiB L1I *)
  let env = { Harness.Environment.default with unroll = Harness.Environment.Naive 100 } in
  match
    Harness.Profiler.profile env Uarch.All.haswell Corpus.Paper_blocks.tensorflow_ablation
  with
  | Ok p ->
    Alcotest.(check bool) "l1i misses present" true (p.large.counters.l1i_misses > 0);
    Alcotest.(check bool) "rejected as never clean" false p.accepted
  | Error f -> Alcotest.failf "%s" (Harness.Profiler.failure_to_string f)

let test_subnormal_assist_cycles () =
  let env =
    { Harness.Environment.default with disable_underflow = false; drop_misaligned = false }
  in
  let with_ftz =
    match Harness.Profiler.profile Harness.Environment.default Uarch.All.haswell
            Corpus.Paper_blocks.tensorflow_ablation with
    | Ok p -> p.throughput
    | Error f -> Alcotest.failf "%s" (Harness.Profiler.failure_to_string f)
  in
  match Harness.Profiler.profile env Uarch.All.haswell Corpus.Paper_blocks.tensorflow_ablation with
  | Ok p ->
    Alcotest.(check bool)
      (Printf.sprintf "assists slow down 5x+ (%.0f vs %.0f)" p.throughput with_ftz)
      true
      (p.throughput > 5.0 *. with_ftz)
  | Error f -> Alcotest.failf "%s" (Harness.Profiler.failure_to_string f)

let test_schedule_recording () =
  let block = X86.Parser.block_exn "add $1, %rax\nmov (%rbx), %rcx" in
  match Harness.Mapping.run Harness.Environment.default block ~unroll:4 with
  | Error f -> Alcotest.failf "%s" (Harness.Mapping.failure_to_string f)
  | Ok mapped ->
    let machine = Pipeline.Machine.create Uarch.All.haswell in
    let r = Pipeline.Machine.run ~record_schedule:true machine mapped.steps in
    Alcotest.(check bool) "schedule non-empty" true (r.schedule <> []);
    List.iter
      (fun (e : Pipeline.Core.schedule_entry) ->
        if e.port >= 0 then
          Alcotest.(check bool) "complete after dispatch" true (e.complete >= e.dispatch))
      r.schedule

let suite =
  [
    Alcotest.test_case "dependent chain" `Quick test_dependent_chain;
    Alcotest.test_case "independent alu" `Quick test_independent_alu;
    Alcotest.test_case "zero idiom rename" `Quick test_zero_idiom_rename;
    Alcotest.test_case "mul latency chain" `Quick test_mul_latency_chain;
    Alcotest.test_case "mul throughput" `Quick test_mul_throughput;
    Alcotest.test_case "fp chain vs parallel" `Quick test_fp_chain_vs_parallel;
    Alcotest.test_case "skylake fp latency" `Quick test_skylake_fp_latency;
    Alcotest.test_case "load ports" `Quick test_load_ports;
    Alcotest.test_case "store port" `Quick test_store_port;
    Alcotest.test_case "div not pipelined" `Quick test_div_not_pipelined;
    Alcotest.test_case "div width difference" `Quick test_div_width_difference;
    Alcotest.test_case "store-load forwarding" `Quick test_store_load_forwarding;
    Alcotest.test_case "gzip crc block" `Quick test_gzip_crc_block;
    Alcotest.test_case "counters clean" `Quick test_counters_clean;
    Alcotest.test_case "icache miss large code" `Quick test_icache_miss_large_code;
    Alcotest.test_case "subnormal assists" `Quick test_subnormal_assist_cycles;
    Alcotest.test_case "schedule recording" `Quick test_schedule_recording;
  ]
