open X86

(* Run a block over a fresh state with [pages] scratch pages mapped
   starting at 0x10000; registers optionally preset. *)
let run ?(regs = []) ?(ftz = false) text =
  let st = Xsem.Machine_state.create () in
  st.ftz <- ftz;
  let mmu = Memsim.Mmu.create () in
  for vpn = 0x10 to 0x20 do
    ignore (Memsim.Mmu.map_fresh mmu (Int64.of_int vpn))
  done;
  List.iter (fun (r, v) -> Xsem.Machine_state.set_reg st r v) regs;
  let block = Parser.block_exn text in
  match Xsem.Executor.run st mmu block with
  | Xsem.Executor.Completed steps -> (st, List.concat_map (fun (s : Xsem.Executor.step) -> s.events) steps)
  | Faulted { fault; _ } -> Alcotest.failf "unexpected fault: %s" (Memsim.Fault.to_string fault)

let gpr st r = Xsem.Machine_state.get_reg st r
let check64 = Alcotest.(check int64)

let test_mov_widths () =
  let st, _ = run ~regs:[ (Reg.rax, 0xFFFFFFFFFFFFFFFFL) ] "movl $5, %eax" in
  check64 "32-bit write zeroes upper" 5L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rax, 0xAABBCCDDEEFF1122L) ] "movb $5, %al" in
  check64 "8-bit write merges" 0xAABBCCDDEEFF1105L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rax, 0xAABBCCDDEEFF1122L) ] "movw $5, %ax" in
  check64 "16-bit write merges" 0xAABBCCDDEEFF0005L (gpr st Reg.rax)

let test_add_flags () =
  let st, _ = run ~regs:[ (Reg.rax, 0xFFFFFFFFFFFFFFFFL) ] "add $1, %rax" in
  check64 "wraps" 0L (gpr st Reg.rax);
  Alcotest.(check bool) "cf" true st.flags.cf;
  Alcotest.(check bool) "zf" true st.flags.zf;
  Alcotest.(check bool) "of clear" false st.flags.of_;
  let st, _ = run ~regs:[ (Reg.rax, 0x7FFFFFFFFFFFFFFFL) ] "add $1, %rax" in
  Alcotest.(check bool) "signed overflow" true st.flags.of_;
  Alcotest.(check bool) "sf" true st.flags.sf

let test_sub_cmp_flags () =
  let st, _ = run ~regs:[ (Reg.rax, 3L); (Reg.rbx, 5L) ] "cmp %rbx, %rax" in
  Alcotest.(check bool) "borrow" true st.flags.cf;
  Alcotest.(check bool) "sf" true st.flags.sf;
  check64 "cmp preserves" 3L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rax, 5L); (Reg.rbx, 5L) ] "sub %rbx, %rax" in
  Alcotest.(check bool) "zf" true st.flags.zf;
  check64 "result" 0L (gpr st Reg.rax)

let test_adc_sbb () =
  let st, _ =
    run ~regs:[ (Reg.rax, 0xFFFFFFFFFFFFFFFFL); (Reg.rbx, 0L); (Reg.rcx, 10L) ]
      "add $1, %rax\nadc %rbx, %rcx"
  in
  check64 "carry propagated" 11L (gpr st Reg.rcx)

let test_logic () =
  let st, _ = run ~regs:[ (Reg.rax, 0xF0L); (Reg.rbx, 0x0FL) ] "or %rbx, %rax" in
  check64 "or" 0xFFL (gpr st Reg.rax);
  Alcotest.(check bool) "cf clear" false st.flags.cf;
  let st, _ = run ~regs:[ (Reg.rax, 0xFFL) ] "xor %rax, %rax" in
  check64 "zero idiom" 0L (gpr st Reg.rax);
  Alcotest.(check bool) "zf" true st.flags.zf

let test_shifts () =
  let st, _ = run ~regs:[ (Reg.rax, 1L) ] "shl $4, %rax" in
  check64 "shl" 16L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rax, -8L) ] "sar $1, %rax" in
  check64 "sar" (-4L) (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rax, -8L) ] "shr $1, %rax" in
  check64 "shr" 0x7FFFFFFFFFFFFFFCL (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rax, 0x8000000000000001L) ] "rol $1, %rax" in
  check64 "rol" 3L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rax, 5L) ] "shl $0, %rax" in
  check64 "count 0 no-op" 5L (gpr st Reg.rax)

let test_mul () =
  let st, _ = run ~regs:[ (Reg.rax, 6L); (Reg.rbx, 7L) ] "imul %rbx, %rax" in
  check64 "imul" 42L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rax, 0xFFFFFFFFL); (Reg.rbx, 0x100000000L) ] "mul %rbx" in
  check64 "mul low" 0xFFFFFFFF00000000L (gpr st Reg.rax);
  check64 "mul high" 0L (gpr st Reg.rdx);
  let st, _ = run ~regs:[ (Reg.rax, Int64.shift_left 1L 62); (Reg.rbx, 4L) ] "mul %rbx" in
  check64 "mul high set" 1L (gpr st Reg.rdx);
  Alcotest.(check bool) "cf on high" true st.flags.cf

let test_div_paths () =
  let st, evs =
    run ~regs:[ (Reg.rax, 100L); (Reg.rdx, 0L); (Reg.rcx, 7L) ] "divl %ecx"
  in
  check64 "quotient" 14L (gpr st Reg.rax);
  check64 "remainder" 2L (gpr st Reg.rdx);
  Alcotest.(check bool) "fast path" true (List.mem Xsem.Semantics.Div_fast_path evs);
  let st, evs =
    run ~regs:[ (Reg.rax, 0L); (Reg.rdx, 1L); (Reg.rcx, 16L) ] "divq %rcx"
  in
  (* dividend = 2^64, divisor 16: quotient 2^60 *)
  check64 "wide quotient" (Int64.shift_left 1L 60) (gpr st Reg.rax);
  Alcotest.(check bool) "slow path" true (List.mem Xsem.Semantics.Div_slow_path evs)

let test_div_by_zero () =
  let _, evs = run ~regs:[ (Reg.rax, 5L); (Reg.rdx, 0L); (Reg.rcx, 0L) ] "divq %rcx" in
  Alcotest.(check bool) "sigfpe event" true (List.mem Xsem.Semantics.Div_by_zero evs)

let test_idiv () =
  let st, _ =
    run ~regs:[ (Reg.rax, -100L); (Reg.rcx, 7L) ] "cqo\nidivq %rcx"
  in
  check64 "quotient" (-14L) (gpr st Reg.rax);
  check64 "remainder" (-2L) (gpr st Reg.rdx)

let test_movzx_movsx () =
  let st, _ = run ~regs:[ (Reg.rbx, 0xFFL) ] "movzbl %bl, %eax" in
  check64 "movzx" 0xFFL (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rbx, 0xFFL) ] "movsbl %bl, %eax" in
  check64 "movsx" 0xFFFFFFFFL (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rbx, 0xFFFFFFFFL) ] "movslq %ebx, %rax" in
  check64 "movsxd" 0xFFFFFFFFFFFFFFFFL (gpr st Reg.rax)

let test_lea () =
  let st, _ =
    run ~regs:[ (Reg.rbx, 0x100L); (Reg.rcx, 4L) ] "lea 8(%rbx, %rcx, 4), %rax"
  in
  check64 "lea" 0x118L (gpr st Reg.rax)

let test_cmov_set () =
  let st, _ = run ~regs:[ (Reg.rax, 1L); (Reg.rbx, 1L); (Reg.rcx, 99L) ]
      "cmp %rbx, %rax\ncmove %rcx, %rdx" in
  check64 "cmov taken" 99L (gpr st Reg.rdx);
  let st, _ = run ~regs:[ (Reg.rax, 1L); (Reg.rbx, 2L); (Reg.rcx, 99L); (Reg.rdx, 7L) ]
      "cmp %rbx, %rax\ncmove %rcx, %rdx" in
  check64 "cmov not taken" 7L (gpr st Reg.rdx);
  let st, _ = run ~regs:[ (Reg.rax, 5L); (Reg.rbx, 5L) ] "cmp %rbx, %rax\nsete %cl" in
  check64 "sete" 1L (gpr st Reg.cl)

let test_stack () =
  let st, _ =
    run ~regs:[ (Reg.rsp, 0x11000L); (Reg.rax, 42L) ] "push %rax\npop %rbx"
  in
  check64 "pushed/popped" 42L (gpr st Reg.rbx);
  check64 "rsp restored" 0x11000L (gpr st Reg.rsp)

let test_memory_ops () =
  let st, _ =
    run ~regs:[ (Reg.rbx, 0x10100L); (Reg.rax, 0x1122334455667788L) ]
      "movq %rax, 8(%rbx)\nmovq 8(%rbx), %rcx\nmovl 8(%rbx), %edx"
  in
  check64 "store/load q" 0x1122334455667788L (gpr st Reg.rcx);
  check64 "load d" 0x55667788L (gpr st Reg.rdx)

let test_rmw () =
  let st, _ =
    run ~regs:[ (Reg.rbx, 0x10100L) ] "movq $5, (%rbx)\naddq $3, (%rbx)\nmovq (%rbx), %rax"
  in
  check64 "rmw" 8L (gpr st Reg.rax)

let test_bitscan () =
  let st, _ = run ~regs:[ (Reg.rbx, 0x100L) ] "bsf %rbx, %rax" in
  check64 "bsf" 8L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rbx, 0x100L) ] "bsr %rbx, %rax" in
  check64 "bsr" 8L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rbx, 0xF0F0L) ] "popcnt %rbx, %rax" in
  check64 "popcnt" 8L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rbx, 0L) ] "tzcnt %rbx, %rax" in
  check64 "tzcnt zero" 64L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rbx, 1L) ] "lzcnt %rbx, %rax" in
  check64 "lzcnt" 63L (gpr st Reg.rax)

let test_bswap () =
  let st, _ = run ~regs:[ (Reg.rax, 0x1122334455667788L) ] "bswap %rax" in
  check64 "bswap64" 0x8877665544332211L (gpr st Reg.rax)

let test_bmi () =
  let st, _ = run ~regs:[ (Reg.rbx, 0b1100L); (Reg.rcx, 0b1010L) ] "andn %rcx, %rbx, %rax" in
  check64 "andn" 0b0010L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rbx, 0b10100L) ] "blsi %rbx, %rax" in
  check64 "blsi" 0b100L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rbx, 0b10100L) ] "blsr %rbx, %rax" in
  check64 "blsr" 0b10000L (gpr st Reg.rax)

let test_xchg () =
  let st, _ = run ~regs:[ (Reg.rax, 1L); (Reg.rbx, 2L) ] "xchg %rbx, %rax" in
  check64 "rax" 2L (gpr st Reg.rax);
  check64 "rbx" 1L (gpr st Reg.rbx)

(* --- vector ----------------------------------------------------------- *)

let vec st i = Xsem.Machine_state.get_vec st (Reg.Xmm i)

let f32 bits = Int32.float_of_bits bits
let bits_of_f32 = Int32.bits_of_float

let set_xmm_f32 st i (a, b, c, d) =
  let buf = Bytes.create 16 in
  Bytes.set_int32_le buf 0 (bits_of_f32 a);
  Bytes.set_int32_le buf 4 (bits_of_f32 b);
  Bytes.set_int32_le buf 8 (bits_of_f32 c);
  Bytes.set_int32_le buf 12 (bits_of_f32 d);
  Xsem.Machine_state.set_vec st (Reg.Xmm i) buf

let get_xmm_f32 st i =
  let b = vec st i in
  ( f32 (Bytes.get_int32_le b 0),
    f32 (Bytes.get_int32_le b 4),
    f32 (Bytes.get_int32_le b 8),
    f32 (Bytes.get_int32_le b 12) )

let run_vec ?ftz setup text =
  let st = Xsem.Machine_state.create () in
  (match ftz with Some f -> st.ftz <- f | None -> ());
  let mmu = Memsim.Mmu.create () in
  for vpn = 0x10 to 0x18 do
    ignore (Memsim.Mmu.map_fresh mmu (Int64.of_int vpn))
  done;
  setup st;
  match Xsem.Executor.run st mmu (Parser.block_exn text) with
  | Xsem.Executor.Completed steps ->
    (st, List.concat_map (fun (s : Xsem.Executor.step) -> s.events) steps)
  | Faulted { fault; _ } -> Alcotest.failf "fault: %s" (Memsim.Fault.to_string fault)

let test_addps () =
  let st, _ =
    run_vec
      (fun st ->
        set_xmm_f32 st 0 (1.0, 2.0, 3.0, 4.0);
        set_xmm_f32 st 1 (10.0, 20.0, 30.0, 40.0))
      "addps %xmm1, %xmm0"
  in
  let a, b, c, d = get_xmm_f32 st 0 in
  Alcotest.(check (float 0.0)) "lane0" 11.0 a;
  Alcotest.(check (float 0.0)) "lane1" 22.0 b;
  Alcotest.(check (float 0.0)) "lane2" 33.0 c;
  Alcotest.(check (float 0.0)) "lane3" 44.0 d

let test_scalar_merge () =
  let st, _ =
    run_vec
      (fun st ->
        set_xmm_f32 st 0 (1.0, 2.0, 3.0, 4.0);
        set_xmm_f32 st 1 (10.0, 20.0, 30.0, 40.0))
      "addss %xmm1, %xmm0"
  in
  let a, b, _, _ = get_xmm_f32 st 0 in
  Alcotest.(check (float 0.0)) "low lane added" 11.0 a;
  Alcotest.(check (float 0.0)) "upper preserved" 2.0 b

let test_avx_3op () =
  let st, _ =
    run_vec
      (fun st ->
        set_xmm_f32 st 1 (1.0, 2.0, 3.0, 4.0);
        set_xmm_f32 st 2 (5.0, 6.0, 7.0, 8.0))
      "vmulps %xmm2, %xmm1, %xmm0"
  in
  let a, _, _, d = get_xmm_f32 st 0 in
  Alcotest.(check (float 0.0)) "lane0" 5.0 a;
  Alcotest.(check (float 0.0)) "lane3" 32.0 d

let test_zero_idiom_vec () =
  let st, _ =
    run_vec (fun st -> set_xmm_f32 st 2 (1.0, 2.0, 3.0, 4.0))
      "vxorps %xmm2, %xmm2, %xmm2"
  in
  Alcotest.(check bool) "zeroed" true (Bytes.equal (vec st 2) (Bytes.make 16 '\000'))

let test_subnormal_event () =
  let tiny = Int32.float_of_bits 0x00000400l in
  let _, evs =
    run_vec (fun st -> set_xmm_f32 st 0 (tiny, 0.0, 0.0, 0.0))
      "addss %xmm0, %xmm0"
  in
  Alcotest.(check bool) "event without ftz" true (List.mem Xsem.Semantics.Subnormal evs);
  let st, evs =
    run_vec ~ftz:true (fun st -> set_xmm_f32 st 0 (tiny, 0.0, 0.0, 0.0))
      "addss %xmm0, %xmm0"
  in
  Alcotest.(check bool) "no event with ftz" false (List.mem Xsem.Semantics.Subnormal evs);
  let a, _, _, _ = get_xmm_f32 st 0 in
  Alcotest.(check (float 0.0)) "flushed to zero" 0.0 a

let test_pshufd () =
  let st, _ =
    run_vec
      (fun st ->
        let b = Bytes.create 16 in
        List.iteri (fun i v -> Bytes.set_int32_le b (4 * i) v) [ 10l; 20l; 30l; 40l ];
        Xsem.Machine_state.set_vec st (Reg.Xmm 1) b)
      "pshufd $0x1b, %xmm1, %xmm0" (* 0b00_01_10_11: reverse *)
  in
  let b = vec st 0 in
  Alcotest.(check int32) "lane0" 40l (Bytes.get_int32_le b 0);
  Alcotest.(check int32) "lane3" 10l (Bytes.get_int32_le b 12)

let test_padd_wrap () =
  let st, _ =
    run_vec
      (fun st ->
        let b = Bytes.make 16 '\xff' in
        Xsem.Machine_state.set_vec st (Reg.Xmm 0) b;
        let c = Bytes.make 16 '\001' in
        Xsem.Machine_state.set_vec st (Reg.Xmm 1) c)
      "paddb %xmm1, %xmm0"
  in
  Alcotest.(check bool) "wraps to zero" true (Bytes.equal (vec st 0) (Bytes.make 16 '\000'))

let test_pcmpeq () =
  let st, _ =
    run_vec
      (fun st ->
        let b = Bytes.make 16 '\x07' in
        Xsem.Machine_state.set_vec st (Reg.Xmm 0) b;
        Xsem.Machine_state.set_vec st (Reg.Xmm 1) (Bytes.copy b))
      "pcmpeqd %xmm1, %xmm0"
  in
  Alcotest.(check bool) "all ones" true (Bytes.equal (vec st 0) (Bytes.make 16 '\xff'))

let test_pmovmskb () =
  let st, _ =
    run_vec
      (fun st ->
        let b = Bytes.make 16 '\000' in
        Bytes.set b 0 '\x80';
        Bytes.set b 15 '\xff';
        Xsem.Machine_state.set_vec st (Reg.Xmm 1) b)
      "pmovmskb %xmm1, %eax"
  in
  check64 "mask" 0x8001L (gpr st Reg.rax)

let test_movmskps () =
  let st, _ =
    run_vec (fun st -> set_xmm_f32 st 1 (-1.0, 2.0, -3.0, 4.0))
      "movmskps %xmm1, %eax"
  in
  check64 "sign mask" 0b0101L (gpr st Reg.rax)

let test_cvt () =
  let st, _ = run_vec (fun st -> Xsem.Machine_state.set_reg st Reg.ecx 42L)
      "cvtsi2ss %ecx, %xmm0" in
  let a, _, _, _ = get_xmm_f32 st 0 in
  Alcotest.(check (float 0.0)) "cvtsi2ss" 42.0 a;
  let st, _ = run_vec (fun st -> set_xmm_f32 st 1 (7.75, 0.0, 0.0, 0.0))
      "cvttss2si %xmm1, %eax" in
  check64 "cvttss2si truncates" 7L (gpr st Reg.rax)

let test_fma () =
  let st, _ =
    run_vec
      (fun st ->
        set_xmm_f32 st 0 (1.0, 1.0, 1.0, 1.0);
        set_xmm_f32 st 1 (2.0, 3.0, 4.0, 5.0);
        set_xmm_f32 st 2 (10.0, 10.0, 10.0, 10.0))
      "vfmadd231ps %xmm2, %xmm1, %xmm0"
  in
  (* 231: dst = src2*src3 + dst *)
  let a, b, _, _ = get_xmm_f32 st 0 in
  Alcotest.(check (float 0.0)) "lane0" 21.0 a;
  Alcotest.(check (float 0.0)) "lane1" 31.0 b

let test_unpck_shuf () =
  let st, _ =
    run_vec
      (fun st ->
        set_xmm_f32 st 0 (1.0, 2.0, 3.0, 4.0);
        set_xmm_f32 st 1 (5.0, 6.0, 7.0, 8.0))
      "unpcklps %xmm1, %xmm0"
  in
  let a, b, c, d = get_xmm_f32 st 0 in
  Alcotest.(check (float 0.0)) "a" 1.0 a;
  Alcotest.(check (float 0.0)) "b" 5.0 b;
  Alcotest.(check (float 0.0)) "c" 2.0 c;
  Alcotest.(check (float 0.0)) "d" 6.0 d

let test_packss_saturation () =
  let st, _ =
    run_vec
      (fun st ->
        let b = Bytes.create 16 in
        for i = 0 to 7 do
          Bytes.set_uint16_le b (2 * i) (if i mod 2 = 0 then 0x7FFF else 0x8000)
        done;
        Xsem.Machine_state.set_vec st (Reg.Xmm 0) b;
        Xsem.Machine_state.set_vec st (Reg.Xmm 1) (Bytes.copy b))
      "packsswb %xmm1, %xmm0"
  in
  let b = vec st 0 in
  Alcotest.(check int) "saturate high" 0x7F (Char.code (Bytes.get b 0));
  Alcotest.(check int) "saturate low" 0x80 (Char.code (Bytes.get b 1))

let test_ucomis_flags () =
  let st, _ =
    run_vec (fun st ->
        set_xmm_f32 st 0 (1.0, 0.0, 0.0, 0.0);
        set_xmm_f32 st 1 (2.0, 0.0, 0.0, 0.0))
      "ucomiss %xmm1, %xmm0"
  in
  Alcotest.(check bool) "below" true st.flags.cf;
  Alcotest.(check bool) "not equal" false st.flags.zf

let test_movd_movq () =
  let st, _ = run_vec (fun st -> Xsem.Machine_state.set_reg st Reg.rax 0x1122334455667788L)
      "movq %rax, %xmm0\nmovq %xmm0, %rbx" in
  check64 "roundtrip" 0x1122334455667788L (gpr st Reg.rbx)

let test_vbroadcast () =
  let st, _ =
    run_vec
      (fun st -> Xsem.Machine_state.set_reg st Reg.rbx 0x10100L)
      "movl $0x40490fdb, (%rbx)\nvbroadcastss (%rbx), %xmm0" ~ftz:false
  in
  let a, b, c, d = get_xmm_f32 st 0 in
  List.iter (fun v -> Alcotest.(check bool) "pi-ish" true (Float.abs (v -. 3.14159) < 0.001))
    [ a; b; c; d ]

let test_crc32 () =
  (* crc32c of a single zero byte from initial 0 accumulator *)
  let st, _ =
    run ~regs:[ (Reg.rax, 0L); (Reg.rbx, 0L) ] "crc32b %bl, %eax"
  in
  check64 "crc of 0 is 0" 0L (gpr st Reg.rax);
  let st, _ = run ~regs:[ (Reg.rax, 0L); (Reg.rbx, 0xFFL) ] "crc32b %bl, %eax" in
  Alcotest.(check bool) "crc nonzero" true (gpr st Reg.rax <> 0L)

let suite =
  [
    Alcotest.test_case "mov widths" `Quick test_mov_widths;
    Alcotest.test_case "add flags" `Quick test_add_flags;
    Alcotest.test_case "sub/cmp flags" `Quick test_sub_cmp_flags;
    Alcotest.test_case "adc carry chain" `Quick test_adc_sbb;
    Alcotest.test_case "logic" `Quick test_logic;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "multiply" `Quick test_mul;
    Alcotest.test_case "div fast/slow paths" `Quick test_div_paths;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero;
    Alcotest.test_case "idiv" `Quick test_idiv;
    Alcotest.test_case "movzx/movsx" `Quick test_movzx_movsx;
    Alcotest.test_case "lea" `Quick test_lea;
    Alcotest.test_case "cmov/setcc" `Quick test_cmov_set;
    Alcotest.test_case "push/pop" `Quick test_stack;
    Alcotest.test_case "memory ops" `Quick test_memory_ops;
    Alcotest.test_case "rmw" `Quick test_rmw;
    Alcotest.test_case "bit scans" `Quick test_bitscan;
    Alcotest.test_case "bswap" `Quick test_bswap;
    Alcotest.test_case "bmi" `Quick test_bmi;
    Alcotest.test_case "xchg" `Quick test_xchg;
    Alcotest.test_case "addps lanes" `Quick test_addps;
    Alcotest.test_case "scalar merge" `Quick test_scalar_merge;
    Alcotest.test_case "avx 3-operand" `Quick test_avx_3op;
    Alcotest.test_case "vector zero idiom" `Quick test_zero_idiom_vec;
    Alcotest.test_case "subnormal events/ftz" `Quick test_subnormal_event;
    Alcotest.test_case "pshufd" `Quick test_pshufd;
    Alcotest.test_case "padd wraps" `Quick test_padd_wrap;
    Alcotest.test_case "pcmpeq" `Quick test_pcmpeq;
    Alcotest.test_case "pmovmskb" `Quick test_pmovmskb;
    Alcotest.test_case "movmskps" `Quick test_movmskps;
    Alcotest.test_case "conversions" `Quick test_cvt;
    Alcotest.test_case "fma 231" `Quick test_fma;
    Alcotest.test_case "unpcklps" `Quick test_unpck_shuf;
    Alcotest.test_case "packss saturation" `Quick test_packss_saturation;
    Alcotest.test_case "ucomiss flags" `Quick test_ucomis_flags;
    Alcotest.test_case "movd/movq transfer" `Quick test_movd_movq;
    Alcotest.test_case "vbroadcastss" `Quick test_vbroadcast;
    Alcotest.test_case "crc32" `Quick test_crc32;
  ]
