open X86

let make_env () =
  let st = Xsem.Machine_state.create () in
  let mmu = Memsim.Mmu.create () in
  for vpn = 0x10 to 0x14 do
    ignore (Memsim.Mmu.map_fresh mmu (Int64.of_int vpn))
  done;
  (st, mmu)

let test_fault_position () =
  let st, mmu = make_env () in
  Xsem.Machine_state.set_reg st Reg.rbx 0x10000L;
  Xsem.Machine_state.set_reg st Reg.rcx 0x900000L (* unmapped *);
  let block =
    Parser.block_exn "add $1, %rax\nmovq (%rbx), %rdx\nmovq (%rcx), %rsi\nadd $2, %rax"
  in
  match Xsem.Executor.run st mmu block with
  | Xsem.Executor.Faulted { at; steps; fault } ->
    Alcotest.(check int) "faults at index 2" 2 at;
    Alcotest.(check int) "two steps completed" 2 (List.length steps);
    (match fault with
    | Memsim.Fault.Segfault a -> Alcotest.(check int64) "fault addr" 0x900000L a
    | _ -> Alcotest.fail "expected segfault")
  | Completed _ -> Alcotest.fail "expected fault"

let test_partial_state_after_fault () =
  let st, mmu = make_env () in
  Xsem.Machine_state.set_reg st Reg.rcx 0x900000L;
  let block = Parser.block_exn "mov $42, %rax\nmovq (%rcx), %rsi" in
  (match Xsem.Executor.run st mmu block with
  | Xsem.Executor.Faulted _ -> ()
  | Completed _ -> Alcotest.fail "expected fault");
  (* effects before the fault are visible, as for a real SIGSEGV *)
  Alcotest.(check int64) "rax written" 42L (Xsem.Machine_state.get_reg st Reg.rax)

let test_rip_advances () =
  let st, mmu = make_env () in
  let block = Parser.block_exn "add $1, %rax\nadd $2, %rbx" in
  (match Xsem.Executor.run st mmu block with
  | Xsem.Executor.Completed _ -> ()
  | Faulted _ -> Alcotest.fail "fault");
  let expected = Int64.of_int (Encoder.block_length block) in
  Alcotest.(check int64) "rip = code length" expected st.rip

let test_unrolled_accesses () =
  let st, mmu = make_env () in
  Xsem.Machine_state.set_reg st Reg.rbx 0x10000L;
  let block = Parser.block_exn "movq (%rbx), %rax\nadd $8, %rbx" in
  match Xsem.Executor.run_unrolled st mmu block ~unroll:5 with
  | Xsem.Executor.Completed steps ->
    Alcotest.(check int) "10 steps" 10 (List.length steps);
    let accesses = List.concat_map (fun (s : Xsem.Executor.step) -> s.accesses) steps in
    Alcotest.(check int) "5 loads" 5 (List.length accesses);
    (* addresses advance by 8 each iteration *)
    List.iteri
      (fun k (a : Memsim.Mmu.access) ->
        Alcotest.(check int64) "address" (Int64.of_int (0x10000 + (8 * k))) a.vaddr)
      accesses
  | Faulted _ -> Alcotest.fail "fault"

let test_step_indices () =
  let st, mmu = make_env () in
  let block = Parser.block_exn "add $1, %rax\nadd $1, %rbx\nadd $1, %rcx" in
  match Xsem.Executor.run st mmu block with
  | Xsem.Executor.Completed steps ->
    List.iteri
      (fun k (s : Xsem.Executor.step) -> Alcotest.(check int) "index" k s.index)
      steps
  | Faulted _ -> Alcotest.fail "fault"

let test_events_collected () =
  let st, mmu = make_env () in
  Xsem.Machine_state.set_reg st Reg.rcx 3L;
  Xsem.Machine_state.set_reg st Reg.rax 10L;
  Xsem.Machine_state.set_reg st Reg.rdx 0L;
  let block = Parser.block_exn "divq %rcx" in
  let result = Xsem.Executor.run st mmu block in
  Alcotest.(check bool) "completed" true (Xsem.Executor.completed result);
  Alcotest.(check bool) "fast path event" true
    (List.mem Xsem.Semantics.Div_fast_path (Xsem.Executor.all_events result))

let test_store_then_load_roundtrip_across_iterations () =
  let st, mmu = make_env () in
  Xsem.Machine_state.set_reg st Reg.rbx 0x10080L;
  Xsem.Machine_state.set_reg st Reg.rax 7L;
  (* accumulate through memory across unrolled iterations *)
  let block = Parser.block_exn "movq %rax, (%rbx)\naddq (%rbx), %rax" in
  match Xsem.Executor.run_unrolled st mmu block ~unroll:3 with
  | Xsem.Executor.Completed _ ->
    (* 7 -> 14 -> 28 -> 56 *)
    Alcotest.(check int64) "accumulated" 56L (Xsem.Machine_state.get_reg st Reg.rax)
  | Faulted _ -> Alcotest.fail "fault"

let test_state_copy_independent () =
  let st, _ = make_env () in
  Xsem.Machine_state.set_reg st Reg.rax 1L;
  let snapshot = Xsem.Machine_state.copy st in
  Xsem.Machine_state.set_reg st Reg.rax 2L;
  Alcotest.(check int64) "snapshot unchanged" 1L
    (Xsem.Machine_state.get_reg snapshot Reg.rax);
  Xsem.Machine_state.copy_into ~src:snapshot ~dst:st;
  Alcotest.(check int64) "restored" 1L (Xsem.Machine_state.get_reg st Reg.rax)

let test_init_constant () =
  let st = Xsem.Machine_state.create () in
  Xsem.Machine_state.init_constant st 0x12345600L;
  List.iter
    (fun g ->
      Alcotest.(check int64) "gpr init" 0x12345600L
        (Xsem.Machine_state.get_gpr64 st g))
    Reg.all_gprs;
  let v = Xsem.Machine_state.get_vec st (Reg.Xmm 3) in
  Alcotest.(check int32) "vec fill" 0x12345600l (Bytes.get_int32_le v 0);
  Alcotest.(check int32) "vec fill repeats" 0x12345600l (Bytes.get_int32_le v 12)

let suite =
  [
    Alcotest.test_case "fault position" `Quick test_fault_position;
    Alcotest.test_case "partial state after fault" `Quick test_partial_state_after_fault;
    Alcotest.test_case "rip advances" `Quick test_rip_advances;
    Alcotest.test_case "unrolled accesses" `Quick test_unrolled_accesses;
    Alcotest.test_case "step indices" `Quick test_step_indices;
    Alcotest.test_case "events collected" `Quick test_events_collected;
    Alcotest.test_case "memory accumulate" `Quick test_store_then_load_roundtrip_across_iterations;
    Alcotest.test_case "state copy" `Quick test_state_copy_independent;
    Alcotest.test_case "init constant" `Quick test_init_constant;
  ]
