let small_config = { Corpus.Suite.default_config with scale = 800 }

let suite_blocks = lazy (Corpus.Suite.generate ~config:small_config ())

let test_determinism () =
  let a = Corpus.Suite.generate ~config:small_config () in
  let b = Corpus.Suite.generate ~config:small_config () in
  Alcotest.(check int) "same size" (List.length a) (List.length b);
  List.iter2
    (fun (x : Corpus.Block.t) (y : Corpus.Block.t) ->
      Alcotest.(check string) "id" x.id y.id;
      Alcotest.(check bool) "same insts" true
        (List.for_all2 X86.Inst.equal x.insts y.insts))
    a b

let test_counts_scale () =
  let blocks = Lazy.force suite_blocks in
  let counts = Corpus.Suite.count_by_app blocks in
  Alcotest.(check int) "nine applications" 9 (List.length counts);
  List.iter
    (fun (app : Corpus.Apps.t) ->
      let n = List.assoc app.name counts in
      Alcotest.(check int)
        (app.name ^ " scaled count")
        (max 8 (app.paper_count / small_config.scale))
        n)
    Corpus.Apps.suite_apps

let test_no_control_flow () =
  List.iter
    (fun (b : Corpus.Block.t) ->
      List.iter
        (fun (i : X86.Inst.t) ->
          if X86.Opcode.is_control_flow i.opcode then
            Alcotest.failf "%s contains control flow: %s" b.id (X86.Inst.to_string i))
        b.insts)
    (Lazy.force suite_blocks)

let test_blocks_valid () =
  List.iter
    (fun (b : Corpus.Block.t) ->
      List.iter
        (fun (i : X86.Inst.t) ->
          match X86.Inst.validate i with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" b.id e)
        b.insts)
    (Lazy.force suite_blocks)

let test_lengths_in_range () =
  List.iter
    (fun (b : Corpus.Block.t) ->
      let n = Corpus.Block.length b in
      if n < 1 || n > 150 then Alcotest.failf "%s: odd length %d" b.id n)
    (Lazy.force suite_blocks)

let test_mem_free_share () =
  let blocks = Lazy.force suite_blocks in
  let free =
    List.length
      (List.filter (fun b -> not (Corpus.Block.has_memory_access b)) blocks)
  in
  let pct = 100.0 *. float_of_int free /. float_of_int (List.length blocks) in
  Alcotest.(check bool)
    (Printf.sprintf "register-only share near paper's 16.65%% (got %.1f%%)" pct)
    true
    (pct > 8.0 && pct < 25.0)

let test_frequencies_positive () =
  List.iter
    (fun (b : Corpus.Block.t) ->
      Alcotest.(check bool) "freq > 0" true (b.freq > 0))
    (Lazy.force suite_blocks)

let test_paper_blocks () =
  Alcotest.(check int) "division len" 3 (List.length Corpus.Paper_blocks.division);
  Alcotest.(check int) "zero idiom len" 1 (List.length Corpus.Paper_blocks.zero_idiom);
  Alcotest.(check int) "crc len" 7 (List.length Corpus.Paper_blocks.gzip_crc);
  Alcotest.(check bool) "tf block is large" true
    (List.length Corpus.Paper_blocks.tensorflow_ablation > 40);
  Alcotest.(check bool) "tf block code > 32KB/100" true
    (X86.Encoder.block_length Corpus.Paper_blocks.tensorflow_ablation * 100 > 32 * 1024)

let test_tracer () =
  let rng = Bstats.Rng.create 7L in
  let header = X86.Parser.block_exn "mov $0, %eax" in
  let body = X86.Parser.block_exn "add $1, %rax\nadd $1, %rbx" in
  let exit_block = X86.Parser.block_exn "mov %eax, %edx" in
  let program = Corpus.Program.loop ~name:"toy" ~header ~body ~exit_block ~iters:50 in
  let records = Corpus.Tracer.trace rng program in
  Alcotest.(check int) "three blocks observed" 3 (List.length records);
  let body_rec = List.nth records 1 in
  Alcotest.(check bool)
    (Printf.sprintf "loop body hot (%d)" body_rec.count)
    true (body_rec.count > 5);
  (* blocks come back through the encoder unchanged *)
  Alcotest.(check bool) "decoded body matches" true
    (List.for_all2 X86.Inst.equal body body_rec.block.insts)

let test_tracer_rejects_control_flow_in_body () =
  let bad = X86.Parser.block_exn "jmp $0" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Corpus.Program.make ~name:"bad" [| { body = bad; term = Corpus.Program.Return } |]);
       false
     with Invalid_argument _ -> true)

let test_google_corpora () =
  let google = Corpus.Suite.generate_google ~config:small_config () in
  let spanner = List.filter (fun (b : Corpus.Block.t) -> b.app = "spanner") google in
  let dremel = List.filter (fun (b : Corpus.Block.t) -> b.app = "dremel") google in
  Alcotest.(check bool) "spanner present" true (List.length spanner > 0);
  Alcotest.(check bool) "dremel present" true (List.length dremel > 0)

let test_scale_env () =
  let c = Corpus.Suite.config_from_env () in
  Alcotest.(check bool) "default scale" true (c.scale >= 1)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "counts scale" `Quick test_counts_scale;
    Alcotest.test_case "no control flow" `Quick test_no_control_flow;
    Alcotest.test_case "blocks valid" `Quick test_blocks_valid;
    Alcotest.test_case "lengths in range" `Quick test_lengths_in_range;
    Alcotest.test_case "register-only share" `Quick test_mem_free_share;
    Alcotest.test_case "frequencies positive" `Quick test_frequencies_positive;
    Alcotest.test_case "paper blocks" `Quick test_paper_blocks;
    Alcotest.test_case "tracer" `Quick test_tracer;
    Alcotest.test_case "tracer validation" `Quick test_tracer_rejects_control_flow_in_body;
    Alcotest.test_case "google corpora" `Quick test_google_corpora;
    Alcotest.test_case "scale env" `Quick test_scale_env;
  ]
