let test_valid_addresses () =
  let v = Memsim.Fault.is_valid_address in
  Alcotest.(check bool) "null page" false (v 0L);
  Alcotest.(check bool) "low" false (v 0xFFFL);
  Alcotest.(check bool) "first valid" true (v 0x1000L);
  Alcotest.(check bool) "typical" true (v 0x12345600L);
  Alcotest.(check bool) "too high" false (v 0x7FFF_FFFF_F000L);
  Alcotest.(check bool) "non canonical" false (v 0x1234560012345600L);
  Alcotest.(check bool) "negative" false (v (-1L))

let test_page_arith () =
  Alcotest.(check int64) "page" 0x12345L (Memsim.Fault.page_of_address 0x12345600L);
  Alcotest.(check int64) "addr" 0x12345000L (Memsim.Fault.address_of_page 0x12345L);
  Alcotest.(check int) "offset" 0x600 (Memsim.Fault.offset_in_page 0x12345600L)

let test_phys_fill () =
  let p = Memsim.Phys_mem.create () in
  let pfn = Memsim.Phys_mem.allocate p in
  Memsim.Phys_mem.fill_const p pfn 0x12345600l;
  Alcotest.(check int) "byte 0" 0x00 (Memsim.Phys_mem.read_byte p pfn 0);
  Alcotest.(check int) "byte 1" 0x56 (Memsim.Phys_mem.read_byte p pfn 1);
  Alcotest.(check int) "byte 2" 0x34 (Memsim.Phys_mem.read_byte p pfn 2);
  Alcotest.(check int) "byte 3" 0x12 (Memsim.Phys_mem.read_byte p pfn 3);
  Alcotest.(check int) "repeats" 0x56 (Memsim.Phys_mem.read_byte p pfn 4093)

let test_page_table_aliasing () =
  let t = Memsim.Page_table.create () in
  Memsim.Page_table.map t ~vpn:1L ~pfn:42L;
  Memsim.Page_table.map t ~vpn:2L ~pfn:42L;
  Memsim.Page_table.map t ~vpn:3L ~pfn:43L;
  Alcotest.(check int) "count" 3 (Memsim.Page_table.count t);
  Alcotest.(check int) "frames" 2 (Memsim.Page_table.distinct_frames t);
  Alcotest.(check bool) "translate" true (Memsim.Page_table.translate_page t 2L = Some 42L);
  Memsim.Page_table.unmap t 2L;
  Alcotest.(check bool) "unmapped" true (Memsim.Page_table.translate_page t 2L = None)

let test_mmu_fault () =
  let mmu = Memsim.Mmu.create () in
  (match Memsim.Mmu.read_bytes mmu 0x5000L 4 with
  | exception Memsim.Fault.Fault (Memsim.Fault.Segfault a) ->
    Alcotest.(check int64) "fault addr" 0x5000L a
  | _ -> Alcotest.fail "expected segfault");
  match Memsim.Mmu.read_bytes mmu 0x1234560012345600L 8 with
  | exception Memsim.Fault.Fault (Memsim.Fault.Non_canonical _) -> ()
  | _ -> Alcotest.fail "expected non-canonical"

let test_mmu_rw () =
  let mmu = Memsim.Mmu.create () in
  ignore (Memsim.Mmu.map_fresh mmu 5L);
  Memsim.Mmu.write_u64 mmu 0x5010L 0xDEADBEEFCAFEBABEL;
  Alcotest.(check int64) "read back" 0xDEADBEEFCAFEBABEL (Memsim.Mmu.read_u64 mmu 0x5010L)

let test_mmu_aliasing_shares_data () =
  let mmu = Memsim.Mmu.create () in
  let pfn = Memsim.Phys_mem.allocate (Memsim.Mmu.phys mmu) in
  Memsim.Mmu.map_aliased mmu ~vpn:5L ~pfn;
  Memsim.Mmu.map_aliased mmu ~vpn:9L ~pfn;
  Memsim.Mmu.write_u64 mmu 0x5040L 77L;
  Alcotest.(check int64) "aliased read" 77L (Memsim.Mmu.read_u64 mmu 0x9040L)

let test_cache_basic () =
  let c = Memsim.Cache.l1_default () in
  Alcotest.(check int) "first access misses" 1 (Memsim.Cache.access c ~addr:0x1000L ~size:8);
  Alcotest.(check int) "second access hits" 0 (Memsim.Cache.access c ~addr:0x1000L ~size:8);
  Alcotest.(check int) "same line hits" 0 (Memsim.Cache.access c ~addr:0x1030L ~size:8);
  Alcotest.(check int) "next line misses" 1 (Memsim.Cache.access c ~addr:0x1040L ~size:8)

let test_cache_split_access () =
  let c = Memsim.Cache.l1_default () in
  Alcotest.(check bool) "crossing" true (Memsim.Cache.crosses_line c ~addr:0x103CL ~size:8);
  Alcotest.(check bool) "not crossing" false (Memsim.Cache.crosses_line c ~addr:0x1038L ~size:8);
  Alcotest.(check int) "split costs 2 lines" 2 (Memsim.Cache.access c ~addr:0x103CL ~size:8)

let test_cache_capacity () =
  let c = Memsim.Cache.create ~size_bytes:512 ~ways:2 ~line_bytes:64 in
  (* 4 sets x 2 ways; touching 3 lines of the same set evicts *)
  let addr set way = Int64.of_int ((way * 4 * 64) + (set * 64)) in
  ignore (Memsim.Cache.access c ~addr:(addr 0 0) ~size:1);
  ignore (Memsim.Cache.access c ~addr:(addr 0 1) ~size:1);
  Alcotest.(check int) "way0 still resident" 0 (Memsim.Cache.access c ~addr:(addr 0 0) ~size:1);
  ignore (Memsim.Cache.access c ~addr:(addr 0 2) ~size:1);
  (* LRU: way1 evicted *)
  Alcotest.(check int) "LRU victim" 1 (Memsim.Cache.access c ~addr:(addr 0 1) ~size:1)

let test_cache_single_page_fits () =
  (* the BHive invariant: one 4 KiB frame fits entirely in a 32 KiB
     8-way L1 (64 lines in 64 distinct sets) *)
  let c = Memsim.Cache.l1_default () in
  for k = 0 to 63 do
    ignore (Memsim.Cache.access c ~addr:(Int64.of_int (k * 64)) ~size:8)
  done;
  Memsim.Cache.reset_stats c;
  for k = 0 to 63 do
    ignore (Memsim.Cache.access c ~addr:(Int64.of_int (k * 64)) ~size:8)
  done;
  Alcotest.(check int) "no misses warm" 0 (Memsim.Cache.misses c)

let prop_cache_miss_bound =
  QCheck.Test.make ~name:"access misses at most 2 lines" ~count:300
    QCheck.(pair (int_bound 100000) (int_range 1 32))
    (fun (addr, size) ->
      let c = Memsim.Cache.l1_default () in
      let m = Memsim.Cache.access c ~addr:(Int64.of_int addr) ~size in
      m >= 1 && m <= 2)

let suite =
  [
    Alcotest.test_case "valid addresses" `Quick test_valid_addresses;
    Alcotest.test_case "page arithmetic" `Quick test_page_arith;
    Alcotest.test_case "phys fill" `Quick test_phys_fill;
    Alcotest.test_case "page table aliasing" `Quick test_page_table_aliasing;
    Alcotest.test_case "mmu faults" `Quick test_mmu_fault;
    Alcotest.test_case "mmu read/write" `Quick test_mmu_rw;
    Alcotest.test_case "aliasing shares data" `Quick test_mmu_aliasing_shares_data;
    Alcotest.test_case "cache basic" `Quick test_cache_basic;
    Alcotest.test_case "cache split access" `Quick test_cache_split_access;
    Alcotest.test_case "cache capacity/LRU" `Quick test_cache_capacity;
    Alcotest.test_case "single page fits L1" `Quick test_cache_single_page_fits;
    QCheck_alcotest.to_alcotest prop_cache_miss_bound;
  ]
