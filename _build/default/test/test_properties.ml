(* Property-based tests over the architectural semantics: algebraic
   identities that must hold for arbitrary register values, plus
   robustness properties of the decoders. *)

open X86

let exec_with ~rax ~rbx text =
  let st = Xsem.Machine_state.create () in
  let mmu = Memsim.Mmu.create () in
  for vpn = 0x10 to 0x14 do
    ignore (Memsim.Mmu.map_fresh mmu (Int64.of_int vpn))
  done;
  Xsem.Machine_state.set_reg st Reg.rax rax;
  Xsem.Machine_state.set_reg st Reg.rbx rbx;
  match Xsem.Executor.run st mmu (Parser.block_exn text) with
  | Xsem.Executor.Completed _ -> st
  | Faulted _ -> QCheck.Test.fail_report "unexpected fault"

let reg st r = Xsem.Machine_state.get_reg st r

let pair64 = QCheck.(pair int64 int64)

let prop name count gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let add_sub_identity =
  prop "add then sub is identity" 200 pair64 (fun (a, b) ->
      let st = exec_with ~rax:a ~rbx:b "add %rbx, %rax\nsub %rbx, %rax" in
      Int64.equal (reg st Reg.rax) a)

let xor_twice_identity =
  prop "xor twice is identity" 200 pair64 (fun (a, b) ->
      let st = exec_with ~rax:a ~rbx:b "xor %rbx, %rax\nxor %rbx, %rax" in
      Int64.equal (reg st Reg.rax) a)

let not_twice_identity =
  prop "not twice is identity" 200 QCheck.int64 (fun a ->
      let st = exec_with ~rax:a ~rbx:0L "not %rax\nnot %rax" in
      Int64.equal (reg st Reg.rax) a)

let neg_twice_identity =
  prop "neg twice is identity" 200 QCheck.int64 (fun a ->
      let st = exec_with ~rax:a ~rbx:0L "neg %rax\nneg %rax" in
      Int64.equal (reg st Reg.rax) a)

let bswap_twice_identity =
  prop "bswap twice is identity" 200 QCheck.int64 (fun a ->
      let st = exec_with ~rax:a ~rbx:0L "bswap %rax\nbswap %rax" in
      Int64.equal (reg st Reg.rax) a)

let add_commutes =
  prop "addition commutes" 200 pair64 (fun (a, b) ->
      let s1 = exec_with ~rax:a ~rbx:b "add %rbx, %rax" in
      let s2 = exec_with ~rax:b ~rbx:a "add %rbx, %rax" in
      Int64.equal (reg s1 Reg.rax) (reg s2 Reg.rax))

let lea_matches_arithmetic =
  prop "lea = base + 4*index + disp" 200
    QCheck.(pair int64 (int_bound 1000))
    (fun (b, idx) ->
      let idx64 = Int64.of_int idx in
      let st =
        let stt = Xsem.Machine_state.create () in
        Xsem.Machine_state.set_reg stt Reg.rbx b;
        Xsem.Machine_state.set_reg stt Reg.rcx idx64;
        let mmu = Memsim.Mmu.create () in
        match
          Xsem.Executor.run stt mmu (Parser.block_exn "lea 16(%rbx, %rcx, 4), %rax")
        with
        | Xsem.Executor.Completed _ -> stt
        | Faulted _ -> QCheck.Test.fail_report "fault"
      in
      Int64.equal (reg st Reg.rax)
        (Int64.add (Int64.add b (Int64.mul idx64 4L)) 16L))

let movzx_bounds =
  prop "movzbl result fits in a byte" 200 QCheck.int64 (fun a ->
      let st = exec_with ~rax:0L ~rbx:a "movzbl %bl, %eax" in
      let v = reg st Reg.rax in
      Int64.compare v 0L >= 0 && Int64.compare v 256L < 0)

let store_load_roundtrip =
  prop "store/load roundtrip" 200
    QCheck.(pair int64 (int_bound 400))
    (fun (v, off) ->
      let off = off * 8 in
      let st =
        let stt = Xsem.Machine_state.create () in
        Xsem.Machine_state.set_reg stt Reg.rax v;
        Xsem.Machine_state.set_reg stt Reg.rbx 0x10000L;
        let mmu = Memsim.Mmu.create () in
        for vpn = 0x10 to 0x14 do
          ignore (Memsim.Mmu.map_fresh mmu (Int64.of_int vpn))
        done;
        match
          Xsem.Executor.run stt mmu
            (Parser.block_exn (Printf.sprintf "movq %%rax, %d(%%rbx)\nmovq %d(%%rbx), %%rcx" off off))
        with
        | Xsem.Executor.Completed _ -> stt
        | Faulted _ -> QCheck.Test.fail_report "fault"
      in
      Int64.equal (reg st Reg.rcx) v)

let shifts_compose =
  prop "shl k then shr k masks high bits" 200
    QCheck.(pair int64 (int_range 1 31))
    (fun (a, k) ->
      let st =
        exec_with ~rax:a ~rbx:0L (Printf.sprintf "shl $%d, %%rax\nshr $%d, %%rax" k k)
      in
      let expected =
        Int64.shift_right_logical (Int64.shift_left a k) k
      in
      Int64.equal (reg st Reg.rax) expected)

let popcnt_bounds =
  prop "popcnt in [0,64]" 200 QCheck.int64 (fun a ->
      let st = exec_with ~rax:0L ~rbx:a "popcnt %rbx, %rax" in
      let v = Int64.to_int (reg st Reg.rax) in
      v >= 0 && v <= 64)

let div_mul_reconstruct =
  prop "q*d + r = dividend" 200
    QCheck.(pair (map Int64.abs int64) (int_range 1 100000))
    (fun (dividend, divisor) ->
      let dividend = Int64.logand dividend 0x7FFFFFFFFFFFFFFFL in
      let st =
        let stt = Xsem.Machine_state.create () in
        Xsem.Machine_state.set_reg stt Reg.rax dividend;
        Xsem.Machine_state.set_reg stt Reg.rdx 0L;
        Xsem.Machine_state.set_reg stt Reg.rcx (Int64.of_int divisor);
        let mmu = Memsim.Mmu.create () in
        match Xsem.Executor.run stt mmu (Parser.block_exn "divq %rcx") with
        | Xsem.Executor.Completed _ -> stt
        | Faulted _ -> QCheck.Test.fail_report "fault"
      in
      let q = reg st Reg.rax and r = reg st Reg.rdx in
      Int64.equal dividend (Int64.add (Int64.mul q (Int64.of_int divisor)) r)
      && Int64.unsigned_compare r (Int64.of_int divisor) < 0)

(* decoder robustness: arbitrary bytes either decode or raise
   Decode_error, never anything else *)
let decoder_total =
  prop "decoder is total" 300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 64))
    (fun s ->
      match X86.Encoder.decode_block (Bytes.of_string s) with
      | _ -> true
      | exception X86.Encoder.Decode_error _ -> true
      | exception _ -> false)

(* profiled throughput is never below the theoretical front-end bound *)
let throughput_lower_bound =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 100000 in
      let rng = Bstats.Rng.create (Int64.of_int seed) in
      return (Corpus.Gen.block ~rng ~mix:Corpus.Apps.llvm.mix ~min_len:1 ~max_len:6))
  in
  prop "throughput >= rename bound" 40
    (QCheck.make ~print:(fun b -> String.concat "; " (List.map Inst.to_string b)) gen)
    (fun block ->
      match Harness.Profiler.profile Harness.Environment.default Uarch.All.haswell block with
      | Ok p when p.accepted ->
        let slots =
          List.fold_left
            (fun acc i ->
              acc + (Uarch.Descriptor.decompose Uarch.All.haswell i).fused_slots)
            0 block
        in
        let bound = float_of_int slots /. 4.0 in
        p.throughput >= bound -. 0.3
      | _ -> true)

let suite =
  [
    add_sub_identity;
    xor_twice_identity;
    not_twice_identity;
    neg_twice_identity;
    bswap_twice_identity;
    add_commutes;
    lea_matches_arithmetic;
    movzx_bounds;
    store_load_roundtrip;
    shifts_compose;
    popcnt_bounds;
    div_mul_reconstruct;
    decoder_total;
    throughput_lower_bound;
  ]
