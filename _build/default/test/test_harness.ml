open X86

let default = Harness.Environment.default

let test_mapping_crc () =
  (* the motivating example: pointer-chasing CRC block maps in 2 pages *)
  let block = Corpus.Paper_blocks.gzip_crc in
  match Harness.Mapping.run default block ~unroll:100 with
  | Error f -> Alcotest.failf "mapping failed: %s" (Harness.Mapping.failure_to_string f)
  | Ok m ->
    Alcotest.(check int) "two pages mapped" 2 m.faults;
    Alcotest.(check int) "single physical frame" 1 m.distinct_frames

let test_mapping_no_mem () =
  let block = Parser.block_exn "add $1, %rax" in
  match Harness.Mapping.run default block ~unroll:10 with
  | Ok m -> Alcotest.(check int) "no faults" 0 m.faults
  | Error f -> Alcotest.failf "%s" (Harness.Mapping.failure_to_string f)

let test_mapping_disabled () =
  let env = Harness.Environment.agner_baseline in
  let block = Parser.block_exn "mov (%rbx), %rax" in
  (match Harness.Mapping.run env block ~unroll:10 with
  | Error (Harness.Mapping.Mapping_disabled _) -> ()
  | _ -> Alcotest.fail "expected Mapping_disabled");
  (* register-only blocks still run *)
  match Harness.Mapping.run env (Parser.block_exn "add $1, %rax") ~unroll:10 with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "%s" (Harness.Mapping.failure_to_string f)

let test_mapping_unmappable () =
  (* double dereference loads the fill pattern, a non-canonical pointer *)
  let block = Parser.block_exn "mov (%rbx), %rax\nmov (%rax), %rcx" in
  match Harness.Mapping.run default block ~unroll:10 with
  | Error (Harness.Mapping.Unmappable_address _) -> ()
  | Ok _ -> Alcotest.fail "expected unmappable"
  | Error f -> Alcotest.failf "wrong failure: %s" (Harness.Mapping.failure_to_string f)

let test_mapping_fault_budget () =
  (* a 2 MiB stride touches a fresh page every copy *)
  let block = Parser.block_exn "mov (%rbx), %rax\nadd $0x200000, %rbx" in
  match Harness.Mapping.run default block ~unroll:100 with
  | Error (Harness.Mapping.Too_many_faults n) ->
    Alcotest.(check int) "budget" default.max_faults n
  | _ -> Alcotest.fail "expected Too_many_faults"

let test_mapping_sigfpe () =
  let block = Parser.block_exn "xor %ecx, %ecx\nxor %edx, %edx\ndivl %ecx" in
  match Harness.Mapping.run default block ~unroll:4 with
  | Error Harness.Mapping.Arithmetic_fault -> ()
  | _ -> Alcotest.fail "expected SIGFPE"

let test_mapping_fresh_pages () =
  let env = { default with mapping = Harness.Environment.Fresh_pages } in
  let block = Parser.block_exn "mov (%rbx), %rax\nmov 0x2000(%rbx), %rcx" in
  match Harness.Mapping.run env block ~unroll:4 with
  | Ok m ->
    Alcotest.(check int) "two pages" 2 m.faults;
    Alcotest.(check int) "two frames" 2 m.distinct_frames
  | Error f -> Alcotest.failf "%s" (Harness.Mapping.failure_to_string f)

let test_unroll_naive () =
  let f = Harness.Unroll.choose (Harness.Environment.Naive 100) [] in
  Alcotest.(check int) "large" 100 f.large;
  Alcotest.(check int) "small" 0 f.small;
  Alcotest.(check (float 0.001)) "tp" 2.0
    (Harness.Unroll.throughput f ~cycles_large:200 ~cycles_small:0)

let test_unroll_two_point () =
  let f = Harness.Unroll.choose (Harness.Environment.Two_point { large = 64; small = 16 }) [] in
  Alcotest.(check (float 0.001)) "delta tp" 1.5
    (Harness.Unroll.throughput f ~cycles_large:172 ~cycles_small:100)

let test_unroll_adaptive () =
  let small_block = Parser.block_exn "add $1, %rax" in
  let f =
    Harness.Unroll.choose
      (Harness.Environment.Adaptive_two_point { code_budget_bytes = 24 * 1024 })
      small_block
  in
  Alcotest.(check int) "small block uses 100" 100 f.large;
  let big = Corpus.Paper_blocks.tensorflow_ablation in
  let f = Harness.Unroll.choose (Harness.Environment.Adaptive_two_point { code_budget_bytes = 24 * 1024 }) big in
  Alcotest.(check bool)
    (Printf.sprintf "large block scaled down (%d)" f.large)
    true
    (f.large < 100 && f.large * Encoder.block_length big <= 24 * 1024);
  Alcotest.(check bool) "small < large" true (f.small < f.large && f.small >= 1)

let test_misaligned_filter () =
  let block = Parser.block_exn "movups 60(%rbx), %xmm0" in
  (match Harness.Profiler.profile default Uarch.All.haswell block with
  | Ok p ->
    Alcotest.(check bool) "rejected" false p.accepted;
    Alcotest.(check bool) "reason misaligned" true
      (p.reject = Some Harness.Profiler.Misaligned_access)
  | Error f -> Alcotest.failf "%s" (Harness.Profiler.failure_to_string f));
  (* with the filter off the block is accepted *)
  let env = { default with drop_misaligned = false } in
  match Harness.Profiler.profile env Uarch.All.haswell block with
  | Ok p -> Alcotest.(check bool) "accepted without filter" true p.accepted
  | Error f -> Alcotest.failf "%s" (Harness.Profiler.failure_to_string f)

let test_timings_protocol () =
  let block = Parser.block_exn "add $1, %rax" in
  match Harness.Profiler.profile default Uarch.All.haswell block with
  | Ok p ->
    Alcotest.(check int) "16 timings" default.timings (List.length p.large.timings);
    let clean = List.filter (fun (t : Harness.Profiler.timing) -> t.clean) p.large.timings in
    Alcotest.(check bool) "most timings clean" true
      (List.length clean >= default.min_clean);
    Alcotest.(check bool) "accepted cycles agreed" true (p.large.accepted_cycles <> None)
  | Error f -> Alcotest.failf "%s" (Harness.Profiler.failure_to_string f)

let test_noisy_environment_rejects () =
  (* with context switches on every run, no clean timing survives *)
  let env = { default with context_switch_rate = 1.0 } in
  let block = Parser.block_exn "add $1, %rax" in
  match Harness.Profiler.profile env Uarch.All.haswell block with
  | Ok p -> Alcotest.(check bool) "rejected under noise" false p.accepted
  | Error f -> Alcotest.failf "%s" (Harness.Profiler.failure_to_string f)

let test_determinism () =
  let block = Corpus.Paper_blocks.gzip_crc in
  let tp () =
    match Harness.Profiler.profile default Uarch.All.haswell block with
    | Ok p -> p.throughput
    | Error f -> Alcotest.failf "%s" (Harness.Profiler.failure_to_string f)
  in
  Alcotest.(check (float 0.0)) "deterministic" (tp ()) (tp ())

let test_reinitialization_identical_trace () =
  (* The monitor reinitialises state on every restart, so the trace of
     the final run must equal the trace of a run against a pre-mapped
     MMU. This is the core guarantee of Figure 2. *)
  let block = Corpus.Paper_blocks.gzip_crc in
  match Harness.Mapping.run default block ~unroll:8 with
  | Error f -> Alcotest.failf "%s" (Harness.Mapping.failure_to_string f)
  | Ok m1 -> (
    match Harness.Mapping.run default block ~unroll:8 with
    | Error f -> Alcotest.failf "%s" (Harness.Mapping.failure_to_string f)
    | Ok m2 ->
      let addrs (m : Harness.Mapping.success) =
        List.concat_map
          (fun (s : Xsem.Executor.step) ->
            List.map (fun (a : Memsim.Mmu.access) -> a.vaddr) s.accesses)
          m.steps
      in
      Alcotest.(check (list int64)) "identical traces" (addrs m1) (addrs m2))

let suite =
  [
    Alcotest.test_case "mapping crc block" `Quick test_mapping_crc;
    Alcotest.test_case "mapping no mem" `Quick test_mapping_no_mem;
    Alcotest.test_case "mapping disabled" `Quick test_mapping_disabled;
    Alcotest.test_case "mapping unmappable" `Quick test_mapping_unmappable;
    Alcotest.test_case "mapping fault budget" `Quick test_mapping_fault_budget;
    Alcotest.test_case "mapping sigfpe" `Quick test_mapping_sigfpe;
    Alcotest.test_case "mapping fresh pages" `Quick test_mapping_fresh_pages;
    Alcotest.test_case "unroll naive" `Quick test_unroll_naive;
    Alcotest.test_case "unroll two point" `Quick test_unroll_two_point;
    Alcotest.test_case "unroll adaptive" `Quick test_unroll_adaptive;
    Alcotest.test_case "misaligned filter" `Quick test_misaligned_filter;
    Alcotest.test_case "timings protocol" `Quick test_timings_protocol;
    Alcotest.test_case "noise rejects" `Quick test_noisy_environment_rejects;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "reinitialisation" `Quick test_reinitialization_identical_trace;
  ]
