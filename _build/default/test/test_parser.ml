open X86

let inst_t = Alcotest.testable Inst.pp Inst.equal

let parse s =
  match Parser.inst s with
  | Ok i -> i
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_att_basic () =
  Alcotest.check inst_t "add" (Builder.add (Builder.r Reg.rdi) (Builder.i 1))
    (parse "add $1, %rdi");
  Alcotest.check inst_t "mov"
    (Builder.mov ~w:Width.D (Builder.r Reg.eax) (Builder.r Reg.edx))
    (parse "mov %edx, %eax");
  Alcotest.check inst_t "shr"
    (Builder.shr (Builder.r Reg.rdx) (Builder.i 8))
    (parse "shr $8, %rdx")

let test_att_memory () =
  let i = parse "xorb -1(%rdi), %al" in
  Alcotest.(check string) "print" "xorb -0x1(%rdi), %al" (Inst.to_string i);
  let i2 = parse "xor 0x4110a(, %rax, 8), %rdx" in
  (match i2.operands with
  | [ _; Operand.Mem m ] ->
    Alcotest.(check bool) "no base" true (m.base = None);
    Alcotest.(check bool) "index rax" true (m.index = Some Reg.rax);
    Alcotest.(check int) "scale" 8 m.scale;
    Alcotest.(check int64) "disp" 0x4110aL m.disp
  | _ -> Alcotest.fail "expected mem operand");
  let i3 = parse "movq 16(%rsp,%rcx,4), %rax" in
  (match i3.operands with
  | [ _; Operand.Mem m ] ->
    Alcotest.(check bool) "base rsp" true (m.base = Some Reg.rsp);
    Alcotest.(check int) "scale 4" 4 m.scale
  | _ -> Alcotest.fail "expected mem operand")

let test_att_width_suffixes () =
  Alcotest.(check bool) "movl width D" true
    (Width.equal (parse "movl $1, (%rax)").width Width.D);
  Alcotest.(check bool) "movq width Q" true
    (Width.equal (parse "movq $1, (%rax)").width Width.Q);
  Alcotest.(check bool) "addb width B" true
    (Width.equal (parse "addb $1, (%rax)").width Width.B)

let test_intel_basic () =
  Alcotest.check inst_t "xor edx edx"
    (Builder.xor ~w:Width.D (Builder.r Reg.edx) (Builder.r Reg.edx))
    (parse "xor edx, edx");
  Alcotest.check inst_t "div ecx"
    (Builder.div ~w:Width.D (Builder.r Reg.ecx))
    (parse "div ecx");
  let i = parse "xor rdx, [8*rax + 0x4110a]" in
  (match i.operands with
  | [ Operand.Reg r; Operand.Mem m ] ->
    Alcotest.(check bool) "dst rdx" true (Reg.equal r Reg.rdx);
    Alcotest.(check int) "scale" 8 m.scale;
    Alcotest.(check int64) "disp" 0x4110aL m.disp
  | _ -> Alcotest.fail "operands")

let test_intel_ptr () =
  Alcotest.(check bool) "qword ptr" true
    (Width.equal (parse "mov qword ptr [rax], 1").width Width.Q);
  Alcotest.(check bool) "byte ptr" true
    (Width.equal (parse "mov byte ptr [rax], 1").width Width.B)

let test_vector () =
  Alcotest.check inst_t "vxorps"
    (Builder.vxorps (Builder.r (Reg.Xmm 2)) (Builder.r (Reg.Xmm 2)) (Builder.r (Reg.Xmm 2)))
    (parse "vxorps %xmm2, %xmm2, %xmm2");
  Alcotest.check inst_t "movaps"
    (Builder.movaps (Builder.r (Reg.Xmm 1)) (Builder.r (Reg.Xmm 0)))
    (parse "movaps %xmm0, %xmm1");
  let fma = parse "vfmadd231ps %ymm1, %ymm2, %ymm3" in
  Alcotest.(check bool) "fma opcode" true (fma.opcode = Opcode.Vfmadd (231, Opcode.Ps))

let test_movzx_forms () =
  Alcotest.check inst_t "movzbl"
    (Builder.movzx ~from:Width.B ~w:Width.D (Builder.r Reg.eax) (Builder.r Reg.al))
    (parse "movzbl %al, %eax");
  Alcotest.check inst_t "movzwq"
    (Builder.movzx ~from:Width.W ~w:Width.Q (Builder.r Reg.rax) (Builder.r Reg.ax))
    (parse "movzwq %ax, %rax");
  Alcotest.(check bool) "intel movzx" true
    ((parse "movzx eax, al").opcode = Opcode.Movzx Width.B)

let test_errors () =
  Alcotest.(check bool) "unknown mnemonic" true (Result.is_error (Parser.inst "frobnicate %rax"));
  Alcotest.(check bool) "garbage operand" true (Result.is_error (Parser.inst "add $1, %nosuch"));
  Alcotest.(check bool) "empty" true (Result.is_error (Parser.inst ""))

let test_block () =
  let b = Parser.block_exn "add $1, %rax\n# comment\n\nsub $2, %rbx; inc %rcx" in
  Alcotest.(check int) "3 insts" 3 (List.length b);
  Alcotest.(check bool) "bad block" true (Result.is_error (Parser.block "add $1, %rax\nbogus"))

let test_comments () =
  let b = Parser.block_exn "add $1, %rax # trailing\n// whole line\nsub $1, %rbx" in
  Alcotest.(check int) "comments stripped" 2 (List.length b)

(* Round trip: print then reparse equals original, over all printable
   generator output. *)
let arbitrary_inst : Inst.t QCheck.arbitrary =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 1_000_000 in
      let rng = Bstats.Rng.create (Int64.of_int seed) in
      let mix =
        Corpus.Apps.(List.concat_map (fun a -> a.mix) [ Corpus.Apps.llvm; Corpus.Apps.openblas ])
      in
      let block = Corpus.Gen.block ~rng ~mix ~min_len:1 ~max_len:3 in
      return (List.hd block))
  in
  QCheck.make ~print:Inst.to_string gen

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300 arbitrary_inst
    (fun inst ->
      match Parser.inst (Inst.to_string inst) with
      | Ok parsed -> Inst.equal inst parsed
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "att basic" `Quick test_att_basic;
    Alcotest.test_case "att memory" `Quick test_att_memory;
    Alcotest.test_case "att width suffixes" `Quick test_att_width_suffixes;
    Alcotest.test_case "intel basic" `Quick test_intel_basic;
    Alcotest.test_case "intel ptr" `Quick test_intel_ptr;
    Alcotest.test_case "vector" `Quick test_vector;
    Alcotest.test_case "movzx forms" `Quick test_movzx_forms;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "block" `Quick test_block;
    Alcotest.test_case "comments" `Quick test_comments;
    QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
  ]
