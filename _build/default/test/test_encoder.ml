open X86

let test_known_lengths () =
  (* Lengths verified against real x86-64 encodings. *)
  let check text expected =
    let i = match Parser.inst text with Ok i -> i | Error e -> Alcotest.fail e in
    Alcotest.(check int) text expected (Encoder.encoded_length i)
  in
  check "add $1, %rdi" 4 (* 48 83 C7 01 *);
  check "mov %edx, %eax" 2 (* 89 D0 *);
  check "shr $8, %rdx" 4 (* 48 C1 EA 08 *);
  check "xorb -1(%rdi), %al" 3 (* 32 47 FF *);
  check "movzbl %al, %eax" 3 (* 0F B6 C0 *);
  check "xor 0x4110a(, %rax, 8), %rdx" 8 (* 48 33 14 C5 0A 11 04 00 *);
  check "cmp %rcx, %rdi" 3 (* 48 39 CF *);
  check "nop" 1;
  check "ret" 1;
  check "push %rax" 1;
  check "push %r9" 2 (* REX + push *)

let test_length_positive () =
  List.iter
    (fun op ->
      let inst =
        (* build a plausible register form for every opcode *)
        match op with
        | Opcode.Nop | Cdq | Cqo | Ret | Vzeroupper -> Inst.make op []
        | _ when Opcode.is_vector op ->
          Inst.make op [ Operand.Reg (Reg.Xmm 0); Operand.Reg (Reg.Xmm 1) ]
        | _ -> Inst.make op [ Operand.Reg Reg.rax; Operand.Reg Reg.rbx ]
      in
      let n = Encoder.encoded_length inst in
      if n < 1 || n > 15 then
        Alcotest.failf "%s: length %d out of x86 range" (Opcode.mnemonic op) n)
    Opcode.all

let test_roundtrip_block () =
  let block =
    Parser.block_exn
      {|
        add $1, %rdi
        mov %edx, %eax
        shr $8, %rdx
        xorb -1(%rdi), %al
        movzbl %al, %eax
        xor 0x41108(, %rax, 8), %rdx
        cmp %rcx, %rdi
        vxorps %xmm2, %xmm2, %xmm2
        movups 32(%rsp), %xmm3
      |}
  in
  let decoded = Encoder.decode_block (Encoder.encode_block block) in
  Alcotest.(check int) "count" (List.length block) (List.length decoded);
  List.iter2
    (fun a b -> Alcotest.(check bool) (Inst.to_string a) true (Inst.equal a b))
    block decoded

let test_decode_errors () =
  Alcotest.check_raises "truncated"
    (Encoder.Decode_error "bad record length 200 at 0")
    (fun () -> ignore (Encoder.decode_block (Bytes.make 4 '\xc8')))

let test_block_length_additive () =
  let a = Parser.block_exn "add $1, %rax" in
  let b = Parser.block_exn "add $1, %rax\nadd $1, %rax" in
  Alcotest.(check int) "additive" (2 * Encoder.block_length a) (Encoder.block_length b)

let arbitrary_block =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 1_000_000 in
      let rng = Bstats.Rng.create (Int64.of_int seed) in
      let mix = Corpus.Apps.(llvm.mix @ tensorflow.mix @ ffmpeg.mix) in
      return (Corpus.Gen.block ~rng ~mix ~min_len:1 ~max_len:12))
  in
  QCheck.make
    ~print:(fun b -> String.concat "; " (List.map Inst.to_string b))
    gen

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:200 arbitrary_block
    (fun block ->
      let decoded = Encoder.decode_block (Encoder.encode_block block) in
      List.length decoded = List.length block
      && List.for_all2 Inst.equal block decoded)

let prop_record_length_covers_x86 =
  QCheck.Test.make ~name:"record >= modelled x86 length" ~count:200
    arbitrary_block (fun block ->
      List.for_all
        (fun i -> Bytes.length (Encoder.encode i) >= Encoder.encoded_length i)
        block)

let suite =
  [
    Alcotest.test_case "known lengths" `Quick test_known_lengths;
    Alcotest.test_case "length sane for all opcodes" `Quick test_length_positive;
    Alcotest.test_case "roundtrip block" `Quick test_roundtrip_block;
    Alcotest.test_case "decode errors" `Quick test_decode_errors;
    Alcotest.test_case "block length additive" `Quick test_block_length_additive;
    QCheck_alcotest.to_alcotest prop_encode_decode_roundtrip;
    QCheck_alcotest.to_alcotest prop_record_length_covers_x86;
  ]
