test/test_executor.ml: Alcotest Bytes Encoder Int64 List Memsim Parser Reg X86 Xsem
