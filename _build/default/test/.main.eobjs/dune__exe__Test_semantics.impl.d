test/test_semantics.ml: Alcotest Bytes Char Float Int32 Int64 List Memsim Parser Reg X86 Xsem
