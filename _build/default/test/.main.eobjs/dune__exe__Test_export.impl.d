test/test_export.ml: Alcotest Bhive Corpus Filename Float Fun Lazy List Models Sys Uarch X86
