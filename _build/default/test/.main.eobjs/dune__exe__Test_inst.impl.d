test/test_inst.ml: Alcotest Cond Inst List Opcode Reg Result Width X86
