test/test_exegesis.ml: Alcotest Exegesis Float List Option Printf Uarch X86
