test/test_corpus.ml: Alcotest Bstats Corpus Lazy List Printf X86
