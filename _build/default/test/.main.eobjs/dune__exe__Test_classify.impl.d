test/test_classify.ml: Alcotest Array Classify Corpus Float Lazy List Printf String X86
