test/test_gen.ml: Alcotest Bstats Corpus Harness Inst Int64 List Opcode Printf Reg Uarch X86
