test/main.mli:
