test/test_reg.ml: Alcotest List Reg Width X86
