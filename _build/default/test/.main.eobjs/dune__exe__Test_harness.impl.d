test/test_harness.ml: Alcotest Corpus Encoder Harness List Memsim Parser Printf Uarch X86 Xsem
