test/test_properties.ml: Bstats Bytes Corpus Harness Inst Int64 List Memsim Parser Printf QCheck QCheck_alcotest Reg String Uarch X86 Xsem
