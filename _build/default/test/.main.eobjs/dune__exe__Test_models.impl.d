test/test_models.ml: Alcotest Builder Corpus Float Inst Lazy List Models Opcode Operand Parser Printf Reg Uarch X86
