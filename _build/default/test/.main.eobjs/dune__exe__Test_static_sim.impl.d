test/test_static_sim.ml: Alcotest Corpus Inst List Models Opcode Parser Printf String Uarch X86
