test/test_parser.ml: Alcotest Bstats Builder Corpus Inst Int64 List Opcode Operand Parser QCheck QCheck_alcotest Reg Result Width X86
