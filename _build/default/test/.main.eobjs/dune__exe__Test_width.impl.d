test/test_width.ml: Alcotest Format Int64 List QCheck QCheck_alcotest String Width X86
