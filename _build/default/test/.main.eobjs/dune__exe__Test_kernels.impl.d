test/test_kernels.ml: Alcotest Corpus Harness List Printf String Uarch
