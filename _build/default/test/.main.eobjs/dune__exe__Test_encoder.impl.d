test/test_encoder.ml: Alcotest Bstats Bytes Corpus Encoder Inst Int64 List Opcode Operand Parser QCheck QCheck_alcotest Reg String X86
