test/test_uarch.ml: Alcotest Builder Hashtbl Inst List Opcode Operand Printf QCheck QCheck_alcotest Reg Uarch X86
