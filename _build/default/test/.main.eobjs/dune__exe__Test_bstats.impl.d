test/test_bstats.ml: Alcotest Array Bstats Float List Printf QCheck QCheck_alcotest String
