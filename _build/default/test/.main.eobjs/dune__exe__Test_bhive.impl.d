test/test_bhive.ml: Alcotest Bhive Buffer Corpus Float Format Lazy List Printf Uarch
