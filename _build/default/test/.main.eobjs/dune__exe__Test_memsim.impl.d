test/test_memsim.ml: Alcotest Int64 Memsim QCheck QCheck_alcotest
