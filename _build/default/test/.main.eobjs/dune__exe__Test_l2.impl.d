test/test_l2.ml: Alcotest Corpus Harness Int64 Memsim Pipeline Printf Uarch X86 Xsem
