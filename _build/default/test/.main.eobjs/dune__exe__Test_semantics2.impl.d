test/test_semantics2.ml: Alcotest Bytes Char Int32 Int64 List Memsim Parser Reg X86 Xsem
