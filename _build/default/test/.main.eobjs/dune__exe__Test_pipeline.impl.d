test/test_pipeline.ml: Alcotest Corpus Float Harness List Pipeline Printf Uarch X86
