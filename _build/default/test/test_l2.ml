(* The unified L2 level: capacity between L1 and memory, and its effect
   on measured throughput in the fresh-pages ablation mode. *)

let test_l2_capacity_between_levels () =
  let machine = Pipeline.Machine.create Uarch.All.haswell in
  (* a footprint larger than L1 (32 KiB) but well inside L2 (256 KiB)
     must miss L1 every pass but hit L2 after the first pass *)
  let st = Xsem.Machine_state.create () in
  let mmu = Memsim.Mmu.create () in
  for vpn = 0 to 31 do
    ignore (Memsim.Mmu.map_fresh mmu (Int64.of_int (0x100 + vpn)))
  done;
  Xsem.Machine_state.set_reg st X86.Reg.rbx 0x100000L;
  let block = X86.Parser.block_exn "movq (%rbx), %rax\nadd $4096, %rbx" in
  let run () =
    let st = Xsem.Machine_state.copy st in
    match Xsem.Executor.run_unrolled st mmu block ~unroll:32 with
    | Xsem.Executor.Completed steps -> Pipeline.Machine.run machine steps
    | Faulted _ -> Alcotest.fail "fault"
  in
  let cold = run () in
  Alcotest.(check bool) "cold run misses L2 too" true (cold.counters.l2_misses > 0);
  let warm = run () in
  (* 32 lines in 32 distinct pages: they fit L2 but thrash... they fit
     both set-wise; L1 has 64 sets so 32 lines all map to set 0 (4 KiB
     stride) and only 8 ways survive; L2 (512 sets) keeps them all *)
  Alcotest.(check bool) "warm run still misses L1" true
    (warm.counters.l1d_read_misses > 0);
  Alcotest.(check int) "warm run hits L2" 0 warm.counters.l2_misses;
  Alcotest.(check bool) "warm faster than cold" true (warm.cycles <= cold.cycles)

let test_l2_miss_penalty_visible () =
  (* same trace, hand-driven through Core with a tiny L2 vs a huge L2 *)
  let d = Uarch.All.haswell in
  let mmu = Memsim.Mmu.create () in
  for vpn = 0 to 31 do
    ignore (Memsim.Mmu.map_fresh mmu (Int64.of_int (0x100 + vpn)))
  done;
  let st = Xsem.Machine_state.create () in
  Xsem.Machine_state.set_reg st X86.Reg.rbx 0x100000L;
  let block = X86.Parser.block_exn "movq (%rbx), %rax\nadd $4096, %rbx" in
  let steps =
    match Xsem.Executor.run_unrolled st mmu block ~unroll:32 with
    | Xsem.Executor.Completed steps -> steps
    | Faulted _ -> Alcotest.fail "fault"
  in
  let trace = Pipeline.Trace.of_steps d steps in
  let cycles_with ~l2_size =
    let l1d = Memsim.Cache.l1_default () and l1i = Memsim.Cache.l1_default () in
    let l2 = Memsim.Cache.create ~size_bytes:l2_size ~ways:8 ~line_bytes:64 in
    (* warm pass fills the hierarchy; the second pass exposes whether the
       lines survived in the L2 (the 4 KiB stride thrashes L1 set 0) *)
    ignore (Pipeline.Core.simulate d ~l1d ~l1i ~l2 trace);
    (Pipeline.Core.simulate d ~l1d ~l1i ~l2 trace).cycles
  in
  let small = cycles_with ~l2_size:4096 in
  let big = cycles_with ~l2_size:(1024 * 1024) in
  Alcotest.(check bool)
    (Printf.sprintf "small L2 slower (%d vs %d)" small big)
    true (small > big)

let test_single_page_never_touches_l2 () =
  (* the BHive invariant extended one level: with single-physical-page
     mapping the working set is 64 lines, so after warm-up there are no
     L1 misses and therefore no L2 traffic at all *)
  let block = Corpus.Paper_blocks.gzip_crc in
  match Harness.Profiler.profile Harness.Environment.default Uarch.All.haswell block with
  | Ok p ->
    Alcotest.(check int) "no l2 misses" 0 p.large.counters.l2_misses;
    Alcotest.(check bool) "accepted" true p.accepted
  | Error f -> Alcotest.failf "%s" (Harness.Profiler.failure_to_string f)

let suite =
  [
    Alcotest.test_case "capacity between levels" `Quick test_l2_capacity_between_levels;
    Alcotest.test_case "miss penalty visible" `Quick test_l2_miss_penalty_visible;
    Alcotest.test_case "single page bypasses L2" `Quick test_single_page_never_touches_l2;
  ]
