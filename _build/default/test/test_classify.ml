let config = { Corpus.Suite.default_config with scale = 800 }

let fitted =
  lazy
    (let blocks = Corpus.Suite.generate ~config () in
     (blocks, Classify.Categories.fit blocks))

let test_lda_counts_consistent () =
  let _, cls = Lazy.force fitted in
  let m = cls.model in
  (* token counts are conserved across doc-topic and topic-word views *)
  let total_dt = Array.fold_left (fun a row -> a + Array.fold_left ( + ) 0 row) 0 m.doc_topic in
  let total_tw = Array.fold_left (fun a row -> a + Array.fold_left ( + ) 0 row) 0 m.topic_word in
  let total_t = Array.fold_left ( + ) 0 m.topic_total in
  Alcotest.(check int) "doc-topic vs topic-word" total_dt total_tw;
  Alcotest.(check int) "topic totals" total_dt total_t;
  Array.iter
    (fun row -> Array.iter (fun c -> Alcotest.(check bool) "nonneg" true (c >= 0)) row)
    m.topic_word

let test_phi_is_distribution () =
  let _, cls = Lazy.force fitted in
  let m = cls.model in
  for k = 0 to m.config.topics - 1 do
    let sum = ref 0.0 in
    for w = 0 to m.vocab_size - 1 do
      let p = Classify.Lda.phi m k w in
      Alcotest.(check bool) "phi in (0,1)" true (p > 0.0 && p < 1.0);
      sum := !sum +. p
    done;
    Alcotest.(check bool) (Printf.sprintf "phi sums to 1 (topic %d: %f)" k !sum)
      true
      (Float.abs (!sum -. 1.0) < 1e-9)
  done

let test_every_block_classified () =
  let blocks, cls = Lazy.force fitted in
  let counts = Classify.Categories.category_counts cls blocks in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 counts in
  Alcotest.(check int) "all blocks" (List.length blocks) total

let test_six_distinct_labels () =
  let _, cls = Lazy.force fitted in
  let labels = Array.to_list cls.labels in
  Alcotest.(check int) "six topics" 6 (List.length labels);
  Alcotest.(check int) "distinct labels" 6
    (List.length (List.sort_uniq compare labels))

let test_deterministic () =
  let blocks = Corpus.Suite.generate ~config () in
  let a = Classify.Categories.fit blocks in
  let b = Classify.Categories.fit blocks in
  List.iter
    (fun blk ->
      Alcotest.(check bool) "same label" true
        (Classify.Categories.classify a blk = Classify.Categories.classify b blk))
    blocks

let test_vector_blocks_in_vector_categories () =
  let blocks, cls = Lazy.force fitted in
  (* strongly vectorised blocks should rarely land in scalar categories *)
  let vec_blocks =
    List.filter
      (fun (b : Corpus.Block.t) ->
        let n = Corpus.Block.length b in
        let v =
          List.length (List.filter (fun (i : X86.Inst.t) -> X86.Opcode.is_vector i.opcode) b.insts)
        in
        n >= 4 && v * 10 >= n * 9)
      blocks
  in
  let in_vec_cat =
    List.filter
      (fun b ->
        match Classify.Categories.classify cls b with
        | Classify.Categories.Pure_vector | Scalar_vector_mix -> true
        | _ -> false)
      vec_blocks
  in
  let frac =
    float_of_int (List.length in_vec_cat) /. float_of_int (max 1 (List.length vec_blocks))
  in
  Alcotest.(check bool)
    (Printf.sprintf "mostly vector categories (%.2f of %d)" frac (List.length vec_blocks))
    true (frac > 0.5)

let test_composition_sums_to_100 () =
  let blocks, cls = Lazy.force fitted in
  List.iter
    (fun (row : Classify.Composition.row) ->
      let total = List.fold_left (fun a (_, p) -> a +. p) 0.0 row.per_category in
      Alcotest.(check bool) (row.app ^ " sums to 100") true (Float.abs (total -. 100.0) < 0.01))
    (Classify.Composition.rows cls blocks)

let test_infer_unseen_block () =
  let _, cls = Lazy.force fitted in
  let b =
    Corpus.Block.make ~id:"unseen/1" ~app:"test"
      (X86.Parser.block_exn "mulps %xmm1, %xmm0\naddps %xmm2, %xmm3\nmulps %xmm4, %xmm5")
  in
  (* must classify without raising, into some label *)
  ignore (Classify.Categories.classify cls b)

let test_exemplars () =
  let blocks, cls = Lazy.force fitted in
  let ex = Classify.Categories.exemplars cls blocks in
  Alcotest.(check bool) "at least 4 categories have exemplars" true (List.length ex >= 4);
  List.iter
    (fun (l, b) ->
      Alcotest.(check bool)
        (Classify.Categories.label_name l ^ " exemplar from same category")
        true
        (Classify.Categories.classify cls b = l))
    ex

let test_label_metadata () =
  List.iter
    (fun l ->
      let n = Classify.Categories.label_number l in
      Alcotest.(check bool) "number 1..6" true (n >= 1 && n <= 6);
      Alcotest.(check bool) "has description" true
        (String.length (Classify.Categories.label_description l) > 0))
    Classify.Categories.all_labels

let suite =
  [
    Alcotest.test_case "lda counts consistent" `Quick test_lda_counts_consistent;
    Alcotest.test_case "phi is distribution" `Quick test_phi_is_distribution;
    Alcotest.test_case "every block classified" `Quick test_every_block_classified;
    Alcotest.test_case "six distinct labels" `Quick test_six_distinct_labels;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "vector blocks placement" `Quick test_vector_blocks_in_vector_categories;
    Alcotest.test_case "composition sums" `Quick test_composition_sums_to_100;
    Alcotest.test_case "infer unseen" `Quick test_infer_unseen_block;
    Alcotest.test_case "exemplars" `Quick test_exemplars;
    Alcotest.test_case "label metadata" `Quick test_label_metadata;
  ]
