(* The analyzers' shared static scheduler: structural behaviours that the
   model quirks rely on. *)

open X86

let hsw = Uarch.All.haswell

let config = { Models.Static_sim.n_ports = hsw.n_ports; issue_width = hsw.rename_width }

(* Simple table straight from the hardware profile, no noise. *)
let plain_table : Models.Static_sim.table =
 fun inst ->
  let decomp = Uarch.Descriptor.decompose hsw inst in
  {
    Models.Static_sim.uops =
      List.map
        (fun (u : Uarch.Uop.t) ->
          { Models.Static_sim.ports = u.ports; latency = u.latency;
            is_load = u.kind = Uarch.Uop.Load })
        decomp.uops;
    eliminated = decomp.eliminated;
    divider_busy = 0;
    split_fused_loads = false;
  }

let split_table : Models.Static_sim.table =
 fun inst ->
  let e = plain_table inst in
  { e with split_fused_loads = true }

let tp table block = Models.Static_sim.throughput config table block

let test_chain_latency () =
  let block = Parser.block_exn "imul %rbx, %rax" in
  Alcotest.(check (float 0.1)) "imul chain" 3.0 (tp plain_table block)

let test_port_bound () =
  let block =
    Parser.block_exn
      "add $1, %rdi\nadd $1, %rsi\nadd $1, %rdx\nadd $1, %rcx\nadd $1, %r8\nadd $1, %r9"
  in
  Alcotest.(check (float 0.1)) "6 adds on 4 ports" 1.5 (tp plain_table block)

let test_issue_width_bound () =
  (* eliminated moves consume only issue slots: 8 per iteration over a
     4-wide front end = 2 cycles *)
  let block =
    Parser.block_exn (String.concat "\n" (List.init 8 (fun _ -> "mov %rbx, %rax")))
  in
  Alcotest.(check (float 0.2)) "issue bound" 2.0 (tp plain_table block)

let test_split_fused_load_delays () =
  (* the crc block: the split-fused quirk must slow the prediction *)
  let block = Corpus.Paper_blocks.gzip_crc in
  let fast = tp plain_table block in
  let slow = tp split_table block in
  Alcotest.(check bool)
    (Printf.sprintf "split (%f) > plain (%f)" slow fast)
    true (slow > fast +. 1.0)

let test_divider_busy_serialises () =
  let busy_table inst =
    let e = plain_table inst in
    match inst.Inst.opcode with
    | Opcode.Div | Idiv -> { e with divider_busy = 20 }
    | _ -> e
  in
  let block = Parser.block_exn "xor %edx, %edx\ndivl %ecx\ntestl %edx, %edx" in
  let t = tp busy_table block in
  Alcotest.(check bool) (Printf.sprintf "divider busy dominates (%f)" t) true (t >= 19.0)

let test_schedule_entries () =
  let block = Corpus.Paper_blocks.gzip_crc in
  let sched = Models.Static_sim.schedule config plain_table block in
  Alcotest.(check bool) "non-empty" true (sched <> []);
  List.iter
    (fun (e : Models.Model_intf.schedule_entry) ->
      Alcotest.(check bool) "port in range" true (e.port >= 0 && e.port < hsw.n_ports);
      Alcotest.(check bool) "complete > dispatch" true (e.complete > e.dispatch))
    sched;
  (* the load micro-op of the xorb dispatches before its ALU part *)
  let by_inst k =
    List.filter (fun (e : Models.Model_intf.schedule_entry) -> e.inst_index = k) sched
  in
  match by_inst 3 (* xorb -1(%rdi), %al *) with
  | a :: b :: _ -> Alcotest.(check bool) "load first" true (a.dispatch <= b.dispatch)
  | _ -> Alcotest.fail "expected 2 uops for xorb"

let test_deterministic () =
  let block = Corpus.Paper_blocks.gzip_crc in
  Alcotest.(check (float 0.0)) "same result" (tp plain_table block) (tp plain_table block)

let test_zero_idiom_elimination_respected () =
  let block = Parser.block_exn "vxorps %xmm2, %xmm2, %xmm2" in
  Alcotest.(check (float 0.05)) "eliminated = rename bound" 0.25 (tp plain_table block)

let suite =
  [
    Alcotest.test_case "chain latency" `Quick test_chain_latency;
    Alcotest.test_case "port bound" `Quick test_port_bound;
    Alcotest.test_case "issue width bound" `Quick test_issue_width_bound;
    Alcotest.test_case "split fused load" `Quick test_split_fused_load_delays;
    Alcotest.test_case "divider busy" `Quick test_divider_busy_serialises;
    Alcotest.test_case "schedule entries" `Quick test_schedule_entries;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "zero idiom" `Quick test_zero_idiom_elimination_respected;
  ]
