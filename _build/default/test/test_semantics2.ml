(* Second semantics battery: the opcode families not covered by the
   first suite — rotates, double shifts, saturating packs, averages,
   sign-dependent vector comparisons, conversions, lane inserts,
   haddps, blends, byte shifts, AVX lane operations, and flag details. *)

open X86

let run ?(regs = []) ?(ftz = true) text =
  let st = Xsem.Machine_state.create () in
  st.ftz <- ftz;
  let mmu = Memsim.Mmu.create () in
  for vpn = 0x10 to 0x20 do
    ignore (Memsim.Mmu.map_fresh mmu (Int64.of_int vpn))
  done;
  List.iter (fun (r, v) -> Xsem.Machine_state.set_reg st r v) regs;
  match Xsem.Executor.run st mmu (Parser.block_exn text) with
  | Xsem.Executor.Completed _ -> st
  | Faulted { fault; _ } -> Alcotest.failf "fault: %s" (Memsim.Fault.to_string fault)

let gpr st r = Xsem.Machine_state.get_reg st r
let check64 = Alcotest.(check int64)

let set_bytes st i (data : int list) =
  let b = Bytes.create 16 in
  List.iteri (fun k v -> Bytes.set b k (Char.chr (v land 0xFF))) data;
  if List.length data < 16 then
    for k = List.length data to 15 do Bytes.set b k '\000' done;
  Xsem.Machine_state.set_vec st (Reg.Xmm i) b

let set_i32s st i (a, b, c, d) =
  let buf = Bytes.create 16 in
  List.iteri (fun k v -> Bytes.set_int32_le buf (4 * k) v) [ a; b; c; d ];
  Xsem.Machine_state.set_vec st (Reg.Xmm i) buf

let get_i32s st i =
  let b = Xsem.Machine_state.get_vec st (Reg.Xmm i) in
  ( Bytes.get_int32_le b 0, Bytes.get_int32_le b 4,
    Bytes.get_int32_le b 8, Bytes.get_int32_le b 12 )

let run_vec setup text =
  let st = Xsem.Machine_state.create () in
  st.ftz <- true;
  let mmu = Memsim.Mmu.create () in
  for vpn = 0x10 to 0x18 do
    ignore (Memsim.Mmu.map_fresh mmu (Int64.of_int vpn))
  done;
  setup st;
  match Xsem.Executor.run st mmu (Parser.block_exn text) with
  | Xsem.Executor.Completed _ -> st
  | Faulted { fault; _ } -> Alcotest.failf "fault: %s" (Memsim.Fault.to_string fault)

(* --- scalar --------------------------------------------------------- *)

let test_ror_rol_inverse () =
  let st = run ~regs:[ (Reg.rax, 0x123456789ABCDEF0L) ] "rol $13, %rax\nror $13, %rax" in
  check64 "inverse" 0x123456789ABCDEF0L (gpr st Reg.rax)

let test_shld () =
  let st =
    run ~regs:[ (Reg.rax, 0xF000000000000000L); (Reg.rbx, 0x8000000000000000L) ]
      "shld $4, %rbx, %rax"
  in
  check64 "shld" 0x0000000000000008L (gpr st Reg.rax)

let test_shrd () =
  let st =
    run ~regs:[ (Reg.rax, 0xFL); (Reg.rbx, 0x1L) ] "shrd $4, %rbx, %rax"
  in
  check64 "shrd" 0x1000000000000000L (gpr st Reg.rax)

let test_imul3_memory () =
  let st =
    run ~regs:[ (Reg.rbx, 0x10100L) ] "movq $6, (%rbx)\nimulq $7, (%rbx), %rax"
  in
  check64 "imul3 mem" 42L (gpr st Reg.rax)

let test_bt_btr_bts () =
  let st = run ~regs:[ (Reg.rax, 0b100L) ] "bt $2, %rax" in
  Alcotest.(check bool) "bt sets cf" true st.flags.cf;
  let st = run ~regs:[ (Reg.rax, 0L) ] "bts $5, %rax" in
  check64 "bts" 0b100000L (gpr st Reg.rax);
  let st = run ~regs:[ (Reg.rax, -1L) ] "btr $0, %rax" in
  check64 "btr" (-2L) (gpr st Reg.rax)

let test_bextr () =
  (* start=8, len=8: extract the second byte *)
  let st =
    run ~regs:[ (Reg.rbx, 0x0000CAFEL); (Reg.rcx, 0x0808L) ] "bextr %rcx, %rbx, %rax"
  in
  check64 "bextr" 0xCAL (gpr st Reg.rax)

let test_blsmsk () =
  let st = run ~regs:[ (Reg.rbx, 0b101000L) ] "blsmsk %rbx, %rax" in
  check64 "blsmsk" 0b001111L (gpr st Reg.rax)

let test_inc_preserves_cf () =
  let st =
    run ~regs:[ (Reg.rax, -1L); (Reg.rbx, 5L) ] "add $1, %rax\ninc %rbx"
  in
  Alcotest.(check bool) "cf preserved by inc" true st.flags.cf;
  check64 "inc result" 6L (gpr st Reg.rbx)

let test_neg_carry () =
  let st = run ~regs:[ (Reg.rax, 0L) ] "neg %rax" in
  Alcotest.(check bool) "neg 0: cf clear" false st.flags.cf;
  let st = run ~regs:[ (Reg.rax, 5L) ] "neg %rax" in
  Alcotest.(check bool) "neg nonzero: cf set" true st.flags.cf;
  check64 "value" (-5L) (gpr st Reg.rax)

let test_sbb_self_idiom () =
  (* sbb rax, rax materialises the carry: -CF *)
  let st = run ~regs:[ (Reg.rax, 0L); (Reg.rbx, 1L) ] "cmp %rbx, %rax\nsbb %rcx, %rcx" in
  check64 "sbb self with borrow" (-1L) (gpr st Reg.rcx)

let test_cdq_sign () =
  let st = run ~regs:[ (Reg.rax, 0x80000000L) ] "cltd" in
  check64 "edx all ones" 0xFFFFFFFFL (gpr st Reg.edx)

let test_xadd_like_sequence () =
  (* no xadd opcode: verify the mov/add equivalent sequence *)
  let st =
    run ~regs:[ (Reg.rax, 10L); (Reg.rbx, 32L) ]
      "mov %rbx, %rcx\nadd %rax, %rbx\nmov %rcx, %rax"
  in
  check64 "sum" 42L (gpr st Reg.rbx);
  check64 "old" 32L (gpr st Reg.rax)

(* --- vector --------------------------------------------------------- *)

let test_pavgb () =
  let st =
    run_vec
      (fun st ->
        set_bytes st 0 [ 10; 0; 255 ];
        set_bytes st 1 [ 20; 1; 255 ])
      "pavgb %xmm1, %xmm0"
  in
  let b = Xsem.Machine_state.get_vec st (Reg.Xmm 0) in
  Alcotest.(check int) "avg 10,20" 15 (Char.code (Bytes.get b 0));
  Alcotest.(check int) "avg 0,1 rounds up" 1 (Char.code (Bytes.get b 1));
  Alcotest.(check int) "avg 255,255" 255 (Char.code (Bytes.get b 2))

let test_psubd_wrap () =
  let st =
    run_vec
      (fun st ->
        set_i32s st 0 (0l, 5l, Int32.min_int, 100l);
        set_i32s st 1 (1l, 2l, 1l, 100l))
      "psubd %xmm1, %xmm0"
  in
  let a, b, c, d = get_i32s st 0 in
  Alcotest.(check int32) "wrap" (-1l) a;
  Alcotest.(check int32) "plain" 3l b;
  Alcotest.(check int32) "min wraps" Int32.max_int c;
  Alcotest.(check int32) "zero" 0l d

let test_pcmpgt_signed () =
  let st =
    run_vec
      (fun st ->
        set_i32s st 0 (1l, -1l, 5l, 0l);
        set_i32s st 1 (0l, 1l, 5l, -1l))
      "pcmpgtd %xmm1, %xmm0"
  in
  let a, b, c, d = get_i32s st 0 in
  Alcotest.(check int32) "1 > 0" (-1l) a;
  Alcotest.(check int32) "-1 > 1 signed false" 0l b;
  Alcotest.(check int32) "equal false" 0l c;
  Alcotest.(check int32) "0 > -1" (-1l) d

let test_pmaxsd_vs_pmaxud () =
  let st =
    run_vec
      (fun st ->
        set_i32s st 0 (-1l, 0l, 0l, 0l);
        set_i32s st 1 (1l, 0l, 0l, 0l);
        set_i32s st 2 (-1l, 0l, 0l, 0l);
        set_i32s st 3 (1l, 0l, 0l, 0l))
      "pmaxsd %xmm1, %xmm0\npmaxud %xmm3, %xmm2"
  in
  let a, _, _, _ = get_i32s st 0 in
  Alcotest.(check int32) "signed max" 1l a;
  let c, _, _, _ = get_i32s st 2 in
  Alcotest.(check int32) "unsigned max (-1 = 0xFFFFFFFF)" (-1l) c

let test_pabs () =
  let st = run_vec (fun st -> set_i32s st 1 (-5l, 5l, Int32.min_int, 0l)) "pabsd %xmm1, %xmm0" in
  let a, b, _, d = get_i32s st 0 in
  Alcotest.(check int32) "abs -5" 5l a;
  Alcotest.(check int32) "abs 5" 5l b;
  Alcotest.(check int32) "abs 0" 0l d

let test_pslldq_psrldq () =
  let st =
    run_vec (fun st -> set_bytes st 0 (List.init 16 (fun i -> i + 1)))
      "pslldq $4, %xmm0"
  in
  let b = Xsem.Machine_state.get_vec st (Reg.Xmm 0) in
  Alcotest.(check int) "low zeroed" 0 (Char.code (Bytes.get b 0));
  Alcotest.(check int) "shifted" 1 (Char.code (Bytes.get b 4));
  let st =
    run_vec (fun st -> set_bytes st 0 (List.init 16 (fun i -> i + 1)))
      "psrldq $4, %xmm0"
  in
  let b = Xsem.Machine_state.get_vec st (Reg.Xmm 0) in
  Alcotest.(check int) "byte 0 is old byte 4" 5 (Char.code (Bytes.get b 0));
  Alcotest.(check int) "high zeroed" 0 (Char.code (Bytes.get b 12))

let test_pshufb_zeroing () =
  let st =
    run_vec
      (fun st ->
        set_bytes st 0 (List.init 16 (fun i -> 0x10 + i));
        set_bytes st 1 [ 0x00; 0x0F; 0x80; 0x05 ])
      "pshufb %xmm1, %xmm0"
  in
  let b = Xsem.Machine_state.get_vec st (Reg.Xmm 0) in
  Alcotest.(check int) "select 0" 0x10 (Char.code (Bytes.get b 0));
  Alcotest.(check int) "select 15" 0x1F (Char.code (Bytes.get b 1));
  Alcotest.(check int) "high bit zeroes" 0 (Char.code (Bytes.get b 2));
  Alcotest.(check int) "select 5" 0x15 (Char.code (Bytes.get b 3))

let test_palignr () =
  let st =
    run_vec
      (fun st ->
        set_bytes st 0 (List.init 16 (fun i -> 0x20 + i));
        set_bytes st 1 (List.init 16 (fun i -> 0x40 + i)))
      "palignr $4, %xmm1, %xmm0"
  in
  (* concat xmm0:xmm1 shifted right by 4 bytes: low 12 from xmm1[4..],
     then xmm0[0..3] *)
  let b = Xsem.Machine_state.get_vec st (Reg.Xmm 0) in
  Alcotest.(check int) "from src" 0x44 (Char.code (Bytes.get b 0));
  Alcotest.(check int) "boundary" 0x20 (Char.code (Bytes.get b 12))

let test_packusdw () =
  let st =
    run_vec (fun st ->
        set_i32s st 0 (70000l, -5l, 100l, 65535l);
        set_i32s st 1 (0l, 0l, 0l, 0l))
      "packusdw %xmm1, %xmm0"
  in
  let b = Xsem.Machine_state.get_vec st (Reg.Xmm 0) in
  Alcotest.(check int) "clamp high" 0xFFFF (Bytes.get_uint16_le b 0);
  Alcotest.(check int) "clamp low" 0 (Bytes.get_uint16_le b 2);
  Alcotest.(check int) "plain" 100 (Bytes.get_uint16_le b 4)

let test_pmaddwd () =
  let st =
    run_vec
      (fun st ->
        let buf = Bytes.create 16 in
        (* words: [2;3;4;5;...] and [10;20;30;40;...] *)
        List.iteri (fun k v -> Bytes.set_uint16_le buf (2 * k) v) [ 2; 3; 4; 5; 0; 0; 0; 0 ];
        Xsem.Machine_state.set_vec st (Reg.Xmm 0) buf;
        let buf2 = Bytes.create 16 in
        List.iteri (fun k v -> Bytes.set_uint16_le buf2 (2 * k) v) [ 10; 20; 30; 40; 0; 0; 0; 0 ];
        Xsem.Machine_state.set_vec st (Reg.Xmm 1) buf2)
      "pmaddwd %xmm1, %xmm0"
  in
  let a, b, _, _ = get_i32s st 0 in
  Alcotest.(check int32) "2*10+3*20" 80l a;
  Alcotest.(check int32) "4*30+5*40" 320l b

let test_haddps () =
  let st =
    run_vec
      (fun st ->
        let set i vals =
          let buf = Bytes.create 16 in
          List.iteri (fun k v -> Bytes.set_int32_le buf (4 * k) (Int32.bits_of_float v)) vals;
          Xsem.Machine_state.set_vec st (Reg.Xmm i) buf
        in
        set 0 [ 1.0; 2.0; 3.0; 4.0 ];
        set 1 [ 10.0; 20.0; 30.0; 40.0 ])
      "haddps %xmm1, %xmm0"
  in
  let b = Xsem.Machine_state.get_vec st (Reg.Xmm 0) in
  let f k = Int32.float_of_bits (Bytes.get_int32_le b (4 * k)) in
  Alcotest.(check (float 0.0)) "a0+a1" 3.0 (f 0);
  Alcotest.(check (float 0.0)) "a2+a3" 7.0 (f 1);
  Alcotest.(check (float 0.0)) "b0+b1" 30.0 (f 2);
  Alcotest.(check (float 0.0)) "b2+b3" 70.0 (f 3)

let test_blendps () =
  let st =
    run_vec
      (fun st ->
        set_i32s st 0 (1l, 2l, 3l, 4l);
        set_i32s st 1 (10l, 20l, 30l, 40l))
      "blendps $0b1010, %xmm1, %xmm0"
  in
  let a, b, c, d = get_i32s st 0 in
  Alcotest.(check int32) "keep" 1l a;
  Alcotest.(check int32) "take" 20l b;
  Alcotest.(check int32) "keep" 3l c;
  Alcotest.(check int32) "take" 40l d

let test_pinsr_pextr () =
  let st =
    run ~regs:[ (Reg.rbx, 0xDEADL) ]
      "pinsrd $2, %ebx, %xmm0\npextrd $2, %xmm0, %eax"
  in
  check64 "roundtrip lane 2" 0xDEADL (gpr st Reg.rax)

let test_ptest_flags () =
  let st =
    run_vec
      (fun st ->
        set_i32s st 0 (0l, 0l, 0l, 0l);
        set_i32s st 1 (1l, 0l, 0l, 0l))
      "ptest %xmm1, %xmm0"
  in
  Alcotest.(check bool) "zf: and is zero" true st.flags.zf;
  let st =
    run_vec
      (fun st ->
        set_i32s st 0 (1l, 0l, 0l, 0l);
        set_i32s st 1 (1l, 0l, 0l, 0l))
      "ptest %xmm1, %xmm0"
  in
  Alcotest.(check bool) "zf clear on overlap" false st.flags.zf

let test_vinsert_vextract () =
  let st =
    run_vec
      (fun st -> set_i32s st 1 (7l, 8l, 9l, 10l))
      "vinsertf128 $1, %xmm1, %ymm0, %ymm2\nvextractf128 $1, %ymm2, %xmm3"
  in
  let a, b, c, d = get_i32s st 3 in
  Alcotest.(check int32) "lane" 7l a;
  Alcotest.(check int32) "lane" 8l b;
  Alcotest.(check int32) "lane" 9l c;
  Alcotest.(check int32) "lane" 10l d

let test_vzeroupper () =
  let st =
    run_vec
      (fun st ->
        let buf = Bytes.make 32 '\xff' in
        Xsem.Machine_state.set_vec st (Reg.Ymm 4) buf)
      "vzeroupper"
  in
  let v = Xsem.Machine_state.get_vec st (Reg.Ymm 4) in
  Alcotest.(check int) "low preserved" 0xFF (Char.code (Bytes.get v 0));
  Alcotest.(check int) "upper zeroed" 0 (Char.code (Bytes.get v 16))

let test_cvtdq2ps_roundtrip () =
  let st =
    run_vec (fun st -> set_i32s st 1 (1l, -2l, 100l, 0l))
      "cvtdq2ps %xmm1, %xmm0\ncvtps2dq %xmm0, %xmm2"
  in
  let a, b, c, d = get_i32s st 2 in
  Alcotest.(check int32) "1" 1l a;
  Alcotest.(check int32) "-2" (-2l) b;
  Alcotest.(check int32) "100" 100l c;
  Alcotest.(check int32) "0" 0l d

let test_rounds () =
  let st =
    run_vec
      (fun st ->
        let buf = Bytes.create 16 in
        Bytes.set_int32_le buf 0 (Int32.bits_of_float 2.7);
        Xsem.Machine_state.set_vec st (Reg.Xmm 1) buf)
      "roundss $1, %xmm1, %xmm0" (* mode 1 = floor *)
  in
  let b = Xsem.Machine_state.get_vec st (Reg.Xmm 0) in
  Alcotest.(check (float 0.0)) "floor" 2.0 (Int32.float_of_bits (Bytes.get_int32_le b 0))

let suite =
  [
    Alcotest.test_case "rol/ror inverse" `Quick test_ror_rol_inverse;
    Alcotest.test_case "shld" `Quick test_shld;
    Alcotest.test_case "shrd" `Quick test_shrd;
    Alcotest.test_case "imul3 memory" `Quick test_imul3_memory;
    Alcotest.test_case "bt/bts/btr" `Quick test_bt_btr_bts;
    Alcotest.test_case "bextr" `Quick test_bextr;
    Alcotest.test_case "blsmsk" `Quick test_blsmsk;
    Alcotest.test_case "inc preserves cf" `Quick test_inc_preserves_cf;
    Alcotest.test_case "neg carry" `Quick test_neg_carry;
    Alcotest.test_case "sbb materialises carry" `Quick test_sbb_self_idiom;
    Alcotest.test_case "cdq sign" `Quick test_cdq_sign;
    Alcotest.test_case "exchange-add sequence" `Quick test_xadd_like_sequence;
    Alcotest.test_case "pavgb" `Quick test_pavgb;
    Alcotest.test_case "psubd wrap" `Quick test_psubd_wrap;
    Alcotest.test_case "pcmpgt signed" `Quick test_pcmpgt_signed;
    Alcotest.test_case "pmax signed/unsigned" `Quick test_pmaxsd_vs_pmaxud;
    Alcotest.test_case "pabs" `Quick test_pabs;
    Alcotest.test_case "pslldq/psrldq" `Quick test_pslldq_psrldq;
    Alcotest.test_case "pshufb zeroing" `Quick test_pshufb_zeroing;
    Alcotest.test_case "palignr" `Quick test_palignr;
    Alcotest.test_case "packusdw" `Quick test_packusdw;
    Alcotest.test_case "pmaddwd" `Quick test_pmaddwd;
    Alcotest.test_case "haddps" `Quick test_haddps;
    Alcotest.test_case "blendps" `Quick test_blendps;
    Alcotest.test_case "pinsr/pextr" `Quick test_pinsr_pextr;
    Alcotest.test_case "ptest flags" `Quick test_ptest_flags;
    Alcotest.test_case "vinsert/vextract" `Quick test_vinsert_vextract;
    Alcotest.test_case "vzeroupper" `Quick test_vzeroupper;
    Alcotest.test_case "cvtdq2ps roundtrip" `Quick test_cvtdq2ps_roundtrip;
    Alcotest.test_case "roundss floor" `Quick test_rounds;
  ]
