(* Invariants of the corpus generator combinators, which the Table I/II
   calibration depends on: pointer-register discipline, access alignment,
   and divisor safety. *)

open X86

let with_ctx seed f =
  let rng = Bstats.Rng.create (Int64.of_int seed) in
  let ctx = Corpus.Gen.create rng in
  f ctx;
  Corpus.Gen.finish ctx

let test_pointer_discipline () =
  (* after arbitrary snippet emission, every remaining pointer register
     must not have been written by a non-pointer-arithmetic instruction *)
  for seed = 0 to 30 do
    let rng = Bstats.Rng.create (Int64.of_int seed) in
    let ctx = Corpus.Gen.create rng in
    for _ = 1 to 10 do
      let snippet =
        Bstats.Rng.choose rng
          [ Corpus.Gen.alu_chain; Corpus.Gen.load; Corpus.Gen.load_op;
            Corpus.Gen.bit_mix; Corpus.Gen.div_pattern; Corpus.Gen.table_lookup ]
      in
      snippet ctx
    done;
    let block = Corpus.Gen.finish ctx in
    (* remaining pointers: only pointer_bump-style writes allowed *)
    List.iter
      (fun p ->
        List.iter
          (fun (inst : Inst.t) ->
            let writes_p = List.mem (Reg.root p) (Inst.write_roots inst) in
            if writes_p then
              match inst.opcode with
              | Opcode.Add | Sub -> () (* bounded pointer arithmetic *)
              | op ->
                Alcotest.failf "seed %d: pointer %s clobbered by %s" seed
                  (Reg.name p) (Opcode.mnemonic op))
          block)
      ctx.pointers
  done

let test_div_pattern_safe () =
  (* every div the generator emits must be preceded by a zeroed edx and
     use a never-clobbered (nonzero) divisor *)
  let block =
    with_ctx 5 (fun ctx ->
        Corpus.Gen.alu_chain ctx;
        Corpus.Gen.div_pattern ctx)
  in
  let rec scan = function
    | (a : Inst.t) :: (b : Inst.t) :: rest ->
      if b.opcode = Opcode.Div then
        Alcotest.(check bool) "xor edx precedes div" true
          (Inst.is_zero_idiom a
          && List.mem (Reg.root Reg.rdx) (Inst.write_roots a));
      scan (b :: rest)
    | _ -> ()
  in
  scan block

let test_generated_blocks_align () =
  (* generated blocks must essentially never trip the misalignment
     filter (paper drop rate: 0.183%) *)
  let config = { Corpus.Suite.default_config with scale = 400 } in
  let blocks = Corpus.Suite.generate ~config () in
  let misaligned =
    List.length
      (List.filter
         (fun (b : Corpus.Block.t) ->
           match
             Harness.Profiler.profile Harness.Environment.default
               Uarch.All.haswell b.insts
           with
           | Ok p -> p.reject = Some Harness.Profiler.Misaligned_access
           | Error _ -> false)
         blocks)
  in
  let rate = float_of_int misaligned /. float_of_int (List.length blocks) in
  Alcotest.(check bool)
    (Printf.sprintf "misaligned rate %.3f%% below 1.5%%" (100.0 *. rate))
    true (rate < 0.015)

let test_store_burst_shape () =
  let block = with_ctx 11 Corpus.Gen.store_burst in
  Alcotest.(check bool) "at least 2 stores" true (List.length block >= 2);
  List.iter
    (fun (i : Inst.t) ->
      Alcotest.(check bool) "all stores" true (Inst.has_store i))
    block

let test_load_burst_distinct_destinations () =
  let block = with_ctx 13 Corpus.Gen.load_burst in
  List.iter
    (fun (i : Inst.t) -> Alcotest.(check bool) "all loads" true (Inst.has_load i))
    block

let test_zipf_weights_decrease () =
  let rng = Bstats.Rng.create 3L in
  let w0 = Corpus.Gen.zipf_freq rng ~rank:0 in
  let w100 = Corpus.Gen.zipf_freq rng ~rank:100 in
  let w1000 = Corpus.Gen.zipf_freq rng ~rank:1000 in
  Alcotest.(check bool) "decreasing" true (w0 > w100 && w100 > w1000 && w1000 >= 1);
  (* not absurdly skewed: the top block is not more than ~6% of a
     2000-block corpus's total weight *)
  let rng = Bstats.Rng.create 4L in
  let weights = List.init 2000 (fun rank -> Corpus.Gen.zipf_freq rng ~rank) in
  let total = List.fold_left ( + ) 0 weights in
  let top = List.hd weights in
  Alcotest.(check bool)
    (Printf.sprintf "top share %.2f%%" (100.0 *. float_of_int top /. float_of_int total))
    true
    (float_of_int top /. float_of_int total < 0.06)

let test_mem_free_blocks_have_no_accesses () =
  (* the register-only mixes must not sneak in memory operands *)
  let config = { Corpus.Suite.default_config with scale = 400 } in
  let blocks = Corpus.Suite.generate ~config () in
  List.iter
    (fun (b : Corpus.Block.t) ->
      if not (Corpus.Block.has_memory_access b) then
        List.iter
          (fun i ->
            Alcotest.(check int)
              (b.id ^ " access count")
              0
              (List.length (Inst.mem_accesses i)))
          b.insts)
    blocks

let suite =
  [
    Alcotest.test_case "pointer discipline" `Quick test_pointer_discipline;
    Alcotest.test_case "div pattern safe" `Quick test_div_pattern_safe;
    Alcotest.test_case "alignment rate" `Quick test_generated_blocks_align;
    Alcotest.test_case "store burst shape" `Quick test_store_burst_shape;
    Alcotest.test_case "load burst shape" `Quick test_load_burst_distinct_destinations;
    Alcotest.test_case "zipf weights" `Quick test_zipf_weights_decrease;
    Alcotest.test_case "register-only blocks" `Quick test_mem_free_blocks_have_no_accesses;
  ]
