open X86

let reg = Alcotest.testable Reg.pp Reg.equal

let test_names () =
  Alcotest.(check string) "rax" "rax" (Reg.name Reg.rax);
  Alcotest.(check string) "eax" "eax" (Reg.name Reg.eax);
  Alcotest.(check string) "ax" "ax" (Reg.name Reg.ax);
  Alcotest.(check string) "al" "al" (Reg.name Reg.al);
  Alcotest.(check string) "ah" "ah" (Reg.name (Reg.Gpr8h Reg.RAX));
  Alcotest.(check string) "sil" "sil" (Reg.name (Reg.Gpr (Reg.RSI, B)));
  Alcotest.(check string) "r10d" "r10d" (Reg.name (Reg.Gpr (Reg.R10, D)));
  Alcotest.(check string) "r8b" "r8b" (Reg.name (Reg.Gpr (Reg.R8, B)));
  Alcotest.(check string) "xmm7" "xmm7" (Reg.name (Reg.Xmm 7));
  Alcotest.(check string) "ymm15" "ymm15" (Reg.name (Reg.Ymm 15))

let test_of_name_roundtrip () =
  let all =
    List.concat_map
      (fun g -> List.map (fun w -> Reg.Gpr (g, w)) Width.all)
      Reg.all_gprs
    @ List.map (fun g -> Reg.Gpr8h g) [ Reg.RAX; Reg.RCX; Reg.RDX; Reg.RBX ]
    @ List.init 16 (fun i -> Reg.Xmm i)
    @ List.init 16 (fun i -> Reg.Ymm i)
    @ [ Reg.Rip ]
  in
  List.iter
    (fun r ->
      match Reg.of_name (Reg.name r) with
      | Some r' -> Alcotest.check reg (Reg.name r) r r'
      | None -> Alcotest.failf "of_name failed for %s" (Reg.name r))
    all

let test_of_name_invalid () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Reg.of_name s = None))
    [ "foo"; "xmm16"; "ymm99"; "r16"; "rxx"; "" ]

let test_aliasing () =
  let same a b =
    Alcotest.(check bool) "same root" true (Reg.root a = Reg.root b)
  in
  same Reg.rax Reg.eax;
  same Reg.rax Reg.al;
  same Reg.rax (Reg.Gpr8h Reg.RAX);
  same (Reg.Xmm 3) (Reg.Ymm 3);
  Alcotest.(check bool) "different roots" true (Reg.root Reg.rax <> Reg.root Reg.rbx)

let test_root_index_dense () =
  let indices =
    List.map Reg.root_index
      (List.map (fun g -> Reg.Root_gpr g) Reg.all_gprs
      @ List.init 16 (fun i -> Reg.Root_vec i)
      @ [ Reg.Root_rip ])
  in
  Alcotest.(check int) "count" Reg.num_roots (List.length indices);
  Alcotest.(check bool) "unique" true
    (List.length (List.sort_uniq compare indices) = Reg.num_roots);
  Alcotest.(check bool) "dense" true
    (List.for_all (fun i -> i >= 0 && i < Reg.num_roots) indices)

let test_byte_size () =
  Alcotest.(check int) "xmm" 16 (Reg.byte_size (Reg.Xmm 0));
  Alcotest.(check int) "ymm" 32 (Reg.byte_size (Reg.Ymm 0));
  Alcotest.(check int) "gpr q" 8 (Reg.byte_size Reg.rax);
  Alcotest.(check int) "gpr b" 1 (Reg.byte_size Reg.al)

let test_classes () =
  Alcotest.(check bool) "gpr" true (Reg.is_gpr Reg.rax);
  Alcotest.(check bool) "not vector" false (Reg.is_vector Reg.rax);
  Alcotest.(check bool) "vector" true (Reg.is_vector (Reg.Xmm 1));
  Alcotest.(check bool) "ymm" true (Reg.is_ymm (Reg.Ymm 1));
  Alcotest.(check bool) "xmm not ymm" false (Reg.is_ymm (Reg.Xmm 1))

let suite =
  [
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "of_name roundtrip" `Quick test_of_name_roundtrip;
    Alcotest.test_case "of_name invalid" `Quick test_of_name_invalid;
    Alcotest.test_case "aliasing" `Quick test_aliasing;
    Alcotest.test_case "root index dense" `Quick test_root_index_dense;
    Alcotest.test_case "byte size" `Quick test_byte_size;
    Alcotest.test_case "classes" `Quick test_classes;
  ]
