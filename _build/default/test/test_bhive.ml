(* Integration tests for the top-level dataset / validation / ablation
   pipeline at a very small corpus scale. *)

let config = { Corpus.Suite.default_config with scale = 2000 }

let blocks = lazy (Corpus.Suite.generate ~config ())

let hsw_dataset = lazy (Bhive.Dataset.build Uarch.All.haswell (Lazy.force blocks))

let test_dataset_builds () =
  let ds = Lazy.force hsw_dataset in
  Alcotest.(check bool) "profiles most blocks" true (Bhive.Dataset.profiled_fraction ds > 0.8);
  List.iter
    (fun (e : Bhive.Dataset.entry) ->
      Alcotest.(check bool) "throughput positive" true (e.throughput > 0.0);
      Alcotest.(check bool) "unroll sane" true (e.unroll_large > e.unroll_small))
    ds.entries

let test_avx2_exclusion () =
  let ds_ivb = Bhive.Dataset.build Uarch.All.ivy_bridge (Lazy.force blocks) in
  let has_avx2 =
    List.exists Corpus.Block.uses_avx2 (Lazy.force blocks)
  in
  if has_avx2 then
    Alcotest.(check bool) "ivb excludes avx2" true (ds_ivb.n_avx2_excluded > 0);
  List.iter
    (fun (e : Bhive.Dataset.entry) ->
      Alcotest.(check bool) "no avx2 in ivb dataset" false (Corpus.Block.uses_avx2 e.block))
    ds_ivb.entries

let test_split_deterministic_partition () =
  let ds = Lazy.force hsw_dataset in
  let train, eval = Bhive.Dataset.split ~train_fraction:0.75 ds in
  Alcotest.(check int) "partition" (Bhive.Dataset.size ds)
    (List.length train + List.length eval);
  let train2, _ = Bhive.Dataset.split ~train_fraction:0.75 ds in
  Alcotest.(check int) "deterministic" (List.length train) (List.length train2);
  Alcotest.(check bool) "both non-empty" true (train <> [] && eval <> [])

let test_validation_runs () =
  let ds = Lazy.force hsw_dataset in
  let evals = Bhive.Validation.evaluate_all ds in
  Alcotest.(check int) "four models" 4 (List.length evals);
  List.iter
    (fun (e : Bhive.Validation.eval) ->
      Alcotest.(check bool) (e.model ^ " has samples") true (e.samples <> []);
      Alcotest.(check bool) (e.model ^ " error finite") true (Float.is_finite e.average_error);
      Alcotest.(check bool) (e.model ^ " error positive") true (e.average_error > 0.0);
      Alcotest.(check bool) (e.model ^ " tau in range") true
        (e.kendall_tau >= -1.0 && e.kendall_tau <= 1.0))
    evals

let test_model_ordering () =
  (* the paper's qualitative result, at a larger scale: the learned model
     is best and OSACA is worst; the threshold here is lenient because
     the corpus is tiny *)
  let ds = Lazy.force hsw_dataset in
  let evals = Bhive.Validation.evaluate_all ds in
  let err name =
    (List.find (fun (e : Bhive.Validation.eval) -> e.model = name) evals).average_error
  in
  Alcotest.(check bool)
    (Printf.sprintf "OSACA (%.3f) worse than IACA (%.3f)" (err "OSACA") (err "IACA"))
    true
    (err "OSACA" > err "IACA")

let test_by_app_breakdown () =
  let ds = Lazy.force hsw_dataset in
  let evals = Bhive.Validation.evaluate_all ds in
  let by_app = Bhive.Validation.by_app (List.hd evals) in
  Alcotest.(check bool) "has apps" true (by_app <> []);
  List.iter
    (fun (_, err) ->
      Alcotest.(check bool) "finite" true (Float.is_finite err || Float.is_nan err))
    by_app

let test_suite_ablation_monotone () =
  let rows = Bhive.Ablation.suite_ablation (Lazy.force blocks) in
  match rows with
  | [ none; mapping; unrolling ] ->
    Alcotest.(check bool)
      (Printf.sprintf "monotone %f <= %f <= %f" none.profiled_percent
         mapping.profiled_percent unrolling.profiled_percent)
      true
      (none.profiled_percent <= mapping.profiled_percent
      && mapping.profiled_percent <= unrolling.profiled_percent +. 0.001);
    Alcotest.(check bool) "baseline small" true (none.profiled_percent < 40.0);
    Alcotest.(check bool) "final large" true (unrolling.profiled_percent > 80.0)
  | _ -> Alcotest.fail "expected three rows"

let test_block_ablation_rows () =
  let rows = Bhive.Ablation.block_ablation Corpus.Paper_blocks.tensorflow_ablation in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  (match rows with
  | first :: rest ->
    Alcotest.(check string) "first crashes" "Crashed" first.measured;
    List.iter
      (fun (r : Bhive.Ablation.block_row) ->
        Alcotest.(check bool) "later rows measure" true (r.measured <> "Crashed"))
      rest
  | [] -> Alcotest.fail "no rows");
  (* measured value decreases down the table *)
  let values =
    List.filter_map
      (fun (r : Bhive.Ablation.block_row) -> float_of_string_opt r.measured)
      rows
  in
  let rec decreasing = function
    | a :: b :: rest -> a >= b -. 0.001 && decreasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone decreasing" true (decreasing values)

let test_by_length_buckets () =
  let ds = Lazy.force hsw_dataset in
  let evals = Bhive.Validation.evaluate_all ds in
  let rows = Bhive.Validation.by_length (List.hd evals) in
  Alcotest.(check int) "five buckets" 5 (List.length rows);
  let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 rows in
  Alcotest.(check int) "buckets partition samples"
    (List.length (List.hd evals).samples)
    total

let test_report_renders () =
  (* all report functions produce non-empty output without raising *)
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let ds = Lazy.force hsw_dataset in
  let evals = Bhive.Validation.evaluate_all ds in
  Bhive.Report.overall_error fmt [ ("Haswell", evals) ];
  Bhive.Report.applications fmt (Lazy.force blocks);
  Bhive.Report.per_app_error fmt ~uarch:"hsw" evals;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "output" true (Buffer.length buf > 100)

let suite =
  [
    Alcotest.test_case "dataset builds" `Quick test_dataset_builds;
    Alcotest.test_case "avx2 exclusion" `Quick test_avx2_exclusion;
    Alcotest.test_case "split partition" `Quick test_split_deterministic_partition;
    Alcotest.test_case "validation runs" `Quick test_validation_runs;
    Alcotest.test_case "model ordering" `Quick test_model_ordering;
    Alcotest.test_case "by-app breakdown" `Quick test_by_app_breakdown;
    Alcotest.test_case "suite ablation monotone" `Quick test_suite_ablation_monotone;
    Alcotest.test_case "block ablation rows" `Quick test_block_ablation_rows;
    Alcotest.test_case "by-length buckets" `Quick test_by_length_buckets;
    Alcotest.test_case "report renders" `Quick test_report_renders;
  ]
