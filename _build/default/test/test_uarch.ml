open X86

let test_port_sets () =
  let open Uarch.Port in
  Alcotest.(check string) "name" "p0156" (name p0156);
  Alcotest.(check string) "single" "p4" (name p4);
  Alcotest.(check int) "cardinal" 4 (cardinal p0156);
  Alcotest.(check bool) "mem" true (mem 5 p015);
  Alcotest.(check bool) "not mem" false (mem 2 p015);
  Alcotest.(check bool) "to_list sorted" true (to_list p0156 = [ 0; 1; 5; 6 ]);
  Alcotest.(check bool) "of_list inverse" true (equal p0156 (of_list [ 6; 5; 1; 0 ]))

(* every opcode form must decompose without exception on every uarch *)
let test_decompose_total () =
  List.iter
    (fun (d : Uarch.Descriptor.t) ->
      List.iter
        (fun op ->
          let inst =
            match op with
            | Opcode.Nop | Cdq | Cqo | Ret | Vzeroupper -> Inst.make op []
            | Opcode.Inc | Dec | Neg | Not | Bswap | Push | Pop | Div | Idiv
            | Mul_1 | Imul_1 | Jmp | Call ->
              Inst.make op [ Operand.Reg Reg.rax ]
            | Opcode.Set _ -> Inst.make op [ Operand.Reg Reg.al ]
            | Opcode.Jcc _ -> Inst.make op [ Operand.Imm 0L ]
            | _ when Opcode.is_vector op ->
              Inst.make op [ Operand.Reg (Reg.Xmm 0); Operand.Reg (Reg.Xmm 1) ]
            | _ -> Inst.make op [ Operand.Reg Reg.rax; Operand.Reg Reg.rbx ]
          in
          let decomp = Uarch.Descriptor.decompose d inst in
          if not decomp.eliminated then begin
            if decomp.uops = [] && op <> Opcode.Nop && op <> Opcode.Push
               && op <> Opcode.Pop
            then
              Alcotest.failf "%s: empty decomposition for %s" d.short
                (Opcode.mnemonic op);
            List.iter
              (fun (u : Uarch.Uop.t) ->
                if u.latency < 0 then
                  Alcotest.failf "%s: negative latency for %s" d.short
                    (Opcode.mnemonic op);
                if u.kind = Uarch.Uop.Exec && Uarch.Port.is_empty u.ports then
                  Alcotest.failf "%s: empty port set for %s" d.short
                    (Opcode.mnemonic op))
              decomp.uops
          end)
        Opcode.all)
    Uarch.All.all

let test_eliminations () =
  let hsw = Uarch.All.haswell in
  let zi = Builder.xor (Builder.r Reg.rax) (Builder.r Reg.rax) in
  Alcotest.(check bool) "zero idiom eliminated" true
    (Uarch.Descriptor.decompose hsw zi).eliminated;
  let mv = Builder.mov (Builder.r Reg.rax) (Builder.r Reg.rbx) in
  Alcotest.(check bool) "reg move eliminated" true
    (Uarch.Descriptor.decompose hsw mv).eliminated;
  let mv_mem = Builder.mov (Builder.r Reg.rax) (Builder.mb ~base:Reg.rbx ()) in
  Alcotest.(check bool) "load not eliminated" false
    (Uarch.Descriptor.decompose hsw mv_mem).eliminated

let test_micro_fusion () =
  let hsw = Uarch.All.haswell in
  let load_op = Builder.add (Builder.r Reg.rax) (Builder.mb ~base:Reg.rbx ()) in
  let d = Uarch.Descriptor.decompose hsw load_op in
  Alcotest.(check int) "2 uops" 2 (List.length d.uops);
  Alcotest.(check int) "1 fused slot" 1 d.fused_slots;
  let store = Builder.mov (Builder.mb ~base:Reg.rbx ()) (Builder.r Reg.rax) in
  let d = Uarch.Descriptor.decompose hsw store in
  Alcotest.(check int) "store 2 uops" 2 (List.length d.uops);
  Alcotest.(check int) "store 1 slot" 1 d.fused_slots;
  let rmw = Builder.add (Builder.mb ~base:Reg.rbx ()) (Builder.i 1) in
  let d = Uarch.Descriptor.decompose hsw rmw in
  Alcotest.(check int) "rmw 4 uops" 4 (List.length d.uops);
  Alcotest.(check int) "rmw 2 slots" 2 d.fused_slots

let test_ivb_ymm_split () =
  let ymm_load =
    Inst.make (Opcode.Movup Opcode.Ps)
      [ Operand.Reg (Reg.Ymm 0); Operand.mem ~base:Reg.rbx () ]
  in
  let ivb = Uarch.Descriptor.decompose Uarch.All.ivy_bridge ymm_load in
  let hsw = Uarch.Descriptor.decompose Uarch.All.haswell ymm_load in
  Alcotest.(check int) "ivb splits 32B load" 2 (List.length ivb.uops);
  Alcotest.(check int) "hsw single load" 1 (List.length hsw.uops)

let test_uarch_differences () =
  let adc = Builder.adc (Builder.r Reg.rax) (Builder.r Reg.rbx) in
  Alcotest.(check int) "adc 2 uops hsw" 2
    (List.length (Uarch.Descriptor.decompose Uarch.All.haswell adc).uops);
  Alcotest.(check int) "adc 1 uop skl" 1
    (List.length (Uarch.Descriptor.decompose Uarch.All.skylake adc).uops);
  let fma = Builder.vfmadd231ps (Builder.r (Reg.Xmm 0)) (Builder.r (Reg.Xmm 1)) (Builder.r (Reg.Xmm 2)) in
  Alcotest.(check int) "fma 1 uop hsw" 1
    (List.length (Uarch.Descriptor.decompose Uarch.All.haswell fma).uops);
  Alcotest.(check int) "no fma unit on ivb: 2 uops" 2
    (List.length (Uarch.Descriptor.decompose Uarch.All.ivy_bridge fma).uops)

let test_port_combination_count () =
  (* Abel-Reineke find ~13 combinations on Haswell; our model should be
     in the same ballpark over the whole ISA *)
  let combos = Hashtbl.create 32 in
  List.iter
    (fun op ->
      let inst =
        match op with
        | Opcode.Nop | Cdq | Cqo | Ret | Vzeroupper -> Inst.make op []
        | _ when Opcode.is_vector op ->
          Inst.make op [ Operand.Reg (Reg.Xmm 0); Operand.Reg (Reg.Xmm 1) ]
        | _ -> Inst.make op [ Operand.Reg Reg.rax; Operand.Reg Reg.rbx ]
      in
      match Inst.validate inst with
      | Ok () ->
        List.iter
          (fun c -> Hashtbl.replace combos c ())
          (Uarch.Descriptor.port_combinations Uarch.All.haswell inst)
      | Error _ -> ())
    Opcode.all;
  let n = Hashtbl.length combos in
  Alcotest.(check bool) (Printf.sprintf "8..16 combos (got %d)" n) true (n >= 8 && n <= 16)

let test_port_schedule () =
  let ps = Uarch.Port_schedule.create ~n_ports:2 in
  Alcotest.(check int) "first claim" 5 (Uarch.Port_schedule.claim ps ~port:0 ~ready:5 ~busy:1);
  Alcotest.(check int) "occupied pushes" 6 (Uarch.Port_schedule.claim ps ~port:0 ~ready:5 ~busy:1);
  Alcotest.(check int) "backfill earlier slot" 2 (Uarch.Port_schedule.claim ps ~port:0 ~ready:2 ~busy:1);
  Alcotest.(check int) "other port independent" 5 (Uarch.Port_schedule.claim ps ~port:1 ~ready:5 ~busy:1);
  Alcotest.(check int) "busy blocks range" 10 (Uarch.Port_schedule.claim ps ~port:1 ~ready:10 ~busy:5);
  Alcotest.(check int) "after busy run" 15 (Uarch.Port_schedule.claim ps ~port:1 ~ready:11 ~busy:1)

let prop_port_schedule_no_overlap =
  QCheck.Test.make ~name:"port slots never collide" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (pair (int_bound 40) (int_range 1 4)))
    (fun claims ->
      let ps = Uarch.Port_schedule.create ~n_ports:1 in
      let used = Hashtbl.create 64 in
      List.for_all
        (fun (ready, busy) ->
          let start = Uarch.Port_schedule.claim ps ~port:0 ~ready ~busy in
          let ok = ref (start >= ready) in
          for c = start to start + busy - 1 do
            if Hashtbl.mem used c then ok := false;
            Hashtbl.replace used c ()
          done;
          !ok)
        claims)

let suite =
  [
    Alcotest.test_case "port sets" `Quick test_port_sets;
    Alcotest.test_case "decompose total" `Quick test_decompose_total;
    Alcotest.test_case "eliminations" `Quick test_eliminations;
    Alcotest.test_case "micro fusion" `Quick test_micro_fusion;
    Alcotest.test_case "ivb ymm split" `Quick test_ivb_ymm_split;
    Alcotest.test_case "uarch differences" `Quick test_uarch_differences;
    Alcotest.test_case "port combination count" `Quick test_port_combination_count;
    Alcotest.test_case "port schedule" `Quick test_port_schedule;
    QCheck_alcotest.to_alcotest prop_port_schedule_no_overlap;
  ]
