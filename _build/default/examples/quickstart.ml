(* Quickstart: measure a basic block's throughput on the simulated
   Haswell machine and compare the four cost models against it.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Write a basic block in AT&T (or Intel) syntax. *)
  let block =
    X86.Parser.block_exn
      {|
        mov (%rdi), %rax
        add %rax, %rsi
        add $8, %rdi
        cmp %rcx, %rdi
      |}
  in

  (* 2. Profile it: the default environment is the paper's production
     configuration (single-physical-page mapping, two-point adaptive
     unrolling, FTZ/DAZ set, misalignment filter on, 16 timings with at
     least 8 clean and identical). *)
  let env = Harness.Environment.default in
  let hsw = Uarch.All.haswell in
  (match Harness.Profiler.profile env hsw block with
  | Ok profile ->
    Printf.printf "measured inverse throughput: %.2f cycles/iteration\n"
      profile.throughput;
    Printf.printf "accepted: %b (unroll factors %d/%d, %d pages mapped)\n\n"
      profile.accepted profile.factors.large profile.factors.small
      profile.large.faults
  | Error failure ->
    Printf.printf "profiling failed: %s\n\n"
      (Harness.Profiler.failure_to_string failure));

  (* 3. Ask the analyzers for their predictions. *)
  let models =
    [ Models.Iaca.create hsw; Models.Llvm_mca.create hsw; Models.Osaca.create hsw ]
  in
  List.iter
    (fun (m : Models.Model_intf.t) ->
      match m.predict block with
      | Models.Model_intf.Throughput tp -> Printf.printf "%-10s %.2f\n" m.name tp
      | Models.Model_intf.Unsupported reason ->
        Printf.printf "%-10s - (%s)\n" m.name reason)
    models
