(* The collection pipeline in miniature: build a synthetic program with
   control flow, run the dynamic tracer over its encoded bytes (the
   DynamoRIO role), and profile the hot blocks it observed, weighting by
   execution frequency.

   Run with: dune exec examples/collect_with_tracer.exe *)

let () =
  (* A toy memset-then-checksum function: two loops and an epilogue. *)
  let header = X86.Parser.block_exn "xor %eax, %eax\nmov %rdi, %rbx" in
  let fill_body =
    X86.Parser.block_exn "movq %rax, (%rbx)\nadd $8, %rbx\ncmp %rcx, %rbx"
  in
  let sum_body =
    X86.Parser.block_exn "add (%rdi), %rax\nadd $8, %rdi\ncmp %rcx, %rdi"
  in
  let epilogue = X86.Parser.block_exn "mov %eax, %edx" in
  let program =
    Corpus.Program.make ~name:"memset+sum"
      [|
        { body = header; term = Corpus.Program.Fallthrough };
        { body = fill_body; term = Corpus.Program.Branch { taken = 1; p_taken = 0.98 } };
        { body = sum_body; term = Corpus.Program.Branch { taken = 2; p_taken = 0.98 } };
        { body = epilogue; term = Corpus.Program.Return };
      |]
  in

  let rng = Bstats.Rng.create 2024L in
  let records = Corpus.Tracer.trace ~max_steps:5_000 rng program in
  Printf.printf "tracer observed %d distinct basic blocks:\n\n" (List.length records);

  let env = Harness.Environment.default in
  let hsw = Uarch.All.haswell in
  List.iter
    (fun (r : Corpus.Tracer.record) ->
      Printf.printf "%s (executed %d times):\n" r.block.id r.count;
      List.iter (fun i -> Printf.printf "    %s\n" (X86.Inst.to_string i)) r.block.insts;
      (match Harness.Profiler.profile env hsw r.block.insts with
      | Ok p -> Printf.printf "  -> %.2f cycles/iteration\n\n" p.throughput
      | Error f ->
        Printf.printf "  -> unprofilable: %s\n\n" (Harness.Profiler.failure_to_string f)))
    records
