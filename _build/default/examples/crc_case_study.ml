(* The paper's motivating example: the gzip updcrc inner loop cannot run
   outside its application (its table lookups fault), yet the monitor/
   measure algorithm profiles it automatically. This example walks
   through the mapping, the measurement, and the llvm-mca mis-scheduling
   case study on the same block.

   Run with: dune exec examples/crc_case_study.exe *)

let () =
  let block = Corpus.Paper_blocks.gzip_crc in
  print_endline "gzip updcrc inner loop:";
  List.iter (fun i -> Printf.printf "    %s\n" (X86.Inst.to_string i)) block;

  (* The monitor process: intercept faults, map each page onto the single
     physical frame, restart from a re-initialised state. *)
  let env = Harness.Environment.default in
  (match Harness.Mapping.run env block ~unroll:100 with
  | Error f -> Printf.printf "mapping failed: %s\n" (Harness.Mapping.failure_to_string f)
  | Ok m ->
    Printf.printf
      "\nmonitor: %d page faults intercepted, %d distinct physical frame(s)\n"
      m.faults m.distinct_frames);

  let hsw = Uarch.All.haswell in
  (match Harness.Profiler.profile env hsw block with
  | Ok p ->
    Printf.printf "measured: %.2f cycles/iteration (paper: 8.25 on real Haswell)\n\n"
      p.throughput
  | Error f -> Printf.printf "failed: %s\n" (Harness.Profiler.failure_to_string f));

  (* The scheduling case study: IACA hoists the xorb's load micro-op
     ahead of its ALU dependence; llvm-mca schedules the fused pair as
     one unit and over-predicts. *)
  let iaca = Models.Iaca.create hsw and mca = Models.Llvm_mca.create hsw in
  List.iter
    (fun (m : Models.Model_intf.t) ->
      (match m.predict block with
      | Models.Model_intf.Throughput tp ->
        Printf.printf "%s predicts %.2f cycles/iteration\n" m.name tp
      | Models.Model_intf.Unsupported r -> Printf.printf "%s: %s\n" m.name r);
      match m.schedule with
      | Some sched ->
        Bhive.Report.schedule Format.std_formatter ~model:m.name ~block (sched block)
      | None -> ())
    [ iaca; mca ];

  (* OSACA's parser rejects the 8-bit memory form, the '-' in the paper's
     table. *)
  let osaca = Models.Osaca.create hsw in
  match osaca.predict block with
  | Models.Model_intf.Unsupported reason -> Printf.printf "\nOSACA: - (%s)\n" reason
  | Models.Model_intf.Throughput tp -> Printf.printf "\nOSACA: %.2f\n" tp
