(* "Our dataset can be used as training data for learning-based cost
   models": build a measured dataset from the generated suite, train the
   learned throughput predictor on a split of it, and evaluate against
   the held-out blocks.

   Run with: dune exec examples/train_ithemal.exe *)

let () =
  let config = { Corpus.Suite.default_config with scale = 300 } in
  let blocks = Corpus.Suite.generate ~config () in
  Printf.printf "generated %d blocks; profiling on Haswell...\n%!" (List.length blocks);

  let dataset = Bhive.Dataset.build Uarch.All.haswell blocks in
  Printf.printf "dataset: %d measured blocks (%.1f%% of the corpus)\n%!"
    (Bhive.Dataset.size dataset)
    (100.0 *. Bhive.Dataset.profiled_fraction dataset);

  let train, eval = Bhive.Dataset.split ~train_fraction:0.85 dataset in
  Printf.printf "training on %d blocks, evaluating on %d held-out blocks\n%!"
    (List.length train) (List.length eval);
  let model =
    Models.Ithemal.train
      (List.map (fun (e : Bhive.Dataset.entry) -> (e.block.insts, e.throughput)) train)
  in

  let errors =
    List.map
      (fun (e : Bhive.Dataset.entry) ->
        let predicted = Models.Ithemal.predict_block model e.block.insts in
        Bstats.Error.relative ~predicted ~measured:e.throughput)
      eval
  in
  Printf.printf "held-out average relative error: %.4f\n" (Bstats.Error.average errors);
  Printf.printf "median: %.4f, 90th percentile: %.4f\n"
    (Bstats.Error.median errors)
    (Bstats.Error.percentile 0.9 errors);

  (* compare with the static analyzers on the same held-out set *)
  List.iter
    (fun (m : Models.Model_intf.t) ->
      let errs =
        List.filter_map
          (fun (e : Bhive.Dataset.entry) ->
            match m.predict e.block.insts with
            | Models.Model_intf.Throughput tp ->
              Some (Bstats.Error.relative ~predicted:tp ~measured:e.throughput)
            | Models.Model_intf.Unsupported _ -> None)
          eval
      in
      Printf.printf "%-10s average error %.4f\n" m.name (Bstats.Error.average errs))
    [ Models.Iaca.create Uarch.All.haswell;
      Models.Llvm_mca.create Uarch.All.haswell;
      Models.Osaca.create Uarch.All.haswell ]
