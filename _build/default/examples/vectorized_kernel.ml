(* Profiling a large vectorised kernel: the TensorFlow-style block from
   the paper's Table II, driven through each measurement configuration to
   show why every technique is needed.

   Run with: dune exec examples/vectorized_kernel.exe *)

let () =
  let block = Corpus.Paper_blocks.tensorflow_ablation in
  Printf.printf "kernel: %d instructions, %d bytes of code (so 100x unrolling = %d KiB)\n\n"
    (List.length block)
    (X86.Encoder.block_length block)
    (100 * X86.Encoder.block_length block / 1024);
  let rows = Bhive.Ablation.block_ablation block in
  Bhive.Report.block_ablation Format.std_formatter rows;

  (* The production configuration measures it cleanly. *)
  print_newline ();
  match Harness.Profiler.profile Harness.Environment.default Uarch.All.haswell block with
  | Ok p ->
    Printf.printf
      "final configuration: %.2f cycles/iteration with unroll factors %d and %d\n"
      p.throughput p.factors.large p.factors.small;
    Printf.printf "clean counters: %s\n"
      (Format.asprintf "%a" Pipeline.Counters.pp p.large.counters)
  | Error f -> Printf.printf "failed: %s\n" (Harness.Profiler.failure_to_string f)
