examples/collect_with_tracer.mli:
