examples/quickstart.ml: Harness List Models Printf Uarch X86
