examples/vectorized_kernel.ml: Bhive Corpus Format Harness List Pipeline Printf Uarch X86
