examples/train_ithemal.mli:
