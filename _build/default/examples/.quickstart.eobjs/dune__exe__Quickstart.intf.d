examples/quickstart.mli:
