examples/crc_case_study.ml: Bhive Corpus Format Harness List Models Printf Uarch X86
