examples/crc_case_study.mli:
