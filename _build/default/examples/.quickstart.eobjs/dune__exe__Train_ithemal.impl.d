examples/train_ithemal.ml: Bhive Bstats Corpus List Models Printf Uarch
