examples/collect_with_tracer.ml: Bstats Corpus Harness List Printf Uarch X86
