examples/vectorized_kernel.mli:
