(** llvm-mca-like analyzer.

    Driven by a separate "scheduling model" parameter table (deliberately
    regenerated from the hardware profile with its own error pattern, the
    way LLVM's per-uarch .td files drift from silicon). Reproduced
    quirks, all documented in the paper:

    - no knowledge of dependency-breaking zero idioms ([vxorps x,x,x]
      costs a full cycle);
    - micro-fused load+op pairs are scheduled as one unit, so the load
      cannot be hoisted ahead of the ALU op's data dependences (the
      mis-scheduling case study on the gzip block);
    - the same [div r32] table confusion as IACA;
    - a noticeably staler table for Skylake (the paper observes llvm-mca
      is "considerably worse on Skylake"). *)

open X86

let noise_seed = 0x77CAL

let table (d : Uarch.Descriptor.t) : Static_sim.table =
  let fraction, amplitude =
    match d.short with
    | "skl" -> (0.62, 0.80)
    | "ivb" -> (0.16, 0.28)
    | _ -> (0.20, 0.34)
  in
  fun inst ->
    let p = d.profile in
    let decomp = Uarch.Descriptor.decompose d inst in
    let divider_busy =
      match inst.Inst.opcode with
      | Opcode.Div | Idiv -> p.div64_latency + 10
      | Opcode.Fdiv _ | Fsqrt _ -> p.fp_div_latency_s
      | _ -> 0
    in
    let uops =
      List.map
        (fun (u : Uarch.Uop.t) ->
          let latency =
            match inst.Inst.opcode with
            | Opcode.Div | Idiv when u.kind = Uarch.Uop.Exec ->
              p.div64_latency + 10
            | _ ->
              Table_noise.latency ~seed:noise_seed ~fraction ~amplitude
                inst.Inst.opcode u.latency
          in
          let ports =
            Table_noise.drop_port ~seed:noise_seed
              ~fraction:(if d.short = "skl" then 0.18 else 0.06)
              inst.Inst.opcode u.ports
          in
          { Static_sim.ports; latency; is_load = u.kind = Uarch.Uop.Load })
        decomp.uops
    in
    let uops =
      (* zero idioms and eliminated moves still execute in the
         scheduling model *)
      if decomp.eliminated then
        [ { Static_sim.ports = p.vec_alu; latency = 1; is_load = false } ]
      else if
        Table_noise.extra_uop ~seed:noise_seed
          ~fraction:(if d.short = "skl" then 0.20 else 0.07)
          inst.Inst.opcode
        && uops <> []
      then uops @ [ { Static_sim.ports = p.alu; latency = 1; is_load = false } ]
      else uops
    in
    {
      Static_sim.uops;
      eliminated = false;
      divider_busy;
      split_fused_loads = Inst.has_load inst && not (Opcode.is_vector inst.Inst.opcode);
    }

let create (d : Uarch.Descriptor.t) : Model_intf.t =
  let config = { Static_sim.n_ports = d.n_ports; issue_width = d.rename_width } in
  let tbl = table d in
  {
    Model_intf.name = "llvm-mca";
    predict = (fun block -> Model_intf.Throughput (Static_sim.throughput config tbl block));
    schedule = Some (fun block -> Static_sim.schedule config tbl block);
  }
