(** Common interface of the evaluated throughput predictors. *)

type prediction =
  | Throughput of float  (** predicted cycles per iteration *)
  | Unsupported of string
      (** the tool failed on this block (the '-' entries in the paper's
          case-study table) *)

(** A predicted execution schedule, for the scheduling case-study
    figure. *)
type schedule_entry = {
  inst_index : int;  (** instruction index within the block *)
  iteration : int;
  port : int;
  dispatch : int;  (** cycle the micro-op issued *)
  complete : int;
}

type t = {
  name : string;
  predict : X86.Inst.t list -> prediction;
  schedule : (X86.Inst.t list -> schedule_entry list) option;
      (** [None] for black-box predictors (Ithemal) *)
}

(** The prediction as an option, folding tool failures to [None]. *)
val predict_opt : t -> X86.Inst.t list -> float option
