(** Deterministic per-opcode table perturbation.

    Every real analyzer carries idiosyncratic table errors — latencies
    scraped from the wrong manual row, stale entries for new
    microarchitectures, missed special cases. We reproduce this as a
    deterministic perturbation keyed on (model seed, opcode form): a
    fixed fraction of opcode forms get their latency scaled by a fixed,
    reproducible factor. *)

open X86

(* Stable hash of an opcode form under a model seed. *)
let hash ~seed (op : Opcode.t) =
  Bstats.Rng.next_u64
    (Bstats.Rng.create (Int64.add seed (Bstats.Rng.seed_of_string (Opcode.mnemonic op))))

(* Perturbed latency: a [fraction] of opcodes are off by up to
   [amplitude] (relative), half of them low, half high. *)
let latency ~seed ~fraction ~amplitude (op : Opcode.t) (latency : int) =
  let h = hash ~seed op in
  let u01 bits = Int64.to_float (Int64.logand bits 0xFFFFFFL) /. 16777216.0 in
  let select = u01 h in
  if select >= fraction then latency
  else begin
    let magnitude = u01 (Int64.shift_right_logical h 24) *. amplitude in
    let sign = if Int64.equal (Int64.logand (Int64.shift_right_logical h 48) 1L) 0L then 1.0 else -1.0 in
    let scaled = float_of_int latency *. (1.0 +. (sign *. magnitude)) in
    max 1 (int_of_float (Float.round scaled))
  end

(* Multiplicative float cost scale in [1-amplitude/2, 1+amplitude],
   for models whose costs are fractional reciprocal throughputs. *)
let scale ~seed ~fraction ~amplitude (op : Opcode.t) =
  let h = hash ~seed:(Int64.add seed 53L) op in
  let u01 bits = Int64.to_float (Int64.logand bits 0xFFFFFFL) /. 16777216.0 in
  if u01 h >= fraction then 1.0
  else begin
    let magnitude = u01 (Int64.shift_right_logical h 24) in
    let up = Int64.equal (Int64.logand (Int64.shift_right_logical h 48) 1L) 0L in
    if up then 1.0 +. (magnitude *. amplitude)
    else Float.max 0.2 (1.0 -. (magnitude *. amplitude /. 2.0))
  end

(* Whether this model's table charges an extra micro-op for the opcode
   (a mis-split table entry): this perturbs pure throughput, which
   latency noise alone cannot. *)
let extra_uop ~seed ~fraction (op : Opcode.t) =
  let h = hash ~seed:(Int64.add seed 101L) op in
  let u01 = Int64.to_float (Int64.logand h 0xFFFFFFL) /. 16777216.0 in
  u01 < fraction

(* Whether this model's table drops one of the opcode's alternative ports
   (modelling an incomplete port mapping). *)
let drop_port ~seed ~fraction (op : Opcode.t) (ports : Uarch.Port.set) =
  let h = hash ~seed:(Int64.add seed 17L) op in
  let u01 = Int64.to_float (Int64.logand h 0xFFFFFFL) /. 16777216.0 in
  if u01 >= fraction then ports
  else
    match Uarch.Port.to_list ports with
    | [] | [ _ ] -> ports
    | p :: rest ->
      ignore p;
      Uarch.Port.of_list rest
