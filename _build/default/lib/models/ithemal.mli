(** Ithemal-like learned throughput predictor: a feature-hashed
    regressor trained with normalised LMS on the measured dataset,
    optimised for relative error. Like the real Ithemal it outputs a
    single number per block with no interpretable schedule. *)

type t

(** Token for one instruction (mnemonic, width, operand kinds) —
    exposed for feature-analysis tooling. *)
val token : X86.Inst.t -> string

(** Per-iteration and loop-carried dependence-path features. *)
val critical_paths : X86.Inst.t list -> float * float * float

val predict_block : t -> X86.Inst.t list -> float

(** Train on (block, measured throughput) pairs; deterministic. *)
val train :
  ?epochs:int -> ?lr:float -> (X86.Inst.t list * float) list -> t

val create : t -> Model_intf.t
