lib/models/ithemal.ml: Array Bstats Float Hashtbl Inst Int64 List Model_intf Opcode Operand Option Printf Reg String Width X86
