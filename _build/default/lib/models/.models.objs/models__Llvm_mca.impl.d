lib/models/llvm_mca.ml: Inst List Model_intf Opcode Static_sim Table_noise Uarch X86
