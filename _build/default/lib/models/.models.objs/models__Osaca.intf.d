lib/models/osaca.mli: Model_intf Uarch X86
