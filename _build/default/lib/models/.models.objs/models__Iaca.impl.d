lib/models/iaca.ml: Inst List Model_intf Opcode Static_sim Table_noise Uarch X86
