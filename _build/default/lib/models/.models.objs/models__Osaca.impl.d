lib/models/osaca.ml: Array Float Inst List Model_intf Opcode Operand Printf Reg Table_noise Uarch Width X86
