lib/models/static_sim.ml: Array Inst List Model_intf Opcode Operand Reg Uarch X86
