lib/models/model_intf.mli: X86
