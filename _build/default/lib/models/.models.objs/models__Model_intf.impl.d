lib/models/model_intf.ml: Inst X86
