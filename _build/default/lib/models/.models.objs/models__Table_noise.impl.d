lib/models/table_noise.ml: Bstats Float Int64 Opcode Uarch X86
