lib/models/iaca.mli: Model_intf Static_sim Uarch
