lib/models/ithemal.mli: Model_intf X86
