lib/models/llvm_mca.mli: Model_intf Static_sim Uarch
