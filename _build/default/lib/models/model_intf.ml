(** Common interface of the evaluated throughput predictors. *)

open X86

type prediction =
  | Throughput of float
  | Unsupported of string
      (** the tool failed on this block (the '-' entries in the paper's
          case-study table) *)

(* A predicted execution schedule, for the scheduling case-study figure:
   (instruction index within block, iteration, port, dispatch cycle,
   completion cycle). *)
type schedule_entry = {
  inst_index : int;
  iteration : int;
  port : int;
  dispatch : int;
  complete : int;
}

type t = {
  name : string;
  predict : Inst.t list -> prediction;
  schedule : (Inst.t list -> schedule_entry list) option;
      (** None for black-box predictors (Ithemal) *)
}

let predict_opt model block =
  match model.predict block with
  | Throughput tp -> Some tp
  | Unsupported _ -> None
