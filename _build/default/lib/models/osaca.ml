(** OSACA-like analyzer.

    A port-pressure bound analysis: each micro-op's unit cost is spread
    evenly over its candidate ports and the predicted inverse throughput
    is the maximum per-port pressure. Ignoring dependency chains makes it
    systematically under-predict latency-bound blocks (the paper's div
    case: 12.25 predicted vs 21.62 measured).

    The paper attributes much of OSACA's error to its instruction
    {e parser} rather than its methodology; both reported bug classes are
    reproduced:

    - instructions with an immediate operand writing to memory
      (e.g. [add $1, (%rbx)]) are silently treated as nops,
      under-reporting throughput;
    - several instruction forms (8-bit memory ALU forms and high-byte
      registers among them) are not recognised at all, failing the whole
      block — the '-' entries. *)

open X86

let noise_seed = 0x05ACAL

(* Forms the parser rejects outright. *)
let unsupported_form (inst : Inst.t) =
  let has_high_byte =
    List.exists
      (function Operand.Reg (Reg.Gpr8h _) -> true | _ -> false)
      inst.Inst.operands
  in
  let byte_mem_alu =
    Width.equal inst.Inst.width Width.B
    && Inst.has_mem inst
    && (match inst.Inst.opcode with
       | Opcode.Mov | Movzx _ | Movsx _ -> false
       | _ -> true)
  in
  let exotic =
    match inst.Inst.opcode with
    | Opcode.Crc32 | Shld | Shrd | Palignr | Pshufb -> true
    | _ -> false
  in
  has_high_byte || byte_mem_alu || exotic

(* Immediate-to-memory forms are parsed as nops. *)
let parsed_as_nop (inst : Inst.t) =
  List.exists Operand.is_imm inst.Inst.operands
  && List.exists
       (fun (a : Inst.mem_access) -> a.kind = `Store || a.kind = `Load_store)
       (Inst.mem_accesses inst)

let predict (d : Uarch.Descriptor.t) (block : Inst.t list) : Model_intf.prediction =
  match List.find_opt unsupported_form block with
  | Some bad ->
    Model_intf.Unsupported
      (Printf.sprintf "parser: unrecognised instruction form %S" (Inst.to_string bad))
  | None ->
    let pressure = Array.make d.n_ports 0.0 in
    List.iter
      (fun inst ->
        if not (parsed_as_nop inst) then begin
          let decomp = Uarch.Descriptor.decompose d inst in
          (* OSACA has no knowledge of rename-stage eliminations: zero
             idioms and eliminated moves are costed as ordinary uops
             (vxorps x,x,x predicts a full cycle, as in the paper). *)
          let eliminated = decomp.eliminated in
          let uops =
            if eliminated then
              [ Uarch.Uop.exec
                  (if Opcode.is_vector inst.Inst.opcode then d.profile.vec_alu
                   else d.profile.alu) ]
            else decomp.uops
          in
          List.iter
            (fun (u : Uarch.Uop.t) ->
              (* reciprocal-throughput cost of the uop *)
              let cost =
                match inst.Inst.opcode with
                | Opcode.Div | Idiv ->
                  float_of_int (d.profile.div32_latency / 2)
                | Opcode.Fdiv _ | Fsqrt _ ->
                  float_of_int (d.profile.fp_div_latency_s / 2)
                | _ when eliminated ->
                  (* zero idioms are listed in its data files with their
                     nominal single-cycle throughput *)
                  1.0
                | _ ->
                  Table_noise.scale ~seed:noise_seed ~fraction:0.85
                    ~amplitude:2.4 inst.Inst.opcode
              in
              let candidates =
                List.filter (fun p -> p < d.n_ports)
                  (Uarch.Port.to_list u.ports)
              in
              let candidates = if candidates = [] then [ 0 ] else candidates in
              (* whole cost goes to the least-loaded candidate port *)
              let best =
                List.fold_left
                  (fun best p -> if pressure.(p) < pressure.(best) then p else best)
                  (List.hd candidates) candidates
              in
              pressure.(best) <- pressure.(best) +. cost)
            uops
        end)
      block;
    let bound = Array.fold_left max 0.0 pressure in
    Model_intf.Throughput (Float.max 1.0 bound)

let create (d : Uarch.Descriptor.t) : Model_intf.t =
  {
    Model_intf.name = "OSACA";
    predict = (fun block -> predict d block);
    schedule = None;
  }
