(** OSACA-like analyzer: a port-pressure bound with no dependency
    modelling, plus the two reported parser bug classes (imm-to-memory
    forms treated as nops; several instruction forms rejected
    entirely). *)

(** Forms the parser rejects outright (exposed for tests). *)
val unsupported_form : X86.Inst.t -> bool

(** Forms the parser silently treats as nops. *)
val parsed_as_nop : X86.Inst.t -> bool

val predict : Uarch.Descriptor.t -> X86.Inst.t list -> Model_intf.prediction

val create : Uarch.Descriptor.t -> Model_intf.t
